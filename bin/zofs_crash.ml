(* Systematic crash-consistency checking of ZoFS (lib/crashmc).

   For each workload the op script is recorded once to number its
   persistence events, then a set of crash points is explored: replay to the
   k-th event, power-fail under a line-survival policy, recover, and compare
   the recovered tree against the in-memory oracle model at the prefix of
   acknowledged ops.  The run also performs the missing-fence negative
   self-check: an injected forgotten-fence bug must be reported as a
   divergence, proving the checker can see the bug class it exists for.

     zofs_crash [--mode log|fail] [--points N] [--seed N] [--quick]
                [--json FILE] [WORKLOAD ...]

   --points N   explore at most N crash points per workload (0 = all)
   --quick      sampled mode used by the @crash dune alias (CI latency)
   --json FILE  write a machine-readable report (BENCH_crash.json)

   With no workload names, fxmark, filebench and fslab all run. *)

module C = Crashmc
module Op = Workloads.Opscript

let usage () =
  prerr_endline
    "usage: zofs_crash [--mode log|fail] [--points N] [--seed N] [--quick] \
     [--json FILE] [WORKLOAD ...]";
  exit 2

type result = {
  rep : C.report;
  seconds : float;
}

let run_workload ~points ~seed name =
  let script = Op.find name in
  let t0 = Sys.time () in
  let rep = C.check ~max_points:points ~seed script in
  let seconds = Sys.time () -. t0 in
  Printf.printf
    "%-10s ops=%d events=%d points=%d divergences=%d findings=%d \
     reclaimed=%d reattached=%d (%.1fs, %.0f points/s)\n%!"
    name rep.C.r_ops rep.C.r_events rep.C.r_points
    (List.length rep.C.r_divergences)
    rep.C.r_findings rep.C.r_pages_reclaimed rep.C.r_reattached seconds
    (float_of_int rep.C.r_points /. Float.max seconds 1e-9);
  List.iter
    (fun (d : C.divergence) ->
      Printf.printf "  DIVERGENCE at event %d (%s, acked %d):\n    %s\n%!"
        d.C.d_point d.C.d_policy d.C.d_acked
        (String.concat "\n    " (String.split_on_char '\n' d.C.d_reason)))
    rep.C.r_divergences;
  { rep; seconds }

let json_of_results results ~negative_caught ~total_seconds =
  let b = Buffer.create 4096 in
  let fld k v = Printf.bprintf b "    %S: %s,\n" k v in
  Buffer.add_string b "{\n  \"workloads\": [\n";
  List.iteri
    (fun i (name, r) ->
      Buffer.add_string b "   {\n";
      fld "name" (Printf.sprintf "%S" name);
      fld "ops" (string_of_int r.rep.C.r_ops);
      fld "events" (string_of_int r.rep.C.r_events);
      fld "points" (string_of_int r.rep.C.r_points);
      fld "divergences" (string_of_int (List.length r.rep.C.r_divergences));
      fld "findings" (string_of_int r.rep.C.r_findings);
      fld "pages_reclaimed" (string_of_int r.rep.C.r_pages_reclaimed);
      fld "orphans_reattached" (string_of_int r.rep.C.r_reattached);
      fld "orphans_dropped" (string_of_int r.rep.C.r_orphans_dropped);
      fld "seconds" (Printf.sprintf "%.3f" r.seconds);
      Printf.bprintf b "    \"points_per_sec\": %.1f\n"
        (float_of_int r.rep.C.r_points /. Float.max r.seconds 1e-9);
      Buffer.add_string b
        (if i = List.length results - 1 then "   }\n" else "   },\n"))
    results;
  Buffer.add_string b "  ],\n";
  let total f = List.fold_left (fun a (_, r) -> a + f r.rep) 0 results in
  Printf.bprintf b "  \"total_points\": %d,\n"
    (total (fun r -> r.C.r_points));
  Printf.bprintf b "  \"total_divergences\": %d,\n"
    (total (fun r -> List.length r.C.r_divergences));
  Printf.bprintf b "  \"missing_fence_caught\": %b,\n" negative_caught;
  Printf.bprintf b "  \"total_seconds\": %.3f\n}\n" total_seconds;
  Buffer.contents b

let () =
  let mode = ref `Fail in
  let points = ref 0 in
  let seed = ref 1L in
  let json = ref None in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--mode" :: m :: rest ->
        (match m with
        | "log" -> mode := `Log
        | "fail" -> mode := `Fail
        | _ ->
            Printf.eprintf "zofs_crash: unknown mode %S (want log|fail)\n" m;
            exit 2);
        parse rest
    | "--points" :: n :: rest ->
        points := int_of_string n;
        parse rest
    | "--seed" :: n :: rest ->
        seed := Int64.of_string n;
        parse rest
    | "--quick" :: rest ->
        points := 180;
        parse rest
    | "--json" :: f :: rest ->
        json := Some f;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | s :: _ when String.length s > 0 && s.[0] = '-' ->
        Printf.eprintf "zofs_crash: unknown option %s\n" s;
        usage ()
    | s :: rest ->
        names := s :: !names;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let names =
    match List.rev !names with
    | [] -> [ "fxmark"; "filebench"; "fslab" ]
    | l -> l
  in
  List.iter
    (fun n ->
      if not (List.mem_assoc n Op.named) then begin
        Printf.eprintf "zofs_crash: unknown workload %S (want %s)\n" n
          (String.concat "|" (List.map fst Op.named));
        exit 2
      end)
    names;
  let t0 = Sys.time () in
  let results =
    List.map (fun n -> (n, run_workload ~points:!points ~seed:!seed n)) names
  in
  (* Negative self-check: a deliberately dropped fence must be caught. *)
  let negative_caught =
    match C.check_missing_fence (Op.find "fslab") with
    | Some reason ->
        Printf.printf
          "missing-fence self-check: caught as expected\n  %s\n%!"
          (String.concat "\n  " (String.split_on_char '\n' reason));
        true
    | None ->
        Printf.printf
          "missing-fence self-check: NOT caught — checker is blind!\n%!";
        false
  in
  let total_seconds = Sys.time () -. t0 in
  let total_div =
    List.fold_left
      (fun a (_, r) -> a + List.length r.rep.C.r_divergences)
      0 results
  in
  let total_points =
    List.fold_left (fun a (_, r) -> a + r.rep.C.r_points) 0 results
  in
  Printf.printf "total: %d crash points, %d divergences (%.1fs)\n%!"
    total_points total_div total_seconds;
  (match !json with
  | Some f ->
      let oc = open_out f in
      output_string oc (json_of_results results ~negative_caught ~total_seconds);
      close_out oc;
      Printf.printf "wrote %s\n%!" f
  | None -> ());
  if !mode = `Fail && (total_div > 0 || not negative_caught) then exit 1
