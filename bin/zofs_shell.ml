(* An interactive shell over a ZoFS file system on simulated NVM.

     dune exec bin/zofs_shell.exe                      # fresh 64 MB world
     dune exec bin/zofs_shell.exe -- --image fs.img    # persistent image

   The NVM device can be saved to / loaded from a host file, so a shell
   session's file system survives across runs ("save" + --image). *)

module V = Treasury.Vfs
module K = Treasury.Kernfs
module Ft = Treasury.Fs_types

type world = {
  dev : Nvm.Device.t;
  kfs : K.t;
  disp : Treasury.Dispatcher.t;
  fs : V.fs;
  proc : Sim.Proc.t;
}

let make_world ~image ~pages =
  (* The shell always runs with observability on: every syscall it issues
     lands in the metric registry and the `stats' command renders them. *)
  Obs.enable ();
  let dev, fresh =
    match image with
    | Some path when Sys.file_exists path ->
        (Nvm.Device.load_image path, false)
    | _ -> (Nvm.Device.create ~perf:Nvm.Perf.optane ~size:(pages * Nvm.page_size) (), true)
  in
  let mpk = Mpk.create dev in
  let kfs =
    if fresh then begin
      let kfs =
        K.mkfs dev mpk ~root_ctype:Zofs.Ufs.ctype ~root_mode:0o755 ~root_uid:0
          ~root_gid:0 ()
      in
      Zofs.Ufs.mkfs kfs;
      kfs
    end
    else K.mount dev mpk
  in
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  let disp = ref None in
  Sim.run_thread ~proc (fun () ->
      let d = Treasury.Dispatcher.create kfs in
      let ufs = Zofs.Ufs.create kfs in
      Treasury.Dispatcher.register_ufs d (module Zofs.Ufs) ufs;
      disp := Some d);
  let disp = Option.get !disp in
  Obs.attach_device dev;
  { dev; kfs; disp; fs = Treasury.Dispatcher.as_vfs disp; proc }

let commas n =
  let s = string_of_int n in
  let len = String.length s in
  let b = Buffer.create (len + len / 3) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b c)
    s;
  Buffer.contents b

let show = function
  | Ok () -> ()
  | Error e -> Printf.printf "error: %s\n" (Treasury.Errno.message e)


let help () =
  print_string
    "commands:\n\
    \  ls [dir]            list directory\n\
    \  cat FILE            print file contents\n\
    \  write FILE TEXT..   (over)write a file\n\
    \  append FILE TEXT..  append to a file\n\
    \  mkdir DIR           create directory\n\
    \  rm FILE / rmdir DIR remove\n\
    \  mv SRC DST          rename\n\
    \  stat PATH           file metadata\n\
    \  chmod MODE PATH     change permission (octal)\n\
    \  ln TARGET LINK      symbolic link\n\
    \  cd DIR / pwd        working directory\n\
    \  coffers             list all coffers (kernel view)\n\
    \  fsck                offline recovery\n\
    \  save FILE           save NVM image to a host file\n\
    \  time                simulated time consumed so far\n\
    \  stats               observability: syscall latencies, per-coffer/\n\
    \                      per-tenant top-k + SLO burn, device stats\n\
    \  help / exit\n"

let run_command w line =
  let parts =
    String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "")
  in
  Sim.run_thread ~proc:w.proc (fun () ->
      match parts with
      | [] -> ()
      | [ "help" ] -> help ()
      | "ls" :: rest -> (
          let dir =
            match rest with [] -> Treasury.Dispatcher.getcwd w.disp | d :: _ -> d
          in
          match V.readdir w.fs dir with
          | Error e -> Printf.printf "error: %s\n" (Treasury.Errno.message e)
          | Ok entries ->
              List.iter
                (fun d ->
                  let suffix =
                    match d.Ft.d_kind with
                    | Ft.Directory -> "/"
                    | Ft.Symlink -> "@"
                    | Ft.Regular -> ""
                  in
                  Printf.printf "%s%s\n" d.Ft.d_name suffix)
                (List.sort compare entries))
      | [ "cat"; f ] -> (
          match V.read_file w.fs f with
          | Ok s ->
              print_string s;
              if s = "" || s.[String.length s - 1] <> '\n' then print_newline ()
          | Error e -> Printf.printf "error: %s\n" (Treasury.Errno.message e))
      | "write" :: f :: rest ->
          show (V.write_file w.fs f (String.concat " " rest ^ "\n"))
      | "append" :: f :: rest ->
          show (V.append_file w.fs f (String.concat " " rest ^ "\n"))
      | [ "mkdir"; d ] -> show (V.mkdir w.fs d 0o755)
      | [ "rm"; f ] -> show (V.unlink w.fs f)
      | [ "rmdir"; d ] -> show (V.rmdir w.fs d)
      | [ "mv"; a; b ] -> show (V.rename w.fs a b)
      | [ "stat"; p ] -> (
          match V.stat w.fs p with
          | Error e -> Printf.printf "error: %s\n" (Treasury.Errno.message e)
          | Ok st ->
              Printf.printf "%s ino=%d mode=%o uid=%d gid=%d size=%d nlink=%d\n"
                (Ft.kind_to_string st.Ft.st_kind)
                st.Ft.st_ino st.Ft.st_mode st.Ft.st_uid st.Ft.st_gid st.Ft.st_size
                st.Ft.st_nlink)
      | [ "chmod"; mode; p ] -> (
          match int_of_string_opt ("0o" ^ mode) with
          | Some m -> show (V.chmod w.fs p m)
          | None -> print_endline "chmod: bad octal mode")
      | [ "ln"; target; link ] -> show (V.symlink w.fs ~target ~link)
      | [ "cd"; d ] -> show (Treasury.Dispatcher.chdir w.disp d)
      | [ "pwd" ] -> print_endline (Treasury.Dispatcher.getcwd w.disp)
      | [ "coffers" ] -> (
          match K.list_coffers w.kfs with
          | Error e -> Printf.printf "error: %s\n" (Treasury.Errno.message e)
          | Ok coffers ->
              List.iter
                (fun c ->
                  Printf.printf "coffer %-6d mode %-4o uid %-5d %s\n"
                    c.Treasury.Coffer.id c.Treasury.Coffer.mode
                    c.Treasury.Coffer.uid c.Treasury.Coffer.path)
                (List.sort
                   (fun a b -> compare a.Treasury.Coffer.path b.Treasury.Coffer.path)
                   coffers))
      | [ "fsck" ] ->
          let r = Zofs.Recovery.recover_all w.kfs in
          Printf.printf
            "fsck: %d coffers scanned, %d dentries dropped, %d cross-refs \
             repaired, %d pages reclaimed\n"
            r.Zofs.Recovery.coffers_scanned r.Zofs.Recovery.dentries_dropped
            r.Zofs.Recovery.cross_refs_repaired r.Zofs.Recovery.pages_reclaimed
      | [ "save"; path ] ->
          Nvm.Device.save_image w.dev path;
          Printf.printf "saved NVM image to %s\n" path
      | [ "stats" ] | [ "stats"; "--top" ] ->
          let snap = Obs.Snapshot.take () in
          print_string (Obs.Snapshot.render ~title:"shell session" snap);
          (* label-sliced view: worst coffers/tenants by p99 + SLO burn *)
          (match Obs.Snapshot.render_top snap with
          | "" -> ()
          | s ->
              print_newline ();
              print_string s);
          Printf.printf
            "device: %s reads, %s writes, %s flushes (%s redundant), %s \
             fences (%s redundant)\n"
            (commas (Nvm.Device.stat_reads w.dev))
            (commas (Nvm.Device.stat_writes w.dev))
            (commas (Nvm.Device.stat_flushes w.dev))
            (commas (Nvm.Device.stat_redundant_flushes w.dev))
            (commas (Nvm.Device.stat_fences w.dev))
            (commas (Nvm.Device.stat_redundant_fences w.dev))
      | [ "time" ] ->
          Printf.printf "%.1f us simulated\n" (float_of_int (Sim.now ()) /. 1000.0)
      | [ "exit" ] | [ "quit" ] -> raise Exit
      | cmd :: _ -> Printf.printf "unknown command %s (try help)\n" cmd)

let () =
  let image = ref None and pages = ref 16384 in
  let rec parse = function
    | [] -> ()
    | "--image" :: p :: rest ->
        image := Some p;
        parse rest
    | "--size-mb" :: n :: rest ->
        pages := int_of_string n * 256;
        parse rest
    | a :: _ -> failwith ("unknown argument " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let w = make_world ~image:!image ~pages:!pages in
  Printf.printf "ZoFS shell on simulated NVM (%d MB). Type 'help'.\n"
    (Nvm.Device.size w.dev / 1048576);
  (try
     while true do
       print_string "zofs> ";
       flush stdout;
       match In_channel.input_line stdin with
       | None -> raise Exit
       | Some line -> run_command w line
     done
   with Exit -> ());
  (match !image with
  | Some path ->
      Nvm.Device.save_image w.dev path;
      Printf.printf "\nsaved image to %s\n" path
  | None -> ());
  print_endline "bye"
