(* Run the workload suite under the analysis checkers (lib/check).

   Every fxmark microbenchmark and filebench personality is executed on
   ZoFS with the persistence, guideline, and lock checkers attached; the
   process exits nonzero if any checker records a violation.  This is the
   dynamic-analysis complement to `dune runtest`: the tests prove the rules
   fire on buggy code, this proves the real tree is silent under them.

     zofs_check [--mode off|log|fail] [--threads N] [--ops N] [--quick]
                [WORKLOAD ...]

   With no workload names, the full suite runs.  `--quick` (used by the
   @check dune alias) shrinks thread/op counts for CI latency. *)

module FL = Workloads.Fslab
module Fx = Workloads.Fxmark
module Fb = Workloads.Filebench

let mode_of_string = function
  | "off" -> Check.Off
  | "log" -> Check.Log
  | "fail" -> Check.Fail
  | s ->
      Printf.eprintf "zofs_check: unknown mode %S (want off|log|fail)\n" s;
      exit 2

let usage () =
  prerr_endline
    "usage: zofs_check [--mode off|log|fail] [--threads N] [--ops N] [--quick] \
     [WORKLOAD ...]";
  exit 2

let () =
  let mode = ref Check.Fail in
  let threads = ref 4 in
  let ops = ref 40 in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--mode" :: m :: rest ->
        mode := mode_of_string m;
        parse rest
    | "--threads" :: n :: rest ->
        threads := int_of_string n;
        parse rest
    | "--ops" :: n :: rest ->
        ops := int_of_string n;
        parse rest
    | "--quick" :: rest ->
        threads := 2;
        ops := 12;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | s :: _ when String.length s > 0 && s.[0] = '-' ->
        Printf.eprintf "zofs_check: unknown option %s\n" s;
        usage ()
    | s :: rest ->
        names := s :: !names;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let suite =
    List.map
      (fun w ->
        ( w.Fx.wname,
          fun () -> w.Fx.run FL.Zofs ~nthreads:!threads ~ops:!ops ))
      Fx.all
    @ List.map
        (fun p ->
          ( p.Fb.pname,
            fun () -> p.Fb.run FL.Zofs ~nthreads:!threads ~ops:!ops ))
        Fb.all
  in
  let suite =
    match !names with
    | [] -> suite
    | wanted ->
        List.filter (fun (n, _) -> List.mem n wanted) suite
        |> function
        | [] ->
            Printf.eprintf "zofs_check: no such workload (have: %s)\n"
              (String.concat " " (List.map fst suite));
            exit 2
        | l -> l
  in
  Check.enable_auto ~persist:!mode ~guideline:!mode ~lock:!mode;
  Printf.printf "zofs_check: %d workloads, %d threads, %d ops/thread, mode %s\n%!"
    (List.length suite) !threads !ops
    (match !mode with Check.Off -> "off" | Check.Log -> "log" | Check.Fail -> "fail");
  let total_violations = ref 0 in
  List.iter
    (fun (name, run) ->
      Check.reset_report ();
      let outcome =
        match run () with
        | (_ : Workloads.Runner.result) -> Ok ()
        | exception Check.Violation v -> Error v
      in
      let r = Check.report () in
      let nv = List.length r.Check.r_violations in
      total_violations := !total_violations + nv;
      (match outcome with
      | Ok () when nv = 0 ->
          Printf.printf "  %-12s ok (%d lints)\n%!" name
            (List.fold_left (fun a (_, n) -> a + n) 0 r.Check.r_lints)
      | Ok () -> Printf.printf "  %-12s %d violation(s)\n%!" name nv
      | Error v ->
          Printf.printf "  %-12s FAILED: %s\n%!" name (Check.string_of_violation v));
      if nv > 0 then Check.print_report ())
    suite;
  Check.disable_auto ();
  Check.detach ();
  if !total_violations > 0 then begin
    Printf.printf "zofs_check: %d violation(s)\n" !total_violations;
    exit 1
  end
  else print_endline "zofs_check: clean"
