(* CI gate for the observability layer (`dune build @obs`).

   Runs one FxMark and one Filebench workload with obs enabled, then checks
   the invariants the exporter promises: every span balanced, the Chrome
   trace structurally well-formed (also after a print/parse round-trip),
   syscalls recorded, and the layer attribution consistent (the four buckets
   never exceed the total).  Non-zero exit on any violation. *)

module FL = Workloads.Fslab
module Fx = Workloads.Fxmark
module Fb = Workloads.Filebench

let failed = ref false

let checkpoint label ok detail =
  Printf.printf "  %-40s %s%s\n" label
    (if ok then "ok" else "FAIL")
    (if detail = "" || ok then "" else ": " ^ detail);
  if not ok then failed := true

let cval name = Obs.Counter.value (Obs.Counter.make name)

let () =
  let quick = Array.to_list Sys.argv |> List.mem "--quick" in
  let fx_ops = if quick then 40 else 100 in
  let fb_ops = if quick then 25 else 60 in
  Obs.enable ();
  (* MWCL creates files under a shared directory lease (lease-wait bucket),
     varmail is fsync-heavy (media bucket); 4 threads so leases contend. *)
  let r1 = Fx.mwcl.Fx.run FL.Zofs ~nthreads:4 ~ops:fx_ops in
  let r2 = Fb.varmail.Fb.run FL.Zofs ~nthreads:4 ~ops:fb_ops in
  Printf.printf "zofs_obs: MWCL %.3f Mops/s, varmail %.1f kops/s\n"
    r1.Workloads.Runner.mops_per_sec
    (r2.Workloads.Runner.mops_per_sec *. 1000.0);

  checkpoint "spans recorded"
    (Obs.Trace.recorded () > 0)
    "trace ring is empty";
  checkpoint "all spans balanced"
    (Obs.Trace.open_spans () = 0)
    (Printf.sprintf "%d span(s) still open" (Obs.Trace.open_spans ()));
  let j = Obs.Trace.to_json () in
  (match Obs.Trace.validate j with
  | Ok () -> checkpoint "trace JSON well-formed" true ""
  | Error m -> checkpoint "trace JSON well-formed" false m);
  (match Obs.Json.of_string (Obs.Json.to_string j) with
  | Error m -> checkpoint "trace JSON round-trips" false m
  | Ok j2 -> (
      match Obs.Trace.validate j2 with
      | Ok () -> checkpoint "trace JSON round-trips" true ""
      | Error m -> checkpoint "trace JSON round-trips" false m));

  checkpoint "syscalls observed" (cval "syscall.count" > 0) "";
  checkpoint "gate crossings observed" (cval "gate.crossings" > 0) "";
  checkpoint "lease acquires observed" (cval "lease.acquires" > 0) "";
  checkpoint "media time observed" (cval "nvm.media_ns" > 0) "";
  let total = cval "layer.total_ns" in
  let parts =
    cval "layer.fslib_ns" + cval "layer.kernfs_ns" + cval "layer.media_ns"
    + cval "layer.lease_ns"
  in
  checkpoint "layer buckets sum to total"
    (total > 0 && parts <= total)
    (Printf.sprintf "fslib+kernfs+media+lease = %d, total = %d" parts total);

  (* Snapshot JSON round-trip: what zofs_stat consumes. *)
  let snap = Obs.Snapshot.take () in
  (match Obs.Snapshot.of_json (Obs.Snapshot.to_json snap) with
  | Ok back ->
      checkpoint "snapshot JSON round-trips"
        (Obs.Snapshot.render back = Obs.Snapshot.render snap)
        "render differs after round-trip"
  | Error m -> checkpoint "snapshot JSON round-trips" false m);

  if !failed then begin
    print_endline "zofs_obs: FAILED";
    exit 1
  end
  else print_endline "zofs_obs: all observability invariants hold"
