(* CI gate for the observability plane (`dune build @obs`).

     zofs_obs [--quick] [--mode log|fail] [--baseline FILE]
              [--write-baseline FILE]

   Two phases over the same workload pair (FxMark MWCL + Filebench varmail,
   4 threads each, repeated for a measurable host wall time):

     phase A  observability fully OFF   — reference simulated results and
              host CPU time
     phase B  observability fully ON    — labels, op tracing, flight
              recorder — same workloads

   and then three kinds of verdicts:

   1. Invariants (always checked): zero sim-time drift — every workload's
      simulated results are byte-identical between phases; spans balanced;
      Chrome trace well-formed and round-trips; layer buckets never exceed
      the total; labelled series, op-ids, parent/child span links, flight
      events and SLO reports all present.

   2. Baseline comparison (--baseline): per-workload per-op counts
      (sim-ns, syscalls, kernel crossings, lease acquires, media-ns) and
      obs coverage totals (spans, labelled series, flight events) against
      the committed BENCH_obs.json, using the lib/perf tolerance
      comparator.  Cost dims fail on increase; coverage dims fail in both
      directions — silently losing instrumentation is a regression too.

   3. Overhead budget: host CPU time of phase B must stay within the
      baseline's overhead_budget_pct of phase A (plus a small absolute
      slack for timer noise).

   Re-baseline with:
     dune exec bin/zofs_obs.exe -- --quick --write-baseline BENCH_obs.json *)

module FL = Workloads.Fslab
module Fx = Workloads.Fxmark
module Fb = Workloads.Filebench
module R = Workloads.Runner
module J = Obs.Json
module P = Perf_gate

let schema = "zofs-obs-1"
let default_budget_pct = 150.0
let wall_slack_s = 0.20

let failed = ref false

let checkpoint label ok detail =
  Printf.printf "  %-40s %s%s\n" label
    (if ok then "ok" else "FAIL")
    (if detail = "" || ok then "" else ": " ^ detail);
  if not ok then failed := true

let cval name = Obs.Counter.value (Obs.Counter.make name)

(* ---- baseline schema ---------------------------------------------------- *)

type wmetrics = {
  w_name : string;
  w_ops : int;
  w_sim_ns : int;
  w_syscalls : int;
  w_crossings : int;
  w_lease_acquires : int;
  w_media_ns : int;
}

type baseline = {
  b_budget_pct : float;
  b_workloads : wmetrics list;
  b_spans : int;
  b_labeled_series : int;
  b_flight_events : int;
}

let num n = J.Num (float_of_int n)

let wmetrics_to_json w =
  J.Obj
    [
      ("name", J.Str w.w_name);
      ("ops", num w.w_ops);
      ("sim_ns", num w.w_sim_ns);
      ("syscalls", num w.w_syscalls);
      ("crossings", num w.w_crossings);
      ("lease_acquires", num w.w_lease_acquires);
      ("media_ns", num w.w_media_ns);
    ]

let baseline_to_json b ~snapshot =
  J.Obj
    [
      ("schema", J.Str schema);
      ("overhead_budget_pct", J.Num b.b_budget_pct);
      ("workloads", J.Arr (List.map wmetrics_to_json b.b_workloads));
      ("spans", num b.b_spans);
      ("labeled_series", num b.b_labeled_series);
      ("flight_events", num b.b_flight_events);
      (* the full label-sliced snapshot of the instrumented run, under the
         "obs" member zofs_stat/zofs_top already understand *)
      ("obs", snapshot);
    ]

let ( let* ) = Result.bind

let int_member name j =
  match J.member name j with
  | Some (J.Num v) -> Ok (int_of_float v)
  | _ -> Error (Printf.sprintf "missing numeric field %S" name)

let wmetrics_of_json j =
  let* name =
    match J.member "name" j with
    | Some (J.Str s) -> Ok s
    | _ -> Error "workload without a name"
  in
  let* ops = int_member "ops" j in
  let* sim_ns = int_member "sim_ns" j in
  let* syscalls = int_member "syscalls" j in
  let* crossings = int_member "crossings" j in
  let* lease_acquires = int_member "lease_acquires" j in
  let* media_ns = int_member "media_ns" j in
  Ok
    {
      w_name = name;
      w_ops = ops;
      w_sim_ns = sim_ns;
      w_syscalls = syscalls;
      w_crossings = crossings;
      w_lease_acquires = lease_acquires;
      w_media_ns = media_ns;
    }

let baseline_of_json j =
  match J.member "schema" j with
  | Some (J.Str s) when s = schema ->
      let budget =
        match J.member "overhead_budget_pct" j with
        | Some (J.Num v) -> v
        | _ -> default_budget_pct
      in
      let* workloads =
        match J.member "workloads" j with
        | Some (J.Arr items) ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let* w = wmetrics_of_json item in
                Ok (w :: acc))
              (Ok []) items
            |> Result.map List.rev
        | _ -> Error "no workloads array"
      in
      let* spans = int_member "spans" j in
      let* labeled = int_member "labeled_series" j in
      let* flight = int_member "flight_events" j in
      Ok
        {
          b_budget_pct = budget;
          b_workloads = workloads;
          b_spans = spans;
          b_labeled_series = labeled;
          b_flight_events = flight;
        }
  | Some (J.Str s) -> Error (Printf.sprintf "unknown schema %S" s)
  | _ -> Error "missing schema"

(* ---- the two phases ------------------------------------------------------ *)

(* One phase: run MWCL [reps] times, then varmail [reps] times, returning
   per-workload (rep sim results, counter deltas) and the phase's host CPU
   seconds.  Counter deltas are all zero while obs is off. *)
let run_phase ~reps ~fx_ops ~fb_ops =
  let bracket name f =
    let s0 = Obs.Snapshot.take () in
    let results = List.init reps (fun _ -> f ()) in
    let d = Obs.Snapshot.diff s0 (Obs.Snapshot.take ()) in
    let cv n =
      match Obs.Snapshot.counter_value d n with Some v -> v | None -> 0
    in
    let sum sel = List.fold_left (fun a r -> a + sel r) 0 results in
    ( results,
      {
        w_name = name;
        w_ops = sum (fun r -> r.R.total_ops);
        w_sim_ns = sum (fun r -> r.R.elapsed_ns);
        w_syscalls = cv "syscall.count";
        w_crossings = cv "gate.crossings";
        w_lease_acquires = cv "lease.acquires";
        w_media_ns = cv "nvm.media_ns";
      } )
  in
  let t0 = Sys.time () in
  let mwcl = bracket "mwcl" (fun () -> Fx.mwcl.Fx.run FL.Zofs ~nthreads:4 ~ops:fx_ops) in
  let varmail =
    bracket "varmail" (fun () -> Fb.varmail.Fb.run FL.Zofs ~nthreads:4 ~ops:fb_ops)
  in
  let wall = Sys.time () -. t0 in
  ([ mwcl; varmail ], wall)

let sim_signature phase =
  List.concat_map
    (fun (results, w) ->
      List.map
        (fun r -> Printf.sprintf "%s:%d:%d" w.w_name r.R.total_ops r.R.elapsed_ns)
        results)
    phase

(* ---- main ---------------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: zofs_obs [--quick] [--mode log|fail] [--baseline FILE] \
     [--write-baseline FILE]";
  exit 2

let () =
  let quick = ref false in
  let mode = ref `Fail in
  let baseline_file = ref None in
  let write_baseline = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--mode" :: m :: rest ->
        (match m with
        | "log" -> mode := `Log
        | "fail" -> mode := `Fail
        | _ ->
            Printf.eprintf "zofs_obs: unknown mode %S (want log|fail)\n" m;
            exit 2);
        parse rest
    | "--baseline" :: f :: rest ->
        baseline_file := Some f;
        parse rest
    | "--write-baseline" :: f :: rest ->
        write_baseline := Some f;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | s :: _ ->
        Printf.eprintf "zofs_obs: unknown option %s\n" s;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let fx_ops = if !quick then 40 else 100 in
  let fb_ops = if !quick then 25 else 60 in
  let reps = if !quick then 4 else 8 in

  (* ---- phase A: observability off -------------------------------------- *)
  Obs.disable ();
  let off_phase, wall_off = run_phase ~reps ~fx_ops ~fb_ops in

  (* ---- phase B: observability fully on ---------------------------------- *)
  Obs.enable ();
  Obs.reset ();
  Obs.Flight.set_autodump false;
  let on_phase, wall_on = run_phase ~reps ~fx_ops ~fb_ops in
  let r1 = List.hd (fst (List.hd on_phase)) in
  let r2 = List.hd (fst (List.nth on_phase 1)) in
  Printf.printf "zofs_obs: MWCL %.3f Mops/s, varmail %.1f kops/s  (x%d reps)\n"
    r1.R.mops_per_sec
    (r2.R.mops_per_sec *. 1000.0)
    reps;

  (* ---- invariants -------------------------------------------------------- *)
  checkpoint "zero sim-time drift (obs on = off)"
    (sim_signature off_phase = sim_signature on_phase)
    "simulated results differ between phases";

  checkpoint "spans recorded"
    (Obs.Trace.recorded () > 0)
    "trace ring is empty";
  checkpoint "all spans balanced"
    (Obs.Trace.open_spans () = 0)
    (Printf.sprintf "%d span(s) still open" (Obs.Trace.open_spans ()));
  let j = Obs.Trace.to_json () in
  (match Obs.Trace.validate j with
  | Ok () -> checkpoint "trace JSON well-formed" true ""
  | Error m -> checkpoint "trace JSON well-formed" false m);
  (match Obs.Json.of_string (Obs.Json.to_string j) with
  | Error m -> checkpoint "trace JSON round-trips" false m
  | Ok j2 -> (
      match Obs.Trace.validate j2 with
      | Ok () -> checkpoint "trace JSON round-trips" true ""
      | Error m -> checkpoint "trace JSON round-trips" false m));

  checkpoint "syscalls observed" (cval "syscall.count" > 0) "";
  checkpoint "gate crossings observed" (cval "gate.crossings" > 0) "";
  checkpoint "lease acquires observed" (cval "lease.acquires" > 0) "";
  checkpoint "media time observed" (cval "nvm.media_ns" > 0) "";
  let total = cval "layer.total_ns" in
  let parts =
    cval "layer.fslib_ns" + cval "layer.kernfs_ns" + cval "layer.media_ns"
    + cval "layer.lease_ns"
  in
  checkpoint "layer buckets sum to total"
    (total > 0 && parts <= total)
    (Printf.sprintf "fslib+kernfs+media+lease = %d, total = %d" parts total);

  (* causal tracing: op-ids assigned, parent/child links connected *)
  let spans = Obs.Trace.spans () in
  checkpoint "op-ids on spans"
    (List.exists (fun s -> s.Obs.Trace.sp_op > 0) spans)
    "no span carries an op-id";
  let connected =
    match
      List.find_opt
        (fun s -> s.Obs.Trace.sp_cat = "kernfs" && s.Obs.Trace.sp_op > 0)
        spans
    with
    | None -> false
    | Some s ->
        List.exists
          (fun p -> p.Obs.Trace.sp_id = s.Obs.Trace.sp_parent)
          (Obs.Trace.spans_of_op s.Obs.Trace.sp_op)
  in
  checkpoint "kernel crossings parented on their syscall" connected
    "no kernfs trap span links to a parent span of the same op";

  (* dimensioned metrics + flight recorder + SLOs *)
  let snap = Obs.Snapshot.take () in
  let snap_json = Obs.Snapshot.to_json snap in
  let count_labeled () =
    let keys = function Obs.Json.Obj l -> List.map fst l | _ -> [] in
    let all =
      List.concat_map
        (fun sec ->
          match Obs.Json.member sec snap_json with
          | Some o -> keys o
          | None -> [])
        [ "counters"; "gauges"; "histograms" ]
    in
    List.length (List.filter (fun k -> String.contains k '{') all)
  in
  let labeled_series = count_labeled () in
  checkpoint "labelled series recorded" (labeled_series > 0) "";
  checkpoint "per-tenant op latency recorded"
    (Obs.Snapshot.labeled snap ~base:"op.latency" <> [])
    "";
  checkpoint "flight events recorded" (Obs.Flight.total () > 0) "";
  Obs.Slo.define ~name:"open-p99" ~op:"open" ~p99_target_ns:2_000_000;
  Obs.Slo.define ~name:"write-p99" ~op:"write" ~p99_target_ns:2_000_000;
  let reports = Obs.Slo.publish snap in
  checkpoint "SLO reports evaluated" (reports <> []) "no (slo, tenant) samples";
  let snap = Obs.Snapshot.take () in
  checkpoint "label-sliced top-k renders"
    (Obs.Snapshot.render_top snap <> "")
    "";

  (* snapshot JSON round-trip: what zofs_stat consumes *)
  (match Obs.Snapshot.of_json (Obs.Snapshot.to_json snap) with
  | Ok back ->
      checkpoint "snapshot JSON round-trips"
        (Obs.Snapshot.render back = Obs.Snapshot.render snap
        && Obs.Snapshot.render_top back = Obs.Snapshot.render_top snap)
        "render differs after round-trip"
  | Error m -> checkpoint "snapshot JSON round-trips" false m);

  let current =
    {
      b_budget_pct = default_budget_pct;
      b_workloads = List.map snd on_phase;
      b_spans = Obs.Trace.recorded () + Obs.Trace.dropped ();
      b_labeled_series = labeled_series;
      b_flight_events = Obs.Flight.total ();
    }
  in

  (* ---- overhead + baseline comparison ------------------------------------ *)
  let overhead_pct =
    if wall_off <= 0.0 then 0.0 else 100.0 *. ((wall_on /. wall_off) -. 1.0)
  in
  Printf.printf "  host CPU: off %.3fs on %.3fs (overhead %+.0f%%)\n" wall_off
    wall_on overhead_pct;

  (match !baseline_file with
  | None -> ()
  | Some f -> (
      let read () =
        match In_channel.with_open_bin f In_channel.input_all with
        | exception Sys_error e -> Error e
        | s ->
            let* j = J.of_string (String.trim s) in
            baseline_of_json j
      in
      match read () with
      | Error m -> checkpoint "baseline loaded" false (f ^ ": " ^ m)
      | Ok base ->
          checkpoint "baseline loaded" true "";
          let regressions = ref [] and improvements = ref [] in
          let dim ?both_ways name b c =
            P.check_dim ?both_ways ~name ~base:b ~cur:c ~regressions
              ~improvements ()
          in
          List.iter
            (fun bw ->
              match
                List.find_opt (fun w -> w.w_name = bw.w_name) current.b_workloads
              with
              | None ->
                  regressions :=
                    Printf.sprintf "%s: workload missing from current run"
                      bw.w_name
                    :: !regressions
              | Some cw ->
                  let per m v = float_of_int v /. float_of_int (max 1 m.w_ops) in
                  let d ?both_ways what sel =
                    dim ?both_ways
                      (Printf.sprintf "%s: %s/op" bw.w_name what)
                      (per bw (sel bw)) (per cw (sel cw))
                  in
                  d "sim_ns" (fun w -> w.w_sim_ns);
                  d "media_ns" (fun w -> w.w_media_ns);
                  d ~both_ways:true "syscalls" (fun w -> w.w_syscalls);
                  d ~both_ways:true "crossings" (fun w -> w.w_crossings);
                  d ~both_ways:true "lease_acquires" (fun w ->
                      w.w_lease_acquires))
            base.b_workloads;
          let tot_ops =
            List.fold_left (fun a w -> a + w.w_ops) 0 current.b_workloads
          in
          let per_total v = float_of_int v /. float_of_int (max 1 tot_ops) in
          dim ~both_ways:true "spans/op" (per_total base.b_spans)
            (per_total current.b_spans);
          dim ~both_ways:true "labeled_series" (float_of_int base.b_labeled_series)
            (float_of_int current.b_labeled_series);
          dim ~both_ways:true "flight_events/op" (per_total base.b_flight_events)
            (per_total current.b_flight_events);
          List.iter (fun s -> Printf.printf "  REGRESSION %s\n" s) !regressions;
          List.iter (fun s -> Printf.printf "  improved   %s\n" s) !improvements;
          checkpoint "baseline comparison" (!regressions = [])
            (Printf.sprintf "%d dimension(s) regressed" (List.length !regressions));
          checkpoint "obs overhead within budget"
            (wall_on <= (wall_off *. (1.0 +. (base.b_budget_pct /. 100.0))) +. wall_slack_s)
            (Printf.sprintf "overhead %+.0f%% exceeds budget %.0f%%" overhead_pct
               base.b_budget_pct)));

  (match !write_baseline with
  | None -> ()
  | Some f ->
      let oc = open_out f in
      output_string oc (J.to_string (baseline_to_json current ~snapshot:snap_json));
      output_char oc '\n';
      close_out oc;
      Printf.printf "  wrote baseline %s\n" f);

  if !failed && !mode = `Fail then begin
    print_endline "zofs_obs: FAILED";
    exit 1
  end
  else if !failed then print_endline "zofs_obs: violations found (log mode)"
  else print_endline "zofs_obs: all observability invariants hold"
