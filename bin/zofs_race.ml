(* Run the workload suite under the race sanitizer (lib/race).

   Every fxmark microbenchmark and filebench personality is executed on
   ZoFS with the happens-before + lockset detector attached, plus a
   chaos-lite scenario (a lease holder dies mid-write and a survivor
   steals the lease).  The process exits nonzero if any unannotated race
   is found, and also runs two negative self-checks that MUST race — a
   lease-elided append and a torn dual-thread dentry insert — failing if
   the sanitizer does not catch them.

     zofs_race [--mode off|log|fail] [--threads N] [--ops N] [--quick]
               [--json PATH] [--baseline PATH] [WORKLOAD ...]

   `--json` writes the deterministic per-workload shadow-map/race summary
   (no timestamps: every field derives from the simulated clock, so the
   bytes are identical run to run); `--baseline` additionally compares the
   freshly generated summary against a committed copy (BENCH_race.json)
   and fails on any drift — this is what `dune build @race` enforces. *)

module FL = Workloads.Fslab
module Fx = Workloads.Fxmark
module Fb = Workloads.Filebench
module V = Treasury.Vfs
module Ft = Treasury.Fs_types

let ok = function
  | Ok v -> v
  | Error e -> failwith ("zofs_race op failed: " ^ Treasury.Errno.to_string e)

let block = String.make 4096 'r'

let mode_of_string = function
  | "off" -> Race.Off
  | "log" -> Race.Log
  | "fail" -> Race.Fail
  | s ->
      Printf.eprintf "zofs_race: unknown mode %S (want off|log|fail)\n" s;
      exit 2

let string_of_mode = function
  | Race.Off -> "off"
  | Race.Log -> "log"
  | Race.Fail -> "fail"

let usage () =
  prerr_endline
    "usage: zofs_race [--mode off|log|fail] [--threads N] [--ops N] [--quick] \
     [--json PATH] [--baseline PATH] [WORKLOAD ...]";
  exit 2

(* ---- chaos-lite: lease-holder death + steal ------------------------------ *)

(* Three victims with staggered kill points (so at least one dies inside a
   leased write) hammer private files; a stealer then overwrites the same
   files.  The acquire path's dead-victim steal joins the corpse's whole
   vector clock, so the stealer's overwrites of the victim's unfenced tail
   must NOT be reported — this scenario is a false-positive regression
   test for the steal happens-before edge. *)
let chaos_lite ~nthreads:_ ~ops =
  let world = Sim.create () in
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  let nvictims = 3 in
  Sim.spawn world ~proc ~name:"setup" (fun () ->
      let inst = FL.make FL.Zofs in
      let fs = inst.FL.fs in
      for v = 0 to nvictims - 1 do
        let path = Printf.sprintf "/victim%d" v in
        let fd = ok (V.openf fs path [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644) in
        for _ = 1 to 2 do
          ignore (ok (V.write fs fd block))
        done;
        ok (V.close fs fd)
      done;
      for v = 0 to nvictims - 1 do
        let path = Printf.sprintf "/victim%d" v in
        let vt =
          Sim.spawn_tid world ~proc ~name:(Printf.sprintf "victim%d" v)
            (fun () ->
              let fd = ok (V.openf fs path [ Ft.O_WRONLY ] 0) in
              for _ = 1 to max 4 ops do
                ignore (ok (V.pwrite fs fd ~off:0 block))
              done;
              ok (V.close fs fd))
        in
        (* Staggered suspension-point counts, all inside the write loop
           (a victim's 12 overwrites suspend a couple of hundred times in
           total), so each victim dies holding its inode lease at a
           different depth. *)
        Sim.arm_kill ~tid:vt ~after:(60 + (v * 60))
      done;
      Sim.spawn world ~proc ~name:"stealer" (fun () ->
          (* Outlive every victim's lease, then overwrite their files: the
             acquires steal the dead holders' leases. *)
          Sim.sleep_until 2_000_000;
          for v = 0 to nvictims - 1 do
            let path = Printf.sprintf "/victim%d" v in
            let fd = ok (V.openf fs path [ Ft.O_WRONLY ] 0) in
            for _ = 1 to max 4 ops do
              ignore (ok (V.pwrite fs fd ~off:0 block))
            done;
            ok (V.close fs fd)
          done;
          (* The scenario is vacuous unless the victims actually died
             mid-write; the count is deterministic, so print it for the
             transcript rather than silently passing. *)
          Printf.printf "  chaos-lite: %d lease holder(s) killed mid-write\n%!"
            (Sim.killed_threads ())));
  Sim.run world

(* ---- negative self-checks ------------------------------------------------ *)

(* Both scenarios run with the detector in Fail mode and must raise
   {!Race.Race_found}: they exist to prove the sanitizer still has teeth.
   The [Lease.elide_for_tid] knob makes one thread skip its leases — the
   simulated equivalent of the locking bug the sanitizer is for. *)

let run_negative ~name body =
  Race.reset_report ();
  let caught = ref None in
  Fun.protect
    ~finally:(fun () -> Zofs.Lease.elide_for_tid := None)
    (fun () ->
      let world = Sim.create () in
      let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
      Sim.spawn world ~proc ~name:"setup" (fun () -> body world proc caught);
      try Sim.run world with Race.Race_found v -> caught := Some v);
  let detected = !caught <> None || (Race.report ()).Race.r_races <> [] in
  (match (detected, !caught) with
  | true, Some v ->
      Printf.printf "  negative %-22s caught:\n%s\n%!" name
        (Race.string_of_violation v)
  | true, None -> Printf.printf "  negative %-22s caught (logged)\n%!" name
  | false, _ -> Printf.printf "  negative %-22s NOT CAUGHT\n%!" name);
  detected

(* Negative 1: two appenders overwrite the same file block; one elides the
   inode lease.  The elided thread's size/mtime/data stores conflict with
   the leased thread's. *)
let negative_elided_append () =
  run_negative ~name:"lease-elided-append" (fun world proc caught ->
      let inst = FL.make FL.Zofs in
      let fs = inst.FL.fs in
      let fd0 = ok (V.openf fs "/shared" [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644) in
      for _ = 1 to 2 do
        ignore (ok (V.write fs fd0 block))
      done;
      ok (V.close fs fd0);
      for w = 0 to 1 do
        Sim.spawn world ~proc ~name:(Printf.sprintf "appender%d" w) (fun () ->
            if w = 0 then Zofs.Lease.elide_for_tid := Some (Sim.self_tid ());
            try
              let fd = ok (V.openf fs "/shared" [ Ft.O_WRONLY ] 0) in
              for _ = 1 to 24 do
                ignore (ok (V.pwrite fs fd ~off:4096 block))
              done;
              ok (V.close fs fd)
            with Race.Race_found v -> caught := Some v)
      done)

(* Negative 2: two creators insert dentries into the same directory; one
   elides the directory lease, so both scan to the same free dentry slot
   and tear each other's insert. *)
let negative_torn_insert () =
  run_negative ~name:"torn-dentry-insert" (fun world proc caught ->
      let inst = FL.make FL.Zofs in
      let fs = inst.FL.fs in
      ok (V.mkdir fs "/d" 0o755);
      for w = 0 to 1 do
        Sim.spawn world ~proc ~name:(Printf.sprintf "creator%d" w) (fun () ->
            if w = 0 then Zofs.Lease.elide_for_tid := Some (Sim.self_tid ());
            try
              for i = 0 to 15 do
                let path = Printf.sprintf "/d/w%d_%d" w i in
                let fd = ok (V.openf fs path [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644) in
                ignore (ok (V.write fs fd "x"));
                ok (V.close fs fd)
              done
            with Race.Race_found v -> caught := Some v)
      done)

(* ---- deterministic JSON summary ------------------------------------------ *)

type row = {
  rw_name : string;
  rw_races : int;
  rw_allowlist : (string * int) list; (* sorted by site *)
  rw_words : int;
  rw_sync : int;
  rw_shadow : int;
}

let json_of ~mode ~threads ~ops ~rows ~neg1 ~neg2 =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"zofs-race-bench-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": %S,\n" (string_of_mode mode));
  Buffer.add_string b (Printf.sprintf "  \"threads\": %d,\n" threads);
  Buffer.add_string b (Printf.sprintf "  \"ops\": %d,\n" ops);
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"races\": %d, \"words_tracked\": %d, \
            \"sync_words\": %d, \"shadow_bytes\": %d, \"allowlist\": [" r.rw_name
           r.rw_races r.rw_words r.rw_sync r.rw_shadow);
      List.iteri
        (fun j (site, n) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (Printf.sprintf "{\"site\": %S, \"hits\": %d}" site n))
        r.rw_allowlist;
      Buffer.add_string b
        (if i = List.length rows - 1 then "]}\n" else "]},\n"))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"negatives\": {\"lease_elided_append\": %b, \"torn_dentry_insert\": \
        %b}\n"
       neg1 neg2);
  Buffer.add_string b "}\n";
  Buffer.contents b

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---- driver -------------------------------------------------------------- *)

let () =
  let mode = ref Race.Fail in
  let threads = ref 4 in
  let ops = ref 40 in
  let json = ref None in
  let baseline = ref None in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--mode" :: m :: rest ->
        mode := mode_of_string m;
        parse rest
    | "--threads" :: n :: rest ->
        threads := int_of_string n;
        parse rest
    | "--ops" :: n :: rest ->
        ops := int_of_string n;
        parse rest
    | "--quick" :: rest ->
        threads := 2;
        ops := 12;
        parse rest
    | "--json" :: p :: rest ->
        json := Some p;
        parse rest
    | "--baseline" :: p :: rest ->
        baseline := Some p;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | s :: _ when String.length s > 0 && s.[0] = '-' ->
        Printf.eprintf "zofs_race: unknown option %s\n" s;
        usage ()
    | s :: rest ->
        names := s :: !names;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let suite =
    List.map
      (fun w ->
        (w.Fx.wname, fun () -> ignore (w.Fx.run FL.Zofs ~nthreads:!threads ~ops:!ops)))
      Fx.all
    @ List.map
        (fun p ->
          (p.Fb.pname, fun () -> ignore (p.Fb.run FL.Zofs ~nthreads:!threads ~ops:!ops)))
        Fb.all
    @ [ ("chaos-lite", fun () -> chaos_lite ~nthreads:!threads ~ops:!ops) ]
  in
  let suite =
    match !names with
    | [] -> suite
    | wanted -> (
        List.filter (fun (n, _) -> List.mem n wanted) suite
        |> function
        | [] ->
            Printf.eprintf "zofs_race: no such workload (have: %s)\n"
              (String.concat " " (List.map fst suite));
            exit 2
        | l -> l)
  in
  Race.enable_auto !mode;
  Printf.printf "zofs_race: %d workloads, %d threads, %d ops/thread, mode %s\n%!"
    (List.length suite) !threads !ops (string_of_mode !mode);
  let total_races = ref 0 in
  let rows = ref [] in
  List.iter
    (fun (name, run) ->
      Race.reset_report ();
      let outcome =
        match run () with () -> Ok () | exception Race.Race_found v -> Error v
      in
      let r = Race.report () in
      Race.publish_obs_gauges ();
      let nraces = List.length r.Race.r_races in
      total_races := !total_races + nraces;
      let allow = List.sort compare r.Race.r_allowlist in
      let hits = List.fold_left (fun a (_, n) -> a + n) 0 allow in
      rows :=
        {
          rw_name = name;
          rw_races = nraces;
          rw_allowlist = allow;
          rw_words = r.Race.r_words_tracked;
          rw_sync = r.Race.r_sync_words;
          rw_shadow = r.Race.r_shadow_bytes;
        }
        :: !rows;
      (match outcome with
      | Ok () when nraces = 0 ->
          Printf.printf "  %-12s ok (%d words shadowed, %d allowlisted)\n%!" name
            r.Race.r_words_tracked hits
      | Ok () -> Printf.printf "  %-12s %d race(s)\n%!" name nraces
      | Error v ->
          Printf.printf "  %-12s FAILED:\n%s\n%!" name (Race.string_of_violation v));
      if nraces > 0 then Race.print_report ())
    suite;
  let rows = List.rev !rows in
  (* The negatives always run in Fail mode regardless of --mode: a sanitizer
     that cannot catch a planted bug gates nothing. *)
  Race.disable_auto ();
  Race.enable_auto Race.Fail;
  let neg1 = negative_elided_append () in
  let neg2 = negative_torn_insert () in
  Race.disable_auto ();
  Race.detach ();
  let js = json_of ~mode:!mode ~threads:!threads ~ops:!ops ~rows ~neg1 ~neg2 in
  (match !json with
  | None -> ()
  | Some p ->
      let oc = open_out_bin p in
      output_string oc js;
      close_out oc;
      Printf.printf "zofs_race: wrote %s\n%!" p);
  let drift =
    match !baseline with
    | None -> false
    | Some p ->
        let want = read_file p in
        if want = js then false
        else begin
          Printf.printf
            "zofs_race: summary drifted from %s (re-baseline with --json %s \
             after auditing the diff)\n\
             %!"
            p p;
          true
        end
  in
  if !total_races > 0 then begin
    Printf.printf "zofs_race: %d unannotated race(s)\n" !total_races;
    exit 1
  end;
  if not (neg1 && neg2) then begin
    print_endline "zofs_race: negative self-check escaped the sanitizer";
    exit 1
  end;
  if drift then exit 1;
  print_endline "zofs_race: clean"
