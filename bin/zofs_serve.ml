(* Overload campaign over the serving frontend (lib/serve).

   Drives zofs through Serve with thousands of simulated clients — a
   thundering herd, mixed-priority tenants at >= 2x the measured
   sustainable load, write fan-in on one hot inode under tight deadlines,
   an elephant tenant next to a cheap one, clients SIGKILLed mid-request,
   and a degrade/recover round-trip — and checks the serving-plane
   containment invariants: every request accounted exactly once, honest
   retry-afters, no tenant starved, the high-priority SLO held under
   overload, deadlines reaching lease acquisition, dead clients' slots
   reclaimed, and the tier machine returning to Normal.

     zofs_serve [--mode log|fail] [--seed N] [--quick] [--json FILE]
                [--baseline FILE]

   --json FILE      write the deterministic campaign report (every number
                    derives from the simulated clock, so the bytes are
                    identical run to run)
   --baseline FILE  additionally compare against a committed copy
                    (BENCH_serve.json) and fail on drift — what
                    `dune build @serve` enforces

   The run always finishes with the negative self-check: the mixed
   overload rerun against a naive FIFO server (admission disabled) must
   produce a starvation violation, proving the campaign can detect the
   failure class the serving plane exists to prevent. *)

module C = Serving.Campaign

let usage () =
  prerr_endline
    "usage: zofs_serve [--mode log|fail] [--seed N] [--quick] [--json FILE] \
     [--baseline FILE]";
  exit 2

let print_report (r : C.report) =
  Printf.printf
    "serve campaign: %d clients, %d requests\n\
    \  outcomes: ok=%d err=%d shed=%d timed-out=%d lost=%d (client kills=%d)\n\
    \  capacity: %d req/s sustainable; mixed scenario offered %d.%02dx\n\
    \  hi-prio:  p99 %d ns (SLO %d ns) under overload\n\
    \  deadlines: %d lease acquisitions abandoned at deadline\n\
    \  tiers:    degrade down=%d up=%d, final tier %s\n%!"
    r.C.c_clients r.C.c_requests r.C.c_done_ok r.C.c_done_err r.C.c_shed
    r.C.c_timed_out r.C.c_lost r.C.c_kills r.C.c_capacity_rps
    (r.C.c_overload_x100 / 100)
    (r.C.c_overload_x100 mod 100)
    r.C.c_hi_p99_ns r.C.c_hi_slo_ns r.C.c_lease_aborts r.C.c_degrade_downs
    r.C.c_degrade_ups r.C.c_final_tier;
  List.iter (fun v -> Printf.printf "  VIOLATION: %s\n%!" v) r.C.c_violations

let json_of (r : C.report) =
  let open Obs.Json in
  to_string
    (Obj
       [
         ("campaign", Str "serve");
         ("clients", Num (float_of_int r.C.c_clients));
         ("requests", Num (float_of_int r.C.c_requests));
         ("done_ok", Num (float_of_int r.C.c_done_ok));
         ("done_err", Num (float_of_int r.C.c_done_err));
         ("shed", Num (float_of_int r.C.c_shed));
         ("timed_out", Num (float_of_int r.C.c_timed_out));
         ("lost", Num (float_of_int r.C.c_lost));
         ("kills", Num (float_of_int r.C.c_kills));
         ("capacity_rps", Num (float_of_int r.C.c_capacity_rps));
         ("overload_x100", Num (float_of_int r.C.c_overload_x100));
         ("hi_p99_ns", Num (float_of_int r.C.c_hi_p99_ns));
         ("hi_slo_ns", Num (float_of_int r.C.c_hi_slo_ns));
         ("lease_aborts", Num (float_of_int r.C.c_lease_aborts));
         ("degrade_downs", Num (float_of_int r.C.c_degrade_downs));
         ("degrade_ups", Num (float_of_int r.C.c_degrade_ups));
         ("final_tier", Str r.C.c_final_tier);
         ("violations", Arr (List.map (fun v -> Str v) r.C.c_violations));
       ])

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let mode = ref `Fail in
  let seed = ref 21L in
  let quick = ref false in
  let json = ref None in
  let baseline = ref None in
  let rec parse = function
    | [] -> ()
    | "--mode" :: "log" :: rest ->
        mode := `Log;
        parse rest
    | "--mode" :: "fail" :: rest ->
        mode := `Fail;
        parse rest
    | "--seed" :: n :: rest ->
        seed := Int64.of_string n;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--json" :: p :: rest ->
        json := Some p;
        parse rest
    | "--baseline" :: p :: rest ->
        baseline := Some p;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let r = C.run ~seed:!seed ~quick:!quick () in
  print_report r;
  let js = json_of r in
  (match !json with
  | None -> ()
  | Some p ->
      let oc = open_out_bin p in
      output_string oc js;
      close_out oc;
      Printf.printf "zofs_serve: wrote %s\n%!" p);
  let drift =
    match !baseline with
    | None -> false
    | Some p ->
        let want = read_file p in
        if want = js then false
        else begin
          Printf.printf
            "zofs_serve: report drifted from %s (re-baseline with --json %s \
             after auditing the diff)\n\
             %!"
            p p;
          true
        end
  in
  Printf.printf "zofs_serve: negative self-check (admission disabled)...\n%!";
  let caught = C.negative_selfcheck ~quick:!quick () in
  if caught then
    Printf.printf "  naive FIFO server: starvation detected (good)\n%!"
  else Printf.printf "  NEGATIVE CHECK FAILED: starvation not detected\n%!";
  let bad = r.C.c_violations <> [] || (not caught) || drift in
  if bad && !mode = `Fail then exit 1
