(* One-shot observability dashboard — `top` for a ZoFS instance.

     dune exec bin/zofs_top.exe                       # live: sample a quick
                                                      # workload mix, render
     dune exec bin/zofs_top.exe -- BENCH_obs.json     # render a saved snapshot
     dune exec bin/zofs_top.exe -- --k 3 --json FILE

   Live mode runs one FxMark MWCL + one Filebench varmail round with the
   full observability plane on (labels, op tracing, flight recorder),
   defines the stock per-op SLOs, and renders what a fleet operator would
   want at a glance: totals, label-sliced top-k coffers/tenants by p99,
   per-tenant SLO error-budget burn, and flight-recorder status.

   File mode renders the same dashboard from a saved snapshot (bare, or a
   wrapper with an "obs" member, e.g. the committed BENCH_obs.json). *)

module FL = Workloads.Fslab
module Fx = Workloads.Fxmark
module Fb = Workloads.Filebench

let usage () =
  prerr_endline "usage: zofs_top [--k N] [--json] [SNAPSHOT.json]";
  exit 2

let load_snapshot file =
  let contents =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "zofs_top: %s\n" msg;
      exit 1
  in
  match Obs.Json.of_string contents with
  | Error msg ->
      Printf.eprintf "zofs_top: %s: bad JSON: %s\n" file msg;
      exit 1
  | Ok j -> (
      let snap_json =
        (* bare snapshot, a BENCH wrapper ("obs"), or a flight-recorder
           dump ("snapshot") *)
        match (Obs.Json.member "obs" j, Obs.Json.member "snapshot" j) with
        | Some o, _ -> o
        | None, Some s -> s
        | None, None -> j
      in
      match Obs.Snapshot.of_json snap_json with
      | Error msg ->
          Printf.eprintf "zofs_top: %s: not an obs snapshot: %s\n" file msg;
          exit 1
      | Ok snap -> snap)

let live_sample () =
  Obs.enable ();
  Obs.reset ();
  Obs.Slo.define ~name:"open-p99" ~op:"open" ~p99_target_ns:2_000_000;
  Obs.Slo.define ~name:"write-p99" ~op:"write" ~p99_target_ns:2_000_000;
  ignore (Fx.mwcl.Fx.run FL.Zofs ~nthreads:4 ~ops:40);
  ignore (Fb.varmail.Fb.run FL.Zofs ~nthreads:4 ~ops:25);
  ignore (Obs.Slo.publish (Obs.Snapshot.take ()));
  Obs.Snapshot.take ()

let () =
  let k = ref 5 and json = ref false and file = ref None in
  let rec parse = function
    | [] -> ()
    | "--k" :: n :: rest ->
        k := int_of_string n;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
        Printf.eprintf "zofs_top: unknown option %s\n" a;
        usage ()
    | a :: rest ->
        if !file <> None then usage ();
        file := Some a;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let source, snap =
    match !file with
    | Some f -> (f, load_snapshot f)
    | None -> ("live sample (mwcl + varmail, 4 threads)", live_sample ())
  in
  if !json then print_endline (Obs.Json.to_string (Obs.Snapshot.to_json snap))
  else begin
    Printf.printf "zofs top — %s\n\n" source;
    let c name =
      Option.value ~default:0 (Obs.Snapshot.counter_value snap name)
    in
    Printf.printf
      "ops: %d syscalls   %d kernel crossings   %d lease acquires (%d \
       steals)\n"
      (c "syscall.count") (c "gate.crossings") (c "lease.acquires")
      (c "lease.steals");
    Printf.printf
      "faults: %d media   %d graceful errors   quarantined coffers: %d\n"
      (c "fault.media")
      (c "fault.graceful_errors")
      (c "health.quarantined");
    (* serving plane: per-tenant series summed across tenants *)
    let csum base =
      List.fold_left
        (fun a (_, v) ->
          match v with Obs.Snapshot.L_counter n -> a + n | _ -> a)
        (c base)
        (Obs.Snapshot.labeled snap ~base)
    in
    Printf.printf
      "serve: %d admitted   %d shed   %d timed out   %d lost   %d deadline \
       aborts in lease wait\n\n"
      (csum "serve.submitted") (csum "serve.shed") (csum "serve.timed_out")
      (c "serve.lost_clients") (c "lease.aborts");
    (match Obs.Snapshot.render_top ~k:!k snap with
    | "" -> print_endline "no label-sliced series in this snapshot"
    | s -> print_string s);
    (* live mode only: flight-recorder status from the running process *)
    if !file = None then begin
      Printf.printf "\nflight recorder: %d events buffered (%d total)\n"
        (Obs.Flight.recorded ()) (Obs.Flight.total ());
      List.iter (Printf.printf "  dump: %s\n") (Obs.Flight.dump_paths ())
    end
  end
