(* Chaos campaign over a live ZoFS instance (lib/chaos).

   Runs application traffic under randomized mixed fault injection — NVM
   media poison (some sticky), lease-holder thread death mid-syscall,
   transient kernel allocation failures, and MPK-blocked stray stores —
   and checks the fault-domain containment invariants: no exception
   escapes the dispatcher, an untouched canary coffer stays available
   throughout, quarantined coffers refuse writes, every armed fault is
   accounted for, and the post-campaign offline fsck is a clean fixpoint.

     zofs_chaos [--mode log|fail] [--seed N] [--faults N] [--pages N]
                [--quick] [--json FILE] [--flight-dir DIR]

   --faults N      keep injecting until at least N faults have tripped
   --quick         smaller device, used by the @chaos dune alias (CI latency)
   --json FILE     write a machine-readable report (BENCH_chaos.json)
   --flight-dir D  where flight-recorder post-mortem dumps are written
                   (default "."); the campaign arms auto-dump, so every
                   coffer that leaves Healthy produces a flight-*.json

   The run always finishes with the negative self-check: the same campaign
   with coffer quarantine disabled must report the containment violation
   (a persistently failing coffer that is never fenced off), proving the
   gate can see the bug class it exists for. *)

module Ch = Chaos

let usage () =
  prerr_endline
    "usage: zofs_chaos [--mode log|fail] [--seed N] [--faults N] [--pages N] \
     [--quick] [--json FILE] [--flight-dir DIR]";
  exit 2

let print_report (r : Ch.report) =
  Printf.printf
    "campaign: %d rounds, %d ops\n\
    \  armed:   poison=%d kills=%d transients=%d scribbles=%d\n\
    \  tripped: media-faults=%d kills=%d transients=%d scribbles=%d  \
     (total %d)\n\
    \  procs:   whole-process kills armed=%d fired=%d reaped=%d\n\
    \  poison:  healed=%d patrol-scrubbed=%d fenced=%d   transient \
     residue=%d\n\
    \  healing: repairs ok/failed=%d/%d  lease-steals=%d intent-repairs=%d \
     graceful-EIO=%d\n\
    \  health:  quarantined=%d offline=%d   fsck findings=%d\n%!"
    r.Ch.c_rounds r.Ch.c_ops r.Ch.c_armed_poison r.Ch.c_armed_kills
    r.Ch.c_armed_transients r.Ch.c_armed_scribbles r.Ch.c_media_faults
    r.Ch.c_kills_fired r.Ch.c_transients_tripped r.Ch.c_scribbles_blocked
    r.Ch.c_faults_tripped r.Ch.c_armed_proc_kills r.Ch.c_proc_kills
    r.Ch.c_procs_reaped r.Ch.c_poison_healed r.Ch.c_poison_scrubbed
    r.Ch.c_poison_fenced r.Ch.c_transient_residue r.Ch.c_repairs_ok
    r.Ch.c_repairs_failed r.Ch.c_lease_steals r.Ch.c_intent_repairs
    r.Ch.c_graceful_errors r.Ch.c_quarantined r.Ch.c_offline
    r.Ch.c_fsck_findings;
  List.iter
    (fun v -> Printf.printf "  VIOLATION: %s\n%!" v)
    r.Ch.c_violations;
  List.iter
    (fun p -> Printf.printf "  flight-recorder dump: %s\n%!" p)
    r.Ch.c_flight_dumps

let json_of ~(r : Ch.report) ~min_faults ~negative_caught ~seconds =
  let b = Buffer.create 2048 in
  let fld k v = Printf.bprintf b "  %S: %s,\n" k v in
  Buffer.add_string b "{\n";
  fld "rounds" (string_of_int r.Ch.c_rounds);
  fld "ops" (string_of_int r.Ch.c_ops);
  fld "min_faults" (string_of_int min_faults);
  fld "armed_poison" (string_of_int r.Ch.c_armed_poison);
  fld "armed_kills" (string_of_int r.Ch.c_armed_kills);
  fld "armed_transients" (string_of_int r.Ch.c_armed_transients);
  fld "armed_scribbles" (string_of_int r.Ch.c_armed_scribbles);
  fld "media_faults" (string_of_int r.Ch.c_media_faults);
  fld "kills_fired" (string_of_int r.Ch.c_kills_fired);
  fld "armed_proc_kills" (string_of_int r.Ch.c_armed_proc_kills);
  fld "proc_kills" (string_of_int r.Ch.c_proc_kills);
  fld "procs_reaped" (string_of_int r.Ch.c_procs_reaped);
  fld "transients_tripped" (string_of_int r.Ch.c_transients_tripped);
  fld "scribbles_blocked" (string_of_int r.Ch.c_scribbles_blocked);
  fld "faults_tripped" (string_of_int r.Ch.c_faults_tripped);
  fld "poison_healed" (string_of_int r.Ch.c_poison_healed);
  fld "poison_scrubbed" (string_of_int r.Ch.c_poison_scrubbed);
  fld "poison_fenced" (string_of_int r.Ch.c_poison_fenced);
  fld "transient_residue" (string_of_int r.Ch.c_transient_residue);
  fld "repairs_ok" (string_of_int r.Ch.c_repairs_ok);
  fld "repairs_failed" (string_of_int r.Ch.c_repairs_failed);
  fld "quarantined" (string_of_int r.Ch.c_quarantined);
  fld "offline" (string_of_int r.Ch.c_offline);
  fld "lease_steals" (string_of_int r.Ch.c_lease_steals);
  fld "intent_repairs" (string_of_int r.Ch.c_intent_repairs);
  fld "graceful_errors" (string_of_int r.Ch.c_graceful_errors);
  fld "fsck_findings" (string_of_int r.Ch.c_fsck_findings);
  Buffer.add_string b "  \"violations\": [";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "%S" v)
    r.Ch.c_violations;
  Buffer.add_string b "],\n";
  Buffer.add_string b "  \"flight_dumps\": [";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "%S" p)
    r.Ch.c_flight_dumps;
  Buffer.add_string b "],\n";
  Printf.bprintf b "  \"quarantine_selfcheck_caught\": %b,\n" negative_caught;
  Printf.bprintf b "  \"seconds\": %.3f\n}\n" seconds;
  Buffer.contents b

let () =
  let mode = ref `Fail in
  let seed = ref 11L in
  let min_faults = ref 200 in
  let pages = ref 16384 in
  let json = ref None in
  let flight_dir = ref "." in
  let rec parse = function
    | [] -> ()
    | "--mode" :: m :: rest ->
        (match m with
        | "log" -> mode := `Log
        | "fail" -> mode := `Fail
        | _ ->
            Printf.eprintf "zofs_chaos: unknown mode %S (want log|fail)\n" m;
            exit 2);
        parse rest
    | "--seed" :: n :: rest ->
        seed := Int64.of_string n;
        parse rest
    | "--faults" :: n :: rest ->
        min_faults := int_of_string n;
        parse rest
    | "--pages" :: n :: rest ->
        pages := int_of_string n;
        parse rest
    | "--quick" :: rest ->
        pages := 12288;
        parse rest
    | "--json" :: f :: rest ->
        json := Some f;
        parse rest
    | "--flight-dir" :: d :: rest ->
        flight_dir := d;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | s :: _ ->
        Printf.eprintf "zofs_chaos: unknown option %s\n" s;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let t0 = Sys.time () in
  let r =
    Ch.run ~seed:!seed ~pages:!pages ~min_faults:!min_faults
      ~flight_dir:!flight_dir ()
  in
  print_report r;
  (* Negative self-check: quarantine off → the campaign must detect that a
     persistently failing coffer was never fenced. *)
  let neg =
    Ch.negative_campaign ~seed:(Int64.add !seed 12L) ~flight_dir:!flight_dir ()
  in
  let negative_caught = Ch.caught neg in
  if negative_caught then
    Printf.printf
      "quarantine-disabled self-check: containment violation caught as \
       expected\n%!"
  else begin
    Printf.printf
      "quarantine-disabled self-check: NOT caught — campaign is blind!\n%!";
    print_report neg
  end;
  let seconds = Sys.time () -. t0 in
  Printf.printf "total: %d faults tripped, %d violations (%.1fs)\n%!"
    r.Ch.c_faults_tripped
    (List.length r.Ch.c_violations)
    seconds;
  (match !json with
  | Some f ->
      let oc = open_out f in
      output_string oc (json_of ~r ~min_faults:!min_faults ~negative_caught ~seconds);
      close_out oc;
      Printf.printf "wrote %s\n%!" f
  | None -> ());
  if
    !mode = `Fail
    && (r.Ch.c_violations <> []
       || r.Ch.c_faults_tripped < !min_faults
       || not negative_caught)
  then exit 1
