(* zofs_perf: run the pinned hot-path experiment set and gate on the
   committed baseline (BENCH_perf.json).

     zofs_perf [--quick] [--mode fail|log] [--tol F]
               [--baseline FILE] [--write-baseline FILE] [--out FILE]

   The experiments are deterministic (single simulated thread, no wall
   clock), so the emitted JSON is byte-identical across runs of the same
   binary.  With --baseline, per-op sim-ns / flushes / fences / kernel
   crossings / enlarge calls are compared against the committed numbers and
   any regression beyond the tolerance fails the run (mode fail, the @perf
   alias) or is merely reported (mode log).  Files are only written when
   --out / --write-baseline ask for them, so the gate runs happily inside
   the dune sandbox. *)

module P = Perf_gate

type mode = Fail | Log

let usage () =
  prerr_endline
    "usage: zofs_perf [--quick] [--mode fail|log] [--tol F] [--baseline \
     FILE] [--write-baseline FILE] [--out FILE]";
  exit 2

let () =
  let quick = ref false in
  let mode = ref Fail in
  let tol = ref P.default_tol in
  let baseline = ref None in
  let write_baseline = ref None in
  let out = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--mode" :: m :: rest ->
        (match m with
        | "fail" -> mode := Fail
        | "log" -> mode := Log
        | _ -> usage ());
        parse rest
    | "--tol" :: t :: rest ->
        (match float_of_string_opt t with
        | Some v when v >= 0.0 -> tol := v
        | _ -> usage ());
        parse rest
    | "--baseline" :: f :: rest ->
        baseline := Some f;
        parse rest
    | "--write-baseline" :: f :: rest ->
        write_baseline := Some f;
        parse rest
    | "--out" :: f :: rest ->
        out := Some f;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let results = P.run_all ~quick:!quick () in
  Printf.printf "zofs_perf: pinned experiments%s\n"
    (if !quick then " (quick)" else "");
  print_string (P.render_results results);
  Option.iter (fun f -> P.write_file f results) !out;
  Option.iter
    (fun f ->
      P.write_file f results;
      Printf.printf "zofs_perf: baseline written to %s\n" f)
    !write_baseline;
  match !baseline with
  | None -> ()
  | Some f -> (
      match P.read_file f with
      | Error e ->
          Printf.eprintf "zofs_perf: cannot read baseline %s: %s\n" f e;
          exit 1
      | Ok base ->
          let v = P.compare_results ~tol:!tol ~baseline:base ~current:results () in
          Printf.printf "zofs_perf: trend vs %s (tol %.0f%%)\n" f
            (100.0 *. !tol);
          print_string (P.render_verdict v);
          if not (P.clean v) then begin
            (match !mode with
            | Fail ->
                Printf.eprintf
                  "zofs_perf: FAILED — %d regression(s) vs baseline\n"
                  (List.length v.P.regressions)
            | Log ->
                Printf.printf
                  "zofs_perf: %d regression(s) vs baseline (log mode)\n"
                  (List.length v.P.regressions));
            if !mode = Fail then exit 1
          end
          else print_endline "zofs_perf: OK — no regressions")
