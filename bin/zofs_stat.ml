(* Render a saved observability snapshot back into the human-readable
   tables:

     dune exec bin/zofs_stat.exe -- BENCH_obs.json
     dune exec bin/zofs_stat.exe -- BENCH_fig8.json   # uses its "obs" field

   Accepts either a bare snapshot (as written to BENCH_obs.json by
   `bench/main.exe --obs`) or a per-experiment BENCH_<exp>.json wrapper
   whose "obs" field holds the snapshot. *)

let usage () =
  prerr_endline "usage: zofs_stat [--title TITLE] [--top K] [--json] SNAPSHOT.json";
  exit 2

let () =
  let title = ref None and file = ref None in
  let topk = ref 5 and json = ref false in
  let rec parse = function
    | [] -> ()
    | "--title" :: t :: rest ->
        title := Some t;
        parse rest
    | "--top" :: n :: rest ->
        topk := int_of_string n;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
        Printf.eprintf "zofs_stat: unknown option %s\n" a;
        usage ()
    | a :: rest ->
        if !file <> None then usage ();
        file := Some a;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> usage () in
  let contents =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "zofs_stat: %s\n" msg;
      exit 1
  in
  match Obs.Json.of_string contents with
  | Error msg ->
      Printf.eprintf "zofs_stat: %s: bad JSON: %s\n" file msg;
      exit 1
  | Ok j -> (
      let snap_json =
        (* bare snapshot, a BENCH wrapper ("obs"), or a flight-recorder
           dump ("snapshot") *)
        match (Obs.Json.member "obs" j, Obs.Json.member "snapshot" j) with
        | Some o, _ -> o
        | None, Some s -> s
        | None, None -> j
      in
      match Obs.Snapshot.of_json snap_json with
      | Error msg ->
          Printf.eprintf "zofs_stat: %s: not an obs snapshot: %s\n" file msg;
          exit 1
      | Ok snap when !json ->
          (* normalized snapshot JSON (strips any wrapper), for piping *)
          print_endline (Obs.Json.to_string (Obs.Snapshot.to_json snap))
      | Ok snap ->
          let title =
            match !title with Some t -> t | None -> Filename.basename file
          in
          print_string (Obs.Snapshot.render ~title snap);
          (* label-sliced top-k: worst coffers/tenants by p99, tenants by
             SLO error-budget burn — empty when the run had no labels *)
          (match Obs.Snapshot.render_top ~k:!topk snap with
          | "" -> ()
          | s ->
              print_newline ();
              print_string s);
          (* Race-sanitizer block: gauges pushed by Race.publish_obs_gauges
             plus the incrementally counted races / allowlist hits.  Only
             rendered when the run had the sanitizer attached. *)
          let counter name = Obs.Snapshot.counter_value snap name in
          (match
             ( counter "race.words_tracked",
               counter "race.races",
               counter "race.allowlist_hits" )
           with
          | None, None, None -> ()
          | words, races, allow ->
              let v = Option.value ~default:0 in
              print_newline ();
              print_endline "race sanitizer:";
              Printf.printf "  words tracked   %10d\n" (v words);
              Printf.printf "  sync words      %10d\n"
                (v (counter "race.sync_words"));
              Printf.printf "  races found     %10d\n" (v races);
              Printf.printf "  allowlist hits  %10d\n" (v allow)))
