(* Offline recovery tool (paper §3.5 / §5.3).

     dune exec bin/zofs_fsck.exe -- --image fs.img     # check a saved image
     dune exec bin/zofs_fsck.exe -- --demo             # corrupt-and-repair demo *)

module V = Treasury.Vfs
module K = Treasury.Kernfs

let print_report (r : Zofs.Recovery.report) =
  Printf.printf
    "coffers scanned:        %d\n\
     pages in use:           %d\n\
     pages reclaimed:        %d\n\
     dentries dropped:       %d\n\
     root inodes reinit'd:   %d\n\
     cross-refs checked:     %d\n\
     cross-refs repaired:    %d\n\
     cross-refs dropped:     %d\n\
     simulated time:         %.1f us (%.1f user + %.1f kernel)\n"
    r.Zofs.Recovery.coffers_scanned r.Zofs.Recovery.pages_in_use
    r.Zofs.Recovery.pages_reclaimed r.Zofs.Recovery.dentries_dropped
    r.Zofs.Recovery.inodes_reinitialized r.Zofs.Recovery.cross_refs_checked
    r.Zofs.Recovery.cross_refs_repaired r.Zofs.Recovery.cross_refs_dropped
    (float_of_int (r.Zofs.Recovery.user_ns + r.Zofs.Recovery.kernel_ns) /. 1e3)
    (float_of_int r.Zofs.Recovery.user_ns /. 1e3)
    (float_of_int r.Zofs.Recovery.kernel_ns /. 1e3);
  (match Zofs.Recovery.findings r with
  | [] -> print_endline "findings:               none"
  | fs ->
      Printf.printf "findings:               %d\n" (List.length fs);
      List.iter
        (fun f -> Printf.printf "  - %s\n" (Zofs.Recovery.finding_to_string f))
        fs);
  (* auto-dump armed below: a coffer leaving Healthy during the scan writes
     a flight-recorder post-mortem — point the reader at it *)
  match Obs.Flight.last_dump_path () with
  | Some p -> Printf.printf "flight-recorder dump:   %s\n" p
  | None -> ()

let check_image path =
  Obs.enable ();
  Obs.Flight.set_autodump true;
  if not (Sys.file_exists path) then begin
    Printf.eprintf "no such image: %s\n" path;
    exit 1
  end;
  let dev = Nvm.Device.load_image path in
  let mpk = Mpk.create dev in
  let kfs = K.mount dev mpk in
  let report =
    Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
        Zofs.Recovery.recover_all kfs)
  in
  print_report report;
  Nvm.Device.save_image dev path;
  Printf.printf "repaired image written back to %s\n" path

let ok = function
  | Ok v -> v
  | Error e -> failwith (Treasury.Errno.to_string e)

let demo () =
  Obs.enable ();
  Obs.Flight.set_autodump true;
  print_endline "demo: building a file system, corrupting it, repairing it";
  let dev = Nvm.Device.create ~perf:Nvm.Perf.optane ~size:(16384 * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  let kfs =
    K.mkfs dev mpk ~root_ctype:Zofs.Ufs.ctype ~root_mode:0o755 ~root_uid:0
      ~root_gid:0 ()
  in
  Zofs.Ufs.mkfs kfs;
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  Sim.run_thread ~proc (fun () ->
      let disp = Treasury.Dispatcher.create kfs in
      let ufs = Zofs.Ufs.create kfs in
      Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
      let fs = Treasury.Dispatcher.as_vfs disp in
      for i = 0 to 49 do
        ok (V.write_file fs (Printf.sprintf "/f%02d" i) (String.make 5000 'x'))
      done;
      (* corrupt three random dentries and crash with unflushed lines *)
      Mpk.with_kernel mpk (fun () ->
          Mpk.with_write_window mpk (fun () ->
              let root = K.root_coffer kfs in
              let info = Option.get (Treasury.Coffer.read dev ~id:root) in
              List.iter
                (fun i ->
                  match
                    Zofs.Dir.lookup dev ~ino:info.Treasury.Coffer.root_file
                      (Printf.sprintf "f%02d" i)
                  with
                  | Some de -> Nvm.Device.write_u32 dev de.Zofs.Dir.de_inode 0xBAD
                  | None -> ())
                [ 7; 23; 42 ];
              Nvm.Device.persist_all dev)));
  Nvm.Device.crash dev;
  let kfs = K.mount dev mpk in
  let report =
    Sim.run_thread ~proc (fun () -> Zofs.Recovery.recover_all kfs)
  in
  print_report report;
  (* verify what's left *)
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let disp = Treasury.Dispatcher.create kfs in
      let ufs = Zofs.Ufs.create kfs in
      Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
      let fs = Treasury.Dispatcher.as_vfs disp in
      let alive = ref 0 in
      for i = 0 to 49 do
        if V.exists fs (Printf.sprintf "/f%02d" i) then incr alive
      done;
      Printf.printf "%d/50 files survive (3 corrupted ones dropped)\n" !alive)

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [ "--image"; path ] -> check_image path
  | [ "--demo" ] | [] -> demo ()
  | _ ->
      prerr_endline "usage: zofs_fsck [--image FILE | --demo]";
      exit 1
