(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) on the simulated NVM substrate, plus the ablations listed
   in DESIGN.md §5 and a Bechamel suite measuring real host time of each
   experiment's kernel operation.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table2 fig7 --quick

   All paper numbers are simulated time (deterministic); Bechamel numbers
   are host wall-clock. *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types
module FL = Workloads.Fslab
module Fx = Workloads.Fxmark
module Fb = Workloads.Filebench
module D = Nvm.Device

let ok = Workloads.Runner.ok

(* scale knobs (reduced by --quick) *)
let thread_counts = ref [ 1; 2; 4; 8; 12; 16; 20 ]

(* tenant-process counts for the shared-file/dir experiments (Table 2).
   The paper stops at 2 processes; we scale the same experiment to 64
   tenants, each a full Sim.Proc with its own FSLib, to exercise the
   cross-process lease-handoff path at fleet size. *)
let shared_proc_counts = ref [ 1; 2; 16; 64 ]
let fx_ops = ref 150
let fb_ops = ref 60
let kv_ops = ref 300
let tpcc_txns = ref 120
let lat_ops = ref 200

let root_proc () = Sim.Proc.create ~uid:0 ~gid:0 ()

(* ==== Table 1: DRAM and Optane DC PM latency and bandwidth ============== *)

let measure_device perf =
  let dev = D.create ~perf ~size:(16384 * Nvm.page_size) () in
  Sim.run_thread (fun () ->
      (* read latency: cold scalar loads *)
      let t0 = Sim.now () in
      for i = 0 to 999 do
        ignore (D.read_u64 dev (i * 4096))
      done;
      let read_lat = (Sim.now () - t0) / 1000 in
      (* read bandwidth: stream 16 MB *)
      let t0 = Sim.now () in
      for i = 0 to 15 do
        ignore (D.read_bytes dev (i * 1048576) 1048576)
      done;
      let read_bw = 16.0 /. (float_of_int (Sim.now () - t0) /. 1e9) /. 1024.0 in
      (* write latency: ntstore + fence *)
      let t0 = Sim.now () in
      for i = 0 to 999 do
        D.nt_write_u64 dev (i * 4096) i;
        D.sfence dev
      done;
      let write_lat = (Sim.now () - t0) / 1000 in
      (* write bandwidth: stream 16 MB of non-temporal stores *)
      let chunk = String.make 1048576 'w' in
      let t0 = Sim.now () in
      for i = 0 to 15 do
        D.nt_write_string dev (i * 1048576) chunk
      done;
      D.sfence dev;
      let write_bw = 16.0 /. (float_of_int (Sim.now () - t0) /. 1e9) /. 1024.0 in
      (read_lat, read_bw, write_lat, write_bw))

let table1 () =
  Report.section "Table 1: DRAM and Optane DC PM latency and bandwidth";
  let rows =
    List.map
      (fun (label, perf) ->
        let rl, rb, wl, wb = measure_device perf in
        [
          label;
          Printf.sprintf "read: %.0f GB/s / %d ns" rb rl;
          Printf.sprintf "write: %.0f GB/s / %d ns" wb wl;
        ])
      [ ("DRAM", Nvm.Perf.dram); ("Optane DC PM", Nvm.Perf.optane) ]
  in
  Report.table
    ~title:
      "(paper: DRAM 115/79 GB/s, 81/86 ns; Optane 39/14 GB/s, 305/94 ns)"
    [ "Memory"; "Read (bw/lat)"; "Write (bw/lat)" ]
    rows

(* ==== Table 2: shared append/create latency ============================= *)

type shared_sys = {
  ss_label : string;
  (* builds shared state once, returns a per-process fs factory *)
  ss_make : unit -> (unit -> V.fs);
}

let shared_systems () =
  [
    {
      ss_label = "Strata";
      ss_make =
        (fun () ->
          let fs = Baselines.Strata.fs ~pages:65536 () in
          fun () -> fs);
    };
    {
      ss_label = "NOVA";
      ss_make =
        (fun () ->
          let t = Baselines.Nova.create ~pages:65536 () in
          let fs = V.Fs ((module Baselines.Engine_vfs), t) in
          fun () -> fs);
    };
    {
      ss_label = "ZoFS";
      ss_make =
        (fun () ->
          let _dev, kfs = FL.make_zofs ~pages:65536 ~perf:Nvm.Perf.optane () in
          Zofs.Ufs.mkfs kfs;
          fun () -> FL.zofs_fslib kfs);
    };
  ]

let run_shared sys ~nprocs ~op =
  let world = Sim.create () in
  let procs = Array.init nprocs (fun _ -> root_proc ()) in
  let stats = Sim.Stats.create () in
  let ops = !lat_ops in
  Sim.spawn world ~proc:procs.(0) ~name:"setup" (fun () ->
      let factory = sys.ss_make () in
      let fs0 = factory () in
      ok (V.mkdir fs0 "/sdir" 0o755);
      ok (V.write_file fs0 "/sfile" ~mode:0o644 "");
      for p = 0 to nprocs - 1 do
        Sim.spawn world ~proc:procs.(p) ~name:(Printf.sprintf "p%d" p)
          (fun () ->
            (* per-tenant obs label, keyed by index (pids are a global
               counter — not stable across runs) so zofs_top/zofs_stat
               attribute latency per tenant under --obs *)
            Obs.set_tenant p;
            let fs = if p = 0 then fs0 else factory () in
            let run_op = op fs p in
            for i = 0 to ops - 1 do
              let t0 = Sim.now () in
              run_op i;
              Sim.Stats.add stats (float_of_int (Sim.now () - t0));
              (* think time so processes interleave (worst-case sharing) *)
              Sim.advance 500
            done)
      done);
  Sim.run world;
  Sim.Stats.mean stats

let append_op fs _p =
  let block = String.make 4096 'a' in
  let fd = ref None in
  fun _i ->
    let f =
      match !fd with
      | Some f -> f
      | None ->
          let f = ok (V.openf fs "/sfile" [ Ft.O_WRONLY; Ft.O_APPEND ] 0) in
          fd := Some f;
          f
    in
    ignore (ok (V.write fs f block))

let create_op fs p =
 fun i ->
  let path = Printf.sprintf "/sdir/p%d_f%d" p i in
  let fd = ok (V.openf fs path [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644) in
  ok (V.close fs fd)

let table2 () =
  Report.section
    "Table 2: latency (ns) of ops on a file/dir shared by processes";
  let systems = shared_systems () in
  let rows =
    List.concat_map
      (fun (opname, op) ->
        List.map
          (fun nprocs ->
            let cells =
              List.map
                (fun sys ->
                  Report.commas (int_of_float (run_shared sys ~nprocs ~op)))
                systems
            in
            (opname ^ " " ^ string_of_int nprocs) :: cells)
          !shared_proc_counts)
      [ ("append", append_op); ("create", create_op) ]
  in
  Report.table
    ~title:
      "(paper, which stops at 2 processes: append 1p: Strata 1,653 / NOVA \
       2,172 / ZoFS 1,147; 2p: 34,551 / 3,882 / 1,703;\n\
      \ create 1p: 4,195 / 3,534 / 2,494; 2p: 283,972 / 6,167 / 3,459; \
       16p/64p rows are our fleet-scale extension)"
    ([ "Operation #p" ] @ List.map (fun s -> s.ss_label) systems)
    rows

(* ==== Table 3: file permissions in databases and web servers ============ *)

let table3 () =
  Report.section "Table 3: file permissions in databases and web servers";
  let _dev, kfs = FL.make_zofs ~root_mode:0o777 ~pages:131072 ~perf:Nvm.Perf.free () in
  let rows = ref [] in
  let survey_one ~system ~uid populate root =
    let proc = Sim.Proc.create ~uid ~gid:uid () in
    Sim.run_thread ~proc (fun () ->
        (* FSLibs is per process: build one for this user *)
        let fs = FL.zofs_fslib kfs in
        (match populate fs root with
        | Ok () -> ()
        | Error e -> failwith (Treasury.Errno.to_string e));
        List.iter
          (fun r ->
            rows :=
              [
                system;
                Ft.kind_to_string r.Survey.Appdirs.r_kind;
                Printf.sprintf "%o" r.Survey.Appdirs.r_perm;
                Printf.sprintf "%d/%d" r.Survey.Appdirs.r_uid
                  r.Survey.Appdirs.r_gid;
                Report.commas r.Survey.Appdirs.r_count;
                Report.bytes_human r.Survey.Appdirs.r_bytes;
              ]
              :: !rows)
          (Survey.Appdirs.scan fs ~system root))
  in
  survey_one ~system:"MySQL" ~uid:970 Survey.Appdirs.populate_mysql "/mysql";
  survey_one ~system:"PostgreSQL" ~uid:969 Survey.Appdirs.populate_postgres "/pg";
  survey_one ~system:"DokuWiki" ~uid:33
    (fun fs root -> Survey.Appdirs.populate_dokuwiki ~scale:10 fs root)
    "/wiki";
  Report.table
    ~title:
      "(DokuWiki generated at 1/10 scale; sizes are synthetic — see DESIGN.md)"
    [ "System"; "Type"; "Perm."; "Uid/Gid"; "# Files"; "Size" ]
    (List.rev !rows)

(* ==== Table 4: FSL Homes snapshot + grouping ============================= *)

let table4 () =
  Report.section
    "Table 4: file statistics in the (synthetic) FSL Homes snapshot";
  let files = Survey.Fsl.generate () in
  let m = Survey.Fsl.marginals files in
  let perms = [ 0o644; 0o600; 0o666; 0o444; 0o660; 0o640; 0o664; 0o440 ] in
  let count kind perm =
    Option.value ~default:0 (Hashtbl.find_opt m (kind, perm))
  in
  let kind_row label kind =
    label
    :: Report.commas (Survey.Fsl.count_kind files kind)
    :: List.map (fun p -> Report.commas (count kind p)) perms
  in
  Report.table ~title:"(marginals match the paper's Table 4 exactly)"
    ([ "Type"; "# Files" ] @ List.map (Printf.sprintf "%o") perms)
    [
      kind_row "Regular" Survey.Fsl.Regular;
      kind_row "Symlink" Survey.Fsl.Symlink;
      kind_row "Directory" Survey.Fsl.Directory;
    ];
  let s = Survey.Grouping.analyze files in
  Printf.printf
    "\n\
     grouping: %s groups (paper: 4,449); largest group holds %s files = \
     %.1f%% (paper: ~1/3);\n\
     single-file groups: %s (paper: 3,795, covering 0.6%% of files);\n\
     largest group bytes: %s (paper: 52.0GB)\n"
    (Report.commas s.Survey.Grouping.n_groups)
    (Report.commas s.Survey.Grouping.largest_files)
    (100.0
    *. float_of_int s.Survey.Grouping.largest_files
    /. float_of_int (Array.length files))
    (Report.commas s.Survey.Grouping.single_file_groups)
    (Report.bytes_human s.Survey.Grouping.largest_bytes);
  let by_perm_rows =
    List.map
      (fun (p, n, mn, avg, mx) ->
        [
          Printf.sprintf "%o" p;
          Report.commas n;
          Report.bytes_human mn;
          Report.bytes_human avg;
          Report.bytes_human mx;
        ])
      s.Survey.Grouping.by_perm
  in
  Report.table ~title:"groups by permission class"
    [ "Perm"; "# Groups"; "Min size"; "Avg size"; "Max size" ]
    by_perm_rows

(* ==== Figure 7: FxMark ==================================================== *)

let fxmark_systems = [ FL.Zofs; FL.Pmfs; FL.Nova; FL.Ext4_dax ]

let series_table ~title ~row_label runs =
  Report.record_series ~title runs;
  let header = row_label :: List.map string_of_int !thread_counts in
  let rows =
    List.map
      (fun (label, points) ->
        label
        :: List.map
             (fun n ->
               match List.assoc_opt n points with
               | Some v -> Report.f3 v
               | None -> "-")
             !thread_counts)
      runs
  in
  Report.table ~title header rows

let fig7 ?only () =
  Report.section "Figure 7: FxMark throughput (Mops/s) vs threads";
  List.iter
    (fun w ->
      let skip =
        match only with
        | Some names -> not (List.mem w.Fx.wname names)
        | None -> false
      in
      if not skip then
        let runs =
          List.map
            (fun sys ->
              ( FL.label sys,
                List.map
                  (fun n ->
                    let r = w.Fx.run sys ~nthreads:n ~ops:!fx_ops in
                    (n, r.Workloads.Runner.mops_per_sec))
                  !thread_counts ))
            fxmark_systems
        in
        series_table
          ~title:(Printf.sprintf "%s (Figure %s)" w.Fx.wname w.Fx.figure)
          ~row_label:"FS \\ threads" runs)
    Fx.all

(* ==== Figure 8: DWOL throughput breakdown ================================= *)

let fig8 () =
  Report.section "Figure 8: throughput breakdown of DWOL (1 thread, Mops/s)";
  let systems =
    [
      FL.Zofs;
      FL.sysempty_variant;
      FL.kwrite_variant;
      FL.Nova_noindex;
      FL.Pmfs_nocache;
      FL.Novai_noindex;
      FL.Pmfs;
      FL.Nova;
      FL.Novai;
    ]
  in
  let rows =
    List.map
      (fun sys ->
        let r = Fx.dwol.Fx.run sys ~nthreads:1 ~ops:!fx_ops in
        [ FL.label sys; Report.f3 r.Workloads.Runner.mops_per_sec ])
      systems
  in
  Report.table
    ~title:
      "(paper groups: {ZoFS, ZoFS-sysempty} > {NOVA-noindex, PMFS-nocache,\n\
      \ ZoFS-kwrite, NOVAi-noindex} > {PMFS, NOVA, NOVAi})"
    [ "System"; "Mops/s" ] rows

(* ==== Figure 9 / Table 6: Filebench ======================================== *)

let fig9 ?only () =
  Report.section "Figure 9: Filebench throughput (kops/s) vs threads";
  List.iter
    (fun p ->
      let skip =
        match only with
        | Some names -> not (List.mem p.Fb.pname names)
        | None -> false
      in
      if not skip then begin
        let systems =
          if p.Fb.pname = "fileserver" || p.Fb.pname = "webserver" then
            fxmark_systems @ [ FL.Strata ]
          else fxmark_systems
        in
        let runs =
          List.map
            (fun sys ->
              ( FL.label sys,
                List.map
                  (fun n ->
                    let r = p.Fb.run sys ~nthreads:n ~ops:!fb_ops in
                    (n, r.Workloads.Runner.mops_per_sec *. 1000.0))
                  !thread_counts ))
            systems
        in
        let runs =
          if p.Fb.pname = "webproxy" || p.Fb.pname = "varmail" then
            runs
            @ [
                ( "ZoFS-20dirwidth",
                  List.map
                    (fun n ->
                      let r =
                        p.Fb.run ~dir_width:20 FL.Zofs ~nthreads:n ~ops:!fb_ops
                      in
                      (n, r.Workloads.Runner.mops_per_sec *. 1000.0))
                    !thread_counts );
              ]
          else runs
        in
        series_table
          ~title:
            (Printf.sprintf
               "%s (paper: %d files, dir-width %d, %s files; scaled — see \
                DESIGN.md)"
               p.Fb.pname p.Fb.nfiles p.Fb.dir_width
               (Report.bytes_human p.Fb.file_size))
          ~row_label:"FS \\ threads" runs
      end)
    Fb.all

(* ==== Figure 10: customized Filebench ====================================== *)

let fig10 () =
  Report.section "Figure 10: Filebench with customized configurations";
  let rows =
    List.map
      (fun sys ->
        let r = Fb.fileserver.Fb.run sys ~nthreads:1 ~ops:!fb_ops in
        [ FL.label sys; Report.f2 (r.Workloads.Runner.mops_per_sec *. 1000.0) ])
      (fxmark_systems @ [ FL.Strata ])
  in
  Report.table
    ~title:
      "(a) fileserver, 1 thread (kops/s; paper: ZoFS +30% over NOVA, +16% \
       over PMFS, +5% over Strata)"
    [ "System"; "kops/s" ] rows;
  let runs =
    List.map
      (fun sys ->
        ( FL.label sys,
          List.map
            (fun n ->
              let r =
                Fb.varmail.Fb.run ~dir_width:20 sys ~nthreads:n ~ops:!fb_ops
              in
              (n, r.Workloads.Runner.mops_per_sec *. 1000.0))
            !thread_counts ))
      fxmark_systems
  in
  series_table
    ~title:
      "(b) varmail with dir-width=20 (kops/s; paper: all scale, ZoFS up to \
       +13%/+46% over PMFS/NOVA)"
    ~row_label:"FS \\ threads" runs

(* ==== Table 7: LevelDB db_bench ============================================= *)

let table7 () =
  Report.section "Table 7: LevelDB (LSM store) db_bench latency (us)";
  let systems = [ FL.Ext4_dax; FL.Pmfs; FL.Nova; FL.Zofs ] in
  let rows =
    List.map
      (fun op ->
        Kvdb.Db_bench.op_name op
        :: List.map
             (fun sys ->
               let lat = ref 0.0 in
               Sim.run_thread ~proc:(root_proc ()) (fun () ->
                   let inst = FL.make ~pages:131072 sys in
                   lat := Kvdb.Db_bench.run inst.FL.fs ~n:!kv_ops op);
               Report.f3 !lat)
             systems)
      Kvdb.Db_bench.all_ops
  in
  Report.table
    ~title:
      "(paper shape: ZoFS lowest everywhere; PMFS second; NOVA loses to PMFS \
       from copy-on-write; Ext4-DAX slowest)"
    ([ "Latency/us" ] @ List.map FL.label systems)
    rows

(* ==== Figure 11 / Table 8: TPC-C ============================================= *)

let fig11 () =
  Report.section "Figure 11: TPC-C on the relational engine (txns/s)";
  let systems = [ FL.Ext4_dax; FL.Pmfs; FL.Nova; FL.Zofs ] in
  let workloads =
    [
      ("mixed", None);
      ("NEW", Some Litedb.Tpcc.NEW);
      ("OS", Some Litedb.Tpcc.OS);
      ("PAY", Some Litedb.Tpcc.PAY);
    ]
  in
  let rows =
    List.map
      (fun (wname, kind) ->
        wname
        :: List.map
             (fun sys ->
               let tps = ref 0.0 in
               Sim.run_thread ~proc:(root_proc ()) (fun () ->
                   let inst = FL.make ~pages:131072 sys in
                   let t =
                     match Litedb.Tpcc.create inst.FL.fs "/tpcc.db" with
                     | Ok t -> t
                     | Error e -> failwith (Treasury.Errno.to_string e)
                   in
                   tps := Litedb.Tpcc.run t ~n:!tpcc_txns ?kind ());
               Report.f2 !tps)
             systems)
      workloads
  in
  Report.table
    ~title:
      "(paper shape: ZoFS highest; mixed: ZoFS +9% over PMFS, +31% over NOVA; \
       OS > PAY > NEW)"
    ([ "Workload" ] @ List.map FL.label systems)
    rows

(* ==== Table 9: worst-case chmod / rename ===================================== *)

let table9 () =
  Report.section "Table 9: worst-case performance (ns/op)";
  let nfiles = 100 in
  let chmod_latency sys =
    let lat = ref 0.0 in
    Sim.run_thread ~proc:(root_proc ()) (fun () ->
        let inst = FL.make ~pages:131072 sys in
        let fs = inst.FL.fs in
        for i = 0 to nfiles - 1 do
          ok
            (V.write_file fs
               (Printf.sprintf "/f%d" i)
               ~mode:0o644 (String.make 32768 'x'))
        done;
        let t0 = Sim.now () in
        for i = 0 to nfiles - 1 do
          ok (V.chmod fs (Printf.sprintf "/f%d" i) 0o600)
        done;
        lat := float_of_int (Sim.now () - t0) /. float_of_int nfiles);
    !lat
  in
  let rename_latency sys =
    let lat = ref 0.0 in
    Sim.run_thread ~proc:(root_proc ()) (fun () ->
        let inst = FL.make ~pages:131072 sys in
        let fs = inst.FL.fs in
        ok (V.mkdir fs "/d1" 0o755);
        ok (V.mkdir fs "/d2" 0o700);
        for i = 0 to nfiles - 1 do
          ok
            (V.write_file fs
               (Printf.sprintf "/d1/f%d" i)
               ~mode:0o644 (String.make 32768 'x'));
          ok
            (V.write_file fs
               (Printf.sprintf "/d2/g%d" i)
               ~mode:0o600 (String.make 32768 'x'))
        done;
        let t0 = Sim.now () in
        for i = 0 to nfiles - 1 do
          ok
            (V.rename fs
               (Printf.sprintf "/d1/f%d" i)
               (Printf.sprintf "/d2/f%d" i))
        done;
        lat := float_of_int (Sim.now () - t0) /. float_of_int nfiles);
    !lat
  in
  let systems = [ FL.Nova; FL.Zofs; FL.one_coffer_variant ] in
  let rows =
    [
      "chmod"
      :: List.map (fun s -> Report.commas (int_of_float (chmod_latency s))) systems;
      "rename"
      :: List.map (fun s -> Report.commas (int_of_float (rename_latency s))) systems;
    ]
  in
  Report.table
    ~title:
      "(paper: chmod 1,830 / 23,342 / 675; rename 6,261 / 28,264 / 1,681 — \
       ZoFS pays for coffer splits, ZoFS-1coffer stays in user space)"
    ([ "Op" ] @ List.map FL.label systems)
    rows

(* ==== §6.5: safety and recovery =============================================== *)

let safety () =
  Report.section "Safety and recovery tests (paper 6.5)";
  let inst = ref None in
  Sim.run_thread ~proc:(root_proc ()) (fun () ->
      let i = FL.make ~pages:65536 FL.Zofs in
      ok (V.write_file i.FL.fs "/shared" ~mode:0o644 "protected data");
      inst := Some i);
  let i = Option.get !inst in
  let faults = ref 0 in
  Sim.run_thread ~proc:(root_proc ()) (fun () ->
      ignore (FL.zofs_fslib (Option.get i.FL.kernfs));
      let rng = Sim.Rng.create 0xBADL in
      for _ = 1 to 1000 do
        let addr = Sim.Rng.int rng (D.size i.FL.device - 8) in
        match D.write_u64 i.FL.device addr 0xDEAD with
        | () -> ()
        | exception Nvm.Fault _ -> incr faults
      done);
  Printf.printf
    "stray writes: 1000 random stores outside MPK windows -> %d faults \
     (paper: P2 never affected)\n"
    !faults;
  Sim.run_thread ~proc:(root_proc ()) (fun () ->
      let kfs = Option.get i.FL.kernfs in
      let disp = Treasury.Dispatcher.create kfs in
      let ufs = Zofs.Ufs.create kfs in
      Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
      let fs = Treasury.Dispatcher.as_vfs disp in
      Mpk.with_kernel (Treasury.Kernfs.mpk kfs) (fun () ->
          Mpk.with_write_window (Treasury.Kernfs.mpk kfs) (fun () ->
              let root = Treasury.Kernfs.root_coffer kfs in
              let info = Option.get (Treasury.Coffer.read i.FL.device ~id:root) in
              match
                Zofs.Dir.lookup i.FL.device ~ino:info.Treasury.Coffer.root_file
                  "shared"
              with
              | Some de ->
                  Nvm.Device.write_u64 i.FL.device
                    (de.Zofs.Dir.de_addr + Zofs.Layout.d_inode)
                    (50 * Nvm.page_size);
                  Nvm.Device.persist_all i.FL.device
              | None -> ()));
      match V.read_file fs "/shared" with
      | Error e ->
          Printf.printf
            "graceful error return: reading a corrupted file -> %s (process \
             alive, %d faults converted)\n"
            (Treasury.Errno.to_string e)
            (Treasury.Dispatcher.graceful_error_count disp)
      | Ok _ -> print_endline "graceful error return: UNEXPECTED SUCCESS");
  (* recovery timing: 1,000 files of 32 KB (scaled from the paper's 2 MB) *)
  let w_inst = ref None in
  Sim.run_thread ~proc:(root_proc ()) (fun () ->
      let i = FL.make ~pages:262144 FL.Zofs in
      let block = String.make 4096 'r' in
      for f = 0 to 999 do
        let fd =
          ok
            (V.openf i.FL.fs
               (Printf.sprintf "/r%04d" f)
               [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644)
        in
        for _ = 1 to 8 do
          ignore (ok (V.write i.FL.fs fd block))
        done;
        ok (V.close i.FL.fs fd)
      done;
      w_inst := Some i);
  let i = Option.get !w_inst in
  let report =
    Sim.run_thread ~proc:(root_proc ()) (fun () ->
        Zofs.Recovery.recover_all (Option.get i.FL.kernfs))
  in
  Printf.printf
    "recovery: %d coffer(s), %s pages in use, %s reclaimed; %.0f us total \
     (%.0f us user + %.0f us kernel)\n\
     (paper, 1,000 x 2MB files: 20,748 us = 5,386 us user + 15,362 us kernel)\n"
    report.Zofs.Recovery.coffers_scanned
    (Report.commas report.Zofs.Recovery.pages_in_use)
    (Report.commas report.Zofs.Recovery.pages_reclaimed)
    (float_of_int (report.Zofs.Recovery.user_ns + report.Zofs.Recovery.kernel_ns)
    /. 1000.0)
    (float_of_int report.Zofs.Recovery.user_ns /. 1000.0)
    (float_of_int report.Zofs.Recovery.kernel_ns /. 1000.0)

(* ==== Ablations (DESIGN.md §5) =================================================== *)

let ablations () =
  Report.section "Ablations";
  let dwol_with_protection = Fx.dwol.Fx.run FL.Zofs ~nthreads:1 ~ops:!fx_ops in
  let unprotected =
    Workloads.Runner.run ~nthreads:1 ~ops:!fx_ops
      ~setup:(fun () ->
        let inst = FL.make FL.Zofs in
        ok (V.write_file inst.FL.fs "/f0" ~mode:0o644 (String.make 4096 'x'));
        D.clear_protection_hook inst.FL.device;
        inst)
      ~worker:(fun inst ~tid ->
        ignore tid;
        let fs = inst.FL.fs in
        let fd = ok (V.openf fs "/f0" [ Ft.O_WRONLY ] 0) in
        let block = String.make 4096 'd' in
        fun ~i ->
          ignore i;
          ignore (ok (V.pwrite fs fd ~off:0 block)))
      ()
  in
  Report.table ~title:"(a) MPK + paging protection cost (DWOL, 1 thread)"
    [ "Config"; "Mops/s" ]
    [
      [
        "protected (MPK + page tables)";
        Report.f3 dwol_with_protection.Workloads.Runner.mops_per_sec;
      ];
      [
        "unprotected (hook removed)";
        Report.f3 unprotected.Workloads.Runner.mops_per_sec;
      ];
    ];
  let mwcl_points force =
    Zofs.Balloc.force_global := force;
    let r =
      List.map
        (fun n ->
          let r = Fx.mwcl.Fx.run FL.Zofs ~nthreads:n ~ops:(max 20 (!fx_ops / 2)) in
          (n, r.Workloads.Runner.mops_per_sec))
        [ 1; 4; 8; 16 ]
    in
    Zofs.Balloc.force_global := false;
    r
  in
  let per_thread = mwcl_points false in
  let global = mwcl_points true in
  Report.table
    ~title:
      "(b) ZoFS allocator: leased per-thread vs single global list (MWCL \
       Mops/s, threads 1/4/8/16)"
    [ "Config"; "1"; "4"; "8"; "16" ]
    [
      "leased per-thread" :: List.map (fun (_, v) -> Report.f3 v) per_thread;
      "global list" :: List.map (fun (_, v) -> Report.f3 v) global;
    ];
  let batch_row b =
    Zofs.Balloc.enlarge_batch := b;
    let r = Fx.dwal.Fx.run FL.Zofs ~nthreads:8 ~ops:!fx_ops in
    Zofs.Balloc.enlarge_batch := 16;
    [ string_of_int b; Report.f3 r.Workloads.Runner.mops_per_sec ]
  in
  Report.table ~title:"(c) coffer_enlarge batch size (DWAL, 8 threads, Mops/s)"
    [ "Batch pages"; "Mops/s" ]
    (List.map batch_row [ 4; 16; 64 ])

(* ==== Persistence-instruction efficiency ======================================== *)

(* How many clwb/sfence each system issues for the same create/write/unlink
   sequence, and how many of those were redundant (flushing an already-clean
   line, fencing with nothing in flight) — the perf smells the checker in
   lib/check lints for. *)
let persist () =
  Report.section "Persistence instructions (100 x 4KB create/write + unlink)";
  let block = String.make 4096 'p' in
  List.iter
    (fun sys ->
      Sim.run_thread ~proc:(root_proc ()) (fun () ->
          let inst = FL.make ~pages:16384 sys in
          D.reset_stats inst.FL.device;
          for i = 0 to 99 do
            ok
              (V.write_file inst.FL.fs
                 (Printf.sprintf "/p%d" i)
                 ~mode:0o644 block)
          done;
          for i = 0 to 99 do
            ok (V.unlink inst.FL.fs (Printf.sprintf "/p%d" i))
          done;
          Report.device_persistence ~label:(FL.label sys) inst.FL.device))
    [ FL.Ext4_dax; FL.Pmfs; FL.Nova; FL.Zofs ]

(* ==== Bechamel: real host time of each experiment's kernel op ================= *)

let bechamel () =
  Report.section
    "Bechamel (host wall-clock of each experiment's core operation)";
  let open Bechamel in
  let open Toolkit in
  (* one simulated process shared by the preparation and every measured
     closure (mappings and FD tables are per process) *)
  let bproc = root_proc () in
  let zofs = ref None in
  Sim.run_thread ~proc:bproc (fun () ->
      let i = FL.make ~pages:65536 FL.Zofs in
      ok (V.write_file i.FL.fs "/bench" ~mode:0o644 (String.make 4096 'b'));
      ok (V.mkdir i.FL.fs "/bdir" 0o755);
      ok (V.write_file i.FL.fs "/bdir/sample" ~mode:0o644 "s");
      zofs := Some i);
  let zofs = Option.get !zofs in
  let pmfs = Baselines.Pmfs.fs ~pages:16384 () in
  Sim.run_thread ~proc:bproc (fun () ->
      ok (V.write_file pmfs "/bench" ~mode:0o644 (String.make 4096 'b')));
  let dev = D.create ~perf:Nvm.Perf.optane ~size:(256 * Nvm.page_size) () in
  let counter = ref 0 in
  let in_sim f = Staged.stage (fun () -> Sim.run_thread ~proc:bproc f) in
  let block = String.make 4096 'x' in
  let fsl_small =
    Array.init 5_000 (fun i ->
        {
          Survey.Fsl.id = i;
          (* directories at multiples of 9; every file hangs off one *)
          parent =
            (if i = 0 then -1
             else if i mod 9 = 0 then i - 9
             else i / 9 * 9);
          kind = (if i mod 9 = 0 then Survey.Fsl.Directory else Survey.Fsl.Regular);
          perm = (if i mod 17 = 0 then 0o600 else 0o644);
          uid = 1000;
          gid = 1000;
          size = 1000;
        })
  in
  let tests =
    [
      Test.make ~name:"table1-ntstore-4k"
        (in_sim (fun () ->
             D.nt_write_string dev 0 block;
             D.sfence dev));
      Test.make ~name:"table2-zofs-append"
        (in_sim (fun () -> ok (V.append_file zofs.FL.fs "/bench" block)));
      Test.make ~name:"table3-survey-scan"
        (in_sim (fun () ->
             ignore (Survey.Appdirs.scan zofs.FL.fs ~system:"b" "/bdir")));
      Test.make ~name:"table4-grouping-5k"
        (Staged.stage (fun () -> ignore (Survey.Grouping.analyze fsl_small)));
      Test.make ~name:"fig7-zofs-overwrite-4k"
        (in_sim (fun () ->
             let fd = ok (V.openf zofs.FL.fs "/bench" [ Ft.O_WRONLY ] 0) in
             ignore (ok (V.pwrite zofs.FL.fs fd ~off:0 block));
             ok (V.close zofs.FL.fs fd)));
      Test.make ~name:"fig8-pmfs-overwrite-4k"
        (in_sim (fun () ->
             let fd = ok (V.openf pmfs "/bench" [ Ft.O_WRONLY ] 0) in
             ignore (ok (V.pwrite pmfs fd ~off:0 block));
             ok (V.close pmfs fd)));
      Test.make ~name:"fig9-zofs-create-delete"
        (in_sim (fun () ->
             incr counter;
             let p = Printf.sprintf "/bdir/t%d" !counter in
             ok (V.write_file zofs.FL.fs p ~mode:0o644 "x");
             ok (V.unlink zofs.FL.fs p)));
      Test.make ~name:"table9-zofs-stat"
        (in_sim (fun () -> ignore (ok (V.stat zofs.FL.fs "/bench"))));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/op (host)\n" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        stats)
    tests;
  print_newline ()

(* ==== perf trend ================================================================ *)

(* `--perf-trend`: run the perf gate's pinned experiment set inline (always
   log mode — the failing version is `dune build @perf`) and, when a
   BENCH_perf.json baseline sits in the working directory, print the
   regression/improvement verdict against it. *)
let perf_trend ~quick () =
  Report.section
    (Printf.sprintf "perf-trend: pinned hot-path experiments%s"
       (if quick then " (quick)" else ""));
  let results = Perf_gate.run_all ~quick () in
  print_string (Perf_gate.render_results results);
  if Sys.file_exists "BENCH_perf.json" then (
    match Perf_gate.read_file "BENCH_perf.json" with
    | Error e -> Printf.printf "  (baseline unreadable: %s)\n" e
    | Ok base ->
        let v = Perf_gate.compare_results ~baseline:base ~current:results () in
        Printf.printf "  trend vs BENCH_perf.json (tol %.0f%%, log mode):\n"
          (100.0 *. Perf_gate.default_tol);
        print_string (Perf_gate.render_verdict v))
  else print_endline "  (no BENCH_perf.json in cwd; trend comparison skipped)";
  print_newline ()

(* ==== race trend ================================================================ *)

(* `--race-trend`: run the FxMark suite under the race sanitizer in log
   mode and report the shadow-map memory overhead per workload — what the
   dynamic analysis itself costs, next to any races it logged.  (The
   failing version is `dune build @race`.) *)
let race_trend ~quick () =
  Report.section
    (Printf.sprintf "race-trend: shadow-map overhead of the race sanitizer%s"
       (if quick then " (quick)" else ""));
  let nthreads = if quick then 2 else 4 in
  let ops = if quick then 12 else !fx_ops in
  let dev_bytes = 65536 * Nvm.page_size in
  Printf.printf "  %-8s %14s %10s %14s %10s %s\n" "" "shadow words" "sync"
    "shadow KiB" "% of dev" "races";
  Race.enable_auto Race.Log;
  List.iter
    (fun w ->
      Race.reset_report ();
      ignore (w.Fx.run FL.Zofs ~nthreads ~ops);
      let r = Race.report () in
      Race.publish_obs_gauges ();
      Printf.printf "  %-8s %14d %10d %14.1f %9.2f%% %d\n" w.Fx.wname
        r.Race.r_words_tracked r.Race.r_sync_words
        (float_of_int r.Race.r_shadow_bytes /. 1024.0)
        (100.0 *. float_of_int r.Race.r_shadow_bytes /. float_of_int dev_bytes)
        (List.length r.Race.r_races))
    Fx.all;
  Race.disable_auto ();
  Race.detach ();
  print_newline ()

(* ==== driver ==================================================================== *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("fig7", fun () -> fig7 ());
    ("fig8", fig8);
    ("fig9", fun () -> fig9 ());
    ("fig10", fig10);
    ("table7", table7);
    ("fig11", fig11);
    ("table9", table9);
    ("safety", safety);
    ("ablations", ablations);
    ("persist", persist);
    ("bechamel", bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let args =
    if List.mem "--quick" args then begin
      thread_counts := [ 1; 4; 12 ];
      (* keep the 64-tenant point even under --quick: the fleet-scale
         sharing path is exactly what the experiment exists to exercise *)
      shared_proc_counts := [ 1; 2; 64 ];
      fx_ops := 60;
      fb_ops := 25;
      kv_ops := 100;
      tpcc_txns := 40;
      lat_ops := 60;
      List.filter (( <> ) "--quick") args
    end
    else args
  in
  (* --obs: per-experiment latency histograms + layer split, and
     BENCH_obs_snapshot.json / trace.json at the end (the plain
     BENCH_obs.json name is the @obs gate's committed baseline — never
     clobber it).  --json: one machine-readable BENCH_<experiment>.json
     per experiment. *)
  let obs_on = List.mem "--obs" args in
  let json_on = List.mem "--json" args in
  let trend_on = List.mem "--perf-trend" args in
  let race_trend_on = List.mem "--race-trend" args in
  let args =
    List.filter
      (fun a ->
        a <> "--obs" && a <> "--json" && a <> "--perf-trend"
        && a <> "--race-trend")
      args
  in
  if obs_on then Obs.enable ();
  if json_on then Report.json_enable ".";
  let selected =
    if args = [] then
      if trend_on || race_trend_on then [] else List.map fst experiments
    else args
  in
  print_endline
    "ZoFS reproduction benchmark harness (simulated NVM; see DESIGN.md)";
  if trend_on then perf_trend ~quick ();
  if race_trend_on then race_trend ~quick ();
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          let before = if obs_on then Some (Obs.Snapshot.take ()) else None in
          Report.json_start name;
          let t0 = Unix.gettimeofday () in
          f ();
          (match before with
          | Some b ->
              let d = Obs.Snapshot.diff b (Obs.Snapshot.take ()) in
              print_string (Obs.Snapshot.render ~title:(name ^ " — obs") d);
              Report.json_field "obs" (Obs.Snapshot.to_json d)
          | None -> ());
          Report.json_finish ();
          Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)
      | None -> Printf.eprintf "unknown experiment %s\n" name)
    selected;
  if obs_on then begin
    let write_file path s =
      let oc = open_out path in
      output_string oc s;
      output_char oc '\n';
      close_out oc
    in
    write_file "BENCH_obs_snapshot.json"
      (Obs.Json.to_string (Obs.Snapshot.to_json (Obs.Snapshot.take ())));
    write_file "trace.json" (Obs.Json.to_string (Obs.Trace.to_json ()));
    Printf.printf
      "obs: wrote BENCH_obs_snapshot.json and trace.json (%d spans, %d \
       dropped, %d still open)\n"
      (Obs.Trace.recorded ()) (Obs.Trace.dropped ()) (Obs.Trace.open_spans ())
  end
