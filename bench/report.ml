(* Plain-text table rendering for the benchmark harness, plus optional
   machine-readable JSON recording: with [json_enable dir] every experiment
   bracketed by [json_start]/[json_finish] also lands in
   [dir]/BENCH_<experiment>.json — tables, device-persistence stats, and any
   extra fields (e.g. an obs snapshot) — so future PRs can diff a perf
   trajectory instead of scraping ASCII tables. *)

module J = Obs.Json

let json_dir = ref None
let json_current = ref None  (* experiment name while recording *)
let json_items = ref []  (* rev: recorded tables of the experiment *)
let json_fields = ref []  (* rev: extra top-level fields *)

let json_enable dir = json_dir := Some dir

let json_start name =
  if !json_dir <> None then begin
    json_current := Some name;
    json_items := [];
    json_fields := []
  end

let json_recording () = !json_current <> None

let json_add item = if json_recording () then json_items := item :: !json_items

let json_field k v =
  if json_recording () then json_fields := (k, v) :: !json_fields

let json_finish () =
  match (!json_dir, !json_current) with
  | Some dir, Some name ->
      let j =
        J.Obj
          ([
             ("experiment", J.Str name);
             ("tables", J.Arr (List.rev !json_items));
           ]
          @ List.rev !json_fields)
      in
      let path = Filename.concat dir ("BENCH_" ^ name ^ ".json") in
      let oc = open_out path in
      output_string oc (J.to_string j);
      output_char oc '\n';
      close_out oc;
      json_current := None
  | _ -> ()

let hrule widths =
  "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"

let render_row widths cells =
  "| "
  ^ String.concat " | "
      (List.map2
         (fun w c -> Printf.sprintf "%-*s" w c)
         widths cells)
  ^ " |"

(* [table ~title header rows] prints an aligned ASCII table. *)
let table ~title header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  Printf.printf "\n%s\n" title;
  print_endline (hrule widths);
  print_endline (render_row widths header);
  print_endline (hrule widths);
  List.iter (fun row -> print_endline (render_row widths row)) rows;
  print_endline (hrule widths);
  json_add
    (J.Obj
       [
         ("kind", J.Str "table");
         ("title", J.Str title);
         ("header", J.Arr (List.map (fun c -> J.Str c) header));
         ( "rows",
           J.Arr
             (List.map (fun r -> J.Arr (List.map (fun c -> J.Str c) r)) rows)
         );
       ])

let section name =
  Printf.printf "\n=== %s %s\n" name (String.make (max 1 (72 - String.length name)) '=')

let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let commas n =
  let s = string_of_int n in
  let len = String.length s in
  let b = Buffer.create (len + len / 3) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b c)
    s;
  Buffer.contents b

(* One flush/fence-efficiency line for a device: total counts plus how many
   were redundant (clwb of a clean line, sfence with nothing in flight). *)
let device_persistence ~label dev =
  Printf.printf "  %-16s %s flushes (%s redundant), %s fences (%s redundant)\n"
    label
    (commas (Nvm.Device.stat_flushes dev))
    (commas (Nvm.Device.stat_redundant_flushes dev))
    (commas (Nvm.Device.stat_fences dev))
    (commas (Nvm.Device.stat_redundant_fences dev));
  let num n = J.Num (float_of_int n) in
  json_add
    (J.Obj
       [
         ("kind", J.Str "device_persistence");
         ("label", J.Str label);
         ("reads", num (Nvm.Device.stat_reads dev));
         ("writes", num (Nvm.Device.stat_writes dev));
         ("flushes", num (Nvm.Device.stat_flushes dev));
         ("redundant_flushes", num (Nvm.Device.stat_redundant_flushes dev));
         ("fences", num (Nvm.Device.stat_fences dev));
         ("redundant_fences", num (Nvm.Device.stat_redundant_fences dev));
       ])

(* Numeric throughput-vs-threads series (label, [(nthreads, value)]), so the
   JSON carries real numbers and not just the formatted table cells. *)
let record_series ~title runs =
  json_add
    (J.Obj
       [
         ("kind", J.Str "series");
         ("title", J.Str title);
         ( "series",
           J.Arr
             (List.map
                (fun (label, points) ->
                  J.Obj
                    [
                      ("label", J.Str label);
                      ( "points",
                        J.Arr
                          (List.map
                             (fun (n, v) ->
                               J.Arr [ J.Num (float_of_int n); J.Num v ])
                             points) );
                    ])
                runs) );
       ])

let bytes_human n =
  if n >= 1 lsl 30 then Printf.sprintf "%.1fGB" (float_of_int n /. 1073741824.0)
  else if n >= 1 lsl 20 then Printf.sprintf "%.1fMB" (float_of_int n /. 1048576.0)
  else if n >= 1 lsl 10 then Printf.sprintf "%.1fKB" (float_of_int n /. 1024.0)
  else Printf.sprintf "%dB" n
