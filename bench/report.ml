(* Plain-text table rendering for the benchmark harness. *)

let hrule widths =
  "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"

let render_row widths cells =
  "| "
  ^ String.concat " | "
      (List.map2
         (fun w c -> Printf.sprintf "%-*s" w c)
         widths cells)
  ^ " |"

(* [table ~title header rows] prints an aligned ASCII table. *)
let table ~title header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  Printf.printf "\n%s\n" title;
  print_endline (hrule widths);
  print_endline (render_row widths header);
  print_endline (hrule widths);
  List.iter (fun row -> print_endline (render_row widths row)) rows;
  print_endline (hrule widths)

let section name =
  Printf.printf "\n=== %s %s\n" name (String.make (max 1 (72 - String.length name)) '=')

let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let commas n =
  let s = string_of_int n in
  let len = String.length s in
  let b = Buffer.create (len + len / 3) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b c)
    s;
  Buffer.contents b

(* One flush/fence-efficiency line for a device: total counts plus how many
   were redundant (clwb of a clean line, sfence with nothing in flight). *)
let device_persistence ~label dev =
  Printf.printf "  %-16s %s flushes (%s redundant), %s fences (%s redundant)\n"
    label
    (commas (Nvm.Device.stat_flushes dev))
    (commas (Nvm.Device.stat_redundant_flushes dev))
    (commas (Nvm.Device.stat_fences dev))
    (commas (Nvm.Device.stat_redundant_fences dev))

let bytes_human n =
  if n >= 1 lsl 30 then Printf.sprintf "%.1fGB" (float_of_int n /. 1073741824.0)
  else if n >= 1 lsl 20 then Printf.sprintf "%.1fMB" (float_of_int n /. 1048576.0)
  else if n >= 1 lsl 10 then Printf.sprintf "%.1fKB" (float_of_int n /. 1024.0)
  else Printf.sprintf "%dB" n
