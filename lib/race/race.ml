(* Dynamic race detector over the simulator: a ThreadSanitizer-style
   happens-before + lockset hybrid for NVM word accesses (DESIGN.md §15).

   Every simulated thread carries a vector clock; an 8-byte shadow word map
   over the device records the last writer and last readers of each word
   (epoch = the accessor's own clock component at access time).  The
   happens-before skeleton is fed by:

   - thread spawn (child inherits the parent's clock) — [Sim.sync_event];
   - [Sim.Mutex] lock/unlock (the KernFS gate serializes kernel NVM writes
     under the "kernfs" mutex);
   - successful CAS ([Nvm.Device.T_cas]): lease words and allocator
     slot-owner words are acquire/release points, and any word that was
     ever CAS'd is a {e sync word} — permanently exempt from shadow
     tracking (its transfers are modeled through its word clock instead);
   - lease acquire/release/steal (lib/zofs/lease.ml): release publishes
     every write the holder made under the lease (see below) and the
     release→acquire CAS chain carries the clock to the next holder;
   - publish fences (Zofs.Pbatch barriers at commit points, surfaced as
     [publish] annotations): a published range gets a {e publish clock} — a
     snapshot of the publisher's whole vector clock — which any later
     accessor of those words joins first.  Because the snapshot is the
     full clock, message-passing patterns chain: reading a published
     dentry word orders the reader after everything its inserter did
     before the publish (inode init, symlink target, data), exactly the
     valid-byte protocol the µFS relies on.

   Conflicts (same word, different threads, at least one write, no
   happens-before edge) consult the lockset next: if both sides held a
   common lock (lease word or kernel mutex) the access pair is ordered by
   mutual exclusion and allowed.  What survives is reported with both
   sides' synchronization history.  [intentional_racy] scopes (mandatory
   justification) allowlist the few deliberate lock-free reads; hits are
   counted per site so the allowlist cannot rot silently. *)

module D = Nvm.Device

type mode = Off | Log | Fail

(* One side of a conflicting access pair. *)
type side = {
  s_tid : int;
  s_time : int;  (* sim ns at access *)
  s_clk : int;  (* accessor's own epoch at access *)
  s_write : bool;
  s_site : string option;  (* innermost intentional_racy scope, if any *)
  s_locks : int list;  (* lockset: lease word addrs (>=0), mutexes (<0) *)
  s_hist : string list;  (* recent sync history, newest first *)
}

type violation = { v_word : int; v_prev : side; v_cur : side }

exception Race_found of violation

let string_of_lock l =
  if l >= 0 then Printf.sprintf "lease@0x%x" l
  else Printf.sprintf "mutex#%d" (-l - 1)

let string_of_side s =
  Printf.sprintf "%s by tid %d at t=%dns (epoch %d)%s%s\n      sync history: %s"
    (if s.s_write then "write" else "read")
    s.s_tid s.s_time s.s_clk
    (match s.s_locks with
    | [] -> ", no locks held"
    | ls ->
        ", holding " ^ String.concat "+" (List.map string_of_lock ls))
    (match s.s_site with
    | Some site -> Printf.sprintf " [scope %s]" site
    | None -> "")
    (match s.s_hist with
    | [] -> "(none)"
    | h -> String.concat " <- " h)

let string_of_violation v =
  Printf.sprintf
    "[race] unsynchronized %s-%s on word 0x%x:\n    prev: %s\n    cur:  %s"
    (if v.v_prev.s_write then "W" else "R")
    (if v.v_cur.s_write then "W" else "R")
    (v.v_word * 8)
    (string_of_side v.v_prev) (string_of_side v.v_cur)

(* ---- module-global report state (mirrors lib/check) -------------------- *)

let all_races : violation list ref = ref []
let allowlist_hits : (string, int ref) Hashtbl.t = Hashtbl.create 16
let g_words_tracked = ref 0
let g_sync_words = ref 0

(* Nominal per-record footprint (word key + writer side + reader slot +
   table overhead), used to report shadow-map memory overhead
   deterministically: the estimate depends only on how many words were
   tracked, never on GC or host state. *)
let bytes_per_word = 88

type report = {
  r_races : violation list;  (* oldest first *)
  r_allowlist : (string * int) list;  (* site -> suppressed conflicts *)
  r_words_tracked : int;  (* distinct shadow words ever created *)
  r_sync_words : int;  (* distinct words ever CAS'd *)
  r_shadow_bytes : int;  (* nominal shadow-map footprint *)
}

let report () =
  {
    r_races = List.rev !all_races;
    r_allowlist =
      Hashtbl.fold (fun site r acc -> (site, !r) :: acc) allowlist_hits []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    r_words_tracked = !g_words_tracked;
    r_sync_words = !g_sync_words;
    r_shadow_bytes = !g_words_tracked * bytes_per_word;
  }

let reset_report () =
  all_races := [];
  Hashtbl.reset allowlist_hits;
  g_words_tracked := 0;
  g_sync_words := 0

let print_report () =
  let r = report () in
  List.iter (fun v -> Printf.printf "  %s\n" (string_of_violation v)) r.r_races;
  List.iter
    (fun (site, n) -> Printf.printf "  allowlist %-32s %d hit(s)\n" site n)
    r.r_allowlist;
  Printf.printf "  %d shadow word(s), %d sync word(s), ~%d shadow bytes\n"
    r.r_words_tracked r.r_sync_words r.r_shadow_bytes;
  if r.r_races = [] then Printf.printf "  no races\n"

(* ---- vector clocks ------------------------------------------------------ *)

let clk_get a i = if i >= 0 && i < Array.length a then a.(i) else 0

let grow a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make n 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* join dst src, in place when dst is large enough; returns dst. *)
let join dst src =
  let n = Array.length src in
  let dst = grow dst (max n (Array.length dst)) in
  for i = 0 to n - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done;
  dst

(* ---- per-thread and per-word state -------------------------------------- *)

type tstate = {
  t_tid : int;
  mutable vc : int array;
  mutable locks : int list;
  mutable scopes : string list;  (* intentional_racy nesting, innermost first *)
  mutable fenced : int array;  (* clock snapshot at this thread's last fence *)
  mutable wlog : (int * int) list;  (* (addr, len) written while leased *)
  mutable hist : string list;  (* newest first, capped *)
}

type wrec = {
  mutable w_writer : side option;
  mutable w_readers : (int * side) list;  (* tid -> last read *)
  mutable w_pub : int array option;  (* publish clock *)
}

type t = {
  dev : D.t;
  mpk : Mpk.t option;
  mutable mode : mode;
  threads : (int, tstate) Hashtbl.t;
  words : (int, wrec) Hashtbl.t;  (* word index (addr/8) -> shadow record *)
  sync_clocks : (int, int array) Hashtbl.t;  (* CAS'd word -> word clock *)
  mutex_clocks : (int, int array) Hashtbl.t;  (* mutex id -> clock *)
  reported : (int * int * int, unit) Hashtbl.t;  (* (word, prev, cur) dedup *)
}

let hist_cap = 8

let note_ts ts entry =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  ts.hist <- take hist_cap (entry :: ts.hist)

let get_ts t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some ts -> ts
  | None ->
      let vc = Array.make (tid + 1) 0 in
      vc.(tid) <- 1;
      let ts =
        {
          t_tid = tid;
          vc;
          locks = [];
          scopes = [];
          fenced = [||];
          wlog = [];
          hist = [];
        }
      in
      Hashtbl.replace t.threads tid ts;
      ts

let bump ts = ts.vc.(ts.t_tid) <- ts.vc.(ts.t_tid) + 1

let get_wrec t w =
  match Hashtbl.find_opt t.words w with
  | Some r -> r
  | None ->
      let r = { w_writer = None; w_readers = []; w_pub = None } in
      Hashtbl.replace t.words w r;
      incr g_words_tracked;
      r

let mk_side ts ~write =
  {
    s_tid = ts.t_tid;
    s_time = Sim.now ();
    s_clk = ts.vc.(ts.t_tid);
    s_write = write;
    s_site = (match ts.scopes with s :: _ -> Some s | [] -> None);
    s_locks = ts.locks;
    s_hist = ts.hist;
  }

(* ---- conflict engine ----------------------------------------------------- *)

let common_locks l1 l2 = List.exists (fun l -> List.mem l l2) l1

let allowlist_hit site =
  (match Hashtbl.find_opt allowlist_hits site with
  | Some r -> incr r
  | None -> Hashtbl.replace allowlist_hits site (ref 1));
  Obs.cnt "race.allowlist_hits" 1

let violate t v =
  let key = (v.v_word, v.v_prev.s_tid, v.v_cur.s_tid) in
  if not (Hashtbl.mem t.reported key) then begin
    Hashtbl.replace t.reported key ();
    all_races := v :: !all_races;
    Obs.cnt "race.races" 1;
    if t.mode = Fail then raise (Race_found v)
  end

(* [prev] and the current access by [ts] touch word [w]; at least one is a
   write.  Ordered if prev's thread's epoch is visible in the current
   clock; failing that, allowed if a common lock orders them by mutual
   exclusion; failing that, an [intentional_racy] scope on either side
   downgrades it to a counted allowlist hit.  Otherwise: race. *)
let check_pair t ts w prev ~write =
  if
    prev.s_tid <> ts.t_tid
    && clk_get ts.vc prev.s_tid < prev.s_clk
    && not (common_locks prev.s_locks ts.locks)
  then
    match (ts.scopes, prev.s_site) with
    | site :: _, _ -> allowlist_hit site
    | [], Some site -> allowlist_hit site
    | [], None -> violate t { v_word = w; v_prev = prev; v_cur = mk_side ts ~write }

let join_pub ts r =
  match r.w_pub with Some p -> ts.vc <- join ts.vc p | None -> ()

let holds_lease ts = List.exists (fun l -> l >= 0) ts.locks

let words_of addr len f =
  let w0 = addr asr 3 and w1 = (addr + len - 1) asr 3 in
  for w = w0 to w1 do
    f w
  done

let on_write t ts addr len =
  words_of addr len (fun w ->
      if not (Hashtbl.mem t.sync_clocks w) then begin
        let r = get_wrec t w in
        join_pub ts r;
        (match r.w_writer with
        | Some prev -> check_pair t ts w prev ~write:true
        | None -> ());
        List.iter
          (fun (rtid, rs) ->
            if rtid <> ts.t_tid then check_pair t ts w rs ~write:true)
          r.w_readers;
        r.w_writer <- Some (mk_side ts ~write:true);
        r.w_readers <- []
      end);
  if holds_lease ts then ts.wlog <- (addr, len) :: ts.wlog

let on_read t ts addr len =
  words_of addr len (fun w ->
      if not (Hashtbl.mem t.sync_clocks w) then
        match Hashtbl.find_opt t.words w with
        | None -> ()  (* never written while traced: nothing to race with *)
        | Some r ->
            join_pub ts r;
            (match r.w_writer with
            | Some prev -> check_pair t ts w prev ~write:false
            | None -> ());
            r.w_readers <-
              (ts.t_tid, mk_side ts ~write:false)
              :: List.remove_assoc ts.t_tid r.w_readers)

(* A successful CAS makes its word a sync word forever: the word carries a
   clock (acquire: join it; release: store the joined result back) and its
   plain shadow record is dropped — lease handoffs are ordered through
   exactly this chain of CAS clocks. *)
let on_cas t ts addr =
  let w = addr asr 3 in
  if Hashtbl.mem t.words w then Hashtbl.remove t.words w;
  (match Hashtbl.find_opt t.sync_clocks w with
  | Some wc -> ts.vc <- join ts.vc wc
  | None -> incr g_sync_words);
  Hashtbl.replace t.sync_clocks w (Array.copy ts.vc);
  bump ts

let do_publish t ts addr len =
  words_of addr len (fun w ->
      if not (Hashtbl.mem t.sync_clocks w) then begin
        let r = get_wrec t w in
        let p = match r.w_pub with Some p -> p | None -> [||] in
        r.w_pub <- Some (join (Array.copy ts.vc) p)
      end)

(* ---- event handlers ------------------------------------------------------ *)

let on_nvm_event t (ev : D.trace_event) =
  if Sim.in_sim () then
    let tid = Sim.self_tid () in
    match ev with
    | T_store { addr; len; _ } | T_nt_store { addr; len; _ } ->
        on_write t (get_ts t tid) addr len
    | T_load { addr; len; _ } -> on_read t (get_ts t tid) addr len
    | T_cas { addr; _ } -> on_cas t (get_ts t tid) addr
    | T_fence _ ->
        let ts = get_ts t tid in
        ts.fenced <- Array.copy ts.vc;
        (* Advance the epoch past the snapshot: accesses after the fence
           must NOT be covered by a stealer that joins [fenced] (they are
           the unfenced tail an expiry takeover is allowed to race with). *)
        bump ts
    | T_clwb _ | T_media_fault _ | T_reset -> ()

let on_sync t (ev : Sim.sync_event) =
  match ev with
  | S_spawn { parent; child } ->
      if parent >= 0 then begin
        let pts = get_ts t parent in
        let cvc = Array.copy (grow pts.vc (child + 1)) in
        cvc.(child) <- clk_get pts.vc child + 1;
        Hashtbl.replace t.threads child
          {
            t_tid = child;
            vc = cvc;
            locks = [];
            scopes = [];
            fenced = [||];
            wlog = [];
            hist = [ Printf.sprintf "t=%d spawned by #%d" (Sim.now ()) parent ];
          };
        bump pts;
        note_ts pts (Printf.sprintf "t=%d spawn #%d" (Sim.now ()) child)
      end
  | S_exit { tid } ->
      note_ts (get_ts t tid) (Printf.sprintf "t=%d exit" (Sim.now ()))
  | S_kill { tid } ->
      (* State is kept: a lease stealer joins the dead holder's clock. *)
      note_ts (get_ts t tid) (Printf.sprintf "t=%d killed" (Sim.now ()))
  | S_mutex_lock { tid; id } ->
      let ts = get_ts t tid in
      (match Hashtbl.find_opt t.mutex_clocks id with
      | Some mc -> ts.vc <- join ts.vc mc
      | None -> ());
      ts.locks <- (-id - 1) :: ts.locks;
      note_ts ts (Printf.sprintf "t=%d lock mutex#%d" (Sim.now ()) id)
  | S_mutex_unlock { tid; id } ->
      let ts = get_ts t tid in
      let rec remove_first = function
        | [] -> []
        | l :: rest -> if l = -id - 1 then rest else l :: remove_first rest
      in
      ts.locks <- remove_first ts.locks;
      let old =
        match Hashtbl.find_opt t.mutex_clocks id with Some c -> c | None -> [||]
      in
      Hashtbl.replace t.mutex_clocks id (join (Array.copy ts.vc) old);
      bump ts;
      note_ts ts (Printf.sprintf "t=%d unlock mutex#%d" (Sim.now ()) id)

(* ---- attach / detach ----------------------------------------------------- *)

let current : t option ref = ref None

let attach ?mpk ?(mode = Log) dev =
  (match !current with
  | Some old ->
      D.unsubscribe_named old.dev ~name:"race";
      Sim.clear_sync_hook ()
  | None -> ());
  let t =
    {
      dev;
      mpk;
      mode;
      threads = Hashtbl.create 16;
      words = Hashtbl.create 4096;
      sync_clocks = Hashtbl.create 64;
      mutex_clocks = Hashtbl.create 16;
      reported = Hashtbl.create 16;
    }
  in
  D.subscribe_named dev ~name:"race" (on_nvm_event t);
  Sim.set_sync_hook (fun ev -> on_sync t ev);
  current := Some t;
  t

let detach () =
  match !current with
  | None -> ()
  | Some t ->
      D.unsubscribe_named t.dev ~name:"race";
      Sim.clear_sync_hook ();
      current := None

let set_mode t m = t.mode <- m

(* Deferred attach for CLI use, mirroring Check: the workloads build their
   device inside the measurement setup, so Fslab calls [auto_attach] on
   every ZoFS world it makes and the CLI just declares the mode up front. *)
let auto_mode : mode option ref = ref None
let enable_auto mode = auto_mode := Some mode
let disable_auto () = auto_mode := None

let auto_attach dev mpk =
  match !auto_mode with
  | None -> ()
  | Some mode -> ignore (attach ~mpk ~mode dev)

(* ---- annotations (no-ops unless attached to this device) ----------------- *)

let with_current dev f =
  match !current with Some t when t.dev == dev -> f t | _ -> ()

let with_ts t f =
  if Sim.in_sim () then f (get_ts t (Sim.self_tid ()))

let publish dev ~label addr len =
  with_current dev (fun t ->
      with_ts t (fun ts ->
          do_publish t ts addr len;
          bump ts;
          note_ts ts (Printf.sprintf "t=%d publish %s@0x%x" (Sim.now ()) label addr)))

let on_lease_acquired dev lease =
  with_current dev (fun t ->
      with_ts t (fun ts ->
          ts.locks <- lease :: ts.locks;
          note_ts ts (Printf.sprintf "t=%d acquire lease@0x%x" (Sim.now ()) lease)))

(* Release publishes everything written while leased: [Lease.release] runs
   its Pbatch barrier first, so by the time this hook fires the holder's
   writes are fenced and any later lock-free reader may observe them —
   exactly what a publish clock asserts.  The release→acquire CAS chain
   separately orders holder-to-holder handoff. *)
let on_lease_release dev lease =
  with_current dev (fun t ->
      with_ts t (fun ts ->
          List.iter (fun (addr, len) -> do_publish t ts addr len) ts.wlog;
          ts.wlog <- [];
          let rec remove_first = function
            | [] -> []
            | l :: rest -> if l = lease then rest else l :: remove_first rest
          in
          ts.locks <- remove_first ts.locks;
          bump ts;
          note_ts ts (Printf.sprintf "t=%d release lease@0x%x" (Sim.now ()) lease)))

(* Lease (or allocator-slot) stolen from [victim_tid].  A dead victim will
   never act again, so its entire clock may be ordered before the stealer;
   a live victim (expiry takeover) is only safe up to its last fence — its
   unfenced tail genuinely races with the stealer and stays visible to the
   detector. *)
let on_lease_steal dev ~victim_tid =
  with_current dev (fun t ->
      with_ts t (fun ts ->
          (match Hashtbl.find_opt t.threads victim_tid with
          | Some vts ->
              ts.vc <-
                join ts.vc
                  (if Sim.thread_alive victim_tid then vts.fenced else vts.vc)
          | None -> ());
          note_ts ts
            (Printf.sprintf "t=%d steal from #%d%s" (Sim.now ()) victim_tid
               (if Sim.thread_alive victim_tid then " (alive)" else " (dead)"))))

(* Pseudo-lock scope for ownership protocols that are not lease words but
   exclude concurrent access by construction (Balloc per-thread slots: the
   slot's owner word is CAS-claimed and expiry-reclaimed like a lease). *)
let locked dev ~addr f =
  match !current with
  | Some t when t.dev == dev && Sim.in_sim () ->
      let ts = get_ts t (Sim.self_tid ()) in
      ts.locks <- addr :: ts.locks;
      let pop () =
        let rec remove_first = function
          | [] -> []
          | l :: rest -> if l = addr then rest else l :: remove_first rest
        in
        ts.locks <- remove_first ts.locks
      in
      (match f () with
      | v ->
          pop ();
          v
      | exception e ->
          pop ();
          raise e)
  | _ -> f ()

let intentional_racy dev ~site ~justification f =
  if String.trim justification = "" then
    invalid_arg "Race.intentional_racy: a justification is mandatory";
  match !current with
  | Some t when t.dev == dev && Sim.in_sim () ->
      let ts = get_ts t (Sim.self_tid ()) in
      ts.scopes <- site :: ts.scopes;
      let pop () =
        match ts.scopes with _ :: rest -> ts.scopes <- rest | [] -> ()
      in
      (match f () with
      | v ->
          pop ();
          v
      | exception e ->
          pop ();
          raise e)
  | _ -> f ()

(* Page recycled by the allocator (freed or handed out fresh): its words
   start a new life under a new structure, so their old access history must
   not conflict with the new owner's writes. *)
let on_recycle dev addr len =
  with_current dev (fun t ->
      words_of addr len (fun w -> Hashtbl.remove t.words w))

(* History-only breadcrumbs for the sync reports. *)
let note entry =
  match !current with
  | Some t when Sim.in_sim () ->
      note_ts (get_ts t (Sim.self_tid ())) (Printf.sprintf "t=%d %s" (Sim.now ()) entry)
  | _ -> ()

let on_gate_enter () = note "gate enter"
let on_gate_exit () = note "gate exit"

(* ---- stats for zofs_stat / bench ---------------------------------------- *)

let publish_obs_gauges () =
  Obs.cnt "race.words_tracked" !g_words_tracked;
  Obs.cnt "race.sync_words" !g_sync_words
