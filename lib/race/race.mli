(** Treasury race sanitizer: a ThreadSanitizer-style happens-before +
    lockset hybrid over simulated NVM accesses (DESIGN.md §15).

    One detector instance is attached to one device at a time (the
    workloads build one device per measurement); the race log and
    allowlist counters are module-global so a run spanning many
    short-lived devices still yields one report. *)

type mode =
  | Off  (** track nothing, report nothing *)
  | Log  (** record races in the report *)
  | Fail  (** raise {!Race_found} at the first race *)

(** One side of a conflicting access pair, with the synchronization
    history its thread had accumulated at access time. *)
type side = {
  s_tid : int;
  s_time : int;
  s_clk : int;
  s_write : bool;
  s_site : string option;
  s_locks : int list;
  s_hist : string list;
}

type violation = { v_word : int; v_prev : side; v_cur : side }

exception Race_found of violation

val string_of_violation : violation -> string

(** {1 Attach / detach} *)

type t

val attach : ?mpk:Mpk.t -> ?mode:mode -> Nvm.Device.t -> t
(** Subscribe to the device's trace stream (named slot ["race"]) and the
    scheduler's sync-event hook.  Replaces any previously attached
    instance.  Default mode is [Log]. *)

val detach : unit -> unit
val set_mode : t -> mode -> unit

val enable_auto : mode -> unit
(** Deferred attach for CLI use, mirroring [Check.enable_auto]: after this,
    every ZoFS world built by [Workloads.Fslab] attaches a fresh detector
    in the given mode. *)

val disable_auto : unit -> unit

val auto_attach : Nvm.Device.t -> Mpk.t -> unit
(** Called by [Workloads.Fslab.make_zofs]; no-op unless {!enable_auto}. *)

(** {1 Synchronization annotations}

    All are no-ops unless a detector is attached to [dev]. *)

val publish : Nvm.Device.t -> label:string -> int -> int -> unit
(** [publish dev ~label addr len]: the caller has fenced [addr..addr+len)
    and is about to make it reachable (valid byte, dentry link).  The
    range gets a publish clock — a snapshot of the caller's full vector
    clock — which later accessors join before the race check, so
    message-passing hand-offs are ordered. *)

val on_lease_acquired : Nvm.Device.t -> int -> unit
(** Lease word entered the caller's lockset. *)

val on_lease_release : Nvm.Device.t -> int -> unit
(** Publishes every write the holder made while leased (the release
    barrier has already fenced them), then drops the lease from the
    lockset. *)

val on_lease_steal : Nvm.Device.t -> victim_tid:int -> unit
(** The caller took a lease (or allocator slot) owned by [victim_tid]
    without a release handoff.  A dead victim's whole clock is joined (it
    will never act again); a live victim (expiry takeover) is joined only
    up to its last fence — its unfenced tail stays racy and visible. *)

val locked : Nvm.Device.t -> addr:int -> (unit -> 'a) -> 'a
(** Pseudo-lock scope for CAS-claimed ownership protocols that are not
    lease-word leases (Balloc per-thread slots): while [f] runs, [addr]
    is in the caller's lockset. *)

val intentional_racy :
  Nvm.Device.t -> site:string -> justification:string -> (unit -> 'a) -> 'a
(** Allowlist scope: conflicts found while [f] runs (or found later
    against accesses made inside [f]) are counted per [site] instead of
    reported.  [justification] must be non-empty — it documents why the
    race is benign at the call site.  @raise Invalid_argument on an empty
    justification. *)

val on_recycle : Nvm.Device.t -> int -> int -> unit
(** [on_recycle dev addr len]: the allocator freed or handed out the
    range; its words start a new life, so their access history is
    dropped. *)

val note : string -> unit
(** Append a history-only breadcrumb (e.g. kernel atomic-section bounds)
    to the current thread's sync history. *)

val on_gate_enter : unit -> unit
val on_gate_exit : unit -> unit

(** {1 Report} *)

type report = {
  r_races : violation list;  (** oldest first *)
  r_allowlist : (string * int) list;  (** site -> suppressed conflicts *)
  r_words_tracked : int;  (** distinct shadow words ever created *)
  r_sync_words : int;  (** distinct words ever CAS'd *)
  r_shadow_bytes : int;  (** nominal shadow-map footprint *)
}

val report : unit -> report
val reset_report : unit -> unit
val print_report : unit -> unit

val publish_obs_gauges : unit -> unit
(** Push words-tracked / sync-words into the obs counter registry (races
    and allowlist hits are counted there incrementally). *)
