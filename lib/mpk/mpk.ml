type pkey = int

let nkeys = 16
let wrpkru_cost = 6 (* ns: ~16 cycles at 2.5 GHz (paper §3.4.1) *)

type perm = Pk_none | Pk_read | Pk_read_write

(* Per-process page-table byte: bit0 mapped, bit1 writable, bits 4..7 pkey. *)
let pte_mapped = 0x01
let pte_writable = 0x02

(* Trace events for the guideline checker (lib/check): every PKRU update and
   every [with_keys] window boundary, tagged with the perms installed. *)
type trace_event =
  | M_wrpkru of { perms : (pkey * perm) list }
  | M_scope_enter of { perms : (pkey * perm) list }
  | M_scope_exit

type t = {
  dev : Nvm.Device.t;
  tables : (int, Bytes.t) Hashtbl.t;  (* pid -> per-page PTE bytes *)
  pkru : (int, int) Hashtbl.t;  (* tid -> PKRU value *)
  kernel_depth : (int, int) Hashtbl.t;  (* tid -> nesting *)
  write_window : (int, int) Hashtbl.t;  (* tid -> nesting *)
  mutable faults : int;
  mutable subs : (int * (trace_event -> unit)) list;  (* delivery order *)
  mutable next_sub_id : int;
  mutable legacy_sub : int option;  (* set_trace_hook's managed slot *)
  mutable named : (string * int) list;  (* subscribe_named slots *)
}

(* PKRU encoding, as on x86: two bits per key; bit0 = access-disable,
   bit1 = write-disable.  0 = full access. *)
let pkru_all_disabled =
  (* keys 1..15 access-disabled; key 0 open *)
  let v = ref 0 in
  for k = 1 to 15 do
    v := !v lor (0b01 lsl (2 * k))
  done;
  !v

let pkru_of_perms perms =
  List.fold_left
    (fun acc (k, p) ->
      if k <= 0 || k >= nkeys then invalid_arg "Mpk: pkey out of range";
      let cleared = acc land lnot (0b11 lsl (2 * k)) in
      match p with
      | Pk_read_write -> cleared
      | Pk_read -> cleared lor (0b10 lsl (2 * k))
      | Pk_none -> cleared lor (0b01 lsl (2 * k)))
    pkru_all_disabled perms

(* Report the keys with any access enabled. *)
let perms_of_pkru v =
  let enabled = ref [] in
  for k = nkeys - 1 downto 1 do
    let bits = (v lsr (2 * k)) land 0b11 in
    if bits land 0b01 = 0 then
      enabled := (k, if bits land 0b10 = 0 then Pk_read_write else Pk_read) :: !enabled
  done;
  !enabled

let fault t addr write reason =
  t.faults <- t.faults + 1;
  (if Sys.getenv_opt "MPK_DEBUG_FAULT" <> None then
     Printf.eprintf "FAULT addr=%d write=%b %s\n%s\n%!" addr write reason
       (Printexc.raw_backtrace_to_string (Printexc.get_callstack 25)));
  raise (Nvm.Fault { addr; write; kind = Nvm.Protection; reason })

let table t pid =
  match Hashtbl.find_opt t.tables pid with
  | Some b -> b
  | None ->
      let b = Bytes.make (Nvm.Device.pages t.dev) '\000' in
      Hashtbl.replace t.tables pid b;
      b

let current_pkru t =
  match Hashtbl.find_opt t.pkru (Sim.self_tid ()) with
  | Some v -> v
  | None -> pkru_all_disabled

let depth tbl tid = match Hashtbl.find_opt tbl tid with Some d -> d | None -> 0

let in_kernel t = depth t.kernel_depth (Sim.self_tid ()) > 0

let check t ~addr ~write =
  let tid = Sim.self_tid () in
  if depth t.kernel_depth tid > 0 then begin
    (* Kernel mode: NVM is mapped read-only; writes need a write window. *)
    if write && depth t.write_window tid = 0 then
      fault t addr write "kernel write outside CR0.WP write window"
  end
  else begin
    let pid = (Sim.self_proc ()).Sim.Proc.pid in
    let page = addr / Nvm.page_size in
    let pte =
      (* An address past the device end has no PTE at all: same SIGSEGV as
         an unmapped page (recovery relies on this when chasing torn
         pointers). *)
      match Hashtbl.find_opt t.tables pid with
      | None -> 0
      | Some b ->
          if page < 0 || page >= Bytes.length b then 0
          else Char.code (Bytes.get b page)
    in
    if pte land pte_mapped = 0 then fault t addr write "page not mapped";
    if write && pte land pte_writable = 0 then
      fault t addr write "page mapped read-only";
    let key = pte lsr 4 in
    if key <> 0 then begin
      let bits = (current_pkru t lsr (2 * key)) land 0b11 in
      if bits land 0b01 <> 0 then
        fault t addr write (Printf.sprintf "MPK: region %d access-disabled" key);
      if write && bits land 0b10 <> 0 then
        fault t addr write (Printf.sprintf "MPK: region %d write-disabled" key)
    end
  end

let create dev =
  let t =
    {
      dev;
      tables = Hashtbl.create 16;
      pkru = Hashtbl.create 64;
      kernel_depth = Hashtbl.create 64;
      write_window = Hashtbl.create 64;
      faults = 0;
      subs = [];
      next_sub_id = 0;
      legacy_sub = None;
      named = [];
    }
  in
  Nvm.Device.set_protection_hook dev (fun ~addr ~write -> check t ~addr ~write);
  t

let device t = t.dev

(* Multi-subscriber trace dispatch, mirroring Nvm.Device: independent
   analysis layers (lib/check, lib/obs) compose, and [set_trace_hook] keeps
   its replace-semantics API as one managed subscription slot. *)
let add_trace_subscriber t f =
  let id = t.next_sub_id in
  t.next_sub_id <- id + 1;
  (* Anonymous subscribers stay ahead of the named suffix regardless of
     registration order (same invariant as Nvm.Device). *)
  let named_ids = List.map snd t.named in
  let anon, named =
    List.partition (fun (i, _) -> not (List.mem i named_ids)) t.subs
  in
  t.subs <- anon @ [ (id, f) ] @ named;
  id

let remove_trace_subscriber t id =
  t.subs <- List.filter (fun (i, _) -> i <> id) t.subs

let set_trace_hook t f =
  (match t.legacy_sub with
  | Some id -> remove_trace_subscriber t id
  | None -> ());
  t.legacy_sub <- Some (add_trace_subscriber t f)

let clear_trace_hook t =
  match t.legacy_sub with
  | Some id ->
      remove_trace_subscriber t id;
      t.legacy_sub <- None
  | None -> ()

(* Named slots, mirroring Nvm.Device.subscribe_named: one slot per name,
   delivery order anonymous-first then named in name order, so co-installed
   checkers see identical event streams regardless of install order. *)
let reorder_named t =
  let named_ids = List.map snd t.named in
  let anon = List.filter (fun (i, _) -> not (List.mem i named_ids)) t.subs in
  let named_sorted =
    List.sort (fun (a, _) (b, _) -> compare a b) t.named
    |> List.filter_map (fun (_, id) ->
           List.find_opt (fun (j, _) -> j = id) t.subs)
  in
  t.subs <- anon @ named_sorted

let subscribe_named t ~name f =
  (match List.assoc_opt name t.named with
  | Some id ->
      remove_trace_subscriber t id;
      t.named <- List.remove_assoc name t.named
  | None -> ());
  let id = add_trace_subscriber t f in
  t.named <- (name, id) :: t.named;
  reorder_named t

let unsubscribe_named t ~name =
  match List.assoc_opt name t.named with
  | Some id ->
      remove_trace_subscriber t id;
      t.named <- List.remove_assoc name t.named
  | None -> ()

let emit t ev = List.iter (fun (_, f) -> f ev) t.subs

let map_page t ~pid ~page ~writable ~pkey =
  if pkey < 0 || pkey >= nkeys then invalid_arg "Mpk.map_page: bad pkey";
  let b = table t pid in
  let pte = pte_mapped lor (if writable then pte_writable else 0) lor (pkey lsl 4) in
  Bytes.set b page (Char.chr pte)

let unmap_page t ~pid ~page = Bytes.set (table t pid) page '\000'

let unmap_all t ~pid =
  match Hashtbl.find_opt t.tables pid with
  | None -> ()
  | Some b -> Bytes.fill b 0 (Bytes.length b) '\000'

(* Process teardown: forget the pid's page table entirely (unlike
   [unmap_all], which keeps a zero-filled table) and drop the per-thread
   register/mode state of its threads.  PKRU is per-logical-CPU state on real
   hardware; when a process dies, the next thread scheduled on that core must
   start from [pkru_all_disabled], never from the victim's register image —
   dropping the entries restores exactly that default. *)
let drop_thread_state t ~tid =
  Hashtbl.remove t.pkru tid;
  Hashtbl.remove t.kernel_depth tid;
  Hashtbl.remove t.write_window tid

let has_thread_state t ~tid =
  Hashtbl.mem t.pkru tid || Hashtbl.mem t.kernel_depth tid
  || Hashtbl.mem t.write_window tid

let drop_process t ~pid ~tids =
  Hashtbl.remove t.tables pid;
  List.iter (fun tid -> drop_thread_state t ~tid) tids

let has_table t ~pid = Hashtbl.mem t.tables pid

let is_mapped t ~pid ~page =
  match Hashtbl.find_opt t.tables pid with
  | None -> false
  | Some b -> Char.code (Bytes.get b page) land pte_mapped <> 0

let page_pkey t ~pid ~page =
  match Hashtbl.find_opt t.tables pid with
  | None -> None
  | Some b ->
      let pte = Char.code (Bytes.get b page) in
      if pte land pte_mapped = 0 then None else Some (pte lsr 4)

let wrpkru t perms =
  Hashtbl.replace t.pkru (Sim.self_tid ()) (pkru_of_perms perms);
  Sim.advance wrpkru_cost;
  if t.subs != [] then emit t (M_wrpkru { perms })

let rdpkru t = perms_of_pkru (current_pkru t)

let with_keys t perms f =
  let tid = Sim.self_tid () in
  let saved = current_pkru t in
  Hashtbl.replace t.pkru tid (pkru_of_perms perms);
  Sim.advance wrpkru_cost;
  if t.subs != [] then emit t (M_scope_enter { perms });
  let restore () =
    Hashtbl.replace t.pkru tid saved;
    Sim.advance wrpkru_cost;
    emit t M_scope_exit
  in
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

let bump tbl tid delta =
  let d = depth tbl tid + delta in
  if d = 0 then Hashtbl.remove tbl tid else Hashtbl.replace tbl tid d

let with_kernel t f =
  let tid = Sim.self_tid () in
  bump t.kernel_depth tid 1;
  match f () with
  | v ->
      bump t.kernel_depth tid (-1);
      v
  | exception e ->
      bump t.kernel_depth tid (-1);
      raise e

let with_write_window t f =
  let tid = Sim.self_tid () in
  if depth t.kernel_depth tid = 0 then
    invalid_arg "Mpk.with_write_window: not in kernel mode";
  bump t.write_window tid 1;
  Sim.advance 15 (* CR0 write is a serializing move *);
  match f () with
  | v ->
      bump t.write_window tid (-1);
      Sim.advance 15;
      v
  | exception e ->
      bump t.write_window tid (-1);
      raise e

let fault_count t = t.faults
