(** Simulated memory protection: per-process page tables plus Intel MPK.

    This layer owns the NVM device's protection hook and enforces, on every
    simulated NVM access:

    - {b paging}: a process can only touch pages KernFS mapped into it, and
      only for write if the mapping is read-write;
    - {b MPK}: each mapped page carries a 4-bit protection key; each thread
      has a PKRU register with a 2-bit (access-disable / write-disable) field
      per key, updated by the non-privileged {!wrpkru} (~16 cycles);
    - {b kernel write windows}: kernel-mode code sees all of NVM, but
      read-only unless a CR0.WP write window is open (the PMFS stray-write
      defence that Treasury extends with MPK).

    Violations raise {!Nvm.Fault} — the simulated SIGSEGV. *)

type t

type pkey = int
(** Protection key, 0..15.  Key 0 is the default region. *)

val nkeys : int
(** 16 keys; 15 usable for coffers (paper §3.4.2). *)

val create : Nvm.Device.t -> t
(** Create the protection unit and install its hook on the device.  All
    pages start unmapped for every process; kernel-mode access is allowed
    (read-only without a write window). *)

val device : t -> Nvm.Device.t

(** {1 Page tables (privileged; called by KernFS)} *)

val map_page : t -> pid:int -> page:int -> writable:bool -> pkey:pkey -> unit
val unmap_page : t -> pid:int -> page:int -> unit
val unmap_all : t -> pid:int -> unit
val is_mapped : t -> pid:int -> page:int -> bool
val page_pkey : t -> pid:int -> page:int -> pkey option

(** {1 Process teardown (privileged; called by KernFS reaping)} *)

val drop_process : t -> pid:int -> tids:int list -> unit
(** Forget [pid]'s page table entirely (unlike {!unmap_all}, which keeps a
    zero-filled one) and drop the per-thread PKRU / kernel-mode / write-window
    state of every listed thread.  A fresh thread later scheduled on the same
    simulated core starts from the all-disabled PKRU default — per-process
    protection context must never leak across a process switch. *)

val drop_thread_state : t -> tid:int -> unit
(** Drop one thread's PKRU / kernel-mode / write-window entries. *)

val has_thread_state : t -> tid:int -> bool
(** [true] iff the unit still holds any per-thread state for [tid]
    (no-leak assertions in tests). *)

val has_table : t -> pid:int -> bool
(** [true] iff a page table exists for [pid] (even if empty). *)

(** {1 PKRU (unprivileged; called by FSLibs)} *)

type perm = Pk_none | Pk_read | Pk_read_write

val wrpkru : t -> (pkey * perm) list -> unit
(** Set the current thread's PKRU: listed keys get the given permission, all
    other nonzero keys are disabled.  Key 0 always remains read-write.
    Costs ~6 ns (16 cycles at 2.5 GHz). *)

val rdpkru : t -> (pkey * perm) list
(** Current thread's non-default permissions, for assertions in tests. *)

val with_keys : t -> (pkey * perm) list -> (unit -> 'a) -> 'a
(** [with_keys t ks f] grants exactly [ks] for the duration of [f] and
    restores the previous PKRU afterwards (guideline G1/G2 helper: pass a
    single key to make exactly one coffer accessible). *)

(** {1 Kernel mode} *)

val in_kernel : t -> bool

val with_kernel : t -> (unit -> 'a) -> 'a
(** Run [f] in kernel mode for the current thread: paging/MPK checks are
    bypassed, but NVM writes fault unless a write window is open. *)

val with_write_window : t -> (unit -> 'a) -> 'a
(** Open a CR0.WP write window (kernel mode only). *)

(** {1 Fault accounting} *)

val fault_count : t -> int
(** Number of protection faults delivered so far (for safety tests). *)

(** {1 Trace hook (analysis tooling)} *)

(** Fired on every PKRU update so the guideline checker ({!module:Check}) can
    track open coffer windows per thread: G1 (access with no window open) and
    G2 (two coffers writable at once) are both properties of this stream. *)
type trace_event =
  | M_wrpkru of { perms : (pkey * perm) list }  (** raw {!wrpkru} *)
  | M_scope_enter of { perms : (pkey * perm) list }  (** {!with_keys} entry *)
  | M_scope_exit  (** {!with_keys} exit (PKRU restored) *)

val add_trace_subscriber : t -> (trace_event -> unit) -> int
(** Register a trace subscriber; events are delivered to every subscriber in
    registration order.  Returns an id for {!remove_trace_subscriber}. *)

val remove_trace_subscriber : t -> int -> unit
(** Unregister; unknown ids are ignored. *)

val set_trace_hook : t -> (trace_event -> unit) -> unit
(** Legacy single-hook API, kept as one managed subscription slot: setting
    replaces only the hook previously installed through this function, and
    composes with {!add_trace_subscriber} subscriptions. *)

val clear_trace_hook : t -> unit

val subscribe_named : t -> name:string -> (trace_event -> unit) -> unit
(** Named subscription slot, mirroring {!Nvm.Device.subscribe_named}: one
    slot per name (same-name subscribe replaces), delivery order
    anonymous-first then named in name order. *)

val unsubscribe_named : t -> name:string -> unit
