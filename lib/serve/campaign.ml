(* The overload campaign: drives the serving frontend (Serve) with
   thousands of simulated clients and checks the containment promises of
   the serving plane the way lib/chaos checks the fault-domain promises:

     herd        1024 clients (16 processes x 64 threads) thundering onto
                 four hot files at once; the server must stay inside its
                 slot budget, shed with honest retry-afters, and account
                 every request
     mixed       a high-priority tenant sharing the server with 16
                 flooding tenants offering >= 2x the measured sustainable
                 load; WFQ + bounded queues must keep the high-priority
                 p99 inside its SLO and nobody fully starved
     hotfile     write fan-in on ONE shared inode with tight deadlines:
                 the end-to-end deadline must reach lease acquisition
                 (lease.aborts > 0) and every timeout must be accounted
     slow        an expensive-request tenant next to a cheap-request
                 tenant: WFQ cost charging must keep the cheap tenant's
                 latency independent of the elephant next door
     kills       clients SIGKILLed mid-request (queued and executing):
                 slots and tickets are reclaimed, lost <= kills, and the
                 server keeps serving afterwards
     degrade     the tier machine round-trips: coffer quarantine floors
                 the tier at read-only; a storm of timeouts drives it
                 down; recovery steps it back to normal

   True to the ZoFS model, every client PROCESS carries its own FSLib
   (dispatcher + µFS session) in its own address space; the server's
   admission gate is attached to each dispatcher, and processes share
   nothing but the kernel and the NVM device.

   Every scenario runs in its own simulated world; the aggregated report
   is deterministic (all numbers derive from the virtual clock), which is
   what lets the @serve gate pin BENCH_serve.json byte-for-byte.

   The campaign is also its own negative self-check: rerunning the mixed
   scenario with admission disabled (a naive unbounded-FIFO server) MUST
   produce a starvation violation — proving the campaign can see the
   failure class the serving plane exists to prevent. *)

module D = Nvm.Device
module K = Treasury.Kernfs
module V = Treasury.Vfs
module E = Treasury.Errno
module Ft = Treasury.Fs_types

type report = {
  c_clients : int;  (* client threads simulated, all scenarios *)
  c_requests : int;  (* requests submitted *)
  c_done_ok : int;
  c_done_err : int;
  c_shed : int;
  c_timed_out : int;
  c_lost : int;
  c_kills : int;  (* client threads killed by injection *)
  c_capacity_rps : int;  (* measured sustainable requests/sec *)
  c_overload_x100 : int;  (* mixed-scenario offered load / capacity *)
  c_hi_p99_ns : int;  (* high-priority p99 under overload *)
  c_hi_slo_ns : int;  (* its objective *)
  c_lease_aborts : int;  (* deadline gave up inside lease acquisition *)
  c_degrade_downs : int;
  c_degrade_ups : int;
  c_final_tier : string;  (* after the degrade round-trip *)
  c_violations : string list;
}

(* ---- scenario plumbing --------------------------------------------------- *)

let with_world ~seed f =
  let w = Sim.create ~seed () in
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  let out = ref None in
  Sim.spawn w ~proc ~name:"serve-driver" (fun () -> out := Some (f w));
  Sim.run w;
  match !out with Some v -> v | None -> failwith "serve campaign: driver died"

(* One FSLib for the calling process (fs_mount registers that pid). *)
let fslib_for kfs =
  let disp = Treasury.Dispatcher.create kfs in
  let ufs = Zofs.Ufs.create kfs in
  Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
  (disp, Treasury.Dispatcher.as_vfs disp)

let make_fs ~pages =
  let dev = D.create ~perf:Nvm.Perf.optane ~size:(pages * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  Obs.attach_device dev;
  let kfs =
    K.mkfs dev mpk ~nbuckets:1024 ~root_ctype:Zofs.Ufs.ctype ~root_mode:0o755
      ~root_uid:0 ~root_gid:0 ()
  in
  Zofs.Ufs.mkfs kfs;
  let disp, fs = fslib_for kfs in
  (dev, kfs, disp, fs)

let ok = function
  | Ok v -> v
  | Error e -> failwith ("serve campaign setup: " ^ E.to_string e)

(* Spawn a fresh client process: a leader thread builds the process's own
   FSLib (the file system lives in the client's address space), attaches
   the server's admission gate to its dispatcher, then spawns the other
   workers.  [body fs i] runs in every worker, i in [0, threads); workers
   after the leader start [stagger] ns apart. *)
let spawn_clients w kfs srv ~name ~threads ?(stagger = 0) ~finished body =
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  Sim.spawn w ~proc ~name:(name ^ "-0") (fun () ->
      let disp, fs = fslib_for kfs in
      Serve.attach_dispatcher srv disp;
      for i = 1 to threads - 1 do
        ignore
          (Sim.spawn_tid w ~proc
             ~name:(Printf.sprintf "%s-%d" name i)
             ~at:(Sim.now () + (i * stagger))
             (fun () ->
               body fs i;
               incr finished))
      done;
      body fs 0;
      incr finished)

(* ---- request bodies ------------------------------------------------------ *)

let read_req fs path =
  match V.openf fs path [ Ft.O_RDONLY ] 0 with
  | Error e -> Error e
  | Ok fd ->
      let buf = Bytes.create 256 in
      let r =
        match V.pread fs fd ~off:0 buf 0 256 with
        | Ok _ -> Ok ()
        | Error e -> Error e
      in
      ignore (V.close fs fd);
      r

let append_req fs path data =
  match V.openf fs path [ Ft.O_WRONLY; Ft.O_APPEND ] 0 with
  | Error e -> Error e
  | Ok fd ->
      let r =
        match V.write fs fd data with Ok _ -> Ok () | Error e -> Error e
      in
      ignore (V.close fs fd);
      r

(* In-place overwrite: a deliberately expensive request (lots of media
   lines) with zero space growth, so overload scenarios can run forever. *)
let overwrite_req fs path data =
  match V.openf fs path [ Ft.O_WRONLY ] 0 with
  | Error e -> Error e
  | Ok fd ->
      let r =
        match V.pwrite fs fd ~off:0 data with
        | Ok _ -> Ok ()
        | Error e -> Error e
      in
      ignore (V.close fs fd);
      r

let payload = String.make 64 's'
let big_block = String.make 32_768 'B'
let huge_block = String.make 65_536 'H'

(* Per-client outcome tallies folded into the report. *)
type tally = {
  mutable t_sub : int;
  mutable t_ok : int;
  mutable t_err : int;
  mutable t_shed : int;
  mutable t_timed : int;
  mutable t_bad_retry_after : int;  (* shed with retry_after <= 0 *)
}

let mk_tally () =
  { t_sub = 0; t_ok = 0; t_err = 0; t_shed = 0; t_timed = 0;
    t_bad_retry_after = 0 }

let count tally = function
  | Serve.Done (Ok ()) -> tally.t_ok <- tally.t_ok + 1
  | Serve.Done (Error _) -> tally.t_err <- tally.t_err + 1
  | Serve.Shed { retry_after; _ } ->
      tally.t_shed <- tally.t_shed + 1;
      if retry_after <= 0 then
        tally.t_bad_retry_after <- tally.t_bad_retry_after + 1
  | Serve.Timed_out _ -> tally.t_timed <- tally.t_timed + 1

(* Wait until [n] client threads have finished (cooperative join). *)
let join finished n =
  while !finished < n do
    Sim.advance 20_000
  done

(* The per-tenant books must balance exactly: submitted = done + errors +
   timeouts + sheds + lost.  Every scenario closes with this audit. *)
let audit_accounting ~name srv violation =
  Serve.sweep srv;
  List.iter
    (fun s ->
      if Serve.accounted s <> s.Serve.ts_submitted then
        violation
          (Printf.sprintf
             "%s: tenant %d books don't balance: submitted=%d accounted=%d"
             name s.Serve.ts_id s.Serve.ts_submitted (Serve.accounted s)))
    (Serve.tenant_stats srv)

let fold_stats srv acc =
  List.fold_left
    (fun (a, b, c, d, e, f) s ->
      ( a + s.Serve.ts_submitted,
        b + s.Serve.ts_done_ok,
        c + s.Serve.ts_done_err,
        d + Serve.shed_total s,
        e + s.Serve.ts_timed_out,
        f + s.Serve.ts_lost ))
    acc (Serve.tenant_stats srv)

(* ---- calibration: the sustainable service rate --------------------------- *)

(* Closed-loop clients saturating the slot pool with the same expensive
   request the overload scenarios use; completions/elapsed is the ceiling
   the mixed scenario must exceed.  Deterministic. *)
let mixed_inflight = 2

let calibrate ~seed ~ops_per_client =
  with_world ~seed (fun w ->
      let _dev, kfs, _disp, fs = make_fs ~pages:4096 in
      let srv = Serve.create ~max_inflight:mixed_inflight () in
      Serve.add_tenant srv ~id:0 ~weight:1 ~rate_per_ms:1_000_000
        ~burst:1_000_000 ~queue_cap:256 ();
      ok (V.mkdir fs "/cal" 0o755);
      for i = 0 to 15 do
        ignore
          (ok
             (V.write_file fs
                (Printf.sprintf "/cal/f%d" i)
                ~mode:0o644 huge_block))
      done;
      let finished = ref 0 in
      let t0 = Sim.now () in
      spawn_clients w kfs srv ~name:"cal" ~threads:16 ~finished (fun fs i ->
          Obs.set_tenant 0;
          let path = Printf.sprintf "/cal/f%d" i in
          for _ = 1 to ops_per_client do
            ignore
              (Serve.submit srv ~tenant_id:0 (fun () ->
                   overwrite_req fs path huge_block))
          done);
      join finished 16;
      let elapsed = Sim.now () - t0 in
      let total = 16 * ops_per_client in
      if elapsed = 0 then 0
      else int_of_float (float_of_int total /. (float_of_int elapsed /. 1e9)))

(* ---- scenario: thundering herd ------------------------------------------- *)

let herd ~seed ~procs ~threads_per violation =
  with_world ~seed (fun w ->
      let _dev, kfs, _disp, fs = make_fs ~pages:4096 in
      let srv = Serve.create ~max_inflight:16 () in
      let n_tenants = 4 in
      for i = 0 to n_tenants - 1 do
        Serve.add_tenant srv ~id:i ~weight:1 ~rate_per_ms:400 ~burst:64
          ~queue_cap:64 ()
      done;
      for i = 0 to 3 do
        ignore
          (ok
             (V.write_file fs
                (Printf.sprintf "/hot%d" i)
                ~mode:0o644 (String.make 512 'h')))
      done;
      let n = procs * threads_per in
      let finished = ref 0 in
      let tally = mk_tally () in
      for p = 0 to procs - 1 do
        spawn_clients w kfs srv
          ~name:(Printf.sprintf "herd%d" p)
          ~threads:threads_per ~stagger:800 ~finished
          (fun fs i ->
            let cid = (p * threads_per) + i in
            let tenant_id = cid mod n_tenants in
            Obs.set_tenant tenant_id;
            let path = Printf.sprintf "/hot%d" (cid mod 4) in
            let give_up_at = Sim.now () + 80_000_000 in
            let rec attempt tries =
              tally.t_sub <- tally.t_sub + 1;
              let o =
                Serve.submit srv ~tenant_id ~write:false
                  ~deadline_ns:10_000_000 (fun () -> read_req fs path)
              in
              count tally o;
              match o with
              | Serve.Shed { retry_after; _ }
                when tries < 6 && Sim.now () + retry_after < give_up_at ->
                  (* honest retry-after: wait it out, then try again *)
                  Sim.advance (retry_after + (cid mod 17 * 311));
                  attempt (tries + 1)
              | _ -> ()
            in
            attempt 0)
      done;
      join finished n;
      if Serve.inflight srv <> 0 then
        violation "herd: slots leaked (inflight != 0 after drain)";
      if tally.t_ok < Serve.max_inflight srv then
        violation
          (Printf.sprintf "herd: only %d requests ever completed" tally.t_ok);
      if tally.t_shed = 0 then
        violation "herd: 1024 clients against 16 slots shed nothing";
      if tally.t_err > 0 then
        violation
          (Printf.sprintf "herd: %d requests failed outright" tally.t_err);
      if tally.t_bad_retry_after > 0 then
        violation
          (Printf.sprintf "herd: %d sheds carried retry_after <= 0"
             tally.t_bad_retry_after);
      (* no starvation: every tenant got at least a sliver of service *)
      List.iter
        (fun s ->
          if s.Serve.ts_done_ok = 0 then
            violation
              (Printf.sprintf "herd: tenant %d fully starved" s.Serve.ts_id))
        (Serve.tenant_stats srv);
      audit_accounting ~name:"herd" srv violation;
      (n, srv))

(* ---- scenario: mixed priorities at >= 2x sustainable load ---------------- *)

(* Also the negative self-check body: with [admission:false] the server
   degenerates to a naive unbounded FIFO and the starvation check below
   MUST fire. *)
let mixed ~seed ~admission ~capacity_rps ~floods ~per_flood ~duration_ns
    violation =
  with_world ~seed (fun w ->
      let _dev, kfs, _disp, fs = make_fs ~pages:8192 in
      let srv = Serve.create ~max_inflight:mixed_inflight ~admission () in
      (* tenant 0: high priority — weight 8 and budget for its whole rate;
         tenants 1..floods: flooding bulk writers on a short queue *)
      Serve.add_tenant srv ~id:0 ~weight:16 ~rate_per_ms:200 ~burst:32
        ~queue_cap:64 ();
      for i = 1 to floods do
        Serve.add_tenant srv ~id:i ~weight:1 ~rate_per_ms:100 ~burst:16
          ~queue_cap:4 ()
      done;
      ok (V.mkdir fs "/m" 0o755);
      ignore (ok (V.write_file fs "/m/f0" ~mode:0o644 (String.make 256 'm')));
      for i = 1 to floods do
        ignore
          (ok (V.write_file fs (Printf.sprintf "/m/f%d" i) ~mode:0o644
                 huge_block))
      done;
      Obs.Slo.define ~name:"serve-hi" ~op:"req" ~p99_target_ns:1_500_000;
      let snap0 = Obs.Snapshot.take () in
      let stop_at = Sim.now () + duration_ns in
      let finished = ref 0 in
      let n_hi = 16 in
      let n = n_hi + (floods * per_flood) in
      (* high-priority clients: open-loop, paced inside their quota *)
      spawn_clients w kfs srv ~name:"hi" ~threads:n_hi ~stagger:3_000 ~finished
        (fun fs c ->
          Obs.set_tenant 0;
          while Sim.now () < stop_at do
            ignore
              (Serve.submit srv ~tenant_id:0 ~write:false
                 ~deadline_ns:1_500_000 (fun () -> read_req fs "/m/f0"));
            Sim.advance (90_000 + (c * 1_009))
          done);
      (* flood clients: closed-loop expensive overwrites, resubmitting the
         moment a shed's retry-after allows *)
      for fl = 1 to floods do
        spawn_clients w kfs srv
          ~name:(Printf.sprintf "flood%d" fl)
          ~threads:per_flood ~stagger:1_500 ~finished
          (fun fs c ->
            Obs.set_tenant fl;
            let path = Printf.sprintf "/m/f%d" fl in
            while Sim.now () < stop_at do
              (match
                 Serve.submit srv ~tenant_id:fl (fun () ->
                     overwrite_req fs path huge_block)
               with
              | Serve.Shed { retry_after; _ } ->
                  Sim.advance (retry_after + 30_000)
              | _ -> Sim.advance 2_000);
              Sim.advance (1_000 + (c * 97))
            done)
      done;
      join finished n;
      let req, _, _, _, _, _ = fold_stats srv (0, 0, 0, 0, 0, 0) in
      let offered_rps =
        int_of_float (float_of_int req /. (float_of_int duration_ns /. 1e9))
      in
      let overload_x100 =
        if capacity_rps = 0 then 0 else offered_rps * 100 / capacity_rps
      in
      if admission && overload_x100 < 200 then
        violation
          (Printf.sprintf
             "mixed: offered load only %d.%02dx the sustainable rate (want \
              >= 2x)"
             (overload_x100 / 100) (overload_x100 mod 100));
      (* the SLO verdict for the high-priority tenant *)
      let snap = Obs.Snapshot.diff snap0 (Obs.Snapshot.take ()) in
      let reports = Obs.Slo.evaluate snap in
      let hi_p99, hi_target =
        match
          List.find_opt
            (fun r -> r.Obs.Slo.s_name = "serve-hi" && r.Obs.Slo.s_tenant = "0")
            reports
        with
        | None ->
            violation "mixed: no SLO samples for the high-priority tenant";
            (0, 1_500_000)
        | Some r ->
            if r.Obs.Slo.s_burn > 1.0 then
              violation
                (Printf.sprintf
                   "mixed: high-priority SLO violated under overload: p99 %d \
                    ns (target %d), burn %.2f"
                   r.Obs.Slo.s_p99 r.Obs.Slo.s_target r.Obs.Slo.s_burn);
            (r.Obs.Slo.s_p99, r.Obs.Slo.s_target)
      in
      (* starvation checks — the teeth of the negative self-check: the
         high-priority tenant must get >= 90% of its requests served, the
         floods must not be starved outright (>= 1%) *)
      List.iter
        (fun s ->
          let sub = s.Serve.ts_submitted in
          let num, den = if s.Serve.ts_id = 0 then (9, 10) else (1, 200) in
          if sub > 0 && s.Serve.ts_done_ok * den < sub * num then
            violation
              (Printf.sprintf "mixed: tenant %d starved (%d/%d served)"
                 s.Serve.ts_id s.Serve.ts_done_ok sub))
        (Serve.tenant_stats srv);
      audit_accounting ~name:"mixed" srv violation;
      Obs.Slo.clear_definitions ();
      (n, srv, overload_x100, hi_p99, hi_target))

(* ---- scenario: hot-file write fan-in with tight deadlines ---------------- *)

let hotfile ~seed ~procs ~per_proc violation =
  with_world ~seed (fun w ->
      let _dev, kfs, _disp, fs = make_fs ~pages:4096 in
      (* slots exceed the herd's concurrency appetite: the contention this
         scenario is about lives at the LEASE, not in the queue *)
      let srv = Serve.create ~max_inflight:32 ~window_ns:50_000_000 () in
      Serve.add_tenant srv ~id:0 ~weight:1 ~rate_per_ms:5_000 ~burst:512
        ~queue_cap:256 ();
      ignore (ok (V.write_file fs "/fanin" ~mode:0o644 "seed"));
      let aborts_at () =
        match Obs.Snapshot.counter_value (Obs.Snapshot.take ()) "lease.aborts"
        with
        | Some v -> v
        | None -> 0
      in
      let aborts0 = aborts_at () in
      let writers = procs * per_proc in
      let finished = ref 0 in
      let tally = mk_tally () in
      for p = 0 to procs - 1 do
        spawn_clients w kfs srv
          ~name:(Printf.sprintf "fan%d" p)
          ~threads:per_proc ~stagger:500 ~finished
          (fun fs _i ->
            Obs.set_tenant 0;
            for _ = 1 to 6 do
              tally.t_sub <- tally.t_sub + 1;
              (* deadline of the order of ONE leased append: most of the
                 herd must give up inside lease acquisition *)
              count tally
                (Serve.submit srv ~tenant_id:0 ~deadline_ns:120_000 (fun () ->
                     append_req fs "/fanin" payload));
              Sim.advance 3_000
            done)
      done;
      join finished writers;
      let aborts = aborts_at () - aborts0 in
      if aborts = 0 then
        violation
          "hotfile: no deadline ever gave up inside lease acquisition \
           (deadline not reaching Lease.acquire?)";
      if tally.t_timed = 0 then
        violation "hotfile: tight deadlines produced no timeouts";
      if tally.t_ok = 0 then violation "hotfile: nobody ever appended";
      (* the inode survived the stampede *)
      (match V.stat fs "/fanin" with
      | Ok _ -> ()
      | Error e ->
          violation ("hotfile: file unreadable after fan-in: " ^ E.to_string e));
      audit_accounting ~name:"hotfile" srv violation;
      (writers, srv, aborts))

(* ---- scenario: slow-client isolation ------------------------------------- *)

let slow ~seed violation =
  with_world ~seed (fun w ->
      let _dev, kfs, _disp, fs = make_fs ~pages:8192 in
      let srv = Serve.create ~max_inflight:4 () in
      Serve.add_tenant srv ~id:0 ~weight:4 ~rate_per_ms:2_000 ~burst:64
        ~queue_cap:64 () (* cheap *);
      Serve.add_tenant srv ~id:1 ~weight:1 ~rate_per_ms:300 ~burst:8
        ~queue_cap:6 () (* elephant: expensive writes, short queue *);
      ignore (ok (V.write_file fs "/cheap" ~mode:0o644 (String.make 256 'c')));
      ignore (ok (V.write_file fs "/slowf" ~mode:0o644 big_block));
      let finished = ref 0 in
      let cheap_lat = Sim.Stats.create () in
      let n_cheap = 12 and n_slow = 16 in
      spawn_clients w kfs srv ~name:"cheap" ~threads:n_cheap ~stagger:2_000
        ~finished (fun fs _ ->
          Obs.set_tenant 0;
          for _ = 1 to 40 do
            let t0 = Sim.now () in
            (match
               Serve.submit srv ~tenant_id:0 ~write:false
                 ~deadline_ns:20_000_000 (fun () -> read_req fs "/cheap")
             with
            | Serve.Done (Ok ()) ->
                Sim.Stats.add cheap_lat (float_of_int (Sim.now () - t0))
            | _ -> ());
            Sim.advance 25_000
          done);
      spawn_clients w kfs srv ~name:"slow" ~threads:n_slow ~stagger:2_000
        ~finished (fun fs _ ->
          Obs.set_tenant 1;
          for _ = 1 to 25 do
            (match
               Serve.submit srv ~tenant_id:1 ~cost:8 ~deadline_ns:50_000_000
                 (fun () -> overwrite_req fs "/slowf" big_block)
             with
            | Serve.Shed { retry_after; _ } ->
                Sim.advance (min retry_after 200_000)
            | _ -> Sim.advance 4_000);
            Sim.advance 2_000
          done);
      join finished (n_cheap + n_slow);
      let stats = Serve.tenant_stats srv in
      let cheap = List.nth stats 0 and slowt = List.nth stats 1 in
      if cheap.Serve.ts_done_ok * 10 < cheap.Serve.ts_submitted * 9 then
        violation
          (Printf.sprintf
             "slow: cheap tenant lost service next to the elephant (%d/%d)"
             cheap.Serve.ts_done_ok cheap.Serve.ts_submitted);
      if Serve.shed_total slowt = 0 then
        violation
          "slow: the elephant was never backpressured (cost/quota dead?)";
      if Sim.Stats.count cheap_lat > 0
         && Sim.Stats.mean cheap_lat > 5_000_000. then
        violation
          (Printf.sprintf "slow: cheap tenant mean latency ballooned to %.0f ns"
             (Sim.Stats.mean cheap_lat));
      audit_accounting ~name:"slow" srv violation;
      (n_cheap + n_slow, srv))

(* ---- scenario: clients killed mid-request -------------------------------- *)

let kills ~seed ~procs ~per_proc violation =
  with_world ~seed (fun w ->
      let _dev, kfs, _disp, fs = make_fs ~pages:4096 in
      let srv = Serve.create ~max_inflight:8 () in
      Serve.add_tenant srv ~id:0 ~weight:1 ~rate_per_ms:2_000 ~burst:256
        ~queue_cap:128 ();
      ignore (ok (V.write_file fs "/kf" ~mode:0o644 (String.make 256 'k')));
      let clients = procs * per_proc in
      let finished = ref 0 in
      let kills0 = Sim.killed_threads () in
      let armed = ref 0 in
      for p = 0 to procs - 1 do
        spawn_clients w kfs srv
          ~name:(Printf.sprintf "kc%d" p)
          ~threads:per_proc ~stagger:2_000 ~finished
          (fun fs i ->
            let cid = (p * per_proc) + i in
            (* every third client schedules its own death at a staggered
               depth: some die waiting in the queue, some die holding an
               execution slot *)
            if cid mod 3 = 0 then begin
              incr armed;
              Sim.arm_kill ~tid:(Sim.self_tid ())
                ~after:(20 + (cid * 29 mod 2_000))
            end;
            Obs.set_tenant 0;
            for _ = 1 to 8 do
              ignore
                (Serve.submit srv ~tenant_id:0 ~write:false
                   ~deadline_ns:20_000_000 (fun () -> read_req fs "/kf"));
              Sim.advance 5_000
            done)
      done;
      (* dead clients never bump [finished]; join on the survivors, then
         give stragglers time to drain *)
      let survivors = clients - ((clients + 2) / 3) in
      join finished survivors;
      Sim.advance 40_000_000;
      Serve.sweep srv;
      let killed = Sim.killed_threads () - kills0 in
      if killed = 0 then violation "kills: injector armed nothing";
      let stats = List.hd (Serve.tenant_stats srv) in
      if stats.Serve.ts_lost > killed then
        violation
          (Printf.sprintf "kills: lost %d > killed %d (phantom reclaim)"
             stats.Serve.ts_lost killed);
      if Serve.inflight srv <> 0 then
        violation "kills: a dead client still owns an execution slot";
      (* the server still serves after the massacre *)
      (match
         Serve.submit srv ~tenant_id:0 ~write:false (fun () ->
             read_req fs "/kf")
       with
      | Serve.Done (Ok ()) -> ()
      | _ -> violation "kills: server wedged after client deaths");
      audit_accounting ~name:"kills" srv violation;
      (clients, srv, killed))

(* ---- scenario: degrade / recover round-trip ------------------------------ *)

let degrade ~seed violation =
  with_world ~seed (fun _w ->
      let _dev, kfs, disp, fs = make_fs ~pages:4096 in
      ignore (ok (V.write_file fs "/deg" ~mode:0o600 (String.make 128 'd')));
      let cid = ok (K.coffer_find kfs "/deg") in
      let srv =
        Serve.create ~max_inflight:8 ~window_ns:400_000 ~cooldown_ns:800_000
          ~home:(kfs, cid) ()
      in
      Serve.add_tenant srv ~id:0 ~weight:1 ~rate_per_ms:5_000 ~burst:1_024
        ~queue_cap:256 ();
      Serve.attach_dispatcher srv disp;
      let wr () =
        Serve.submit srv ~tenant_id:0 (fun () -> append_req fs "/deg" payload)
      and rd () =
        Serve.submit srv ~tenant_id:0 ~write:false (fun () ->
            read_req fs "/deg")
      in
      (* 1. health floor: quarantining the home coffer forces read-only *)
      (match wr () with
      | Serve.Done (Ok ()) -> ()
      | _ -> violation "degrade: healthy server refused a write");
      K.set_coffer_health kfs cid K.Quarantined;
      if Serve.current_tier srv <> Serve.Read_only then
        violation "degrade: quarantined home coffer didn't floor tier";
      (match wr () with
      | Serve.Shed { reason = Serve.Degraded; _ } -> ()
      | _ -> violation "degrade: read-only tier admitted a write");
      (match rd () with
      | Serve.Done (Ok ()) -> ()
      | _ -> violation "degrade: read-only tier refused a read");
      K.set_coffer_health kfs cid K.Healthy;
      if Serve.current_tier srv <> Serve.Normal then
        violation "degrade: tier stuck after coffer healed";
      (* 2. outcome-driven: a storm of impossible deadlines must push the
         tier down; calm traffic must bring it back *)
      let downs0 = Serve.degrade_downs srv in
      let ups0 = Serve.degrade_ups srv in
      let saw_degraded = ref false in
      for _ = 1 to 120 do
        (* deadline shorter than any possible service: every one times out *)
        ignore
          (Serve.submit srv ~tenant_id:0 ~deadline_ns:80 (fun () ->
               append_req fs "/deg" payload));
        Sim.advance 10_000;
        if Serve.current_tier srv <> Serve.Normal then saw_degraded := true
      done;
      if Serve.degrade_downs srv <= downs0 then
        violation "degrade: a 100% timeout storm never degraded the tier";
      if not !saw_degraded then
        violation "degrade: tier never left Normal during the storm";
      (* calm: quiet windows + clean probes step the tier back up *)
      let recovered = ref false in
      let give_up = Sim.now () + 50_000_000 in
      while (not !recovered) && Sim.now () < give_up do
        (match rd () with _ -> ());
        Sim.advance 200_000;
        if Serve.current_tier srv = Serve.Normal then recovered := true
      done;
      if not !recovered then
        violation "degrade: tier never recovered to Normal after the storm";
      if Serve.degrade_ups srv <= ups0 then
        violation "degrade: recovery didn't step through degrade.up";
      (match wr () with
      | Serve.Done (Ok ()) -> ()
      | _ -> violation "degrade: recovered server still refuses writes");
      audit_accounting ~name:"degrade" srv violation;
      ( 1,
        srv,
        Serve.degrade_downs srv,
        Serve.degrade_ups srv,
        Serve.tier_name (Serve.current_tier srv) ))

(* ---- the campaign -------------------------------------------------------- *)

let run ?(seed = 21L) ?(quick = false) () =
  Obs.enable ();
  Obs.reset ();
  let violations = ref [] in
  let violation msg =
    Obs.Flight.invariant_failure msg;
    if List.length !violations < 40 then violations := msg :: !violations
  in
  let clients = ref 0 in
  let acc = ref (0, 0, 0, 0, 0, 0) in
  let add_srv n srv =
    clients := !clients + n;
    acc := fold_stats srv !acc
  in
  (* 0. ceiling *)
  let capacity = calibrate ~seed ~ops_per_client:(if quick then 12 else 30) in
  if capacity = 0 then violation "calibrate: zero sustainable throughput";
  (* 1. thundering herd: 16 procs x 64 threads = 1024 clients *)
  let herd_n, herd_srv =
    herd ~seed:(Int64.add seed 1L) ~procs:16 ~threads_per:64 violation
  in
  add_srv herd_n herd_srv;
  (* 2. mixed priorities at >= 2x sustainable *)
  let mixed_n, mixed_srv, overload_x100, hi_p99, hi_slo =
    mixed ~seed:(Int64.add seed 2L) ~admission:true ~capacity_rps:capacity
      ~floods:16 ~per_flood:20
      ~duration_ns:(if quick then 20_000_000 else 40_000_000)
      violation
  in
  add_srv mixed_n mixed_srv;
  (* 3. hot-file fan-in with deadlines inside lease acquisition *)
  let fan_n, fan_srv, lease_aborts =
    hotfile ~seed:(Int64.add seed 3L)
      ~procs:(if quick then 4 else 8)
      ~per_proc:20 violation
  in
  add_srv fan_n fan_srv;
  (* 4. slow-client isolation *)
  let slow_n, slow_srv = slow ~seed:(Int64.add seed 4L) violation in
  add_srv slow_n slow_srv;
  (* 5. killed clients *)
  let kill_n, kill_srv, killed =
    kills ~seed:(Int64.add seed 5L) ~procs:4
      ~per_proc:(if quick then 15 else 30)
      violation
  in
  add_srv kill_n kill_srv;
  (* 6. degrade / recover *)
  let deg_n, deg_srv, downs, ups, final_tier =
    degrade ~seed:(Int64.add seed 6L) violation
  in
  add_srv deg_n deg_srv;
  let req, ok_, err, shed_, timed, lost = !acc in
  if !clients < 1000 then
    violation
      (Printf.sprintf "campaign: only %d clients simulated (want 1000+)"
         !clients);
  {
    c_clients = !clients;
    c_requests = req;
    c_done_ok = ok_;
    c_done_err = err;
    c_shed = shed_;
    c_timed_out = timed;
    c_lost = lost;
    c_kills = killed;
    c_capacity_rps = capacity;
    c_overload_x100 = overload_x100;
    c_hi_p99_ns = hi_p99;
    c_hi_slo_ns = hi_slo;
    c_lease_aborts = lease_aborts;
    c_degrade_downs = downs;
    c_degrade_ups = ups;
    c_final_tier = final_tier;
    c_violations = List.rev !violations;
  }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

(* The campaign must be able to DETECT the failure it polices: a naive
   FIFO server (admission off) under the same mixed overload must produce
   a starvation (or SLO) violation.  Returns true when it was caught. *)
let negative_selfcheck ?(seed = 77L) ?(quick = false) () =
  Obs.enable ();
  Obs.reset ();
  let violations = ref [] in
  let violation msg = violations := msg :: !violations in
  let _ =
    mixed ~seed ~admission:false ~capacity_rps:1 ~floods:16 ~per_flood:20
      ~duration_ns:(if quick then 20_000_000 else 40_000_000)
      violation
  in
  (* only the starvation/SLO class counts *)
  List.exists
    (fun v ->
      contains v "mixed"
      && (contains v "starved" || contains v "SLO" || contains v "no SLO"))
    !violations
