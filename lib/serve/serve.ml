(* The serving plane: an overload-robust session multiplexer in front of
   the per-process FSLibs dispatchers.

   ZoFS moves the file system into the address space of every client, so
   there is no kernel scheduler between a misbehaving tenant and the NVM:
   a thundering herd of opens, a tenant flooding writes, or a client that
   dies mid-request all land directly on the coffers and their leases.
   This module is the missing front door.  It multiplexes thousands of
   simulated client threads onto a bounded set of execution slots and
   stays well-behaved under overload:

     admission    per-tenant token buckets (rate + burst) shed work the
                  tenant has no budget for, with an honest retry-after;
                  bounded per-tenant queues shed work that would only rot
                  in line (EAGAIN-with-retry-after, never silent drops)
     fairness     weighted fair queueing across tenants: each ticket gets
                  a virtual finish time [max(server vtime, tenant vtime) +
                  cost/weight]; grants always pick the smallest, so a
                  flooding tenant cannot starve a polite one
     deadlines    every request may carry an end-to-end budget; it is
                  pinned on the executing thread (Treasury.Deadline) and
                  honoured all the way down — the dispatcher refuses to
                  start new ops on it, lease acquisition gives up camping
                  (Lease.acquire ~deadline), the transient-errno absorber
                  stops retrying — and a request still in the queue when
                  its budget dies abandons its ticket
     degradation  a tier machine (Normal > Read_only > Rejecting) driven
                  by a sliding window of service outcomes (timeouts, EIO)
                  and floored by the health of the home coffer: a sick
                  server first refuses writes, then refuses everything but
                  a probe trickle, and steps back up through the same
                  tiers once probes come back clean after a cooldown

   Everything is deterministic under the simulated clock: grants happen in
   (vfinish, tenant, seq) order, polling cadences are decorrelated by
   per-thread offsets, and no shared RNG stream is consumed.

   There are NO condition variables: a simulated client that dies never
   unwinds, so nothing here may depend on a waiter running a handoff.
   Grants are performed by whichever live client polls next (grant-by-
   polling), and a periodic sweep reclaims the slots and tickets of dead
   clients ([Sim.thread_alive]) so a killed client can cost at most one
   slot for one sweep interval. *)

module E = Treasury.Errno
module K = Treasury.Kernfs

type tier = Normal | Read_only | Rejecting

let tier_rank = function Normal -> 0 | Read_only -> 1 | Rejecting -> 2
let tier_name = function
  | Normal -> "normal"
  | Read_only -> "read_only"
  | Rejecting -> "rejecting"

type shed_reason = Quota | Queue_full | Degraded

let reason_name = function
  | Quota -> "quota"
  | Queue_full -> "queue_full"
  | Degraded -> "degraded"

type stage = Queued | Executing

type outcome =
  | Done of (unit, E.t) result
  | Shed of { retry_after : int; reason : shed_reason }
  | Timed_out of { stage : stage }

(* ---- tickets and tenants ------------------------------------------------ *)

type ticket_state = Waiting | Granted | Abandoned

type ticket = {
  tk_tenant : int;
  tk_tid : int;
  tk_vf : int;  (* virtual finish time, fixed-point *)
  tk_seq : int;  (* global submission order: the deterministic tiebreak *)
  mutable tk_state : ticket_state;
}

type tenant = {
  tn_id : int;
  tn_weight : int;
  tn_rate : int;  (* work units per simulated millisecond *)
  tn_burst : int;  (* bucket capacity, work units *)
  tn_qcap : int;  (* bounded queue length *)
  tn_queue : ticket Queue.t;
  mutable tn_qlen : int;  (* live (non-abandoned) tickets in tn_queue *)
  mutable tn_vtime : int;  (* last assigned virtual finish *)
  mutable tn_tokens : int;  (* fixed-point: units * fp_scale *)
  mutable tn_refill_at : int;  (* sim time of last refill *)
  (* accounting — the campaign reconciles these exactly *)
  mutable tn_submitted : int;
  mutable tn_done_ok : int;
  mutable tn_done_err : int;
  mutable tn_timed_out : int;
  mutable tn_shed_quota : int;
  mutable tn_shed_queue : int;
  mutable tn_shed_degraded : int;
  mutable tn_lost : int;  (* client died while queued or executing *)
}

type t = {
  sv_admission : bool;
      (* false = the naive server the negative self-check needs: one
         global FIFO, no quotas, no bounds, no tiers.  Deadlines still
         hold (clients give up), so starvation becomes observable. *)
  sv_max_inflight : int;
  sv_window_ns : int;
  sv_cooldown_ns : int;
  sv_home : (K.t * int) option;  (* coffer whose health floors the tier *)
  sv_tenants : (int, tenant) Hashtbl.t;
  mutable sv_tenant_order : tenant list;  (* ascending id, for scans *)
  mutable sv_inflight : int;
  mutable sv_vtime : int;
  mutable sv_seq : int;
  sv_running : (int, ticket) Hashtbl.t;  (* tid -> granted ticket *)
  sv_probing : (int, unit) Hashtbl.t;  (* tids bypassing the tier gate *)
  (* degradation machine *)
  mutable sv_tier : tier;
  mutable sv_window_end : int;
  mutable sv_cooldown_until : int;
  mutable sv_w_total : int;
  mutable sv_w_bad : int;
  mutable sv_probe_seq : int;
  mutable sv_downs : int;
  mutable sv_ups : int;
}

let fp_scale = 1_000_000 (* token bucket fixed point; rates are per ms *)
let wfq_scale = 1_024 (* virtual-time fixed point *)
let poll_quantum = 2_000 (* ns between grant polls *)
let min_window_samples = 8 (* don't judge a window on fewer outcomes *)
let probe_every = 16 (* in Rejecting, admit 1 request in N as a probe *)
let down_frac = 0.5 (* window bad fraction that degrades a tier *)
let up_frac = 0.1 (* window bad fraction that allows recovery *)

let create ?(max_inflight = 32) ?(window_ns = 2_000_000)
    ?(cooldown_ns = 4_000_000) ?(admission = true) ?home () =
  {
    sv_admission = admission;
    sv_max_inflight = max_inflight;
    sv_window_ns = window_ns;
    sv_cooldown_ns = cooldown_ns;
    sv_home = home;
    sv_tenants = Hashtbl.create 16;
    sv_tenant_order = [];
    sv_inflight = 0;
    sv_vtime = 0;
    sv_seq = 0;
    sv_running = Hashtbl.create 64;
    sv_probing = Hashtbl.create 8;
    sv_tier = Normal;
    sv_window_end = Sim.now () + window_ns;
    sv_cooldown_until = 0;
    sv_w_total = 0;
    sv_w_bad = 0;
    sv_probe_seq = 0;
    sv_downs = 0;
    sv_ups = 0;
  }

let add_tenant t ~id ?(weight = 1) ?(rate_per_ms = 50) ?(burst = 16)
    ?(queue_cap = 64) () =
  if weight <= 0 || rate_per_ms <= 0 || burst <= 0 || queue_cap <= 0 then
    invalid_arg "Serve.add_tenant";
  let tn =
    {
      tn_id = id;
      tn_weight = weight;
      tn_rate = rate_per_ms;
      tn_burst = burst;
      tn_qcap = queue_cap;
      tn_queue = Queue.create ();
      tn_qlen = 0;
      tn_vtime = 0;
      tn_tokens = burst * fp_scale;
      tn_refill_at = Sim.now ();
      tn_submitted = 0;
      tn_done_ok = 0;
      tn_done_err = 0;
      tn_timed_out = 0;
      tn_shed_quota = 0;
      tn_shed_queue = 0;
      tn_shed_degraded = 0;
      tn_lost = 0;
    }
  in
  Hashtbl.replace t.sv_tenants id tn;
  t.sv_tenant_order <-
    List.sort
      (fun a b -> compare a.tn_id b.tn_id)
      (Hashtbl.fold (fun _ v acc -> v :: acc) t.sv_tenants [])

let tenant t id =
  match Hashtbl.find_opt t.sv_tenants id with
  | Some tn -> tn
  | None -> invalid_arg (Printf.sprintf "Serve: unknown tenant %d" id)

(* ---- degradation tiers -------------------------------------------------- *)

let health_floor t =
  match t.sv_home with
  | None -> Normal
  | Some (kfs, cid) -> (
      match K.coffer_health kfs cid with
      | K.Healthy | K.Suspect -> Normal
      | K.Quarantined -> Read_only
      | K.Offline -> Rejecting)

let effective_tier t =
  let f = health_floor t in
  if tier_rank f > tier_rank t.sv_tier then f else t.sv_tier

let set_tier t tier =
  if tier <> t.sv_tier then begin
    let going_down = tier_rank tier > tier_rank t.sv_tier in
    Obs.Flight.note "serve_tier"
      [ ("from", tier_name t.sv_tier); ("to", tier_name tier) ];
    if going_down then begin
      t.sv_downs <- t.sv_downs + 1;
      Obs.cnt "serve.degrade.down" 1
    end
    else begin
      t.sv_ups <- t.sv_ups + 1;
      Obs.cnt "serve.degrade.up" 1
    end;
    t.sv_tier <- tier
  end

let step_down = function Normal -> Read_only | _ -> Rejecting
let step_up = function Rejecting -> Read_only | _ -> Normal

(* Close the outcome window when its time is up.  Too many bad outcomes
   (timeouts, EIO — NOT quota sheds: shedding is the system working) step
   the tier down and start a cooldown; a clean (or quiet) window after the
   cooldown steps it back up.  Quiet windows count as clean so a server
   whose clients gave up entirely can still probe its way back. *)
let maybe_roll_window t =
  let now = Sim.now () in
  if t.sv_admission && now >= t.sv_window_end then begin
    let frac =
      if t.sv_w_total >= min_window_samples then
        float_of_int t.sv_w_bad /. float_of_int t.sv_w_total
      else 0.0
    in
    if t.sv_w_total >= min_window_samples && frac >= down_frac then begin
      if t.sv_tier <> Rejecting then set_tier t (step_down t.sv_tier);
      t.sv_cooldown_until <- now + t.sv_cooldown_ns
    end
    else if t.sv_tier <> Normal && now >= t.sv_cooldown_until && frac <= up_frac
    then set_tier t (step_up t.sv_tier);
    t.sv_w_total <- 0;
    t.sv_w_bad <- 0;
    t.sv_window_end <- now + t.sv_window_ns;
    Obs.Gauge.set (Obs.Gauge.make "serve.tier")
      (float_of_int (tier_rank (effective_tier t)))
  end

let window_outcome t ~bad =
  if t.sv_admission then begin
    t.sv_w_total <- t.sv_w_total + 1;
    if bad then t.sv_w_bad <- t.sv_w_bad + 1
  end;
  maybe_roll_window t

(* ---- the dispatcher-side tier gate -------------------------------------- *)

(* Ops that mutate the namespace or file data; refused in Read_only.  The
   dispatcher distinguishes creating opens ("creat") from plain opens so a
   read-only tier still serves reads of existing files. *)
let write_ops =
  [
    "creat"; "mkdir"; "rmdir"; "unlink"; "rename"; "chmod"; "chown";
    "symlink"; "truncate"; "write"; "pwrite"; "ftruncate";
  ]

let is_write_op op = List.mem op write_ops

(* Installed via Dispatcher.set_admission: consulted BEFORE any µFS work,
   so a degraded server refuses ops without touching NVM.  Probe threads
   bypass the gate — they exist to sense recovery. *)
let attach_dispatcher t disp =
  Treasury.Dispatcher.set_admission disp (fun ~op ->
      maybe_roll_window t;
      if Hashtbl.mem t.sv_probing (Sim.self_tid ()) then Ok ()
      else
        match effective_tier t with
        | Normal -> Ok ()
        | Read_only ->
            if is_write_op op then begin
              Obs.cnt "serve.gate.read_only_refused" 1;
              Error E.EAGAIN
            end
            else Ok ()
        | Rejecting ->
            if op = "close" then Ok () (* resource release always passes *)
            else begin
              Obs.cnt "serve.gate.rejecting_refused" 1;
              Error E.EAGAIN
            end)

(* ---- grant-by-polling --------------------------------------------------- *)

(* Earlier virtual finish wins; ties (same vfinish) break by submission
   order, so grants are a deterministic total order. *)
let better a b =
  match b with
  | None -> true
  | Some b -> a.tk_vf < b.tk_vf || (a.tk_vf = b.tk_vf && a.tk_seq < b.tk_seq)

(* Reclaim slots held by clients that died mid-execution.  Cheap: the
   running table is at most [max_inflight] entries. *)
let sweep_running t =
  Hashtbl.iter
    (fun tid tk ->
      if not (Sim.thread_alive tid) then begin
        Hashtbl.remove t.sv_running tid;
        t.sv_inflight <- t.sv_inflight - 1;
        let tn = tenant t tk.tk_tenant in
        tn.tn_lost <- tn.tn_lost + 1;
        Obs.cnt "serve.lost_clients" 1;
        Obs.Flight.note "serve_reclaim"
          [ ("tid", string_of_int tid); ("tenant", string_of_int tk.tk_tenant) ]
      end)
    t.sv_running

(* Drop dead and abandoned tickets off a queue head.  An abandoned ticket
   was already accounted by its owner (queue-stage timeout); a dead one is
   accounted here as lost. *)
let rec live_head t tn =
  match Queue.peek_opt tn.tn_queue with
  | None -> None
  | Some tk -> (
      match tk.tk_state with
      | Abandoned ->
          ignore (Queue.pop tn.tn_queue);
          live_head t tn
      | Waiting when not (Sim.thread_alive tk.tk_tid) ->
          ignore (Queue.pop tn.tn_queue);
          tn.tn_qlen <- tn.tn_qlen - 1;
          tn.tn_lost <- tn.tn_lost + 1;
          Obs.cnt "serve.lost_clients" 1;
          live_head t tn
      | Waiting -> Some tk
      | Granted ->
          (* cannot happen: granted tickets are popped at grant time *)
          ignore (Queue.pop tn.tn_queue);
          live_head t tn)

(* Fill free slots with the globally smallest-vfinish waiting tickets.
   ANY live client may perform grants (for itself or others): the server
   has no thread of its own, and a dead grantee can never wedge a slot
   for longer than one sweep. *)
let try_grant t =
  sweep_running t;
  let continue_ = ref true in
  while t.sv_inflight < t.sv_max_inflight && !continue_ do
    let best = ref None in
    List.iter
      (fun tn ->
        match live_head t tn with
        | Some tk when better tk !best -> best := Some tk
        | _ -> ())
      t.sv_tenant_order;
    match !best with
    | None -> continue_ := false
    | Some tk ->
        let tn = tenant t tk.tk_tenant in
        ignore (Queue.pop tn.tn_queue);
        tn.tn_qlen <- tn.tn_qlen - 1;
        tk.tk_state <- Granted;
        Hashtbl.replace t.sv_running tk.tk_tid tk;
        t.sv_inflight <- t.sv_inflight + 1;
        if tk.tk_vf > t.sv_vtime then t.sv_vtime <- tk.tk_vf
  done

(* ---- token buckets ------------------------------------------------------ *)

let refill tn =
  let now = Sim.now () in
  let dt = now - tn.tn_refill_at in
  if dt > 0 then begin
    (* tn_rate units/ms = tn_rate * fp / 1e6 token-fp per ns *)
    let add = dt * tn.tn_rate in
    tn.tn_tokens <- min (tn.tn_burst * fp_scale) (tn.tn_tokens + add);
    tn.tn_refill_at <- now
  end

(* ns until [cost] units will be available at the tenant's refill rate *)
let eta_for tn ~cost_fp =
  let missing = cost_fp - tn.tn_tokens in
  if missing <= 0 then 0 else (missing + tn.tn_rate - 1) / tn.tn_rate

(* ---- the serving path --------------------------------------------------- *)

let labels_of tn = Obs.Labels.v [ ("tenant", string_of_int tn.tn_id) ]

let shed _t tn ~reason ~retry_after =
  (match reason with
  | Quota -> tn.tn_shed_quota <- tn.tn_shed_quota + 1
  | Queue_full -> tn.tn_shed_queue <- tn.tn_shed_queue + 1
  | Degraded -> tn.tn_shed_degraded <- tn.tn_shed_degraded + 1);
  Obs.cnt_l "serve.shed" (labels_of tn) 1;
  Obs.cnt ("serve.shed." ^ reason_name reason) 1;
  Shed { retry_after = max 1 retry_after; reason }

(* [submit t ~tenant_id f] runs one client request through the full serving
   path: admission -> weighted-fair queue -> deadline-scoped execution ->
   accounting.  [cost] is the request's work-unit charge (tokens + WFQ),
   [write] whether a read-only tier must refuse it, [deadline_ns] the
   end-to-end budget relative to now.  Returns the outcome; every submitted
   request is accounted exactly once (or counted lost if its client dies). *)
let submit t ~tenant_id ?(cost = 1) ?(write = true) ?deadline_ns f =
  let tn = tenant t tenant_id in
  tn.tn_submitted <- tn.tn_submitted + 1;
  Obs.cnt_l "serve.submitted" (labels_of tn) 1;
  maybe_roll_window t;
  let t0 = Sim.now () in
  let deadline = Option.map (fun d -> t0 + d) deadline_ns in
  let probing = ref false in
  (* --- admission ---------------------------------------------------- *)
  let admitted =
    if not t.sv_admission then Ok ()
    else begin
      match effective_tier t with
      | Rejecting ->
          t.sv_probe_seq <- t.sv_probe_seq + 1;
          if t.sv_probe_seq mod probe_every = 0 then begin
            probing := true;
            Ok ()
          end
          else
            Error (shed t tn ~reason:Degraded ~retry_after:t.sv_window_ns)
      | Read_only when write ->
          Error (shed t tn ~reason:Degraded ~retry_after:t.sv_window_ns)
      | Read_only | Normal ->
          refill tn;
          let cost_fp = cost * fp_scale in
          if tn.tn_tokens < cost_fp then
            Error (shed t tn ~reason:Quota ~retry_after:(eta_for tn ~cost_fp))
          else if tn.tn_qlen >= tn.tn_qcap then
            (* a full queue sheds BEFORE charging tokens: the client will
               retry, and its budget should still be there when it does *)
            Error
              (shed t tn ~reason:Queue_full
                 ~retry_after:(poll_quantum * tn.tn_qcap))
          else begin
            tn.tn_tokens <- tn.tn_tokens - cost_fp;
            Ok ()
          end
    end
  in
  match admitted with
  | Error o -> o
  | Ok () -> (
      (* --- enqueue under WFQ ------------------------------------------ *)
      t.sv_seq <- t.sv_seq + 1;
      let vf =
        if not t.sv_admission then t.sv_seq (* plain global FIFO *)
        else begin
          let start = max t.sv_vtime tn.tn_vtime in
          let fin = start + (cost * wfq_scale / tn.tn_weight) in
          tn.tn_vtime <- fin;
          fin
        end
      in
      let tk =
        {
          tk_tenant = tenant_id;
          tk_tid = Sim.self_tid ();
          tk_vf = vf;
          tk_seq = t.sv_seq;
          tk_state = Waiting;
        }
      in
      Queue.push tk tn.tn_queue;
      tn.tn_qlen <- tn.tn_qlen + 1;
      (* --- wait for a slot (grant-by-polling) ------------------------- *)
      (* decorrelate poll cadences so a herd of waiters doesn't re-poll on
         the same instants forever *)
      let quantum = poll_quantum + 97 * (Sim.self_tid () mod 13) in
      let rec await () =
        try_grant t;
        match tk.tk_state with
        | Granted -> `Run
        | Abandoned -> `Dead (* unreachable: only the owner abandons *)
        | Waiting -> (
            match deadline with
            | Some d when Sim.now () >= d ->
                tk.tk_state <- Abandoned;
                tn.tn_qlen <- tn.tn_qlen - 1;
                `Dead
            | Some d ->
                Sim.advance (min quantum (max 1 (d - Sim.now ())));
                await ()
            | None ->
                Sim.advance quantum;
                await ())
      in
      (* Only execution-stage timeouts feed the degrade window: a budget
         dying in the queue is overload (admission's job), not sickness. *)
      let timed_out ~stage =
        tn.tn_timed_out <- tn.tn_timed_out + 1;
        Obs.cnt_l "serve.timed_out" (labels_of tn) 1;
        window_outcome t ~bad:(stage = Executing);
        Timed_out { stage }
      in
      match await () with
      | `Dead ->
          Obs.cnt "serve.queue_timeouts" 1;
          timed_out ~stage:Queued
      | `Run -> (
          Obs.cnt "serve.queue_wait_ns" (Sim.now () - t0);
          (* the budget can die between grant and first instruction *)
          match deadline with
          | Some d when Sim.now () >= d ->
              Hashtbl.remove t.sv_running tk.tk_tid;
              t.sv_inflight <- t.sv_inflight - 1;
              try_grant t;
              timed_out ~stage:Queued
          | _ ->
              if !probing then
                Hashtbl.replace t.sv_probing (Sim.self_tid ()) ();
              let finish () =
                Hashtbl.remove t.sv_probing (Sim.self_tid ());
                Hashtbl.remove t.sv_running tk.tk_tid;
                t.sv_inflight <- t.sv_inflight - 1;
                try_grant t
              in
              let res =
                match
                  match deadline with
                  | Some d -> Treasury.Deadline.with_deadline d f
                  | None -> f ()
                with
                | r ->
                    finish ();
                    r
                | exception Treasury.Deadline.Expired _ ->
                    (* a bare Deadline.check between ops of a composite
                       request; op-level expiry is already ETIMEDOUT *)
                    finish ();
                    Error E.ETIMEDOUT
                | exception e ->
                    finish ();
                    raise e
              in
              (* deadline-exceeded beats success: a request that finished
                 its work past its budget is a timeout to the client (the
                 side effects stand — aborts only happen at safe points —
                 but the response is late), and late completions are
                 exactly the sickness the degrade window watches for *)
              let res =
                match (res, deadline) with
                | Ok (), Some d when Sim.now () >= d -> Error E.ETIMEDOUT
                | _ -> res
              in
              let dt = Sim.now () - t0 in
              Obs.observe_l "op.latency"
                (Obs.Labels.v
                   [ ("op", "req"); ("tenant", string_of_int tn.tn_id) ])
                dt;
              (match res with
              | Ok () ->
                  tn.tn_done_ok <- tn.tn_done_ok + 1;
                  Obs.cnt_l "serve.done" (labels_of tn) 1;
                  window_outcome t ~bad:false
              | Error E.ETIMEDOUT ->
                  tn.tn_timed_out <- tn.tn_timed_out + 1;
                  Obs.cnt_l "serve.timed_out" (labels_of tn) 1;
                  window_outcome t ~bad:true
              | Error e ->
                  tn.tn_done_err <- tn.tn_done_err + 1;
                  Obs.cnt_l "serve.done_err" (labels_of tn) 1;
                  window_outcome t ~bad:(e = E.EIO));
              match res with
              | Error E.ETIMEDOUT -> Timed_out { stage = Executing }
              | r -> Done r))

(* Reclaim residue of dead clients outside the serving path (e.g. between
   campaign scenarios): slots, queue tickets, and stale ambient deadlines. *)
let sweep t =
  sweep_running t;
  List.iter (fun tn -> ignore (live_head t tn)) t.sv_tenant_order;
  try_grant t;
  Treasury.Deadline.scrub_dead ()

(* ---- introspection (campaign + zofs_top) -------------------------------- *)

type tenant_stats = {
  ts_id : int;
  ts_submitted : int;
  ts_done_ok : int;
  ts_done_err : int;
  ts_timed_out : int;
  ts_shed_quota : int;
  ts_shed_queue : int;
  ts_shed_degraded : int;
  ts_lost : int;
}

let tenant_stats t =
  List.map
    (fun tn ->
      {
        ts_id = tn.tn_id;
        ts_submitted = tn.tn_submitted;
        ts_done_ok = tn.tn_done_ok;
        ts_done_err = tn.tn_done_err;
        ts_timed_out = tn.tn_timed_out;
        ts_shed_quota = tn.tn_shed_quota;
        ts_shed_queue = tn.tn_shed_queue;
        ts_shed_degraded = tn.tn_shed_degraded;
        ts_lost = tn.tn_lost;
      })
    t.sv_tenant_order

let shed_total s = s.ts_shed_quota + s.ts_shed_queue + s.ts_shed_degraded

(* submitted = done + errors + timeouts + sheds + lost, exactly — the
   accounting invariant the overload campaign asserts per tenant. *)
let accounted s =
  s.ts_done_ok + s.ts_done_err + s.ts_timed_out + shed_total s + s.ts_lost

let current_tier = effective_tier
let degrade_downs t = t.sv_downs
let degrade_ups t = t.sv_ups
let inflight t = t.sv_inflight
let max_inflight t = t.sv_max_inflight
