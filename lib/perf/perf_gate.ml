(* The hot-path performance gate (DESIGN.md §14).

   A pinned set of deterministic single-thread experiments exercises the
   batched µFS commit paths — append growth (the Figure 7(d) staircase),
   create, unlink, same-directory rename, and truncate — on a fresh
   simulated world each, and records per-operation simulated latency,
   persistence-instruction counts (clwb/sfence, with the redundancy split
   the device tracks), kernel crossings, and coffer_enlarge calls.  Two
   multi-process experiments ride along: 64 tenant processes — each with
   its own FSLib (dispatcher + FD table + per-process mappings) — hammer
   one shared file / one shared directory through the syscall gate, so the
   baseline also pins the cross-process lease-handoff cost.

   Everything measured is simulated and cooperatively scheduled, so two
   runs of the same binary produce byte-identical numbers; the committed
   baseline (BENCH_perf.json at the repository root) therefore encodes the
   exact cost of every hot path, and `dune build @perf` fails when a change
   regresses any per-op metric beyond tolerance.  Improvements are reported
   and become the new baseline by re-running with --write-baseline. *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types
module FL = Workloads.Fslab
module J = Obs.Json

let schema = "zofs-perf-1"

type metrics = {
  ops : int;
  sim_ns : int;  (* total simulated time of the measured phase *)
  flushes : int;
  redundant_flushes : int;
  fences : int;
  redundant_fences : int;
  crossings : int;  (* kernel syscalls during the measured phase *)
  enlarge_calls : int;
}

type result = { r_name : string; r_m : metrics }

let per_op m total = float_of_int total /. float_of_int (max 1 m.ops)
let ns_per_op m = per_op m m.sim_ns
let flushes_per_op m = per_op m m.flushes
let fences_per_op m = per_op m m.fences
let crossings_per_op m = per_op m m.crossings

(* ---- the pinned experiments ------------------------------------------- *)

let ok = function
  | Ok v -> v
  | Error e -> failwith ("perf_gate: " ^ Treasury.Errno.to_string e)

(* Run [measured] in a fresh single-thread ZoFS world after [setup], with
   device stats, the syscall counter and the enlarge counter bracketing
   exactly the measured phase. *)
let in_world ~ops ~setup ~measured () =
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let inst = FL.make ~pages:16384 FL.Zofs in
      let kfs = Option.get inst.FL.kernfs in
      let dev = inst.FL.device in
      setup inst.FL.fs;
      Nvm.Device.reset_stats dev;
      let c0 = Treasury.Gate.syscall_count (Treasury.Kernfs.gate kfs) in
      let e0 = Treasury.Kernfs.enlarge_count kfs in
      let t0 = Sim.now () in
      measured inst.FL.fs;
      {
        ops;
        sim_ns = Sim.now () - t0;
        flushes = Nvm.Device.stat_flushes dev;
        redundant_flushes = Nvm.Device.stat_redundant_flushes dev;
        fences = Nvm.Device.stat_fences dev;
        redundant_fences = Nvm.Device.stat_redundant_fences dev;
        crossings =
          Treasury.Gate.syscall_count (Treasury.Kernfs.gate kfs) - c0;
        enlarge_calls = Treasury.Kernfs.enlarge_count kfs - e0;
      })

let block = String.make 4096 'p'

(* 4 KB appends to one file: the growth staircase.  [ops] pages plus the
   pointer pages the file needs, so the enlarge count exposes the
   batching/doubling policy directly. *)
let exp_append ~ops () =
  in_world ~ops
    ~setup:(fun fs -> ok (V.write_file fs "/a" ~mode:0o644 ""))
    ~measured:(fun fs ->
      let fd = ok (V.openf fs "/a" [ Ft.O_WRONLY; Ft.O_APPEND ] 0) in
      for _ = 1 to ops do
        ignore (ok (V.write fs fd block))
      done;
      ok (V.close fs fd))
    ()

(* Empty-file create (open O_CREAT + close), all in one directory. *)
let exp_create ~ops () =
  in_world ~ops
    ~setup:(fun fs -> ok (V.mkdir fs "/d" 0o755))
    ~measured:(fun fs ->
      for i = 1 to ops do
        let fd =
          ok
            (V.openf fs
               (Printf.sprintf "/d/c%d" i)
               [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644)
        in
        ok (V.close fs fd)
      done)
    ()

(* Unlink of pre-created one-block files. *)
let exp_unlink ~ops () =
  in_world ~ops
    ~setup:(fun fs ->
      ok (V.mkdir fs "/d" 0o755);
      for i = 1 to ops do
        ok (V.write_file fs (Printf.sprintf "/d/u%d" i) ~mode:0o644 block)
      done)
    ~measured:(fun fs ->
      for i = 1 to ops do
        ok (V.unlink fs (Printf.sprintf "/d/u%d" i))
      done)
    ()

(* Same-directory rename of pre-created files (the MWRL op). *)
let exp_rename ~ops () =
  in_world ~ops
    ~setup:(fun fs ->
      ok (V.mkdir fs "/d" 0o755);
      for i = 1 to ops do
        ok (V.write_file fs (Printf.sprintf "/d/r%d" i) ~mode:0o644 "")
      done)
    ~measured:(fun fs ->
      for i = 1 to ops do
        ok
          (V.rename fs
             (Printf.sprintf "/d/r%d" i)
             (Printf.sprintf "/d/rn%d" i))
      done)
    ()

(* Shrinking truncate of 8-block files (the Trunc-intention path). *)
let exp_truncate ~ops () =
  in_world ~ops
    ~setup:(fun fs ->
      ok (V.mkdir fs "/d" 0o755);
      for i = 1 to ops do
        let fd =
          ok
            (V.openf fs
               (Printf.sprintf "/d/t%d" i)
               [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644)
        in
        for _ = 1 to 8 do
          ignore (ok (V.write fs fd block))
        done;
        ok (V.close fs fd)
      done)
    ~measured:(fun fs ->
      for i = 1 to ops do
        ok (V.truncate fs (Printf.sprintf "/d/t%d" i) 4096)
      done)
    ()

(* Like [in_world], but [nprocs] tenant processes.  Each tenant is a
   fresh [Sim.Proc] with its own FSLib built over the one shared KernFS —
   so every op crosses the syscall gate of its own process and contends
   for the shared coffer's lease against the other 63.  The sim schedules
   tenants by (time, seq): deterministic, so the committed baseline pins
   the cross-process interleaving cost exactly.  Tenants carry an obs
   label keyed by their index (not their pid — pids are a global counter,
   not stable across runs) so zofs_top/zofs_stat attribute latency per
   tenant when obs is enabled. *)
let in_shared_world ~nprocs ~ops_per_proc ~setup ~worker () =
  let world = Sim.create () in
  let result = ref None in
  Sim.spawn world
    ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ())
    ~name:"shared-setup"
    (fun () ->
      let inst = FL.make ~pages:16384 FL.Zofs in
      let kfs = Option.get inst.FL.kernfs in
      let dev = inst.FL.device in
      setup inst.FL.fs;
      Nvm.Device.reset_stats dev;
      let c0 = Treasury.Gate.syscall_count (Treasury.Kernfs.gate kfs) in
      let e0 = Treasury.Kernfs.enlarge_count kfs in
      let t0 = Sim.now () in
      let live = ref nprocs in
      for p = 0 to nprocs - 1 do
        Sim.spawn world
          ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ())
          ~name:(Printf.sprintf "tenant-%d" p)
          (fun () ->
            Obs.set_tenant p;
            let fs = FL.zofs_fslib kfs in
            let run_op = worker fs p in
            for i = 0 to ops_per_proc - 1 do
              run_op i;
              Sim.advance 200
            done;
            decr live;
            (* the last tenant to drain closes the measured phase *)
            if !live = 0 then
              result :=
                Some
                  {
                    ops = nprocs * ops_per_proc;
                    sim_ns = Sim.now () - t0;
                    flushes = Nvm.Device.stat_flushes dev;
                    redundant_flushes = Nvm.Device.stat_redundant_flushes dev;
                    fences = Nvm.Device.stat_fences dev;
                    redundant_fences = Nvm.Device.stat_redundant_fences dev;
                    crossings =
                      Treasury.Gate.syscall_count (Treasury.Kernfs.gate kfs)
                      - c0;
                    enlarge_calls = Treasury.Kernfs.enlarge_count kfs - e0;
                  })
      done);
  Sim.run world;
  Option.get !result

(* 64 processes appending 4 KB blocks to one shared file: the Table 2
   worst case, dominated by lease handoff between processes. *)
let exp_shared_append ~nprocs ~ops_per_proc () =
  in_shared_world ~nprocs ~ops_per_proc
    ~setup:(fun fs -> ok (V.write_file fs "/shared" ~mode:0o644 ""))
    ~worker:(fun fs _p ->
      let fd = ref None in
      fun _i ->
        let f =
          match !fd with
          | Some f -> f
          | None ->
              let f =
                ok (V.openf fs "/shared" [ Ft.O_WRONLY; Ft.O_APPEND ] 0)
              in
              fd := Some f;
              f
        in
        ignore (ok (V.write fs f block)))
    ()

(* 64 processes creating empty files in one shared directory. *)
let exp_shared_create ~nprocs ~ops_per_proc () =
  in_shared_world ~nprocs ~ops_per_proc
    ~setup:(fun fs -> ok (V.mkdir fs "/sdir" 0o755))
    ~worker:(fun fs p i ->
      let fd =
        ok
          (V.openf fs
             (Printf.sprintf "/sdir/p%d_f%d" p i)
             [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644)
      in
      ok (V.close fs fd))
    ()

let experiments ~quick =
  let s n = if quick then n / 2 else n in
  [
    ("append", fun () -> exp_append ~ops:(s 256) ());
    ("create", fun () -> exp_create ~ops:(s 96) ());
    ("unlink", fun () -> exp_unlink ~ops:(s 96) ());
    ("rename", fun () -> exp_rename ~ops:(s 96) ());
    ("truncate", fun () -> exp_truncate ~ops:(s 48) ());
    ( "shared-append-64p",
      fun () -> exp_shared_append ~nprocs:64 ~ops_per_proc:(s 8) () );
    ( "shared-create-64p",
      fun () -> exp_shared_create ~nprocs:64 ~ops_per_proc:(s 8) () );
  ]

let run_all ~quick () =
  List.map (fun (name, f) -> { r_name = name; r_m = f () }) (experiments ~quick)

(* ---- JSON ------------------------------------------------------------- *)

let num n = J.Num (float_of_int n)

let metrics_to_json m =
  J.Obj
    [
      ("ops", num m.ops);
      ("sim_ns", num m.sim_ns);
      ("flushes", num m.flushes);
      ("redundant_flushes", num m.redundant_flushes);
      ("fences", num m.fences);
      ("redundant_fences", num m.redundant_fences);
      ("crossings", num m.crossings);
      ("enlarge_calls", num m.enlarge_calls);
    ]

let to_json results =
  J.Obj
    [
      ("schema", J.Str schema);
      ( "experiments",
        J.Arr
          (List.map
             (fun r ->
               J.Obj
                 (("name", J.Str r.r_name)
                 ::
                 (match metrics_to_json r.r_m with
                 | J.Obj fields -> fields
                 | _ -> [])))
             results) );
    ]

let int_member name j =
  match J.member name j with
  | Some (J.Num v) -> Ok (int_of_float v)
  | _ -> Error (Printf.sprintf "missing numeric field %S" name)

let ( let* ) = Result.bind

let metrics_of_json j =
  let* ops = int_member "ops" j in
  let* sim_ns = int_member "sim_ns" j in
  let* flushes = int_member "flushes" j in
  let* redundant_flushes = int_member "redundant_flushes" j in
  let* fences = int_member "fences" j in
  let* redundant_fences = int_member "redundant_fences" j in
  let* crossings = int_member "crossings" j in
  let* enlarge_calls = int_member "enlarge_calls" j in
  Ok
    {
      ops;
      sim_ns;
      flushes;
      redundant_flushes;
      fences;
      redundant_fences;
      crossings;
      enlarge_calls;
    }

let of_json j =
  match J.member "schema" j with
  | Some (J.Str s) when s = schema -> (
      match J.member "experiments" j with
      | Some (J.Arr items) ->
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match J.member "name" item with
              | Some (J.Str name) ->
                  let* m = metrics_of_json item in
                  Ok ({ r_name = name; r_m = m } :: acc)
              | _ -> Error "experiment without a name")
            (Ok []) items
          |> Result.map List.rev
      | _ -> Error "no experiments array")
  | Some (J.Str s) -> Error (Printf.sprintf "unknown schema %S" s)
  | _ -> Error "missing schema"

let write_file path results =
  let oc = open_out path in
  output_string oc (J.to_string (to_json results));
  output_char oc '\n';
  close_out oc

let read_file path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s ->
      let* j = J.of_string (String.trim s) in
      of_json j

(* ---- trend comparison -------------------------------------------------- *)

(* Everything is deterministic, so the tolerance only absorbs incidental
   drift (an unrelated change moving a counter by a hair) — a real
   regression in a hot path moves per-op numbers far beyond 10%.  Only
   increases fail; decreases are improvements worth re-baselining. *)
let default_tol = 0.10

type verdict = {
  regressions : string list;
  improvements : string list;
  notes : string list;
}

let clean v = v.regressions = []

(* The one tolerance rule, shared with the obs gate (bin/zofs_obs):
   [tol] relative band plus 0.5 of absolute slop (so near-zero counters
   don't trip on a one-event shift).  An increase beyond the band is a
   regression; a decrease beyond it is an improvement — unless
   [both_ways] is set (coverage dimensions: spans recorded, labelled
   series, flight events — losing instrumentation is a regression too). *)
let check_dim ?(tol = default_tol) ?(both_ways = false) ~name ~base ~cur
    ~regressions ~improvements () =
  if cur > (base *. (1.0 +. tol)) +. 0.5 then
    regressions :=
      Printf.sprintf "%s %.2f -> %.2f (+%.0f%%)" name base cur
        (100.0 *. ((cur /. Float.max base 1e-9) -. 1.0))
      :: !regressions
  else if base > (cur *. (1.0 +. tol)) +. 0.5 then begin
    if both_ways then
      regressions :=
        Printf.sprintf "%s %.2f -> %.2f (dropped beyond tolerance)" name base
          cur
        :: !regressions
    else
      improvements := Printf.sprintf "%s %.2f -> %.2f" name base cur
        :: !improvements
  end

let compare_results ?(tol = default_tol) ~baseline ~current () =
  let regressions = ref [] and improvements = ref [] and notes = ref [] in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.r_name = b.r_name) current with
      | None ->
          regressions :=
            Printf.sprintf "%s: experiment missing from current run" b.r_name
            :: !regressions
      | Some c ->
          if b.r_m.ops <> c.r_m.ops then
            notes :=
              Printf.sprintf "%s: ops %d -> %d (per-op comparison only)"
                b.r_name b.r_m.ops c.r_m.ops
              :: !notes;
          let dim name base cur =
            check_dim ~tol
              ~name:(Printf.sprintf "%s: %s/op" b.r_name name)
              ~base ~cur ~regressions ~improvements ()
          in
          dim "sim_ns" (ns_per_op b.r_m) (ns_per_op c.r_m);
          dim "flushes" (flushes_per_op b.r_m) (flushes_per_op c.r_m);
          dim "fences" (fences_per_op b.r_m) (fences_per_op c.r_m);
          dim "crossings" (crossings_per_op b.r_m) (crossings_per_op c.r_m);
          dim "enlarge_calls"
            (per_op b.r_m b.r_m.enlarge_calls)
            (per_op c.r_m c.r_m.enlarge_calls))
    baseline;
  List.iter
    (fun c ->
      if not (List.exists (fun b -> b.r_name = c.r_name) baseline) then
        notes :=
          Printf.sprintf "%s: new experiment (no baseline)" c.r_name :: !notes)
    current;
  {
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    notes = List.rev !notes;
  }

(* ---- rendering ---------------------------------------------------------- *)

let render_results results =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "  %-17s %6s %12s %10s %9s %10s %9s\n" "experiment" "ops"
       "sim-ns/op" "flush/op" "fence/op" "cross/op" "enlarge");
  List.iter
    (fun r ->
      let m = r.r_m in
      Buffer.add_string b
        (Printf.sprintf "  %-17s %6d %12.0f %10.2f %9.2f %10.3f %9d\n" r.r_name
           m.ops (ns_per_op m) (flushes_per_op m) (fences_per_op m)
           (crossings_per_op m) m.enlarge_calls))
    results;
  Buffer.contents b

let render_verdict v =
  let b = Buffer.create 256 in
  List.iter (fun s -> Buffer.add_string b ("  REGRESSION " ^ s ^ "\n")) v.regressions;
  List.iter (fun s -> Buffer.add_string b ("  improved   " ^ s ^ "\n")) v.improvements;
  List.iter (fun s -> Buffer.add_string b ("  note       " ^ s ^ "\n")) v.notes;
  if v.regressions = [] && v.improvements = [] && v.notes = [] then
    Buffer.add_string b "  no change vs baseline\n";
  Buffer.contents b
