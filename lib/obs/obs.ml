(* Observability layer (see obs.mli).

   Design constraints, in order:
   - deterministic: never calls Sim.advance, so enabling obs cannot change
     any simulated result;
   - cheap when off: every entry point checks one bool ref first;
   - zero dependencies: includes its own minimal JSON reader/printer so the
     trace and snapshot files can be validated and re-rendered offline. *)

let on = ref false
let spans_on = ref true

let enabled () = !on

(* ---- minimal JSON ------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let num_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            write b v)
          l;
        Buffer.add_char b ']'
    | Obj l ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            write b v)
          l;
        Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 1024 in
    write b v;
    Buffer.contents b

  exception Parse of string

  (* Recursive-descent parser over the input string. *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let next () =
      if !pos >= n then fail "unexpected end of input";
      let c = s.[!pos] in
      incr pos;
      c
    in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          incr pos;
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if next () <> c then fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      String.iter (fun c -> if next () <> c then fail "bad literal") word;
      v
    in
    let add_utf8 b cp =
      if cp < 0x80 then Buffer.add_char b (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let parse_string () =
      let b = Buffer.create 16 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents b
        | '\\' ->
            (match next () with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                let hex = String.init 4 (fun _ -> next ()) in
                (match int_of_string_opt ("0x" ^ hex) with
                | Some cp -> add_utf8 b cp
                | None -> fail "bad \\u escape")
            | _ -> fail "bad escape");
            go ()
        | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' ->
          incr pos;
          Str (parse_string ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then (incr pos; Obj [])
          else begin
            let rec members acc =
              skip_ws ();
              expect '"';
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match next () with
              | ',' -> members ((k, v) :: acc)
              | '}' -> Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then (incr pos; Arr [])
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match next () with
              | ',' -> elements (v :: acc)
              | ']' -> Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse msg -> Error msg

  let member k = function
    | Obj l -> List.assoc_opt k l
    | _ -> None
end

(* ---- histograms --------------------------------------------------------- *)

module Hist = struct
  (* Values 0..15 get exact buckets 0..15; for v >= 16 the bucket is keyed
     by (msb octave, top-3-bits sub-bucket): 8 sub-buckets per power of two,
     ~12.5% relative error.  63-bit range needs 16 + 59*8 = 488 buckets. *)
  let nbuckets = 496

  let msb v =
    let rec go v m = if v <= 1 then m else go (v lsr 1) (m + 1) in
    go v 0

  let bucket_index v =
    if v < 16 then max 0 v
    else
      let m = msb v in
      16 + ((m - 4) * 8) + ((v lsr (m - 3)) land 7)

  let bucket_bounds b =
    if b < 16 then (b, b)
    else
      let oct = (b - 16) / 8 and sub = (b - 16) mod 8 in
      let shift = oct + 1 in
      let lo = (8 + sub) lsl shift in
      (lo, lo + (1 lsl shift) - 1)

  type t = {
    counts : int array;
    mutable n : int;
    mutable mn : int;
    mutable mx : int;
    mutable sm : int;
  }

  let create () = { counts = Array.make nbuckets 0; n = 0; mn = 0; mx = 0; sm = 0 }

  let add t v =
    let v = max 0 v in
    let b = bucket_index v in
    t.counts.(b) <- t.counts.(b) + 1;
    if t.n = 0 || v < t.mn then t.mn <- v;
    if v > t.mx then t.mx <- v;
    t.n <- t.n + 1;
    t.sm <- t.sm + v

  let count t = t.n
  let min_value t = t.mn
  let max_value t = t.mx
  let sum t = t.sm
  let mean t = if t.n = 0 then 0.0 else float_of_int t.sm /. float_of_int t.n

  let percentile t q =
    if t.n = 0 then 0
    else begin
      let rank = max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
      let rank = min rank t.n in
      let cum = ref 0 and res = ref t.mx in
      (try
         for b = 0 to nbuckets - 1 do
           cum := !cum + t.counts.(b);
           if !cum >= rank then begin
             let _, hi = bucket_bounds b in
             res := max t.mn (min hi t.mx);
             raise Exit
           end
         done
       with Exit -> ());
      !res
    end

  let merge a b =
    let t = create () in
    Array.blit a.counts 0 t.counts 0 nbuckets;
    Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) b.counts;
    t.n <- a.n + b.n;
    t.sm <- a.sm + b.sm;
    t.mn <-
      (if a.n = 0 then b.mn else if b.n = 0 then a.mn else min a.mn b.mn);
    t.mx <- max a.mx b.mx;
    t

  let buckets t =
    let acc = ref [] in
    for b = nbuckets - 1 downto 0 do
      if t.counts.(b) > 0 then acc := (b, t.counts.(b)) :: !acc
    done;
    !acc

  let copy t =
    { counts = Array.copy t.counts; n = t.n; mn = t.mn; mx = t.mx; sm = t.sm }

  (* diff for snapshot subtraction: bucket-wise, clamped at 0 (counters only
     grow, so a clean diff is exact; min/max come from the newer side). *)
  let sub newer older =
    let t = create () in
    for b = 0 to nbuckets - 1 do
      t.counts.(b) <- max 0 (newer.counts.(b) - older.counts.(b))
    done;
    t.n <- max 0 (newer.n - older.n);
    t.sm <- max 0 (newer.sm - older.sm);
    t.mn <- newer.mn;
    t.mx <- newer.mx;
    t
end

(* ---- registry ----------------------------------------------------------- *)

type metric = M_counter of int ref | M_gauge of float ref | M_hist of Hist.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let find_or_add name make =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace registry name m;
      m

module Counter = struct
  type t = int ref

  let make name =
    match find_or_add name (fun () -> M_counter (ref 0)) with
    | M_counter r -> r
    | _ -> invalid_arg ("Obs.Counter.make: " ^ name ^ " is not a counter")

  let add t n = t := !t + n
  let incr t = add t 1
  let value t = !t
end

module Gauge = struct
  type t = float ref

  let make name =
    match find_or_add name (fun () -> M_gauge (ref 0.0)) with
    | M_gauge r -> r
    | _ -> invalid_arg ("Obs.Gauge.make: " ^ name ^ " is not a gauge")

  let set t v = t := v
  let value t = !t
end

module Histogram = struct
  type t = Hist.t

  let make name =
    match find_or_add name (fun () -> M_hist (Hist.create ())) with
    | M_hist h -> h
    | _ -> invalid_arg ("Obs.Histogram.make: " ^ name ^ " is not a histogram")

  let observe = Hist.add
  let hist t = t
end

let cnt name n = if !on then Counter.add (Counter.make name) n
let observe name v = if !on then Histogram.observe (Histogram.make name) v

(* ---- span ring buffer --------------------------------------------------- *)

type spanrec = { s_name : string; s_cat : string; s_tid : int; s_ts : int; s_dur : int }

let dummy_span = { s_name = ""; s_cat = ""; s_tid = 0; s_ts = 0; s_dur = 0 }

module Trace = struct
  let capacity = ref 65536
  let ring : spanrec array ref = ref [||]
  let head = ref 0
  let filled = ref 0
  let dropped_count = ref 0
  let open_count = ref 0

  let reset () =
    ring := [||];
    head := 0;
    filled := 0;
    dropped_count := 0;
    open_count := 0

  let set_capacity n =
    if n <= 0 then invalid_arg "Obs.Trace.set_capacity";
    capacity := n;
    reset ()

  let record r =
    if Array.length !ring = 0 then ring := Array.make !capacity dummy_span;
    !ring.(!head) <- r;
    head := (!head + 1) mod !capacity;
    if !filled = !capacity then incr dropped_count else incr filled

  let recorded () = !filled
  let dropped () = !dropped_count
  let open_spans () = !open_count

  (* oldest-first iteration over the ring *)
  let iter f =
    let cap = !capacity in
    let start = if !filled = cap then !head else 0 in
    for i = 0 to !filled - 1 do
      f !ring.((start + i) mod cap)
    done

  let to_json () =
    let events = ref [] in
    iter (fun r ->
        events :=
          Json.Obj
            [
              ("name", Json.Str r.s_name);
              ("cat", Json.Str r.s_cat);
              ("ph", Json.Str "X");
              ("ts", Json.Num (float_of_int r.s_ts /. 1000.0));
              ("dur", Json.Num (float_of_int r.s_dur /. 1000.0));
              ("pid", Json.Num 0.0);
              ("tid", Json.Num (float_of_int r.s_tid));
            ]
          :: !events);
    Json.Obj
      [
        ("traceEvents", Json.Arr (List.rev !events));
        ("displayTimeUnit", Json.Str "ns");
      ]

  let validate j =
    let ( let* ) = Result.bind in
    let field name ev =
      match Json.member name ev with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "event missing field %S" name)
    in
    let str name ev =
      let* v = field name ev in
      match v with Json.Str s -> Ok s | _ -> Error (name ^ " is not a string")
    in
    let num name ev =
      let* v = field name ev in
      match v with Json.Num f -> Ok f | _ -> Error (name ^ " is not a number")
    in
    match Json.member "traceEvents" j with
    | None -> Error "top-level object has no traceEvents"
    | Some (Json.Arr events) ->
        let check ev =
          match ev with
          | Json.Obj _ ->
              let* _name = str "name" ev in
              let* _cat = str "cat" ev in
              let* ph = str "ph" ev in
              let* ts = num "ts" ev in
              let* dur = num "dur" ev in
              let* _pid = num "pid" ev in
              let* _tid = num "tid" ev in
              if ph <> "X" then Error (Printf.sprintf "unexpected phase %S" ph)
              else if ts < 0.0 then Error "negative begin timestamp"
              else if dur < 0.0 then
                Error "span end precedes its begin (negative dur)"
              else Ok ()
          | _ -> Error "traceEvents element is not an object"
        in
        List.fold_left
          (fun acc ev -> match acc with Error _ -> acc | Ok () -> check ev)
          (Ok ()) events
    | Some _ -> Error "traceEvents is not an array"
end

let record_span ~cat ~name ~tid ~ts ~dur =
  if !spans_on then
    Trace.record { s_name = name; s_cat = cat; s_tid = tid; s_ts = ts; s_dur = dur }

let span ~cat ~name f =
  if not !on then f ()
  else begin
    let tid = Sim.self_tid () in
    let ts = Sim.now () in
    incr Trace.open_count;
    let finish () =
      decr Trace.open_count;
      record_span ~cat ~name ~tid ~ts ~dur:(Sim.now () - ts)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* ---- layer attribution -------------------------------------------------- *)

(* One frame per thread: the outermost in-flight syscall.  Sub-layers
   accumulate into it; media time inside a gate crossing or a lease wait is
   subtracted from those buckets so the four buckets stay disjoint. *)
type frame = {
  mutable depth : int;  (* syscall nesting (truncate calls openf, ...) *)
  mutable start : int;
  mutable media : int;
  mutable kern : int;
  mutable lease_w : int;
  mutable gate_depth : int;
  mutable gate_start : int;
  mutable gate_media0 : int;
}

let frames : (int, frame) Hashtbl.t = Hashtbl.create 64

let frame tid =
  match Hashtbl.find_opt frames tid with
  | Some f -> f
  | None ->
      let f =
        {
          depth = 0;
          start = 0;
          media = 0;
          kern = 0;
          lease_w = 0;
          gate_depth = 0;
          gate_start = 0;
          gate_media0 = 0;
        }
      in
      Hashtbl.replace frames tid f;
      f

let c_syscalls = Counter.make "syscall.count"
let c_total = Counter.make "layer.total_ns"
let c_fslib = Counter.make "layer.fslib_ns"
let c_kern = Counter.make "layer.kernfs_ns"
let c_media = Counter.make "layer.media_ns"
let c_lease = Counter.make "layer.lease_ns"
let c_media_all = Counter.make "nvm.media_ns"
let c_gate = Counter.make "gate.crossings"
let c_lease_acq = Counter.make "lease.acquires"
let c_lease_retries = Counter.make "lease.retries"
let c_lease_wait = Counter.make "lease.wait_ns"

let with_syscall name f =
  if not !on then f ()
  else begin
    let tid = Sim.self_tid () in
    let fr = frame tid in
    let t0 = Sim.now () in
    fr.depth <- fr.depth + 1;
    if fr.depth = 1 then begin
      fr.start <- t0;
      fr.media <- 0;
      fr.kern <- 0;
      fr.lease_w <- 0
    end;
    incr Trace.open_count;
    let finish () =
      decr Trace.open_count;
      let dt = Sim.now () - t0 in
      observe ("syscall." ^ name) dt;
      record_span ~cat:"syscall" ~name ~tid ~ts:t0 ~dur:dt;
      fr.depth <- fr.depth - 1;
      if fr.depth = 0 then begin
        Counter.incr c_syscalls;
        Counter.add c_total dt;
        Counter.add c_media fr.media;
        Counter.add c_kern fr.kern;
        Counter.add c_lease fr.lease_w;
        Counter.add c_fslib (max 0 (dt - fr.media - fr.kern - fr.lease_w))
      end
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let with_kernel_crossing f =
  if not !on then f ()
  else begin
    let tid = Sim.self_tid () in
    let fr = frame tid in
    Counter.incr c_gate;
    let ts = Sim.now () in
    fr.gate_depth <- fr.gate_depth + 1;
    if fr.gate_depth = 1 then begin
      fr.gate_start <- ts;
      fr.gate_media0 <- fr.media
    end;
    incr Trace.open_count;
    let finish () =
      decr Trace.open_count;
      record_span ~cat:"kernfs" ~name:"trap" ~tid ~ts ~dur:(Sim.now () - ts);
      fr.gate_depth <- fr.gate_depth - 1;
      if fr.gate_depth = 0 && fr.depth > 0 then
        fr.kern <-
          fr.kern
          + max 0 (Sim.now () - fr.gate_start - (fr.media - fr.gate_media0))
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

type lease_token = { lt_t0 : int; lt_media0 : int; lt_live : bool }

let dead_token = { lt_t0 = 0; lt_media0 = 0; lt_live = false }

let lease_begin () =
  if not !on then dead_token
  else
    let fr = frame (Sim.self_tid ()) in
    { lt_t0 = Sim.now (); lt_media0 = fr.media; lt_live = true }

let lease_end tok ~retries =
  if tok.lt_live && !on then begin
    let fr = frame (Sim.self_tid ()) in
    let wait =
      max 0 (Sim.now () - tok.lt_t0 - (fr.media - tok.lt_media0))
    in
    Counter.incr c_lease_acq;
    Counter.add c_lease_retries retries;
    Counter.add c_lease_wait wait;
    if fr.depth > 0 then fr.lease_w <- fr.lease_w + wait
  end

(* ---- NVM media attribution ---------------------------------------------- *)

let on_device_event ev =
  if !on then begin
    let ns =
      match (ev : Nvm.Device.trace_event) with
      | T_store { ns; _ } | T_nt_store { ns; _ } | T_load { ns; _ }
      | T_cas { ns; _ } | T_clwb { ns; _ } | T_fence { ns; _ } ->
          ns
      | T_media_fault _ ->
          cnt "fault.media" 1;
          0
      | T_reset -> 0
    in
    if ns > 0 then begin
      Counter.add c_media_all ns;
      match Hashtbl.find_opt frames (Sim.self_tid ()) with
      | Some fr when fr.depth > 0 -> fr.media <- fr.media + ns
      | _ -> ()
    end
  end

let attach_device dev =
  if !on then ignore (Nvm.Device.add_trace_subscriber dev on_device_event)

(* ---- snapshots ----------------------------------------------------------- *)

module Snapshot = struct
  type sval = V_counter of int | V_gauge of float | V_hist of Hist.t

  type t = (string * sval) list  (* sorted by name *)

  let take () =
    Hashtbl.fold
      (fun name m acc ->
        let v =
          match m with
          | M_counter r -> V_counter !r
          | M_gauge r -> V_gauge !r
          | M_hist h -> V_hist (Hist.copy h)
        in
        (name, v) :: acc)
      registry []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let diff older newer =
    List.filter_map
      (fun (name, nv) ->
        match (nv, List.assoc_opt name older) with
        | V_counter n, Some (V_counter o) -> Some (name, V_counter (n - o))
        | V_hist n, Some (V_hist o) -> Some (name, V_hist (Hist.sub n o))
        | v, _ -> Some (name, v))
      newer

  let counter_value t name =
    match List.assoc_opt name t with Some (V_counter n) -> Some n | _ -> None

  let commas n =
    let neg = n < 0 in
    let s = string_of_int (abs n) in
    let len = String.length s in
    let b = Buffer.create (len + 4) in
    if neg then Buffer.add_char b '-';
    String.iteri
      (fun i c ->
        if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char b ',';
        Buffer.add_char b c)
      s;
    Buffer.contents b

  let render ?(title = "obs") t =
    let b = Buffer.create 1024 in
    Printf.bprintf b "== %s ==\n" title;
    let counters =
      List.filter_map
        (fun (n, v) -> match v with V_counter c when c <> 0 -> Some (n, c) | _ -> None)
        t
    in
    let gauges =
      List.filter_map
        (fun (n, v) -> match v with V_gauge g when g <> 0.0 -> Some (n, g) | _ -> None)
        t
    in
    let hists =
      List.filter_map
        (fun (n, v) ->
          match v with V_hist h when Hist.count h > 0 -> Some (n, h) | _ -> None)
        t
    in
    if counters <> [] then begin
      Buffer.add_string b "counters:\n";
      List.iter
        (fun (n, c) -> Printf.bprintf b "  %-28s %16s\n" n (commas c))
        counters
    end;
    if gauges <> [] then begin
      Buffer.add_string b "gauges:\n";
      List.iter (fun (n, g) -> Printf.bprintf b "  %-28s %16.3f\n" n g) gauges
    end;
    if hists <> [] then begin
      Printf.bprintf b "histograms (ns): %-12s %8s %10s %10s %10s %10s\n" ""
        "count" "p50" "p90" "p99" "max";
      List.iter
        (fun (n, h) ->
          Printf.bprintf b "  %-26s %8s %10s %10s %10s %10s\n" n
            (commas (Hist.count h))
            (commas (Hist.percentile h 0.50))
            (commas (Hist.percentile h 0.90))
            (commas (Hist.percentile h 0.99))
            (commas (Hist.max_value h)))
        hists
    end;
    (match counter_value t "layer.total_ns" with
    | Some total when total > 0 ->
        let part name =
          match counter_value t name with Some v -> v | None -> 0
        in
        let fslib = part "layer.fslib_ns"
        and kern = part "layer.kernfs_ns"
        and media = part "layer.media_ns"
        and lease = part "layer.lease_ns" in
        let pct v = 100.0 *. float_of_int v /. float_of_int total in
        Printf.bprintf b
          "layer split: FSLib %.1f%%  KernFS-trap %.1f%%  NVM-media %.1f%%  \
           lease-wait %.1f%%  (%s ns over %s syscalls)\n"
          (pct fslib) (pct kern) (pct media) (pct lease) (commas total)
          (commas
             (match counter_value t "syscall.count" with Some n -> n | None -> 0))
    | _ -> ());
    (* Fault-domain summary: one line whenever anything went wrong (or was
       injected) at runtime, so zofs_stat / zofs_shell surface robustness
       activity without the reader hunting through the counter list. *)
    let cv name = match counter_value t name with Some v -> v | None -> 0 in
    let media = cv "fault.media"
    and transient = cv "fault.transient"
    and graceful = cv "fault.graceful_errors"
    and steals = cv "lease.steals"
    and repairs = cv "intent.repairs"
    and quarantined = cv "health.quarantined"
    and offline = cv "health.offline" in
    if media + transient + graceful + steals + repairs + quarantined + offline
       > 0
    then
      Printf.bprintf b
        "robustness: media-faults %s  transient %s  graceful-EIO %s  \
         lease-steals %s  intent-repairs %s  repairs ok/failed %s/%s  \
         quarantined %s  offline %s\n"
        (commas media) (commas transient) (commas graceful) (commas steals)
        (commas repairs)
        (commas (cv "health.repairs_ok"))
        (commas (cv "health.repairs_failed"))
        (commas quarantined) (commas offline);
    Buffer.contents b

  let hist_to_json h =
    Json.Obj
      [
        ("count", Json.Num (float_of_int (Hist.count h)));
        ("min", Json.Num (float_of_int (Hist.min_value h)));
        ("max", Json.Num (float_of_int (Hist.max_value h)));
        ("sum", Json.Num (float_of_int (Hist.sum h)));
        ( "buckets",
          Json.Arr
            (List.map
               (fun (i, c) ->
                 Json.Arr [ Json.Num (float_of_int i); Json.Num (float_of_int c) ])
               (Hist.buckets h)) );
      ]

  let to_json t =
    let pick f = List.filter_map f t in
    Json.Obj
      [
        ( "counters",
          Json.Obj
            (pick (fun (n, v) ->
                 match v with
                 | V_counter c -> Some (n, Json.Num (float_of_int c))
                 | _ -> None)) );
        ( "gauges",
          Json.Obj
            (pick (fun (n, v) ->
                 match v with V_gauge g -> Some (n, Json.Num g) | _ -> None)) );
        ( "histograms",
          Json.Obj
            (pick (fun (n, v) ->
                 match v with V_hist h -> Some (n, hist_to_json h) | _ -> None))
        );
      ]

  let hist_of_json j =
    let num name =
      match Json.member name j with
      | Some (Json.Num f) -> Ok (int_of_float f)
      | _ -> Error ("histogram field " ^ name ^ " missing or not a number")
    in
    let ( let* ) = Result.bind in
    let* n = num "count" in
    let* mn = num "min" in
    let* mx = num "max" in
    let* sm = num "sum" in
    let h = Hist.create () in
    h.Hist.n <- n;
    h.Hist.mn <- mn;
    h.Hist.mx <- mx;
    h.Hist.sm <- sm;
    match Json.member "buckets" j with
    | Some (Json.Arr l) ->
        let rec fill = function
          | [] -> Ok h
          | Json.Arr [ Json.Num i; Json.Num c ] :: rest ->
              let i = int_of_float i in
              if i < 0 || i >= Hist.nbuckets then Error "bucket index out of range"
              else begin
                h.Hist.counts.(i) <- int_of_float c;
                fill rest
              end
          | _ -> Error "malformed bucket entry"
        in
        fill l
    | _ -> Error "histogram has no buckets array"

  let of_json j =
    let ( let* ) = Result.bind in
    let section name =
      match Json.member name j with
      | Some (Json.Obj l) -> Ok l
      | None -> Ok []
      | Some _ -> Error (name ^ " is not an object")
    in
    let* counters = section "counters" in
    let* gauges = section "gauges" in
    let* histograms = section "histograms" in
    let* cs =
      List.fold_left
        (fun acc (n, v) ->
          let* acc = acc in
          match v with
          | Json.Num f -> Ok ((n, V_counter (int_of_float f)) :: acc)
          | _ -> Error ("counter " ^ n ^ " is not a number"))
        (Ok []) counters
    in
    let* gs =
      List.fold_left
        (fun acc (n, v) ->
          let* acc = acc in
          match v with
          | Json.Num f -> Ok ((n, V_gauge f) :: acc)
          | _ -> Error ("gauge " ^ n ^ " is not a number"))
        (Ok []) gauges
    in
    let* hs =
      List.fold_left
        (fun acc (n, v) ->
          let* acc = acc in
          let* h = hist_of_json v in
          Ok ((n, V_hist h) :: acc))
        (Ok []) histograms
    in
    Ok (List.sort (fun (a, _) (b, _) -> compare a b) (cs @ gs @ hs))
end

(* ---- switch -------------------------------------------------------------- *)

let enable ?(spans = true) () =
  on := true;
  spans_on := spans

let disable () = on := false

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter r -> r := 0
      | M_gauge r -> r := 0.0
      | M_hist h ->
          Array.fill h.Hist.counts 0 Hist.nbuckets 0;
          h.Hist.n <- 0;
          h.Hist.mn <- 0;
          h.Hist.mx <- 0;
          h.Hist.sm <- 0)
    registry;
  Trace.reset ();
  Hashtbl.reset frames
