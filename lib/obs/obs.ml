(* Observability plane (see obs.mli).

   Design constraints, in order:
   - deterministic: never calls Sim.advance, so enabling obs cannot change
     any simulated result;
   - cheap when off: every entry point checks one bool ref first;
   - zero dependencies: includes its own minimal JSON reader/printer so the
     trace, snapshot, and flight-recorder files can be validated and
     re-rendered offline. *)

let on = ref false
let spans_on = ref true
let flight_on = ref true

let enabled () = !on

(* ---- minimal JSON ------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let num_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            write b v)
          l;
        Buffer.add_char b ']'
    | Obj l ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            write b v)
          l;
        Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 1024 in
    write b v;
    Buffer.contents b

  exception Parse of string

  (* Recursive-descent parser over the input string. *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let next () =
      if !pos >= n then fail "unexpected end of input";
      let c = s.[!pos] in
      incr pos;
      c
    in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          incr pos;
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if next () <> c then fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      String.iter (fun c -> if next () <> c then fail "bad literal") word;
      v
    in
    let add_utf8 b cp =
      if cp < 0x80 then Buffer.add_char b (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let parse_string () =
      let b = Buffer.create 16 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents b
        | '\\' ->
            (match next () with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                let hex = String.init 4 (fun _ -> next ()) in
                (match int_of_string_opt ("0x" ^ hex) with
                | Some cp -> add_utf8 b cp
                | None -> fail "bad \\u escape")
            | _ -> fail "bad escape");
            go ()
        | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' ->
          incr pos;
          Str (parse_string ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then (incr pos; Obj [])
          else begin
            let rec members acc =
              skip_ws ();
              expect '"';
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match next () with
              | ',' -> members ((k, v) :: acc)
              | '}' -> Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then (incr pos; Arr [])
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match next () with
              | ',' -> elements (v :: acc)
              | ']' -> Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse msg -> Error msg

  let member k = function
    | Obj l -> List.assoc_opt k l
    | _ -> None
end

(* ---- histograms --------------------------------------------------------- *)

module Hist = struct
  (* Values 0..15 get exact buckets 0..15; for v >= 16 the bucket is keyed
     by (msb octave, top-3-bits sub-bucket): 8 sub-buckets per power of two,
     ~12.5% relative error.  63-bit range needs 16 + 59*8 = 488 buckets. *)
  let nbuckets = 496

  let msb v =
    let rec go v m = if v <= 1 then m else go (v lsr 1) (m + 1) in
    go v 0

  let bucket_index v =
    if v < 16 then max 0 v
    else
      let m = msb v in
      16 + ((m - 4) * 8) + ((v lsr (m - 3)) land 7)

  let bucket_bounds b =
    if b < 16 then (b, b)
    else
      let oct = (b - 16) / 8 and sub = (b - 16) mod 8 in
      let shift = oct + 1 in
      let lo = (8 + sub) lsl shift in
      (lo, lo + (1 lsl shift) - 1)

  type t = {
    counts : int array;
    mutable n : int;
    mutable mn : int;
    mutable mx : int;
    mutable sm : int;
  }

  let create () = { counts = Array.make nbuckets 0; n = 0; mn = 0; mx = 0; sm = 0 }

  let add t v =
    let v = max 0 v in
    let b = bucket_index v in
    t.counts.(b) <- t.counts.(b) + 1;
    if t.n = 0 || v < t.mn then t.mn <- v;
    if v > t.mx then t.mx <- v;
    t.n <- t.n + 1;
    t.sm <- t.sm + v

  let count t = t.n
  let min_value t = t.mn
  let max_value t = t.mx
  let sum t = t.sm
  let mean t = if t.n = 0 then 0.0 else float_of_int t.sm /. float_of_int t.n

  let percentile t q =
    if t.n = 0 then 0
    else begin
      let rank = max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
      let rank = min rank t.n in
      let cum = ref 0 and res = ref t.mx in
      (try
         for b = 0 to nbuckets - 1 do
           cum := !cum + t.counts.(b);
           if !cum >= rank then begin
             let _, hi = bucket_bounds b in
             res := max t.mn (min hi t.mx);
             raise Exit
           end
         done
       with Exit -> ());
      !res
    end

  let merge a b =
    let t = create () in
    Array.blit a.counts 0 t.counts 0 nbuckets;
    Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) b.counts;
    t.n <- a.n + b.n;
    t.sm <- a.sm + b.sm;
    t.mn <-
      (if a.n = 0 then b.mn else if b.n = 0 then a.mn else min a.mn b.mn);
    t.mx <- max a.mx b.mx;
    t

  (* Samples certainly over [threshold]: full buckets strictly above the one
     containing it.  The containing bucket counts as under, so burn never
     over-reports from bucket quantization. *)
  let count_over t threshold =
    let threshold = max 0 threshold in
    let tb = bucket_index threshold in
    let over = ref 0 in
    for b = tb + 1 to nbuckets - 1 do
      over := !over + t.counts.(b)
    done;
    !over

  let buckets t =
    let acc = ref [] in
    for b = nbuckets - 1 downto 0 do
      if t.counts.(b) > 0 then acc := (b, t.counts.(b)) :: !acc
    done;
    !acc

  let copy t =
    { counts = Array.copy t.counts; n = t.n; mn = t.mn; mx = t.mx; sm = t.sm }

  (* diff for snapshot subtraction: bucket-wise, clamped at 0 (counters only
     grow, so a clean diff is exact; min/max come from the newer side). *)
  let sub newer older =
    let t = create () in
    for b = 0 to nbuckets - 1 do
      t.counts.(b) <- max 0 (newer.counts.(b) - older.counts.(b))
    done;
    t.n <- max 0 (newer.n - older.n);
    t.sm <- max 0 (newer.sm - older.sm);
    t.mn <- newer.mn;
    t.mx <- newer.mx;
    t
end

(* ---- labels -------------------------------------------------------------- *)

module Labels = struct
  (* A label set is interned: t is an index into [all]; [by_string] maps the
     canonical rendering back to the index so repeated [v] calls on the same
     pairs are one hashtable lookup. *)
  type t = int

  let all : (string * (string * string) list) array ref =
    ref (Array.make 16 ("", []))

  let count = ref 1 (* slot 0 is the empty label set *)

  let by_string : (string, int) Hashtbl.t =
    let h = Hashtbl.create 64 in
    Hashtbl.replace h "" 0;
    h

  let empty = 0

  let check_component what s =
    String.iter
      (fun c ->
        match c with
        | '{' | '}' | ',' | '=' ->
            invalid_arg
              (Printf.sprintf "Obs.Labels.v: %s %S contains %C" what s c)
        | _ -> ())
      s

  let v pairs =
    match pairs with
    | [] -> empty
    | _ ->
        List.iter
          (fun (k, v) ->
            check_component "key" k;
            check_component "value" v)
          pairs;
        let pairs = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
        let rec dup = function
          | (a, _) :: ((b, _) :: _ as rest) ->
              if a = b then invalid_arg ("Obs.Labels.v: duplicate key " ^ a)
              else dup rest
          | _ -> ()
        in
        dup pairs;
        let s = String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) pairs) in
        (match Hashtbl.find_opt by_string s with
        | Some id -> id
        | None ->
            let id = !count in
            if id >= Array.length !all then begin
              let bigger = Array.make (2 * Array.length !all) ("", []) in
              Array.blit !all 0 bigger 0 (Array.length !all);
              all := bigger
            end;
            !all.(id) <- (s, pairs);
            Hashtbl.replace by_string s id;
            incr count;
            id)

  let pairs t = snd !all.(t)
  let to_string t = fst !all.(t)

  let series base t =
    if t = empty then base else base ^ "{" ^ to_string t ^ "}"

  let parse_series key =
    let n = String.length key in
    match String.index_opt key '{' with
    | Some i when n > 0 && key.[n - 1] = '}' ->
        let base = String.sub key 0 i in
        let inner = String.sub key (i + 1) (n - i - 2) in
        if inner = "" then (base, [])
        else
          let pairs =
            List.filter_map
              (fun kv ->
                match String.index_opt kv '=' with
                | Some j ->
                    Some
                      ( String.sub kv 0 j,
                        String.sub kv (j + 1) (String.length kv - j - 1) )
                | None -> None)
              (String.split_on_char ',' inner)
          in
          (base, pairs)
    | _ -> (key, [])

  (* one-pair label sets are the hot case (coffer=N, tenant=N): memoize *)
  let coffer_cache : (int, t) Hashtbl.t = Hashtbl.create 32

  let of_coffer cid =
    match Hashtbl.find_opt coffer_cache cid with
    | Some l -> l
    | None ->
        let l = v [ ("coffer", string_of_int cid) ] in
        Hashtbl.replace coffer_cache cid l;
        l
end

(* ---- registry ----------------------------------------------------------- *)

type metric = M_counter of int ref | M_gauge of float ref | M_hist of Hist.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let find_or_add name make =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace registry name m;
      m

module Counter = struct
  type t = int ref

  let make name =
    match find_or_add name (fun () -> M_counter (ref 0)) with
    | M_counter r -> r
    | _ -> invalid_arg ("Obs.Counter.make: " ^ name ^ " is not a counter")

  let add t n = t := !t + n
  let incr t = add t 1
  let value t = !t
end

module Gauge = struct
  type t = float ref

  let make name =
    match find_or_add name (fun () -> M_gauge (ref 0.0)) with
    | M_gauge r -> r
    | _ -> invalid_arg ("Obs.Gauge.make: " ^ name ^ " is not a gauge")

  let set t v = t := v
  let value t = !t
end

module Histogram = struct
  type t = Hist.t

  let make name =
    match find_or_add name (fun () -> M_hist (Hist.create ())) with
    | M_hist h -> h
    | _ -> invalid_arg ("Obs.Histogram.make: " ^ name ^ " is not a histogram")

  let observe = Hist.add
  let hist t = t
end

let cnt name n = if !on then Counter.add (Counter.make name) n
let observe name v = if !on then Histogram.observe (Histogram.make name) v

let cnt_l name labels n =
  if !on then Counter.add (Counter.make (Labels.series name labels)) n

let observe_l name labels v =
  if !on then Histogram.observe (Histogram.make (Labels.series name labels)) v

(* ---- span ring buffer --------------------------------------------------- *)

type spanrec = {
  s_name : string;
  s_cat : string;
  s_tid : int;
  s_ts : int;
  s_dur : int;
  s_id : int;
  s_parent : int;
  s_op : int;
}

let dummy_span =
  {
    s_name = "";
    s_cat = "";
    s_tid = 0;
    s_ts = 0;
    s_dur = 0;
    s_id = 0;
    s_parent = 0;
    s_op = 0;
  }

(* Run-global id wells.  Op-ids tie every span and flight event of one
   dispatched operation together; span ids provide the parent/child links.
   Both are host-side and deterministic (assignment order follows the
   deterministic scheduler). *)
let op_well = ref 0
let span_well = ref 0

let next_op () =
  incr op_well;
  !op_well

let next_span_id () =
  incr span_well;
  !span_well

module Trace = struct
  type span = {
    sp_name : string;
    sp_cat : string;
    sp_tid : int;
    sp_ts : int;
    sp_dur : int;
    sp_id : int;
    sp_parent : int;
    sp_op : int;
  }

  let capacity = ref 65536
  let ring : spanrec array ref = ref [||]
  let head = ref 0
  let filled = ref 0
  let dropped_count = ref 0
  let open_count = ref 0

  let reset () =
    ring := [||];
    head := 0;
    filled := 0;
    dropped_count := 0;
    open_count := 0

  let set_capacity n =
    if n <= 0 then invalid_arg "Obs.Trace.set_capacity";
    capacity := n;
    reset ()

  let record r =
    if Array.length !ring = 0 then ring := Array.make !capacity dummy_span;
    !ring.(!head) <- r;
    head := (!head + 1) mod !capacity;
    if !filled = !capacity then incr dropped_count else incr filled

  let recorded () = !filled
  let dropped () = !dropped_count
  let open_spans () = !open_count

  (* oldest-first iteration over the ring *)
  let iter f =
    let cap = !capacity in
    let start = if !filled = cap then !head else 0 in
    for i = 0 to !filled - 1 do
      f !ring.((start + i) mod cap)
    done

  let of_rec r =
    {
      sp_name = r.s_name;
      sp_cat = r.s_cat;
      sp_tid = r.s_tid;
      sp_ts = r.s_ts;
      sp_dur = r.s_dur;
      sp_id = r.s_id;
      sp_parent = r.s_parent;
      sp_op = r.s_op;
    }

  let spans () =
    let acc = ref [] in
    iter (fun r -> acc := of_rec r :: !acc);
    List.rev !acc

  let spans_of_op op =
    let acc = ref [] in
    iter (fun r -> if r.s_op = op then acc := of_rec r :: !acc);
    List.rev !acc

  let event_json ?(extra = []) ~name ~cat ~tid ~ts ~dur ~id ~parent ~op () =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("cat", Json.Str cat);
         ("ph", Json.Str "X");
         ("ts", Json.Num (float_of_int ts /. 1000.0));
         ("dur", Json.Num (float_of_int dur /. 1000.0));
         ("pid", Json.Num 0.0);
         ("tid", Json.Num (float_of_int tid));
         ( "args",
           Json.Obj
             ([
                ("op", Json.Num (float_of_int op));
                ("span", Json.Num (float_of_int id));
                ("parent", Json.Num (float_of_int parent));
              ]
             @ extra) );
       ])

  let to_json () =
    let events = ref [] in
    iter (fun r ->
        events :=
          event_json ~name:r.s_name ~cat:r.s_cat ~tid:r.s_tid ~ts:r.s_ts
            ~dur:r.s_dur ~id:r.s_id ~parent:r.s_parent ~op:r.s_op ()
          :: !events);
    Json.Obj
      [
        ("traceEvents", Json.Arr (List.rev !events));
        ("displayTimeUnit", Json.Str "ns");
      ]

  let validate j =
    let ( let* ) = Result.bind in
    let field name ev =
      match Json.member name ev with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "event missing field %S" name)
    in
    let str name ev =
      let* v = field name ev in
      match v with Json.Str s -> Ok s | _ -> Error (name ^ " is not a string")
    in
    let num name ev =
      let* v = field name ev in
      match v with Json.Num f -> Ok f | _ -> Error (name ^ " is not a number")
    in
    match Json.member "traceEvents" j with
    | None -> Error "top-level object has no traceEvents"
    | Some (Json.Arr events) ->
        let check ev =
          match ev with
          | Json.Obj _ ->
              let* _name = str "name" ev in
              let* _cat = str "cat" ev in
              let* ph = str "ph" ev in
              let* ts = num "ts" ev in
              let* dur = num "dur" ev in
              let* _pid = num "pid" ev in
              let* _tid = num "tid" ev in
              if ph <> "X" then Error (Printf.sprintf "unexpected phase %S" ph)
              else if ts < 0.0 then Error "negative begin timestamp"
              else if dur < 0.0 then
                Error "span end precedes its begin (negative dur)"
              else Ok ()
          | _ -> Error "traceEvents element is not an object"
        in
        List.fold_left
          (fun acc ev -> match acc with Error _ -> acc | Ok () -> check ev)
          (Ok ()) events
    | Some _ -> Error "traceEvents is not an array"
end

let record_span ~cat ~name ~tid ~ts ~dur ~id ~parent ~op =
  if !spans_on then
    Trace.record
      {
        s_name = name;
        s_cat = cat;
        s_tid = tid;
        s_ts = ts;
        s_dur = dur;
        s_id = id;
        s_parent = parent;
        s_op = op;
      }

(* ---- per-thread operation context --------------------------------------- *)

(* One frame per thread: the outermost in-flight syscall.  Sub-layers
   accumulate into it; media time inside a gate crossing or a lease wait is
   subtracted from those buckets so the four buckets stay disjoint.  The
   frame also carries the causal context: the op-id assigned to the
   outermost syscall, the coffer the op anchored to (set by the µFS), and
   the stack of open spans used for parent links and flight dumps. *)
type open_span = {
  os_id : int;
  os_parent : int;
  os_cat : string;
  os_name : string;
  os_ts : int;
}

type frame = {
  mutable depth : int;  (* syscall nesting (truncate calls openf, ...) *)
  mutable start : int;
  mutable media : int;
  mutable kern : int;
  mutable lease_w : int;
  mutable gate_depth : int;
  mutable gate_start : int;
  mutable gate_media0 : int;
  mutable op : int;  (* op-id of the in-flight dispatched op, 0 = none *)
  mutable op_name : string;
  mutable coffer : int;  (* ambient coffer, -1 = none *)
  mutable stack : open_span list;  (* open spans, innermost first *)
}

let frames : (int, frame) Hashtbl.t = Hashtbl.create 64

let frame tid =
  match Hashtbl.find_opt frames tid with
  | Some f -> f
  | None ->
      let f =
        {
          depth = 0;
          start = 0;
          media = 0;
          kern = 0;
          lease_w = 0;
          gate_depth = 0;
          gate_start = 0;
          gate_media0 = 0;
          op = 0;
          op_name = "";
          coffer = -1;
          stack = [];
        }
      in
      Hashtbl.replace frames tid f;
      f

let push_span fr ~cat ~name ~ts =
  let parent = match fr.stack with [] -> 0 | os :: _ -> os.os_id in
  let id = next_span_id () in
  fr.stack <-
    { os_id = id; os_parent = parent; os_cat = cat; os_name = name; os_ts = ts }
    :: fr.stack;
  id

let pop_span fr ~tid ~op =
  match fr.stack with
  | [] -> ()
  | os :: rest ->
      fr.stack <- rest;
      record_span ~cat:os.os_cat ~name:os.os_name ~tid ~ts:os.os_ts
        ~dur:(Sim.now () - os.os_ts) ~id:os.os_id ~parent:os.os_parent ~op

(* Tenant pinning: default tenant is the simulated thread id; a serving
   frontend can pin a real tenant id onto the thread serving it. *)
let tenants : (int, int) Hashtbl.t = Hashtbl.create 64

let set_tenant t = Hashtbl.replace tenants (Sim.self_tid ()) t

let current_tenant () =
  let tid = Sim.self_tid () in
  match Hashtbl.find_opt tenants tid with Some t -> t | None -> tid

let current_op () =
  match Hashtbl.find_opt frames (Sim.self_tid ()) with
  | Some fr -> fr.op
  | None -> 0

let current_op_coffer () =
  match Hashtbl.find_opt frames (Sim.self_tid ()) with
  | Some fr when fr.coffer >= 0 -> Some fr.coffer
  | _ -> None

let set_op_coffer cid =
  if !on then begin
    let fr = frame (Sim.self_tid ()) in
    if fr.depth > 0 then fr.coffer <- cid
  end

(* (name, cid) -> counter handle: keeps the per-cacheline hot paths
   (pbatch elision accounting) from re-concatenating the series key. *)
let coffer_counters : (string * int, Counter.t) Hashtbl.t = Hashtbl.create 64

let coffer_counter name cid =
  match Hashtbl.find_opt coffer_counters (name, cid) with
  | Some c -> c
  | None ->
      let c = Counter.make (Labels.series name (Labels.of_coffer cid)) in
      Hashtbl.replace coffer_counters (name, cid) c;
      c

let cnt_coffer name n =
  if !on then begin
    Counter.add (Counter.make name) n;
    match Hashtbl.find_opt frames (Sim.self_tid ()) with
    | Some fr when fr.coffer >= 0 -> Counter.add (coffer_counter name fr.coffer) n
    | _ -> ()
  end

(* ---- flight recorder ring (low-level; public API in Flight below) ------- *)

type fevent = {
  e_seq : int;
  e_ts : int;
  e_tid : int;
  e_op : int;
  e_kind : string;
  e_fields : (string * string) list;
}

let dummy_fevent =
  { e_seq = 0; e_ts = 0; e_tid = 0; e_op = 0; e_kind = ""; e_fields = [] }

let fcapacity = ref 2048
let fring : fevent array ref = ref [||]
let fhead = ref 0
let ffilled = ref 0
let ftotal = ref 0
let fseq = ref 0

(* per-coffer health history: (sim_ts, from, to), newest first internally *)
let fhealth : (int, (int * string * string) list ref) Hashtbl.t =
  Hashtbl.create 16

let fring_reset () =
  fring := [||];
  fhead := 0;
  ffilled := 0;
  ftotal := 0;
  fseq := 0;
  Hashtbl.reset fhealth

let fring_set_capacity n =
  if n <= 0 then invalid_arg "Obs.Flight.set_capacity";
  fcapacity := n;
  fring := [||];
  fhead := 0;
  ffilled := 0

(* Record one flight event.  Always safe to call; gated on the switches. *)
let fnote kind fields =
  if !on && !flight_on then begin
    let tid = Sim.self_tid () in
    let op =
      match Hashtbl.find_opt frames tid with Some fr -> fr.op | None -> 0
    in
    incr fseq;
    incr ftotal;
    let ev =
      {
        e_seq = !fseq;
        e_ts = Sim.now ();
        e_tid = tid;
        e_op = op;
        e_kind = kind;
        e_fields = fields;
      }
    in
    if Array.length !fring = 0 then fring := Array.make !fcapacity dummy_fevent;
    !fring.(!fhead) <- ev;
    fhead := (!fhead + 1) mod !fcapacity;
    if !ffilled < !fcapacity then incr ffilled
  end

let fring_events () =
  let cap = !fcapacity in
  let start = if !ffilled = cap then !fhead else 0 in
  let acc = ref [] in
  for i = !ffilled - 1 downto 0 do
    acc := !fring.((start + i) mod cap) :: !acc
  done;
  !acc

(* ---- spans and layer attribution ----------------------------------------- *)

let span ~cat ~name f =
  if not !on then f ()
  else begin
    let tid = Sim.self_tid () in
    let fr = frame tid in
    let ts = Sim.now () in
    let _id = push_span fr ~cat ~name ~ts in
    incr Trace.open_count;
    let finish () =
      decr Trace.open_count;
      pop_span fr ~tid ~op:fr.op
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let c_syscalls = Counter.make "syscall.count"
let c_total = Counter.make "layer.total_ns"
let c_fslib = Counter.make "layer.fslib_ns"
let c_kern = Counter.make "layer.kernfs_ns"
let c_media = Counter.make "layer.media_ns"
let c_lease = Counter.make "layer.lease_ns"
let c_media_all = Counter.make "nvm.media_ns"
let c_gate = Counter.make "gate.crossings"
let c_lease_acq = Counter.make "lease.acquires"
let c_lease_retries = Counter.make "lease.retries"
let c_lease_wait = Counter.make "lease.wait_ns"

let with_syscall name f =
  if not !on then f ()
  else begin
    let tid = Sim.self_tid () in
    let fr = frame tid in
    let t0 = Sim.now () in
    fr.depth <- fr.depth + 1;
    if fr.depth = 1 then begin
      fr.start <- t0;
      fr.media <- 0;
      fr.kern <- 0;
      fr.lease_w <- 0;
      fr.op <- next_op ();
      fr.op_name <- name;
      fr.coffer <- -1;
      fnote "syscall_begin" [ ("name", name); ("tenant", string_of_int (current_tenant ())) ]
    end;
    let _id = push_span fr ~cat:"syscall" ~name ~ts:t0 in
    incr Trace.open_count;
    let finish () =
      decr Trace.open_count;
      let dt = Sim.now () - t0 in
      observe ("syscall." ^ name) dt;
      pop_span fr ~tid ~op:fr.op;
      fr.depth <- fr.depth - 1;
      if fr.depth = 0 then begin
        Counter.incr c_syscalls;
        Counter.add c_total dt;
        Counter.add c_media fr.media;
        Counter.add c_kern fr.kern;
        Counter.add c_lease fr.lease_w;
        Counter.add c_fslib (max 0 (dt - fr.media - fr.kern - fr.lease_w));
        (* dimensioned series: per-tenant op latency, and — when the op
           anchored to a coffer — per-coffer latency and media time *)
        let tenant = current_tenant () in
        observe_l "op.latency"
          (Labels.v [ ("op", name); ("tenant", string_of_int tenant) ])
          dt;
        if fr.coffer >= 0 then begin
          observe_l "coffer.latency"
            (Labels.v [ ("coffer", string_of_int fr.coffer); ("op", name) ])
            dt;
          if fr.media > 0 then
            cnt_l "nvm.media_ns" (Labels.of_coffer fr.coffer) fr.media
        end;
        fnote "syscall_end"
          [
            ("name", name);
            ("dur_ns", string_of_int dt);
            ( "coffer",
              if fr.coffer >= 0 then string_of_int fr.coffer else "-" );
          ];
        fr.op <- 0;
        fr.op_name <- "";
        fr.coffer <- -1
      end
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let with_kernel_crossing f =
  if not !on then f ()
  else begin
    let tid = Sim.self_tid () in
    let fr = frame tid in
    Counter.incr c_gate;
    let ts = Sim.now () in
    fr.gate_depth <- fr.gate_depth + 1;
    if fr.gate_depth = 1 then begin
      fr.gate_start <- ts;
      fr.gate_media0 <- fr.media
    end;
    let _id = push_span fr ~cat:"kernfs" ~name:"trap" ~ts in
    incr Trace.open_count;
    let finish () =
      decr Trace.open_count;
      pop_span fr ~tid ~op:fr.op;
      fr.gate_depth <- fr.gate_depth - 1;
      if fr.gate_depth = 0 && fr.depth > 0 then
        fr.kern <-
          fr.kern
          + max 0 (Sim.now () - fr.gate_start - (fr.media - fr.gate_media0))
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

type lease_token = { lt_t0 : int; lt_media0 : int; lt_live : bool }

let dead_token = { lt_t0 = 0; lt_media0 = 0; lt_live = false }

let lease_begin () =
  if not !on then dead_token
  else
    let fr = frame (Sim.self_tid ()) in
    { lt_t0 = Sim.now (); lt_media0 = fr.media; lt_live = true }

let lease_end tok ~retries =
  if tok.lt_live && !on then begin
    let tid = Sim.self_tid () in
    let fr = frame tid in
    let wait =
      max 0 (Sim.now () - tok.lt_t0 - (fr.media - tok.lt_media0))
    in
    Counter.incr c_lease_acq;
    Counter.add c_lease_retries retries;
    Counter.add c_lease_wait wait;
    if fr.coffer >= 0 then begin
      let l = Labels.of_coffer fr.coffer in
      cnt_l "lease.acquires" l 1;
      cnt_l "lease.wait_ns" l wait
    end;
    if fr.depth > 0 then fr.lease_w <- fr.lease_w + wait;
    (* a contended acquire is a real span on the op's trace *)
    if wait > 0 then begin
      let parent = match fr.stack with [] -> 0 | os :: _ -> os.os_id in
      record_span ~cat:"lease" ~name:"wait" ~tid ~ts:tok.lt_t0
        ~dur:(Sim.now () - tok.lt_t0) ~id:(next_span_id ()) ~parent ~op:fr.op
    end
  end

(* An acquisition abandoned because the request's deadline expired: the time
   camped on the lease is still real wait (it must show up in the op's lease
   attribution and the trace), but no acquire is counted — the lease was
   never taken. *)
let lease_abort tok ~retries =
  if tok.lt_live && !on then begin
    let tid = Sim.self_tid () in
    let fr = frame tid in
    let wait = max 0 (Sim.now () - tok.lt_t0 - (fr.media - tok.lt_media0)) in
    cnt "lease.aborts" 1;
    Counter.add c_lease_retries retries;
    Counter.add c_lease_wait wait;
    if fr.coffer >= 0 then begin
      let l = Labels.of_coffer fr.coffer in
      cnt_l "lease.aborts" l 1;
      cnt_l "lease.wait_ns" l wait
    end;
    if fr.depth > 0 then fr.lease_w <- fr.lease_w + wait;
    if wait > 0 then begin
      let parent = match fr.stack with [] -> 0 | os :: _ -> os.os_id in
      record_span ~cat:"lease" ~name:"wait_aborted" ~tid ~ts:tok.lt_t0
        ~dur:(Sim.now () - tok.lt_t0) ~id:(next_span_id ()) ~parent ~op:fr.op
    end
  end

(* ---- NVM media attribution ---------------------------------------------- *)

let on_device_event ev =
  if !on then begin
    let ns =
      match (ev : Nvm.Device.trace_event) with
      | T_store { ns; _ } | T_nt_store { ns; _ } | T_load { ns; _ }
      | T_cas { ns; _ } | T_clwb { ns; _ } | T_fence { ns; _ } ->
          ns
      | T_media_fault { addr; write } ->
          cnt "fault.media" 1;
          let tid = Sim.self_tid () in
          let fr = frame tid in
          fnote "media_fault"
            [
              ("addr", string_of_int addr);
              ("write", if write then "1" else "0");
              ( "coffer",
                if fr.coffer >= 0 then string_of_int fr.coffer else "-" );
            ];
          (* zero-duration marker on the faulting op's span tree *)
          let parent = match fr.stack with [] -> 0 | os :: _ -> os.os_id in
          record_span ~cat:"nvm" ~name:"media_fault" ~tid ~ts:(Sim.now ())
            ~dur:0 ~id:(next_span_id ()) ~parent ~op:fr.op;
          0
      | T_reset -> 0
    in
    if ns > 0 then begin
      Counter.add c_media_all ns;
      match Hashtbl.find_opt frames (Sim.self_tid ()) with
      | Some fr when fr.depth > 0 -> fr.media <- fr.media + ns
      | _ -> ()
    end
  end

let attach_device dev =
  if !on then ignore (Nvm.Device.add_trace_subscriber dev on_device_event)

(* ---- snapshots ----------------------------------------------------------- *)

module Snapshot = struct
  type sval = V_counter of int | V_gauge of float | V_hist of Hist.t

  type t = (string * sval) list  (* sorted by name *)

  type lv = L_counter of int | L_gauge of float | L_hist of Hist.t

  let take () =
    Hashtbl.fold
      (fun name m acc ->
        let v =
          match m with
          | M_counter r -> V_counter !r
          | M_gauge r -> V_gauge !r
          | M_hist h -> V_hist (Hist.copy h)
        in
        (name, v) :: acc)
      registry []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let diff older newer =
    List.filter_map
      (fun (name, nv) ->
        match (nv, List.assoc_opt name older) with
        | V_counter n, Some (V_counter o) -> Some (name, V_counter (n - o))
        | V_hist n, Some (V_hist o) -> Some (name, V_hist (Hist.sub n o))
        | v, _ -> Some (name, v))
      newer

  let counter_value t name =
    match List.assoc_opt name t with Some (V_counter n) -> Some n | _ -> None

  let labeled t ~base =
    List.filter_map
      (fun (name, v) ->
        let b, pairs = Labels.parse_series name in
        if b = base && pairs <> [] then
          let lv =
            match v with
            | V_counter c -> L_counter c
            | V_gauge g -> L_gauge g
            | V_hist h -> L_hist h
          in
          Some (pairs, lv)
        else None)
      t

  let commas n =
    let neg = n < 0 in
    let s = string_of_int (abs n) in
    let len = String.length s in
    let b = Buffer.create (len + 4) in
    if neg then Buffer.add_char b '-';
    String.iteri
      (fun i c ->
        if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char b ',';
        Buffer.add_char b c)
      s;
    Buffer.contents b

  let is_labeled n = String.contains n '{'

  let render ?(title = "obs") t =
    let b = Buffer.create 1024 in
    Printf.bprintf b "== %s ==\n" title;
    let counters =
      List.filter_map
        (fun (n, v) ->
          match v with
          | V_counter c when c <> 0 && not (is_labeled n) -> Some (n, c)
          | _ -> None)
        t
    in
    let gauges =
      List.filter_map
        (fun (n, v) ->
          match v with
          | V_gauge g when g <> 0.0 && not (is_labeled n) -> Some (n, g)
          | _ -> None)
        t
    in
    let hists =
      List.filter_map
        (fun (n, v) ->
          match v with
          | V_hist h when Hist.count h > 0 && not (is_labeled n) -> Some (n, h)
          | _ -> None)
        t
    in
    if counters <> [] then begin
      Buffer.add_string b "counters:\n";
      List.iter
        (fun (n, c) -> Printf.bprintf b "  %-28s %16s\n" n (commas c))
        counters
    end;
    if gauges <> [] then begin
      Buffer.add_string b "gauges:\n";
      List.iter (fun (n, g) -> Printf.bprintf b "  %-28s %16.3f\n" n g) gauges
    end;
    if hists <> [] then begin
      Printf.bprintf b "histograms (ns): %-12s %8s %10s %10s %10s %10s\n" ""
        "count" "p50" "p90" "p99" "max";
      List.iter
        (fun (n, h) ->
          Printf.bprintf b "  %-26s %8s %10s %10s %10s %10s\n" n
            (commas (Hist.count h))
            (commas (Hist.percentile h 0.50))
            (commas (Hist.percentile h 0.90))
            (commas (Hist.percentile h 0.99))
            (commas (Hist.max_value h)))
        hists
    end;
    (match counter_value t "layer.total_ns" with
    | Some total when total > 0 ->
        let part name =
          match counter_value t name with Some v -> v | None -> 0
        in
        let fslib = part "layer.fslib_ns"
        and kern = part "layer.kernfs_ns"
        and media = part "layer.media_ns"
        and lease = part "layer.lease_ns" in
        let pct v = 100.0 *. float_of_int v /. float_of_int total in
        Printf.bprintf b
          "layer split: FSLib %.1f%%  KernFS-trap %.1f%%  NVM-media %.1f%%  \
           lease-wait %.1f%%  (%s ns over %s syscalls)\n"
          (pct fslib) (pct kern) (pct media) (pct lease) (commas total)
          (commas
             (match counter_value t "syscall.count" with Some n -> n | None -> 0))
    | _ -> ());
    (* Fault-domain summary: one line whenever anything went wrong (or was
       injected) at runtime, so zofs_stat / zofs_shell surface robustness
       activity without the reader hunting through the counter list. *)
    let cv name = match counter_value t name with Some v -> v | None -> 0 in
    let media = cv "fault.media"
    and transient = cv "fault.transient"
    and graceful = cv "fault.graceful_errors"
    and steals = cv "lease.steals"
    and repairs = cv "intent.repairs"
    and quarantined = cv "health.quarantined"
    and offline = cv "health.offline" in
    if media + transient + graceful + steals + repairs + quarantined + offline
       > 0
    then
      Printf.bprintf b
        "robustness: media-faults %s  transient %s  graceful-EIO %s  \
         lease-steals %s  intent-repairs %s  repairs ok/failed %s/%s  \
         quarantined %s  offline %s\n"
        (commas media) (commas transient) (commas graceful) (commas steals)
        (commas repairs)
        (commas (cv "health.repairs_ok"))
        (commas (cv "health.repairs_failed"))
        (commas quarantined) (commas offline);
    Buffer.contents b

  (* label-sliced top-k views *)

  let render_top ?(k = 5) t =
    let b = Buffer.create 256 in
    (* group labelled hists of [base] by the value of [dim], merging *)
    let grouped base dim =
      let tbl : (string, Hist.t) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (pairs, lv) ->
          match (List.assoc_opt dim pairs, lv) with
          | Some v, L_hist h ->
              let cur =
                match Hashtbl.find_opt tbl v with
                | Some acc -> acc
                | None -> Hist.create ()
              in
              Hashtbl.replace tbl v (Hist.merge cur h)
          | _ -> ())
        (labeled t ~base);
      Hashtbl.fold (fun key h acc -> (key, h) :: acc) tbl []
    in
    let top_by_p99 title base dim =
      let rows =
        grouped base dim
        |> List.map (fun (key, h) ->
               (key, Hist.percentile h 0.99, Hist.count h))
        |> List.sort (fun (ka, pa, _) (kb, pb, _) ->
               if pa <> pb then compare pb pa else compare ka kb)
      in
      if rows <> [] then begin
        Printf.bprintf b "%s:\n" title;
        List.iteri
          (fun i (key, p99, n) ->
            if i < k then
              Printf.bprintf b "  %s=%-8s p99 %10s ns  over %8s ops\n" dim key
                (commas p99) (commas n))
          rows
      end
    in
    top_by_p99 "top coffers by p99 latency" "coffer.latency" "coffer";
    top_by_p99 "top tenants by p99 latency" "op.latency" "tenant";
    (* tenants by SLO error-budget burn, from the slo.burn gauges published
       by Slo.publish (max burn across that tenant's SLOs) *)
    let burn_rows =
      let tbl : (string, float * string) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (pairs, lv) ->
          match (List.assoc_opt "tenant" pairs, List.assoc_opt "slo" pairs, lv)
          with
          | Some tenant, Some slo, L_gauge g ->
              (match Hashtbl.find_opt tbl tenant with
              | Some (cur, _) when cur >= g -> ()
              | _ -> Hashtbl.replace tbl tenant (g, slo))
          | _ -> ())
        (labeled t ~base:"slo.burn");
      Hashtbl.fold (fun tenant (g, slo) acc -> (tenant, g, slo) :: acc) tbl []
      |> List.sort (fun (ta, ga, _) (tb, gb, _) ->
             if ga <> gb then compare gb ga else compare ta tb)
    in
    if burn_rows <> [] then begin
      Printf.bprintf b "top tenants by SLO error-budget burn:\n";
      List.iteri
        (fun i (tenant, g, slo) ->
          if i < k then
            Printf.bprintf b "  tenant=%-8s burn %8.2fx of budget  (worst slo: %s)\n"
              tenant g slo)
        burn_rows
    end;
    Buffer.contents b

  let hist_to_json h =
    Json.Obj
      [
        ("count", Json.Num (float_of_int (Hist.count h)));
        ("min", Json.Num (float_of_int (Hist.min_value h)));
        ("max", Json.Num (float_of_int (Hist.max_value h)));
        ("sum", Json.Num (float_of_int (Hist.sum h)));
        ( "buckets",
          Json.Arr
            (List.map
               (fun (i, c) ->
                 Json.Arr [ Json.Num (float_of_int i); Json.Num (float_of_int c) ])
               (Hist.buckets h)) );
      ]

  let to_json t =
    let pick f = List.filter_map f t in
    Json.Obj
      [
        ( "counters",
          Json.Obj
            (pick (fun (n, v) ->
                 match v with
                 | V_counter c -> Some (n, Json.Num (float_of_int c))
                 | _ -> None)) );
        ( "gauges",
          Json.Obj
            (pick (fun (n, v) ->
                 match v with V_gauge g -> Some (n, Json.Num g) | _ -> None)) );
        ( "histograms",
          Json.Obj
            (pick (fun (n, v) ->
                 match v with V_hist h -> Some (n, hist_to_json h) | _ -> None))
        );
      ]

  let hist_of_json j =
    let num name =
      match Json.member name j with
      | Some (Json.Num f) -> Ok (int_of_float f)
      | _ -> Error ("histogram field " ^ name ^ " missing or not a number")
    in
    let ( let* ) = Result.bind in
    let* n = num "count" in
    let* mn = num "min" in
    let* mx = num "max" in
    let* sm = num "sum" in
    let h = Hist.create () in
    h.Hist.n <- n;
    h.Hist.mn <- mn;
    h.Hist.mx <- mx;
    h.Hist.sm <- sm;
    match Json.member "buckets" j with
    | Some (Json.Arr l) ->
        let rec fill = function
          | [] -> Ok h
          | Json.Arr [ Json.Num i; Json.Num c ] :: rest ->
              let i = int_of_float i in
              if i < 0 || i >= Hist.nbuckets then Error "bucket index out of range"
              else begin
                h.Hist.counts.(i) <- int_of_float c;
                fill rest
              end
          | _ -> Error "malformed bucket entry"
        in
        fill l
    | _ -> Error "histogram has no buckets array"

  let of_json j =
    let ( let* ) = Result.bind in
    let section name =
      match Json.member name j with
      | Some (Json.Obj l) -> Ok l
      | None -> Ok []
      | Some _ -> Error (name ^ " is not an object")
    in
    let* counters = section "counters" in
    let* gauges = section "gauges" in
    let* histograms = section "histograms" in
    let* cs =
      List.fold_left
        (fun acc (n, v) ->
          let* acc = acc in
          match v with
          | Json.Num f -> Ok ((n, V_counter (int_of_float f)) :: acc)
          | _ -> Error ("counter " ^ n ^ " is not a number"))
        (Ok []) counters
    in
    let* gs =
      List.fold_left
        (fun acc (n, v) ->
          let* acc = acc in
          match v with
          | Json.Num f -> Ok ((n, V_gauge f) :: acc)
          | _ -> Error ("gauge " ^ n ^ " is not a number"))
        (Ok []) gauges
    in
    let* hs =
      List.fold_left
        (fun acc (n, v) ->
          let* acc = acc in
          let* h = hist_of_json v in
          Ok ((n, V_hist h) :: acc))
        (Ok []) histograms
    in
    Ok (List.sort (fun (a, _) (b, _) -> compare a b) (cs @ gs @ hs))
end

(* ---- flight recorder (public API) ---------------------------------------- *)

module Flight = struct
  type event = fevent = {
    e_seq : int;
    e_ts : int;
    e_tid : int;
    e_op : int;
    e_kind : string;
    e_fields : (string * string) list;
  }

  let set_capacity = fring_set_capacity
  let note = fnote
  let recorded () = !ffilled
  let total () = !ftotal
  let events = fring_events

  (* auto-dump configuration + rate limiting *)
  let autodump = ref false
  let dump_dir = ref "."
  let max_dumps = ref 16
  let dumps_written = ref 0
  let dump_seq = ref 0
  let dump_files : string list ref = ref []
  (* at most one auto-dump per (coffer, destination-state) between resets *)
  let dumped_for : (int * string, unit) Hashtbl.t = Hashtbl.create 8

  let set_autodump ?dir ?max_dumps:md enabled_ =
    (match dir with Some d -> dump_dir := d | None -> ());
    (match md with Some m -> max_dumps := m | None -> ());
    (* arming opens a fresh dump budget: each armed window (a campaign, an
       fsck run) gets its own [max_dumps] allowance *)
    if enabled_ then dumps_written := 0;
    autodump := enabled_

  let last_dump_path () =
    match !dump_files with [] -> None | p :: _ -> Some p

  let dump_paths () = List.rev !dump_files

  let health_history ~coffer =
    match Hashtbl.find_opt fhealth coffer with
    | Some l -> List.rev !l
    | None -> []

  let event_to_json (e : event) =
    Json.Obj
      [
        ("seq", Json.Num (float_of_int e.e_seq));
        ("ts", Json.Num (float_of_int e.e_ts));
        ("tid", Json.Num (float_of_int e.e_tid));
        ("op", Json.Num (float_of_int e.e_op));
        ("kind", Json.Str e.e_kind);
        ("fields", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.e_fields));
      ]

  (* The op trace of the dump: the triggering op's closed spans from the
     ring plus the spans still open on the triggering thread (the enclosing
     syscall span is not in the ring yet — the op is in flight when the
     dump fires), marked with "open": true. *)
  let op_trace_json ~op ~tid =
    let closed =
      if op > 0 then Trace.spans_of_op op
      else begin
        (* no in-flight op (e.g. campaign-level invariant failure): keep the
           last few spans as context *)
        let all = Trace.spans () in
        let n = List.length all in
        List.filteri (fun i _ -> i >= n - 64) all
      end
    in
    let closed_json =
      List.map
        (fun (s : Trace.span) ->
          Trace.event_json ~name:s.sp_name ~cat:s.sp_cat ~tid:s.sp_tid
            ~ts:s.sp_ts ~dur:s.sp_dur ~id:s.sp_id ~parent:s.sp_parent
            ~op:s.sp_op ())
        closed
    in
    let open_json =
      match Hashtbl.find_opt frames tid with
      | Some fr when fr.op = op && op > 0 ->
          List.rev_map
            (fun os ->
              Trace.event_json
                ~extra:[ ("open", Json.Bool true) ]
                ~name:os.os_name ~cat:os.os_cat ~tid ~ts:os.os_ts
                ~dur:(Sim.now () - os.os_ts) ~id:os.os_id ~parent:os.os_parent
                ~op ())
            fr.stack
      | _ -> []
    in
    Json.Obj
      [
        ("traceEvents", Json.Arr (open_json @ closed_json));
        ("displayTimeUnit", Json.Str "ns");
      ]

  let health_json () =
    let entries =
      Hashtbl.fold
        (fun cid l acc ->
          ( string_of_int cid,
            Json.Arr
              (List.rev_map
                 (fun (ts, from_, to_) ->
                   Json.Obj
                     [
                       ("ts", Json.Num (float_of_int ts));
                       ("from", Json.Str from_);
                       ("to", Json.Str to_);
                     ])
                 !l) )
          :: acc)
        fhealth []
      |> List.sort (fun (a, _) (b, _) -> compare (int_of_string a) (int_of_string b))
    in
    Json.Obj entries

  let dump ~reason ?coffer () =
    if (not !on) || !dumps_written >= !max_dumps then None
    else begin
      incr dump_seq;
      incr dumps_written;
      let tid = Sim.self_tid () in
      let op =
        match Hashtbl.find_opt frames tid with Some fr -> fr.op | None -> 0
      in
      let name =
        match coffer with
        | Some c -> Printf.sprintf "flight-%d-c%d.json" !dump_seq c
        | None -> Printf.sprintf "flight-%d.json" !dump_seq
      in
      let path = Filename.concat !dump_dir name in
      let j =
        Json.Obj
          [
            ("schema", Json.Str "zofs-flight-1");
            ("reason", Json.Str reason);
            ("sim_ts", Json.Num (float_of_int (Sim.now ())));
            ( "coffer",
              match coffer with
              | Some c -> Json.Num (float_of_int c)
              | None -> Json.Null );
            ("op", Json.Num (float_of_int op));
            ("health_history", health_json ());
            ("events", Json.Arr (List.map event_to_json (fring_events ())));
            ("op_trace", op_trace_json ~op ~tid);
            ("snapshot", Snapshot.to_json (Snapshot.take ()));
          ]
      in
      match
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (Json.to_string j);
            Out_channel.output_string oc "\n")
      with
      | () ->
          dump_files := path :: !dump_files;
          Some path
      | exception Sys_error _ ->
          (* an unwritable dump dir must never take the FS down *)
          decr dumps_written;
          None
    end

  let health_transition ~coffer ~from_ ~to_ =
    if !on && !flight_on then begin
      let l =
        match Hashtbl.find_opt fhealth coffer with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace fhealth coffer l;
            l
      in
      l := (Sim.now (), from_, to_) :: !l;
      fnote "health_transition"
        [ ("coffer", string_of_int coffer); ("from", from_); ("to", to_) ];
      if
        !autodump
        && String.lowercase_ascii to_ <> "healthy"
        && not (Hashtbl.mem dumped_for (coffer, to_))
      then begin
        Hashtbl.replace dumped_for (coffer, to_) ();
        ignore
          (dump ~reason:(Printf.sprintf "coffer %d left healthy: %s -> %s" coffer from_ to_)
             ~coffer ())
      end
    end

  let invariant_failure msg =
    if !on then begin
      fnote "invariant_failure" [ ("msg", msg) ];
      if !autodump then ignore (dump ~reason:("invariant failure: " ^ msg) ())
    end

  let reset () =
    fring_reset ();
    Hashtbl.reset dumped_for
end

(* ---- SLOs ----------------------------------------------------------------- *)

module Slo = struct
  type report = {
    s_name : string;
    s_op : string;
    s_tenant : string;
    s_count : int;
    s_p99 : int;
    s_target : int;
    s_over : int;
    s_burn : float;
  }

  type def = { d_op : string; d_target : int }

  (* insertion-ordered definitions (name -> def) *)
  let defs : (string * def) list ref = ref []

  let define ~name ~op ~p99_target_ns =
    let d = { d_op = op; d_target = p99_target_ns } in
    defs := (name, d) :: List.remove_assoc name !defs

  let definitions () =
    List.rev_map (fun (n, d) -> (n, d.d_op, d.d_target)) !defs

  let clear_definitions () = defs := []

  (* cumulative burn ledger: (slo, tenant) -> (over, count) *)
  let ledger : (string * string, (int * int) ref) Hashtbl.t = Hashtbl.create 16

  let burn_of ~over ~count =
    if count = 0 then 0.0
    else float_of_int over /. (0.01 *. float_of_int count)

  let ledger_burn ~name ~tenant =
    match Hashtbl.find_opt ledger (name, tenant) with
    | Some r ->
        let over, count = !r in
        burn_of ~over ~count
    | None -> 0.0

  let evaluate snap =
    let latencies = Snapshot.labeled snap ~base:"op.latency" in
    List.concat_map
      (fun (name, d) ->
        List.filter_map
          (fun (pairs, lv) ->
            match
              (List.assoc_opt "op" pairs, List.assoc_opt "tenant" pairs, lv)
            with
            | Some op, Some tenant, Snapshot.L_hist h
              when op = d.d_op && Hist.count h > 0 ->
                let count = Hist.count h in
                let over = Hist.count_over h d.d_target in
                Some
                  {
                    s_name = name;
                    s_op = op;
                    s_tenant = tenant;
                    s_count = count;
                    s_p99 = Hist.percentile h 0.99;
                    s_target = d.d_target;
                    s_over = over;
                    s_burn = burn_of ~over ~count;
                  }
            | _ -> None)
          latencies
        |> List.sort (fun a b -> compare a.s_tenant b.s_tenant))
      (List.rev !defs)

  let publish snap =
    let reports = evaluate snap in
    List.iter
      (fun r ->
        let key = (r.s_name, r.s_tenant) in
        let cell =
          match Hashtbl.find_opt ledger key with
          | Some c -> c
          | None ->
              let c = ref (0, 0) in
              Hashtbl.replace ledger key c;
              c
        in
        let over, count = !cell in
        cell := (over + r.s_over, count + r.s_count);
        let l = Labels.v [ ("slo", r.s_name); ("tenant", r.s_tenant) ] in
        Gauge.set (Gauge.make (Labels.series "slo.p99" l)) (float_of_int r.s_p99);
        Gauge.set
          (Gauge.make (Labels.series "slo.burn" l))
          (let over, count = !cell in
           burn_of ~over ~count))
      reports;
    reports

  let render reports =
    if reports = [] then "slo: no matching samples\n"
    else begin
      let b = Buffer.create 256 in
      Printf.bprintf b "slo: %-16s %-8s %-8s %10s %10s %8s %8s\n" "name" "op"
        "tenant" "p99" "target" "over" "burn";
      List.iter
        (fun r ->
          Printf.bprintf b "     %-16s %-8s %-8s %10d %10d %8d %7.2fx%s\n"
            r.s_name r.s_op r.s_tenant r.s_p99 r.s_target r.s_over r.s_burn
            (if r.s_burn > 1.0 then "  VIOLATED" else ""))
        reports;
      Buffer.contents b
    end

  let reset () = Hashtbl.reset ledger
end

(* ---- switch -------------------------------------------------------------- *)

let enable ?(spans = true) ?(flight = true) () =
  on := true;
  spans_on := spans;
  flight_on := flight

let disable () = on := false

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter r -> r := 0
      | M_gauge r -> r := 0.0
      | M_hist h ->
          Array.fill h.Hist.counts 0 Hist.nbuckets 0;
          h.Hist.n <- 0;
          h.Hist.mn <- 0;
          h.Hist.mx <- 0;
          h.Hist.sm <- 0)
    registry;
  Trace.reset ();
  Hashtbl.reset frames;
  Hashtbl.reset tenants;
  Flight.reset ();
  Slo.reset ()
