(** Observability plane: a metrics registry (counters, gauges, log-bucketed
    latency histograms) with {e dimensioned} (labelled) series, sim-clock
    causal span tracing (per-operation op-ids with parent/child span links)
    exported as Chrome/Perfetto [trace_events] JSON, per-syscall layer time
    attribution (FSLib / KernFS-trap / NVM-media / lease-wait), an always-on
    bounded {e flight recorder} black box that dumps itself when a coffer
    leaves [Healthy], and per-tenant/per-op {e SLO} objects with
    error-budget burn accounting.

    Everything is driven by the deterministic simulation clock ({!Sim.now})
    and records through host-side state only: enabling observability never
    calls {!Sim.advance}, so simulated results are bit-identical with obs on
    or off.  All instrumentation entry points are cheap no-ops while
    disabled. *)

(** {1 Global switch} *)

val enable : ?spans:bool -> ?flight:bool -> unit -> unit
(** Turn instrumentation on.  [spans] (default [true]) also records span
    begin/end pairs into the trace ring buffer; [flight] (default [true])
    records structured events into the flight-recorder ring. *)

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** The reset contract: zero every registered metric (labelled series
    included), clear the span ring buffer, the per-thread layer-attribution
    frames, the flight-recorder ring with its per-coffer health histories
    and auto-dump rate-limit state, and the SLO error-budget burn ledger.
    Metric handles, metric registrations, SLO {e definitions}, label
    interning, the auto-dump configuration, and the list of dump files
    already written to disk all stay valid — reset clears {e state}, not
    {e structure}. *)

(** {1 Minimal JSON (zero-dependency)} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val of_string : string -> (t, string) result
  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] otherwise. *)
end

(** {1 Log-bucketed histograms (ns)}

    Values 0–15 get exact buckets; beyond that, 8 sub-buckets per power of
    two (~12.5% relative error), enough range for any int.  Histograms are
    mergeable: threads (or runs) can record separately and combine. *)

module Hist : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  (** Negative samples are clamped to 0. *)

  val count : t -> int
  val min_value : t -> int  (** 0 when empty *)

  val max_value : t -> int  (** 0 when empty *)

  val sum : t -> int
  val mean : t -> float
  val percentile : t -> float -> int
  (** [percentile t 0.99]; returns the bucket's upper bound clamped to the
      observed min/max (exact when all samples share a bucket); 0 when
      empty. *)

  val merge : t -> t -> t
  (** Pure: neither input is modified. *)

  val count_over : t -> int -> int
  (** [count_over t threshold]: number of recorded samples that certainly
      exceed [threshold] — the sum of all buckets strictly above the one
      containing it.  Samples in the bucket {e containing} [threshold] are
      counted as under (conservative), so SLO burn never over-reports from
      bucket quantization. *)

  val buckets : t -> (int * int) list
  (** Non-empty buckets, [(index, count)], ascending. *)

  (** Bucket math, exposed for boundary tests. *)

  val nbuckets : int
  val bucket_index : int -> int
  val bucket_bounds : int -> int * int
  (** [(lo, hi)] inclusive value range of a bucket. *)
end

(** {1 Labels (dimensioned metrics)}

    A label set is a small vector of [key=value] pairs, canonicalized (keys
    sorted, duplicates rejected) and interned so the hot-path cost of a
    labelled recording is one string concatenation.  A labelled series is
    registered under ["base{k1=v1,k2=v2}"] and lives in the same registry —
    snapshots, diffs and JSON round-trips see it like any other metric. *)

module Labels : sig
  type t

  val empty : t

  val v : (string * string) list -> t
  (** Canonicalize (sort by key) and intern.  Raises [Invalid_argument] on
      duplicate keys or on a key/value containing '{', '}', ',' or '='. *)

  val pairs : t -> (string * string) list
  (** The canonical (sorted) pairs. *)

  val to_string : t -> string
  (** ["k1=v1,k2=v2"] (empty string for {!empty}). *)

  val series : string -> t -> string
  (** [series base l] is the registry key ["base{k1=v1,...}"], or [base]
      itself when [l] is {!empty}. *)

  val parse_series : string -> string * (string * string) list
  (** Inverse of {!series} on a registry key: ["base{k=v}"] becomes
      [("base", [(k, v)])]; a bare name parses as [(name, [])]. *)

  val of_coffer : int -> t
  (** Memoized [v [("coffer", string_of_int cid)]] — the hot single-label
      case. *)
end

(** {1 Registry}

    Metrics are registered by name (idempotently: [make] twice with one name
    yields the same underlying metric).  Handle operations always record;
    the convenience name-keyed helpers ({!cnt}, {!observe}, {!cnt_l},
    {!observe_l}) and all instrumentation entry points are gated on
    {!enabled}. *)

module Counter : sig
  type t

  val make : string -> t
  val add : t -> int -> unit
  val incr : t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val make : string -> t
  val observe : t -> int -> unit
  val hist : t -> Hist.t  (** the live underlying histogram *)
end

val cnt : string -> int -> unit
(** [cnt name n] adds [n] to the named counter — no-op while disabled. *)

val observe : string -> int -> unit
(** Record a sample in the named histogram — no-op while disabled. *)

val cnt_l : string -> Labels.t -> int -> unit
(** [cnt_l base labels n]: labelled counter — no-op while disabled. *)

val observe_l : string -> Labels.t -> int -> unit
(** Labelled histogram sample — no-op while disabled. *)

val cnt_coffer : string -> int -> unit
(** [cnt_coffer base n] adds to {e both} the global [base] counter and, when
    the current thread's in-flight operation has an ambient coffer (see
    {!set_op_coffer}), the labelled [base{coffer=C}] series. *)

(** {1 Operation context (tenants, coffers, op-ids)} *)

val set_tenant : int -> unit
(** Pin the calling thread's tenant id for SLO accounting and labelled
    series.  Defaults to the simulated thread id ({!Sim.self_tid}) — one
    simulated application thread is one tenant until a serving frontend
    multiplexes real tenants onto threads. *)

val current_tenant : unit -> int

val set_op_coffer : int -> unit
(** Called by the µFS when an operation anchors to (or walks into) a
    coffer: labels everything recorded for the rest of the in-flight
    syscall — lease waits, media time, pbatch elisions, graceful errors —
    with [coffer=C].  Cleared automatically when the outermost syscall
    finishes; no-op outside a syscall or while disabled. *)

val current_op : unit -> int
(** Op-id of the calling thread's in-flight dispatched operation, or 0 when
    none (op-ids start at 1). *)

val current_op_coffer : unit -> int option

(** {1 Snapshots} *)

module Snapshot : sig
  type t

  val take : unit -> t
  val diff : t -> t -> t
  (** [diff older newer]: counters and histograms subtract (gauges keep the
      newer value; histogram min/max come from the newer side). *)

  val counter_value : t -> string -> int option
  (** Value of a named counter in the snapshot, if present. *)

  (** A labelled series value, as returned by {!labeled}. *)
  type lv = L_counter of int | L_gauge of float | L_hist of Hist.t

  val labeled : t -> base:string -> ((string * string) list * lv) list
  (** Every series of the snapshot registered as [base{...}], with its
      parsed label pairs. *)

  val render : ?title:string -> t -> string
  (** Counter table, histogram table (count/p50/p90/p99/max), and — when the
      [layer.*] counters are present — a FSLib/KernFS/NVM-media/lease-wait
      split with percentages.  Labelled series are left out of the flat
      tables; render them with {!render_top}. *)

  val render_top : ?k:int -> t -> string
  (** The label-sliced view: top-[k] (default 5) coffers by p99 latency
      (over the [coffer.latency{coffer=..,op=..}] histograms, merged per
      coffer), top-[k] tenants by p99 (over [op.latency{op=..,tenant=..}]),
      and top-[k] tenants by SLO error-budget burn (over the
      [slo.burn{slo=..,tenant=..}] gauges published by {!Slo.publish}).
      Empty string when the snapshot has no labelled series. *)

  val to_json : t -> Json.t
  val of_json : Json.t -> (t, string) result
end

(** {1 Span tracing} *)

val span : cat:string -> name:string -> (unit -> 'a) -> 'a
(** Record a begin/end pair around [f] (sim-time timestamps, current thread
    id, fresh span id parented on the enclosing open span, current op-id)
    into the ring buffer; transparent while disabled. *)

module Trace : sig
  (** One completed span as stored in the ring.  [sp_id] is unique across
      the run; [sp_parent] is the id of the enclosing span (0 = root);
      [sp_op] ties the span to the dispatched operation it served (0 =
      outside any dispatched op). *)
  type span = {
    sp_name : string;
    sp_cat : string;
    sp_tid : int;
    sp_ts : int;
    sp_dur : int;
    sp_id : int;
    sp_parent : int;
    sp_op : int;
  }

  val set_capacity : int -> unit
  (** Ring-buffer capacity in spans (default 65536); clears the buffer. *)

  val reset : unit -> unit
  val recorded : unit -> int
  val dropped : unit -> int
  (** Spans overwritten because the ring wrapped. *)

  val open_spans : unit -> int
  (** Spans begun but not yet ended — nonzero means an unbalanced trace. *)

  val spans : unit -> span list
  (** Ring contents, oldest first. *)

  val spans_of_op : int -> span list
  (** The connected trace of one operation: every recorded span with the
      given op-id, oldest first. *)

  val to_json : unit -> Json.t
  (** Chrome/Perfetto trace: [{"traceEvents": [{"ph":"X", ...}, ...]}],
      timestamps in microseconds of simulated time.  Each event carries
      ["args": {"op", "span", "parent"}] so one operation's FSLib span, its
      kernel crossings, lease waits and media stalls form one connected
      parent/child tree in the viewer. *)

  val validate : Json.t -> (unit, string) result
  (** Structural well-formedness: a [traceEvents] array whose elements are
      complete ("X") events with string [name]/[cat] and non-negative
      numeric [ts]/[dur] (begin <= end), plus numeric [pid]/[tid]. *)
end

(** {1 Instrumentation entry points (used by the FS layers)} *)

val with_syscall : string -> (unit -> 'a) -> 'a
(** Wraps one Dispatcher syscall: span + [syscall.<name>] latency histogram
    + the labelled [op.latency{op=..,tenant=..}] histogram (and, when the
    op anchored to a coffer, [coffer.latency{coffer=..,op=..}]); the
    outermost syscall on a thread is assigned a fresh op-id, records
    flight-recorder begin/end events, and attributes its elapsed time to
    the [layer.*] counters (fslib/kernfs/media/lease/total). *)

val with_kernel_crossing : (unit -> 'a) -> 'a
(** Wraps one KernFS gate crossing: span (parented on the enclosing
    syscall span) + [gate.crossings] counter; inside a syscall, the
    crossing's time (minus NVM media time spent within) goes to
    [layer.kernfs_ns]. *)

type lease_token

val lease_begin : unit -> lease_token

val lease_end : lease_token -> retries:int -> unit
(** Records [lease.acquires]/[lease.retries]/[lease.wait_ns] (plus the
    coffer-labelled variants when an ambient coffer is set) and, when the
    wait was nonzero, a [lease]/[wait] span; inside a syscall the wait
    (minus media time within) goes to [layer.lease_ns]. *)

val lease_abort : lease_token -> retries:int -> unit
(** An acquisition abandoned (request deadline expired while camped on a
    contended lease): records [lease.aborts]/[lease.retries]/[lease.wait_ns]
    and a [lease]/[wait_aborted] span, but no acquire — the lease was never
    taken. *)

val attach_device : Nvm.Device.t -> unit
(** Subscribe to the device's trace stream (multi-subscriber: composes with
    [lib/check]) and account each operation's charged simulated time to
    [nvm.media_ns] (plus [nvm.media_ns{coffer=C}] under an ambient coffer)
    and, inside a syscall, to [layer.media_ns].  A media fault becomes a
    flight-recorder event and a zero-duration [nvm]/[media_fault] span on
    the faulting op.  No-op while disabled — call after {!enable}. *)

(** {1 Flight recorder}

    A bounded, always-on (while enabled) black-box ring of structured
    events: syscall begin/end, lease steals, fault injections, coffer
    health transitions, invariant failures.  When auto-dump is armed, a
    coffer leaving [Healthy] (or an explicit {!Flight.invariant_failure})
    writes a post-mortem JSON dump: the triggering coffer and its health
    history, the ring contents, the connected span trace of the in-flight
    op, and a full metric snapshot. *)

module Flight : sig
  type event = {
    e_seq : int;  (** monotone sequence number *)
    e_ts : int;  (** sim time, ns *)
    e_tid : int;
    e_op : int;  (** op-id in flight on that thread, 0 if none *)
    e_kind : string;
    e_fields : (string * string) list;
  }

  val set_capacity : int -> unit
  (** Ring capacity in events (default 2048); clears the ring. *)

  val note : string -> (string * string) list -> unit
  (** Record one event (no-op while obs or flight recording is off). *)

  val recorded : unit -> int
  (** Events currently held in the ring. *)

  val total : unit -> int
  (** Events recorded since the last reset (ring drops included). *)

  val events : unit -> event list
  (** Ring contents, oldest first. *)

  val health_transition : coffer:int -> from_:string -> to_:string -> unit
  (** Called by KernFS on every coffer health change: records the event,
      appends to the coffer's health history, and — when auto-dump is armed
      and the destination state is not ["healthy"] — writes a dump (at most
      once per (coffer, destination-state) between resets). *)

  val health_history : coffer:int -> (int * string * string) list
  (** [(sim_ts, from, to)] transitions for one coffer, oldest first. *)

  val invariant_failure : string -> unit
  (** Record an [invariant_failure] event and, when auto-dump is armed,
      write a dump (dumps capped by [max_dumps]). *)

  val set_autodump : ?dir:string -> ?max_dumps:int -> bool -> unit
  (** Arm/disarm automatic dumping.  [dir] (default ".") is where dump
      files are written; [max_dumps] (default 16) caps files per armed
      window — arming resets the budget, so each campaign/fsck run gets
      its own allowance. *)

  val dump : reason:string -> ?coffer:int -> unit -> string option
  (** Write a dump now (even when auto-dump is disarmed); [None] if obs is
      disabled or the dump cap is reached.  The file is
      [<dir>/flight-<seq>[-c<coffer>].json]. *)

  val last_dump_path : unit -> string option
  val dump_paths : unit -> string list
  (** All dump files written since the process started, oldest first
      (deliberately {e not} cleared by {!reset} — the files exist). *)

  val reset : unit -> unit
  (** Clear the ring, health histories, and auto-dump rate-limit state
      (also performed by {!val:reset}). *)
end

(** {1 SLOs (per-tenant/per-op objectives)}

    An SLO states: 99% of [op] operations complete under [p99_target_ns].
    Evaluation runs over a snapshot (normally a diff between two points in
    time) against the [op.latency{op=..,tenant=..}] histograms the
    dispatcher records; the error budget is the 1% of operations allowed
    over target, and {e burn} is the fraction of that budget consumed
    ([> 1.0] means the objective is violated). *)

module Slo : sig
  type report = {
    s_name : string;
    s_op : string;
    s_tenant : string;
    s_count : int;  (** samples evaluated *)
    s_p99 : int;  (** achieved p99, ns *)
    s_target : int;  (** objective, ns *)
    s_over : int;  (** samples certainly over target *)
    s_burn : float;  (** error-budget burn: over / (1% of count) *)
  }

  val define : name:string -> op:string -> p99_target_ns:int -> unit
  (** Register (or redefine) an SLO.  Definitions survive {!val:reset}. *)

  val definitions : unit -> (string * string * int) list
  (** [(name, op, p99_target_ns)] of every defined SLO. *)

  val clear_definitions : unit -> unit

  val evaluate : Snapshot.t -> report list
  (** Pure: one report per (SLO, tenant) with samples in the snapshot. *)

  val publish : Snapshot.t -> report list
  (** {!evaluate}, then fold the reports into the cumulative burn ledger
      and publish [slo.p99{slo=..,tenant=..}] / [slo.burn{slo=..,tenant=..}]
      gauges so snapshots (and files rendered by [zofs_stat]/[zofs_top])
      carry the SLO state. *)

  val ledger_burn : name:string -> tenant:string -> float
  (** Cumulative burn accounted by {!publish} since the last reset. *)

  val render : report list -> string

  val reset : unit -> unit
  (** Clear the burn ledger (also performed by {!val:reset}); definitions
      stay. *)
end
