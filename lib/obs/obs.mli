(** Observability layer: a metrics registry (counters, gauges, log-bucketed
    latency histograms), sim-clock span tracing exported as Chrome/Perfetto
    [trace_events] JSON, and per-syscall layer time attribution
    (FSLib / KernFS-trap / NVM-media / lease-wait).

    Everything is driven by the deterministic simulation clock ({!Sim.now})
    and records through host-side state only: enabling observability never
    calls {!Sim.advance}, so simulated results are bit-identical with obs on
    or off.  All instrumentation entry points are cheap no-ops while
    disabled. *)

(** {1 Global switch} *)

val enable : ?spans:bool -> unit -> unit
(** Turn instrumentation on.  [spans] (default [true]) also records span
    begin/end pairs into the trace ring buffer. *)

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered metric and clear the span ring buffer (metric
    handles stay valid). *)

(** {1 Minimal JSON (zero-dependency)} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val of_string : string -> (t, string) result
  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] otherwise. *)
end

(** {1 Log-bucketed histograms (ns)}

    Values 0–15 get exact buckets; beyond that, 8 sub-buckets per power of
    two (~12.5% relative error), enough range for any int.  Histograms are
    mergeable: threads (or runs) can record separately and combine. *)

module Hist : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  (** Negative samples are clamped to 0. *)

  val count : t -> int
  val min_value : t -> int  (** 0 when empty *)

  val max_value : t -> int  (** 0 when empty *)

  val sum : t -> int
  val mean : t -> float
  val percentile : t -> float -> int
  (** [percentile t 0.99]; returns the bucket's upper bound clamped to the
      observed min/max (exact when all samples share a bucket); 0 when
      empty. *)

  val merge : t -> t -> t
  (** Pure: neither input is modified. *)

  val buckets : t -> (int * int) list
  (** Non-empty buckets, [(index, count)], ascending. *)

  (** Bucket math, exposed for boundary tests. *)

  val nbuckets : int
  val bucket_index : int -> int
  val bucket_bounds : int -> int * int
  (** [(lo, hi)] inclusive value range of a bucket. *)
end

(** {1 Registry}

    Metrics are registered by name (idempotently: [make] twice with one name
    yields the same underlying metric).  Handle operations always record;
    the convenience name-keyed helpers ({!cnt}, {!observe}) and all
    instrumentation entry points are gated on {!enabled}. *)

module Counter : sig
  type t

  val make : string -> t
  val add : t -> int -> unit
  val incr : t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val make : string -> t
  val observe : t -> int -> unit
  val hist : t -> Hist.t  (** the live underlying histogram *)
end

val cnt : string -> int -> unit
(** [cnt name n] adds [n] to the named counter — no-op while disabled. *)

val observe : string -> int -> unit
(** Record a sample in the named histogram — no-op while disabled. *)

(** {1 Snapshots} *)

module Snapshot : sig
  type t

  val take : unit -> t
  val diff : t -> t -> t
  (** [diff older newer]: counters and histograms subtract (gauges keep the
      newer value; histogram min/max come from the newer side). *)

  val counter_value : t -> string -> int option
  (** Value of a named counter in the snapshot, if present. *)

  val render : ?title:string -> t -> string
  (** Counter table, histogram table (count/p50/p90/p99/max), and — when the
      [layer.*] counters are present — a FSLib/KernFS/NVM-media/lease-wait
      split with percentages. *)

  val to_json : t -> Json.t
  val of_json : Json.t -> (t, string) result
end

(** {1 Span tracing} *)

val span : cat:string -> name:string -> (unit -> 'a) -> 'a
(** Record a begin/end pair around [f] (sim-time timestamps, current thread
    id) into the ring buffer; transparent while disabled. *)

module Trace : sig
  val set_capacity : int -> unit
  (** Ring-buffer capacity in spans (default 65536); clears the buffer. *)

  val reset : unit -> unit
  val recorded : unit -> int
  val dropped : unit -> int
  (** Spans overwritten because the ring wrapped. *)

  val open_spans : unit -> int
  (** Spans begun but not yet ended — nonzero means an unbalanced trace. *)

  val to_json : unit -> Json.t
  (** Chrome/Perfetto trace: [{"traceEvents": [{"ph":"X", ...}, ...]}],
      timestamps in microseconds of simulated time. *)

  val validate : Json.t -> (unit, string) result
  (** Structural well-formedness: a [traceEvents] array whose elements are
      complete ("X") events with string [name]/[cat] and non-negative
      numeric [ts]/[dur] (begin <= end), plus numeric [pid]/[tid]. *)
end

(** {1 Instrumentation entry points (used by the FS layers)} *)

val with_syscall : string -> (unit -> 'a) -> 'a
(** Wraps one Dispatcher syscall: span + [syscall.<name>] latency histogram;
    the outermost syscall on a thread also attributes its elapsed time to
    the [layer.*] counters (fslib/kernfs/media/lease/total). *)

val with_kernel_crossing : (unit -> 'a) -> 'a
(** Wraps one KernFS gate crossing: span + [gate.crossings] counter; inside
    a syscall, the crossing's time (minus NVM media time spent within) goes
    to [layer.kernfs_ns]. *)

type lease_token

val lease_begin : unit -> lease_token

val lease_end : lease_token -> retries:int -> unit
(** Records [lease.acquires]/[lease.retries]/[lease.wait_ns]; inside a
    syscall the wait (minus media time within) goes to [layer.lease_ns]. *)

val attach_device : Nvm.Device.t -> unit
(** Subscribe to the device's trace stream (multi-subscriber: composes with
    [lib/check]) and account each operation's charged simulated time to
    [nvm.media_ns] and, inside a syscall, to [layer.media_ns].  No-op while
    disabled — call after {!enable}. *)
