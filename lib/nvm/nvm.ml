let page_size = 4096
let line_size = 64

module Perf = struct
  type t = {
    label : string;
    read_latency : int;
    write_latency : int;
    read_bandwidth : float;
    write_bandwidth : float;
    hit_cost : int;
    fence_cost : int;
    write_bw_scale : int -> float;
  }

  (* Optane DC PM loses aggregate write bandwidth beyond ~12 concurrent
     writers (paper Table 1 and §6.1/Fig. 7(e), after Izraelevitz et al.). *)
  let optane_scale n =
    if n <= 12 then 1.0 else Float.max 0.5 (1.0 -. (0.05 *. float_of_int (n - 12)))

  let optane =
    {
      label = "optane-dc-pm";
      read_latency = 305;
      write_latency = 94;
      read_bandwidth = 39.0;
      write_bandwidth = 14.0;
      hit_cost = 2;
      fence_cost = 30;
      write_bw_scale = optane_scale;
    }

  let dram =
    {
      label = "ddr4-dram";
      read_latency = 81;
      write_latency = 86;
      read_bandwidth = 115.0;
      write_bandwidth = 79.0;
      hit_cost = 2;
      fence_cost = 30;
      write_bw_scale = (fun _ -> 1.0);
    }

  let free =
    {
      label = "free";
      read_latency = 0;
      write_latency = 0;
      read_bandwidth = infinity;
      write_bandwidth = infinity;
      hit_cost = 0;
      fence_cost = 0;
      write_bw_scale = (fun _ -> 1.0);
    }
end

(* A fault's kind tells handlers whether the access was *illegal*
   (Protection: MPK/write-window rules, raised by lib/mpk) or merely
   *unlucky* (Media: an uncorrectable NVM error on a poisoned line).  Both
   must be contained the same way — graceful error return — but only Media
   faults make the data itself suspect and feed the coffer health machine. *)
type fault_kind = Protection | Media

exception
  Fault of { addr : int; write : bool; kind : fault_kind; reason : string }

module Device = struct
  type line_state = Dirty | Flushing

  (* Trace events for analysis tooling (lib/check, lib/obs).  Unlike the
     protection hook, a trace subscriber observes every access *after* it
     happened and must never fault; it exists so checkers can mirror the
     device's per-line persistence state without reaching into the
     implementation.  [ns] is the simulated time the operation was charged
     (including any bandwidth-channel wait), measured only while at least
     one subscriber is attached. *)
  type trace_event =
    | T_store of { addr : int; len : int; ns : int }
    | T_nt_store of { addr : int; len : int; ns : int }
    | T_load of { addr : int; len : int; ns : int }
    | T_cas of { addr : int; len : int; ns : int }
        (* successful lock-cmpxchg: a store that is also an acquire/release
           synchronization point (lease words, allocator slot owners) *)
    | T_clwb of { addr : int; ns : int }
    | T_fence of { nflushing : int; ns : int }
    | T_media_fault of { addr : int; write : bool }
    | T_reset

  type t = {
    dev_size : int;
    npages : int;
    dev_perf : Perf.t;
    vol : bytes option array;
    shadow : bytes option array;
    pending : (int, line_state) Hashtbl.t;  (* line index -> state *)
    mutable flushing : int list;  (* lines initiated but not fenced *)
    mutable hook : (addr:int -> write:bool -> unit) option;
    mutable subs : (int * (trace_event -> unit)) list;  (* delivery order *)
    mutable next_sub_id : int;
    mutable legacy_sub : int option;  (* set_trace_hook's managed slot *)
    mutable named : (string * int) list;  (* subscribe_named slots *)
    crash_rng : Sim.Rng.t;
    read_chan : Sim.Resource.t;
    write_chan : Sim.Resource.t;
    line_caches : (int, int array) Hashtbl.t;  (* tid -> direct-mapped tags *)
    mutable pollute_cursor : int;  (* rotating eviction window (per device!) *)
    mutable n_reads : int;
    mutable n_writes : int;
    mutable n_flushes : int;
    mutable n_fences : int;
    mutable n_redundant_flushes : int;  (* clwb of a clean/already-flushing line *)
    mutable n_redundant_fences : int;  (* sfence with nothing flushing *)
    mutable fences_to_drop : int;  (* fault injection: skip the next N sfences *)
    poison : (int, bool) Hashtbl.t;  (* line index -> sticky (media errors) *)
    mutable n_media_faults : int;
    mutable atomic_depth : int;  (* open kernel atomic sections (nesting) *)
    atomic_undo : (int, bytes option) Hashtbl.t;
        (* line -> durable content at first in-section touch (None = unborn) *)
  }

  let create ?(perf = Perf.optane) ?(seed = 7L) ~size () =
    if size <= 0 || size mod page_size <> 0 then
      invalid_arg "Nvm.Device.create: size must be a positive page multiple";
    {
      dev_size = size;
      npages = size / page_size;
      dev_perf = perf;
      vol = Array.make (size / page_size) None;
      shadow = Array.make (size / page_size) None;
      pending = Hashtbl.create 4096;
      flushing = [];
      hook = None;
      subs = [];
      next_sub_id = 0;
      legacy_sub = None;
      named = [];
      crash_rng = Sim.Rng.create seed;
      read_chan = Sim.Resource.create ~name:"nvm-read-bw" ();
      write_chan = Sim.Resource.create ~name:"nvm-write-bw" ();
      line_caches = Hashtbl.create 16;
      pollute_cursor = 0;
      n_reads = 0;
      n_writes = 0;
      n_flushes = 0;
      n_fences = 0;
      n_redundant_flushes = 0;
      n_redundant_fences = 0;
      fences_to_drop = 0;
      poison = Hashtbl.create 8;
      n_media_faults = 0;
      atomic_depth = 0;
      atomic_undo = Hashtbl.create 64;
    }

  let size d = d.dev_size
  let pages d = d.npages
  let perf d = d.dev_perf
  let set_protection_hook d f = d.hook <- Some f
  let clear_protection_hook d = d.hook <- None
  (* Trace dispatch is multi-subscriber so independent layers compose (the
     persistence checker of lib/check and the metrics of lib/obs can both
     listen).  [set_trace_hook] keeps its replace-semantics API as one
     managed subscription slot. *)
  let add_trace_subscriber d f =
    let id = d.next_sub_id in
    d.next_sub_id <- id + 1;
    (* Keep the documented delivery order (anonymous subscribers first,
       named slots last) even when an anonymous subscriber registers after
       a named one: insert before the named suffix. *)
    let named_ids = List.map snd d.named in
    let anon, named =
      List.partition (fun (i, _) -> not (List.mem i named_ids)) d.subs
    in
    d.subs <- anon @ [ (id, f) ] @ named;
    id

  let remove_trace_subscriber d id =
    d.subs <- List.filter (fun (i, _) -> i <> id) d.subs

  let set_trace_hook d f =
    (match d.legacy_sub with
    | Some id -> remove_trace_subscriber d id
    | None -> ());
    d.legacy_sub <- Some (add_trace_subscriber d f)

  let clear_trace_hook d =
    match d.legacy_sub with
    | Some id ->
        remove_trace_subscriber d id;
        d.legacy_sub <- None
    | None -> ()

  (* Named subscription slots for the analysis layers (lib/check "check",
     lib/race "race", ...).  Semantics that make multi-checker runs compose
     without surprises:
     - one slot per name: re-subscribing under the same name replaces the
       previous callback in place;
     - delivery order is anonymous subscribers first (in subscription
       order), then named subscribers in *name* order — deterministic
       regardless of which checker was installed first, so "check"+"race"
       see identical event streams either way. *)
  let reorder_named d =
    let named_ids = List.map snd d.named in
    let anon = List.filter (fun (i, _) -> not (List.mem i named_ids)) d.subs in
    let named_sorted =
      List.sort (fun (a, _) (b, _) -> compare a b) d.named
      |> List.filter_map (fun (_, id) ->
             List.find_opt (fun (j, _) -> j = id) d.subs)
    in
    d.subs <- anon @ named_sorted

  let subscribe_named d ~name f =
    (match List.assoc_opt name d.named with
    | Some id ->
        remove_trace_subscriber d id;
        d.named <- List.remove_assoc name d.named
    | None -> ());
    let id = add_trace_subscriber d f in
    d.named <- (name, id) :: d.named;
    reorder_named d

  let unsubscribe_named d ~name =
    match List.assoc_opt name d.named with
    | Some id ->
        remove_trace_subscriber d id;
        d.named <- List.remove_assoc name d.named
    | None -> ()

  let emit d ev = List.iter (fun (_, f) -> f ev) d.subs

  (* Cost measurement starts here when any subscriber is attached; with none
     attached the untraced path neither reads the clock nor allocates.
     Constructor application stays inside the traced branch for the same
     reason. *)
  let t_begin d = if d.subs == [] then 0 else Sim.now ()

  let trace_store d addr len t0 =
    if d.subs != [] then emit d (T_store { addr; len; ns = Sim.now () - t0 })

  let trace_nt_store d addr len t0 =
    if d.subs != [] then emit d (T_nt_store { addr; len; ns = Sim.now () - t0 })

  let trace_load d addr len t0 =
    if d.subs != [] then emit d (T_load { addr; len; ns = Sim.now () - t0 })

  let vol_page d i =
    match d.vol.(i) with
    | Some b -> b
    | None ->
        let b = Bytes.make page_size '\000' in
        d.vol.(i) <- Some b;
        b

  let shadow_page d i =
    match d.shadow.(i) with
    | Some b -> b
    | None ->
        let b = Bytes.make page_size '\000' in
        d.shadow.(i) <- Some b;
        b

  let check_bounds d addr len =
    if addr < 0 || len < 0 || addr + len > d.dev_size then
      invalid_arg
        (Printf.sprintf "Nvm: access [%d, %d) out of device [0, %d)" addr
           (addr + len) d.dev_size)

  let check_protection d addr write =
    match d.hook with None -> () | Some f -> f ~addr ~write

  (* --- media-error (poison) injection ----------------------------------- *)

  (* A poisoned cache line models an uncorrectable NVM media error: any load
     touching it raises [Fault] with [kind = Media] (the simulated machine
     check), emitted on the trace stream first so checkers and metrics
     observe it.  A store to the line re-maps it (scrub-on-write), clearing
     the poison — unless it was injected [~sticky], which models a
     persistently failing cell and powers the chaos gate's negative
     self-check.  Poison is a property of the medium: it survives [crash]
     and rides along in [snapshot]/[restore]. *)

  let inject_poison ?(sticky = false) d addr =
    check_bounds d addr 1;
    Hashtbl.replace d.poison (addr / line_size) sticky

  let clear_poison d addr = Hashtbl.remove d.poison (addr / line_size)
  let is_poisoned d addr = Hashtbl.mem d.poison (addr / line_size)
  let poisoned_lines d = Hashtbl.length d.poison

  let raise_media d addr ~write =
    d.n_media_faults <- d.n_media_faults + 1;
    if d.subs != [] then emit d (T_media_fault { addr; write });
    raise
      (Fault { addr; write; kind = Media; reason = "uncorrectable media error" })

  let check_poison_read d addr len =
    if Hashtbl.length d.poison > 0 && len > 0 then begin
      let first = addr / line_size and last = (addr + len - 1) / line_size in
      for line = first to last do
        if Hashtbl.mem d.poison line then
          raise_media d (line * line_size) ~write:false
      done
    end

  let heal_poison d line =
    if Hashtbl.length d.poison > 0 then
      match Hashtbl.find_opt d.poison line with
      | Some false -> Hashtbl.remove d.poison line
      | _ -> ()

  (* --- cost accounting ------------------------------------------------- *)

  (* Direct-mapped model of the per-core cache: 4096 lines = 256 KB, enough
     that hot metadata (free lists, inodes, directory pages) hits as it
     would on real hardware. *)
  let cache_slots = 4096

  let line_cache d =
    let tid = Sim.self_tid () in
    match Hashtbl.find_opt d.line_caches tid with
    | Some a -> a
    | None ->
        let a = Array.make cache_slots (-1) in
        Hashtbl.replace d.line_caches tid a;
        a

  (* A kernel crossing displaces part of the working set, not all of it:
     evict a rotating 1/8 window of the simulated cache.  The cursor lives
     on the device, not at module level: a global cursor would carry cache
     state from one simulated world into the next, making identical runs
     time differently (the perf gate's determinism test catches this). *)
  let pollute_window = cache_slots / 8

  let pollute_cache d =
    match Hashtbl.find_opt d.line_caches (Sim.self_tid ()) with
    | Some a ->
        let start = d.pollute_cursor in
        for i = 0 to pollute_window - 1 do
          a.((start + i) land (cache_slots - 1)) <- -1
        done;
        d.pollute_cursor <- (start + pollute_window) land (cache_slots - 1)
    | None -> ()

  let effective_write_bw d =
    d.dev_perf.Perf.write_bandwidth
    *. d.dev_perf.Perf.write_bw_scale (Sim.live_threads ())

  let charge_read d addr len =
    d.n_reads <- d.n_reads + 1;
    if Sim.in_sim () then
      let p = d.dev_perf in
      if len <= line_size then begin
        let line = addr / line_size in
        let cache = line_cache d in
        let slot = line mod cache_slots in
        if cache.(slot) = line then Sim.advance p.Perf.hit_cost
        else begin
          cache.(slot) <- line;
          Sim.advance p.Perf.read_latency
        end
      end
      else begin
        Sim.advance p.Perf.read_latency;
        if p.Perf.read_bandwidth <> infinity then
          Sim.Resource.use d.read_chan
            (int_of_float (float_of_int len /. p.Perf.read_bandwidth))
      end

  let charge_store d addr len =
    d.n_writes <- d.n_writes + 1;
    if Sim.in_sim () then begin
      let p = d.dev_perf in
      Sim.advance p.Perf.hit_cost;
      if len <= line_size then begin
        (* write-allocate in the simulated line cache *)
        let line = addr / line_size in
        let cache = line_cache d in
        cache.(line mod cache_slots) <- line
      end
    end

  (* Reserve write-back bandwidth for one line (when it starts flushing). *)
  let charge_writeback d nbytes =
    if Sim.in_sim () then begin
      let bw = effective_write_bw d in
      if bw <> infinity then
        Sim.Resource.use d.write_chan (int_of_float (float_of_int nbytes /. bw))
    end

  (* --- kernel atomic sections ------------------------------------------- *)

  (* The simulated KernFS updates its metadata (allocation-table owner words,
     the coffer path map, root pages) with multi-fence store sequences; a real
     kernel journals these so a crash never exposes a partial update (the
     paper's trust model, §3.5: KernFS metadata is recovered by the kernel
     itself).  Rather than model a journal byte-for-byte we give the device a
     transaction primitive with exactly the journal's crash semantics: every
     line first touched inside an open section has its pre-section *durable*
     content saved, and a crash that lands inside the section rolls all of
     them back, so kernel metadata updates are crash-atomic.  User-space
     (µFS) writes never run inside a section and keep raw line-granularity
     crash behaviour. *)

  let atomic_note d line =
    if d.atomic_depth > 0 && not (Hashtbl.mem d.atomic_undo line) then begin
      let addr = line * line_size in
      let page = addr / page_size and off = addr mod page_size in
      let saved =
        match d.shadow.(page) with
        | None -> None
        | Some s -> Some (Bytes.sub s off line_size)
      in
      Hashtbl.replace d.atomic_undo line saved
    end

  (* --- volatile view accessors ----------------------------------------- *)

  let mark_dirty d addr len =
    let first = addr / line_size and last = (addr + len - 1) / line_size in
    for line = first to last do
      atomic_note d line;
      heal_poison d line;
      match Hashtbl.find_opt d.pending line with
      | Some _ -> ()
      | None -> Hashtbl.replace d.pending line Dirty
    done

  let scalar_loc d addr len =
    check_bounds d addr len;
    let page = addr / page_size and off = addr mod page_size in
    if off + len > page_size then
      invalid_arg "Nvm: scalar access crosses a page boundary";
    (page, off)

  let read_u8 d addr =
    check_protection d addr false;
    check_poison_read d addr 1;
    let t0 = t_begin d in
    charge_read d addr 1;
    trace_load d addr 1 t0;
    let page, off = scalar_loc d addr 1 in
    Char.code (Bytes.get (vol_page d page) off)

  let read_u16 d addr =
    check_protection d addr false;
    check_poison_read d addr 2;
    let t0 = t_begin d in
    charge_read d addr 2;
    trace_load d addr 2 t0;
    let page, off = scalar_loc d addr 2 in
    Bytes.get_uint16_le (vol_page d page) off

  let read_u32 d addr =
    check_protection d addr false;
    check_poison_read d addr 4;
    let t0 = t_begin d in
    charge_read d addr 4;
    trace_load d addr 4 t0;
    let page, off = scalar_loc d addr 4 in
    Int32.to_int (Bytes.get_int32_le (vol_page d page) off) land 0xFFFFFFFF

  let read_u64 d addr =
    check_protection d addr false;
    check_poison_read d addr 8;
    let t0 = t_begin d in
    charge_read d addr 8;
    trace_load d addr 8 t0;
    let page, off = scalar_loc d addr 8 in
    Int64.to_int (Bytes.get_int64_le (vol_page d page) off)

  let write_u8 d addr v =
    check_protection d addr true;
    let t0 = t_begin d in
    charge_store d addr 1;
    let page, off = scalar_loc d addr 1 in
    Bytes.set (vol_page d page) off (Char.chr (v land 0xFF));
    mark_dirty d addr 1;
    trace_store d addr 1 t0

  let write_u16 d addr v =
    check_protection d addr true;
    let t0 = t_begin d in
    charge_store d addr 2;
    let page, off = scalar_loc d addr 2 in
    Bytes.set_uint16_le (vol_page d page) off (v land 0xFFFF);
    mark_dirty d addr 2;
    trace_store d addr 2 t0

  let write_u32 d addr v =
    check_protection d addr true;
    let t0 = t_begin d in
    charge_store d addr 4;
    let page, off = scalar_loc d addr 4 in
    Bytes.set_int32_le (vol_page d page) off (Int32.of_int v);
    mark_dirty d addr 4;
    trace_store d addr 4 t0

  let write_u64 d addr v =
    check_protection d addr true;
    let t0 = t_begin d in
    charge_store d addr 8;
    let page, off = scalar_loc d addr 8 in
    Bytes.set_int64_le (vol_page d page) off (Int64.of_int v);
    mark_dirty d addr 8;
    trace_store d addr 8 t0

  (* Atomic compare-and-swap (lock cmpxchg): the compare and the store are a
     single linearization point — all simulated-time charging happens first,
     so no other thread can interleave between them. *)
  let cas_u64 d addr ~expected ~desired =
    check_protection d addr true;
    check_poison_read d addr 8 (* cmpxchg loads the line first *);
    let t0 = t_begin d in
    charge_store d addr 8;
    if Sim.in_sim () then Sim.advance 20 (* lock prefix overhead *);
    let page, off = scalar_loc d addr 8 in
    let b = vol_page d page in
    let current = Int64.to_int (Bytes.get_int64_le b off) in
    if current = expected then begin
      Bytes.set_int64_le b off (Int64.of_int desired);
      mark_dirty d addr 8;
      if d.subs != [] then emit d (T_cas { addr; len = 8; ns = Sim.now () - t0 });
      true
    end
    else false

  let blit_to_bytes d addr buf boff len =
    check_bounds d addr len;
    if len > 0 then begin
      check_protection d addr false;
      check_poison_read d addr len;
      let t0 = t_begin d in
      charge_read d addr len;
      trace_load d addr len t0;
      let remaining = ref len and src = ref addr and dst = ref boff in
      while !remaining > 0 do
        let page = !src / page_size and off = !src mod page_size in
        let n = min !remaining (page_size - off) in
        Bytes.blit (vol_page d page) off buf !dst n;
        src := !src + n;
        dst := !dst + n;
        remaining := !remaining - n
      done
    end

  let read_bytes d addr len =
    let b = Bytes.create len in
    blit_to_bytes d addr b 0 len;
    b

  let read_string d addr len = Bytes.unsafe_to_string (read_bytes d addr len)

  let blit_from_bytes d buf boff addr len =
    check_bounds d addr len;
    if len > 0 then begin
      check_protection d addr true;
      let t0 = t_begin d in
      charge_store d addr len;
      let remaining = ref len and src = ref boff and dst = ref addr in
      while !remaining > 0 do
        let page = !dst / page_size and off = !dst mod page_size in
        let n = min !remaining (page_size - off) in
        Bytes.blit buf !src (vol_page d page) off n;
        src := !src + n;
        dst := !dst + n;
        remaining := !remaining - n
      done;
      mark_dirty d addr len;
      trace_store d addr len t0
    end

  let write_string d addr s =
    blit_from_bytes d (Bytes.unsafe_of_string s) 0 addr (String.length s)

  let fill d addr len c =
    check_bounds d addr len;
    if len > 0 then begin
      check_protection d addr true;
      let t0 = t_begin d in
      charge_store d addr len;
      let remaining = ref len and dst = ref addr in
      while !remaining > 0 do
        let page = !dst / page_size and off = !dst mod page_size in
        let n = min !remaining (page_size - off) in
        Bytes.fill (vol_page d page) off n c;
        dst := !dst + n;
        remaining := !remaining - n
      done;
      mark_dirty d addr len;
      trace_store d addr len t0
    end

  let copy_within d ~src ~dst ~len =
    let b = read_bytes d src len in
    blit_from_bytes d b 0 dst len

  (* --- persistence protocol -------------------------------------------- *)

  let persist_line_now d line =
    let addr = line * line_size in
    let page = addr / page_size and off = addr mod page_size in
    match d.vol.(page) with
    | None -> ()  (* never written: both views are zero *)
    | Some v -> Bytes.blit v off (shadow_page d page) off line_size

  let clwb d addr =
    check_bounds d addr 1;
    d.n_flushes <- d.n_flushes + 1;
    let t0 = t_begin d in
    let line = addr / line_size in
    (* Write-back bandwidth is charged BEFORE the line-state transition: the
       bandwidth channel can block (a simulated context switch), and a fence
       issued by another thread during that wait must see — and let trace
       subscribers see — either the whole transition or none of it.  The
       state change and its trace event stay adjacent, with no scheduling
       point between them; the state is re-read after the wait because the
       interleaved thread may have changed it. *)
    if Hashtbl.find_opt d.pending line = Some Dirty then
      charge_writeback d line_size;
    (match Hashtbl.find_opt d.pending line with
    | Some Dirty ->
        Hashtbl.replace d.pending line Flushing;
        d.flushing <- line :: d.flushing
    | Some Flushing | None -> d.n_redundant_flushes <- d.n_redundant_flushes + 1);
    (* The event fires before the trailing advance (keeping its ordering
       relative to the line-state change), so that known constant is folded
       into the reported cost instead of measured. *)
    (if d.subs != [] then
       let tail = if Sim.in_sim () then 4 else 0 in
       emit d (T_clwb { addr; ns = Sim.now () - t0 + tail }));
    if Sim.in_sim () then Sim.advance 4

  let flush_range d addr len =
    if len > 0 then begin
      let first = addr / line_size and last = (addr + len - 1) / line_size in
      for line = first to last do
        clwb d (line * line_size)
      done
    end

  (* Fault injection: make the next [n] sfences complete no-ops (no count,
     no trace event, nothing persisted — flushing lines stay pending), as if
     the programmer forgot the fence.  Used by the crash checker's negative
     tests to prove a missing-fence bug is observable as a divergence. *)
  let inject_drop_fences d n = d.fences_to_drop <- n

  let sfence d =
    if d.fences_to_drop > 0 then d.fences_to_drop <- d.fences_to_drop - 1
    else begin
    d.n_fences <- d.n_fences + 1;
    let had_flushing = d.flushing <> [] in
    if not had_flushing then d.n_redundant_fences <- d.n_redundant_fences + 1;
    (if d.subs != [] then
       let p = d.dev_perf in
       let tail =
         if Sim.in_sim () then
           p.Perf.fence_cost + if had_flushing then p.Perf.write_latency else 0
         else 0
       in
       emit d (T_fence { nflushing = List.length d.flushing; ns = tail }));
    List.iter
      (fun line ->
        persist_line_now d line;
        Hashtbl.remove d.pending line)
      d.flushing;
    d.flushing <- [];
    if Sim.in_sim () then begin
      let p = d.dev_perf in
      Sim.advance (p.Perf.fence_cost + if had_flushing then p.Perf.write_latency else 0)
    end
    end

  (* Open a kernel atomic section (nestable; only the outermost commits). *)
  let begin_atomic d = d.atomic_depth <- d.atomic_depth + 1

  (* Undo every line touched since the outermost [begin_atomic]: restore its
     pre-section durable content, forget its pending state.  Volatile bytes
     are left alone — the caller either crashes (which rebuilds the volatile
     view from the durable one) or continues with the store-visible state it
     already had. *)
  let rollback_atomic d =
    Hashtbl.iter
      (fun line saved ->
        Hashtbl.remove d.pending line;
        let addr = line * line_size in
        let page = addr / page_size and off = addr mod page_size in
        match saved with
        | Some b -> Bytes.blit b 0 (shadow_page d page) off line_size
        | None -> (
            match d.shadow.(page) with
            | None -> ()
            | Some s -> Bytes.fill s off line_size '\000'))
      d.atomic_undo;
    d.flushing <-
      List.filter (fun l -> not (Hashtbl.mem d.atomic_undo l)) d.flushing;
    Hashtbl.reset d.atomic_undo;
    d.atomic_depth <- 0

  (* Close the section, making all its writes durable together (the journal
     commit).  Leftover pending section lines are flushed through the public
     clwb/sfence path so trace subscribers and stats stay coherent; if a
     subscriber aborts mid-commit (crash exploration), the section is still
     open and the next [crash] rolls the whole update back — a crash during
     journal commit aborts the transaction. *)
  let commit_atomic d =
    if d.atomic_depth <= 0 then
      invalid_arg "Nvm.Device.commit_atomic: no open section";
    if d.atomic_depth > 1 then d.atomic_depth <- d.atomic_depth - 1
    else begin
      let need_fence = ref false in
      let lines = Hashtbl.fold (fun l _ acc -> l :: acc) d.atomic_undo [] in
      List.iter
        (fun line ->
          match Hashtbl.find_opt d.pending line with
          | Some Dirty ->
              clwb d (line * line_size);
              need_fence := true
          | Some Flushing -> need_fence := true
          | None -> ())
        (List.sort compare lines);
      if !need_fence then sfence d;
      d.atomic_depth <- 0;
      Hashtbl.reset d.atomic_undo
    end

  (* Abort on a non-crash exception escaping the section (e.g. a protection
     fault surfaced as EIO): the partial kernel update must not become
     durable. *)
  let abort_atomic d =
    if d.atomic_depth > 1 then d.atomic_depth <- d.atomic_depth - 1
    else if d.atomic_depth = 1 then rollback_atomic d

  let in_atomic d = d.atomic_depth > 0

  let nt_write_u64 d addr v =
    check_protection d addr true;
    let t0 = t_begin d in
    charge_store d addr 8;
    let page, off = scalar_loc d addr 8 in
    Bytes.set_int64_le (vol_page d page) off (Int64.of_int v);
    let line = addr / line_size in
    (* As in [clwb]: charge (and possibly block) before the state change so
       the transition and its trace event are not separated by a scheduling
       point an interleaved fence could slip through. *)
    if Hashtbl.find_opt d.pending line <> Some Flushing then
      charge_writeback d line_size;
    atomic_note d line;
    heal_poison d line;
    (match Hashtbl.find_opt d.pending line with
    | Some Flushing -> ()
    | Some Dirty | None ->
        Hashtbl.replace d.pending line Flushing;
        d.flushing <- line :: d.flushing);
    trace_nt_store d addr 8 t0

  let nt_write_string d addr s =
    let len = String.length s in
    check_bounds d addr len;
    if len > 0 then begin
      check_protection d addr true;
      let t0 = t_begin d in
      d.n_writes <- d.n_writes + 1;
      if Sim.in_sim () then Sim.advance d.dev_perf.Perf.hit_cost;
      let remaining = ref len and src = ref 0 and dst = ref addr in
      while !remaining > 0 do
        let page = !dst / page_size and off = !dst mod page_size in
        let n = min !remaining (page_size - off) in
        Bytes.blit (Bytes.unsafe_of_string s) !src (vol_page d page) off n;
        src := !src + n;
        dst := !dst + n;
        remaining := !remaining - n
      done;
      (* Charge before the per-line transitions (see [clwb]): the bandwidth
         wait can context-switch, and the state changes plus the trace event
         must form one unseparated step. *)
      charge_writeback d len;
      let first = addr / line_size and last = (addr + len - 1) / line_size in
      for line = first to last do
        atomic_note d line;
        heal_poison d line;
        match Hashtbl.find_opt d.pending line with
        | Some Flushing -> ()
        | Some Dirty | None ->
            Hashtbl.replace d.pending line Flushing;
            d.flushing <- line :: d.flushing
      done;
      trace_nt_store d addr len t0
    end

  let persist_range d addr len =
    flush_range d addr len;
    sfence d

  (* Non-temporal memset: one bandwidth reservation for the whole range,
     durable after the next fence (used to zero fresh structure pages). *)
  let nt_fill d addr len c =
    check_bounds d addr len;
    if len > 0 then begin
      check_protection d addr true;
      let t0 = t_begin d in
      d.n_writes <- d.n_writes + 1;
      if Sim.in_sim () then Sim.advance d.dev_perf.Perf.hit_cost;
      let remaining = ref len and dst = ref addr in
      while !remaining > 0 do
        let page = !dst / page_size and off = !dst mod page_size in
        let n = min !remaining (page_size - off) in
        Bytes.fill (vol_page d page) off n c;
        dst := !dst + n;
        remaining := !remaining - n
      done;
      (* Same ordering discipline as [nt_write_string]. *)
      charge_writeback d len;
      let first = addr / line_size and last = (addr + len - 1) / line_size in
      for line = first to last do
        atomic_note d line;
        heal_poison d line;
        match Hashtbl.find_opt d.pending line with
        | Some Flushing -> ()
        | Some Dirty | None ->
            Hashtbl.replace d.pending line Flushing;
            d.flushing <- line :: d.flushing
      done;
      trace_nt_store d addr len t0
    end

  let persist_all d =
    let lines = Hashtbl.fold (fun line _ acc -> line :: acc) d.pending [] in
    List.iter (fun line -> persist_line_now d line) lines;
    Hashtbl.reset d.pending;
    d.flushing <- [];
    if d.subs != [] then emit d T_reset

  let pending_lines d = Hashtbl.length d.pending

  (* Line-grained state queries for software that keeps its own persist
     bookkeeping (the µFS commit-path batcher).  These model a library
     tracking which of its *own* stores are already flushed / fenced; the
     device's pending table is the authoritative version of that
     bookkeeping, so exposing it keeps the batcher honest even when a
     kernel call fences in the middle of a user-space operation. *)
  let flushing_lines d = List.length d.flushing

  let line_needs_flush d addr =
    match Hashtbl.find_opt d.pending (addr / line_size) with
    | Some Dirty -> true
    | Some Flushing | None -> false

  type crash_policy = [ `Random | `Drop_all | `Keep_all ]

  let crash ?(policy = `Random) d =
    (* A crash inside an open kernel atomic section aborts it: none of the
       section's writes survive, regardless of policy. *)
    if d.atomic_depth > 0 then rollback_atomic d;
    let keep _line =
      match policy with
      | `Keep_all -> true
      | `Drop_all -> false
      | `Random -> Sim.Rng.bool d.crash_rng
    in
    Hashtbl.iter
      (fun line _state -> if keep line then persist_line_now d line)
      d.pending;
    Hashtbl.reset d.pending;
    d.flushing <- [];
    if d.subs != [] then emit d T_reset;
    (* Volatile view := persistent view. *)
    for i = 0 to d.npages - 1 do
      match (d.vol.(i), d.shadow.(i)) with
      | None, _ -> ()
      | Some v, Some s -> Bytes.blit s 0 v 0 page_size
      | Some v, None -> Bytes.fill v 0 page_size '\000'
    done

  (* Reseed the crash-policy PRNG so each explored crash point draws a
     reproducible, independent line-survival pattern. *)
  let set_crash_seed d seed = Sim.Rng.set_state d.crash_rng seed

  (* ---- snapshot / restore (crash-exploration branching) ----------------- *)

  (* A snapshot captures everything that determines future device behaviour:
     both memory views (sparsely — only materialized pages), the per-line
     pending/flushing persistence state, the crash PRNG, and the stats
     counters.  The per-thread line caches and bandwidth channels are *not*
     captured: they only affect simulated cost, and every explored branch
     runs in a fresh [Sim] world anyway. *)
  type snapshot = {
    snap_vol : (int * bytes) array;
    snap_shadow : (int * bytes) array;
    snap_pending : (int * line_state) array;
    snap_flushing : int list;
    snap_rng : int64;
    snap_stats : int array;
    snap_poison : (int * bool) array;
  }

  let snapshot d =
    let sparse arr =
      let acc = ref [] in
      Array.iteri
        (fun i p -> match p with
          | Some b -> acc := (i, Bytes.copy b) :: !acc
          | None -> ())
        arr;
      Array.of_list !acc
    in
    {
      snap_vol = sparse d.vol;
      snap_shadow = sparse d.shadow;
      snap_pending =
        Array.of_list
          (Hashtbl.fold (fun l s acc -> (l, s) :: acc) d.pending []);
      snap_flushing = d.flushing;
      snap_rng = Sim.Rng.get_state d.crash_rng;
      snap_stats =
        [| d.n_reads; d.n_writes; d.n_flushes; d.n_fences;
           d.n_redundant_flushes; d.n_redundant_fences; d.n_media_faults |];
      snap_poison =
        Array.of_list
          (Hashtbl.fold (fun l s acc -> (l, s) :: acc) d.poison []);
    }

  (* Restore is destructive and reusable: the same snapshot can seed any
     number of branches, so restored pages are fresh copies. *)
  let restore d snap =
    Array.fill d.vol 0 d.npages None;
    Array.fill d.shadow 0 d.npages None;
    Array.iter (fun (i, b) -> d.vol.(i) <- Some (Bytes.copy b)) snap.snap_vol;
    Array.iter
      (fun (i, b) -> d.shadow.(i) <- Some (Bytes.copy b))
      snap.snap_shadow;
    Hashtbl.reset d.pending;
    Array.iter (fun (l, s) -> Hashtbl.replace d.pending l s) snap.snap_pending;
    d.flushing <- snap.snap_flushing;
    Sim.Rng.set_state d.crash_rng snap.snap_rng;
    (match snap.snap_stats with
    | [| r; w; fl; fe; rfl; rfe; mf |] ->
        d.n_reads <- r;
        d.n_writes <- w;
        d.n_flushes <- fl;
        d.n_fences <- fe;
        d.n_redundant_flushes <- rfl;
        d.n_redundant_fences <- rfe;
        d.n_media_faults <- mf
    | _ -> ());
    Hashtbl.reset d.poison;
    Array.iter (fun (l, s) -> Hashtbl.replace d.poison l s) snap.snap_poison;
    d.fences_to_drop <- 0;
    d.atomic_depth <- 0;
    Hashtbl.reset d.atomic_undo;
    Hashtbl.reset d.line_caches;
    if d.subs != [] then emit d T_reset

  (* ---- host-file image persistence (for the CLI tools) ----------------- *)

  let image_magic = "NVMIMG01"

  (* Persist the durable (shadow) view sparsely to a host file. *)
  let save_image d path =
    persist_all d;
    let oc = open_out_bin path in
    output_string oc image_magic;
    output_binary_int oc d.npages;
    Array.iteri
      (fun i page ->
        match page with
        | None -> ()
        | Some b ->
            output_binary_int oc i;
            output_bytes oc b)
      d.shadow;
    output_binary_int oc (-1);
    close_out oc

  let load_image ?(perf = Perf.optane) ?(seed = 7L) path =
    let ic = open_in_bin path in
    let magic = really_input_string ic (String.length image_magic) in
    if magic <> image_magic then failwith "Nvm: bad image magic";
    let npages = input_binary_int ic in
    let d = create ~perf ~seed ~size:(npages * page_size) () in
    let rec load_pages () =
      let i = input_binary_int ic in
      if i >= 0 then begin
        let b = Bytes.create page_size in
        really_input ic b 0 page_size;
        d.shadow.(i) <- Some b;
        d.vol.(i) <- Some (Bytes.copy b);
        load_pages ()
      end
    in
    load_pages ();
    close_in ic;
    d

  let stat_reads d = d.n_reads
  let stat_writes d = d.n_writes
  let stat_flushes d = d.n_flushes
  let stat_fences d = d.n_fences
  let stat_redundant_flushes d = d.n_redundant_flushes
  let stat_redundant_fences d = d.n_redundant_fences
  let stat_media_faults d = d.n_media_faults

  let reset_stats d =
    d.n_reads <- 0;
    d.n_writes <- 0;
    d.n_flushes <- 0;
    d.n_fences <- 0;
    d.n_redundant_flushes <- 0;
    d.n_redundant_fences <- 0;
    d.n_media_faults <- 0
end
