(** Simulated byte-addressable non-volatile memory.

    The device keeps two views of every page: the {e volatile} view (what CPU
    loads see, i.e. caches + media) and the {e persistent} view (what
    survives a crash).  Stores only reach the persistent view through the
    cache-line write-back protocol: [store; clwb; sfence] or a non-temporal
    store followed by [sfence].  {!Device.crash} discards the volatile view —
    with each pending (unflushed) line independently and pseudo-randomly
    either written back or lost, exactly the non-determinism that makes
    update ordering matter on real NVM.

    Every access is charged simulated time according to a {!Perf} cost model
    (calibrated to the paper's Table 1 for Optane DC PM and DDR4 DRAM), and
    is passed to a protection hook so the MPK layer can enforce region
    permissions. *)

val page_size : int
(** 4096 bytes. *)

val line_size : int
(** 64 bytes (one cache line). *)

(** Cost model. *)
module Perf : sig
  type t = {
    label : string;
    read_latency : int;  (** ns charged on a line-cache miss *)
    write_latency : int;  (** ns charged when a line is written back *)
    read_bandwidth : float;  (** bytes/ns (= GB/s) *)
    write_bandwidth : float;  (** bytes/ns *)
    hit_cost : int;  (** ns for a cache hit / store into cache *)
    fence_cost : int;  (** ns for sfence *)
    write_bw_scale : int -> float;
        (** concurrency-dependent scaling of write bandwidth; Optane DC PM
            loses write bandwidth beyond ~12 concurrent writers (paper §6.1,
            Fig. 7(e)) *)
  }

  val optane : t
  (** Table 1: 305 ns read, 39 GB/s read bw, 94 ns write, 14 GB/s write bw. *)

  val dram : t
  (** Table 1: 81/86 ns, 115/79 GB/s; no degradation. *)

  val free : t
  (** Zero-cost model for functional unit tests. *)
end

(** What kind of hardware event a {!Fault} models: [Protection] is an access
    violation (raised by the MPK layer's protection hook), [Media] an
    uncorrectable NVM media error on a poisoned line (raised by the device
    itself on a load).  Handlers contain both the same way — graceful error
    return — but only [Media] makes the underlying data suspect and feeds
    the coffer health machinery. *)
type fault_kind = Protection | Media

(** Raised on an access violation (the simulated equivalent of a SIGSEGV
    delivered on an MPK or page-permission fault) or on a load from a
    poisoned line (the simulated machine check of an uncorrectable media
    error); see {!fault_kind}. *)
exception
  Fault of { addr : int; write : bool; kind : fault_kind; reason : string }

module Device : sig
  type t

  val create : ?perf:Perf.t -> ?seed:int64 -> size:int -> unit -> t
  (** [create ~size ()] makes a device of [size] bytes ([size] must be
      page-aligned).  Pages are allocated lazily, so large address spaces are
      cheap until touched. *)

  val size : t -> int
  val pages : t -> int
  val perf : t -> Perf.t

  val set_protection_hook : t -> (addr:int -> write:bool -> unit) -> unit
  (** Installed by the MPK layer; called once per access with the first
      byte's address.  May raise {!Fault}. *)

  val clear_protection_hook : t -> unit

  (** Trace events observed by analysis tooling (the checkers of
      [lib/check], the metrics of [lib/obs]).  An event fires after each
      access/persistence operation completes, so a checker can mirror the
      device's dirty → flushing → durable line state without access to the
      implementation.  [ns] is the simulated time charged to the operation,
      including any bandwidth-channel wait; it is measured only while at
      least one subscriber is attached (and is 0 outside a simulation). *)
  type trace_event =
    | T_store of { addr : int; len : int; ns : int }  (** cached store *)
    | T_nt_store of { addr : int; len : int; ns : int }
        (** non-temporal store *)
    | T_load of { addr : int; len : int; ns : int }
    | T_cas of { addr : int; len : int; ns : int }
        (** successful lock-cmpxchg: a store that is also an
            acquire/release synchronization point (lease words, allocator
            slot-owner words); a failed CAS emits nothing *)
    | T_clwb of { addr : int; ns : int }
    | T_fence of { nflushing : int; ns : int }
        (** lines persisted by this fence *)
    | T_media_fault of { addr : int; write : bool }
        (** a load touched a poisoned line; fires just before the [Media]
            {!Fault} is raised *)
    | T_reset  (** all pending lines resolved (crash / persist_all) *)

  val add_trace_subscriber : t -> (trace_event -> unit) -> int
  (** Register a trace subscriber; events are delivered to every subscriber
      in registration order.  Returns an id for {!remove_trace_subscriber}. *)

  val remove_trace_subscriber : t -> int -> unit
  (** Unregister; unknown ids are ignored. *)

  val set_trace_hook : t -> (trace_event -> unit) -> unit
  (** Legacy single-hook API, kept as one managed subscription slot: setting
      replaces only the hook previously installed through this function, and
      composes with {!add_trace_subscriber} subscriptions. *)

  val clear_trace_hook : t -> unit

  val subscribe_named : t -> name:string -> (trace_event -> unit) -> unit
  (** Named subscription slot for the analysis layers (lib/check uses
      ["check"], lib/race uses ["race"]).  One slot per name: subscribing
      again under the same name replaces the previous callback.  Delivery
      order is anonymous subscribers first (in subscription order), then
      named subscribers in {e name} order — deterministic regardless of
      install order, so co-installed checkers see identical event
      streams. *)

  val unsubscribe_named : t -> name:string -> unit
  (** Drop a named slot; unknown names are ignored. *)

  (** {2 Loads and stores (volatile view)}

      Scalars are little-endian and must not cross a page boundary. *)

  val read_u8 : t -> int -> int
  val read_u16 : t -> int -> int
  val read_u32 : t -> int -> int
  val read_u64 : t -> int -> int
  val write_u8 : t -> int -> int -> unit
  val write_u16 : t -> int -> int -> unit
  val write_u32 : t -> int -> int -> unit
  val write_u64 : t -> int -> int -> unit

  val cas_u64 : t -> int -> expected:int -> desired:int -> bool
  (** Atomic compare-and-swap on a u64 (the [lock cmpxchg] the µFS lease
      locks are built on).  The compare+store pair is one linearization
      point in simulated time. *)

  val read_bytes : t -> int -> int -> bytes
  val read_string : t -> int -> int -> string
  val blit_to_bytes : t -> int -> bytes -> int -> int -> unit
  val write_string : t -> int -> string -> unit
  val blit_from_bytes : t -> bytes -> int -> int -> int -> unit
  val fill : t -> int -> int -> char -> unit
  val copy_within : t -> src:int -> dst:int -> len:int -> unit

  (** {2 Persistence protocol} *)

  val clwb : t -> int -> unit
  (** Initiate write-back of the cache line containing [addr].  Durable only
      after the next {!sfence}. *)

  val flush_range : t -> int -> int -> unit
  (** [clwb] every line of [addr, addr+len). *)

  val sfence : t -> unit
  (** Complete all initiated write-backs: they reach the persistent view. *)

  val nt_write_u64 : t -> int -> int -> unit
  (** Non-temporal store: bypasses the cache; durable after next fence. *)

  val nt_write_string : t -> int -> string -> unit

  val nt_fill : t -> int -> int -> char -> unit
  (** Non-temporal memset (durable after next fence). *)

  val persist_range : t -> int -> int -> unit
  (** [flush_range] + [sfence]: the common "make this durable now" helper. *)

  val persist_all : t -> unit
  (** Make every written line durable (mkfs-time convenience). *)

  val pending_lines : t -> int
  (** Number of lines not yet durable (observable for tests). *)

  val flushing_lines : t -> int
  (** Number of lines flushed but not yet fenced.  When this is 0 an
      [sfence] would be a no-op (and is counted redundant); persist
      batchers use it to elide exactly those fences. *)

  val line_needs_flush : t -> int -> bool
  (** [line_needs_flush d addr] is true iff the cache line holding [addr]
      has stores that no [clwb] has reached yet (state Dirty).  A line
      already Flushing will persist its latest contents at the next fence,
      so re-flushing it is unnecessary; a clean line has nothing volatile.
      Persist batchers use this to coalesce same-cacheline flushes. *)

  (** {2 Crash simulation} *)

  type crash_policy =
    [ `Random  (** each pending line independently persists or is lost *)
    | `Drop_all  (** no pending line persists *)
    | `Keep_all  (** every pending line persists (power-fail-safe cache) *) ]

  val crash : ?policy:crash_policy -> t -> unit
  (** Simulate power failure: the volatile view is replaced by the persistent
      view; pending lines are resolved according to [policy] (default
      [`Random]). *)

  val set_crash_seed : t -> int64 -> unit
  (** Reseed the crash-policy PRNG, so each explored crash point draws a
      reproducible, independent [`Random] line-survival pattern. *)

  val inject_drop_fences : t -> int -> unit
  (** Fault injection: the next [n] calls to {!sfence} are complete no-ops
      (nothing persists, no stat, no trace event) — the simulated equivalent
      of a forgotten fence.  [inject_drop_fences d 0] disarms. *)

  (** {2 Media-error (poison) injection}

      A poisoned cache line models an uncorrectable NVM media error: any
      load touching it raises {!Fault} with [kind = Media] (after emitting
      {!T_media_fault} to trace subscribers).  A store to the line re-maps
      it (scrub-on-write) and clears the poison, unless it was injected
      [~sticky] — a persistently failing cell, used by negative
      self-checks.  Poison is a property of the medium: it survives
      {!crash} and is captured by {!snapshot}/{!restore}. *)

  val inject_poison : ?sticky:bool -> t -> int -> unit
  (** Poison the line containing [addr] ([sticky] defaults to [false]). *)

  val clear_poison : t -> int -> unit
  (** Clear any poison on the line containing [addr] (even sticky). *)

  val is_poisoned : t -> int -> bool

  val poisoned_lines : t -> int
  (** Number of currently poisoned lines. *)

  (** {2 Kernel atomic sections}

      The trusted kernel (KernFS) updates its metadata — allocation-table
      owner words, the coffer path map, root pages — with multi-fence store
      sequences that a real kernel would journal; a crash must never expose a
      partial update (the paper's §3.5 trust model: KernFS recovers its own
      metadata).  An atomic section gives exactly the journal's crash
      semantics without modelling journal bytes: all writes issued inside the
      section become durable together at {!commit_atomic}, and a {!crash}
      that lands inside an open section (or a {!commit_atomic} interrupted by
      a trace subscriber) rolls every one of them back.  Sections nest; only
      the outermost commit/abort acts.  µFS user-space writes run outside any
      section and keep raw line-granularity crash behaviour. *)

  val begin_atomic : t -> unit
  (** Open (or nest) a kernel atomic section. *)

  val commit_atomic : t -> unit
  (** Close the section.  At the outermost level, flushes any of the
      section's still-pending lines through the normal clwb/sfence path so
      the whole update is durable on return.  Raises [Invalid_argument] if no
      section is open. *)

  val abort_atomic : t -> unit
  (** Close the section discarding its durable effects (used when an
      exception escapes a kernel operation): pre-section durable contents are
      restored and the section's lines leave the pending set.  Volatile
      (store-visible) bytes are left as written. *)

  val in_atomic : t -> bool
  (** Whether a section is currently open. *)

  (** {2 Snapshot / restore (crash-exploration branching)} *)

  type snapshot
  (** Deep copy of everything that determines future device behaviour: both
      memory views (sparse), the pending/flushing line sets, the crash PRNG
      state, and the stats counters.  Per-thread line caches and bandwidth
      channel state are deliberately excluded — they only affect simulated
      cost and every explored branch runs in a fresh [Sim] world. *)

  val snapshot : t -> snapshot

  val restore : t -> snapshot -> unit
  (** Rewind the device to [snapshot].  The snapshot is not consumed: the
      same one can seed any number of branches.  Also clears any pending
      fence-drop injection and emits {!T_reset} to subscribers. *)

  (** {2 Host-file images (CLI tool persistence)} *)

  val save_image : t -> string -> unit
  (** Flush everything and write the durable view (sparsely) to a host
      file, so the CLI tools can reopen the simulated NVM across runs. *)

  val load_image : ?perf:Perf.t -> ?seed:int64 -> string -> t

  (** {2 Cost accounting} *)

  val pollute_cache : t -> unit
  (** Invalidate the current thread's simulated line cache — models the
      cache pollution of a context switch into the kernel (paper §6.1). *)

  val stat_reads : t -> int
  val stat_writes : t -> int
  val stat_flushes : t -> int
  val stat_fences : t -> int

  val stat_redundant_flushes : t -> int
  (** [clwb]s that found their line clean or already flushing — wasted
      persistence ops the paper's flush-then-fence discipline tries to
      avoid. *)

  val stat_redundant_fences : t -> int
  (** [sfence]s issued with no write-back in flight. *)

  val stat_media_faults : t -> int
  (** Loads that tripped a poisoned line and raised a [Media] fault. *)

  val reset_stats : t -> unit
end
