(* Deterministic operation scripts for crash-consistency checking.

   A script is a list of whole-syscall operations (create-with-data, pwrite,
   append, mkdir, rename, unlink, rmdir) that both the real file system and
   the crashmc oracle model can apply.  Scripts come in two flavours: three
   named workloads modelled on the FxMark / Filebench / fslab patterns used
   by the benchmarks, and a seeded weighted random generator shared with the
   property tests.  Everything is a pure function of the seed, so a crash
   point found by `bin/zofs_crash` can be replayed exactly. *)

module V = Treasury.Vfs

type op =
  | Mkdir of string
  | Create of { path : string; mode : int; data : string }
      (* open O_CREAT|O_WRONLY|O_TRUNC + write all + close *)
  | Pwrite of { path : string; off : int; data : string }
  | Append of { path : string; data : string }
  | Unlink of string
  | Rmdir of string
  | Rename of { src : string; dst : string }

type script = { sname : string; setup : op list; body : op list }

let op_to_string = function
  | Mkdir p -> Printf.sprintf "mkdir %s" p
  | Create { path; mode; data } ->
      Printf.sprintf "create %s mode=%o len=%d" path mode (String.length data)
  | Pwrite { path; off; data } ->
      Printf.sprintf "pwrite %s off=%d len=%d" path off (String.length data)
  | Append { path; data } ->
      Printf.sprintf "append %s len=%d" path (String.length data)
  | Unlink p -> Printf.sprintf "unlink %s" p
  | Rmdir p -> Printf.sprintf "rmdir %s" p
  | Rename { src; dst } -> Printf.sprintf "rename %s -> %s" src dst

(* Apply one op through the VFS.  [Ok] means the syscall chain was
   acknowledged to the application; errors are returned (not raised) so the
   caller can decide whether an errno is part of the expected run. *)
let apply fs op : (unit, Treasury.Errno.t) result =
  let ( let* ) = Result.bind in
  match op with
  | Mkdir p -> V.mkdir fs p 0o755
  | Create { path; mode; data } ->
      let* fd = V.openf fs path [ O_CREAT; O_WRONLY; O_TRUNC ] mode in
      let* n = V.write fs fd data in
      let* () = V.close fs fd in
      if n = String.length data then Ok () else Error Treasury.Errno.EIO
  | Pwrite { path; off; data } ->
      let* fd = V.openf fs path [ O_WRONLY ] 0 in
      let res = V.pwrite fs fd ~off data in
      let* () = V.close fs fd in
      let* n = res in
      if n = String.length data then Ok () else Error Treasury.Errno.EIO
  | Append { path; data } -> V.append_file fs path data
  | Unlink p -> V.unlink fs p
  | Rmdir p -> V.rmdir fs p
  | Rename { src; dst } -> V.rename fs src dst

(* Paths an op touches — the oracle probes these after recovery, which
   catches path-map vs. directory disagreements readdir alone would miss. *)
let touched = function
  | Mkdir p | Unlink p | Rmdir p -> [ p ]
  | Create { path; _ } | Pwrite { path; _ } | Append { path; _ } -> [ path ]
  | Rename { src; dst } -> [ src; dst ]

(* Deterministic per-op payloads: position-dependent so torn writes are
   visible at byte granularity. *)
let payload ~tag len =
  String.init len (fun i -> Char.chr (97 + ((tag * 131) + (i * 7)) mod 26))

(* --- named workloads ---------------------------------------------------- *)

(* FxMark-style metadata churn (MWCL/MWUL/MWRL): per-"core" private
   directories, create/rename/unlink cycles of small files. *)
let fxmark () =
  let setup = List.init 3 (fun c -> Mkdir (Printf.sprintf "/d%d" c)) in
  let body = ref [] in
  let push op = body := op :: !body in
  for c = 0 to 2 do
    let dir = Printf.sprintf "/d%d" c in
    for i = 0 to 3 do
      push
        (Create
           {
             path = Printf.sprintf "%s/f%d" dir i;
             mode = 0o644;
             data = payload ~tag:((c * 10) + i) (64 + (i * 80));
           })
    done;
    push
      (Rename
         { src = dir ^ "/f0"; dst = Printf.sprintf "/d%d/r0" ((c + 1) mod 3) });
    push (Unlink (dir ^ "/f1"))
  done;
  { sname = "fxmark"; setup; body = List.rev !body }

(* Filebench varmail-style: create a mail file, append to it twice, delete
   an older one; appends grow across a page boundary. *)
let filebench () =
  let setup = [ Mkdir "/mail" ] in
  let body = ref [] in
  let push op = body := op :: !body in
  for i = 0 to 5 do
    let path = Printf.sprintf "/mail/m%d" i in
    push (Create { path; mode = 0o644; data = payload ~tag:i 200 });
    push (Append { path; data = payload ~tag:(i + 100) 150 });
    if i mod 2 = 0 then
      push (Pwrite { path; off = 40; data = payload ~tag:(i + 200) 64 });
    if i >= 2 then push (Unlink (Printf.sprintf "/mail/m%d" (i - 2)))
  done;
  { sname = "filebench"; setup; body = List.rev !body }

(* fslab-style mixed namespace work, including 0600 files that land in their
   own sub-coffers (exercising cross-coffer refs and G3 recovery). *)
let fslab () =
  let setup = [ Mkdir "/a"; Mkdir "/a/b"; Mkdir "/c" ] in
  let body =
    [
      Create { path = "/a/pub"; mode = 0o644; data = payload ~tag:1 300 };
      Create { path = "/a/priv"; mode = 0o600; data = payload ~tag:2 120 };
      Create { path = "/a/b/deep"; mode = 0o644; data = payload ~tag:3 80 };
      Mkdir "/a/b/sub";
      Rename { src = "/a/pub"; dst = "/c/pub" };
      Append { path = "/c/pub"; data = payload ~tag:4 4000 };
      Create { path = "/c/priv2"; mode = 0o600; data = payload ~tag:5 60 };
      Unlink "/a/priv";
      Pwrite { path = "/c/pub"; off = 4096; data = payload ~tag:6 100 };
      Rename { src = "/a/b/deep"; dst = "/a/b/sub/deep" };
      Rmdir "/c2" (* expected ENOENT: errors must be deterministic too *);
      Unlink "/c/priv2";
      Rmdir "/a/b/sub/deep" (* ENOTDIR *);
      Create { path = "/a/fresh"; mode = 0o644; data = payload ~tag:7 40 };
    ]
  in
  { sname = "fslab"; setup; body }

let named = [ ("fxmark", fxmark); ("filebench", filebench); ("fslab", fslab) ]

let find name =
  match List.assoc_opt name named with
  | Some f -> f ()
  | None -> invalid_arg ("Opscript.find: unknown script " ^ name)

(* --- seeded random generator -------------------------------------------- *)

(* Weighted random op sequences over a bounded namespace.  The generator
   tracks the namespace it has built so most ops hit live paths, with a
   deliberate minority targeting missing ones (deterministic errno paths).
   [mode600_every]: roughly one in that many creates is 0600, putting the
   file in its own sub-coffer. *)
let generate ?(mode600_every = 8) ?(max_len = 6000) ~seed ~nops () =
  let rng = Sim.Rng.create seed in
  let dirs = ref [ "" ] in (* "" is the root; paths are dir ^ "/" ^ name *)
  let files = ref [] in (* (path, size) *)
  let n_dirs = ref 0 and n_files = ref 0 in
  let ops = ref [] in
  let pick l = List.nth l (Sim.Rng.int rng (List.length l)) in
  let fresh_file dir =
    incr n_files;
    Printf.sprintf "%s/f%d" dir !n_files
  in
  let set_size p s =
    files := (p, s) :: List.remove_assoc p !files
  in
  let rand_len () = 1 + Sim.Rng.int rng (min max_len 6000) in
  for i = 1 to nops do
    let w = Sim.Rng.int rng 100 in
    let op =
      if w < 30 then begin
        (* create *)
        let dir = pick !dirs in
        let path =
          if !files <> [] && Sim.Rng.int rng 5 = 0 then fst (pick !files)
            (* recreate/truncate an existing file *)
          else fresh_file dir
        in
        let mode =
          if Sim.Rng.int rng mode600_every = 0 then 0o600 else 0o644
        in
        let data = payload ~tag:i (rand_len ()) in
        set_size path (String.length data);
        Create { path; mode; data }
      end
      else if w < 50 && !files <> [] then begin
        (* pwrite within the current size *)
        let path, size = pick !files in
        let off = if size = 0 then 0 else Sim.Rng.int rng (size + 1) in
        let data = payload ~tag:i (rand_len ()) in
        set_size path (max size (off + String.length data));
        Pwrite { path; off; data }
      end
      else if w < 65 && !files <> [] then begin
        let path, size = pick !files in
        let data = payload ~tag:i (rand_len ()) in
        set_size path (size + String.length data);
        Append { path; data }
      end
      else if w < 75 then begin
        incr n_dirs;
        let parent = pick !dirs in
        let path = Printf.sprintf "%s/d%d" parent !n_dirs in
        dirs := path :: !dirs;
        Mkdir path
      end
      else if w < 85 && !files <> [] then begin
        let src, size = pick !files in
        let dst =
          if !files <> [] && Sim.Rng.int rng 4 = 0 then fst (pick !files)
          else fresh_file (pick !dirs)
        in
        if src <> dst then begin
          files := List.remove_assoc src !files;
          set_size dst size
        end;
        Rename { src; dst }
      end
      else if w < 95 && !files <> [] then begin
        let path, _ = pick !files in
        files := List.remove_assoc path !files;
        Unlink path
      end
      else begin
        (* target a likely-missing path: deterministic errno coverage *)
        let path = Printf.sprintf "/missing%d" i in
        if Sim.Rng.bool rng then Unlink path else Rmdir path
      end
    in
    ops := op :: !ops
  done;
  List.rev !ops

let random_script ?(mode600_every = 8) ?(max_len = 6000) ~seed ~nops () =
  {
    sname = Printf.sprintf "random-%Ld" seed;
    setup = [];
    body = generate ~mode600_every ~max_len ~seed ~nops ();
  }
