(* Factories for every file system under evaluation, behind one label, so
   benchmark tables can iterate over systems uniformly.

   Each call builds a fresh simulated NVM device and a freshly formatted
   file system; ZoFS additionally builds KernFS and a per-process FSLibs
   dispatcher. *)

module V = Treasury.Vfs

type system =
  | Zofs
  | Zofs_variant of Zofs.Ufs.variant * string  (* variant + label suffix *)
  | Ext4_dax
  | Pmfs
  | Pmfs_nocache
  | Nova
  | Nova_noindex
  | Novai
  | Novai_noindex
  | Strata

let label = function
  | Zofs -> "ZoFS"
  | Zofs_variant (_, l) -> l
  | Ext4_dax -> "Ext4-DAX"
  | Pmfs -> "PMFS"
  | Pmfs_nocache -> "PMFS-nocache"
  | Nova -> "NOVA"
  | Nova_noindex -> "NOVA-noindex"
  | Novai -> "NOVAi"
  | Novai_noindex -> "NOVAi-noindex"
  | Strata -> "Strata"

type instance = {
  fs : V.fs;
  sys : system;
  (* ZoFS internals, exposed for coffer-level benchmarks *)
  kernfs : Treasury.Kernfs.t option;
  device : Nvm.Device.t;
}

(* Build a ZoFS world and an FSLibs instance for the calling process. *)
let make_zofs ?(root_mode = 0o755) ~pages ~perf () =
  let dev = Nvm.Device.create ~perf ~size:(pages * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  (* No-ops unless zofs_check enabled the checkers / obs is enabled;
     attaching before mkfs lets the checker see the root structures get
     registered.  Both attach as independent trace subscribers. *)
  Check.auto_attach dev mpk;
  Race.auto_attach dev mpk;
  Obs.attach_device dev;
  (* Root is 0755: its rw-permission class (0644) matches the 0644 files
     the workloads create, so they share the root coffer as the paper's
     grouping analysis predicts. *)
  let kfs =
    Treasury.Kernfs.mkfs dev mpk ~nbuckets:4096 ~root_ctype:Zofs.Ufs.ctype
      ~root_mode ~root_uid:0 ~root_gid:0 ()
  in
  Zofs.Ufs.mkfs kfs;
  (dev, kfs)

(* FSLibs must be instantiated per process (it holds the FD table and the
   mapped-coffer cache). *)
let zofs_fslib ?variant kfs =
  let disp = Treasury.Dispatcher.create kfs in
  let ufs = Zofs.Ufs.create ?variant kfs in
  Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
  Treasury.Dispatcher.as_vfs disp

let make ?(pages = 65536) ?(perf = Nvm.Perf.optane) sys : instance =
  let inst =
    match sys with
  | Zofs ->
      let dev, kfs = make_zofs ~pages ~perf () in
      { fs = zofs_fslib kfs; sys; kernfs = Some kfs; device = dev }
  | Zofs_variant (variant, _) ->
      let dev, kfs = make_zofs ~pages ~perf () in
      { fs = zofs_fslib ~variant kfs; sys; kernfs = Some kfs; device = dev }
  | Ext4_dax ->
      let t = Baselines.Ext4_dax.create ~pages ~perf () in
      {
        fs = V.Fs ((module Baselines.Engine_vfs), t);
        sys;
        kernfs = None;
        device = t.Baselines.Engine.dev;
      }
  | Pmfs ->
      let t = Baselines.Pmfs.create ~pages ~perf () in
      {
        fs = V.Fs ((module Baselines.Engine_vfs), t);
        sys;
        kernfs = None;
        device = t.Baselines.Engine.dev;
      }
  | Pmfs_nocache ->
      let t = Baselines.Pmfs.create ~nocache:true ~pages ~perf () in
      {
        fs = V.Fs ((module Baselines.Engine_vfs), t);
        sys;
        kernfs = None;
        device = t.Baselines.Engine.dev;
      }
  | Nova ->
      let t = Baselines.Nova.create ~pages ~perf () in
      {
        fs = V.Fs ((module Baselines.Engine_vfs), t);
        sys;
        kernfs = None;
        device = t.Baselines.Engine.dev;
      }
  | Nova_noindex ->
      let t = Baselines.Nova.create ~noindex:true ~pages ~perf () in
      {
        fs = V.Fs ((module Baselines.Engine_vfs), t);
        sys;
        kernfs = None;
        device = t.Baselines.Engine.dev;
      }
  | Novai ->
      let t = Baselines.Nova.create ~in_place:true ~pages ~perf () in
      {
        fs = V.Fs ((module Baselines.Engine_vfs), t);
        sys;
        kernfs = None;
        device = t.Baselines.Engine.dev;
      }
  | Novai_noindex ->
      let t = Baselines.Nova.create ~in_place:true ~noindex:true ~pages ~perf () in
      {
        fs = V.Fs ((module Baselines.Engine_vfs), t);
        sys;
        kernfs = None;
        device = t.Baselines.Engine.dev;
      }
  | Strata ->
      let fs = Baselines.Strata.fs ~pages ~perf () in
      let device =
        match fs with V.Fs (_, _) ->
          (* the Strata device is private; expose a dummy reference *)
          Nvm.Device.create ~perf:Nvm.Perf.free ~size:Nvm.page_size ()
      in
      { fs; sys; kernfs = None; device }
  in
  (match inst.sys with
  | Zofs | Zofs_variant _ -> ()  (* make_zofs already attached *)
  | _ -> Obs.attach_device inst.device);
  inst

let one_coffer_variant =
  Zofs_variant
    ({ Zofs.Ufs.default_variant with Zofs.Ufs.one_coffer = true }, "ZoFS-1coffer")

let sysempty_variant =
  Zofs_variant
    ({ Zofs.Ufs.default_variant with Zofs.Ufs.sysempty = true }, "ZoFS-sysempty")

let kwrite_variant =
  Zofs_variant
    ({ Zofs.Ufs.default_variant with Zofs.Ufs.kwrite = true }, "ZoFS-kwrite")
