(* Benchmark runner: fixed-ops-per-thread throughput and per-op latency
   measurement on the simulated clock.

   Each measurement builds a fresh world, runs [setup] in a root thread,
   then spawns [nthreads] worker threads (same process — FxMark/Filebench
   are multi-threaded applications), each performing [ops] operations.
   Throughput = total ops / (latest finish − measurement start), in
   simulated time, which makes every number in the tables deterministic. *)

type result = {
  nthreads : int;
  total_ops : int;
  elapsed_ns : int;
  mops_per_sec : float;
  avg_latency_ns : float;
}

let run ?(uid = 0) ~nthreads ~ops ~setup ~worker () =
  let world = Sim.create () in
  let proc = Sim.Proc.create ~uid ~gid:uid () in
  let t_start = ref 0 in
  let t_end = ref 0 in
  let completed = ref 0 in
  Sim.spawn world ~proc ~name:"setup" (fun () ->
      let ctx = setup () in
      t_start := Sim.now ();
      for tid = 0 to nthreads - 1 do
        Sim.spawn world ~proc ~name:(Printf.sprintf "worker%d" tid) (fun () ->
            let op = worker ctx ~tid in
            for i = 0 to ops - 1 do
              op ~i
            done;
            completed := !completed + ops;
            if Sim.now () > !t_end then t_end := Sim.now ())
      done);
  Sim.run world;
  let elapsed = max 1 (!t_end - !t_start) in
  if Obs.enabled () then begin
    Obs.cnt "runner.ops" !completed;
    Obs.cnt "runner.sim_ns" elapsed
  end;
  {
    nthreads;
    total_ops = !completed;
    elapsed_ns = elapsed;
    mops_per_sec = float_of_int !completed *. 1000.0 /. float_of_int elapsed;
    avg_latency_ns =
      float_of_int elapsed *. float_of_int nthreads /. float_of_int !completed;
  }

(* Average latency of [ops] repetitions of [op], single thread. *)
let latency ?(uid = 0) ~ops ~setup ~op () =
  let r =
    run ~uid ~nthreads:1 ~ops ~setup ~worker:(fun ctx ~tid -> ignore tid; op ctx) ()
  in
  r.avg_latency_ns

(* Run [f] once in a fresh single-thread world and return (result, ns). *)
let timed ?(uid = 0) f =
  let proc = Sim.Proc.create ~uid ~gid:uid () in
  Sim.run_thread ~proc (fun () ->
      let t0 = Sim.now () in
      let v = f () in
      (v, Sim.now () - t0))

let ok = function
  | Ok v -> v
  | Error e -> failwith ("bench op failed: " ^ Treasury.Errno.to_string e)
