(* End-to-end request deadlines, carried ambiently through dispatch.

   The serving frontend (lib/serve) admits a request with a deadline; the
   dispatcher, the µFS commit paths, lease acquisition and the transient
   kernel-errno retry loop all sit below it and must be able to observe
   "this request's time budget is gone" without threading a parameter
   through every signature.  The deadline is therefore pinned on the
   simulated thread executing the request — one thread serves one request
   at a time, exactly like the FD table and PKRU state are per-thread.

   Deadlines only abort at SAFE-TO-ABORT points: before a lease is taken,
   or between kernel-call retries.  Code that has started mutating under a
   lease runs to completion (bounded by the lease duration); a request is
   never torn in the middle of a commit sequence by its own deadline.
   [Expired] escapes to the dispatcher, which converts it into ETIMEDOUT —
   the same graceful-error discipline as the fault paths.

   Entries are keyed by (world uid, tid): a thread killed by chaos
   injection never unwinds, so its deadline entry survives it — the world
   uid guarantees such residue can never apply to a thread of a later
   simulation that happens to reuse the tid, and [scrub_dead] lets a
   long-lived world drop residue of its own dead threads. *)

exception Expired of { deadline : int; now : int }

let table : (int * int, int) Hashtbl.t = Hashtbl.create 64
let cur_world = ref (-1)

let key () = (Sim.world_uid (), Sim.self_tid ())

(* Entries of finished worlds are garbage; drop them wholesale the first
   time a new world touches the table. *)
let roll_world () =
  let w = Sim.world_uid () in
  if w <> !cur_world then begin
    cur_world := w;
    Hashtbl.reset table
  end

let current () =
  roll_world ();
  Hashtbl.find_opt table (key ())

(* [with_deadline d f]: run [f] with the calling thread's deadline set to
   the absolute simulated time [d], restoring the previous deadline (for
   nesting) afterwards.  A tighter enclosing deadline wins: deadlines can
   only shrink the budget, never extend it. *)
let with_deadline d f =
  roll_world ();
  let k = key () in
  let prev = Hashtbl.find_opt table k in
  let eff = match prev with Some p -> min p d | None -> d in
  Hashtbl.replace table k eff;
  let restore () =
    match prev with
    | Some p -> Hashtbl.replace table k p
    | None -> Hashtbl.remove table k
  in
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

let remaining () =
  match current () with None -> None | Some d -> Some (d - Sim.now ())

let expired () =
  match current () with None -> false | Some d -> Sim.now () >= d

(* Raise [Expired] when the ambient budget is gone.  Callers place this at
   safe-to-abort points only (see the module comment). *)
let check () =
  match current () with
  | Some d when Sim.now () >= d -> raise (Expired { deadline = d; now = Sim.now () })
  | _ -> ()

(* Drop entries left behind by dead threads of the active world (killed
   threads never unwind their [with_deadline] frames). *)
let scrub_dead () =
  roll_world ();
  let w = Sim.world_uid () in
  let stale =
    Hashtbl.fold
      (fun ((kw, tid) as k) _ acc ->
        if kw = w && not (Sim.thread_alive tid) then k :: acc else acc)
      table []
  in
  List.iter (Hashtbl.remove table) stale
