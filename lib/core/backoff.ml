(* Capped exponential backoff with deterministic jitter — THE retry cadence
   of the reproduction.

   Before the serving frontend, two retry loops had drifted apart: lease
   acquisition spun on a fixed 200 ns cadence, and the FSLib transient-errno
   absorber (ENOMEM/EAGAIN from coffer_enlarge/coffer_map) doubled a 2 µs
   base with no cap discipline shared between them.  Under a thundering
   herd both cadences synchronize waiters into convoys: every backed-off
   thread re-attempts on the same simulated instant and the CAS (or the
   kernel gate) is stampeded again.  This module is the single shared
   policy: exponential growth to a cap, plus a jitter term derived from a
   splitmix64 hash of (salt, thread, attempt, now) — fully deterministic
   for a given simulated execution, so benchmarks stay byte-identical
   across runs, yet decorrelated across threads so convoys disperse.

   The helper is deadline-aware: [wait] refuses to sleep past an absolute
   simulated-time deadline and tells the caller the budget is exhausted, so
   a request carrying an end-to-end deadline (Deadline.with_deadline) times
   out cleanly instead of camping on a contended lease. *)

type t = {
  base : int;  (* first delay, ns *)
  cap : int;  (* delays stop growing here *)
  salt : int;  (* decorrelates independent retry sites *)
  mutable attempt : int;  (* completed waits so far *)
}

let create ?(base = 200) ?(cap = 6_400) ?(salt = 0) () =
  if base <= 0 || cap < base then invalid_arg "Backoff.create";
  { base; cap; salt; attempt = 0 }

let attempts t = t.attempt

(* splitmix64 finalizer over the mixed inputs: cheap, stateless, and
   deterministic under the sim (no shared RNG stream is consumed, so
   adding a retry site never perturbs anyone else's random choices). *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let jitter t ~step =
  let h =
    mix64
      (Int64.logxor
         (Int64.of_int ((t.salt * 0x9E3779B9) + t.attempt))
         (Int64.of_int ((Sim.self_tid () * 0x85EBCA6B) lxor Sim.now ())))
  in
  (* uniform in [-step/4, +step/4] *)
  let span = max 1 (step / 2) in
  (Int64.to_int (Int64.rem h (Int64.of_int span)) + span) mod span - (span / 2)

let next_delay t =
  let step = min t.cap (t.base lsl min t.attempt 20) in
  max 1 (step + jitter t ~step)

(* Sleep the current thread for the next backoff step.  Returns the delay
   actually charged. *)
let wait t =
  let d = next_delay t in
  t.attempt <- t.attempt + 1;
  Sim.advance d;
  d

(* Deadline-aware wait: sleep the next step, but never past [deadline]
   (absolute sim time).  Returns [false] when the deadline has been reached
   — the caller owes at most one final attempt before giving up. *)
let wait_until t ~deadline =
  let now = Sim.now () in
  if now >= deadline then false
  else begin
    let d = min (next_delay t) (deadline - now) in
    t.attempt <- t.attempt + 1;
    Sim.advance d;
    Sim.now () < deadline
  end

(* Generic bounded-retry combinator over result-returning operations, used
   by the FSLib transient-errno absorber: retry while [retryable e] and
   fewer than [max_attempts] waits have been paid. *)
let retry ?(max_attempts = 4) ~retryable ?(on_retry = fun _ -> ()) t f =
  let rec go () =
    match f () with
    | Error e when retryable e && t.attempt < max_attempts ->
        on_retry e;
        ignore (wait t);
        go ()
    | r -> r
  in
  go ()
