(* POSIX-style error codes returned by every file-system operation in the
   reproduction.  FSLibs converts internal faults (MPK violations, corrupted
   metadata) into [EIO] — the paper's "graceful error return" (§3.4.2). *)

type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EACCES
  | EPERM
  | EBADF
  | EINVAL
  | ENOSPC
  | ENAMETOOLONG
  | EMFILE
  | ENOSYS
  | EIO
  | EXDEV
  | ELOOP
  | EFBIG
  | EAGAIN
  | EBUSY
  | ENOMEM
  | ETIMEDOUT

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EACCES -> "EACCES"
  | EPERM -> "EPERM"
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | ENOSPC -> "ENOSPC"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EMFILE -> "EMFILE"
  | ENOSYS -> "ENOSYS"
  | EIO -> "EIO"
  | EXDEV -> "EXDEV"
  | ELOOP -> "ELOOP"
  | EFBIG -> "EFBIG"
  | EAGAIN -> "EAGAIN"
  | EBUSY -> "EBUSY"
  | ENOMEM -> "ENOMEM"
  | ETIMEDOUT -> "ETIMEDOUT"

let message = function
  | ENOENT -> "No such file or directory"
  | EEXIST -> "File exists"
  | ENOTDIR -> "Not a directory"
  | EISDIR -> "Is a directory"
  | ENOTEMPTY -> "Directory not empty"
  | EACCES -> "Permission denied"
  | EPERM -> "Operation not permitted"
  | EBADF -> "Bad file descriptor"
  | EINVAL -> "Invalid argument"
  | ENOSPC -> "No space left on device"
  | ENAMETOOLONG -> "File name too long"
  | EMFILE -> "Too many open files"
  | ENOSYS -> "Function not implemented"
  | EIO -> "Input/output error"
  | EXDEV -> "Cross-device link"
  | ELOOP -> "Too many levels of symbolic links"
  | EFBIG -> "File too large"
  | EAGAIN -> "Resource temporarily unavailable"
  | EBUSY -> "Device or resource busy"
  | ENOMEM -> "Cannot allocate memory"
  | ETIMEDOUT -> "Operation timed out"

let pp fmt e = Format.pp_print_string fmt (to_string e)
let equal (a : t) b = a = b
let testable_pp = pp

(* Convenience combinators for the pervasive [('a, t) result] style. *)
let ( let* ) = Result.bind
let ok = Result.ok
let error = Result.error
