(* The user-space FD mapping table (paper §4.2).

   Applications see ordinary small integers; the table maps them to µFS file
   handles or kernel FDs.  Allocation always returns the lowest available
   number — the property Strata's threshold scheme breaks and bash's dup
   depends on — and dup/dup2 share the open-file description (offset), as
   POSIX requires.  The table can be serialized to a base64 string and
   rebuilt on the other side of an exec (the paper passes it in a dedicated
   environment variable). *)

type target = Ufs of { ctype : int; handle : int } | Kernel of int

type ofd = {
  target : target;
  mutable offset : int;
  mutable refcount : int;
  append : bool;
}

(* [free_hint] caches a lower bound on the lowest free fd, making the
   open/close-heavy paths (every FxMark metadata workload opens per op)
   amortized O(1) instead of a scan over every live descriptor: closing
   lowers it, allocating resumes the scan from it.  Invariant: no fd in
   [first_fd, free_hint) is free.

   Concurrency audit (race sanitizer): the hint is host DRAM, not NVM, so
   it is outside the sanitizer's shadow map; and the fd table is
   per-process state touched only between [Sim.advance] points, so under
   the cooperative scheduler a read-modify-write of [free_hint] can never
   interleave with another thread's.  Even if it could, a stale hint only
   costs a longer [lowest_free] scan — the invariant is a lower bound,
   re-established by the scan itself.  Benign; no annotation needed. *)
type t = { mutable slots : ofd option array; first_fd : int; mutable free_hint : int }

let create ?(first_fd = 3) () =
  { slots = Array.make 16 None; first_fd; free_hint = first_fd }

let ensure t fd =
  if fd >= Array.length t.slots then begin
    let bigger = Array.make (max (fd + 1) (2 * Array.length t.slots)) None in
    Array.blit t.slots 0 bigger 0 (Array.length t.slots);
    t.slots <- bigger
  end

let lowest_free t =
  let rec go fd =
    if fd >= Array.length t.slots then fd
    else match t.slots.(fd) with None -> fd | Some _ -> go (fd + 1)
  in
  let fd = go (max t.first_fd t.free_hint) in
  t.free_hint <- fd;
  fd

let note_filled t fd = if fd = t.free_hint then t.free_hint <- fd + 1
let note_freed t fd = if fd < t.free_hint then t.free_hint <- fd

let alloc t ?(append = false) target =
  let fd = lowest_free t in
  ensure t fd;
  t.slots.(fd) <- Some { target; offset = 0; refcount = 1; append };
  note_filled t fd;
  fd

let get t fd =
  if fd < 0 || fd >= Array.length t.slots then None else t.slots.(fd)

let lookup t fd =
  match get t fd with Some ofd -> Ok ofd | None -> Error Errno.EBADF

let dup t fd =
  match get t fd with
  | None -> Error Errno.EBADF
  | Some ofd ->
      let nfd = lowest_free t in
      ensure t nfd;
      ofd.refcount <- ofd.refcount + 1;
      t.slots.(nfd) <- Some ofd;
      note_filled t nfd;
      Ok nfd

(* Returns the target to really close if the new fd displaced the last
   reference to an open file. *)
let dup2 t fd nfd =
  if nfd < 0 then Error Errno.EBADF
  else
    match get t fd with
    | None -> Error Errno.EBADF
    | Some ofd -> (
        ensure t nfd;
        match t.slots.(nfd) with
        | Some old when old == ofd -> Ok (nfd, None)
        | existing ->
            let displaced =
              match existing with
              | Some old ->
                  old.refcount <- old.refcount - 1;
                  if old.refcount = 0 then Some old.target else None
              | None -> None
            in
            ofd.refcount <- ofd.refcount + 1;
            t.slots.(nfd) <- Some ofd;
            note_filled t nfd;
            Ok (nfd, displaced))

(* Returns the target to really close when the last reference drops. *)
let close t fd =
  match get t fd with
  | None -> Error Errno.EBADF
  | Some ofd ->
      t.slots.(fd) <- None;
      note_freed t fd;
      ofd.refcount <- ofd.refcount - 1;
      if ofd.refcount = 0 then Ok (Some ofd.target) else Ok None

let open_count t =
  Array.fold_left (fun acc s -> if s = None then acc else acc + 1) 0 t.slots

let iter t f =
  Array.iteri (fun fd s -> match s with Some ofd -> f fd ofd | None -> ()) t.slots

(* ---- serialization across exec (base64, as in the paper) --------------- *)

let b64_alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let b64_encode s =
  let n = String.length s in
  let buf = Buffer.create ((n + 2) / 3 * 4) in
  let i = ref 0 in
  while !i < n do
    let b0 = Char.code s.[!i] in
    let b1 = if !i + 1 < n then Char.code s.[!i + 1] else 0 in
    let b2 = if !i + 2 < n then Char.code s.[!i + 2] else 0 in
    Buffer.add_char buf b64_alphabet.[b0 lsr 2];
    Buffer.add_char buf b64_alphabet.[((b0 land 0x3) lsl 4) lor (b1 lsr 4)];
    if !i + 1 < n then
      Buffer.add_char buf b64_alphabet.[((b1 land 0xF) lsl 2) lor (b2 lsr 6)]
    else Buffer.add_char buf '=';
    if !i + 2 < n then Buffer.add_char buf b64_alphabet.[b2 land 0x3F]
    else Buffer.add_char buf '=';
    i := !i + 3
  done;
  Buffer.contents buf

let b64_value c =
  match c with
  | 'A' .. 'Z' -> Char.code c - Char.code 'A'
  | 'a' .. 'z' -> Char.code c - Char.code 'a' + 26
  | '0' .. '9' -> Char.code c - Char.code '0' + 52
  | '+' -> 62
  | '/' -> 63
  | _ -> invalid_arg "Fd_table: bad base64"

let b64_decode s =
  let buf = Buffer.create (String.length s * 3 / 4) in
  let i = ref 0 in
  while !i + 3 < String.length s do
    let v0 = b64_value s.[!i] and v1 = b64_value s.[!i + 1] in
    Buffer.add_char buf (Char.chr ((v0 lsl 2) lor (v1 lsr 4)));
    if s.[!i + 2] <> '=' then begin
      let v2 = b64_value s.[!i + 2] in
      Buffer.add_char buf (Char.chr (((v1 land 0xF) lsl 4) lor (v2 lsr 2)));
      if s.[!i + 3] <> '=' then begin
        let v3 = b64_value s.[!i + 3] in
        Buffer.add_char buf (Char.chr (((v2 land 0x3) lsl 6) lor v3))
      end
    end;
    i := !i + 4
  done;
  Buffer.contents buf

(* Wire format, one record per fd: "fd,kind,a,b,offset,append" — where dup'd
   fds sharing an open file description carry a shared group id instead. *)
let serialize t =
  (* Assign group ids so dup-shared descriptions stay shared after exec. *)
  let groups : (ofd * int) list ref = ref [] in
  let next_group = ref 0 in
  let group_of ofd =
    match List.find_opt (fun (o, _) -> o == ofd) !groups with
    | Some (_, g) -> g
    | None ->
        let g = !next_group in
        incr next_group;
        groups := (ofd, g) :: !groups;
        g
  in
  let records = ref [] in
  iter t (fun fd ofd ->
      let kind, a, b =
        match ofd.target with
        | Ufs { ctype; handle } -> ("u", ctype, handle)
        | Kernel k -> ("k", k, 0)
      in
      records :=
        Printf.sprintf "%d,%s,%d,%d,%d,%b,%d" fd kind a b ofd.offset ofd.append
          (group_of ofd)
        :: !records);
  b64_encode (String.concat ";" (List.rev !records))

let deserialize ?(first_fd = 3) s =
  let t = create ~first_fd () in
  let raw = b64_decode s in
  if raw = "" then t
  else begin
    let by_group : (int, ofd) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun record ->
        match String.split_on_char ',' record with
        | [ fd; kind; a; b; offset; append; group ] ->
            let fd = int_of_string fd
            and a = int_of_string a
            and b = int_of_string b
            and offset = int_of_string offset
            and append = bool_of_string append
            and group = int_of_string group in
            let ofd =
              match Hashtbl.find_opt by_group group with
              | Some ofd ->
                  ofd.refcount <- ofd.refcount + 1;
                  ofd
              | None ->
                  let target =
                    if kind = "u" then Ufs { ctype = a; handle = b }
                    else Kernel a
                  in
                  let ofd = { target; offset; refcount = 1; append } in
                  Hashtbl.replace by_group group ofd;
                  ofd
            in
            ensure t fd;
            t.slots.(fd) <- Some ofd
        | _ -> invalid_arg "Fd_table.deserialize: bad record")
      (String.split_on_char ';' raw);
    t
  end
