(* The user/kernel boundary.  Every kernel entry charges the syscall cost
   and pollutes the calling thread's simulated line cache (the context-switch
   and cache-pollution penalty the paper attributes kernel file systems'
   slowness to, §6.1); the body then runs in kernel mode with a CR0.WP write
   window open (kernel FS code is trusted to write NVM). *)

let enter_cost = 250 (* ns: trap + switch in *)
let exit_cost = 150 (* ns: return to user *)

type t = { mpk : Mpk.t; dev : Nvm.Device.t; mutable syscalls : int }

let create mpk = { mpk; dev = Mpk.device mpk; syscalls = 0 }

let syscall t f =
  t.syscalls <- t.syscalls + 1;
  Obs.with_kernel_crossing @@ fun () ->
  Sim.advance enter_cost;
  Nvm.Device.pollute_cache t.dev;
  Race.on_gate_enter ();
  let r = Mpk.with_kernel t.mpk (fun () -> Mpk.with_write_window t.mpk f) in
  Race.on_gate_exit ();
  Sim.advance exit_cost;
  r

(* An empty system call (the ZoFS-sysempty variant of Figure 8). *)
let empty_syscall t = syscall t (fun () -> ())

let syscall_count t = t.syscalls
