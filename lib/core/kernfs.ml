(* KernFS: the kernel half of Treasury (paper §3.2, §4.1).

   KernFS owns global NVM space management (the allocation table), the
   persistent path→coffer hash table, coffer metadata (root pages) and the
   per-process coffer mappings (page tables + MPK keys).  It treats coffers
   as black boxes: it knows which pages belong to a coffer but nothing about
   the µFS structures inside.

   All entry points are system calls: they pay the {!Gate} cost, and
   mutations of the global structures serialize on a kernel lock — which is
   exactly why very frequent coffer_enlarge calls flatten ZoFS's scalability
   in the paper's Figure 7(d)/(g). *)

(* Reserved owner ids in the allocation table. *)
let cid_free = 0
let cid_meta = 1 (* superblock + allocation table + path-map fixed region *)
let cid_pathmap = 2 (* path-map slab pages *)

let sb_magic = 0x54524553 (* "TRES" *)
let pte_update_cost = 120 (* ns per page (un)mapped: PTE write + TLB work *)

type mapping = {
  m_pkey : int;
  m_writable : bool;
  m_root_file : int;  (* byte address of the coffer's root-file inode page *)
  m_custom : int;
  m_ctype : int;
}

(* Per-coffer fault-domain health (runtime state, rebuilt on mount):
   [Healthy] serves everything; [Suspect] (a fault was observed, repair may
   be in flight) still serves; [Quarantined] is read-only; [Offline] rejects
   every access.  Transitions are driven by the dispatcher's fault handler;
   the table itself is volatile because after a crash every coffer restarts
   Healthy and the offline fsck decides what is actually usable. *)
type health = Healthy | Suspect | Quarantined | Offline

let health_to_string = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Quarantined -> "quarantined"
  | Offline -> "offline"

type proc_state = {
  ps_pid : int;
  ps_mapped : (int, mapping) Hashtbl.t;  (* cid -> mapping *)
  mutable ps_pkeys : int;  (* bitmask of MPK keys in use *)
}

type t = {
  dev : Nvm.Device.t;
  mpk : Mpk.t;
  gate : Gate.t;
  at : Alloc_table.t;
  pm : Path_map.t;
  lock : Sim.Mutex.t;
  coffers : (int, Coffer.info) Hashtbl.t;  (* volatile cache of root pages *)
  procs : (int, proc_state) Hashtbl.t;
  mappers : (int, int list ref) Hashtbl.t;  (* cid -> pids mapping it *)
  mutable root_cid : int;
  mutable enlarge_calls : int;
  health : (int, health) Hashtbl.t;  (* cid -> health; absent = Healthy *)
  mutable quarantine_on : bool;  (* chaos negative self-check flips this *)
  (* Transient-failure injection: the next [transient_arm] allocation-path
     syscalls (coffer_enlarge / coffer_map) fail with [transient_errno]. *)
  mutable transient_arm : int;
  mutable transient_errno : Errno.t;
}

let ( let* ) = Result.bind

(* ---- layout ----------------------------------------------------------- *)

let at_base = Nvm.page_size (* allocation table starts at page 1 *)

let at_pages npages =
  (Alloc_table.table_bytes npages + Nvm.page_size - 1) / Nvm.page_size

let pm_base npages = at_base + (at_pages npages * Nvm.page_size)

let meta_pages npages nbuckets =
  1 + at_pages npages + Path_map.region_pages nbuckets

(* ---- internal helpers (called with the kernel lock held) -------------- *)

let coffer_info t cid =
  match Hashtbl.find_opt t.coffers cid with
  | Some c -> Ok c
  | None -> (
      match Coffer.read t.dev ~id:cid with
      | Some c ->
          Hashtbl.replace t.coffers cid c;
          Ok c
      | None -> Error Errno.EINVAL)

let proc_state t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some ps -> Ok ps
  | None -> Error Errno.EINVAL (* fs_mount not called *)

let mappers_of t cid =
  match Hashtbl.find_opt t.mappers cid with
  | Some l -> !l
  | None -> []

let add_mapper t cid pid =
  match Hashtbl.find_opt t.mappers cid with
  | Some l -> if not (List.mem pid !l) then l := pid :: !l
  | None -> Hashtbl.replace t.mappers cid (ref [ pid ])

let remove_mapper t cid pid =
  match Hashtbl.find_opt t.mappers cid with
  | Some l -> l := List.filter (fun p -> p <> pid) !l
  | None -> ()

let cred () = Fs_types.cred_of_proc (Sim.self_proc ())

let check_access t cid wants =
  let* c = coffer_info t cid in
  if Fs_types.permits ~mode:c.Coffer.mode ~uid:c.Coffer.uid ~gid:c.Coffer.gid (cred ()) wants
  then Ok c
  else Error Errno.EACCES

(* Map the pages of [runs] into [pid]'s page table.  The coffer's root page
   (if part of the runs) is mapped read-only: user space may read coffer
   metadata but never change it. *)
let map_runs t ~pid ~cid ~pkey ~writable runs =
  List.iter
    (fun (start, len) ->
      for page = start to start + len - 1 do
        let w = writable && page <> cid in
        Mpk.map_page t.mpk ~pid ~page ~writable:w ~pkey;
        Sim.advance pte_update_cost
      done)
    runs

let unmap_runs t ~pid runs =
  List.iter
    (fun (start, len) ->
      for page = start to start + len - 1 do
        Mpk.unmap_page t.mpk ~pid ~page;
        Sim.advance pte_update_cost
      done)
    runs

let unmap_from_process t cid pid =
  match Hashtbl.find_opt t.procs pid with
  | None -> ()
  | Some ps -> (
      match Hashtbl.find_opt ps.ps_mapped cid with
      | None -> ()
      | Some m ->
          unmap_runs t ~pid (Alloc_table.runs_of t.at ~cid);
          Hashtbl.remove ps.ps_mapped cid;
          ps.ps_pkeys <- ps.ps_pkeys land lnot (1 lsl m.m_pkey);
          remove_mapper t cid pid)

let unmap_everywhere t cid =
  List.iter (fun pid -> unmap_from_process t cid pid) (mappers_of t cid)

(* Allocate pages and create a fresh coffer root at the first granted page. *)
let make_coffer t ~path ~ctype ~mode ~uid ~gid =
  (* 3 pages: root page, root-file inode page, custom page (paper §5). *)
  match Alloc_table.alloc t.at ~cid:(-1) ~n:3 with
  | None -> Error Errno.ENOSPC
  | Some runs ->
      let pages =
        List.concat_map (fun (s, l) -> List.init l (fun i -> s + i)) runs
      in
      let id, rest =
        match pages with
        | id :: rest -> (id, rest)
        | [] -> assert false
      in
      (* Re-own the provisional allocation under the real coffer-ID. *)
      List.iter
        (fun (start, len) -> Alloc_table.reassign t.at ~start ~len ~cid:id)
        runs;
      let root_file, custom =
        match rest with
        | [ a; b ] -> (a * Nvm.page_size, b * Nvm.page_size)
        | _ -> assert false
      in
      Coffer.write t.dev ~id ~ctype ~mode ~uid ~gid ~path ~root_file ~custom;
      let* () = Path_map.insert t.pm ~path ~cid:id in
      let info =
        {
          Coffer.id;
          ctype;
          mode;
          uid;
          gid;
          path;
          root_file;
          custom;
          in_recovery = false;
        }
      in
      Hashtbl.replace t.coffers id info;
      Ok info

(* ---- formatting and mounting ------------------------------------------ *)

let mkfs dev mpk ?(nbuckets = 4096) ~root_ctype ~root_mode ~root_uid ~root_gid ()
    =
  Mpk.with_kernel mpk @@ fun () ->
  Mpk.with_write_window mpk @@ fun () ->
  let npages = Nvm.Device.pages dev in
  let at = Alloc_table.format dev ~base:at_base ~npages in
  (* Reserve the metadata region. *)
  Alloc_table.reassign at ~start:0 ~len:(meta_pages npages nbuckets) ~cid:cid_meta;
  let alloc_page () =
    match Alloc_table.alloc at ~cid:cid_pathmap ~n:1 with
    | Some [ (p, 1) ] -> Some p
    | Some _ | None -> None
  in
  let pm = Path_map.format dev ~base:(pm_base npages) ~nbuckets ~alloc_page in
  (* Superblock last: its magic publishes the file system. *)
  Nvm.Device.write_u32 dev 0 sb_magic;
  Nvm.Device.write_u32 dev 4 1 (* version *);
  Nvm.Device.write_u64 dev 8 npages;
  Nvm.Device.write_u32 dev 16 nbuckets;
  Nvm.Device.persist_range dev 0 20;
  let t =
    {
      dev;
      mpk;
      gate = Gate.create mpk;
      at;
      pm;
      lock = Sim.Mutex.create ~name:"kernfs" ();
      coffers = Hashtbl.create 64;
      procs = Hashtbl.create 16;
      mappers = Hashtbl.create 64;
      root_cid = 0;
      enlarge_calls = 0;
      health = Hashtbl.create 16;
      quarantine_on = true;
      transient_arm = 0;
      transient_errno = Errno.ENOMEM;
    }
  in
  (match
     make_coffer t ~path:"/" ~ctype:root_ctype ~mode:root_mode ~uid:root_uid
       ~gid:root_gid
   with
  | Ok info -> t.root_cid <- info.Coffer.id
  | Error e -> failwith ("Kernfs.mkfs: " ^ Errno.to_string e));
  t

let mount dev mpk =
  Mpk.with_kernel mpk @@ fun () ->
  Mpk.with_write_window mpk @@ fun () ->
  if Nvm.Device.read_u32 dev 0 <> sb_magic then
    failwith "Kernfs.mount: no file system found";
  let npages = Nvm.Device.read_u64 dev 8 in
  if npages <> Nvm.Device.pages dev then failwith "Kernfs.mount: size mismatch";
  let at = Alloc_table.load dev ~base:at_base ~npages in
  let alloc_page () =
    match Alloc_table.alloc at ~cid:cid_pathmap ~n:1 with
    | Some [ (p, 1) ] -> Some p
    | Some _ | None -> None
  in
  let pm = Path_map.load dev ~base:(pm_base npages) ~alloc_page in
  let t =
    {
      dev;
      mpk;
      gate = Gate.create mpk;
      at;
      pm;
      lock = Sim.Mutex.create ~name:"kernfs" ();
      coffers = Hashtbl.create 64;
      procs = Hashtbl.create 16;
      mappers = Hashtbl.create 64;
      root_cid = 0;
      enlarge_calls = 0;
      health = Hashtbl.create 16;
      quarantine_on = true;
      transient_arm = 0;
      transient_errno = Errno.ENOMEM;
    }
  in
  Path_map.iter pm (fun path cid ->
      match Coffer.read dev ~id:cid with
      | Some info ->
          Hashtbl.replace t.coffers cid info;
          if path = "/" then t.root_cid <- cid
      | None -> ());
  if t.root_cid = 0 then failwith "Kernfs.mount: root coffer missing";
  t

let device t = t.dev
let mpk t = t.mpk
let gate t = t.gate
let root_coffer t = t.root_cid
let alloc_table t = t.at

(* Wrap a kernel operation: syscall gate + kernel lock. *)
(* Every kernel operation runs as one device atomic section: its NVM
   metadata writes commit durably together on return, and a crash landing
   mid-operation rolls them all back — the observable semantics of the
   journaling a real kernel applies to this metadata (paper §3.5: KernFS
   recovers its own structures; partial updates are never exposed). *)
(* Kernel context is also a no-kill region: the chaos campaign models the
   death of *user* threads (a process can die at any instruction of its own
   code), but a thread inside a system call completes it — killing it while
   it holds the kernel mutex would model a kernel panic, not a process
   death.  The pending kill countdown resumes at syscall return. *)
let kernel_op t f =
  Gate.syscall t.gate (fun () ->
      Sim.with_no_kill (fun () ->
          Sim.Mutex.with_lock t.lock (fun () ->
              Nvm.Device.begin_atomic t.dev;
              Race.note "kernel atomic begin";
              match f () with
              | v ->
                  Nvm.Device.commit_atomic t.dev;
                  Race.note "kernel atomic commit";
                  v
              | exception e ->
                  Nvm.Device.abort_atomic t.dev;
                  Race.note "kernel atomic abort";
                  raise e)))

(* Trip one armed transient failure, if any (called from the allocation-path
   syscalls with the kernel lock held). *)
let trip_transient t =
  if t.transient_arm > 0 then begin
    t.transient_arm <- t.transient_arm - 1;
    Obs.cnt "fault.transient" 1;
    Some t.transient_errno
  end
  else None

(* ---- FS registry (fs_mount / fs_umount) ------------------------------- *)

let fs_mount t =
  kernel_op t (fun () ->
      let pid = (Sim.self_proc ()).Sim.Proc.pid in
      if Hashtbl.mem t.procs pid then Error Errno.EEXIST
      else begin
        Hashtbl.replace t.procs pid
          { ps_pid = pid; ps_mapped = Hashtbl.create 8; ps_pkeys = 0 };
        Ok ()
      end)

let fs_umount t =
  kernel_op t (fun () ->
      let pid = (Sim.self_proc ()).Sim.Proc.pid in
      let* ps = proc_state t pid in
      let cids = Hashtbl.fold (fun cid _ acc -> cid :: acc) ps.ps_mapped [] in
      List.iter (fun cid -> unmap_from_process t cid pid) cids;
      Hashtbl.remove t.procs pid;
      Ok ())

(* Reap a dead process.  A process killed mid-run can never call fs_umount
   itself — death drops its continuations without unwinding — so a surviving
   thread (in a real system, the kernel's task-exit path; here the chaos
   driver or a peer FSLib noticing the death) deregisters it: every coffer
   mapping is torn down, the pid's page table is forgotten, and the
   per-thread PKRU/kernel-mode state of its threads is dropped so nothing of
   the victim's protection context survives the process switch.  Leases the
   victim held are deliberately NOT touched: they live in NVM and expire on
   their own; stealers + intention-record repair own that cleanup. *)
let reap_process t ~pid =
  kernel_op t (fun () ->
      if Sim.proc_alive pid then Error Errno.EBUSY
      else begin
        (match Hashtbl.find_opt t.procs pid with
        | None -> ()
        | Some ps ->
            let cids =
              Hashtbl.fold (fun cid _ acc -> cid :: acc) ps.ps_mapped []
            in
            List.iter (fun cid -> unmap_from_process t cid pid) cids;
            Hashtbl.remove t.procs pid);
        Mpk.drop_process t.mpk ~pid ~tids:(Sim.proc_tids pid);
        Obs.cnt "proc.reaped" 1;
        Ok ()
      end)

(* Called when a process changes uid/gid (setuid): all mappings are torn
   down, as in the paper (§3.3). *)
let on_setuid t =
  kernel_op t (fun () ->
      let pid = (Sim.self_proc ()).Sim.Proc.pid in
      match Hashtbl.find_opt t.procs pid with
      | None -> Ok ()
      | Some ps ->
          let cids = Hashtbl.fold (fun cid _ acc -> cid :: acc) ps.ps_mapped [] in
          List.iter (fun cid -> unmap_from_process t cid pid) cids;
          Ok ())

(* ---- coffer operations (Table 5) -------------------------------------- *)

let coffer_stat t cid = kernel_op t (fun () -> coffer_info t cid)

let coffer_find t path =
  kernel_op t (fun () ->
      match Path_map.lookup t.pm path with
      | Some cid -> Ok cid
      | None -> Error Errno.ENOENT)

(* Longest existing coffer prefix of [path]. *)
let coffer_locate t path =
  kernel_op t (fun () ->
      match Path_map.longest_prefix t.pm path with
      | Some (p, cid) -> Ok (p, cid)
      | None -> Error Errno.ENOENT)

let coffer_new t ~path ~ctype ~mode ~uid ~gid =
  kernel_op t (fun () ->
      let path = Pathx.normalize path in
      if String.length path > Pathx.max_path_length then
        Error Errno.ENAMETOOLONG
      else
        (* The caller must be able to write the enclosing coffer. *)
        let parent = Pathx.dirname path in
        match Path_map.longest_prefix t.pm parent with
        | None -> Error Errno.ENOENT
        | Some (_, parent_cid) ->
            let* _ = check_access t parent_cid [ `W ] in
            make_coffer t ~path ~ctype ~mode ~uid ~gid)

let coffer_delete t cid =
  kernel_op t (fun () ->
      let* c = coffer_info t cid in
      if cid = t.root_cid then Error Errno.EBUSY
      else
        let parent = Pathx.dirname c.Coffer.path in
        match Path_map.longest_prefix t.pm parent with
        | None -> Error Errno.EIO
        | Some (_, parent_cid) ->
            let* _ = check_access t parent_cid [ `W ] in
            unmap_everywhere t cid;
            let* () = Path_map.remove t.pm c.Coffer.path in
            Coffer.invalidate t.dev ~id:cid;
            Alloc_table.free_coffer t.at ~cid;
            Hashtbl.remove t.coffers cid;
            Hashtbl.remove t.mappers cid;
            Ok ())

(* Pages are granted in chunks so one large batched request degrades
   gracefully: allocation pressure (an armed transient fault, or the table
   running out) striking after the first chunk returns the pages already
   granted instead of failing — and forcing a retry of — the whole call.
   Partial grants therefore never double-count the enlarge metrics: the
   syscall, its TLB shootdown and [enlarge_calls] are paid exactly once
   whether the grant is full or partial. *)
let enlarge_chunk = 16

let coffer_enlarge t cid ~n =
  kernel_op t (fun () ->
      match trip_transient t with
      | Some e -> Error e
      | None ->
      t.enlarge_calls <- t.enlarge_calls + 1;
      Obs.cnt "enlarge.calls" 1;
      Obs.cnt_l "enlarge.calls" (Obs.Labels.of_coffer cid) 1;
      (* Growing a mapping requires a TLB shootdown across every CPU running
         a thread of a mapping process — serialized work that makes very
         frequent coffer_enlarge calls the scalability limit of Figure
         7(d)/(g). *)
      Sim.advance (1500 + (200 * Sim.live_threads ()));
      let* _ = check_access t cid [ `W ] in
      let rec grab acc got =
        if got >= n then Ok (List.rev acc)
        else if got > 0 && trip_transient t <> None then
          (* Mid-batch transient: absorb it, keep the partial grant. *)
          Ok (List.rev acc)
        else
          let m = min enlarge_chunk (n - got) in
          match Alloc_table.alloc t.at ~cid ~n:m with
          | None -> if got = 0 then Error Errno.ENOSPC else Ok (List.rev acc)
          | Some runs -> grab (List.rev_append runs acc) (got + m)
      in
      match grab [] 0 with
      | Error e -> Error e
      | Ok runs ->
          (* New pages become visible to every process mapping the coffer. *)
          List.iter
            (fun pid ->
              match Hashtbl.find_opt t.procs pid with
              | None -> ()
              | Some ps -> (
                  match Hashtbl.find_opt ps.ps_mapped cid with
                  | None -> ()
                  | Some m ->
                      map_runs t ~pid ~cid ~pkey:m.m_pkey ~writable:m.m_writable
                        runs))
            (mappers_of t cid);
          Ok runs)

let coffer_shrink t cid ~runs =
  kernel_op t (fun () ->
      let* _ = check_access t cid [ `W ] in
      let valid =
        List.for_all
          (fun (start, len) ->
            len > 0
            && start + len <= Alloc_table.npages t.at
            && List.for_all
                 (fun p -> Alloc_table.owner_of t.at ~page:p = cid && p <> cid)
                 (List.init len (fun i -> start + i)))
          runs
      in
      if not valid then Error Errno.EINVAL
      else begin
        List.iter
          (fun pid -> unmap_runs t ~pid runs)
          (mappers_of t cid);
        List.iter (fun (start, len) -> Alloc_table.free_run t.at ~start ~len) runs;
        Ok ()
      end)

let coffer_map t cid =
  kernel_op t (fun () ->
      match trip_transient t with
      | Some e -> Error e
      | None ->
      let pid = (Sim.self_proc ()).Sim.Proc.pid in
      let* ps = proc_state t pid in
      let* c = coffer_info t cid in
      if c.Coffer.in_recovery then Error Errno.EBUSY
      else
        match Hashtbl.find_opt ps.ps_mapped cid with
        | Some m -> Ok m (* already mapped *)
        | None ->
            let cr = cred () in
            let readable =
              Fs_types.permits ~mode:c.Coffer.mode ~uid:c.Coffer.uid
                ~gid:c.Coffer.gid cr [ `R ]
            in
            let writable =
              Fs_types.permits ~mode:c.Coffer.mode ~uid:c.Coffer.uid
                ~gid:c.Coffer.gid cr [ `W ]
            in
            if not (readable || writable) then Error Errno.EACCES
            else begin
              (* Find a free MPK key (1..15). *)
              let rec free_key k =
                if k >= Mpk.nkeys then None
                else if ps.ps_pkeys land (1 lsl k) = 0 then Some k
                else free_key (k + 1)
              in
              match free_key 1 with
              | None -> Error Errno.EMFILE
              | Some pkey ->
                  ps.ps_pkeys <- ps.ps_pkeys lor (1 lsl pkey);
                  let runs = Alloc_table.runs_of t.at ~cid in
                  map_runs t ~pid ~cid ~pkey ~writable runs;
                  let m =
                    {
                      m_pkey = pkey;
                      m_writable = writable;
                      m_root_file = c.Coffer.root_file;
                      m_custom = c.Coffer.custom;
                      m_ctype = c.Coffer.ctype;
                    }
                  in
                  Hashtbl.replace ps.ps_mapped cid m;
                  add_mapper t cid pid;
                  Ok m
            end)

let coffer_unmap t cid =
  kernel_op t (fun () ->
      let pid = (Sim.self_proc ()).Sim.Proc.pid in
      let* ps = proc_state t pid in
      if not (Hashtbl.mem ps.ps_mapped cid) then Error Errno.EINVAL
      else begin
        unmap_from_process t cid pid;
        Ok ()
      end)

(* Change a coffer's permission in place (allowed only when the coffer's
   files all change permission together — e.g. the ZoFS-1coffer variant or a
   chmod of a whole-coffer root).  Only the owner or root may do this. *)
let coffer_chmod t cid ~mode ~uid ~gid =
  kernel_op t (fun () ->
      let* c = coffer_info t cid in
      let cr = cred () in
      if cr.Fs_types.uid <> 0 && cr.Fs_types.uid <> c.Coffer.uid then
        Error Errno.EPERM
      else begin
        Coffer.set_perm t.dev ~id:cid ~mode ~uid ~gid;
        Hashtbl.replace t.coffers cid { c with Coffer.mode; uid; gid };
        (* Existing mappings may now exceed the new permission: tear them
           down; processes remap and get re-checked. *)
        unmap_everywhere t cid;
        Ok ()
      end)

(* Split [src]: move [runs] (page runs chosen by the µFS) into a brand-new
   coffer rooted at a fresh root page, with a new permission.  This is the
   expensive operation behind chmod in ZoFS (paper §6.4, Table 9). *)
let coffer_split t ~src ~new_path ~ctype ~mode ~uid ~gid ~runs ~root_file
    ~custom =
  kernel_op t (fun () ->
      let new_path = Pathx.normalize new_path in
      let* c = coffer_info t src in
      let cr = cred () in
      if cr.Fs_types.uid <> 0 && cr.Fs_types.uid <> c.Coffer.uid then
        Error Errno.EPERM
      else if Path_map.lookup t.pm new_path <> None then Error Errno.EEXIST
      else
        let pages_valid =
          List.for_all
            (fun (start, len) ->
              len > 0
              && List.for_all
                   (fun p ->
                     Alloc_table.owner_of t.at ~page:p = src && p <> src)
                   (List.init len (fun i -> start + i)))
            runs
        in
        if not pages_valid then Error Errno.EINVAL
        else
          match Alloc_table.alloc t.at ~cid:(-1) ~n:1 with
          | None -> Error Errno.ENOSPC
          | Some new_runs ->
              let id = match new_runs with (s, _) :: _ -> s | [] -> assert false in
              Alloc_table.reassign t.at ~start:id ~len:1 ~cid:id;
              (* Moved pages change owner; mappers of src lose them. *)
              List.iter
                (fun pid -> unmap_runs t ~pid runs)
                (mappers_of t src);
              List.iter
                (fun (start, len) ->
                  Alloc_table.reassign t.at ~start ~len ~cid:id)
                runs;
              Coffer.write t.dev ~id ~ctype ~mode ~uid ~gid ~path:new_path
                ~root_file ~custom;
              let* () = Path_map.insert t.pm ~path:new_path ~cid:id in
              let info =
                {
                  Coffer.id;
                  ctype;
                  mode;
                  uid;
                  gid;
                  path = new_path;
                  root_file;
                  custom;
                  in_recovery = false;
                }
              in
              Hashtbl.replace t.coffers id info;
              Ok info)

(* Merge [src] into [dst]: all of [src]'s pages change owner to [dst]; the
   src root page is freed.  Both coffers must carry the same permission. *)
let coffer_merge t ~dst ~src =
  kernel_op t (fun () ->
      if dst = src then Error Errno.EINVAL
      else
        let* csrc = coffer_info t src in
        let* cdst = coffer_info t dst in
        let* _ = check_access t dst [ `W ] in
        let* _ = check_access t src [ `W ] in
        if
          not
            (Fs_types.same_coffer_perm ~mode1:csrc.Coffer.mode
               ~uid1:csrc.Coffer.uid ~gid1:csrc.Coffer.gid
               ~mode2:cdst.Coffer.mode ~uid2:cdst.Coffer.uid
               ~gid2:cdst.Coffer.gid)
        then Error Errno.EPERM
        else begin
          unmap_everywhere t src;
          let runs = Alloc_table.runs_of t.at ~cid:src in
          List.iter
            (fun (start, len) -> Alloc_table.reassign t.at ~start ~len ~cid:dst)
            runs;
          Coffer.invalidate t.dev ~id:src;
          Alloc_table.free_run t.at ~start:src ~len:1;
          let* () = Path_map.remove t.pm csrc.Coffer.path in
          Hashtbl.remove t.coffers src;
          Hashtbl.remove t.mappers src;
          (* Make the adopted pages visible to dst's mappers. *)
          let adopted = List.filter (fun (s, _l) -> s <> src) runs in
          List.iter
            (fun pid ->
              match Hashtbl.find_opt t.procs pid with
              | None -> ()
              | Some ps -> (
                  match Hashtbl.find_opt ps.ps_mapped dst with
                  | None -> ()
                  | Some m ->
                      map_runs t ~pid ~cid:dst ~pkey:m.m_pkey
                        ~writable:m.m_writable adopted))
            (mappers_of t dst);
          Ok ()
        end)

(* Rename a coffer: its path-map key changes, together with the key of every
   descendant coffer (their paths share the prefix). *)
let coffer_rename t cid ~new_path =
  kernel_op t (fun () ->
      let new_path = Pathx.normalize new_path in
      let* c = coffer_info t cid in
      let* _ = check_access t cid [ `W ] in
      if String.length new_path > Pathx.max_path_length then
        Error Errno.ENAMETOOLONG
      else if Path_map.lookup t.pm new_path <> None then Error Errno.EEXIST
      else begin
        let old_path = c.Coffer.path in
        let to_move = ref [] in
        Path_map.iter t.pm (fun p id ->
            if Pathx.is_prefix ~prefix:old_path p then to_move := (p, id) :: !to_move);
        let results =
          List.map
            (fun (p, id) ->
              let p' =
                Pathx.replace_prefix ~old_prefix:old_path ~new_prefix:new_path p
              in
              let r = Path_map.rename t.pm ~old_path:p ~new_path:p' in
              (match r with
              | Ok () -> (
                  Coffer.set_path t.dev ~id ~path:p';
                  match Hashtbl.find_opt t.coffers id with
                  | Some ci -> Hashtbl.replace t.coffers id { ci with Coffer.path = p' }
                  | None -> ())
              | Error _ -> ());
              r)
            !to_move
        in
        match List.find_opt Result.is_error results with
        | Some (Error e) -> Error e
        | _ -> Ok ()
      end)

(* ---- recovery protocol (paper §3.5) ------------------------------------ *)

let recovery_lease_ns = 1_000_000_000

let coffer_recover_begin t cid =
  kernel_op t (fun () ->
      let* c = coffer_info t cid in
      let now = Sim.now () in
      if c.Coffer.in_recovery then Error Errno.EBUSY
      else begin
        let* _ = check_access t cid [ `W ] in
        Coffer.set_recovery t.dev ~id:cid ~active:true
          ~lease:(now + recovery_lease_ns);
        Hashtbl.replace t.coffers cid { c with Coffer.in_recovery = true };
        (* Unmap from every process except the initiator. *)
        let me = (Sim.self_proc ()).Sim.Proc.pid in
        List.iter
          (fun pid -> if pid <> me then unmap_from_process t cid pid)
          (mappers_of t cid);
        Ok (Alloc_table.runs_of t.at ~cid)
      end)

(* The initiator reports the pages still in use; KernFS reclaims the rest. *)
let coffer_recover_end t cid ~in_use =
  kernel_op t (fun () ->
      let* c = coffer_info t cid in
      if not c.Coffer.in_recovery then Error Errno.EINVAL
      else begin
        let keep = Hashtbl.create 256 in
        Hashtbl.replace keep cid ();
        List.iter (fun p -> Hashtbl.replace keep p ()) in_use;
        let runs = Alloc_table.runs_of t.at ~cid in
        List.iter
          (fun (start, len) ->
            for p = start to start + len - 1 do
              if not (Hashtbl.mem keep p) then
                Alloc_table.free_run t.at ~start:p ~len:1
            done)
          runs;
        Coffer.set_recovery t.dev ~id:cid ~active:false ~lease:0;
        Hashtbl.replace t.coffers cid { c with Coffer.in_recovery = false };
        Ok ()
      end)

(* ---- file operations that need the kernel (paper §3.3) ----------------- *)

(* The µFS passes the data page addresses backing a file; KernFS validates
   that they belong to a coffer the process has mapped and installs the
   user mapping. *)
let file_mmap t ~cid ~pages =
  kernel_op t (fun () ->
      let pid = (Sim.self_proc ()).Sim.Proc.pid in
      let* ps = proc_state t pid in
      if not (Hashtbl.mem ps.ps_mapped cid) then Error Errno.EACCES
      else if
        List.for_all (fun p -> Alloc_table.owner_of t.at ~page:p = cid) pages
      then begin
        List.iter (fun _ -> Sim.advance pte_update_cost) pages;
        Ok ()
      end
      else Error Errno.EINVAL)

let file_execve t ~cid ~pages =
  (* Coffer pages are always mapped non-executable (paper §3.4.3); execve
     validates the image pages, then the kernel builds a private executable
     copy.  We model validation + per-page copy cost. *)
  kernel_op t (fun () ->
      let pid = (Sim.self_proc ()).Sim.Proc.pid in
      let* ps = proc_state t pid in
      if not (Hashtbl.mem ps.ps_mapped cid) then Error Errno.EACCES
      else if
        List.for_all (fun p -> Alloc_table.owner_of t.at ~page:p = cid) pages
      then begin
        List.iter
          (fun _ -> Sim.advance (pte_update_cost + (Nvm.page_size / 39)))
          pages;
        Ok ()
      end
      else Error Errno.EINVAL)

let list_coffers t =
  kernel_op t (fun () ->
      Ok (Hashtbl.fold (fun _ c acc -> c :: acc) t.coffers []))

(* fsck support: free allocation-table runs whose owner id is not a
   registered coffer — the residue of a coffer creation torn before its
   path-map insert persisted (the provisional cid or a cid whose coffer
   descriptor never became durable).  Reserved metadata owners are kept.
   Returns the reclaimed [(owner, start, len)] runs. *)
let reclaim_orphan_runs t =
  kernel_op t (fun () ->
      let orphans = ref [] in
      let npages = Alloc_table.npages t.at in
      let p = ref 0 in
      while !p < npages do
        let cid = Alloc_table.owner_of t.at ~page:!p in
        let start = !p in
        incr p;
        while !p < npages && Alloc_table.owner_of t.at ~page:!p = cid do
          incr p
        done;
        if
          cid <> 0 && cid <> cid_meta && cid <> cid_pathmap
          && not (Hashtbl.mem t.coffers cid)
        then begin
          Alloc_table.free_run t.at ~start ~len:(!p - start);
          orphans := (cid, start, !p - start) :: !orphans
        end
      done;
      Ok (List.rev !orphans))

(* Which coffer owns [page] (0 = free)?  Used by the offline recovery tool
   to validate pointers before trusting them. *)
let page_owner t ~page =
  kernel_op t (fun () ->
      if page < 0 || page >= Alloc_table.npages t.at then Error Errno.EINVAL
      else Ok (Alloc_table.owner_of t.at ~page))

(* ---- observability ------------------------------------------------------ *)

let enlarge_count t = t.enlarge_calls
let free_pages t = Alloc_table.free_pages t.at
let coffer_count t = Hashtbl.length t.coffers

let mapped_coffers t =
  let pid = (Sim.self_proc ()).Sim.Proc.pid in
  match Hashtbl.find_opt t.procs pid with
  | None -> []
  | Some ps -> Hashtbl.fold (fun cid m acc -> (cid, m) :: acc) ps.ps_mapped []

(* ---- fault-domain health ------------------------------------------------ *)

(* Health reads are not syscalls: the table is mirrored into a read-only
   shared page every FSLib maps (like the vDSO), so checking it on the hot
   path costs a load, not a gate crossing. *)
let coffer_health t cid =
  match Hashtbl.find_opt t.health cid with Some h -> h | None -> Healthy

let set_coffer_health t cid h =
  let prev = coffer_health t cid in
  if prev <> h then begin
    (match h with
    | Healthy -> Hashtbl.remove t.health cid
    | _ -> Hashtbl.replace t.health cid h);
    let l = Obs.Labels.of_coffer cid in
    (match h with
    | Healthy ->
        if prev <> Healthy then begin
          Obs.cnt "health.recovered" 1;
          Obs.cnt_l "health.recovered" l 1
        end
    | Suspect ->
        Obs.cnt "health.suspect" 1;
        Obs.cnt_l "health.suspect" l 1
    | Quarantined ->
        Obs.cnt "health.quarantined" 1;
        Obs.cnt_l "health.quarantined" l 1
    | Offline ->
        Obs.cnt "health.offline" 1;
        Obs.cnt_l "health.offline" l 1);
    (* Black-box capture: the flight recorder keeps this coffer's health
       history and, when armed, auto-dumps the moment a coffer leaves
       Healthy — the post-mortem is written while the faulting op is still
       in flight, so its span trace makes it into the dump. *)
    Obs.Flight.health_transition ~coffer:cid ~from_:(health_to_string prev)
      ~to_:(health_to_string h)
  end

let quarantine_enabled t = t.quarantine_on
let set_quarantine_enabled t on = t.quarantine_on <- on

(* (healthy, suspect, quarantined, offline) across registered coffers. *)
let health_counts t =
  let s = ref 0 and q = ref 0 and o = ref 0 in
  Hashtbl.iter
    (fun _ h ->
      match h with
      | Suspect -> incr s
      | Quarantined -> incr q
      | Offline -> incr o
      | Healthy -> ())
    t.health;
  let total = Hashtbl.length t.coffers in
  (total - !s - !q - !o, !s, !q, !o)

(* ---- transient-failure injection ---------------------------------------- *)

let inject_transient t ?(errno = Errno.ENOMEM) ~n () =
  t.transient_arm <- t.transient_arm + max 0 n;
  t.transient_errno <- errno

let pending_transients t = t.transient_arm
let clear_transients t = t.transient_arm <- 0
