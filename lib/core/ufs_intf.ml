(* The interface a µFS exposes to the FSLibs dispatcher (paper §3.2, §4.2).

   Path operations may run into a symbolic link mid-walk; following it is the
   dispatcher's job ("whenever one symlink is expanded in a µFS, the new path
   will be returned to the dispatcher, which will re-dispatch the file
   request", §4.2), so every path operation can fail with [Symlink]. *)

type fail =
  | Errno of Errno.t
  | Symlink of string
      (** the expanded absolute path the dispatcher must re-dispatch *)

(* Raised by a µFS when an on-NVM structure fails a validity check (bad
   magic, impossible kind byte, poisoned allocator page).  The dispatcher
   catches exactly this — not blanket [Failure _] — and converts it to the
   paper's graceful EIO, so genuine programming bugs are no longer masked as
   I/O errors.  The [string] names the structure and check that failed. *)
exception Zofs_corrupt of string

(* Raised by a µFS when an operation needs to write a coffer whose health
   state forbids it (Quarantined is read-only, Offline rejects everything).
   Carries the coffer id; the dispatcher maps it to EIO *without* triggering
   another repair attempt — the coffer is already known-bad. *)
exception Coffer_unavailable of { cid : int; write : bool }

type 'a outcome = ('a, fail) result

let errno e : 'a outcome = Error (Errno e)
let redirect p : 'a outcome = Error (Symlink p)

module type S = sig
  type t

  val name : string

  val ctype : int
  (** The coffer-type this µFS manages (stored in coffer root pages). *)

  (* Path operations (paths absolute within the FS, normalized). *)
  val openf : t -> string -> Fs_types.open_flag list -> int -> int outcome
  val mkdir : t -> string -> int -> unit outcome
  val rmdir : t -> string -> unit outcome
  val unlink : t -> string -> unit outcome
  val rename : t -> string -> string -> unit outcome
  val stat : t -> string -> Fs_types.stat outcome
  val lstat : t -> string -> Fs_types.stat outcome
  val readdir : t -> string -> Fs_types.dirent list outcome
  val chmod : t -> string -> int -> unit outcome
  val chown : t -> string -> int -> int -> unit outcome
  val symlink : t -> target:string -> link:string -> unit outcome
  val readlink : t -> string -> string outcome

  (* Handle operations (a handle is the µFS's open-file token). *)
  val close : t -> int -> (unit, Errno.t) result

  val read : t -> int -> off:int -> bytes -> int -> int -> (int, Errno.t) result

  val write :
    t -> int -> off:[ `At of int | `Append ] -> string -> (int * int, Errno.t) result
  (** Returns [(bytes_written, end_offset)]; [`Append] resolves the offset
      atomically under the file lease. *)

  val fsync : t -> int -> (unit, Errno.t) result
  val fstat : t -> int -> (Fs_types.stat, Errno.t) result
  val ftruncate : t -> int -> int -> (unit, Errno.t) result

  val invalidate_coffer : t -> int -> unit
  (** Drop any cached session/mapping state for coffer [cid] (called by the
      dispatcher after an online repair remapped or reformatted coffer
      structures, so stale cached addresses are re-walked). *)
end
