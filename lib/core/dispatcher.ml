(* FSLibs: the user-space half of Treasury (paper §4.2).

   One dispatcher instance per process.  It intercepts the file-system calls
   of the application (here: the Vfs.S interface), translates user FDs
   through the FD mapping table, tracks the current working directory,
   routes each request to the µFS in charge, follows symbolic links by
   re-dispatching the expanded path, and converts any fault raised while a
   µFS walks possibly-corrupted coffers into a graceful EIO (the
   sigsetjmp/siglongjmp trick of §3.4.2). *)

type ufs = U : (module Ufs_intf.S with type t = 'a) * 'a -> ufs

type t = {
  kfs : Kernfs.t;
  mount_path : string;
  mutable cwd : string;
  fds : Fd_table.t;
  ufss : (int, ufs) Hashtbl.t;  (* ctype -> µFS *)
  mutable default_ctype : int;
  kernel_fs : Vfs.fs option;  (* handles paths outside the mount, if any *)
  mutable graceful_errors : int;  (* faults converted into errno (§6.5) *)
  mutable repair : (int -> bool) option;
      (* online scoped fsck for one coffer (wired by the embedder; e.g.
         Zofs.Recovery.recover_one).  Returns true when the coffer was made
         consistent again. *)
  mutable admission : (op:string -> (unit, Errno.t) result) option;
      (* serving-plane admission hook (wired by lib/serve): consulted at the
         head of every dispatched operation, BEFORE any µFS work, so a
         degraded or over-quota tenant is refused without touching NVM.
         [op] is the syscall name; the hook returns the errno to surface
         (typically EAGAIN for backpressure, EIO for a rejecting tier). *)
}

let ( let* ) = Result.bind

let create ?(mount_path = "/") ?kernel_fs kfs =
  (match Kernfs.fs_mount kfs with
  | Ok () | Error Errno.EEXIST -> ()
  | Error e -> failwith ("Dispatcher.create: fs_mount: " ^ Errno.to_string e));
  {
    kfs;
    mount_path = Pathx.normalize mount_path;
    cwd = "/";
    fds = Fd_table.create ();
    ufss = Hashtbl.create 4;
    default_ctype = -1;
    kernel_fs;
    graceful_errors = 0;
    repair = None;
    admission = None;
  }

let register_ufs t (type a) (module F : Ufs_intf.S with type t = a) (inst : a) =
  Hashtbl.replace t.ufss F.ctype (U ((module F), inst));
  if t.default_ctype = -1 then t.default_ctype <- F.ctype

let shutdown t = ignore (Kernfs.fs_umount t.kfs)

let kernfs t = t.kfs
let graceful_error_count t = t.graceful_errors

(* ---- path routing ------------------------------------------------------ *)

type route =
  | To_ufs of string (* path inside the mount, mount prefix stripped *)
  | To_kernel of string

let resolve_user_path t path =
  let abs = if Pathx.is_absolute path then Pathx.normalize path else Pathx.concat t.cwd path in
  if Pathx.is_prefix ~prefix:t.mount_path abs then
    To_ufs (Pathx.strip_prefix ~prefix:t.mount_path abs)
  else To_kernel abs

let ufs_for t _path =
  (* With several µFSs the coffer type of the longest matching prefix would
     pick the library; with one registered µFS it handles the whole mount. *)
  match Hashtbl.find_opt t.ufss t.default_ctype with
  | Some u -> Ok u
  | None -> Error Errno.ENOSYS

(* ---- admission control (serving plane) ---------------------------------- *)

let set_admission t f = t.admission <- Some f
let clear_admission t = t.admission <- None

(* Consulted at the head of every dispatched operation.  A refusal is
   counted per-tenant so shed traffic is always observable.  A request
   whose end-to-end budget is already gone is refused before any µFS work:
   this is the cheapest safe-to-abort point there is. *)
let admit t ~op =
  if op <> "close" && Deadline.expired () then begin
    (* close is exempt: refusing resource release on an expired budget
       would leak the descriptor — the op a timed-out request MUST still
       be allowed to finish its cleanup with. *)
    Obs.cnt_l "dispatch.deadline_expired"
      (Obs.Labels.v [ ("tenant", string_of_int (Obs.current_tenant ())) ])
      1;
    Error Errno.ETIMEDOUT
  end
  else
    match t.admission with
  | None -> Ok ()
  | Some f -> (
      match f ~op with
      | Ok () -> Ok ()
      | Error e ->
          Obs.cnt_l "dispatch.refused"
            (Obs.Labels.v
               [ ("tenant", string_of_int (Obs.current_tenant ())) ])
            1;
          Error e)

(* ---- fault handling and online self-healing (graceful error return) ----- *)

let set_repair t f = t.repair <- Some f

let max_op_retries = 3 (* re-runs of a faulted op after a successful repair *)
let max_repair_attempts = 3 (* scoped-fsck attempts per fault *)
let repair_backoff = 10_000 (* ns; doubled per attempt, capped below *)
let max_repair_backoff = 200_000

(* After a repair rewrote coffer structures, every µFS must drop its cached
   session state for that coffer so stale addresses are re-walked. *)
let invalidate_everywhere t cid =
  Hashtbl.iter (fun _ (U ((module F), u)) -> F.invalidate_coffer u cid) t.ufss

(* Attribute a faulting NVM address to the coffer owning its page; metadata
   regions and free pages have no coffer to quarantine. *)
let owner_of_addr t addr =
  match Kernfs.page_owner t.kfs ~page:(addr / Nvm.page_size) with
  | Ok cid when cid > Kernfs.cid_pathmap -> Some cid
  | Ok _ | Error _ -> None

let attempt_repair t cid =
  match t.repair with
  | None -> false
  | Some f ->
      let rec go attempt =
        if attempt >= max_repair_attempts then false
        else begin
          Obs.cnt "health.repair_attempts" 1;
          let ok =
            (* The repairing thread holds the kernel recovery lease; dying
               mid-fsck would wedge the coffer in-recovery, so repairs run
               with death masked (the countdown resumes afterwards). *)
            Sim.with_no_kill (fun () ->
                try f cid
                with Nvm.Fault _ | Ufs_intf.Zofs_corrupt _ -> false)
          in
          if ok then true
          else begin
            Sim.advance (min (repair_backoff lsl attempt) max_repair_backoff);
            go (attempt + 1)
          end
        end
      in
      go 0

(* A media fault escaped a µFS operation: mark the owning coffer suspect,
   run the online scoped fsck (other coffers keep serving — the fault domain
   is one coffer), and either return it to service or quarantine it after
   repeated failure.  Returns true when the faulted operation should be
   retried. *)
let handle_media_fault t addr =
  match owner_of_addr t addr with
  | None -> false
  | Some cid -> (
      match Kernfs.coffer_health t.kfs cid with
      | Kernfs.Offline -> false
      | Kernfs.Quarantined ->
          (* Still faulting on the read-only path: take it fully offline. *)
          Kernfs.set_coffer_health t.kfs cid Kernfs.Offline;
          invalidate_everywhere t cid;
          false
      | Kernfs.Healthy | Kernfs.Suspect ->
          Kernfs.set_coffer_health t.kfs cid Kernfs.Suspect;
          if attempt_repair t cid then begin
            Obs.cnt "health.repairs_ok" 1;
            invalidate_everywhere t cid;
            Kernfs.set_coffer_health t.kfs cid Kernfs.Healthy;
            true
          end
          else begin
            Obs.cnt "health.repairs_failed" 1;
            if Kernfs.quarantine_enabled t.kfs then begin
              Kernfs.set_coffer_health t.kfs cid Kernfs.Quarantined;
              invalidate_everywhere t cid
            end;
            false
          end)

(* Convert faults and detected corruption into errno (graceful error
   return): the simulated SIGSEGV handler + siglongjmp of §3.4.2.  The catch
   is deliberately narrow — NVM faults, [Zofs_corrupt] validity-check
   failures and [Coffer_unavailable] health rejections; a genuine
   programming bug ([Failure], [Invalid_argument], ...) escapes loudly
   instead of masquerading as EIO.  [debug_raise] lets tests see the
   underlying exception instead. *)
let debug_raise = ref false

let graceful t =
  t.graceful_errors <- t.graceful_errors + 1;
  Obs.cnt_coffer "fault.graceful_errors" 1

let protect_gen t wrap f =
  let rec run retries =
    match f () with
    | v -> v
    | exception (Nvm.Fault { addr; kind = Nvm.Media; _ } as e) ->
        if !debug_raise then raise e;
        if retries < max_op_retries && handle_media_fault t addr then begin
          Obs.cnt "retry.fault" 1;
          run (retries + 1)
        end
        else begin
          graceful t;
          Error (wrap Errno.EIO)
        end
    | exception ((Nvm.Fault _ | Ufs_intf.Zofs_corrupt _) as e) ->
        if !debug_raise then raise e;
        graceful t;
        Error (wrap Errno.EIO)
    | exception (Ufs_intf.Coffer_unavailable _ as e) ->
        (* The coffer is already known-bad: EIO without another repair. *)
        if !debug_raise then raise e;
        graceful t;
        Error (wrap Errno.EIO)
    | exception Deadline.Expired _ ->
        (* The request's end-to-end budget ran out at a safe-to-abort point
           (lease wait, kernel-retry backoff).  Not a fault: the µFS state
           is exactly as a crash at that point would leave it — any pending
           intention record is repaired by the next lease holder. *)
        Obs.cnt_l "dispatch.deadline_expired"
          (Obs.Labels.v [ ("tenant", string_of_int (Obs.current_tenant ())) ])
          1;
        Error (wrap Errno.ETIMEDOUT)
  in
  run 0

let protect t f = protect_gen t (fun e -> Ufs_intf.Errno e) f
let protect_fd t f = protect_gen t (fun e -> e) f

let max_symlink_depth = 40

(* Dispatch a path operation, following symlink redirects. *)
let rec dispatch_path :
    'a.
    t ->
    string ->
    depth:int ->
    on_ufs:(ufs -> string -> 'a Ufs_intf.outcome) ->
    on_kernel:(Vfs.fs -> string -> ('a, Errno.t) result) ->
    ('a, Errno.t) result =
 fun t path ~depth ~on_ufs ~on_kernel ->
  if depth > max_symlink_depth then Error Errno.ELOOP
  else
    match resolve_user_path t path with
    | To_kernel p -> (
        match t.kernel_fs with
        | Some fs -> on_kernel fs p
        | None -> Error Errno.ENOENT)
    | To_ufs p -> (
        let* u = ufs_for t p in
        match protect t (fun () -> on_ufs u p) with
        | Ok v -> Ok v
        | Error (Ufs_intf.Errno e) -> Error e
        | Error (Ufs_intf.Symlink target) ->
            (* Re-dispatch the expanded path (which is FS-internal). *)
            let user_path =
              if t.mount_path = "/" then target
              else if Pathx.is_absolute target then t.mount_path ^ target
              else target
            in
            dispatch_path t user_path ~depth:(depth + 1) ~on_ufs ~on_kernel)

(* ---- Vfs.S implementation ---------------------------------------------- *)

let name _ = "zofs-fslibs"

let openf t path flags mode =
  Obs.with_syscall "open" @@ fun () ->
  (* creating opens are write-class for the serving plane's tier gate *)
  let* () =
    admit t ~op:(if List.mem Fs_types.O_CREAT flags then "creat" else "open")
  in
  let* fd_target =
    dispatch_path t path ~depth:0
      ~on_ufs:(fun (U ((module F), u)) p ->
        match F.openf u p flags mode with
        | Ok h -> Ok (Fd_table.Ufs { ctype = F.ctype; handle = h })
        | Error e -> Error e)
      ~on_kernel:(fun fs p ->
        match Vfs.openf fs p flags mode with
        | Ok kfd -> Ok (Fd_table.Kernel kfd)
        | Error e -> Error e)
  in
  let append = Fs_types.flag_mem Fs_types.O_APPEND flags in
  Ok (Fd_table.alloc t.fds ~append fd_target)

let mkdir t path mode =
  Obs.with_syscall "mkdir" @@ fun () ->
  let* () = admit t ~op:"mkdir" in
  dispatch_path t path ~depth:0
    ~on_ufs:(fun (U ((module F), u)) p -> F.mkdir u p mode)
    ~on_kernel:(fun fs p -> Vfs.mkdir fs p mode)

let rmdir t path =
  Obs.with_syscall "rmdir" @@ fun () ->
  let* () = admit t ~op:"rmdir" in
  dispatch_path t path ~depth:0
    ~on_ufs:(fun (U ((module F), u)) p -> F.rmdir u p)
    ~on_kernel:(fun fs p -> Vfs.rmdir fs p)

let unlink t path =
  Obs.with_syscall "unlink" @@ fun () ->
  let* () = admit t ~op:"unlink" in
  dispatch_path t path ~depth:0
    ~on_ufs:(fun (U ((module F), u)) p -> F.unlink u p)
    ~on_kernel:(fun fs p -> Vfs.unlink fs p)

let stat t path =
  Obs.with_syscall "stat" @@ fun () ->
  let* () = admit t ~op:"stat" in
  dispatch_path t path ~depth:0
    ~on_ufs:(fun (U ((module F), u)) p -> F.stat u p)
    ~on_kernel:(fun fs p -> Vfs.stat fs p)

let lstat t path =
  Obs.with_syscall "lstat" @@ fun () ->
  let* () = admit t ~op:"lstat" in
  dispatch_path t path ~depth:0
    ~on_ufs:(fun (U ((module F), u)) p -> F.lstat u p)
    ~on_kernel:(fun fs p -> Vfs.lstat fs p)

let readdir t path =
  Obs.with_syscall "readdir" @@ fun () ->
  let* () = admit t ~op:"readdir" in
  dispatch_path t path ~depth:0
    ~on_ufs:(fun (U ((module F), u)) p -> F.readdir u p)
    ~on_kernel:(fun fs p -> Vfs.readdir fs p)

let chmod t path mode =
  Obs.with_syscall "chmod" @@ fun () ->
  let* () = admit t ~op:"chmod" in
  dispatch_path t path ~depth:0
    ~on_ufs:(fun (U ((module F), u)) p -> F.chmod u p mode)
    ~on_kernel:(fun fs p -> Vfs.chmod fs p mode)

let chown t path uid gid =
  Obs.with_syscall "chown" @@ fun () ->
  let* () = admit t ~op:"chown" in
  dispatch_path t path ~depth:0
    ~on_ufs:(fun (U ((module F), u)) p -> F.chown u p uid gid)
    ~on_kernel:(fun fs p -> Vfs.chown fs p uid gid)

let readlink t path =
  Obs.with_syscall "readlink" @@ fun () ->
  let* () = admit t ~op:"readlink" in
  dispatch_path t path ~depth:0
    ~on_ufs:(fun (U ((module F), u)) p -> F.readlink u p)
    ~on_kernel:(fun fs p -> Vfs.readlink fs p)

let symlink t ~target ~link =
  Obs.with_syscall "symlink" @@ fun () ->
  let* () = admit t ~op:"symlink" in
  dispatch_path t link ~depth:0
    ~on_ufs:(fun (U ((module F), u)) p -> F.symlink u ~target ~link:p)
    ~on_kernel:(fun fs p -> Vfs.symlink fs ~target ~link:p)

let rename t src dst =
  Obs.with_syscall "rename" @@ fun () ->
  let* () = admit t ~op:"rename" in
  (* Both paths must land in the same file system. *)
  match (resolve_user_path t src, resolve_user_path t dst) with
  | To_kernel a, To_kernel b -> (
      match t.kernel_fs with
      | Some fs -> Vfs.rename fs a b
      | None -> Error Errno.ENOENT)
  | To_ufs _, To_ufs _ ->
      dispatch_path t src ~depth:0
        ~on_ufs:(fun (U ((module F), u)) p ->
          match resolve_user_path t dst with
          | To_ufs q -> F.rename u p q
          | To_kernel _ -> Ufs_intf.errno Errno.EXDEV)
        ~on_kernel:(fun _ _ -> Error Errno.EXDEV)
  | _ -> Error Errno.EXDEV

let truncate t path len =
  Obs.with_syscall "truncate" @@ fun () ->
  let* () = admit t ~op:"truncate" in
  let* fd = openf t path [ Fs_types.O_WRONLY ] 0 in
  let finish r =
    match Fd_table.close t.fds fd with
    | Ok _ | Error _ -> r
  in
  finish
    (match Fd_table.lookup t.fds fd with
    | Error e -> Error e
    | Ok ofd -> (
        match ofd.Fd_table.target with
        | Fd_table.Ufs { ctype; handle } -> (
            match Hashtbl.find_opt t.ufss ctype with
            | Some (U ((module F), u)) ->
                let r = protect_fd t (fun () -> F.ftruncate u handle len) in
                ignore (F.close u handle);
                r
            | None -> Error Errno.ENOSYS)
        | Fd_table.Kernel kfd -> (
            match t.kernel_fs with
            | Some fs ->
                let r = Vfs.ftruncate fs kfd len in
                ignore (Vfs.close fs kfd);
                r
            | None -> Error Errno.EBADF)))

(* ---- descriptor operations --------------------------------------------- *)

let with_ofd t fd f =
  let* ofd = Fd_table.lookup t.fds fd in
  f ofd

let ufs_of_ctype t ctype =
  match Hashtbl.find_opt t.ufss ctype with
  | Some u -> Ok u
  | None -> Error Errno.ENOSYS

let close t fd =
  Obs.with_syscall "close" @@ fun () ->
  let* () = admit t ~op:"close" in
  let* closed = Fd_table.close t.fds fd in
  match closed with
  | None -> Ok ()
  | Some (Fd_table.Ufs { ctype; handle }) ->
      let* (U ((module F), u)) = ufs_of_ctype t ctype in
      protect_fd t (fun () -> F.close u handle)
  | Some (Fd_table.Kernel kfd) -> (
      match t.kernel_fs with
      | Some fs -> Vfs.close fs kfd
      | None -> Error Errno.EBADF)

let read t fd buf boff len =
  Obs.with_syscall "read" @@ fun () ->
  let* () = admit t ~op:"read" in
  with_ofd t fd (fun ofd ->
      match ofd.Fd_table.target with
      | Fd_table.Ufs { ctype; handle } ->
          let* (U ((module F), u)) = ufs_of_ctype t ctype in
          let* n =
            protect_fd t (fun () ->
                F.read u handle ~off:ofd.Fd_table.offset buf boff len)
          in
          ofd.Fd_table.offset <- ofd.Fd_table.offset + n;
          Ok n
      | Fd_table.Kernel kfd -> (
          match t.kernel_fs with
          | Some fs -> Vfs.read fs kfd buf boff len
          | None -> Error Errno.EBADF))

let pread t fd ~off buf boff len =
  Obs.with_syscall "pread" @@ fun () ->
  let* () = admit t ~op:"pread" in
  with_ofd t fd (fun ofd ->
      match ofd.Fd_table.target with
      | Fd_table.Ufs { ctype; handle } ->
          let* (U ((module F), u)) = ufs_of_ctype t ctype in
          protect_fd t (fun () -> F.read u handle ~off buf boff len)
      | Fd_table.Kernel kfd -> (
          match t.kernel_fs with
          | Some fs -> Vfs.pread fs kfd ~off buf boff len
          | None -> Error Errno.EBADF))

let write t fd data =
  Obs.with_syscall "write" @@ fun () ->
  let* () = admit t ~op:"write" in
  with_ofd t fd (fun ofd ->
      match ofd.Fd_table.target with
      | Fd_table.Ufs { ctype; handle } ->
          let* (U ((module F), u)) = ufs_of_ctype t ctype in
          let off =
            if ofd.Fd_table.append then `Append else `At ofd.Fd_table.offset
          in
          let* n, end_off = protect_fd t (fun () -> F.write u handle ~off data) in
          ofd.Fd_table.offset <- end_off;
          Ok n
      | Fd_table.Kernel kfd -> (
          match t.kernel_fs with
          | Some fs -> Vfs.write fs kfd data
          | None -> Error Errno.EBADF))

let pwrite t fd ~off data =
  Obs.with_syscall "pwrite" @@ fun () ->
  let* () = admit t ~op:"pwrite" in
  with_ofd t fd (fun ofd ->
      match ofd.Fd_table.target with
      | Fd_table.Ufs { ctype; handle } ->
          let* (U ((module F), u)) = ufs_of_ctype t ctype in
          let* n, _ = protect_fd t (fun () -> F.write u handle ~off:(`At off) data) in
          Ok n
      | Fd_table.Kernel kfd -> (
          match t.kernel_fs with
          | Some fs -> Vfs.pwrite fs kfd ~off data
          | None -> Error Errno.EBADF))

let fstat t fd =
  Obs.with_syscall "fstat" @@ fun () ->
  let* () = admit t ~op:"fstat" in
  with_ofd t fd (fun ofd ->
      match ofd.Fd_table.target with
      | Fd_table.Ufs { ctype; handle } ->
          let* (U ((module F), u)) = ufs_of_ctype t ctype in
          protect_fd t (fun () -> F.fstat u handle)
      | Fd_table.Kernel kfd -> (
          match t.kernel_fs with
          | Some fs -> Vfs.fstat fs kfd
          | None -> Error Errno.EBADF))

let fsync t fd =
  Obs.with_syscall "fsync" @@ fun () ->
  let* () = admit t ~op:"fsync" in
  with_ofd t fd (fun ofd ->
      match ofd.Fd_table.target with
      | Fd_table.Ufs { ctype; handle } ->
          let* (U ((module F), u)) = ufs_of_ctype t ctype in
          protect_fd t (fun () -> F.fsync u handle)
      | Fd_table.Kernel kfd -> (
          match t.kernel_fs with
          | Some fs -> Vfs.fsync fs kfd
          | None -> Error Errno.EBADF))

let ftruncate t fd len =
  Obs.with_syscall "ftruncate" @@ fun () ->
  let* () = admit t ~op:"ftruncate" in
  with_ofd t fd (fun ofd ->
      match ofd.Fd_table.target with
      | Fd_table.Ufs { ctype; handle } ->
          let* (U ((module F), u)) = ufs_of_ctype t ctype in
          protect_fd t (fun () -> F.ftruncate u handle len)
      | Fd_table.Kernel kfd -> (
          match t.kernel_fs with
          | Some fs -> Vfs.ftruncate fs kfd len
          | None -> Error Errno.EBADF))

let lseek t fd pos whence =
  Obs.with_syscall "lseek" @@ fun () ->
  with_ofd t fd (fun ofd ->
      let* size =
        match whence with
        | Fs_types.SEEK_END ->
            let* st = fstat t fd in
            Ok st.Fs_types.st_size
        | _ -> Ok 0
      in
      let target =
        match whence with
        | Fs_types.SEEK_SET -> pos
        | Fs_types.SEEK_CUR -> ofd.Fd_table.offset + pos
        | Fs_types.SEEK_END -> size + pos
      in
      if target < 0 then Error Errno.EINVAL
      else begin
        ofd.Fd_table.offset <- target;
        Ok target
      end)

(* ---- process-level calls ------------------------------------------------ *)

let chdir t path =
  Obs.with_syscall "chdir" @@ fun () ->
  let abs = if Pathx.is_absolute path then Pathx.normalize path else Pathx.concat t.cwd path in
  let* st = stat t abs in
  if st.Fs_types.st_kind = Fs_types.Directory then begin
    t.cwd <- abs;
    Ok ()
  end
  else Error Errno.ENOTDIR

let getcwd t = t.cwd
let dup t fd = Obs.with_syscall "dup" @@ fun () -> Fd_table.dup t.fds fd

let dup2 t fd nfd =
  Obs.with_syscall "dup2" @@ fun () ->
  let* nfd, displaced = Fd_table.dup2 t.fds fd nfd in
  (match displaced with
  | Some (Fd_table.Ufs { ctype; handle }) -> (
      match ufs_of_ctype t ctype with
      | Ok (U ((module F), u)) -> ignore (F.close u handle)
      | Error _ -> ())
  | Some (Fd_table.Kernel kfd) -> (
      match t.kernel_fs with Some fs -> ignore (Vfs.close fs kfd) | None -> ())
  | None -> ());
  Ok nfd

(* The FD table serialized for exec (passed via an environment variable in
   the paper). *)
let serialize_fds t = Fd_table.serialize t.fds

let fd_table t = t.fds

(* Pack a dispatcher as a Vfs.fs. *)
module As_vfs = struct
  type nonrec t = t

  let name = name
  let openf = openf
  let mkdir = mkdir
  let rmdir = rmdir
  let unlink = unlink
  let rename = rename
  let stat = stat
  let lstat = lstat
  let readdir = readdir
  let chmod = chmod
  let chown = chown
  let symlink = symlink
  let readlink = readlink
  let truncate = truncate
  let close = close
  let read = read
  let pread = pread
  let write = write
  let pwrite = pwrite
  let lseek = lseek
  let fsync = fsync
  let fstat = fstat
  let ftruncate = ftruncate
end

let as_vfs t = Vfs.Fs ((module As_vfs), t)
