(** KernFS: the kernel half of Treasury (paper §3.2–§3.5, §4.1).

    KernFS owns global NVM space (the persistent allocation table), the
    persistent path→coffer hash table, coffer metadata (root pages), and the
    per-process coffer mappings (page tables + MPK keys).  It treats coffers
    as black boxes: it knows which pages belong to a coffer, never what the
    µFS stores inside.

    Every entry point is a system call: it pays the {!Gate} cost (trap +
    cache pollution) and serializes on the kernel lock — the reason very
    frequent [coffer_enlarge] calls bound ZoFS's scalability in the paper's
    Figure 7(d)/(g).  All permission checks compare the *calling simulated
    process*'s credentials against the coffer's owner/mode. *)

(** Reserved owner ids in the allocation table. *)

val cid_free : int
val cid_meta : int
val cid_pathmap : int

type t

(** What a process gets back from {!coffer_map}. *)
type mapping = {
  m_pkey : int;  (** the MPK region key protecting this coffer (1..15) *)
  m_writable : bool;  (** false when the caller only has read permission *)
  m_root_file : int;  (** byte address of the coffer's root-file inode page *)
  m_custom : int;  (** byte address of the µFS custom page *)
  m_ctype : int;  (** which µFS manages this coffer *)
}

val pte_update_cost : int
(** ns charged per page (un)mapped — PTE write + TLB bookkeeping. *)

(** {1 Fault-domain health (runtime state, volatile)} *)

(** Per-coffer health, driven by the dispatcher's fault handler: [Healthy]
    and [Suspect] serve everything, [Quarantined] is read-only, [Offline]
    rejects every access.  Rebuilt (all-Healthy) on mount. *)
type health = Healthy | Suspect | Quarantined | Offline

val health_to_string : health -> string

val coffer_health : t -> int -> health
(** Not a syscall: modeled as a load from a read-only shared page. *)

val set_coffer_health : t -> int -> health -> unit
(** Record a transition (bumps the matching [health.*] counter). *)

val quarantine_enabled : t -> bool

val set_quarantine_enabled : t -> bool -> unit
(** When disabled, repeated-failure coffers stay [Suspect] and keep serving
    writes — the chaos campaign's negative self-check must then detect the
    resulting containment violation. *)

val health_counts : t -> int * int * int * int
(** (healthy, suspect, quarantined, offline) over registered coffers. *)

val inject_transient : t -> ?errno:Errno.t -> n:int -> unit -> unit
(** Arm the next [n] allocation-path syscalls ([coffer_enlarge] /
    [coffer_map]) to fail with [errno] (default ENOMEM).  FSLib absorbs
    these with bounded retry + backoff. *)

val pending_transients : t -> int
(** Armed-but-not-yet-tripped transient failures (chaos accounting). *)

val clear_transients : t -> unit
(** Disarm any remaining transient failures (end-of-campaign drain, so a
    leftover injection cannot leak into the post-campaign fsck). *)

(** {1 Formatting and mounting} *)

val mkfs :
  Nvm.Device.t ->
  Mpk.t ->
  ?nbuckets:int ->
  root_ctype:int ->
  root_mode:int ->
  root_uid:int ->
  root_gid:int ->
  unit ->
  t
(** Format the device: superblock, allocation table, path map, and the root
    coffer at "/" (three pages, as every coffer: root page + root-file page
    + custom page).  The µFS must then initialize the root coffer's internal
    structure (e.g. {!Zofs.Ufs.mkfs}). *)

val mount : Nvm.Device.t -> Mpk.t -> t
(** Reload an existing file system: rescans the allocation table (owner
    words are authoritative; run-length hints are repaired) and the path
    map. *)

val device : t -> Nvm.Device.t
val mpk : t -> Mpk.t
val gate : t -> Gate.t
val root_coffer : t -> int
val alloc_table : t -> Alloc_table.t

(** {1 FS registry (paper Table 5: fs_mount / fs_umount)} *)

val fs_mount : t -> (unit, Errno.t) result
(** Register the calling process as an FSLibs instance.  Required before
    any coffer operation. *)

val fs_umount : t -> (unit, Errno.t) result
(** Unmap everything and deregister the calling process. *)

val on_setuid : t -> (unit, Errno.t) result
(** Tear down all of the calling process's mappings (the kernel does this
    when uid/gid change, §3.3). *)

val reap_process : t -> pid:int -> (unit, Errno.t) result
(** Deregister a {e dead} process on its behalf: a process killed mid-run
    (see [Sim.kill_process]) can never call {!fs_umount} itself, so a
    surviving thread reaps it — unmaps every coffer, forgets the pid's page
    table, and drops its threads' PKRU/kernel-mode state.  Leases the victim
    held are left to expire in NVM (stealers + intention-record repair own
    that).  [EBUSY] while any thread of [pid] is still alive. *)

(** {1 Coffer operations (paper Table 5)} *)

val coffer_stat : t -> int -> (Coffer.info, Errno.t) result

val coffer_find : t -> string -> (int, Errno.t) result
(** Exact path-map lookup. *)

val coffer_locate : t -> string -> (string * int, Errno.t) result
(** Longest registered coffer prefix of a path (the µFS cold-cache anchor). *)

val coffer_new :
  t ->
  path:string ->
  ctype:int ->
  mode:int ->
  uid:int ->
  gid:int ->
  (Coffer.info, Errno.t) result
(** Create a coffer (3 pages) under the coffer owning the parent path; the
    caller must be able to write that parent coffer. *)

val coffer_delete : t -> int -> (unit, Errno.t) result
(** Unmap everywhere, free all pages, remove the path-map entry. *)

val coffer_enlarge : t -> int -> n:int -> ((int * int) list, Errno.t) result
(** Grant up to [n] more pages (as page runs) to the coffer and map them
    into every process currently mapping it.  Pays a TLB shootdown — the
    scalability-limiting kernel work of Figure 7(d)/(g).  Pages are granted
    in chunks: allocation pressure (a transient fault, or the table filling
    up) after the first chunk returns a partial, nonempty grant instead of
    an error, and the call's metrics ([enlarge_count], the shootdown) are
    paid exactly once either way.  An error means no pages were granted. *)

val coffer_shrink : t -> int -> runs:(int * int) list -> (unit, Errno.t) result
(** Return pages to the global pool (validated to belong to the coffer and
    to exclude its root page). *)

val coffer_map : t -> int -> (mapping, Errno.t) result
(** Permission-check the caller, assign a free MPK key (of the 15 usable),
    and map every page of the coffer — root page read-only — into the
    calling process.  [EMFILE] when all 15 regions are taken (the µFS should
    unmap something and retry, §3.4.2); [EBUSY] during recovery. *)

val coffer_unmap : t -> int -> (unit, Errno.t) result

val coffer_chmod : t -> int -> mode:int -> uid:int -> gid:int -> (unit, Errno.t) result
(** Change the whole coffer's permission in place (owner or root only) and
    unmap it everywhere so mappings are re-checked. *)

val coffer_split :
  t ->
  src:int ->
  new_path:string ->
  ctype:int ->
  mode:int ->
  uid:int ->
  gid:int ->
  runs:(int * int) list ->
  root_file:int ->
  custom:int ->
  (Coffer.info, Errno.t) result
(** Move [runs] (chosen by the µFS) out of [src] into a brand-new coffer
    with a new permission — the expensive operation behind ZoFS's chmod
    (paper §6.4, Table 9). *)

val coffer_merge : t -> dst:int -> src:int -> (unit, Errno.t) result
(** Absorb [src] (same permission required) into [dst]; src's root page is
    freed and dst's mappers see the adopted pages. *)

val coffer_rename : t -> int -> new_path:string -> (unit, Errno.t) result
(** Re-key the coffer and every descendant coffer in the path map, and
    update their root pages. *)

(** {1 Recovery protocol (paper §3.5)} *)

val coffer_recover_begin : t -> int -> ((int * int) list, Errno.t) result
(** Mark in-recovery (with a lease in the root page), unmap the coffer from
    everyone but the caller, and return its page runs. *)

val coffer_recover_end : t -> int -> in_use:int list -> (unit, Errno.t) result
(** The initiator reports the page numbers still in use; every other page of
    the coffer is reclaimed into the global pool. *)

(** {1 File operations needing the kernel (paper §3.3)} *)

val file_mmap : t -> cid:int -> pages:int list -> (unit, Errno.t) result
(** Validate that [pages] belong to a coffer the caller has mapped, then
    install the user mapping (per-page PTE cost). *)

val file_execve : t -> cid:int -> pages:int list -> (unit, Errno.t) result
(** Coffer pages are never executable; execve validates the image pages and
    builds a private executable copy. *)

(** {1 Introspection} *)

val list_coffers : t -> (Coffer.info list, Errno.t) result

val reclaim_orphan_runs : t -> ((int * int * int) list, Errno.t) result
(** fsck support: free allocation-table runs whose owner is not a registered
    coffer (residue of a coffer creation torn before its path-map insert
    persisted).  Returns the reclaimed [(owner, start, len)] runs. *)

val page_owner : t -> page:int -> (int, Errno.t) result
(** Owning coffer-ID of a page (0 = free); used by fsck to validate
    pointers. *)

val enlarge_count : t -> int
val free_pages : t -> int
val coffer_count : t -> int
val mapped_coffers : t -> (int * mapping) list
