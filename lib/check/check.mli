(** Analysis layer over the simulated hardware: a pmemcheck-style
    persistence-ordering checker, an MPK guideline (G1–G3) checker, and an
    Eraser-style lease-lock discipline checker.

    One checker instance observes one {!Nvm.Device} (and optionally one
    {!Mpk.t}) through their trace hooks.  The µFS annotates its publish
    points — lease release, dentry insert, inode commit — and the checker
    verifies at each that everything the publish makes reachable has
    completed the flush-then-fence protocol.  Violations carry a
    simulated-time stamp and a call-site label; perf smells (redundant
    flushes/fences, overwritten-before-flush stores) are lint counters that
    never fail a run. *)

type mode = Off | Log | Fail
(** [Off]: don't even track.  [Log]: record violations.  [Fail]: record and
    raise {!Violation} at the detection site. *)

type checker = Persist | Guideline | Lock

type violation = {
  v_checker : checker;
  v_rule : string;
      (** "missing-flush", "missing-fence", "G1", "G2", "G3",
          "write-without-lease", "double-acquire", "unpaired-release" *)
  v_addr : int;
  v_tid : int;
  v_time : int;  (** simulated ns *)
  v_label : string;  (** publish-point / call-site label *)
}

exception Violation of violation

val checker_name : checker -> string
val string_of_violation : violation -> string

(** {1 Attach / detach} *)

type t

val attach :
  ?mpk:Mpk.t -> ?persist:mode -> ?guideline:mode -> ?lock:mode ->
  Nvm.Device.t -> t
(** Install the checker on [dev]'s (and [mpk]'s) trace hooks and make it the
    current instance consulted by the annotation API.  All modes default to
    [Log].  Without [mpk], the G1/G2 rules are inert (no PKRU stream) and
    kernel mode cannot be detected. *)

val detach : unit -> unit
val set_mode : t -> checker -> mode -> unit

(** {1 Deferred attach (CLI)}

    Workloads build their device inside the measurement setup, so the CLI
    cannot attach directly: it declares modes with {!enable_auto} and
    [Fslab.make_zofs] calls {!auto_attach} on every world it creates. *)

val enable_auto : persist:mode -> guideline:mode -> lock:mode -> unit
val disable_auto : unit -> unit
val auto_attach : Nvm.Device.t -> Mpk.t -> unit

(** {1 Annotations (no-ops unless attached to [dev])} *)

val publish : Nvm.Device.t -> label:string -> int -> int -> unit
(** [publish dev ~label addr len] declares that [addr, addr+len) becomes
    reachable now: any byte of it still dirty (missing-flush) or flushing
    but unfenced (missing-fence) is a violation. *)

val register_lease :
  ?publish:bool -> Nvm.Device.t -> lease:int -> addr:int -> len:int -> unit
(** Declare that the lease word at [lease] protects [addr, addr+len).
    Writes to the range without holding the lease are violations — but only
    after the lease's first acquire, so initialization before the structure
    is published stays silent (Eraser-style grace).  The 8 lease-word bytes
    are exempt from durability checks (leases are deliberately never
    flushed: they expire by construction after a crash).  If [publish]
    (default true), releasing the lease is a publish point for the range. *)

val on_lease_acquired : Nvm.Device.t -> int -> unit
val on_lease_release : Nvm.Device.t -> int -> unit
(** Called by [Lease]; release checks pairing and (for registered leases)
    range durability {e before} the release store. *)

val on_free : Nvm.Device.t -> int -> int -> unit
(** [on_free dev addr len]: the structure occupying [addr, addr+len) was
    freed; unregister its leases and drop taints (the page will be recycled
    with a different layout). *)

val taint_cross : Nvm.Device.t -> int -> unit
(** Mark an address read out of {e another} coffer (G3 taint).  Dereferencing
    a tainted page before {!validate_cross} is a G3 violation. *)

val validate_cross : Nvm.Device.t -> int -> unit
(** The address has been validated (e.g. against KernFS's coffer mapping):
    clear its taint. *)

(** {1 Report} *)

type report = {
  r_violations : violation list;  (** oldest first *)
  r_lints : (string * int) list;
}

val report : unit -> report
val reset_report : unit -> unit
val print_report : unit -> unit
