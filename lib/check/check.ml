(* Always-available analysis layer over the simulated hardware, in the
   spirit of pmemcheck (persistence ordering) and Eraser (lock discipline):

   - the persistence checker mirrors Nvm.Device's per-line dirty -> flushing
     -> durable state from the trace-event stream and verifies, at declared
     publish points, that everything a publish makes reachable is durable;
   - the guideline checker watches Mpk's PKRU stream and every NVM access to
     enforce the paper's coffer guidelines G1-G3 (section 3.4);
   - the lock checker tracks Lease.acquire/release pairing and flags writes
     to lease-protected ranges made without holding the lease.

   One checker instance is attached to one device at a time (the workloads
   build exactly one device per measurement); the violation log and lint
   counters are module-global so a run that spans many short-lived devices
   still yields one report. *)

type mode = Off | Log | Fail
type checker = Persist | Guideline | Lock

type violation = {
  v_checker : checker;
  v_rule : string;
  v_addr : int;
  v_tid : int;
  v_time : int;  (* simulated ns *)
  v_label : string;  (* call-site / publish-point label *)
}

exception Violation of violation

let checker_name = function
  | Persist -> "persist"
  | Guideline -> "guideline"
  | Lock -> "lock"

let string_of_violation v =
  Printf.sprintf "[%s] %s at 0x%x (tid %d, t=%dns, %s)" (checker_name v.v_checker)
    v.v_rule v.v_addr v.v_tid v.v_time v.v_label

(* ---- module-global report state -------------------------------------- *)

let all_violations : violation list ref = ref []
let lints : (string, int ref) Hashtbl.t = Hashtbl.create 16

let lint name =
  match Hashtbl.find_opt lints name with
  | Some r -> incr r
  | None -> Hashtbl.replace lints name (ref 1)

type report = {
  r_violations : violation list;  (* oldest first *)
  r_lints : (string * int) list;
}

let report () =
  {
    r_violations = List.rev !all_violations;
    r_lints =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) lints []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

let reset_report () =
  all_violations := [];
  Hashtbl.reset lints

let print_report () =
  let r = report () in
  List.iter (fun v -> Printf.printf "  %s\n" (string_of_violation v)) r.r_violations;
  List.iter (fun (name, n) -> Printf.printf "  lint %-32s %d\n" name n) r.r_lints;
  if r.r_violations = [] && r.r_lints = [] then Printf.printf "  clean\n"

(* ---- checker instance ------------------------------------------------- *)

(* Byte-granular mirror of one cache line's pending state.  Byte granularity
   matters because a lease word shares its line with inode metadata: the
   lease word is deliberately never made durable (leases expire by
   construction after a crash, section 5.2), and must not mask — or trigger —
   durability findings for its neighbours. *)
type pline = {
  dirty : Bytes.t;  (* line_size bytes, '\001' = written since last durable *)
  mutable ndirty : int;
  mutable flushing : bool;  (* clwb/nt-store issued, fence still pending *)
}

type lease_info = {
  li_lease : int;  (* address of the lease word *)
  li_addr : int;  (* protected range *)
  li_len : int;
  li_publish : bool;  (* releasing this lease is a publish point *)
  mutable li_enforced : bool;  (* set at first acquire (Eraser-style grace) *)
}

type modes = {
  mutable m_persist : mode;
  mutable m_guideline : mode;
  mutable m_lock : mode;
}

type t = {
  dev : Nvm.Device.t;
  mpk : Mpk.t option;
  modes : modes;
  (* persist *)
  lines : (int, pline) Hashtbl.t;  (* line index -> pending state *)
  mutable flushing_lines : int list;
  exempt : (int, unit) Hashtbl.t;  (* 8-aligned addr of a lease word *)
  (* guideline *)
  scope_depth : (int, int) Hashtbl.t;  (* tid -> with_keys nesting *)
  taints : (int, unit) Hashtbl.t;  (* page base -> cross-coffer, unvalidated *)
  g1_seen : (int * int, unit) Hashtbl.t;  (* (tid, page) already reported *)
  (* lock *)
  leases : (int, lease_info) Hashtbl.t;  (* lease word addr -> info *)
  by_page : (int, int list ref) Hashtbl.t;  (* page -> lease word addrs *)
  held : (int * int, unit) Hashtbl.t;  (* (tid, lease word addr) *)
  lock_seen : (int * int, unit) Hashtbl.t;  (* (tid, lease) already reported *)
}

let mode_of t = function
  | Persist -> t.modes.m_persist
  | Guideline -> t.modes.m_guideline
  | Lock -> t.modes.m_lock

let now () = if Sim.in_sim () then Sim.now () else 0
let tid () = Sim.self_tid ()

let violate t ck rule ~addr ~label =
  match mode_of t ck with
  | Off -> ()
  | m ->
      let v =
        {
          v_checker = ck;
          v_rule = rule;
          v_addr = addr;
          v_tid = tid ();
          v_time = now ();
          v_label = label;
        }
      in
      all_violations := v :: !all_violations;
      if m = Fail then raise (Violation v)

let in_kernel t =
  match t.mpk with Some m -> Mpk.in_kernel m | None -> false

(* ---- persistence checker ---------------------------------------------- *)

let line_size = Nvm.line_size

let pline t line =
  match Hashtbl.find_opt t.lines line with
  | Some st -> st
  | None ->
      let st = { dirty = Bytes.make line_size '\000'; ndirty = 0; flushing = false } in
      Hashtbl.replace t.lines line st;
      st

let start_flushing t line st =
  if not st.flushing then begin
    st.flushing <- true;
    t.flushing_lines <- line :: t.flushing_lines
  end

let persist_store t addr len ~nt =
  if t.modes.m_persist <> Off && len > 0 then begin
    let first = addr / line_size and last = (addr + len - 1) / line_size in
    let overwrote = ref false in
    for line = first to last do
      let st = pline t line in
      if nt then start_flushing t line st;
      let lo = max addr (line * line_size)
      and hi = min (addr + len) ((line + 1) * line_size) in
      for b = lo to hi - 1 do
        let off = b - (line * line_size) in
        if Bytes.get st.dirty off = '\001' then overwrote := true
        else begin
          Bytes.set st.dirty off '\001';
          st.ndirty <- st.ndirty + 1
        end
      done
    done;
    if !overwrote && not nt then lint "store-overwritten-before-flush"
  end

let persist_clwb t addr =
  if t.modes.m_persist <> Off then begin
    let line = addr / line_size in
    match Hashtbl.find_opt t.lines line with
    | Some st when (not st.flushing) && st.ndirty > 0 -> start_flushing t line st
    | _ -> lint "redundant-flush"
  end

let persist_fence t =
  if t.modes.m_persist <> Off then begin
    if t.flushing_lines = [] then lint "redundant-fence"
    else List.iter (fun line -> Hashtbl.remove t.lines line) t.flushing_lines;
    t.flushing_lines <- []
  end

let persist_reset t =
  Hashtbl.reset t.lines;
  t.flushing_lines <- []

let byte_exempt t b = Hashtbl.mem t.exempt (b land lnot 7)

(* A publish point: every non-exempt byte of [addr, addr+len) written since
   it was last durable must have completed the flush-then-fence protocol. *)
let do_publish t ~label addr len =
  if t.modes.m_persist <> Off && len > 0 then begin
    let first = addr / line_size and last = (addr + len - 1) / line_size in
    for line = first to last do
      match Hashtbl.find_opt t.lines line with
      | None -> ()
      | Some st ->
          let lo = max addr (line * line_size)
          and hi = min (addr + len) ((line + 1) * line_size) in
          let bad = ref (-1) in
          for b = hi - 1 downto lo do
            if Bytes.get st.dirty (b - (line * line_size)) = '\001'
               && not (byte_exempt t b)
            then bad := b
          done;
          if !bad >= 0 then
            if st.flushing then
              violate t Persist "missing-fence" ~addr:!bad ~label
            else violate t Persist "missing-flush" ~addr:!bad ~label
    done
  end

(* ---- guideline checker ------------------------------------------------- *)

let depth tbl k = match Hashtbl.find_opt tbl k with Some d -> d | None -> 0

let bump tbl k delta =
  let d = depth tbl k + delta in
  if d <= 0 then Hashtbl.remove tbl k else Hashtbl.replace tbl k d

(* G2: no thread may make two coffers writable at once (one stray pointer
   could then corrupt both). *)
let check_g2 t perms ~label =
  if t.modes.m_guideline <> Off then begin
    let writable =
      List.filter_map
        (fun (k, p) -> if k <> 0 && p = Mpk.Pk_read_write then Some k else None)
        perms
      |> List.sort_uniq compare
    in
    if List.length writable >= 2 then
      violate t Guideline "G2" ~addr:0 ~label
  end

let guideline_access t addr ~write:_ =
  if t.modes.m_guideline <> Off && not (in_kernel t) then begin
    let base = addr - (addr mod Nvm.page_size) in
    (* G3: dereferencing an address read out of another coffer without
       validating it first.  Taints are set by Dir.read_dentry on
       cross-coffer entries and cleared by validate_cross. *)
    if Hashtbl.mem t.taints base then begin
      Hashtbl.remove t.taints base;
      violate t Guideline "G3" ~addr ~label:"cross-coffer-deref-unvalidated"
    end;
    (* G1: user-mode NVM access to a keyed page with no coffer window open. *)
    match t.mpk with
    | None -> ()
    | Some m ->
        if Sim.in_sim () then begin
          let page = addr / Nvm.page_size in
          match
            Mpk.page_pkey m ~pid:(Sim.self_proc ()).Sim.Proc.pid ~page
          with
          | Some key when key <> 0 && depth t.scope_depth (tid ()) = 0 ->
              if not (Hashtbl.mem t.g1_seen (tid (), page)) then begin
                Hashtbl.replace t.g1_seen (tid (), page) ();
                violate t Guideline "G1" ~addr ~label:"nvm-access-outside-window"
              end
          | _ -> ()
        end
  end

(* ---- lock-discipline checker ------------------------------------------- *)

let lock_store t addr len =
  if t.modes.m_lock <> Off && not (in_kernel t) && len > 0 then begin
    let first = addr / Nvm.page_size and last = (addr + len - 1) / Nvm.page_size in
    for page = first to last do
      match Hashtbl.find_opt t.by_page page with
      | None -> ()
      | Some ls ->
          List.iter
            (fun l ->
              match Hashtbl.find_opt t.leases l with
              | Some info
                when info.li_enforced
                     && addr < info.li_addr + info.li_len
                     && addr + len > info.li_addr
                     && not (addr >= l && addr + len <= l + 8)
                     && not (Hashtbl.mem t.held (tid (), l)) ->
                  if not (Hashtbl.mem t.lock_seen (tid (), l)) then begin
                    Hashtbl.replace t.lock_seen (tid (), l) ();
                    violate t Lock "write-without-lease" ~addr ~label:"store"
                  end
              | _ -> ())
            !ls
    done
  end

(* ---- event plumbing ---------------------------------------------------- *)

let on_nvm_event t (ev : Nvm.Device.trace_event) =
  match ev with
  | T_store { addr; len; _ } ->
      persist_store t addr len ~nt:false;
      guideline_access t addr ~write:true;
      lock_store t addr len
  | T_nt_store { addr; len; _ } ->
      persist_store t addr len ~nt:true;
      guideline_access t addr ~write:true;
      lock_store t addr len
  | T_cas { addr; len; _ } ->
      (* A successful CAS is a store for persistence/guideline/lock
         purposes; its synchronization role only matters to lib/race. *)
      persist_store t addr len ~nt:false;
      guideline_access t addr ~write:true;
      lock_store t addr len
  | T_load { addr; _ } -> guideline_access t addr ~write:false
  | T_clwb { addr; _ } -> persist_clwb t addr
  | T_fence _ -> persist_fence t
  | T_media_fault _ ->
      (* An uncorrectable media error is an environment fault, not a software
         rule violation: record it as a lint so reports show the run was
         exposed to injected hardware failures. *)
      lint "media-fault"
  | T_reset -> persist_reset t

let on_mpk_event t (ev : Mpk.trace_event) =
  match ev with
  | M_wrpkru { perms } -> check_g2 t perms ~label:"wrpkru"
  | M_scope_enter { perms } ->
      check_g2 t perms ~label:"with_keys";
      bump t.scope_depth (tid ()) 1
  | M_scope_exit -> bump t.scope_depth (tid ()) (-1)

(* ---- attach / detach --------------------------------------------------- *)

let current : t option ref = ref None

let attach ?mpk ?(persist = Log) ?(guideline = Log) ?(lock = Log) dev =
  (match !current with
  | Some old ->
      Nvm.Device.unsubscribe_named old.dev ~name:"check";
      (match old.mpk with
      | Some m -> Mpk.unsubscribe_named m ~name:"check"
      | None -> ())
  | None -> ());
  let t =
    {
      dev;
      mpk;
      modes = { m_persist = persist; m_guideline = guideline; m_lock = lock };
      lines = Hashtbl.create 1024;
      flushing_lines = [];
      exempt = Hashtbl.create 64;
      scope_depth = Hashtbl.create 16;
      taints = Hashtbl.create 16;
      g1_seen = Hashtbl.create 16;
      leases = Hashtbl.create 64;
      by_page = Hashtbl.create 64;
      held = Hashtbl.create 16;
      lock_seen = Hashtbl.create 16;
    }
  in
  Nvm.Device.subscribe_named dev ~name:"check" (on_nvm_event t);
  (match mpk with
  | Some m -> Mpk.subscribe_named m ~name:"check" (on_mpk_event t)
  | None -> ());
  current := Some t;
  t

let detach () =
  match !current with
  | None -> ()
  | Some t ->
      Nvm.Device.unsubscribe_named t.dev ~name:"check";
      (match t.mpk with
      | Some m -> Mpk.unsubscribe_named m ~name:"check"
      | None -> ());
      current := None

let set_mode t ck m =
  match ck with
  | Persist -> t.modes.m_persist <- m
  | Guideline -> t.modes.m_guideline <- m
  | Lock -> t.modes.m_lock <- m

(* Deferred attach for CLI use: the workloads build their device inside the
   measurement setup, so Fslab calls [auto_attach] on every world it makes
   and the CLI just declares the modes up front. *)
let auto_modes : (mode * mode * mode) option ref = ref None
let enable_auto ~persist ~guideline ~lock = auto_modes := Some (persist, guideline, lock)
let disable_auto () = auto_modes := None

let auto_attach dev mpk =
  match !auto_modes with
  | None -> ()
  | Some (persist, guideline, lock) ->
      ignore (attach ~mpk ~persist ~guideline ~lock dev)

(* ---- annotation API (no-ops unless attached to this device) ------------ *)

let with_current dev f =
  match !current with Some t when t.dev == dev -> f t | _ -> ()

let publish dev ~label addr len =
  with_current dev (fun t -> do_publish t ~label addr len)

let register_lease ?(publish = true) dev ~lease ~addr ~len =
  with_current dev (fun t ->
      Hashtbl.replace t.leases lease
        { li_lease = lease; li_addr = addr; li_len = len; li_publish = publish;
          li_enforced = false };
      Hashtbl.replace t.exempt lease ();
      let first = addr / Nvm.page_size and last = (addr + len - 1) / Nvm.page_size in
      for page = first to last do
        match Hashtbl.find_opt t.by_page page with
        | Some ls -> if not (List.mem lease !ls) then ls := lease :: !ls
        | None -> Hashtbl.replace t.by_page page (ref [ lease ])
      done)

let on_lease_acquired dev lease =
  with_current dev (fun t ->
      (match Hashtbl.find_opt t.leases lease with
      | Some info -> info.li_enforced <- true
      | None -> ());
      if t.modes.m_lock <> Off then
        if Hashtbl.mem t.held (tid (), lease) then
          violate t Lock "double-acquire" ~addr:lease ~label:"lease-acquire"
        else Hashtbl.replace t.held (tid (), lease) ())

let on_lease_release dev lease =
  with_current dev (fun t ->
      (* Releasing a lease publishes the structure it protects: check the
         range's durability before the release store happens. *)
      (match Hashtbl.find_opt t.leases lease with
      | Some info when info.li_publish ->
          do_publish t ~label:"lease-release" info.li_addr info.li_len
      | _ -> ());
      if t.modes.m_lock <> Off then
        if Hashtbl.mem t.held (tid (), lease) then
          Hashtbl.remove t.held (tid (), lease)
        else violate t Lock "unpaired-release" ~addr:lease ~label:"lease-release")

(* Structure freed: stop enforcing its lease (the page will be recycled with
   a different layout) and drop any taint on it. *)
let on_free dev addr len =
  with_current dev (fun t ->
      let first = addr / Nvm.page_size and last = (addr + len - 1) / Nvm.page_size in
      for page = first to last do
        Hashtbl.remove t.taints (page * Nvm.page_size);
        match Hashtbl.find_opt t.by_page page with
        | None -> ()
        | Some ls ->
            List.iter
              (fun l ->
                (match Hashtbl.find_opt t.leases l with
                | Some info
                  when info.li_addr >= addr && info.li_addr + info.li_len <= addr + len
                  ->
                    Hashtbl.remove t.leases l;
                    Hashtbl.remove t.exempt l;
                    let stale =
                      Hashtbl.fold
                        (fun ((_, hl) as k) () acc -> if hl = l then k :: acc else acc)
                        t.held []
                    in
                    List.iter (Hashtbl.remove t.held) stale
                | _ -> ()))
              !ls;
            ls := List.filter (Hashtbl.mem t.leases) !ls;
            if !ls = [] then Hashtbl.remove t.by_page page
      done)

let taint_cross dev value =
  with_current dev (fun t ->
      if t.modes.m_guideline <> Off && not (in_kernel t) then
        Hashtbl.replace t.taints value ())

let validate_cross dev value =
  with_current dev (fun t -> Hashtbl.remove t.taints value)
