(* crashmc: systematic crash-point enumeration with recovery replay.

   The device (lib/nvm) already models the machinery that makes NVM crash
   consistency hard: stores land in a volatile view and only reach the
   durable view through clwb/sfence (or nt-store + sfence), and a crash
   resolves each pending line independently.  This checker turns that into
   a model checker:

     1. [prepare] runs a workload's setup, persists it, and snapshots the
        device.  An in-memory oracle ({!Model}) mirrors the op list.
     2. A record pass replays the body from the snapshot and counts every
        persistence-level trace event (store / nt-store / clwb / sfence).
        Each event index is a candidate crash point: "power failed right
        after this much reached the memory subsystem".
     3. For each chosen point the body is replayed again from the same
        snapshot — byte-for-byte identical, the simulator is deterministic —
        and aborted mid-flight at the k-th event.  The device then crashes
        under a line-survival policy, a fresh "reboot" mounts it,
        {!Zofs.Recovery.recover_all} repairs it, and the resulting tree is
        read back and compared against the oracle.
     4. The recovered state must equal the model at the prefix of
        acknowledged ops, modulo the one op that was in flight when power
        failed (whose torn intermediate states are enumerated per op kind).
        Recovery must also be a fixpoint (a second run repairs nothing) and
        leave the allocation table internally consistent.

   ZoFS acknowledges an op only after fencing it (§5.2: in-place updates
   ordered by clwb/sfence), so acknowledged-implies-durable is the honest
   contract to check — and exactly what the fence-drop negative test
   ({!check_missing_fence}) proves the checker can see breaking. *)

module Model = Model
module D = Nvm.Device
module K = Treasury.Kernfs
module V = Treasury.Vfs
module Ft = Treasury.Fs_types
module E = Treasury.Errno
module Pathx = Treasury.Pathx
module Op = Workloads.Opscript
module Recovery = Zofs.Recovery

exception Crash_now

(* ---- running a script against ZoFS ------------------------------------- *)

(* A per-"boot" FSLibs instance: dispatcher + ZoFS µFS, as a Vfs. *)
let make_fs kfs =
  let disp = Treasury.Dispatcher.create kfs in
  let ufs = Zofs.Ufs.create kfs in
  Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
  Treasury.Dispatcher.as_vfs disp

(* Full recursive listing of the mounted tree, in {!Model.entry} form. *)
let read_fs fs : Model.entry list =
  let acc = ref [] in
  let rec go path =
    match V.readdir fs path with
    | Error e ->
        failwith (Printf.sprintf "read_fs: readdir %s: %s" path (E.to_string e))
    | Ok entries ->
        List.iter
          (fun de ->
            let p = Pathx.concat path de.Ft.d_name in
            match de.Ft.d_kind with
            | Ft.Directory ->
                acc := (p, `Dir) :: !acc;
                go p
            | Ft.Regular | Ft.Symlink -> (
                match V.read_file fs p with
                | Ok data -> acc := (p, `File data) :: !acc
                | Error e ->
                    failwith
                      (Printf.sprintf "read_fs: read %s: %s" p (E.to_string e))))
          entries
  in
  go "/";
  List.sort compare !acc

type world = {
  w_name : string;
  w_dev : D.t;
  w_snap : D.snapshot;  (* device state after setup, fully persisted *)
  w_body : Op.op array;
  w_models : Model.t array;  (* w_models.(i) = oracle after i body ops *)
  w_results : (unit, E.t) result array;  (* oracle verdict of each body op *)
}

let prepare ?(pages = 1024) (s : Op.script) =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(pages * Nvm.page_size) () in
  Sim.run_thread (fun () ->
      let mpk = Mpk.create dev in
      let kfs =
        K.mkfs dev mpk ~nbuckets:512 ~root_ctype:Zofs.Ufs.ctype ~root_mode:0o777
          ~root_uid:0 ~root_gid:0 ()
      in
      Zofs.Ufs.mkfs kfs;
      let fs = make_fs kfs in
      List.iter
        (fun op ->
          match Op.apply fs op with
          | Ok () -> ()
          | Error e ->
              failwith
                (Printf.sprintf "crashmc %s: setup op %s failed: %s" s.Op.sname
                   (Op.op_to_string op) (E.to_string e)))
        s.Op.setup;
      D.persist_all dev);
  let snap = D.snapshot dev in
  let m0 = Model.create () in
  List.iter (fun op -> ignore (Model.apply m0 op)) s.Op.setup;
  let body = Array.of_list s.Op.body in
  let n = Array.length body in
  let models = Array.make (n + 1) m0 in
  let results = Array.make (max n 1) (Ok ()) in
  for i = 0 to n - 1 do
    let m = Model.copy models.(i) in
    results.(i) <- Model.apply m body.(i);
    models.(i + 1) <- m
  done;
  {
    w_name = s.Op.sname;
    w_dev = dev;
    w_snap = snap;
    w_body = body;
    w_models = models;
    w_results = results;
  }

let count_event = function
  | D.T_store _ | D.T_nt_store _ | D.T_cas _ | D.T_clwb _ | D.T_fence _ ->
      true
  | D.T_load _ | D.T_media_fault _ | D.T_reset -> false

type replay_result = {
  rp_events : int;  (* persistence events counted (at the crash, or body end) *)
  rp_acked : int;  (* body ops that completed before the crash *)
  rp_dump : Model.entry list option;  (* tree listing; no-crash replays only *)
}

(* Replay the body from the setup snapshot in a fresh boot.  [crash_at k]
   aborts mid-syscall the instant the k-th persistence event has been
   applied.  [fence_drop (i, n)] arms the device's fence-drop injection just
   before body op [i].  The trace subscriber is attached only after
   [K.mount], because mounting itself repairs allocation-table run-length
   hints (writes) that are not part of the workload's event stream; record
   and exploration passes share this exact code path, so their event
   numbering agrees.

   [procs > 1] replays the body from that many simulated PROCESSES: body op
   [i] is issued by process [i mod procs] through that process's own FSLib
   (own dispatcher, own mappings), in body order — a deterministic baton, so
   the oracle's linear semantics still apply, but every op observes the
   previous op's publish from a different process, and a crash point can
   land exactly between one process's publish and the other's read of it.
   A [Crash_now] raised in any process aborts the whole world (power fails
   for everyone at once). *)
let replay ?crash_at ?fence_drop ?(procs = 1) w =
  D.restore w.w_dev w.w_snap;
  let events = ref 0 and acked = ref 0 in
  let body_events = ref 0 in
  let sub = ref None in
  let dump = ref None in
  let attach_subscriber () =
    sub :=
      Some
        (D.add_trace_subscriber w.w_dev (fun ev ->
             if count_event ev then begin
               incr events;
               match crash_at with
               | Some k when !events >= k -> raise Crash_now
               | _ -> ()
             end))
  in
  let arm_fence_drop i =
    match fence_drop with
    | Some (target, n) when i = target -> D.inject_drop_fences w.w_dev n
    | _ -> ()
  in
  (try
     if procs <= 1 then
       Sim.run_thread (fun () ->
           let mpk = Mpk.create w.w_dev in
           let kfs = K.mount w.w_dev mpk in
           attach_subscriber ();
           let fs = make_fs kfs in
           Array.iteri
             (fun i op ->
               arm_fence_drop i;
               ignore (Op.apply fs op);
               acked := i + 1)
             w.w_body;
           body_events := !events;
           if crash_at = None then dump := Some (read_fs fs))
     else begin
       let wld = Sim.create () in
       let n = Array.length w.w_body in
       let next = ref 0 in
       (* one op in flight at a time, in body order; everyone else idles *)
       let apply_slice me fs =
         while !next < n do
           if !next mod procs = me then begin
             let i = !next in
             arm_fence_drop i;
             ignore (Op.apply fs w.w_body.(i));
             acked := i + 1;
             incr next
           end
           else Sim.advance 50
         done
       in
       Sim.spawn wld
         ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ())
         ~name:"proc-0"
         (fun () ->
           let mpk = Mpk.create w.w_dev in
           let kfs = K.mount w.w_dev mpk in
           attach_subscriber ();
           for p = 1 to procs - 1 do
             Sim.spawn wld
               ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ())
               ~name:(Printf.sprintf "proc-%d" p)
               (fun () -> apply_slice p (make_fs kfs))
           done;
           let fs0 = make_fs kfs in
           apply_slice 0 fs0;
           body_events := !events;
           if crash_at = None then dump := Some (read_fs fs0));
       Sim.run wld
     end
   with Crash_now -> ());
  (match !sub with Some id -> D.remove_trace_subscriber w.w_dev id | None -> ());
  {
    rp_events = (if !body_events > 0 then !body_events else !events);
    rp_acked = !acked;
    rp_dump = !dump;
  }

(* ---- recovery + structural checks --------------------------------------- *)

(* Reboot the crashed device, recover, and read the tree back.  Raises
   [Failure] when a structural invariant breaks: allocation-table
   inconsistency, or recovery failing to reach a fixpoint (the second run
   must find nothing left to repair). *)
let recover_and_dump w =
  Sim.run_thread (fun () ->
      let mpk = Mpk.create w.w_dev in
      let kfs = K.mount w.w_dev mpk in
      let rep = Recovery.recover_all kfs in
      (* the allocation table lives in kernel pages *)
      Mpk.with_kernel mpk (fun () ->
          Treasury.Alloc_table.verify (K.alloc_table kfs));
      (* Fixpoint: a second recovery must repair nothing.  Every repair
         produces a finding; [pages_reclaimed] alone is not one — when the
         first run's own repairs allocate (e.g. a reattach inserting a
         dentry grows the coffer by a run), the second run legitimately
         returns the unused tail of that run to the kernel. *)
      let rep2 = Recovery.recover_all kfs in
      (match Recovery.findings rep2 with
      | [] -> ()
      | fs2 ->
          failwith
            (Printf.sprintf "recovery is not a fixpoint: 2nd run: %s"
               (String.concat "; " (List.map Recovery.finding_to_string fs2))));
      let fs = make_fs kfs in
      (rep, read_fs fs))

(* ---- the oracle comparison ---------------------------------------------- *)

let string_of_dump d =
  match d with
  | [] -> "(empty)"
  | _ -> String.concat ", " (List.map Model.entry_to_string d)

let remove_path d p = List.filter (fun (q, _) -> q <> p) d

let subtree d p =
  List.filter (fun (q, _) -> q = p || Pathx.is_prefix ~prefix:p q) d

(* Tolerated recovered states for an in-flight content op on [path]: every
   other path strict, the target file absent only if it did not exist
   before, and if present its length must be one of the sizes the op's
   single atomic [set_size] could have left, with every byte explainable as
   old data, new data, or an allocation-time zero fill. *)
let content_tolerant ~path ~sizes ~old_c ~new_c ~before dump =
  if remove_path dump path <> remove_path before path then
    Error "in-flight content op: a bystander path changed"
  else
    match List.assoc_opt path dump with
    | None ->
        if old_c = None then Ok ()
        else Error (Printf.sprintf "pre-existing file %s vanished" path)
    | Some `Dir -> Error (Printf.sprintf "file %s became a directory" path)
    | Some (`File c) ->
        let len = String.length c in
        if not (List.mem len sizes) then
          Error
            (Printf.sprintf "torn %s: size %d not in {%s}" path len
               (String.concat "," (List.map string_of_int sizes)))
        else begin
          let old_s = Option.value old_c ~default:"" in
          let bad = ref None in
          String.iteri
            (fun i ch ->
              if !bad = None then begin
                let from_old = i < String.length old_s && old_s.[i] = ch in
                let from_new = i < String.length new_c && new_c.[i] = ch in
                if not (from_old || from_new || ch = '\000') then bad := Some i
              end)
            c;
          match !bad with
          | None -> Ok ()
          | Some i ->
              Error
                (Printf.sprintf
                   "torn %s: byte %d is neither old, new, nor zero" path i)
        end

(* The recovered states a crashed-then-recovered rename may legally leave:
   untouched, done, both names linked (crash between the dst insert and the
   src removal), or only the displaced dst file unlinked. *)
let rename_candidates ~src ~dst ~before ~after ~result =
  if result <> Ok () then [ after ]
  else begin
    let both_linked = List.sort compare (after @ subtree before src) in
    let displaced =
      match List.assoc_opt dst before with
      | Some (`File _) -> [ List.sort compare (remove_path before dst) ]
      | _ -> []
    in
    [ after; both_linked ] @ displaced
  end

(* Is [dump] (the recovered tree) consistent with the oracle given that
   [acked] body ops were acknowledged before the crash?  The acked prefix is
   binding; only op [acked] (if any) may be visible in a torn intermediate
   form. *)
let verify w ~acked dump =
  let n = Array.length w.w_body in
  let before = Model.dump w.w_models.(acked) in
  if dump = before then Ok ()
  else if acked >= n then
    Error
      (Printf.sprintf "final state diverges after all %d ops acked:\n  fs:    %s\n  model: %s"
         n (string_of_dump dump) (string_of_dump before))
  else begin
    let after = Model.dump w.w_models.(acked + 1) in
    let result = w.w_results.(acked) in
    let fail reason =
      Error
        (Printf.sprintf "%s (in-flight op: %s)\n  fs:     %s\n  before: %s\n  after:  %s"
           reason
           (Op.op_to_string w.w_body.(acked))
           (string_of_dump dump) (string_of_dump before) (string_of_dump after))
    in
    match w.w_body.(acked) with
    | Op.Mkdir _ | Op.Unlink _ | Op.Rmdir _ ->
        if result = Ok () && dump = after then Ok ()
        else fail "in-flight namespace op left a state that is neither before nor after"
    | Op.Rename { src; dst } ->
        let src = Pathx.normalize src and dst = Pathx.normalize dst in
        if List.mem dump (rename_candidates ~src ~dst ~before ~after ~result)
        then Ok ()
        else fail "in-flight rename left an unexplained state"
    | Op.Create { path; data; _ } ->
        if result <> Ok () then fail "in-flight op errored yet changed durable state"
        else begin
          let path = Pathx.normalize path in
          let old_c =
            match List.assoc_opt path before with
            | Some (`File s) -> Some s
            | _ -> None
          in
          (* O_TRUNC at open, one write, one set_size: size is old, 0, or new *)
          let sizes =
            0 :: String.length data
            :: (match old_c with Some s -> [ String.length s ] | None -> [])
          in
          match content_tolerant ~path ~sizes ~old_c ~new_c:data ~before dump with
          | Ok () -> Ok ()
          | Error r -> fail r
        end
    | Op.Pwrite { path; off; data } ->
        if result <> Ok () then fail "in-flight op errored yet changed durable state"
        else begin
          let path = Pathx.normalize path in
          let old_c =
            match List.assoc_opt path before with
            | Some (`File s) -> Some s
            | _ -> None
          in
          let new_c =
            match List.assoc_opt path after with
            | Some (`File s) -> s
            | _ -> ""
          in
          let old_len = String.length (Option.value old_c ~default:"") in
          let sizes = [ old_len; max old_len (off + String.length data) ] in
          match content_tolerant ~path ~sizes ~old_c ~new_c ~before dump with
          | Ok () -> Ok ()
          | Error r -> fail r
        end
    | Op.Append { path; data } ->
        if result <> Ok () then fail "in-flight op errored yet changed durable state"
        else begin
          let path = Pathx.normalize path in
          let old_c =
            match List.assoc_opt path before with
            | Some (`File s) -> Some s
            | _ -> None
          in
          let new_c = Option.value old_c ~default:"" ^ data in
          let sizes =
            match old_c with
            | None -> [ 0; String.length data ]
            | Some s -> [ String.length s; String.length s + String.length data ]
          in
          match content_tolerant ~path ~sizes ~old_c ~new_c ~before dump with
          | Ok () -> Ok ()
          | Error r -> fail r
        end
  end

(* ---- the checking loops -------------------------------------------------- *)

type divergence = {
  d_point : int;  (* crash after this many persistence events *)
  d_policy : string;
  d_acked : int;
  d_reason : string;
}

type report = {
  r_name : string;
  r_ops : int;
  r_events : int;  (* persistence events in a full body replay *)
  r_points : int;  (* crash points explored *)
  r_divergences : divergence list;
  r_findings : int;  (* recovery repair actions across all points *)
  r_pages_reclaimed : int;
  r_reattached : int;  (* orphan coffers reattached by recovery *)
  r_orphans_dropped : int;
}

let all_policies : D.crash_policy list = [ `Drop_all; `Random; `Keep_all ]

let policy_name = function
  | `Drop_all -> "drop-all"
  | `Random -> "random"
  | `Keep_all -> "keep-all"

let mix seed k =
  Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (k + 1)))

(* Explore one crash point: deterministic re-run aborted at event [k], crash
   under [policy], reboot + recover, compare with the oracle. *)
let explore_point w ~seed ~policy ~procs k =
  let rp = replay ~crash_at:k ~procs w in
  D.set_crash_seed w.w_dev (mix seed k);
  D.crash ~policy w.w_dev;
  match recover_and_dump w with
  | exception Failure reason ->
      (rp.rp_acked, None, Error reason)
  | rep, dump -> (rp.rp_acked, Some rep, verify w ~acked:rp.rp_acked dump)

(* Check one script.  All crash points are explored when the body generates
   at most [max_points] persistence events; otherwise a seeded sample (always
   including the first and last event) keeps the run bounded.  [procs]
   spreads the body over that many simulated processes (see {!replay}). *)
let check ?(pages = 1024) ?(max_points = 0) ?(seed = 1L) ?(progress = ignore)
    ?(procs = 1) (s : Op.script) =
  let w = prepare ~pages s in
  let n = Array.length w.w_body in
  (* Record pass: count the events and prove the oracle itself agrees with
     ZoFS when no crash happens at all. *)
  let rp = replay ~procs w in
  (match rp.rp_dump with
  | Some d ->
      let md = Model.dump w.w_models.(n) in
      if d <> md then
        failwith
          (Printf.sprintf "crashmc %s: oracle drift with no crash:\n  fs:    %s\n  model: %s"
             w.w_name (string_of_dump d) (string_of_dump md))
  | None -> assert false);
  let total = rp.rp_events in
  let points =
    if max_points <= 0 || total <= max_points then
      List.init total (fun i -> i + 1)
    else begin
      let rng = Sim.Rng.create seed in
      let arr = Array.init total (fun i -> i + 1) in
      Sim.Rng.shuffle rng arr;
      let chosen = Array.sub arr 0 max_points in
      chosen.(0) <- 1;
      chosen.(max_points - 1) <- total;
      List.sort_uniq compare (Array.to_list chosen)
    end
  in
  let divergences = ref [] in
  let findings = ref 0 and reclaimed = ref 0 in
  let reattached = ref 0 and dropped = ref 0 in
  List.iteri
    (fun i k ->
      let policy = List.nth all_policies (i mod List.length all_policies) in
      let acked, rep, verdict = explore_point w ~seed ~policy ~procs k in
      (match rep with
      | Some r ->
          findings := !findings + List.length (Recovery.findings r);
          reclaimed := !reclaimed + r.Recovery.pages_reclaimed;
          reattached := !reattached + r.Recovery.orphan_coffers_reattached;
          dropped := !dropped + r.Recovery.orphan_coffers_dropped
      | None -> ());
      (match verdict with
      | Ok () -> ()
      | Error reason ->
          divergences :=
            { d_point = k; d_policy = policy_name policy; d_acked = acked;
              d_reason = reason }
            :: !divergences);
      progress (i + 1))
    points;
  {
    r_name = w.w_name;
    r_ops = n;
    r_events = total;
    r_points = List.length points;
    r_divergences = List.rev !divergences;
    r_findings = !findings;
    r_pages_reclaimed = !reclaimed;
    r_reattached = !reattached;
    r_orphans_dropped = !dropped;
  }

(* Negative self-check: suppress the fences of the last state-changing op
   (the device acks them as no-ops), let the op be acknowledged, then lose
   every still-pending line.  An acknowledged op has now been silently
   undone — exactly the bug class the checker exists for — so [verify] must
   report a divergence.  Returns [Some reason] when the injected bug was
   caught, [None] when it slipped through. *)
let check_missing_fence ?(pages = 1024) (s : Op.script) =
  let w = prepare ~pages s in
  let n = Array.length w.w_body in
  let target = ref (-1) in
  for i = 0 to n - 1 do
    if Model.dump w.w_models.(i) <> Model.dump w.w_models.(i + 1) then
      target := i
  done;
  if !target < 0 then
    invalid_arg "check_missing_fence: script has no state-changing op";
  let rp = replay ~fence_drop:(!target, 16) w in
  D.inject_drop_fences w.w_dev 0;
  D.crash ~policy:`Drop_all w.w_dev;
  match recover_and_dump w with
  | exception Failure reason -> Some reason
  | _rep, dump -> (
      match verify w ~acked:rp.rp_acked dump with
      | Ok () -> None
      | Error reason -> Some reason)
