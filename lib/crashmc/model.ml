(* The oracle: an in-memory model file system that shadows every
   acknowledged syscall of an op script.  It deliberately mirrors the exact
   error semantics of the µFS (lib/zofs/ufs.ml) — EEXIST/ENOENT/EISDIR
   orderings and all — because the crash checker declares a divergence
   whenever the recovered ZoFS tree disagrees with the model, and a model
   that errs where ZoFS succeeds would poison every later prefix.  The
   no-crash property test in test_crashmc.ml guards against such drift. *)

module E = Treasury.Errno
module Pathx = Treasury.Pathx
module Op = Workloads.Opscript

type node =
  | File of { mutable data : string }
  | Dir of (string, node) Hashtbl.t

type t = { root : node }

let create () = { root = Dir (Hashtbl.create 16) }

let rec copy_node = function
  | File f -> File { data = f.data }
  | Dir d ->
      let children = Hashtbl.create (max 8 (Hashtbl.length d)) in
      Hashtbl.iter (fun k v -> Hashtbl.replace children k (copy_node v)) d;
      Dir children

let copy t = { root = copy_node t.root }

(* Walk to the node at [path]: ENOENT for a missing component, ENOTDIR when
   an intermediate component is a file (matching the µFS walk). *)
let lookup t path =
  let rec go node = function
    | [] -> Ok node
    | c :: rest -> (
        match node with
        | File _ -> Error E.ENOTDIR
        | Dir d -> (
            match Hashtbl.find_opt d c with
            | None -> Error E.ENOENT
            | Some n -> go n rest))
  in
  go t.root (Pathx.components (Pathx.normalize path))

(* The parent directory's children table + the final name. *)
let parent_dir t path =
  let path = Pathx.normalize path in
  if path = "/" then Error E.EINVAL
  else
    match lookup t (Pathx.dirname path) with
    | Error e -> Error e
    | Ok (File _) -> Error E.ENOTDIR
    | Ok (Dir d) -> Ok (d, Pathx.basename path)

let apply t (op : Op.op) : (unit, E.t) result =
  match op with
  | Op.Mkdir path -> (
      match lookup t path with
      | Ok _ -> Error E.EEXIST
      | Error E.ENOENT -> (
          match parent_dir t path with
          | Error e -> Error e
          | Ok (d, base) ->
              if Hashtbl.mem d base then Error E.EEXIST
              else begin
                Hashtbl.replace d base
                  (Dir (Hashtbl.create 8));
                Ok ()
              end)
      | Error e -> Error e)
  | Op.Create { path; mode = _; data } -> (
      (* openf O_CREAT|O_WRONLY|O_TRUNC; write; close *)
      match lookup t path with
      | Ok (Dir _) -> Error E.EISDIR
      | Ok (File f) ->
          f.data <- data;
          Ok ()
      | Error E.ENOENT -> (
          match parent_dir t path with
          | Error e -> Error e
          | Ok (d, base) ->
              Hashtbl.replace d base (File { data });
              Ok ())
      | Error e -> Error e)
  | Op.Pwrite { path; off; data } -> (
      match lookup t path with
      | Ok (Dir _) -> Error E.EISDIR
      | Ok (File f) ->
          let len = String.length data in
          let old = f.data in
          let newlen = max (String.length old) (off + len) in
          let b = Bytes.make newlen '\000' in
          Bytes.blit_string old 0 b 0 (String.length old);
          Bytes.blit_string data 0 b off len;
          f.data <- Bytes.to_string b;
          Ok ()
      | Error e -> Error e)
  | Op.Append { path; data } -> (
      (* openf O_CREAT|O_WRONLY|O_APPEND; write; close *)
      match lookup t path with
      | Ok (Dir _) -> Error E.EISDIR
      | Ok (File f) ->
          f.data <- f.data ^ data;
          Ok ()
      | Error E.ENOENT -> (
          match parent_dir t path with
          | Error e -> Error e
          | Ok (d, base) ->
              Hashtbl.replace d base (File { data });
              Ok ())
      | Error e -> Error e)
  | Op.Unlink path -> (
      match parent_dir t path with
      | Error e -> Error e
      | Ok (d, base) -> (
          match Hashtbl.find_opt d base with
          | None -> Error E.ENOENT
          | Some (Dir _) -> Error E.EISDIR
          | Some (File _) ->
              Hashtbl.remove d base;
              Ok ()))
  | Op.Rmdir path -> (
      if Pathx.normalize path = "/" then Error E.EBUSY
      else
        match parent_dir t path with
        | Error e -> Error e
        | Ok (d, base) -> (
            match Hashtbl.find_opt d base with
            | None -> Error E.ENOENT
            | Some (File _) -> Error E.ENOTDIR
            | Some (Dir sub) ->
                if Hashtbl.length sub > 0 then Error E.ENOTEMPTY
                else begin
                  Hashtbl.remove d base;
                  Ok ()
                end))
  | Op.Rename { src; dst } -> (
      if src = dst then Ok ()
      else if Pathx.is_prefix ~prefix:src dst then Error E.EINVAL
      else
        match parent_dir t src with
        | Error e -> Error e
        | Ok (sd, sbase) -> (
            match parent_dir t dst with
            | Error e -> Error e
            | Ok (dd, dbase) -> (
                match Hashtbl.find_opt sd sbase with
                | None -> Error E.ENOENT
                | Some node -> (
                    match Hashtbl.find_opt dd dbase with
                    | Some (Dir _) -> Error E.EISDIR
                    | Some (File _) | None ->
                        Hashtbl.remove sd sbase;
                        Hashtbl.replace dd dbase node;
                        Ok ()))))

(* --- dumps: the comparison currency of the checker ----------------------- *)

(* A dump lists every path except "/" with its kind and, for files, the full
   content, sorted by path.  Two file systems are semantically equal iff
   their dumps are equal. *)
type entry = string * [ `Dir | `File of string ]

let dump t : entry list =
  let acc = ref [] in
  let rec go path node =
    match node with
    | File f -> acc := (path, `File f.data) :: !acc
    | Dir d ->
        if path <> "/" then acc := (path, `Dir) :: !acc;
        Hashtbl.iter (fun name n -> go (Pathx.concat path name) n) d
  in
  go "/" t.root;
  List.sort compare !acc

let entry_to_string (path, kind) =
  match kind with
  | `Dir -> path ^ "/"
  | `File data -> Printf.sprintf "%s (%d bytes)" path (String.length data)

let equal a b = dump a = dump b
