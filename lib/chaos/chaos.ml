(* chaos: a randomized fault-injection campaign over a live ZoFS instance.

   One simulated world, one KernFS, MANY FSLibs processes: the driver
   process plus a pool of tenant processes, each with its own dispatcher,
   FD table and page table, sharing coffers only through the syscall gate
   and the NVM device.  The campaign interleaves application traffic (the
   fxmark / filebench / fslab op scripts, generated churn, and the tenants'
   cross-process shared-file appends and shared-directory creates) with
   four injection kinds:

     poison     NVM media errors on victim-coffer metadata lines (some
                sticky — persistently failing cells)
     kill       lease-holder death mid-syscall: alternately a single
                thread and a WHOLE PROCESS (every thread of a victim pid
                dies at its next suspension point, no unwinding; a
                survivor then reaps the dead pid's kernel state and the
                next op on the structure steals the lease and repairs the
                intention record — the cross-process recovery of §5.2)
     transient  injected ENOMEM/EAGAIN on coffer_enlarge / coffer_map,
                absorbed by FSLib's bounded retry
     scribble   stray user-space stores into coffer pages that MPK must
                block

   and checks the containment invariants the fault-domain design promises:
   no exception ever escapes the dispatcher, a never-injected canary coffer
   stays fully available throughout, a quarantined coffer refuses writes,
   every armed fault is accounted for (tripped, healed by scrub-on-write,
   patrol-scrubbed, or fenced inside a quarantined domain), and a
   post-campaign offline fsck is a clean fixpoint.

   The campaign is also its own negative self-check
   ({!negative_selfcheck}): with quarantine disabled, a persistently
   failing coffer is never fenced, and the campaign must report the
   containment violation — proving the gate can see the bug class it
   exists for. *)

module D = Nvm.Device
module K = Treasury.Kernfs
module V = Treasury.Vfs
module E = Treasury.Errno
module Cf = Treasury.Coffer
module Op = Workloads.Opscript

type report = {
  c_rounds : int;
  c_ops : int;  (* syscall-level ops applied (including probes) *)
  (* armed, per kind *)
  c_armed_poison : int;
  c_armed_kills : int;
  c_armed_transients : int;
  c_armed_scribbles : int;
  (* tripped, per kind *)
  c_media_faults : int;  (* loads that faulted on poisoned lines *)
  c_kills_fired : int;  (* threads killed (single-thread + whole-process) *)
  c_armed_proc_kills : int;  (* whole-process kills attempted *)
  c_proc_kills : int;  (* processes with >= 1 thread actually killed *)
  c_procs_reaped : int;  (* dead pids deregistered via reap_process *)
  c_transients_tripped : int;
  c_scribbles_blocked : int;
  c_faults_tripped : int;  (* sum of the four above *)
  (* poison end-of-life accounting *)
  c_poison_healed : int;  (* scrubbed by an ordinary store *)
  c_poison_scrubbed : int;  (* cleared by the end-of-campaign patrol scrub *)
  c_poison_fenced : int;  (* still poisoned inside a quarantined coffer *)
  c_transient_residue : int;  (* armed but never tripped (drained) *)
  (* self-healing activity (obs counter deltas) *)
  c_repairs_ok : int;
  c_repairs_failed : int;
  c_quarantined : int;  (* coffers quarantined at campaign end *)
  c_offline : int;
  c_lease_steals : int;
  c_intent_repairs : int;
  c_graceful_errors : int;
  c_fsck_findings : int;  (* first post-campaign offline pass *)
  c_violations : string list;  (* containment violations; must be [] *)
  c_flight_dumps : string list;  (* flight-recorder dumps written this run *)
}

let canary_path = "/canary"
let canary_data = Op.payload ~tag:4242 300
let n_victims = 6
let victim_path i = Printf.sprintf "/v%d" i
let n_tenants = 4
let shared_path = "/work/shared"

(* One FSLibs instance for the CALLING process: must run inside the sim
   thread of the process that will use it (fs_mount registers that pid). *)
let fslib_for kfs =
  let disp = Treasury.Dispatcher.create kfs in
  let ufs = Zofs.Ufs.create kfs in
  Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
  Treasury.Dispatcher.set_repair disp (fun cid ->
      Zofs.Recovery.recover_one kfs cid);
  Treasury.Dispatcher.as_vfs disp

(* Build ZoFS + the driver's own FSLibs instance, wiring the online
   self-healing callback (scoped fsck of one coffer). *)
let make_fs ~pages ~quarantine =
  let dev = D.create ~perf:Nvm.Perf.optane ~size:(pages * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  Obs.attach_device dev;
  let kfs =
    K.mkfs dev mpk ~nbuckets:1024 ~root_ctype:Zofs.Ufs.ctype ~root_mode:0o755
      ~root_uid:0 ~root_gid:0 ()
  in
  Zofs.Ufs.mkfs kfs;
  K.set_quarantine_enabled kfs quarantine;
  (dev, kfs, fslib_for kfs)

let run ?(seed = 11L) ?(pages = 16384) ?(min_faults = 200) ?(max_rounds = 600)
    ?(quarantine = true) ?(flight_dir = ".") () =
  (* Spans on: the flight-recorder dump written at quarantine time carries
     the faulting op's span trace, so the campaign needs the ring live even
     if a caller had enabled obs with spans off.  The flight window is reset
     so each campaign records its own black box (and its own per-(coffer,
     state) dump rate-limit). *)
  Obs.enable ();
  Obs.Flight.reset ();
  Obs.Flight.set_autodump ~dir:flight_dir true;
  let dumps0 = List.length (Obs.Flight.dump_paths ()) in
  let snap0 = Obs.Snapshot.take () in
  let w = Sim.create ~seed () in
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  let out = ref None in
  Sim.spawn w ~proc ~name:"chaos-driver" (fun () ->
      let dev, kfs, fs = make_fs ~pages ~quarantine in
      let rng = Sim.Rng.create (Int64.add seed 0x5EEDL) in
      let violations = ref [] in
      let violation msg =
        (* a campaign invariant failing is exactly what the black box is
           for: record it and (auto-dump armed) write the post-mortem *)
        Obs.Flight.invariant_failure msg;
        if List.length !violations < 40 then violations := msg :: !violations
      in
      let ops = ref 0 in
      let guard op =
        incr ops;
        match Op.apply fs op with
        | Ok () | Error _ -> ()
        | exception e ->
            violation
              (Printf.sprintf "exception escaped the dispatcher: %s (op: %s)"
                 (Printexc.to_string e) (Op.op_to_string op))
      in
      (* ---- populate: canary, victims, and the three workload trees ---- *)
      guard (Op.Mkdir "/work");
      guard (Op.Create { path = canary_path; mode = 0o600; data = canary_data });
      for i = 0 to n_victims - 1 do
        guard
          (Op.Create
             { path = victim_path i; mode = 0o600; data = Op.payload ~tag:i 700 })
      done;
      List.iter
        (fun n ->
          let s = Op.find n in
          List.iter guard s.Op.setup;
          List.iter guard s.Op.body)
        [ "fxmark"; "filebench"; "fslab" ];
      (* 0600 files land in their own coffers: those are the injection
         targets.  The canary's coffer is deliberately not among them. *)
      let victims =
        match K.list_coffers kfs with
        | Error _ -> [||]
        | Ok l ->
            Array.of_list
              (List.filter
                 (fun c ->
                   String.length c.Cf.path >= 2 && String.sub c.Cf.path 0 2 = "/v")
                 l)
      in
      if Array.length victims = 0 then
        violation "setup: no victim sub-coffers (0600 grouping broken?)";
      let healthy_victims () =
        Array.to_list victims
        |> List.filter (fun c ->
               match K.coffer_health kfs c.Cf.id with
               | K.Healthy | K.Suspect -> true
               | K.Quarantined | K.Offline -> false)
      in
      (* ---- multi-process tenant traffic ------------------------------- *)
      (* Each tenant is its own simulated process with its own FSLib: the
         only things it shares with the driver (and the other tenants) are
         the kernel and the NVM device.  Tenants hammer one shared file and
         the shared /work directory, so lease stealing and intention repair
         after a kill routinely cross process boundaries. *)
      guard
        (Op.Create
           { path = shared_path; mode = 0o644; data = Op.payload ~tag:777 100 });
      (* staging ground for cross-coffer renames: 0600 files born here live
         in their own coffers until a rename drags them into /work *)
      guard (Op.Mkdir "/xc");
      let stop_tenants = ref false in
      let tenant_tids =
        List.init n_tenants (fun i ->
            let tproc = Sim.Proc.create ~uid:0 ~gid:0 () in
            Sim.spawn_tid w ~proc:tproc
              ~name:(Printf.sprintf "chaos-tenant-%d" i)
              (fun () ->
                Obs.set_tenant i;
                let tfs = fslib_for kfs in
                let trng =
                  Sim.Rng.create (Int64.add seed (Int64.of_int (1_000 + i)))
                in
                let apply op =
                  incr ops;
                  try match Op.apply tfs op with Ok () | Error _ -> ()
                  with e ->
                    violation
                      (Printf.sprintf
                         "exception escaped the dispatcher in tenant %d: %s" i
                         (Printexc.to_string e))
                in
                (* this tenant's split/merge churn target: chmod 0600 pulls
                   it out into its own coffer (split), 0644 folds it back
                   into the directory's coffer (merge) *)
                let churn_path = Printf.sprintf "/work/churn%d" i in
                apply
                  (Op.Create
                     {
                       path = churn_path;
                       mode = 0o644;
                       data = Op.payload ~tag:(90 + i) 120;
                     });
                let chmod path mode =
                  incr ops;
                  try ignore (V.chmod tfs path mode)
                  with e ->
                    violation
                      (Printf.sprintf
                         "exception escaped the dispatcher in tenant %d: %s" i
                         (Printexc.to_string e))
                in
                let k = ref 0 in
                while not !stop_tenants do
                  apply
                    (Op.Append
                       { path = shared_path; data = Op.payload ~tag:i 48 });
                  if !k mod 4 = 3 then
                    apply
                      (Op.Create
                         {
                           path = Printf.sprintf "/work/t%d_%d" i !k;
                           mode = 0o644;
                           data = Op.payload ~tag:(i + !k) 200;
                         });
                  (* cross-coffer rename: the 0600 source owns its coffer,
                     the destination directory lives in another — the move
                     exercises split, link-destination-first, and merge
                     while the injectors are firing *)
                  if !k mod 6 = 5 then begin
                    let src = Printf.sprintf "/xc/x%d_%d" i !k in
                    apply
                      (Op.Create
                         {
                           path = src;
                           mode = 0o600;
                           data = Op.payload ~tag:((i * 13) + !k) 160;
                         });
                    apply
                      (Op.Rename
                         { src; dst = Printf.sprintf "/work/xc%d_%d" i !k })
                  end;
                  if !k mod 8 = 7 then
                    chmod churn_path (if !k mod 16 = 7 then 0o600 else 0o644);
                  incr k;
                  Sim.advance (800 + Sim.Rng.int trng 1_200)
                done))
      in
      (* ---- the four injectors ---------------------------------------- *)
      let poison_list = ref [] in
      let armed_poison = ref 0 and armed_kills = ref 0 in
      let armed_transients = ref 0 and armed_scribbles = ref 0 in
      let kills_fired = ref 0 and scribbles_blocked = ref 0 in
      let armed_proc_kills = ref 0 and proc_kills = ref 0 in
      let procs_reaped = ref 0 in
      let inject_poison ~sticky =
        match healthy_victims () with
        | [] -> ()
        | hv ->
            let c = List.nth hv (Sim.Rng.int rng (List.length hv)) in
            (* Root-inode lines (walk reads them on every access) or the
               first allocator lines of the custom page — both rewritten by
               the scoped fsck, so non-sticky poison there always heals.
               Sticky poison goes on root-inode line 0, which every access
               must read: the fault — and the failing repair — are
               guaranteed, so quarantine is actually exercised. *)
            let addr =
              if sticky then c.Cf.root_file
              else if Sim.Rng.bool rng then
                c.Cf.root_file + (64 * Sim.Rng.int rng 2)
              else c.Cf.custom + (64 * Sim.Rng.int rng 4)
            in
            D.inject_poison ~sticky dev addr;
            incr armed_poison;
            poison_list := addr :: !poison_list;
            Obs.Flight.note "inject_poison"
              [
                ("addr", string_of_int addr);
                ("sticky", if sticky then "1" else "0");
                ("coffer", string_of_int c.Cf.id);
              ];
            (* traffic that walks into the poisoned coffer *)
            guard
              (Op.Append
                 {
                   path = c.Cf.path;
                   data = Op.payload ~tag:(Sim.Rng.int rng 1000) 120;
                 });
            guard
              (Op.Pwrite { path = c.Cf.path; off = 0; data = Op.payload ~tag:7 60 })
      in
      let wcount = ref 0 in
      let fresh_work_create () =
        incr wcount;
        Op.Create
          {
            path = Printf.sprintf "/work/w%d" !wcount;
            mode = 0o644;
            data = Op.payload ~tag:!wcount (500 + Sim.Rng.int rng 3000);
          }
      in
      let inject_kill () =
        let op =
          if Sim.Rng.bool rng then
            match healthy_victims () with
            | c :: _ -> Op.Append { path = c.Cf.path; data = Op.payload ~tag:3 90 }
            | [] -> fresh_work_create ()
          else fresh_work_create ()
        in
        let finished = ref false in
        let killed0 = Sim.killed_threads () in
        let tid =
          Sim.spawn_tid w ~proc ~name:"chaos-victim" (fun () ->
              incr ops;
              (try ignore (Op.apply fs op)
               with e ->
                 violation
                   (Printf.sprintf
                      "exception escaped the dispatcher in victim thread: %s"
                      (Printexc.to_string e)));
              finished := true)
        in
        Sim.arm_kill ~tid ~after:(10 + Sim.Rng.int rng 250);
        incr armed_kills;
        Obs.Flight.note "inject_kill" [ ("tid", string_of_int tid) ];
        (* Wait for the victim to finish or die; a thread that does neither
           within the budget is wedged — itself a containment violation. *)
        let budget = ref 200_000 in
        while (not !finished) && Sim.killed_threads () = killed0 && !budget > 0 do
          decr budget;
          Sim.advance 100
        done;
        if !finished then Sim.disarm_kill ~tid
        else if Sim.killed_threads () > killed0 then begin
          incr kills_fired;
          (* The next op on the same structure must steal the dead
             thread's lease and roll its intention record. *)
          guard op
        end
        else violation "kill round: victim thread neither finished nor died"
      in
      let inject_kill_process () =
        (* A whole victim PROCESS: two threads, each with the shared
           FSLib of a fresh pid, die together mid-operation.  The dead pid
           can never fs_umount itself, so the driver reaps it, and the
           re-run of its ops from this (different) process exercises the
           cross-process steal + intention-repair path. *)
        let vproc = Sim.Proc.create ~uid:0 ~gid:0 () in
        let pid = vproc.Sim.Proc.pid in
        let op_a =
          match healthy_victims () with
          | c :: _ -> Op.Append { path = c.Cf.path; data = Op.payload ~tag:9 90 }
          | [] -> fresh_work_create ()
        in
        let op_b = fresh_work_create () in
        let spawn_victim op =
          ignore
            (Sim.spawn_tid w ~proc:vproc ~name:"chaos-proc-victim" (fun () ->
                 let vfs = fslib_for kfs in
                 incr ops;
                 try ignore (Op.apply vfs op)
                 with e ->
                   violation
                     (Printf.sprintf
                        "exception escaped the dispatcher in process-kill \
                         victim: %s"
                        (Printexc.to_string e))))
        in
        spawn_victim op_a;
        spawn_victim op_b;
        incr armed_proc_kills;
        Obs.Flight.note "inject_kill_process" [ ("pid", string_of_int pid) ];
        (* let the victims get mid-operation, then kill the whole pid *)
        Sim.advance (200 + Sim.Rng.int rng 2_000);
        let killed0 = Sim.killed_threads () in
        armed_kills :=
          !armed_kills
          + List.length (List.filter Sim.thread_alive (Sim.proc_tids pid));
        Sim.kill_process ~pid;
        let budget = ref 200_000 in
        while Sim.proc_alive pid && !budget > 0 do
          decr budget;
          Sim.advance 100
        done;
        if Sim.proc_alive pid then
          violation "process kill: victim process still alive after budget"
        else begin
          kills_fired := !kills_fired + (Sim.killed_threads () - killed0);
          if Sim.killed_threads () > killed0 then incr proc_kills;
          (match K.reap_process kfs ~pid with
          | Ok () -> incr procs_reaped
          | Error e ->
              violation
                (Printf.sprintf "reap_process(%d) failed: %s" pid
                   (E.to_string e)));
          (* survivors re-run the dead pid's ops: steal its expired
             leases, roll its intention records *)
          guard op_a;
          guard op_b
        end
      in
      let inject_transient () =
        let n = 1 + Sim.Rng.int rng 2 in
        let errno = if Sim.Rng.bool rng then E.ENOMEM else E.EAGAIN in
        K.inject_transient kfs ~errno ~n ();
        armed_transients := !armed_transients + n;
        Obs.Flight.note "inject_transient"
          [ ("n", string_of_int n); ("errno", E.to_string errno) ];
        (* allocation-heavy traffic so the armed failures actually trip *)
        for _ = 1 to 3 do
          guard (fresh_work_create ())
        done
      in
      let inject_scribble () =
        incr armed_scribbles;
        Obs.Flight.note "inject_scribble" [];
        let addr =
          if Array.length victims = 0 then 64
          else
            let c = victims.(Sim.Rng.int rng (Array.length victims)) in
            c.Cf.root_file + (8 * Sim.Rng.int rng 64)
        in
        match D.write_u64 dev addr 0xDEAD_BEEF with
        | () -> violation "scribble: stray store was NOT blocked by MPK"
        | exception Nvm.Fault { kind = Nvm.Protection; _ } ->
            incr scribbles_blocked
        | exception e ->
            violation
              (Printf.sprintf "scribble raised unexpected %s"
                 (Printexc.to_string e))
      in
      (* ---- campaign loop ---------------------------------------------- *)
      let canary_check tag =
        incr ops;
        match V.read_file fs canary_path with
        | Ok d when d = canary_data -> ()
        | Ok _ -> violation (tag ^ ": canary content changed")
        | Error e ->
            violation
              (Printf.sprintf "%s: canary unavailable (%s)" tag (E.to_string e))
        | exception e ->
            violation
              (Printf.sprintf "%s: canary read raised %s" tag
                 (Printexc.to_string e))
      in
      let tripped_total () =
        D.stat_media_faults dev + !kills_fired
        + (!armed_transients - K.pending_transients kfs)
        + !scribbles_blocked
      in
      let pool =
        Array.of_list
          (List.concat_map
             (fun n -> (Op.find n).Op.body)
             [ "fxmark"; "filebench"; "fslab" ])
      in
      let rounds = ref 0 in
      let cursor = ref 0 in
      while tripped_total () < min_faults && !rounds < max_rounds do
        let r = !rounds in
        (match r mod 4 with
        | 0 -> inject_poison ~sticky:(r = 0 || r mod 48 = 24)
        | 1 -> if r mod 8 = 1 then inject_kill_process () else inject_kill ()
        | 2 -> inject_transient ()
        | _ -> inject_scribble ());
        (* background traffic from the named workloads *)
        for _ = 1 to 3 do
          guard pool.(!cursor mod Array.length pool);
          incr cursor
        done;
        canary_check (Printf.sprintf "round %d" r);
        incr rounds
      done;
      if tripped_total () < min_faults then
        violation
          (Printf.sprintf "campaign under-injected: %d/%d faults tripped"
             (tripped_total ()) min_faults);
      (* quiesce the tenant processes so the end-of-campaign checks and the
         offline fsck run on a silent system *)
      stop_tenants := true;
      List.iter
        (fun tid ->
          let budget = ref 200_000 in
          while Sim.thread_alive tid && !budget > 0 do
            decr budget;
            Sim.advance 100
          done;
          if Sim.thread_alive tid then
            violation "tenant thread failed to quiesce")
        tenant_tids;
      (* ---- end-of-campaign invariants --------------------------------- *)
      (* a quarantined coffer is read-only: writes must be refused *)
      Array.iter
        (fun c ->
          match K.coffer_health kfs c.Cf.id with
          | K.Quarantined | K.Offline -> (
              incr ops;
              match V.append_file fs c.Cf.path (String.make 8 'x') with
              | Ok () ->
                  violation
                    (Printf.sprintf "quarantined coffer %d accepted a write"
                       c.Cf.id)
              | Error _ -> ()
              | exception e ->
                  violation
                    (Printf.sprintf "write to quarantined coffer raised %s"
                       (Printexc.to_string e)))
          | K.Healthy | K.Suspect -> ())
        victims;
      (* drain un-tripped transients so they cannot leak into the fsck *)
      let transient_residue = K.pending_transients kfs in
      K.clear_transients kfs;
      (* patrol scrub: every armed poison line must be healed already,
         cleared now, or fenced inside a quarantined fault domain *)
      let healed = ref 0 and scrubbed = ref 0 and fenced = ref 0 in
      (* the same line can be injected more than once — account per line *)
      List.iter
        (fun addr ->
          if not (D.is_poisoned dev addr) then incr healed
          else
            let fenced_off =
              match K.page_owner kfs ~page:(addr / Nvm.page_size) with
              | Ok cid -> (
                  match K.coffer_health kfs cid with
                  | K.Quarantined | K.Offline -> true
                  | K.Healthy | K.Suspect -> false)
              | Error _ -> false
            in
            if fenced_off then incr fenced
            else begin
              D.clear_poison dev addr;
              incr scrubbed
            end)
        (List.sort_uniq compare !poison_list);
      if D.poisoned_lines dev <> !fenced then
        violation
          (Printf.sprintf
             "unaccounted poisoned lines: %d on device, %d fenced in quarantine"
             (D.poisoned_lines dev) !fenced);
      (* post-campaign offline fsck: quarantined domains stay fenced; the
         rest must come back clean and stable (fixpoint) *)
      let fsck_findings = ref 0 in
      (try
         let rep1 = Zofs.Recovery.recover_all kfs in
         fsck_findings := List.length (Zofs.Recovery.findings rep1);
         let rep2 = Zofs.Recovery.recover_all kfs in
         match Zofs.Recovery.findings rep2 with
         | [] -> ()
         | l ->
             violation
               (Printf.sprintf
                  "post-campaign fsck is not a fixpoint (%d repeat findings: %s)"
                  (List.length l)
                  (String.concat "; "
                     (List.map Zofs.Recovery.finding_to_string l)))
       with e ->
         violation ("post-campaign fsck raised " ^ Printexc.to_string e));
      (* after recovery, a fresh FSLib must still see the canary intact *)
      (try
         let disp2 = Treasury.Dispatcher.create kfs in
         let ufs2 = Zofs.Ufs.create kfs in
         Treasury.Dispatcher.register_ufs disp2 (module Zofs.Ufs) ufs2;
         let fs2 = Treasury.Dispatcher.as_vfs disp2 in
         match V.read_file fs2 canary_path with
         | Ok d when d = canary_data -> ()
         | Ok _ -> violation "post-fsck: canary content changed"
         | Error e ->
             violation ("post-fsck: canary unavailable: " ^ E.to_string e)
       with e ->
         violation ("post-fsck canary check raised " ^ Printexc.to_string e));
      let snap1 = Obs.Snapshot.take () in
      let d = Obs.Snapshot.diff snap0 snap1 in
      let cv n =
        match Obs.Snapshot.counter_value d n with Some v -> v | None -> 0
      in
      let _, _, q, o = K.health_counts kfs in
      (* the core fault-domain promise: a coffer whose repair keeps failing
         must end up fenced off, not left to fault forever *)
      if cv "health.repairs_failed" > 0 && q = 0 && o = 0 then
        violation
          "containment: online repair kept failing but no coffer was ever \
           quarantined";
      out :=
        Some
          {
            c_rounds = !rounds;
            c_ops = !ops;
            c_armed_poison = !armed_poison;
            c_armed_kills = !armed_kills;
            c_armed_transients = !armed_transients;
            c_armed_scribbles = !armed_scribbles;
            c_media_faults = D.stat_media_faults dev;
            c_kills_fired = !kills_fired;
            c_armed_proc_kills = !armed_proc_kills;
            c_proc_kills = !proc_kills;
            c_procs_reaped = !procs_reaped;
            c_transients_tripped = !armed_transients - transient_residue;
            c_scribbles_blocked = !scribbles_blocked;
            c_faults_tripped =
              D.stat_media_faults dev + !kills_fired
              + (!armed_transients - transient_residue)
              + !scribbles_blocked;
            c_poison_healed = !healed;
            c_poison_scrubbed = !scrubbed;
            c_poison_fenced = !fenced;
            c_transient_residue = transient_residue;
            c_repairs_ok = cv "health.repairs_ok";
            c_repairs_failed = cv "health.repairs_failed";
            c_quarantined = q;
            c_offline = o;
            c_lease_steals = cv "lease.steals";
            c_intent_repairs = cv "intent.repairs";
            c_graceful_errors = cv "fault.graceful_errors";
            c_fsck_findings = !fsck_findings;
            c_violations = List.rev !violations;
            c_flight_dumps =
              (let all = Obs.Flight.dump_paths () in
               List.filteri (fun i _ -> i >= dumps0) all);
          });
  (try Sim.run w
   with Sim.Deadlock msg -> failwith ("chaos: simulation deadlocked: " ^ msg));
  match !out with
  | Some r -> r
  | None -> failwith "chaos: campaign driver died before reporting"

(* Negative self-check: with quarantine disabled, the sticky-poisoned
   victim's repairs keep failing but the coffer is never fenced — the
   campaign must report that specific containment violation.  Returns true
   when the gate caught the injected bug. *)
let is_containment v =
  String.length v >= 11 && String.sub v 0 11 = "containment"

let negative_campaign ?(seed = 23L) ?(pages = 8192) ?flight_dir () =
  run ~seed ~pages ~min_faults:40 ~max_rounds:80 ~quarantine:false ?flight_dir ()

let caught rep = List.exists is_containment rep.c_violations

let negative_selfcheck ?seed ?pages () = caught (negative_campaign ?seed ?pages ())
