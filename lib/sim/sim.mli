(** Deterministic discrete-event simulation kernel.

    Everything in this reproduction that is timing-sensitive — NVM access
    latency, syscall costs, lock contention, lease expiry — runs on a virtual
    clock inside a {!world}.  Logical threads are cooperative (implemented
    with OCaml effects); the scheduler always resumes the thread with the
    smallest virtual timestamp, so executions are deterministic and
    interleavings are decided by simulated time, not by the host machine. *)

(** A simulated process: the unit of isolation for permissions and coffer
    mappings.  Threads belong to a process. *)
module Proc : sig
  type t = private {
    pid : int;
    mutable uid : int;
    mutable gid : int;
    mutable groups : int list;  (** supplementary groups *)
  }

  val create : ?uid:int -> ?gid:int -> ?groups:int list -> unit -> t

  val root : t
  (** The pre-existing root process (pid 0, uid 0), used by code that runs
      outside any simulation. *)
end

type world

val create : ?seed:int64 -> unit -> world

val spawn : world -> ?proc:Proc.t -> ?at:int -> name:string -> (unit -> unit) -> unit
(** [spawn w ~name f] registers a new logical thread.  [at] is the virtual
    time at which it becomes runnable (default 0, or the current time when
    called from inside a running thread). *)

val spawn_tid :
  world -> ?proc:Proc.t -> ?at:int -> name:string -> (unit -> unit) -> int
(** Like {!spawn} but returns the new thread's id, so fault injectors can
    target it (see {!arm_kill}). *)

exception Deadlock of string
(** Raised by {!run} if threads remain blocked with no runnable thread. *)

val run : world -> unit
(** Run the simulation until all threads have finished. *)

val run_thread : ?seed:int64 -> ?proc:Proc.t -> (unit -> 'a) -> 'a
(** Convenience: create a world, run [f] in a single thread, return its
    result. *)

(** {1 Inside a thread} *)

val in_sim : unit -> bool
(** [true] iff the caller is executing inside a simulated thread. *)

val now : unit -> int
(** Current thread's virtual time in nanoseconds (0 outside a sim). *)

val self_tid : unit -> int
(** Current thread id; [-1] outside a sim. *)

val self_name : unit -> string

val self_proc : unit -> Proc.t
(** The current thread's process, or {!Proc.root} outside a sim. *)

val world_uid : unit -> int
(** A process-unique id of the active world (0 outside a sim).  Module-global
    per-thread state keyed by [(world_uid, self_tid)] can never leak between
    two worlds that happen to reuse the same thread ids — e.g. a deadline
    left behind by a killed thread (which never unwinds) must not apply to
    an unrelated thread of the next simulation. *)

val advance : int -> unit
(** Charge [ns] nanoseconds of virtual time to the current thread and yield
    to the scheduler.  No-op outside a simulation. *)

val yield : unit -> unit
(** Yield without advancing time (other threads at the same timestamp may
    run). *)

val sleep_until : int -> unit
(** Advance the current thread to the given absolute virtual time (no-op if
    already past it). *)

(** {1 Thread-kill injection}

    Fault injection for chaos testing: an armed kill makes its target thread
    die at a later {!advance} suspension point — the simulated equivalent of
    a process being SIGKILLed mid-syscall.  Death drops the thread's
    continuation {e without unwinding}: no finalizer, no exception handler,
    no lock release runs, exactly as when a real process vanishes.  Survivors
    must cope through crash-safe on-media protocols (lease expiry, intention
    records). *)

val arm_kill : tid:int -> after:int -> unit
(** [arm_kill ~tid ~after] arms the active world so thread [tid] dies at its
    [after]-th subsequent {!advance} (clamped to at least 1).  Re-arming
    replaces the countdown; no-op outside a running world. *)

val disarm_kill : tid:int -> unit

val killed_threads : unit -> int
(** Threads killed so far in the active world (0 outside a sim). *)

val thread_alive : int -> bool
(** [thread_alive tid] is [true] iff [tid] was spawned in the active world
    and has neither returned nor been killed.  [false] outside a running
    world.  Used by dynamic analyses: a dead thread's whole history is safe
    to order before the observer (it will never act again). *)

val with_no_kill : (unit -> 'a) -> 'a
(** Run [f] with kill delivery deferred for the current thread: an armed
    kill neither fires nor counts down inside.  Used around simulated-kernel
    critical sections — a thread dying while holding the KernFS mutex would
    model a kernel panic, not a process death. *)

(** {1 Whole-process kill}

    The multi-process analogue of {!arm_kill}: SIGKILL delivered to a whole
    simulated process.  Every thread of the pid dies at its next suspension
    point, with the same no-unwinding semantics — survivors in other
    processes must recover through the on-media protocols, and a surviving
    thread must reap the kernel-side state (see [Kernfs.reap_process]). *)

val kill_process : pid:int -> unit
(** Arm every live thread of [pid] in the active world to die at its next
    {!advance} outside a {!with_no_kill} section (a thread inside a system
    call completes it first; one parked on a sync object dies at its first
    [advance] after waking).  No-op outside a running world. *)

val proc_alive : int -> bool
(** [proc_alive pid] is [true] iff at least one thread spawned under [pid]
    in the active world is still alive. *)

val proc_tids : int -> int list
(** All tids ever spawned under [pid] in the active world (dead or alive),
    in spawn order.  Used by kernel-side reaping to drop per-thread
    protection state. *)

(** {1 Synchronization trace}

    Scheduler-level events consumed by dynamic analyses (lib/race) that need
    the happens-before skeleton.  The hook is module-global — the sim layer
    cannot depend on its observers — and fires synchronously from the thread
    performing the event (for [S_spawn], from the {e parent}'s context). *)

type sync_event =
  | S_spawn of { parent : int; child : int }
      (** [parent] is [-1] when spawned from outside any simulated thread. *)
  | S_exit of { tid : int }  (** normal thread return *)
  | S_kill of { tid : int }
      (** death via {!arm_kill}: the thread vanished without unwinding *)
  | S_mutex_lock of { tid : int; id : int }
  | S_mutex_unlock of { tid : int; id : int }

val set_sync_hook : (sync_event -> unit) -> unit
val clear_sync_hook : unit -> unit

(** {1 Synchronization} *)

module Mutex : sig
  type t

  val create : ?name:string -> unit -> t
  val lock : t -> unit
  val try_lock : t -> bool
  val unlock : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
  val locked : t -> bool

  val id : t -> int
  (** Unique id of this mutex, as it appears in {!sync_event}. *)
end

module Rwlock : sig
  type t

  val create : ?name:string -> unit -> t
  val rdlock : t -> unit
  val wrlock : t -> unit
  val unlock : t -> unit
  val with_rd : t -> (unit -> 'a) -> 'a
  val with_wr : t -> (unit -> 'a) -> 'a
end

(** A serially-reusable resource (e.g. a memory channel's bandwidth): callers
    reserve it for a duration and are advanced past the end of their slot. *)
module Resource : sig
  type t

  val create : ?name:string -> unit -> t

  val use : t -> int -> unit
  (** [use r ns] reserves the resource for [ns] nanoseconds starting at the
      earliest instant it is free, and advances the calling thread to the end
      of the reservation.  No-op outside a simulation. *)

  val busy_until : t -> int
end

(** {1 Deterministic pseudo-random numbers (splitmix64)} *)
module Rng : sig
  type t

  val create : int64 -> t
  val next : t -> int64
  val int : t -> int -> int
  (** [int t bound] uniform in [0, bound). *)

  val float : t -> float -> float
  val bool : t -> bool
  val shuffle : t -> 'a array -> unit

  val get_state : t -> int64
  (** Raw splitmix64 state, for snapshot/replay of a PRNG stream. *)

  val set_state : t -> int64 -> unit
end

val rng : unit -> Rng.t
(** The current world's RNG (a fresh standalone RNG outside a sim). *)

val live_threads : unit -> int
(** Number of live threads in the active world (1 outside a sim); used by
    cost models that scale with concurrency. *)

(** {1 Statistics helpers used by the benchmark harnesses} *)
module Stats : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
end
