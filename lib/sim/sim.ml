(* Discrete-event simulation kernel: cooperative threads on a virtual clock.

   The scheduler keeps a min-heap of (time, seq, thunk).  A thunk resumes a
   suspended thread; the thread runs until it performs a [Suspend] effect
   (advance, lock wait, ...) or returns.  Because the runnable thread with
   the smallest timestamp always runs first, lock acquisition order and every
   other interleaving decision is a pure function of simulated time. *)

module Proc = struct
  type t = {
    pid : int;
    mutable uid : int;
    mutable gid : int;
    mutable groups : int list;
  }

  let next_pid = ref 1

  let create ?(uid = 0) ?(gid = 0) ?(groups = []) () =
    let pid = !next_pid in
    incr next_pid;
    { pid; uid; gid; groups }

  let root = { pid = 0; uid = 0; gid = 0; groups = [] }
end

module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  (* splitmix64 *)
  let next t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Rng.int";
    let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    v mod bound

  let float t bound =
    let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
    bound *. (v /. 9007199254740992.0)

  let bool t = Int64.logand (next t) 1L = 1L

  (* Expose the raw state so device snapshots can capture/replay the
     crash-policy stream deterministically. *)
  let get_state t = t.state
  let set_state t s = t.state <- s

  let shuffle t a =
    for i = Array.length a - 1 downto 1 do
      let j = int t (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done
end

(* Min-heap of (time, seq, thunk); seq breaks ties FIFO. *)
module Heap = struct
  type entry = { time : int; seq : int; thunk : unit -> unit }
  type t = { mutable arr : entry array; mutable len : int }

  let dummy = { time = 0; seq = 0; thunk = (fun () -> ()) }
  let create () = { arr = Array.make 64 dummy; len = 0 }
  let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h e =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.arr.(!i) <- e;
    let continue_up = ref true in
    while !continue_up && !i > 0 do
      let parent = (!i - 1) / 2 in
      if lt h.arr.(!i) h.arr.(parent) then begin
        let tmp = h.arr.(parent) in
        h.arr.(parent) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := parent
      end
      else continue_up := false
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      h.arr.(h.len) <- dummy;
      let i = ref 0 in
      let continue_down = ref true in
      while !continue_down do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && lt h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.len && lt h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue_down := false
      done;
      Some top
    end
end

type thread = {
  tid : int;
  tname : string;
  proc : Proc.t;
  mutable time : int;
  world : world;
}

and world = {
  wuid : int;  (* unique across all worlds ever created in this process *)
  mutable next_tid : int;
  mutable next_seq : int;
  mutable live : int;
  mutable blocked : (int * string) list;  (* threads parked on sync objects *)
  heap : Heap.t;
  mutable current : thread option;
  rng0 : Rng.t;
  kills : (int, int) Hashtbl.t;  (* tid -> remaining advances before death *)
  nokill : (int, int) Hashtbl.t;  (* tid -> no-kill nesting depth *)
  mutable killed : int;
  dead : (int, unit) Hashtbl.t;  (* tids that exited or were killed *)
  proc_threads : (int, int list ref) Hashtbl.t;  (* pid -> tids, spawn order *)
}

exception Deadlock of string

(* ---- synchronization trace ---------------------------------------------- *)

(* Scheduler-level synchronization events, consumed by dynamic analyses
   (lib/race) that need the happens-before skeleton: thread creation and
   termination, and mutex acquire/release.  The hook is module-global (the
   sim layer cannot depend on its observers) and fires synchronously from
   the thread performing the event. *)
type sync_event =
  | S_spawn of { parent : int; child : int }
  | S_exit of { tid : int }  (* normal return *)
  | S_kill of { tid : int }  (* death via arm_kill: no unwinding happened *)
  | S_mutex_lock of { tid : int; id : int }
  | S_mutex_unlock of { tid : int; id : int }

let sync_hook : (sync_event -> unit) option ref = ref None
let set_sync_hook f = sync_hook := Some f
let clear_sync_hook () = sync_hook := None
let sync_emit ev = match !sync_hook with None -> () | Some f -> f ev

let next_wuid = ref 0

let create ?(seed = 42L) () =
  incr next_wuid;
  {
    wuid = !next_wuid;
    next_tid = 0;
    next_seq = 0;
    live = 0;
    blocked = [];
    heap = Heap.create ();
    current = None;
    rng0 = Rng.create seed;
    kills = Hashtbl.create 8;
    nokill = Hashtbl.create 8;
    killed = 0;
    dead = Hashtbl.create 8;
    proc_threads = Hashtbl.create 8;
  }

(* The world currently executing [run]; single-domain, so a plain ref. *)
let active : world option ref = ref None

let current_thread () =
  match !active with None -> None | Some w -> w.current

let in_sim () = current_thread () <> None
let now () = match current_thread () with None -> 0 | Some t -> t.time
let self_tid () = match current_thread () with None -> -1 | Some t -> t.tid

let self_name () =
  match current_thread () with None -> "main" | Some t -> t.tname

let self_proc () =
  match current_thread () with None -> Proc.root | Some t -> t.proc

let world_uid () = match !active with None -> 0 | Some w -> w.wuid

let fallback_rng = Rng.create 0x5EEDL
let rng () = match !active with None -> fallback_rng | Some w -> w.rng0
let live_threads () = match !active with None -> 1 | Some w -> max 1 w.live

type _ Effect.t +=
  | Suspend : ((unit, unit) Effect.Deep.continuation -> unit) -> unit Effect.t

let schedule w time thunk =
  let seq = w.next_seq in
  w.next_seq <- seq + 1;
  Heap.push w.heap { Heap.time; seq; thunk }

let suspend f = Effect.perform (Suspend f)

(* Park the current thread on a synchronization object.  [register] receives
   a [wake] function that, given a wake-up time, reschedules the thread. *)
let resume w t k =
  schedule w t.time (fun () ->
      w.current <- Some t;
      Effect.Deep.continue k ())

let park w t ~on:objname register =
  w.blocked <- (t.tid, objname) :: w.blocked;
  suspend (fun k ->
      let wake at =
        w.blocked <- List.filter (fun (tid, _) -> tid <> t.tid) w.blocked;
        t.time <- max t.time at;
        resume w t k
      in
      register wake)

let reschedule w t = suspend (fun k -> resume w t k)

(* ---- thread-kill injection --------------------------------------------- *)

(* An armed kill makes its target die at a later [advance] — the simulated
   equivalent of a process being SIGKILLed at an arbitrary point mid-syscall.
   Death drops the suspended continuation without unwinding: no [Fun.protect]
   finalizer, no lease release, no exception handler runs, exactly as when a
   real process vanishes.  Whatever the thread left half-done in NVM stays
   half-done; survivors must cope (lease expiry + intention-record repair).

   Kills fire only at [advance] suspension points, and never while the
   thread is inside a [with_no_kill] section — dying while holding a
   simulated kernel mutex would model a kernel panic, not a process death
   (the paper's trust model keeps KernFS alive). *)

let nokill_depth w tid =
  match Hashtbl.find_opt w.nokill tid with Some d -> d | None -> 0

let die t =
  let w = t.world in
  w.live <- w.live - 1;
  w.killed <- w.killed + 1;
  Hashtbl.remove w.kills t.tid;
  Hashtbl.replace w.dead t.tid ();
  sync_emit (S_kill { tid = t.tid });
  (* Drop the continuation: the thread never resumes and nothing unwinds. *)
  suspend (fun _k -> ())

let maybe_kill t =
  let w = t.world in
  if Hashtbl.length w.kills > 0 then
    match Hashtbl.find_opt w.kills t.tid with
    | Some n when nokill_depth w t.tid = 0 ->
        if n <= 1 then die t else Hashtbl.replace w.kills t.tid (n - 1)
    | _ -> ()

let arm_kill ~tid ~after =
  match !active with
  | None -> ()
  | Some w -> Hashtbl.replace w.kills tid (max 1 after)

let disarm_kill ~tid =
  match !active with None -> () | Some w -> Hashtbl.remove w.kills tid

let killed_threads () =
  match !active with None -> 0 | Some w -> w.killed

let thread_alive tid =
  match !active with
  | None -> false
  | Some w -> tid >= 0 && tid < w.next_tid && not (Hashtbl.mem w.dead tid)

(* ---- whole-process kill ------------------------------------------------- *)

(* Threads are indexed by the pid of their process at spawn time, in spawn
   order, so process-wide operations (kill, reap) iterate deterministically. *)

let proc_tids pid =
  match !active with
  | None -> []
  | Some w -> (
      match Hashtbl.find_opt w.proc_threads pid with
      | Some l -> List.rev !l
      | None -> [])

let proc_alive pid = List.exists thread_alive (proc_tids pid)

(* SIGKILL for a whole simulated process: every live thread of [pid] is armed
   to die at its very next suspension point outside a [with_no_kill] section.
   As with [arm_kill], death drops the continuation without unwinding — no
   finalizer, no lease release — and a thread inside a system call (no-kill)
   completes it first, so the kernel lock is never orphaned.  Threads parked
   on a sync object die at their first [advance] after being woken. *)
let kill_process ~pid =
  match !active with
  | None -> ()
  | Some w ->
      List.iter
        (fun tid ->
          if not (Hashtbl.mem w.dead tid) then Hashtbl.replace w.kills tid 1)
        (proc_tids pid)

let with_no_kill f =
  match current_thread () with
  | None -> f ()
  | Some t ->
      let w = t.world in
      Hashtbl.replace w.nokill t.tid (nokill_depth w t.tid + 1);
      let leave () =
        let d = nokill_depth w t.tid - 1 in
        if d <= 0 then Hashtbl.remove w.nokill t.tid
        else Hashtbl.replace w.nokill t.tid d
      in
      (match f () with
      | v ->
          leave ();
          v
      | exception e ->
          leave ();
          raise e)

let advance ns =
  if ns < 0 then invalid_arg "Sim.advance: negative duration";
  match current_thread () with
  | None -> ()
  | Some t ->
      t.time <- t.time + ns;
      maybe_kill t;
      reschedule t.world t

let yield () =
  match current_thread () with None -> () | Some t -> reschedule t.world t

let sleep_until at =
  match current_thread () with
  | None -> ()
  | Some t -> if at > t.time then advance (at - t.time)

let spawn_tid w ?proc ?at ~name body =
  let proc =
    match proc with
    | Some p -> p
    | None -> ( match w.current with Some t -> t.proc | None -> Proc.root)
  in
  let start =
    match at with
    | Some a -> a
    | None -> ( match w.current with Some t -> t.time | None -> 0)
  in
  let tid = w.next_tid in
  w.next_tid <- tid + 1;
  w.live <- w.live + 1;
  (match Hashtbl.find_opt w.proc_threads proc.Proc.pid with
  | Some l -> l := tid :: !l
  | None -> Hashtbl.replace w.proc_threads proc.Proc.pid (ref [ tid ]));
  let t = { tid; tname = name; proc; time = start; world = w } in
  sync_emit
    (S_spawn
       {
         parent = (match w.current with Some p -> p.tid | None -> -1);
         child = tid;
       });
  let thunk () =
    w.current <- Some t;
    Effect.Deep.match_with body ()
      {
        retc =
          (fun () ->
            w.live <- w.live - 1;
            Hashtbl.replace w.dead t.tid ();
            sync_emit (S_exit { tid = t.tid }));
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend f ->
                Some (fun (k : (a, unit) Effect.Deep.continuation) -> f k)
            | _ -> None);
      }
  in
  schedule w start thunk;
  tid

let spawn w ?proc ?at ~name body = ignore (spawn_tid w ?proc ?at ~name body)

let run w =
  let saved = !active in
  active := Some w;
  let restore () =
    w.current <- None;
    active := saved
  in
  let rec loop () =
    match Heap.pop w.heap with
    | Some { Heap.thunk; _ } ->
        thunk ();
        w.current <- None;
        loop ()
    | None ->
        if w.live > 0 then begin
          let names =
            List.map (fun (tid, obj) -> Printf.sprintf "#%d on %s" tid obj)
              w.blocked
          in
          restore ();
          raise
            (Deadlock
               (Printf.sprintf "%d thread(s) blocked: %s" w.live
                  (String.concat ", " names)))
        end
  in
  (try loop () with e -> restore (); raise e);
  restore ()

let run_thread ?seed ?proc f =
  let w = create ?seed () in
  let result = ref None in
  spawn w ?proc ~name:"main" (fun () -> result := Some (f ()));
  run w;
  match !result with
  | Some r -> r
  | None -> failwith "Sim.run_thread: thread did not complete"

let the_current () =
  match current_thread () with
  | Some t -> t
  | None -> failwith "Sim: blocking operation outside a simulated thread"

module Mutex = struct
  type t = {
    mutable owner : int option;  (* tid *)
    waiters : (int -> unit) Queue.t;  (* wake functions *)
    name : string;
    id : int;  (* unique per mutex, for the sync trace *)
  }

  let next_id = ref 0

  let create ?(name = "mutex") () =
    let id = !next_id in
    incr next_id;
    { owner = None; waiters = Queue.create (); name; id }

  let id m = m.id

  let lock m =
    match current_thread () with
    | None -> m.owner <- Some (-1)
    | Some t -> (
        match m.owner with
        | None ->
            m.owner <- Some t.tid;
            sync_emit (S_mutex_lock { tid = t.tid; id = m.id })
        | Some _ ->
            park t.world t ~on:m.name (fun wake -> Queue.push wake m.waiters);
            (* We are woken holding the lock (handoff). *)
            m.owner <- Some t.tid;
            sync_emit (S_mutex_lock { tid = t.tid; id = m.id }))

  let try_lock m =
    match m.owner with
    | None ->
        m.owner <- Some (self_tid ());
        (match current_thread () with
        | Some t -> sync_emit (S_mutex_lock { tid = t.tid; id = m.id })
        | None -> ());
        true
    | Some _ -> false

  let unlock m =
    if m.owner = None then invalid_arg "Mutex.unlock: not locked";
    (match current_thread () with
    | Some t -> sync_emit (S_mutex_unlock { tid = t.tid; id = m.id })
    | None -> ());
    m.owner <- None;
    if not (Queue.is_empty m.waiters) then begin
      let wake = Queue.pop m.waiters in
      (* Handoff: successor may not run before the current virtual time. *)
      m.owner <- Some (-2) (* reserved for the woken thread *);
      wake (now ())
    end

  let with_lock m f =
    lock m;
    match f () with
    | v ->
        unlock m;
        v
    | exception e ->
        unlock m;
        raise e

  let locked m = m.owner <> None
end

module Rwlock = struct
  type waiter = { write : bool; wake : int -> unit }

  type t = {
    mutable readers : int;
    mutable writer : bool;
    waiters : waiter Queue.t;
    name : string;
  }

  let create ?(name = "rwlock") () =
    { readers = 0; writer = false; waiters = Queue.create (); name }

  let rdlock l =
    match current_thread () with
    | None -> l.readers <- l.readers + 1
    | Some t ->
        if l.writer || not (Queue.is_empty l.waiters) then
          park t.world t ~on:l.name (fun wake ->
              Queue.push { write = false; wake } l.waiters)
        else l.readers <- l.readers + 1

  let wrlock l =
    match current_thread () with
    | None -> l.writer <- true
    | Some t ->
        if l.writer || l.readers > 0 then
          park t.world t ~on:l.name (fun wake ->
              Queue.push { write = true; wake } l.waiters)
        else l.writer <- true

  (* Grant as many waiters as compatible, FIFO. *)
  let rec drain l at =
    match Queue.peek_opt l.waiters with
    | None -> ()
    | Some w ->
        if w.write then begin
          if l.readers = 0 && not l.writer then begin
            ignore (Queue.pop l.waiters);
            l.writer <- true;
            w.wake at
          end
        end
        else if not l.writer then begin
          ignore (Queue.pop l.waiters);
          l.readers <- l.readers + 1;
          w.wake at;
          drain l at
        end

  let unlock l =
    if l.writer then l.writer <- false
    else if l.readers > 0 then l.readers <- l.readers - 1
    else invalid_arg "Rwlock.unlock: not locked";
    drain l (now ())

  let with_rd l f =
    rdlock l;
    match f () with
    | v ->
        unlock l;
        v
    | exception e ->
        unlock l;
        raise e

  let with_wr l f =
    wrlock l;
    match f () with
    | v ->
        unlock l;
        v
    | exception e ->
        unlock l;
        raise e
end

module Resource = struct
  type t = { mutable free_at : int; name : string }

  let create ?(name = "resource") () = { free_at = 0; name }

  let use r ns =
    match current_thread () with
    | None -> ()
    | Some t ->
        let start = max t.time r.free_at in
        let finish = start + ns in
        r.free_at <- finish;
        advance (finish - t.time)

  let busy_until r = r.free_at

  let _ = ignore the_current
end

module Stats = struct
  type t = {
    mutable n : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create () = { n = 0; sum = 0.; minv = infinity; maxv = neg_infinity }

  let add t v =
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
  let min t = if t.n = 0 then 0. else t.minv
  let max t = if t.n = 0 then 0. else t.maxv
  let total t = t.sum
end
