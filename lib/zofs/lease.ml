(* Lease locks (paper §5.2).

   A lease is a single u64 on NVM: [(expiry_ns << 16) | owner_code], 0 when
   free.  Owners acquire and release with compare-and-swap; the timestamp
   comes from the simulated clock (the paper uses clock_gettime through the
   vDSO, which is why taking a timestamp is cheap).  If a thread dies while
   holding a lease, the lease expires and any other thread can steal it —
   that is the whole point of leases over plain locks in a file system
   mapped into untrusted processes. *)

let default_duration = 100_000 (* 100 µs of simulated time *)
let clock_gettime_cost = 25 (* ns: vDSO call *)
let backoff_base = 200 (* ns: first inter-attempt delay *)
let backoff_cap = 6_400 (* ns: delays stop growing here *)

let owner_code () = Sim.self_tid () + 2 (* >= 1 even for the non-sim tid -1 *)

let pack ~expiry ~code = (expiry lsl 16) lor (code land 0xFFFF)
let expiry_of v = v lsr 16
let code_of v = v land 0xFFFF

let now () =
  Sim.advance clock_gettime_cost;
  Sim.now ()

(* Acquire the lease at [addr]; backs off (capped exponential with
   deterministic jitter, Treasury.Backoff) while another thread holds a
   valid lease.

   [deadline] is an absolute simulated time after which the caller would
   rather give up than keep camping on the lease; it defaults to the
   request's ambient deadline (Treasury.Deadline), so the serving plane's
   end-to-end budget reaches all the way into lock acquisition without any
   signature changes in between.  Expiry raises [Treasury.Deadline.Expired]
   BEFORE the lease is taken — never after, so a deadlined request cannot
   abandon a critical section halfway.  A deadline already in the past
   still grants one CAS attempt: an uncontended lease costs one try, so
   "zero budget" degrades to try-once rather than fail-always. *)
let acquire ?(duration = default_duration) ?deadline dev addr =
  let deadline =
    match deadline with Some _ as d -> d | None -> Treasury.Deadline.current ()
  in
  let me = owner_code () in
  let tok = Obs.lease_begin () in
  let retries = ref 0 in
  let bo = Treasury.Backoff.create ~base:backoff_base ~cap:backoff_cap ~salt:addr () in
  let give_up () =
    Obs.lease_abort tok ~retries:!retries;
    let d = match deadline with Some d -> d | None -> assert false in
    raise (Treasury.Deadline.Expired { deadline = d; now = Sim.now () })
  in
  (* Sleep one backoff step before the next attempt; when a deadline is set,
     never sleep past it, and once it is reached the attempt that follows is
     the final one ([last] below). *)
  let pause () =
    incr retries;
    match deadline with
    | None ->
        ignore (Treasury.Backoff.wait bo);
        `Again
    | Some d ->
        if Treasury.Backoff.wait_until bo ~deadline:d then `Again else `Last
  in
  (* After a CAS-failure backoff the previous timestamp is at most one
     backoff step stale — well within lease granularity — so the retry
     reuses it instead of paying clock_gettime_cost a second time. *)
  let rec attempt ~fresh_clock ~last =
    let v = Nvm.Device.read_u64 dev addr in
    let t = if fresh_clock then now () else Sim.now () in
    if v = 0 || expiry_of v <= t || code_of v = me then begin
      (* No flush: lease state is coordination only — after a crash every
         lease has expired by construction. *)
      let desired = pack ~expiry:(t + duration) ~code:me in
      if Nvm.Device.cas_u64 dev addr ~expected:v ~desired then begin
        (* Taking over a nonzero expired word is a steal: the holder died
           (or stalled past its lease) mid-operation. *)
        if v <> 0 && code_of v <> me then begin
          let victim_tid = code_of v - 2 in
          Obs.cnt_coffer "lease.steals" 1;
          (* Stealing from a thread that no longer exists (its whole process
             was SIGKILLed, possibly a different process than ours) is the
             cross-process recovery path of §5.2 — count it separately so
             the chaos campaign can reconcile process kills against steals. *)
          if not (Sim.thread_alive victim_tid) then
            Obs.cnt "lease.steals_dead_holder" 1;
          Obs.Flight.note "lease_steal"
            [
              ("addr", string_of_int addr);
              ("victim_tid", string_of_int victim_tid);
              ("victim_alive", string_of_bool (Sim.thread_alive victim_tid));
            ];
          (* The dead (or stalled) holder never released: hand the race
             detector the ordering edge the CAS chain cannot provide. *)
          Race.on_lease_steal dev ~victim_tid
        end;
        Obs.lease_end tok ~retries:!retries;
        Check.on_lease_acquired dev addr;
        Race.on_lease_acquired dev addr
      end
      else if last then give_up ()
      else
        match pause () with
        | `Again -> attempt ~fresh_clock:false ~last:false
        | `Last -> attempt ~fresh_clock:false ~last:true
    end
    else if last then give_up ()
    else
      match pause () with
      | `Again -> attempt ~fresh_clock:true ~last:false
      | `Last -> attempt ~fresh_clock:true ~last:true
  in
  let already_expired =
    match deadline with Some d -> Sim.now () >= d | None -> false
  in
  attempt ~fresh_clock:true ~last:already_expired

(* Renew the current thread's lease (no-op if it was stolen).  The CAS with
   the exact word read means a stale holder can never clobber a stealer's
   lease; a failed CAS (or a word already carrying another owner's code) is
   the moment a steal becomes visible to the old holder — counted so the
   chaos campaign can reconcile steals against detections. *)
let renew ?(duration = default_duration) dev addr =
  let me = owner_code () in
  let v = Nvm.Device.read_u64 dev addr in
  if code_of v = me then begin
    let t = now () in
    if
      not
        (Nvm.Device.cas_u64 dev addr ~expected:v
           ~desired:(pack ~expiry:(t + duration) ~code:me))
    then Obs.cnt "lease.stolen_detected" 1
  end
  else if v <> 0 then Obs.cnt "lease.stolen_detected" 1

let release dev addr =
  let me = owner_code () in
  (* Release is the operation's final ordering point: the batched commit
     paths leave their last stores (size/mtime, intention clear, dentry
     valid byte) flushed but unfenced, and this barrier makes them durable
     exactly once — before the durability audit below, and elided entirely
     when nothing is in flight (e.g. after a read-only critical section). *)
  Pbatch.barrier dev;
  Check.on_lease_release dev addr;
  Race.on_lease_release dev addr;
  let v = Nvm.Device.read_u64 dev addr in
  if code_of v = me then begin
    if not (Nvm.Device.cas_u64 dev addr ~expected:v ~desired:0) then
      Obs.cnt "lease.stolen_detected" 1
  end
  else if v <> 0 then Obs.cnt "lease.stolen_detected" 1

let holds dev addr =
  let v = Nvm.Device.read_u64 dev addr in
  code_of v = owner_code () && expiry_of v > Sim.now ()

(* Negative self-check knob (mirroring Pbatch.over_elide): when set to a
   thread id, [with_lease] on that thread skips the lease entirely and runs
   [f] bare.  Only bin/zofs_race sets it, to prove the race sanitizer
   catches a lease-elided mutation; never set in production paths. *)
let elide_for_tid : int option ref = ref None

let with_lease ?duration ?deadline dev addr f =
  if !elide_for_tid = Some (Sim.self_tid ()) then f ()
  else begin
    acquire ?duration ?deadline dev addr;
    match f () with
    | v ->
        release dev addr;
        v
    | exception e ->
        release dev addr;
        raise e
  end
