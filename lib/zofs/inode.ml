(* Inode accessors.  An inode occupies a full 4 KB page (paper §5.1); its
   byte address is its identity (st_ino).  Regular files use ext4-style
   direct / indirect / double-indirect block pointers; symlinks store their
   target inline; directories point to their first-level hash page through
   direct[0]. *)

open Layout

type kind = Regular | Directory | Symlink

let kind_code = function
  | Regular -> kind_regular
  | Directory -> kind_directory
  | Symlink -> kind_symlink

let kind_of_code = function
  | c when c = kind_regular -> Some Regular
  | c when c = kind_directory -> Some Directory
  | c when c = kind_symlink -> Some Symlink
  | _ -> None

let fs_kind = function
  | Regular -> Treasury.Fs_types.Regular
  | Directory -> Treasury.Fs_types.Directory
  | Symlink -> Treasury.Fs_types.Symlink

let init dev ~ino ~kind ~mode ~uid ~gid =
  let now = Sim.now () in
  (* The inode lease protects the whole inode page; the page may be a
     recycled one, so this also retires any stale registration. *)
  Check.register_lease dev ~lease:(ino + i_lease) ~addr:ino ~len:page_size;
  Nvm.Device.write_u32 dev (ino + i_magic) inode_magic;
  Nvm.Device.write_u32 dev (ino + i_kind) (kind_code kind);
  Nvm.Device.write_u32 dev (ino + i_mode) mode;
  Nvm.Device.write_u32 dev (ino + i_uid) uid;
  Nvm.Device.write_u32 dev (ino + i_gid) gid;
  Nvm.Device.write_u32 dev (ino + i_nlink) (if kind = Directory then 2 else 1);
  Nvm.Device.write_u64 dev (ino + i_size) 0;
  Nvm.Device.write_u64 dev (ino + i_atime) now;
  Nvm.Device.write_u64 dev (ino + i_mtime) now;
  Nvm.Device.write_u64 dev (ino + i_ctime) now;
  Nvm.Device.write_u64 dev (ino + i_lease) 0;
  (* Zero the intention record (the page may be recycled with a stale one);
     the persist_range below covers bytes 0..i_double_indirect+8, so this is
     made durable with the rest of the inode. *)
  Nvm.Device.write_u64 dev (ino + i_intent) 0;
  Nvm.Device.write_u64 dev (ino + i_intent + 8) 0;
  for i = 0 to n_direct - 1 do
    Nvm.Device.write_u64 dev (ino + i_direct + (i * 8)) 0
  done;
  Nvm.Device.write_u64 dev (ino + i_indirect) 0;
  Nvm.Device.write_u64 dev (ino + i_double_indirect) 0;
  (* Batched persist: coalesced flush of the written lines, then one fence
     right before the visibility point the checker audits. *)
  Pbatch.flush dev ino (i_double_indirect + 8);
  Pbatch.barrier dev;
  Check.publish dev ~label:"inode-commit" ino page_size;
  Race.publish dev ~label:"inode-commit" ino page_size

let valid dev ~ino = Nvm.Device.read_u32 dev (ino + i_magic) = inode_magic

let kind dev ~ino = kind_of_code (Nvm.Device.read_u32 dev (ino + i_kind))

let kind_exn dev ~ino =
  match kind dev ~ino with
  | Some k -> k
  | None ->
      raise
        (Treasury.Ufs_intf.Zofs_corrupt
           (Printf.sprintf "inode 0x%x: bad kind byte" ino))

let mode dev ~ino = Nvm.Device.read_u32 dev (ino + i_mode)
let uid dev ~ino = Nvm.Device.read_u32 dev (ino + i_uid)
let gid dev ~ino = Nvm.Device.read_u32 dev (ino + i_gid)
let nlink dev ~ino = Nvm.Device.read_u32 dev (ino + i_nlink)
let size dev ~ino = Nvm.Device.read_u64 dev (ino + i_size)

let set_mode dev ~ino v =
  Nvm.Device.write_u32 dev (ino + i_mode) v;
  Nvm.Device.persist_range dev (ino + i_mode) 4

let set_owner dev ~ino ~uid:u ~gid:g =
  Nvm.Device.write_u32 dev (ino + i_uid) u;
  Nvm.Device.write_u32 dev (ino + i_gid) g;
  Nvm.Device.persist_range dev (ino + i_uid) 8

let set_nlink dev ~ino v =
  Nvm.Device.write_u32 dev (ino + i_nlink) v;
  Nvm.Device.persist_range dev (ino + i_nlink) 4

(* Size and mtime updates happen under the inode lease; their flush rides
   the lease-release fence (the publish point that audits them), so neither
   issues a fence of its own. *)
let set_size dev ~ino v =
  Nvm.Device.write_u64 dev (ino + i_size) v;
  Nvm.Device.write_u64 dev (ino + i_mtime) (Sim.now ());
  Pbatch.flush dev (ino + i_size) 24

let touch_mtime dev ~ino =
  Nvm.Device.write_u64 dev (ino + i_mtime) (Sim.now ());
  Pbatch.flush dev (ino + i_mtime) 8

let lease_addr ~ino = ino + i_lease

let stat dev ~ino : Treasury.Fs_types.stat =
  {
    st_ino = ino / page_size;
    st_kind = fs_kind (kind_exn dev ~ino);
    st_mode = mode dev ~ino;
    st_uid = uid dev ~ino;
    st_gid = gid dev ~ino;
    st_size = size dev ~ino;
    st_nlink = nlink dev ~ino;
    st_atime = Nvm.Device.read_u64 dev (ino + i_atime);
    st_mtime = Nvm.Device.read_u64 dev (ino + i_mtime);
    st_ctime = Nvm.Device.read_u64 dev (ino + i_ctime);
  }

(* ---- symlinks ------------------------------------------------------------ *)

let set_symlink_target dev ~ino target =
  let len = String.length target in
  if len > max_symlink_target then invalid_arg "Zofs: symlink target too long";
  Nvm.Device.write_u16 dev (ino + i_symlink_len) len;
  Nvm.Device.write_string dev (ino + i_symlink_target) target;
  Nvm.Device.write_u64 dev (ino + i_size) len;
  Nvm.Device.persist_range dev (ino + i_symlink_len) (2 + len)

let symlink_target dev ~ino =
  let len = Nvm.Device.read_u16 dev (ino + i_symlink_len) in
  Nvm.Device.read_string dev (ino + i_symlink_target) len

(* ---- block pointers ------------------------------------------------------ *)

let direct_addr ~ino i = ino + i_direct + (i * 8)
let read_direct dev ~ino i = Nvm.Device.read_u64 dev (direct_addr ~ino i)

(* Block-pointer stores are flushed but not fenced here: the pointed-to
   page's contents are already durable (alloc_zeroed fences, data writes
   fence before size publish), and the pointer itself must only be durable
   before the size / dentry that exposes it — ordered by the enclosing
   operation's barrier. *)
let write_direct dev ~ino i v =
  Nvm.Device.write_u64 dev (direct_addr ~ino i) v;
  Pbatch.flush dev (direct_addr ~ino i) 8

let indirect dev ~ino = Nvm.Device.read_u64 dev (ino + i_indirect)

let set_indirect dev ~ino v =
  Nvm.Device.write_u64 dev (ino + i_indirect) v;
  Pbatch.flush dev (ino + i_indirect) 8

let double_indirect dev ~ino = Nvm.Device.read_u64 dev (ino + i_double_indirect)

let set_double_indirect dev ~ino v =
  Nvm.Device.write_u64 dev (ino + i_double_indirect) v;
  Pbatch.flush dev (ino + i_double_indirect) 8
