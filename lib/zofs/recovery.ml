(* Offline recovery (paper §3.5 and §5.3).

   For each coffer: map it, start the kernel recovery protocol
   (coffer_recover_begin unmaps it from everyone else and leases it to us),
   traverse from the coffer root page, validate and collect every in-use
   page, repair what can be repaired and drop what cannot, then report the
   in-use set to KernFS, which reclaims the rest.  A final pass validates
   every cross-coffer reference recorded during the traversals (G3 at
   fsck time). *)

module K = Treasury.Kernfs
module E = Treasury.Errno
module Coffer = Treasury.Coffer

(* Structured record of every repair action recovery took — the crash model
   checker (lib/crashmc) uses these to explain a post-crash state, and a
   second recovery run proving a fixpoint must produce none. *)
type finding =
  | Dropped_dentry of { coffer : int; path : string }
      (* dentry pointed at a missing/corrupt inode and was cleared *)
  | Reinitialized_root of { coffer : int; path : string }
      (* coffer root inode unrecoverable; reset to an empty directory *)
  | Repaired_cross_ref of { coffer : int; path : string }
      (* cross-coffer dentry disagreed with the kernel path map; rewritten *)
  | Dropped_cross_ref of { coffer : int; path : string }
      (* cross-coffer dentry named a path with no registered coffer *)
  | Dropped_orphan_coffer of { coffer : int; path : string }
      (* registered coffer unreachable from any surviving dentry and not
         repairable: deleted, pages reclaimed *)
  | Reattached_coffer of { coffer : int; path : string }
      (* registered coffer with a healthy root but no referencing dentry
         (crash mid coffer-create or mid cross-coffer rename): a fresh
         dentry was inserted at its kernel-registered path *)
  | Freed_orphan_run of { owner : int; start : int; len : int }
      (* allocation-table run owned by an unregistered coffer id *)
  | Completed_migration of { coffer : int; path : string }
      (* transient "<dst>.zofs-mv" coffer from an in-flight cross-coffer
         rename: rolled forward (merged into the destination's coffer and
         linked at the destination path) *)
  | Cleared_intent of { coffer : int; ino : int }
      (* a thread died between recording a mutation intention and clearing
         it: the intention was applied (rolled forward/back, see Intent) and
         cleared, so a later online lease acquirer can never roll back
         post-fsck state *)

let finding_to_string = function
  | Dropped_dentry { coffer; path } ->
      Printf.sprintf "dropped dentry %s (coffer %d)" path coffer
  | Reinitialized_root { coffer; path } ->
      Printf.sprintf "reinitialized root of coffer %d (%s)" coffer path
  | Repaired_cross_ref { coffer; path } ->
      Printf.sprintf "repaired cross-coffer ref %s (from coffer %d)" path coffer
  | Dropped_cross_ref { coffer; path } ->
      Printf.sprintf "dropped cross-coffer ref %s (from coffer %d)" path coffer
  | Dropped_orphan_coffer { coffer; path } ->
      Printf.sprintf "dropped orphan coffer %d (%s)" coffer path
  | Reattached_coffer { coffer; path } ->
      Printf.sprintf "reattached orphan coffer %d at %s" coffer path
  | Freed_orphan_run { owner; start; len } ->
      Printf.sprintf "freed orphan run [%d,+%d) owned by %d" start len owner
  | Completed_migration { coffer; path } ->
      Printf.sprintf "completed migration of coffer %d to %s" coffer path
  | Cleared_intent { coffer; ino } ->
      Printf.sprintf "cleared stale intention on inode 0x%x (coffer %d)" ino
        coffer

type report = {
  mutable coffers_scanned : int;
  mutable pages_in_use : int;
  mutable pages_reclaimed : int;
  mutable dentries_dropped : int;
  mutable inodes_reinitialized : int;
  mutable cross_refs_checked : int;
  mutable cross_refs_repaired : int;
  mutable cross_refs_dropped : int;
  mutable orphan_coffers_dropped : int;
  mutable orphan_coffers_reattached : int;
  mutable findings : finding list;  (* reverse chronological *)
  mutable user_ns : int;  (* simulated time spent in user space *)
  mutable kernel_ns : int;  (* simulated time spent in kernel calls *)
}

let fresh_report () =
  {
    coffers_scanned = 0;
    pages_in_use = 0;
    pages_reclaimed = 0;
    dentries_dropped = 0;
    inodes_reinitialized = 0;
    cross_refs_checked = 0;
    cross_refs_repaired = 0;
    cross_refs_dropped = 0;
    orphan_coffers_dropped = 0;
    orphan_coffers_reattached = 0;
    findings = [];
    user_ns = 0;
    kernel_ns = 0;
  }

let add_finding report f = report.findings <- f :: report.findings

let findings report = List.rev report.findings

type cross_ref = {
  xr_src_cid : int;
  xr_dentry : int;  (* dentry byte address *)
  xr_expected_path : string;
  xr_target_cid : int;
  xr_target_inode : int;
}

let page_of addr = addr / Layout.page_size

(* Traverse one coffer, collecting in-use pages and cross-coffer refs;
   corrupted dentries are cleared, a corrupted root inode is reinitialized
   as an empty directory. *)
let scan_coffer dev kfs report ~cid ~root_file ~coffer_path xrefs =
  let in_use : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let mark addr = Hashtbl.replace in_use (page_of addr) () in
  let owned addr =
    match K.page_owner kfs ~page:(page_of addr) with
    | Ok owner -> owner = cid
    | Error _ -> false
  in
  let drop_dentry (de, child_path) =
    Dir.clear_dentry dev de.Dir.de_addr;
    report.dentries_dropped <- report.dentries_dropped + 1;
    add_finding report (Dropped_dentry { coffer = cid; path = child_path })
  in
  (* A fault while traversing (a torn pointer into an unmapped page — the
     simulated SIGSEGV of §3.4.2) marks the inode unrecoverable, like any
     other corruption: the referencing dentry is dropped. *)
  let rec scan_inode ino cur_path =
    try scan_inode_body ino cur_path with Nvm.Fault _ -> false
  and scan_inode_body ino cur_path =
    if (not (owned ino)) || not (Inode.valid dev ~ino) then false
    else begin
      mark ino;
      (* A mutation intention still recorded here means its writer died
         mid-operation: apply it now (same repair an online lease stealer
         would run), before trusting size / dentries below. *)
      if Intent.pending dev ~ino then begin
        ignore (Intent.repair dev ~ino);
        add_finding report (Cleared_intent { coffer = cid; ino })
      end;
      (match Inode.kind dev ~ino with
      | Some Inode.Regular ->
          List.iter
            (fun p -> if owned p then mark p)
            (File.data_pages dev ~ino)
      | Some Inode.Symlink -> ()
      | Some Inode.Directory ->
          List.iter
            (fun p -> if owned p then mark p)
            (Dir.structure_pages dev ~ino);
          let to_drop = ref [] in
          Dir.iter dev ~ino (fun de ->
              let child_path = Treasury.Pathx.concat cur_path de.Dir.de_name in
              if de.Dir.de_coffer <> 0 then begin
                let registered =
                  match K.coffer_stat kfs de.Dir.de_coffer with
                  | Ok _ -> true
                  | Error _ -> false
                in
                if (not registered) && owned de.Dir.de_inode then begin
                  (* A cross-coffer rename that crashed after its merge but
                     before the dentry retarget: the transient coffer is
                     gone and the inode's pages already belong to this
                     coffer.  Finish the retarget and scan the file as
                     local. *)
                  (match
                     Dir.retarget dev ~ino de.Dir.de_name ~coffer:0
                       ~inode:de.Dir.de_inode
                   with
                  | Ok () | Error _ -> ());
                  report.cross_refs_repaired <-
                    report.cross_refs_repaired + 1;
                  add_finding report
                    (Repaired_cross_ref { coffer = cid; path = child_path });
                  if not (scan_inode de.Dir.de_inode child_path) then
                    to_drop := (de, child_path) :: !to_drop
                end
                else
                  (* Cross-coffer: validated in the second pass. *)
                  xrefs :=
                    {
                      xr_src_cid = cid;
                      xr_dentry = de.Dir.de_addr;
                      xr_expected_path = child_path;
                      xr_target_cid = de.Dir.de_coffer;
                      xr_target_inode = de.Dir.de_inode;
                    }
                    :: !xrefs
              end
              else if not (scan_inode de.Dir.de_inode child_path) then
                to_drop := (de, child_path) :: !to_drop);
          List.iter drop_dentry !to_drop
      | None -> ());
      true
    end
  in
  if not (scan_inode root_file coffer_path) then begin
    (* The coffer's root inode is unrecoverable: reinitialize it empty. *)
    (match Coffer.read dev ~id:cid with
    | Some info ->
        Inode.init dev ~ino:root_file ~kind:Inode.Directory
          ~mode:info.Coffer.mode ~uid:info.Coffer.uid ~gid:info.Coffer.gid
    | None ->
        Inode.init dev ~ino:root_file ~kind:Inode.Directory ~mode:0o755 ~uid:0
          ~gid:0);
    report.inodes_reinitialized <- report.inodes_reinitialized + 1;
    add_finding report (Reinitialized_root { coffer = cid; path = coffer_path });
    Hashtbl.replace in_use (page_of root_file) ()
  end;
  in_use

(* Recover a single coffer; the caller must be able to map it (recovery runs
   as root).  Returns true when the coffer was scanned and left readable. *)
let recover_coffer ufs kfs report xrefs (info : Coffer.info) =
  let dev = K.device kfs in
  (* A crash during coffer creation can leave the custom (allocator) page
     unformatted; mapping would refuse to attach to it.  Its entire content
     is rebuilt after the scan anyway, so reformat it up front (kernel mode:
     the coffer is not mapped yet). *)
  let mpk = K.mpk kfs in
  Mpk.with_kernel mpk (fun () ->
      (* An unreadable magic (media error) is as bad as a wrong one: the
         rebuild's stores scrub non-sticky poison off the page. *)
      let magic_ok =
        try
          Nvm.Device.read_u32 dev (info.Coffer.custom + Layout.c_magic)
          = Layout.custom_magic
        with Nvm.Fault { kind = Nvm.Media; _ } -> false
      in
      if not magic_ok then
        Mpk.with_write_window mpk (fun () ->
            Balloc.format dev ~custom:info.Coffer.custom));
  match Ufs.map_coffer ufs info.Coffer.id with
  | Error _ -> false
  | Ok cs -> (
      let t_user0 = Sim.now () in
      match K.coffer_recover_begin kfs info.Coffer.id with
      | Error _ -> false
      | Ok runs ->
          let total_pages =
            List.fold_left (fun acc (_, l) -> acc + l) 0 runs
          in
          let t_kernel0 = Sim.now () in
          let in_use =
            Ufs.with_coffer ufs cs ~write:true (fun () ->
                scan_coffer dev kfs report ~cid:info.Coffer.id
                  ~root_file:info.Coffer.root_file ~coffer_path:info.Coffer.path
                  xrefs)
          in
          Hashtbl.replace in_use (page_of info.Coffer.custom) ();
          let t_scan = Sim.now () in
          let pages = Hashtbl.fold (fun p () acc -> p :: acc) in_use [] in
          (match K.coffer_recover_end kfs info.Coffer.id ~in_use:pages with
          | Ok () -> ()
          | Error _ -> ());
          (* Reset the allocator: freed pages went back to KernFS. *)
          Ufs.with_coffer ufs cs ~write:true (fun () ->
              Balloc.format dev ~custom:info.Coffer.custom);
          let t_end = Sim.now () in
          report.coffers_scanned <- report.coffers_scanned + 1;
          report.pages_in_use <- report.pages_in_use + List.length pages;
          report.pages_reclaimed <-
            report.pages_reclaimed + (total_pages - 1 - List.length pages);
          report.user_ns <- report.user_ns + (t_scan - t_kernel0);
          report.kernel_ns <-
            report.kernel_ns + (t_kernel0 - t_user0) + (t_end - t_scan);
          (* Probe: the scan drops structures it cannot read, but a sticky
             media error on a page recovery itself rewrites (the root inode,
             the allocator's custom page) survives the stores.  Re-read
             those lines so a still-faulting coffer fails its recovery —
             letting the dispatcher quarantine it — instead of looping
             fault -> "successful" repair -> fault on every later op. *)
          try
            Ufs.with_coffer ufs cs ~write:false (fun () ->
                ignore (Inode.valid dev ~ino:info.Coffer.root_file);
                let a = ref info.Coffer.custom in
                while !a < info.Coffer.custom + Layout.page_size do
                  ignore (Nvm.Device.read_u64 dev !a);
                  a := !a + 64
                done);
            true
          with Nvm.Fault { kind = Nvm.Media; _ } -> false)

(* Validate the recorded cross-coffer references against KernFS metadata
   (G3 at fsck time).  The path map is kernel-maintained and trusted, so a
   manipulated dentry whose path still names a registered coffer is
   repaired from it; a dentry whose target coffer is gone is dropped. *)
let validate_cross_refs ufs kfs report xrefs =
  let dev = K.device kfs in
  List.iter
    (fun xr ->
      report.cross_refs_checked <- report.cross_refs_checked + 1;
      let ok =
        match K.coffer_stat kfs xr.xr_target_cid with
        | Error _ -> false
        | Ok tinfo ->
            tinfo.Coffer.path = xr.xr_expected_path
            && tinfo.Coffer.root_file = xr.xr_target_inode
      in
      if not ok then begin
        match Ufs.session_of_cid ufs xr.xr_src_cid with
        | Error _ -> ()
        | Ok cs -> (
            let true_target =
              match K.coffer_find kfs xr.xr_expected_path with
              | Error _ -> None
              | Ok cid -> (
                  match K.coffer_stat kfs cid with
                  | Ok tinfo -> Some (cid, tinfo.Coffer.root_file)
                  | Error _ -> None)
            in
            match true_target with
            | Some (cid, root_file) ->
                Ufs.with_coffer ufs cs ~write:true (fun () ->
                    Nvm.Device.write_u64 dev
                      (xr.xr_dentry + Layout.d_coffer)
                      cid;
                    Nvm.Device.write_u64 dev (xr.xr_dentry + Layout.d_inode)
                      root_file;
                    Nvm.Device.persist_range dev
                      (xr.xr_dentry + Layout.d_coffer)
                      16);
                report.cross_refs_repaired <- report.cross_refs_repaired + 1;
                add_finding report
                  (Repaired_cross_ref
                     { coffer = xr.xr_src_cid; path = xr.xr_expected_path })
            | None ->
                Ufs.with_coffer ufs cs ~write:true (fun () ->
                    Dir.clear_dentry dev xr.xr_dentry);
                report.cross_refs_dropped <- report.cross_refs_dropped + 1;
                add_finding report
                  (Dropped_cross_ref
                     { coffer = xr.xr_src_cid; path = xr.xr_expected_path }))
      end)
    xrefs

(* A registered coffer that no surviving cross-coffer dentry reaches from
   the root is an orphan: the residue of a sub-coffer creation whose parent
   dentry never became durable, or of a cross-coffer rename crashed between
   the kernel path-map update and the dentry moves.  The kernel path map is
   the trusted side of G3, so if the coffer's root inode is healthy we
   repair the user-space namespace from it — insert a fresh dentry at the
   registered path.  A coffer whose root had to be reinitialized (nothing
   recoverable inside) is deleted instead, and KernFS reclaims its pages.
   Reachability is a fixpoint so a whole torn subtree cascades. *)
let orphan_coffer_pass ufs kfs report xrefs =
  match K.list_coffers kfs with
  | Error _ -> ()
  | Ok coffers ->
      let dev = K.device kfs in
      let reachable = Hashtbl.create 16 in
      Hashtbl.replace reachable (K.root_coffer kfs) ();
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun xr ->
            if Hashtbl.mem reachable xr.xr_src_cid then
              match K.coffer_find kfs xr.xr_expected_path with
              | Ok cid when not (Hashtbl.mem reachable cid) ->
                  Hashtbl.replace reachable cid ();
                  changed := true
              | Ok _ | Error _ -> ())
          xrefs
      done;
      let reinitialized =
        List.filter_map
          (function Reinitialized_root { coffer; _ } -> Some coffer | _ -> None)
          report.findings
      in
      let delete (c : Coffer.info) =
        let free_before = K.free_pages kfs in
        match K.coffer_delete kfs c.Coffer.id with
        | Ok () ->
            report.orphan_coffers_dropped <- report.orphan_coffers_dropped + 1;
            report.pages_reclaimed <-
              report.pages_reclaimed + (K.free_pages kfs - free_before);
            add_finding report
              (Dropped_orphan_coffer
                 { coffer = c.Coffer.id; path = c.Coffer.path })
        | Error _ -> ()
      in
      let attach_attempt (c : Coffer.info) =
          match Ufs.session_of_cid ufs c.Coffer.id with
          | Error _ -> false
          | Ok cs -> (
              let root = c.Coffer.root_file in
              let healthy =
                (not (List.mem c.Coffer.id reinitialized))
                && Ufs.with_coffer ufs cs ~write:false (fun () ->
                       Inode.valid dev ~ino:root
                       && Inode.kind dev ~ino:root <> None)
              in
              if not healthy then false
              else
                match Ufs.walk_parent ufs c.Coffer.path with
                | Error _ -> false
                | Ok (pcs, dir_ino, _, base) -> (
                    let kind =
                      Ufs.with_coffer ufs cs ~write:false (fun () ->
                          Inode.kind_exn dev ~ino:root)
                    in
                    match
                      Ufs.insert_dentry ufs pcs ~dir_ino ~name:base ~kind
                        ~coffer:c.Coffer.id ~inode:root
                    with
                    | Ok () ->
                        report.orphan_coffers_reattached <-
                          report.orphan_coffers_reattached + 1;
                        add_finding report
                          (Reattached_coffer
                             { coffer = c.Coffer.id; path = c.Coffer.path });
                        true
                    | Error E.EEXIST ->
                        (* A dentry for this name already exists; if it
                           points at this coffer the namespace is already
                           whole (a parent reattached above us). *)
                        Ufs.with_coffer ufs pcs ~write:false (fun () ->
                            match Dir.lookup dev ~ino:dir_ino base with
                            | Some de -> de.Dir.de_coffer = c.Coffer.id
                            | None -> false)
                    | Error _ -> false))
      in
      let reattach (c : Coffer.info) =
        (* As in the scans, a fault while probing the orphan means it is
           not repairable. *)
        let attached = try attach_attempt c with Nvm.Fault _ -> false in
        if not attached then delete c
      in
      coffers
      |> List.filter (fun c -> not (Hashtbl.mem reachable c.Coffer.id))
      (* Shallowest-first, so a reattached parent makes its children's
         parent walks resolve. *)
      |> List.sort (fun a b -> compare a.Coffer.path b.Coffer.path)
      |> List.iter reattach

(* An in-flight cross-coffer file rename (paper §6.4) moves the file's pages
   through a transient coffer registered at "<dst>.zofs-mv"; a crash between
   the split and the final dentry updates leaves that coffer behind.  The
   scratch path records the destination and the pages are already inside the
   transient coffer, so the rename is rolled *forward*: merge into the
   destination directory's coffer and link the destination dentry.  The
   stale source dentry needs no action here — its inode's pages left the
   source coffer at the split, so the ordinary per-coffer scan drops it.
   Runs before the scans so the destination scan sees the merged pages as
   referenced. *)
let mv_suffix = ".zofs-mv"

let migration_pass ufs kfs report =
  match K.list_coffers kfs with
  | Error _ -> ()
  | Ok coffers ->
      let dev = K.device kfs in
      List.iter
        (fun (c : Coffer.info) ->
          if Filename.check_suffix c.Coffer.path mv_suffix then begin
            let finish () =
              let final = Filename.chop_suffix c.Coffer.path mv_suffix in
              match Ufs.session_of_cid ufs c.Coffer.id with
              | Error _ -> false
              | Ok cs -> (
                  let root = c.Coffer.root_file in
                  let kind =
                    Ufs.with_coffer ufs cs ~write:false (fun () ->
                        if Inode.valid dev ~ino:root then
                          Inode.kind dev ~ino:root
                        else None)
                  in
                  match kind with
                  | None -> false
                  | Some kind -> (
                      match Ufs.walk_parent ufs final with
                      | Error _ -> false
                      | Ok (pcs, dir_ino, _, base) -> (
                          (* The rename may have linked the destination
                             name (as a cross-ref to the transient coffer)
                             before the crash. *)
                          let existing =
                            Ufs.with_coffer ufs pcs ~write:false (fun () ->
                                Dir.lookup dev ~ino:dir_ino base)
                          in
                          match
                            K.coffer_merge kfs ~dst:pcs.Ufs.cs_cid
                              ~src:c.Coffer.id
                          with
                          | Error _ -> false
                          | Ok () -> (
                              match existing with
                              | Some de when de.Dir.de_coffer = c.Coffer.id
                                ->
                                  Ufs.with_coffer ufs pcs ~write:true
                                    (fun () ->
                                      match
                                        Dir.retarget dev ~ino:dir_ino base
                                          ~coffer:0 ~inode:root
                                      with
                                      | Ok () ->
                                          (* The crashed rename may have died
                                             between committing this dentry
                                             and clearing its insert
                                             intention; this roll-forward
                                             supersedes the per-coffer scan's
                                             rollback, which would otherwise
                                             invalidate the dentry again. *)
                                          if Intent.pending dev ~ino:dir_ino
                                          then
                                            Intent.clear_durable dev
                                              ~ino:dir_ino;
                                          true
                                      | Error _ -> false)
                              | Some de ->
                                  de.Dir.de_coffer = 0
                                  && de.Dir.de_inode = root
                              | None -> (
                                  match
                                    Ufs.insert_dentry ufs pcs ~dir_ino
                                      ~name:base ~kind ~coffer:0 ~inode:root
                                  with
                                  | Ok () -> true
                                  | Error _ -> false)))))
            in
            let finished = try finish () with Nvm.Fault _ -> false in
            if finished then
              add_finding report
                (Completed_migration
                   { coffer = c.Coffer.id; path = c.Coffer.path })
            else begin
              (* Not repairable (torn beyond the protocol's invariants):
                 drop the scratch coffer rather than leak a ".zofs-mv" name
                 into the namespace. *)
              match K.coffer_delete kfs c.Coffer.id with
              | Ok () ->
                  report.orphan_coffers_dropped <-
                    report.orphan_coffers_dropped + 1;
                  add_finding report
                    (Dropped_orphan_coffer
                       { coffer = c.Coffer.id; path = c.Coffer.path })
              | Error _ -> ()
            end
          end)
        coffers

(* Recover every coffer in the file system (offline: run as root with no
   other process active). *)
let recover_all kfs =
  (match K.fs_mount kfs with Ok () | Error _ -> ());
  let ufs = Ufs.create kfs in
  let report = fresh_report () in
  let xrefs = ref [] in
  migration_pass ufs kfs report;
  (match K.list_coffers kfs with
  | Error _ -> ()
  | Ok coffers ->
      let ordered =
        List.sort (fun a b -> compare a.Coffer.path b.Coffer.path) coffers
      in
      List.iter
        (fun info ->
          (* Quarantined / offline coffers are fenced-off fault domains:
             their media keeps faulting under load, so rescanning them here
             would just re-drop the same structures every run.  Leave them
             alone; a fresh mount resets health and the next fsck (or the
             online repair path) re-assesses them. *)
          match K.coffer_health kfs info.Coffer.id with
          | K.Quarantined | K.Offline -> ()
          | K.Healthy | K.Suspect ->
              ignore (recover_coffer ufs kfs report xrefs info))
        ordered);
  validate_cross_refs ufs kfs report !xrefs;
  orphan_coffer_pass ufs kfs report !xrefs;
  (* Pages owned by a coffer id the path map does not know (a torn
     make_coffer that never registered) are invisible to the per-coffer
     scans above; reclaim them from the allocation table directly. *)
  (match K.reclaim_orphan_runs kfs with
  | Error _ -> ()
  | Ok runs ->
      List.iter
        (fun (owner, start, len) ->
          report.pages_reclaimed <- report.pages_reclaimed + len;
          add_finding report (Freed_orphan_run { owner; start; len }))
        runs);
  (match K.fs_umount kfs with Ok () | Error _ -> ());
  report

(* Scoped online fsck: recover exactly one coffer while the rest of the
   file system keeps serving — this is the dispatcher's repair callback
   after a media fault.  Same scan/reset machinery as the offline pass
   restricted to [cid]; coffer_recover_begin unmaps the coffer from every
   other process for the duration, and the initiator's own stale sessions
   were already invalidated by the dispatcher.  Returns true when the
   coffer came back consistent and readable. *)
let recover_one kfs cid =
  match K.coffer_stat kfs cid with
  | Error _ -> false
  | Ok info ->
      let ufs = Ufs.create kfs in
      let report = fresh_report () in
      let xrefs = ref [] in
      let ok = recover_coffer ufs kfs report xrefs info in
      if ok then validate_cross_refs ufs kfs report !xrefs;
      ok
