(* The per-operation persist batcher (speed campaign, ROADMAP item 3).

   The µFS commit paths used to persist every metadata store on the spot
   with [persist_range] (clwb + sfence).  Most of those fences order
   nothing: within one operation only the *publish points* — the moments
   the persistence checker audits (a dentry-insert publish, an
   inode-commit publish, a lease release) — need everything earlier to be
   durable.  Between publish points, stores only have to be *flushed*
   (clwb), and flushes of the same cache line coalesce: a line that is
   already Flushing persists its latest contents at the next fence, so
   re-flushing it buys nothing (lib/check lints exactly this as
   "redundant-flush", and the device counts it).

   So the batcher exposes two primitives:

     [flush dev addr len]   clwb each line of the range that actually has
                            unflushed stores; lines already in flight (or
                            clean) are skipped.  Never fences.
     [barrier dev]          sfence only if some line is flushed-but-
                            unfenced; otherwise the fence would be a
                            recorded no-op and is elided.

   Both consult the device's own line-state table
   ([Nvm.Device.line_needs_flush] / [flushing_lines]) rather than a
   shadow set kept here.  That is deliberate: a kernel call in the middle
   of a µFS operation (e.g. coffer_enlarge committing its atomic section)
   issues a real fence, and a privately-kept "already flushed" set would
   go stale and skip a clwb that is needed again — silent data loss.  The
   device table is the ground truth a careful library would maintain for
   its own stores, and using it makes every elision *individually* safe:
   a skipped clwb is one the device would have counted redundant, and a
   skipped sfence is one with nothing in flight to order.

   [over_elide] is the negative self-check knob: when set, [barrier]
   drops fences it knows are needed — modeling an over-aggressive
   optimizer — so tests can assert that the persistence checker and the
   crash model checker both catch the resulting missing-fence bug. *)

let over_elide = ref false

(* Elision counters (lib/obs): how much work the batcher saved. *)
let flushes_elided = "pbatch.flushes_elided"
let fences_elided = "pbatch.fences_elided"

let flush dev addr len =
  let first = addr / Nvm.line_size and last = (addr + len - 1) / Nvm.line_size in
  for line = first to last do
    let a = line * Nvm.line_size in
    if Nvm.Device.line_needs_flush dev a then Nvm.Device.clwb dev a
    else Obs.cnt_coffer flushes_elided 1
  done

let barrier dev =
  if Nvm.Device.flushing_lines dev > 0 then begin
    if !over_elide then Obs.cnt "pbatch.fences_overelided" 1
    else Nvm.Device.sfence dev
  end
  else Obs.cnt_coffer fences_elided 1

(* [flush] + [barrier]: a batched [persist_range] for the spots that are
   themselves ordering points. *)
let persist dev addr len =
  flush dev addr len;
  barrier dev
