(* The adaptive two-level hash-table directory (paper §5.1).

   direct[0] of a directory inode points to the first-level page: 512
   pointers to second-level pages, allocated on demand.  Each second-level
   page stores 16 dentries inline in its first half and a 256-bucket hash
   table in its second half; each bucket heads a chain of dentry pages with
   31 dentries each.  New dentries go to the inline area first and spill
   into the chains only when it is full — that is what keeps huge
   directories (webproxy/varmail, Figure 9) fast.

   Consistency: a dentry is written completely and flushed before its valid
   byte is set (and flushed); removal clears the valid byte.  Second-level
   and chain pages are zeroed before their pointers are published. *)

open Layout

type dentry = {
  de_addr : int;  (* byte address of the dentry slot *)
  de_name : string;
  de_kind : int;  (* Layout.kind_* cache for readdir *)
  de_coffer : int;  (* 0 = same coffer *)
  de_inode : int;  (* inode byte address (target coffer root file if cross) *)
}

let read_dentry dev addr =
  let name_len = Nvm.Device.read_u16 dev (addr + d_name_len) in
  if name_len = 0 || name_len > max_name then None
  else begin
    let de_coffer = Nvm.Device.read_u64 dev (addr + d_coffer) in
    let de_inode = Nvm.Device.read_u64 dev (addr + d_inode) in
    (* A cross-coffer target address came out of another protection domain
       and is untrusted until validated against KernFS (guideline G3). *)
    if de_coffer <> 0 then Check.taint_cross dev de_inode;
    Some
      {
        de_addr = addr;
        de_name = Nvm.Device.read_string dev (addr + d_name) name_len;
        de_kind = Nvm.Device.read_u8 dev (addr + d_kind);
        de_coffer;
        de_inode;
      }
  end

let dentry_valid dev addr = Nvm.Device.read_u8 dev (addr + d_valid) = 1

let write_dentry dev addr ~name ~kind ~coffer ~inode =
  Nvm.Device.write_u8 dev (addr + d_valid) 0;
  Nvm.Device.write_u8 dev (addr + d_kind) kind;
  Nvm.Device.write_u16 dev (addr + d_name_len) (String.length name);
  Nvm.Device.write_u32 dev (addr + d_hash) (dir_hash name);
  Nvm.Device.write_u64 dev (addr + d_coffer) coffer;
  Nvm.Device.write_u64 dev (addr + d_inode) inode;
  Nvm.Device.write_string dev (addr + d_name) name;
  (* One coalesced flush of the body, one fence right before the publish
     point — which also makes the caller's intention record (same-line with
     the inode's direct pointers) durable in the same ordering stroke. *)
  Pbatch.flush dev addr dentry_size;
  Pbatch.barrier dev;
  Check.publish dev ~label:"dentry-insert" addr dentry_size;
  Race.publish dev ~label:"dentry-insert" addr dentry_size;
  Nvm.Device.write_u8 dev (addr + d_valid) 1;
  (* The valid byte's flush rides the lease-release fence: if it is lost the
     insert simply never happened (the op was not yet acknowledged). *)
  Pbatch.flush dev addr 1

(* Durable variant, used outside lease-protected operations (recovery's
   dentry drops, which have no release fence to ride). *)
let clear_dentry dev addr =
  Nvm.Device.write_u8 dev (addr + d_valid) 0;
  Nvm.Device.persist_range dev addr 1

(* ---- page navigation ----------------------------------------------------- *)

let l1_page dev ~ino = Inode.read_direct dev ~ino 0
let l1_slot_addr l1 hash = l1 + (l1_index hash * 8)
let l2_page dev l1 hash = Nvm.Device.read_u64 dev (l1_slot_addr l1 hash)
let inline_slot l2 i = l2 + (i * dentry_size)
let bucket_addr l2 hash = l2 + l2_bucket_base + (l2_bucket hash * 8)
let chain_next dev page = Nvm.Device.read_u64 dev page
let chain_slot page i = page + (i * dentry_size) (* i in 1..chain_dentries *)

(* Ensure the directory has its first-level page. *)
let ensure_l1 dev balloc ~ino =
  let l1 = l1_page dev ~ino in
  if l1 <> 0 then Ok l1
  else
    match Balloc.alloc_zeroed balloc with
    | Error e -> Error e
    | Ok page ->
        Inode.write_direct dev ~ino 0 page;
        Ok page

let ensure_l2 dev balloc l1 hash =
  let l2 = l2_page dev l1 hash in
  if l2 <> 0 then Ok l2
  else
    match Balloc.alloc_zeroed balloc with
    | Error e -> Error e
    | Ok page ->
        (* The page is zeroed-and-fenced by alloc_zeroed; the pointer to it
           only has to be durable before the dentry that uses it is visible,
           so its flush rides the insert's pre-publish barrier. *)
        Nvm.Device.write_u64 dev (l1_slot_addr l1 hash) page;
        Pbatch.flush dev (l1_slot_addr l1 hash) 8;
        Ok page

(* ---- lookup -------------------------------------------------------------- *)

let match_at dev addr ~name ~hash =
  dentry_valid dev addr
  && Nvm.Device.read_u32 dev (addr + d_hash) = hash
  && Nvm.Device.read_u16 dev (addr + d_name_len) = String.length name
  && Nvm.Device.read_string dev (addr + d_name) (String.length name) = name

let lookup dev ~ino name =
  let hash = dir_hash name in
  let l1 = l1_page dev ~ino in
  if l1 = 0 then None
  else
    let l2 = l2_page dev l1 hash in
    if l2 = 0 then None
    else
      let rec inline i =
        if i >= l2_inline_dentries then chains (Nvm.Device.read_u64 dev (bucket_addr l2 hash))
        else
          let a = inline_slot l2 i in
          if match_at dev a ~name ~hash then read_dentry dev a else inline (i + 1)
      and chains page =
        if page = 0 then None
        else
          let rec slots i =
            if i > chain_dentries then chains (chain_next dev page)
            else
              let a = chain_slot page i in
              if match_at dev a ~name ~hash then read_dentry dev a
              else slots (i + 1)
          in
          slots 1
      in
      inline 0

(* ---- insert -------------------------------------------------------------- *)

let find_free_inline dev l2 =
  let rec go i =
    if i >= l2_inline_dentries then None
    else if not (dentry_valid dev (inline_slot l2 i)) then Some (inline_slot l2 i)
    else go (i + 1)
  in
  go 0

let find_free_in_chain dev page =
  let rec go i =
    if i > chain_dentries then None
    else if not (dentry_valid dev (chain_slot page i)) then Some (chain_slot page i)
    else go (i + 1)
  in
  go 1

(* Insert assumes the caller holds the directory lease and has checked for
   duplicates. *)
let insert dev balloc ~ino ~name ~kind ~coffer ~inode =
  if not (Treasury.Pathx.valid_name name) then Error Treasury.Errno.EINVAL
  else
    let hash = dir_hash name in
    match ensure_l1 dev balloc ~ino with
    | Error e -> Error e
    | Ok l1 -> (
        match ensure_l2 dev balloc l1 hash with
        | Error e -> Error e
        | Ok l2 -> (
            let slot =
              match find_free_inline dev l2 with
              | Some a -> Ok a
              | None ->
                  (* spill into the bucket chains *)
                  let bucket = bucket_addr l2 hash in
                  let rec hunt page =
                    if page = 0 then None
                    else
                      match find_free_in_chain dev page with
                      | Some a -> Some a
                      | None -> hunt (chain_next dev page)
                  in
                  (match hunt (Nvm.Device.read_u64 dev bucket) with
                  | Some a -> Ok a
                  | None -> (
                      match Balloc.alloc_zeroed balloc with
                      | Error e -> Error e
                      | Ok page ->
                          (* Link the new chain page at the bucket head.  The
                             page's next pointer must be durable BEFORE the
                             bucket points at it (or a crash truncates the
                             old chain), so a real fence separates the two;
                             the bucket store itself rides the insert's
                             pre-publish barrier. *)
                          Nvm.Device.write_u64 dev page
                            (Nvm.Device.read_u64 dev bucket);
                          Pbatch.persist dev page 8;
                          Nvm.Device.write_u64 dev bucket page;
                          Pbatch.flush dev bucket 8;
                          Ok (chain_slot page 1)))
            in
            match slot with
            | Error e -> Error e
            | Ok addr ->
                (* Intention first: if this thread dies before the final
                   clear, the lease stealer rolls the half-inserted dentry
                   back (the op was never acknowledged). *)
                Intent.record dev ~ino Intent.Insert ~arg:addr;
                write_dentry dev addr ~name ~kind ~coffer ~inode;
                Inode.touch_mtime dev ~ino;
                Intent.clear dev ~ino;
                Ok ()))

let remove dev ~ino name =
  match lookup dev ~ino name with
  | None -> Error Treasury.Errno.ENOENT
  | Some de ->
      (* Intention first: a stealer finding this record rolls the removal
         forward (re-clearing the slot is idempotent).  Nothing here needs
         an ordering point of its own — every store (record, valid byte,
         mtime, clear) rides the lease-release fence, in any combination of
         which the directory is consistent — so a remove costs ZERO fences
         beyond the release. *)
      Intent.record dev ~ino Intent.Remove ~arg:de.de_addr;
      Nvm.Device.write_u8 dev (de.de_addr + d_valid) 0;
      Pbatch.flush dev (de.de_addr + d_valid) 1;
      Inode.touch_mtime dev ~ino;
      Intent.clear dev ~ino;
      Ok ()

(* Update an existing dentry's target in place (used by coffer split: the
   entry becomes a cross-coffer reference). *)
let retarget dev ~ino name ~coffer ~inode =
  match lookup dev ~ino name with
  | None -> Error Treasury.Errno.ENOENT
  | Some de ->
      Nvm.Device.write_u64 dev (de.de_addr + d_coffer) coffer;
      Nvm.Device.write_u64 dev (de.de_addr + d_inode) inode;
      Nvm.Device.persist_range dev (de.de_addr + d_coffer) 16;
      ignore ino;
      Ok ()

(* ---- iteration ----------------------------------------------------------- *)

let iter dev ~ino f =
  let l1 = l1_page dev ~ino in
  if l1 <> 0 then
    for l1i = 0 to l1_entries - 1 do
      let l2 = Nvm.Device.read_u64 dev (l1 + (l1i * 8)) in
      if l2 <> 0 then begin
        for i = 0 to l2_inline_dentries - 1 do
          let a = inline_slot l2 i in
          if dentry_valid dev a then
            match read_dentry dev a with Some de -> f de | None -> ()
        done;
        for b = 0 to l2_buckets - 1 do
          let rec chase page =
            if page <> 0 then begin
              for i = 1 to chain_dentries do
                let a = chain_slot page i in
                if dentry_valid dev a then
                  match read_dentry dev a with Some de -> f de | None -> ()
              done;
              chase (chain_next dev page)
            end
          in
          chase (Nvm.Device.read_u64 dev (l2 + l2_bucket_base + (b * 8)))
        done
      end
    done

exception Stop

let is_empty dev ~ino =
  try
    iter dev ~ino (fun _ -> raise Stop);
    true
  with Stop -> false

let count dev ~ino =
  let n = ref 0 in
  iter dev ~ino (fun _ -> incr n);
  !n

(* All pages used by the directory index itself (L1 page, second-level
   pages, chain pages) — for deletion and recovery. *)
let structure_pages dev ~ino =
  let pages = ref [] in
  let l1 = l1_page dev ~ino in
  if l1 <> 0 then begin
    pages := [ l1 ];
    for l1i = 0 to l1_entries - 1 do
      let l2 = Nvm.Device.read_u64 dev (l1 + (l1i * 8)) in
      if l2 <> 0 then begin
        pages := l2 :: !pages;
        for b = 0 to l2_buckets - 1 do
          let rec chase page =
            if page <> 0 then begin
              pages := page :: !pages;
              chase (chain_next dev page)
            end
          in
          chase (Nvm.Device.read_u64 dev (l2 + l2_bucket_base + (b * 8)))
        done
      end
    done
  end;
  !pages
