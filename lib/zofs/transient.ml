(* Bounded retry for transient kernel failures (paper §3.4.2: FSLib absorbs
   recoverable errors instead of surfacing them to the application).

   A coffer_enlarge or coffer_map can fail transiently — ENOMEM under
   allocation pressure, EAGAIN when the kernel wants the caller to back off.
   Those are retried a few times on the shared capped-backoff-with-jitter
   cadence (Treasury.Backoff — the same policy lease acquisition uses, so
   herds disperse instead of re-stampeding the kernel gate in lockstep);
   anything still failing after that is a real error and propagates.
   Permanent errnos (EACCES, ENOSPC, ...) are never retried.

   The loop is deadline-aware: when the request's ambient end-to-end budget
   (Treasury.Deadline) runs out between attempts, it raises [Expired] rather
   than paying further backoff the request can no longer afford.  The check
   sits between kernel calls — a safe-to-abort point; an attempt already in
   flight always completes. *)

let max_attempts = 4
let base_backoff = 2_000 (* ns *)
let cap_backoff = 16_000

let is_transient = function
  | Treasury.Errno.ENOMEM | Treasury.Errno.EAGAIN -> true
  | _ -> false

let retry f =
  let bo =
    Treasury.Backoff.create ~base:base_backoff ~cap:cap_backoff ~salt:0x7A ()
  in
  Treasury.Backoff.retry ~max_attempts ~retryable:is_transient
    ~on_retry:(fun _ ->
      Treasury.Deadline.check ();
      Obs.cnt "retry.transient" 1)
    bo f
