(* Bounded retry for transient kernel failures (paper §3.4.2: FSLib absorbs
   recoverable errors instead of surfacing them to the application).

   A coffer_enlarge or coffer_map can fail transiently — ENOMEM under
   allocation pressure, EAGAIN when the kernel wants the caller to back off.
   Those are retried a few times with exponential backoff; anything still
   failing after that is a real error and propagates.  Permanent errnos
   (EACCES, ENOSPC, ...) are never retried. *)

let max_attempts = 4
let base_backoff = 2_000 (* ns; doubled per attempt *)

let is_transient = function
  | Treasury.Errno.ENOMEM | Treasury.Errno.EAGAIN -> true
  | _ -> false

let rec retry ?(attempt = 0) f =
  match f () with
  | Error e when is_transient e && attempt < max_attempts ->
      Obs.cnt "retry.transient" 1;
      Sim.advance (base_backoff lsl attempt);
      retry ~attempt:(attempt + 1) f
  | r -> r
