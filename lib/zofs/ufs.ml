(* ZoFS: the example µFS built on Treasury coffers (paper §5).

   One [t] per process (it is FSLibs state): it tracks the coffers this
   process has mapped (path → coffer cache, MPK key per coffer), open file
   handles, and implements the µFS interface for the dispatcher.

   Protection guidelines (paper §3.4):
   - G1/G2: every coffer access happens inside [with_coffer], which opens
     exactly one MPK region and closes it afterwards;
   - G3: every cross-coffer dentry is validated — the target coffer's path
     must equal the dentry's path and the reference must point at the target
     coffer's root inode — before the target region is made accessible. *)

module K = Treasury.Kernfs
module E = Treasury.Errno
module Pathx = Treasury.Pathx
module Ft = Treasury.Fs_types
module Ui = Treasury.Ufs_intf
module Coffer = Treasury.Coffer

let ctype = 1
let name = "zofs"

(* Cost of checking one path prefix against the user-space coffer cache
   (string hash + table probe); ZoFS parses paths backwards, so deep paths
   pay this per prefix (paper §6.2). *)
let prefix_check_cost = 45

type variant = { sysempty : bool; kwrite : bool; one_coffer : bool }

let default_variant = { sysempty = false; kwrite = false; one_coffer = false }

type coffer_sess = {
  cs_cid : int;
  mutable cs_path : string;
  cs_pkey : int;
  cs_writable : bool;
  cs_root_file : int;
  cs_custom : int;
  cs_balloc : Balloc.t;
  mutable cs_mode : int;
  mutable cs_uid : int;
  mutable cs_gid : int;
  mutable cs_refs : int;  (* open handles into this coffer *)
}

type handle = { h_ino : int; h_cid : int; h_readable : bool; h_writable : bool }

type t = {
  kfs : K.t;
  dev : Nvm.Device.t;
  mpk : Mpk.t;
  variant : variant;
  sessions : (int, coffer_sess) Hashtbl.t;
  by_path : (string, int) Hashtbl.t;
  handles : (int, handle) Hashtbl.t;
  mutable next_handle : int;
}

let ( let* ) = Result.bind

(* ---- mkfs and attach ----------------------------------------------------- *)

(* Initialize the µFS structures of a coffer KernFS just created: format the
   custom (allocator) page and the root-file inode. *)
let init_coffer_structs dev ~root_file ~custom ~kind ~mode ~uid ~gid =
  Balloc.format dev ~custom;
  Inode.init dev ~ino:root_file ~kind ~mode ~uid ~gid

(* One-time format of the root coffer's internal structure; run as root when
   the file system is created (after Kernfs.mkfs with root_ctype = 1). *)
let mkfs kfs =
  let dev = K.device kfs in
  let mpk = K.mpk kfs in
  let root = K.root_coffer kfs in
  Mpk.with_kernel mpk (fun () ->
      Mpk.with_write_window mpk (fun () ->
          match Coffer.read dev ~id:root with
          | None -> failwith "Zofs.mkfs: no root coffer"
          | Some info ->
              init_coffer_structs dev ~root_file:info.Coffer.root_file
                ~custom:info.Coffer.custom ~kind:Inode.Directory
                ~mode:info.Coffer.mode ~uid:info.Coffer.uid
                ~gid:info.Coffer.gid))

let create ?(variant = default_variant) kfs =
  {
    kfs;
    dev = K.device kfs;
    mpk = K.mpk kfs;
    variant;
    sessions = Hashtbl.create 16;
    by_path = Hashtbl.create 16;
    handles = Hashtbl.create 64;
    next_handle = 1;
  }

(* ---- coffer sessions ------------------------------------------------------ *)

let with_coffer t cs ~write f =
  (* Fault-domain enforcement (one health load, see Kernfs.coffer_health):
     a quarantined coffer still serves reads — its data may be the only
     surviving copy — but refuses mutation; an offline coffer refuses
     everything.  The dispatcher maps the exception to EIO without another
     repair attempt. *)
  (match K.coffer_health t.kfs cs.cs_cid with
  | K.Healthy | K.Suspect -> ()
  | K.Quarantined ->
      if write then raise (Ui.Coffer_unavailable { cid = cs.cs_cid; write })
  | K.Offline -> raise (Ui.Coffer_unavailable { cid = cs.cs_cid; write }));
  Obs.set_op_coffer cs.cs_cid;
  let perm = if write then Mpk.Pk_read_write else Mpk.Pk_read in
  Mpk.with_keys t.mpk [ (cs.cs_pkey, perm) ] f

(* Take [ino]'s lease and, before running [f], roll forward/back any
   intention record a dead previous holder left mid-mutation (the record can
   only be pending here if its writer never reached its clearing store —
   i.e. the lease was stolen from a killed thread).  [balloc] lets a Trunc
   roll-forward return the freed pages to this coffer's allocator.

   The batched commit paths leave their last stores (size/mtime, intention
   clear, dentry valid byte) flushed but unfenced; [Lease.release] is the
   operation's final ordering point and fences them exactly once. *)
let with_inode_lease t ?balloc ~ino f =
  Lease.with_lease t.dev (Inode.lease_addr ~ino) (fun () ->
      let free = Option.map (fun b page -> Balloc.free_page b page) balloc in
      if Intent.repair ?free t.dev ~ino then Obs.cnt "lease.steals_repaired" 1;
      f ())

let forget_session t cs =
  Hashtbl.remove t.sessions cs.cs_cid;
  (match Hashtbl.find_opt t.by_path cs.cs_path with
  | Some cid when cid = cs.cs_cid -> Hashtbl.remove t.by_path cs.cs_path
  | _ -> ())

(* Evict one mapped coffer with no open handles to free an MPK region. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun _ cs acc ->
        match acc with
        | Some _ -> acc
        | None -> if cs.cs_refs = 0 && cs.cs_path <> "/" then Some cs else None)
      t.sessions None
  in
  match victim with
  | Some cs ->
      forget_session t cs;
      ignore (K.coffer_unmap t.kfs cs.cs_cid);
      Obs.cnt "coffer.evictions" 1;
      Obs.cnt "coffer.unmaps" 1;
      true
  | None -> false

let rec map_coffer t cid =
  Obs.set_op_coffer cid;
  Obs.span ~cat:"coffer" ~name:"map" @@ fun () ->
  match Transient.retry (fun () -> K.coffer_map t.kfs cid) with
  | Ok m -> (
      let info =
        Mpk.with_keys t.mpk
          [ (m.K.m_pkey, Mpk.Pk_read) ]
          (fun () -> Coffer.read t.dev ~id:cid)
      in
      match info with
      | Some info ->
          let balloc =
            Mpk.with_keys t.mpk
              [ (m.K.m_pkey, Mpk.Pk_read) ]
              (fun () -> Balloc.attach t.dev ~custom:m.K.m_custom ~cid t.kfs)
          in
          let cs =
            {
              cs_cid = cid;
              cs_path = info.Coffer.path;
              cs_pkey = m.K.m_pkey;
              cs_writable = m.K.m_writable;
              cs_root_file = m.K.m_root_file;
              cs_custom = m.K.m_custom;
              cs_balloc = balloc;
              cs_mode = info.Coffer.mode;
              cs_uid = info.Coffer.uid;
              cs_gid = info.Coffer.gid;
              cs_refs = 0;
            }
          in
          Hashtbl.replace t.sessions cid cs;
          Hashtbl.replace t.by_path info.Coffer.path cid;
          Obs.cnt "coffer.maps" 1;
          (* The root-file address now comes from the kernel's mapping, not
             from whatever dentry pointed here: validated (G3). *)
          Check.validate_cross t.dev cs.cs_root_file;
          Ok cs
      | None ->
          ignore (K.coffer_unmap t.kfs cid);
          Obs.cnt "coffer.unmaps" 1;
          Error E.EIO)
  | Error E.EMFILE ->
      if evict_one t then map_coffer t cid else Error E.EMFILE
  | Error e -> Error e

let session_of_cid t cid =
  match Hashtbl.find_opt t.sessions cid with
  | Some cs ->
      (* Session cache hit: the kernel-backed session vouches for the root
         file, exactly like a fresh map_coffer would (G3). *)
      Obs.set_op_coffer cid;
      Check.validate_cross t.dev cs.cs_root_file;
      Ok cs
  | None -> map_coffer t cid

(* Deepest coffer covering [path]: ZoFS parses the path backwards against
   its user-space cache of mapped coffers, falling back to one kernel lookup
   on a cold cache (paper §6.2). *)
let rec anchor t path =
  let rec go p =
    Sim.advance prefix_check_cost;
    match Hashtbl.find_opt t.by_path p with
    | Some cid when Hashtbl.mem t.sessions cid ->
        Obs.set_op_coffer cid;
        Ok (Hashtbl.find t.sessions cid)
    | _ -> if p = "/" then cold_anchor t path else go (Pathx.dirname p)
  in
  go path

and cold_anchor t path =
  match K.coffer_locate t.kfs path with
  | Error e -> Error e
  | Ok (_prefix, cid) -> map_coffer t cid

(* ---- path walk ------------------------------------------------------------ *)

type resolved = {
  r_cs : coffer_sess;
  r_ino : int;
  r_kind : Inode.kind;
  r_path : string;
}

(* Expand a symlink found at [link_path] with remaining components [rest]. *)
let expand_symlink ~link_path ~target rest =
  let base =
    if Pathx.is_absolute target then Pathx.normalize target
    else Pathx.concat (Pathx.dirname link_path) target
  in
  Pathx.normalize (String.concat "/" (base :: rest))

let walk t path ~follow_last : (resolved, Ui.fail) result =
  let path = Pathx.normalize path in
  match anchor t path with
  | Error e -> Error (Ui.Errno e)
  | Ok cs0 ->
      let rel = Pathx.strip_prefix ~prefix:cs0.cs_path path in
      let comps = Pathx.components rel in
      let rec step cs ino cur_path comps =
        (* Check the current inode, then look up the next component, all
           inside this coffer's MPK window (G1/G2). *)
        match comps with
        | [] ->
            let kind =
              Race.intentional_racy t.dev ~site:"dir.lockfree-walk"
                ~justification:
                  "path walk reads inode kind/valid bytes without the inode \
                   lease; a concurrent unlink can tear the view, but walk \
                   re-validates under the lease before any mutation and a \
                   stale answer only yields ENOENT/EIO to the caller"
              @@ fun () ->
              with_coffer t cs ~write:false (fun () ->
                  if Inode.valid t.dev ~ino then Inode.kind t.dev ~ino else None)
            in
            (match kind with
            | None -> Error (Ui.Errno E.EIO) (* corrupted inode *)
            | Some Inode.Symlink when follow_last ->
                let target =
                  with_coffer t cs ~write:false (fun () ->
                      Inode.symlink_target t.dev ~ino)
                in
                Error (Ui.Symlink (expand_symlink ~link_path:cur_path ~target []))
            | Some k -> Ok { r_cs = cs; r_ino = ino; r_kind = k; r_path = cur_path })
        | name :: rest -> (
            let lookup =
              Race.intentional_racy t.dev ~site:"dir.lockfree-walk"
                ~justification:
                  "component lookup scans dentry pages without the directory \
                   lease (the ZoFS lock-free walk); inserts publish the \
                   dentry body before flipping the valid byte, so a torn \
                   observation degrades to ENOENT, never a wild pointer"
              @@ fun () ->
              with_coffer t cs ~write:false (fun () ->
                  if not (Inode.valid t.dev ~ino) then `Corrupted
                  else
                    match Inode.kind t.dev ~ino with
                    | Some Inode.Directory -> `Dentry (Dir.lookup t.dev ~ino name)
                    | Some Inode.Symlink ->
                        `Symlink (Inode.symlink_target t.dev ~ino)
                    | Some Inode.Regular -> `NotDir
                    | None -> `Corrupted)
            in
            match lookup with
            | `Corrupted -> Error (Ui.Errno E.EIO)
            | `NotDir -> Error (Ui.Errno E.ENOTDIR)
            | `Symlink target ->
                Error
                  (Ui.Symlink
                     (expand_symlink ~link_path:cur_path ~target (name :: rest)))
            | `Dentry None -> Error (Ui.Errno E.ENOENT)
            | `Dentry (Some de) ->
                let child_path = Pathx.concat cur_path name in
                if de.Dir.de_coffer = 0 then
                  step cs de.Dir.de_inode child_path rest
                else (
                  (* Cross-coffer reference: validate before switching
                     regions (G3). *)
                  match session_of_cid t de.Dir.de_coffer with
                  | Error E.EACCES -> Error (Ui.Errno E.EACCES)
                  | Error _ -> Error (Ui.Errno E.EIO)
                  | Ok tcs ->
                      if
                        tcs.cs_path <> child_path
                        || de.Dir.de_inode <> tcs.cs_root_file
                      then Error (Ui.Errno E.EIO) (* manipulated metadata *)
                      else step tcs tcs.cs_root_file child_path rest))
      in
      step cs0 cs0.cs_root_file cs0.cs_path comps

(* Resolve the parent directory of [path] and return (session, dir inode,
   dir path, basename). *)
let walk_parent t path : (coffer_sess * int * string * string, Ui.fail) result =
  let path = Pathx.normalize path in
  if path = "/" then Error (Ui.Errno E.EINVAL)
  else
    let dir = Pathx.dirname path and base = Pathx.basename path in
    let* r = walk t dir ~follow_last:true in
    if r.r_kind <> Inode.Directory then Error (Ui.Errno E.ENOTDIR)
    else Ok (r.r_cs, r.r_ino, r.r_path, base)

(* ---- creation -------------------------------------------------------------- *)

let cred () = Ft.cred_of_proc (Sim.self_proc ())

let same_perm_as_coffer cs ~mode ~uid ~gid =
  Ft.same_coffer_perm ~mode1:mode ~uid1:uid ~gid1:gid ~mode2:cs.cs_mode
    ~uid2:cs.cs_uid ~gid2:cs.cs_gid

(* Create a new coffer for a file whose permission differs from its parent's
   coffer, and initialize its µFS structures. *)
let create_sub_coffer t ~path ~kind ~mode ~uid ~gid =
  let* info = K.coffer_new t.kfs ~path ~ctype ~mode ~uid ~gid in
  (* Map first with the raw kernel mapping and initialize the µFS structures
     (custom page, root inode) before attaching the allocator. *)
  let* m = Transient.retry (fun () -> K.coffer_map t.kfs info.Coffer.id) in
  Mpk.with_keys t.mpk
    [ (m.K.m_pkey, Mpk.Pk_read_write) ]
    (fun () ->
      init_coffer_structs t.dev ~root_file:m.K.m_root_file ~custom:m.K.m_custom
        ~kind ~mode ~uid ~gid);
  map_coffer t info.Coffer.id

(* Allocate and initialize an inode in [cs]'s coffer (same permission).
   [Inode.init] writes every field a reader may consult, so the page does
   not need a full scrub first. *)
let new_inode_same_coffer t cs ~kind ~mode ~uid ~gid =
  with_coffer t cs ~write:true (fun () ->
      let* page = Balloc.alloc_page cs.cs_balloc in
      Inode.init t.dev ~ino:page ~kind ~mode ~uid ~gid;
      Ok page)

(* Insert a dentry under the parent-directory lease, re-checking for a
   concurrent duplicate. *)
let insert_dentry t cs ~dir_ino ~name ~kind ~coffer ~inode =
  with_coffer t cs ~write:true (fun () ->
      with_inode_lease t ~balloc:cs.cs_balloc ~ino:dir_ino (fun () ->
          match Dir.lookup t.dev ~ino:dir_ino name with
          | Some _ -> Error E.EEXIST
          | None ->
              Dir.insert t.dev cs.cs_balloc ~ino:dir_ino ~name
                ~kind:(Inode.kind_code kind) ~coffer ~inode))

(* Shared create path for regular files, directories and symlinks. *)
let create_entry t ~path ~kind ~mode ?symlink_target () =
  let* pcs, dir_ino, dir_path, base = walk_parent t path in
  if not pcs.cs_writable then Error (Ui.Errno E.EACCES)
  else
    let c = cred () in
    let uid = c.Ft.uid and gid = c.Ft.gid in
    let full_path = Pathx.concat dir_path base in
    let inherit_perm =
      (* Symlinks inherit the directory's permission so that linking never
         forces a coffer split. *)
      kind = Inode.Symlink || t.variant.one_coffer
      || same_perm_as_coffer pcs ~mode ~uid ~gid
    in
    if inherit_perm then begin
      let imode, iuid, igid =
        if kind = Inode.Symlink then (0o777, pcs.cs_uid, pcs.cs_gid)
        else (mode, uid, gid)
      in
      let* ino =
        match new_inode_same_coffer t pcs ~kind ~mode:imode ~uid:iuid ~gid:igid with
        | Ok i -> Ok i
        | Error e -> Error (Ui.Errno e)
      in
      (match symlink_target with
      | Some target ->
          with_coffer t pcs ~write:true (fun () ->
              Inode.set_symlink_target t.dev ~ino target)
      | None -> ());
      match insert_dentry t pcs ~dir_ino ~name:base ~kind ~coffer:0 ~inode:ino with
      | Ok () -> Ok (pcs, ino)
      | Error e ->
          (* Roll the inode back into the free list. *)
          with_coffer t pcs ~write:true (fun () ->
              Balloc.free_page pcs.cs_balloc ino);
          Error (Ui.Errno e)
    end
    else begin
      (* Different permission: the file gets its own coffer (paper §3.1). *)
      match create_sub_coffer t ~path:full_path ~kind ~mode ~uid ~gid with
      | Error e -> Error (Ui.Errno e)
      | Ok ncs -> (
          match
            insert_dentry t pcs ~dir_ino ~name:base ~kind ~coffer:ncs.cs_cid
              ~inode:ncs.cs_root_file
          with
          | Ok () -> Ok (ncs, ncs.cs_root_file)
          | Error e ->
              forget_session t ncs;
              ignore (K.coffer_delete t.kfs ncs.cs_cid);
              Error (Ui.Errno e))
    end

(* ---- handles -------------------------------------------------------------- *)

let alloc_handle t cs ~ino ~readable ~writable =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  Hashtbl.replace t.handles h
    { h_ino = ino; h_cid = cs.cs_cid; h_readable = readable; h_writable = writable };
  cs.cs_refs <- cs.cs_refs + 1;
  h

let handle t h =
  match Hashtbl.find_opt t.handles h with
  | Some hd -> Ok hd
  | None -> Error E.EBADF

let handle_session t hd = session_of_cid t hd.h_cid

(* ---- µFS interface: path operations ---------------------------------------- *)

let openf t path flags mode : int Ui.outcome =
  let wants = Ft.wants_of_flags flags in
  let readable = List.mem `R wants || wants = [] in
  let writable = List.mem `W wants in
  match walk t path ~follow_last:true with
  | Ok r ->
      if Ft.flag_mem Ft.O_CREAT flags && Ft.flag_mem Ft.O_EXCL flags then
        Ui.errno E.EEXIST
      else if r.r_kind = Inode.Directory && writable then Ui.errno E.EISDIR
      else if writable && not r.r_cs.cs_writable then Ui.errno E.EACCES
      else begin
        if Ft.flag_mem Ft.O_TRUNC flags && writable && r.r_kind = Inode.Regular
        then
          with_coffer t r.r_cs ~write:true (fun () ->
              with_inode_lease t ~balloc:r.r_cs.cs_balloc ~ino:r.r_ino (fun () ->
                  ignore (File.truncate t.dev r.r_cs.cs_balloc ~ino:r.r_ino 0)));
        Ok (alloc_handle t r.r_cs ~ino:r.r_ino ~readable ~writable)
      end
  | Error (Ui.Errno E.ENOENT) when Ft.flag_mem Ft.O_CREAT flags -> (
      match create_entry t ~path ~kind:Inode.Regular ~mode () with
      | Ok (cs, ino) -> Ok (alloc_handle t cs ~ino ~readable ~writable)
      | Error f -> Error f)
  | Error f -> Error f

let mkdir t path mode : unit Ui.outcome =
  match walk t path ~follow_last:true with
  | Ok _ -> Ui.errno E.EEXIST
  | Error (Ui.Errno E.ENOENT) -> (
      match create_entry t ~path ~kind:Inode.Directory ~mode () with
      | Ok _ -> Ok ()
      | Error f -> Error f)
  | Error f -> Error f

let symlink t ~target ~link : unit Ui.outcome =
  match walk t link ~follow_last:false with
  | Ok _ -> Ui.errno E.EEXIST
  | Error (Ui.Errno E.ENOENT) -> (
      match
        create_entry t ~path:link ~kind:Inode.Symlink ~mode:0o777
          ~symlink_target:target ()
      with
      | Ok _ -> Ok ()
      | Error f -> Error f)
  | Error f -> Error f

let readlink t path : string Ui.outcome =
  let* r = walk t path ~follow_last:false in
  if r.r_kind <> Inode.Symlink then Ui.errno E.EINVAL
  else
    Ok
      (Race.intentional_racy t.dev ~site:"inode.lockfree-readlink"
         ~justification:
           "symlink targets are written once at symlink() time before the \
            dentry publish and never mutated in place; the only race is \
            against unlink, which frees the whole inode page"
         (fun () ->
           with_coffer t r.r_cs ~write:false (fun () ->
               Inode.symlink_target t.dev ~ino:r.r_ino)))

let stat_justification =
  "stat reads size/times/nlink without the inode lease (POSIX allows a \
   point-in-time snapshot); writers flush these fields before their \
   lease-release fence, so a torn read is at worst one update stale"

let stat t path : Ft.stat Ui.outcome =
  let* r = walk t path ~follow_last:true in
  Ok
    (Race.intentional_racy t.dev ~site:"inode.lockfree-stat"
       ~justification:stat_justification (fun () ->
         with_coffer t r.r_cs ~write:false (fun () ->
             Inode.stat t.dev ~ino:r.r_ino)))

let lstat t path : Ft.stat Ui.outcome =
  let* r = walk t path ~follow_last:false in
  Ok
    (Race.intentional_racy t.dev ~site:"inode.lockfree-stat"
       ~justification:stat_justification (fun () ->
         with_coffer t r.r_cs ~write:false (fun () ->
             Inode.stat t.dev ~ino:r.r_ino)))

let readdir t path : Ft.dirent list Ui.outcome =
  let* r = walk t path ~follow_last:true in
  if r.r_kind <> Inode.Directory then Ui.errno E.ENOTDIR
  else begin
    let acc = ref [] in
    Race.intentional_racy t.dev ~site:"dir.lockfree-readdir"
      ~justification:
        "readdir iterates dentry pages without the directory lease; \
         concurrent create/unlink may be missed or seen twice, which POSIX \
         permits for entries modified during the scan"
    @@ fun () ->
    with_coffer t r.r_cs ~write:false (fun () ->
        Dir.iter t.dev ~ino:r.r_ino (fun de ->
            let kind =
              match Inode.kind_of_code de.Dir.de_kind with
              | Some k -> Inode.fs_kind k
              | None -> Ft.Regular
            in
            acc :=
              {
                Ft.d_name = de.Dir.de_name;
                d_kind = kind;
                d_ino = de.Dir.de_inode / Layout.page_size;
              }
              :: !acc));
    Ok (List.rev !acc)
  end

(* ---- unlink / rmdir --------------------------------------------------------- *)

let find_dentry t pcs ~dir_ino name =
  match
    Race.intentional_racy t.dev ~site:"dir.lockfree-lookup"
      ~justification:
        "pre-flight dentry probe before taking the directory lease; the \
         result is advisory — every caller re-checks or re-does the lookup \
         under the lease before mutating"
      (fun () ->
        with_coffer t pcs ~write:false (fun () ->
            Dir.lookup t.dev ~ino:dir_ino name))
  with
  | Some de -> Ok de
  | None -> Error E.ENOENT

let remove_dentry_locked t pcs ~dir_ino name =
  with_coffer t pcs ~write:true (fun () ->
      with_inode_lease t ~balloc:pcs.cs_balloc ~ino:dir_ino (fun () ->
          Dir.remove t.dev ~ino:dir_ino name))

let unlink t path : unit Ui.outcome =
  let* pcs, dir_ino, _, base = walk_parent t path in
  if not pcs.cs_writable then Ui.errno E.EACCES
  else
    match find_dentry t pcs ~dir_ino base with
    | Error e -> Error (Ui.Errno e)
    | Ok de ->
        if de.Dir.de_kind = Layout.kind_directory then Ui.errno E.EISDIR
        else if de.Dir.de_coffer <> 0 then begin
          (* The file is its own coffer: KernFS reclaims all its pages. *)
          (match Hashtbl.find_opt t.sessions de.Dir.de_coffer with
          | Some cs -> forget_session t cs
          | None -> ());
          match K.coffer_delete t.kfs de.Dir.de_coffer with
          | Error e -> Error (Ui.Errno e)
          | Ok () -> (
              match remove_dentry_locked t pcs ~dir_ino base with
              | Ok () -> Ok ()
              | Error e -> Error (Ui.Errno e))
        end
        else begin
          match remove_dentry_locked t pcs ~dir_ino base with
          | Error e -> Error (Ui.Errno e)
          | Ok () ->
              with_coffer t pcs ~write:true (fun () ->
                  let ino = de.Dir.de_inode in
                  if de.Dir.de_kind = Layout.kind_regular then
                    File.free_all t.dev pcs.cs_balloc ~ino;
                  Balloc.free_page pcs.cs_balloc ino);
              Ok ()
        end

let rmdir t path : unit Ui.outcome =
  let* pcs, dir_ino, _, base = walk_parent t path in
  if not pcs.cs_writable then Ui.errno E.EACCES
  else
    match find_dentry t pcs ~dir_ino base with
    | Error e -> Error (Ui.Errno e)
    | Ok de ->
        if de.Dir.de_kind <> Layout.kind_directory then Ui.errno E.ENOTDIR
        else if de.Dir.de_coffer <> 0 then begin
          match session_of_cid t de.Dir.de_coffer with
          | Error e -> Error (Ui.Errno e)
          | Ok tcs ->
              let empty =
                Race.intentional_racy t.dev ~site:"dir.lockfree-is-empty"
                  ~justification:
                    "advisory emptiness probe before the delete path; a \
                     racing create loses either way — the dentry remove runs \
                     under the directory lease and a stale answer only turns \
                     into ENOTEMPTY or a benign retry"
                  (fun () ->
                    with_coffer t tcs ~write:false (fun () ->
                        Dir.is_empty t.dev ~ino:tcs.cs_root_file))
              in
              if not empty then Ui.errno E.ENOTEMPTY
              else begin
                forget_session t tcs;
                match K.coffer_delete t.kfs de.Dir.de_coffer with
                | Error e -> Error (Ui.Errno e)
                | Ok () -> (
                    match remove_dentry_locked t pcs ~dir_ino base with
                    | Ok () -> Ok ()
                    | Error e -> Error (Ui.Errno e))
              end
        end
        else begin
          let ino = de.Dir.de_inode in
          let empty =
            Race.intentional_racy t.dev ~site:"dir.lockfree-is-empty"
              ~justification:
                "advisory emptiness probe before the delete path; a racing \
                 create loses either way — the dentry remove runs under the \
                 directory lease and a stale answer only turns into \
                 ENOTEMPTY or a benign retry"
              (fun () ->
                with_coffer t pcs ~write:false (fun () ->
                    Dir.is_empty t.dev ~ino))
          in
          if not empty then Ui.errno E.ENOTEMPTY
          else
            match remove_dentry_locked t pcs ~dir_ino base with
            | Error e -> Error (Ui.Errno e)
            | Ok () ->
                with_coffer t pcs ~write:true (fun () ->
                    List.iter
                      (fun p -> Balloc.free_page pcs.cs_balloc p)
                      (Dir.structure_pages t.dev ~ino);
                    Balloc.free_page pcs.cs_balloc ino);
                Ok ()
        end

(* ---- rename ----------------------------------------------------------------- *)

(* Collect every same-coffer page reachable from [ino] (the subtree), for
   cross-coffer moves and for chmod-driven splits. *)
let rec subtree_pages t dev ~ino acc =
  let acc = ino :: acc in
  match Inode.kind_exn dev ~ino with
  | Inode.Regular -> File.data_pages dev ~ino @ acc
  | Inode.Symlink -> acc
  | Inode.Directory ->
      let acc = ref (Dir.structure_pages dev ~ino @ acc) in
      Dir.iter dev ~ino (fun de ->
          if de.Dir.de_coffer = 0 then
            acc := subtree_pages t dev ~ino:de.Dir.de_inode !acc);
      !acc

(* Turn a page list (byte addresses) into page-number runs. *)
let runs_of_pages pages =
  let sorted = List.sort_uniq compare (List.map (fun a -> a / Layout.page_size) pages) in
  let rec go acc = function
    | [] -> List.rev acc
    | p :: rest -> (
        match acc with
        | (start, len) :: tl when start + len = p -> go ((start, len + 1) :: tl) rest
        | _ -> go ((p, 1) :: acc) rest)
  in
  go [] sorted

let rename t src dst : unit Ui.outcome =
  if src = dst then Ok ()
  else if Pathx.is_prefix ~prefix:src dst then Ui.errno E.EINVAL
  else
    let* spcs, sdir, _sdirpath, sbase = walk_parent t src in
    let* dpcs, ddir, ddirpath, dbase = walk_parent t dst in
    if not (spcs.cs_writable && dpcs.cs_writable) then Ui.errno E.EACCES
    else
      match find_dentry t spcs ~dir_ino:sdir sbase with
      | Error e -> Error (Ui.Errno e)
      | Ok de -> (
          (* Displace an existing destination (files only). *)
          let* () =
            match find_dentry t dpcs ~dir_ino:ddir dbase with
            | Error E.ENOENT -> Ok ()
            | Error e -> Error (Ui.Errno e)
            | Ok dde ->
                if dde.Dir.de_kind = Layout.kind_directory then
                  Ui.errno E.EISDIR
                else unlink t (Pathx.concat ddirpath dbase)
          in
          let dst_path = Pathx.concat ddirpath dbase in
          if de.Dir.de_coffer <> 0 then begin
            (* The moved file is a coffer root: rename the coffer (and all
               descendant coffer paths) in the kernel, then move the
               dentry. *)
            match K.coffer_rename t.kfs de.Dir.de_coffer ~new_path:dst_path with
            | Error e -> Error (Ui.Errno e)
            | Ok () ->
                (* Fix the user-space path caches for every session under
                   the old prefix. *)
                let old_prefix = Pathx.normalize src in
                Hashtbl.iter
                  (fun _ cs ->
                    if Pathx.is_prefix ~prefix:old_prefix cs.cs_path then begin
                      Hashtbl.remove t.by_path cs.cs_path;
                      cs.cs_path <-
                        Pathx.replace_prefix ~old_prefix ~new_prefix:dst_path
                          cs.cs_path;
                      Hashtbl.replace t.by_path cs.cs_path cs.cs_cid
                    end)
                  t.sessions;
                let* () =
                  match
                    insert_dentry t dpcs ~dir_ino:ddir ~name:dbase
                      ~kind:
                        (match Inode.kind_of_code de.Dir.de_kind with
                        | Some k -> k
                        | None -> Inode.Regular)
                      ~coffer:de.Dir.de_coffer ~inode:de.Dir.de_inode
                  with
                  | Ok () -> Ok ()
                  | Error e -> Error (Ui.Errno e)
                in
                (match remove_dentry_locked t spcs ~dir_ino:sdir sbase with
                | Ok () -> Ok ()
                | Error e -> Error (Ui.Errno e))
          end
          else if spcs.cs_cid = dpcs.cs_cid then begin
            (* Cheap case: both directories live in the same coffer — move
               the dentry. *)
            let kind =
              match Inode.kind_of_code de.Dir.de_kind with
              | Some k -> k
              | None -> Inode.Regular
            in
            let* () =
              match
                insert_dentry t dpcs ~dir_ino:ddir ~name:dbase ~kind
                  ~coffer:0 ~inode:de.Dir.de_inode
              with
              | Ok () -> Ok ()
              | Error e -> Error (Ui.Errno e)
            in
            match remove_dentry_locked t spcs ~dir_ino:sdir sbase with
            | Ok () -> Ok ()
            | Error e -> Error (Ui.Errno e)
          end
          else begin
            (* The worst case (paper §6.4): moving a plain file into a
               directory owned by a different coffer.  The pages must change
               coffer: split them out of the source coffer and merge them
               into the destination's. *)
            if de.Dir.de_kind = Layout.kind_directory then Ui.errno E.EXDEV
            else begin
              let ino = de.Dir.de_inode in
              let pages =
                with_coffer t spcs ~write:false (fun () ->
                    if de.Dir.de_kind = Layout.kind_regular then
                      ino :: File.data_pages t.dev ~ino
                    else [ ino ])
              in
              (* Stage 1: split the file's pages into a transient coffer
                 with the destination coffer's permission. *)
              let tmp_custom =
                with_coffer t spcs ~write:true (fun () ->
                    Balloc.alloc_page spcs.cs_balloc)
              in
              match tmp_custom with
              | Error e -> Error (Ui.Errno e)
              | Ok custom -> (
                  with_coffer t spcs ~write:true (fun () ->
                      Balloc.format t.dev ~custom);
                  let tmp_path = dst_path ^ ".zofs-mv" in
                  match
                    K.coffer_split t.kfs ~src:spcs.cs_cid ~new_path:tmp_path
                      ~ctype ~mode:dpcs.cs_mode ~uid:dpcs.cs_uid
                      ~gid:dpcs.cs_gid
                      ~runs:(runs_of_pages (custom :: pages))
                      ~root_file:ino ~custom
                  with
                  | Error e -> Error (Ui.Errno e)
                  | Ok info -> (
                      (* Stage 2: link the destination name *first*, as a
                         cross-coffer reference to the transient coffer, and
                         only then unlink the source and merge.  At every
                         crash point at least one durable name reaches the
                         file: before the link the transient coffer's
                         registered scratch path is the breadcrumb; after
                         the merge the destination dentry is, and the only
                         remaining fixup is retargeting its coffer field —
                         which recovery can redo from page ownership. *)
                      let kind =
                        match Inode.kind_of_code de.Dir.de_kind with
                        | Some k -> k
                        | None -> Inode.Regular
                      in
                      let* () =
                        match
                          insert_dentry t dpcs ~dir_ino:ddir ~name:dbase
                            ~kind ~coffer:info.Coffer.id ~inode:ino
                        with
                        | Ok () -> Ok ()
                        | Error e -> Error (Ui.Errno e)
                      in
                      let* () =
                        match
                          remove_dentry_locked t spcs ~dir_ino:sdir sbase
                        with
                        | Ok () -> Ok ()
                        | Error e -> Error (Ui.Errno e)
                      in
                      (* Stage 3: merge the transient coffer into the
                         destination coffer and retarget the dentry to the
                         now-local inode. *)
                      match
                        K.coffer_merge t.kfs ~dst:dpcs.cs_cid
                          ~src:info.Coffer.id
                      with
                      | Error e -> Error (Ui.Errno e)
                      | Ok () ->
                          with_coffer t dpcs ~write:true (fun () ->
                              (match
                                 Dir.retarget t.dev ~ino:ddir dbase ~coffer:0
                                   ~inode:ino
                               with
                              | Ok () | Error _ -> ());
                              (* The custom page of the transient coffer is
                                 now an ordinary page of dst's coffer. *)
                              Balloc.free_page dpcs.cs_balloc custom);
                          Ok ()))
            end
          end)

(* ---- chmod / chown ----------------------------------------------------------- *)

let apply_perm_change t path ~new_mode ~new_uid ~new_gid : unit Ui.outcome =
  let* r = walk t path ~follow_last:true in
  let cs = r.r_cs in
  let cur_uid, cur_gid =
    Race.intentional_racy t.dev ~site:"inode.lockfree-perm-read"
      ~justification:
        "chmod/chown reads the current owner/mode without the inode lease \
         to fill in unchanged fields; a concurrent perm change is a \
         last-writer-wins race POSIX already exposes, and rw-bit changes \
         are serialized by the kernel coffer_chmod path"
      (fun () ->
        with_coffer t cs ~write:false (fun () ->
            (Inode.uid t.dev ~ino:r.r_ino, Inode.gid t.dev ~ino:r.r_ino)))
  in
  let mode = match new_mode with Some m -> m | None ->
    Race.intentional_racy t.dev ~site:"inode.lockfree-perm-read"
      ~justification:
        "chmod/chown reads the current owner/mode without the inode lease \
         to fill in unchanged fields; a concurrent perm change is a \
         last-writer-wins race POSIX already exposes, and rw-bit changes \
         are serialized by the kernel coffer_chmod path"
      (fun () ->
        with_coffer t cs ~write:false (fun () -> Inode.mode t.dev ~ino:r.r_ino))
  in
  let uid = Option.value ~default:cur_uid new_uid in
  let gid = Option.value ~default:cur_gid new_gid in
  let c = cred () in
  if c.Ft.uid <> 0 && c.Ft.uid <> cur_uid then Ui.errno E.EPERM
  else if t.variant.one_coffer then begin
    (* ZoFS-1coffer: permissions live only in the inode; everything is
       handled in user space (paper §6.4). *)
    if not cs.cs_writable then Ui.errno E.EACCES
    else begin
      with_coffer t cs ~write:true (fun () ->
          Inode.set_mode t.dev ~ino:r.r_ino mode;
          Inode.set_owner t.dev ~ino:r.r_ino ~uid ~gid);
      Ok ()
    end
  end
  else if same_perm_as_coffer cs ~mode ~uid ~gid then begin
    (* Only non-rw bits changed: a pure user-space inode update. *)
    with_coffer t cs ~write:true (fun () ->
        Inode.set_mode t.dev ~ino:r.r_ino mode;
        Inode.set_owner t.dev ~ino:r.r_ino ~uid ~gid);
    Ok ()
  end
  else if r.r_ino = cs.cs_root_file then begin
    (* The file is a coffer root: change the coffer's permission in the
       kernel. *)
    match K.coffer_chmod t.kfs cs.cs_cid ~mode ~uid ~gid with
    | Error e -> Error (Ui.Errno e)
    | Ok () -> (
        (* The kernel unmapped the coffer from everyone; remap. *)
        forget_session t cs;
        let finish_inode () =
          match map_coffer t cs.cs_cid with
          | Ok ncs ->
              with_coffer t ncs ~write:true (fun () ->
                  Inode.set_mode t.dev ~ino:r.r_ino mode;
                  Inode.set_owner t.dev ~ino:r.r_ino ~uid ~gid);
              Ok (Some ncs)
          | Error _ ->
              (* We may no longer have access under the new permission; the
                 change itself succeeded. *)
              Ok None
        in
        match finish_inode () with
        | Error e -> Error (Ui.Errno e)
        | Ok None -> Ok ()
        | Ok (Some ncs) ->
            (* If the new permission matches the parent directory's coffer,
               the split is no longer needed: merge back (coffer_merge,
               paper §3.3) and turn the dentry into a same-coffer entry. *)
            if r.r_path = "/" then Ok ()
            else (
              match walk_parent t r.r_path with
              | Error _ -> Ok ()
              | Ok (pcs, dir_ino, _, base) ->
                  if
                    pcs.cs_cid <> ncs.cs_cid
                    && same_perm_as_coffer pcs ~mode ~uid ~gid
                  then begin
                    let custom = ncs.cs_custom in
                    forget_session t ncs;
                    match K.coffer_merge t.kfs ~dst:pcs.cs_cid ~src:ncs.cs_cid with
                    | Error _ -> Ok () (* split state remains; still correct *)
                    | Ok () ->
                        let retargeted =
                          with_coffer t pcs ~write:true (fun () ->
                              with_inode_lease t ~balloc:pcs.cs_balloc
                                ~ino:dir_ino (fun () ->
                                  Dir.retarget t.dev ~ino:dir_ino base ~coffer:0
                                    ~inode:r.r_ino))
                        in
                        (match retargeted with
                        | Ok () ->
                            (* the old custom page is now an ordinary page of
                               the parent coffer *)
                            with_coffer t pcs ~write:true (fun () ->
                                Balloc.free_page pcs.cs_balloc
                                  (custom / Layout.page_size * Layout.page_size));
                            Ok ()
                        | Error e -> Error (Ui.Errno e))
                  end
                  else Ok ()))
  end
  else begin
    (* The expensive path (paper §6.4, Table 9): split the file's pages into
       a brand-new coffer with the new permission. *)
    let* pcs, dir_ino, _, base = walk_parent t path in
    let custom_r =
      with_coffer t cs ~write:true (fun () -> Balloc.alloc_page cs.cs_balloc)
    in
    match custom_r with
    | Error e -> Error (Ui.Errno e)
    | Ok custom -> (
        with_coffer t cs ~write:true (fun () -> Balloc.format t.dev ~custom);
        let pages =
          Race.intentional_racy t.dev ~site:"inode.lockfree-subtree-scan"
            ~justification:
              "coffer-split page census walks the subtree without leases; \
               the kernel's coffer_split re-validates the run list against \
               its own page ownership map, so a concurrent mutation can \
               only fail the split, never corrupt ownership"
            (fun () ->
              with_coffer t cs ~write:false (fun () ->
                  subtree_pages t t.dev ~ino:r.r_ino []))
        in
        match
          K.coffer_split t.kfs ~src:cs.cs_cid ~new_path:r.r_path ~ctype ~mode
            ~uid ~gid
            ~runs:(runs_of_pages (custom :: pages))
            ~root_file:r.r_ino ~custom
        with
        | Error e -> Error (Ui.Errno e)
        | Ok info -> (
            (* Point the parent dentry at the new coffer. *)
            let retargeted =
              with_coffer t pcs ~write:true (fun () ->
                  with_inode_lease t ~balloc:pcs.cs_balloc ~ino:dir_ino
                    (fun () ->
                      Dir.retarget t.dev ~ino:dir_ino base
                        ~coffer:info.Coffer.id ~inode:r.r_ino))
            in
            match retargeted with
            | Error e -> Error (Ui.Errno e)
            | Ok () -> (
                match map_coffer t info.Coffer.id with
                | Ok ncs ->
                    with_coffer t ncs ~write:true (fun () ->
                        Inode.set_mode t.dev ~ino:r.r_ino mode;
                        Inode.set_owner t.dev ~ino:r.r_ino ~uid ~gid);
                    Ok ()
                | Error _ -> Ok ())))
  end

let chmod t path mode = apply_perm_change t path ~new_mode:(Some mode) ~new_uid:None ~new_gid:None
let chown t path uid gid =
  apply_perm_change t path ~new_mode:None ~new_uid:(Some uid) ~new_gid:(Some gid)

(* ---- handle operations -------------------------------------------------------- *)

let close t h =
  let* hd = handle t h in
  Hashtbl.remove t.handles h;
  (match Hashtbl.find_opt t.sessions hd.h_cid with
  | Some cs -> cs.cs_refs <- cs.cs_refs - 1
  | None -> ());
  Ok ()

let read t h ~off buf boff len =
  let* hd = handle t h in
  if not hd.h_readable then Error E.EBADF
  else
    let* cs = handle_session t hd in
    Race.intentional_racy t.dev ~site:"file.lockfree-read"
      ~justification:
        "read() takes no lease (the ZoFS disjoint-access fast path); \
         writers flush data pages and size before their lease-release \
         fence, so a racing read sees either the old or new bytes of each \
         word — torn reads across an in-flight write are the documented \
         POSIX-relaxation the paper accepts for lock-free reads"
      (fun () ->
        with_coffer t cs ~write:false (fun () ->
            File.read t.dev ~ino:hd.h_ino ~off buf boff len))

let write t h ~off data =
  let* hd = handle t h in
  if not hd.h_writable then Error E.EBADF
  else
    let* cs = handle_session t hd in
    if not cs.cs_writable then Error E.EACCES
    else begin
      (* Figure 8 variants: ZoFS-sysempty pays an empty system call per
         write; ZoFS-kwrite runs the write body in kernel context. *)
      if t.variant.sysempty then Treasury.Gate.empty_syscall (K.gate t.kfs);
      let body () =
        with_coffer t cs ~write:true (fun () ->
            with_inode_lease t ~balloc:cs.cs_balloc ~ino:hd.h_ino (fun () ->
                let real_off =
                  match off with
                  | `At o -> o
                  | `Append -> Inode.size t.dev ~ino:hd.h_ino
                in
                match File.write t.dev cs.cs_balloc ~ino:hd.h_ino ~off:real_off data with
                | Error e -> Error e
                | Ok n -> Ok (n, real_off + n)))
      in
      if t.variant.kwrite then
        Treasury.Gate.syscall (K.gate t.kfs) (fun () ->
            (* kernel implementation: argument validation + copy_from_user *)
            Sim.advance 300;
            body ())
      else body ()
    end

let fsync t h =
  (* ZoFS is synchronous: all updates are durable when the call returns. *)
  let* _ = handle t h in
  Sim.advance 20;
  Ok ()

let fstat t h =
  let* hd = handle t h in
  let* cs = handle_session t hd in
  Ok
    (Race.intentional_racy t.dev ~site:"inode.lockfree-stat"
       ~justification:stat_justification (fun () ->
         with_coffer t cs ~write:false (fun () ->
             Inode.stat t.dev ~ino:hd.h_ino)))

let ftruncate t h len =
  let* hd = handle t h in
  if not hd.h_writable then Error E.EBADF
  else
    let* cs = handle_session t hd in
    with_coffer t cs ~write:true (fun () ->
        with_inode_lease t ~balloc:cs.cs_balloc ~ino:hd.h_ino (fun () ->
            File.truncate t.dev cs.cs_balloc ~ino:hd.h_ino len))

(* Drop cached session state for [cid] (dispatcher callback after an online
   repair rewrote the coffer's structures: the cached balloc / root-file
   addresses may be stale, and the kernel mapping was torn down by the
   recovery protocol anyway).  Open handles into the coffer keep working —
   their next operation remaps it through [session_of_cid]. *)
let invalidate_coffer t cid =
  match Hashtbl.find_opt t.sessions cid with
  | Some cs ->
      forget_session t cs;
      ignore (K.coffer_unmap t.kfs cid);
      Obs.cnt "coffer.unmaps" 1
  | None -> ()
