(* The leased per-thread NVM page allocator (paper §5.2, Figure 6).

   Allocator state lives in the coffer's custom page: a global free list
   (head + count, protected by a lease) and a pool of leased per-thread
   free-list slots.  Free pages are chained through their own first u64.

   A thread allocates from "its" slot — claimed by CAS on the slot's
   owner+lease word — without any cross-thread synchronization; when the slot
   runs dry it refills from the global list, and when that is empty too it
   asks KernFS for more pages with coffer_enlarge (the kernel call whose
   contention flattens Figure 7(d)/(g)).  If a thread dies, its slot's lease
   expires and the slot (with its pages) is reused by someone else. *)

(* Both knobs are exposed for the ablation benches: [enlarge_batch] trades
   kernel calls against space slack; [force_global] disables the per-thread
   lists so every allocation takes the coffer-global lease (the paper's
   motivation for Figure 6). *)
let enlarge_batch = ref 16
let force_global = ref false

(* Append-heavy workloads drain a fixed-size batch at a constant rate, so the
   kernel-crossing staircase of Figure 7(d) has a step every [enlarge_batch]
   pages.  Each time a thread's slot runs dry again it doubles its next
   request, up to [enlarge_cap] — growth-phase crossings become logarithmic
   while a thread that stops allocating keeps at most cap-1 slack pages.  A
   partial grant (the kernel under allocation pressure) resets the thread to
   the base batch. *)
let enlarge_cap = ref 256

type t = {
  dev : Nvm.Device.t;
  custom : int;  (* byte address of the custom page *)
  cid : int;
  kfs : Treasury.Kernfs.t;
  my_slot : (int, int) Hashtbl.t;  (* tid -> claimed slot index *)
  next_enlarge : (int, int) Hashtbl.t;  (* tid -> next request size *)
}

let slot_addr t i = t.custom + Layout.c_slots + (i * Layout.slot_size)

(* Format a fresh custom page (at coffer creation / after recovery). *)
let format dev ~custom =
  Nvm.Device.write_u32 dev (custom + Layout.c_magic) Layout.custom_magic;
  Nvm.Device.write_u64 dev (custom + Layout.c_global_head) 0;
  Nvm.Device.write_u64 dev (custom + Layout.c_global_count) 0;
  Nvm.Device.write_u64 dev (custom + Layout.c_global_lease) 0;
  for i = 0 to Layout.n_slots - 1 do
    let a = custom + Layout.c_slots + (i * Layout.slot_size) in
    Nvm.Device.write_u64 dev (a + Layout.s_owner) 0;
    Nvm.Device.write_u64 dev (a + Layout.s_head) 0;
    Nvm.Device.write_u64 dev (a + Layout.s_count) 0
  done;
  Nvm.Device.persist_range dev custom Layout.page_size;
  (* The global lease guards head+count, but releasing it is not a publish
     point: free-list updates are clwb'd without a per-op fence (below). *)
  Check.register_lease dev ~publish:false
    ~lease:(custom + Layout.c_global_lease)
    ~addr:(custom + Layout.c_global_head) ~len:16

let attach dev ~custom ~cid kfs =
  if Nvm.Device.read_u32 dev (custom + Layout.c_magic) <> Layout.custom_magic
  then
    raise
      (Treasury.Ufs_intf.Zofs_corrupt
         (Printf.sprintf "coffer %d: bad custom page magic at 0x%x" cid custom));
  {
    dev;
    custom;
    cid;
    kfs;
    my_slot = Hashtbl.create 8;
    next_enlarge = Hashtbl.create 8;
  }

let create dev ~custom ~cid kfs =
  format dev ~custom;
  attach dev ~custom ~cid kfs

(* ---- per-thread slot management ---------------------------------------- *)

(* Claim a slot whose lease is free or expired.  The paper pre-allocates
   "sufficient" slots; with 63 slots per coffer this never fails in our
   workloads, but we fall back to stealing the most-expired slot. *)
let claim_slot t =
  let me = Lease.owner_code () in
  let tnow = Sim.now () in
  let rec try_slot i =
    if i >= Layout.n_slots then None
    else
      let a = slot_addr t i in
      let v = Nvm.Device.read_u64 t.dev (a + Layout.s_owner) in
      if v = 0 || Lease.expiry_of v <= tnow then begin
        let desired = Lease.pack ~expiry:(tnow + Lease.default_duration) ~code:me in
        if Nvm.Device.cas_u64 t.dev (a + Layout.s_owner) ~expected:v ~desired
        then begin
          (* Taking over a slot whose previous owner let the lease expire is
             a steal: no release handoff ordered its list updates before
             ours. *)
          if v <> 0 then
            Race.on_lease_steal t.dev ~victim_tid:(Lease.code_of v - 2);
          Some i
        end
        else try_slot (i + 1)
      end
      else try_slot (i + 1)
  in
  try_slot 0

let rec my_slot t =
  let tid = Sim.self_tid () in
  match Hashtbl.find_opt t.my_slot tid with
  | Some i ->
      let a = slot_addr t i in
      let v = Nvm.Device.read_u64 t.dev (a + Layout.s_owner) in
      if Lease.code_of v = Lease.owner_code () then begin
        (* Renew if the lease is past half-life. *)
        if Lease.expiry_of v - Sim.now () < Lease.default_duration / 2 then
          ignore
            (Nvm.Device.cas_u64 t.dev (a + Layout.s_owner) ~expected:v
               ~desired:
                 (Lease.pack
                    ~expiry:(Sim.now () + Lease.default_duration)
                    ~code:(Lease.owner_code ())));
        Some i
      end
      else begin
        (* Lease stolen (we must have stalled): forget and re-claim. *)
        Hashtbl.remove t.my_slot tid;
        my_slot t
      end
  | None -> (
      match claim_slot t with
      | Some i ->
          Hashtbl.replace t.my_slot tid i;
          Some i
      | None -> None)

(* Re-validate — and renew to a full duration — ownership of [slot] after
   a potentially blocking wait (the global-lease queue, the kernel gate
   inside coffer_enlarge).  Under heavy cross-process contention the wait
   can outlive the slot lease, and the slot then belongs to a stealer that
   is doing its own list surgery on it: a stale owner touching the list
   would tear it into wild pointers.  A failed renewal CAS means a steal
   raced us just now — also not ours. *)
let own_slot t slot =
  let a = slot_addr t slot in
  let v = Nvm.Device.read_u64 t.dev (a + Layout.s_owner) in
  Lease.code_of v = Lease.owner_code ()
  && (Lease.expiry_of v - Sim.now () >= Lease.default_duration / 2
     || Nvm.Device.cas_u64 t.dev (a + Layout.s_owner) ~expected:v
          ~desired:
            (Lease.pack
               ~expiry:(Sim.now () + Lease.default_duration)
               ~code:(Lease.owner_code ())))

(* ---- free-list plumbing ------------------------------------------------- *)

let read_next t page_addr = Nvm.Device.read_u64 t.dev page_addr

(* Free-list updates are flushed (clwb) but not fenced per operation: a torn
   free list after a crash is rebuilt by recovery, which resets the
   allocator anyway; the fence piggybacks on the enclosing operation's
   commit fence. *)
let push t ~head_addr ~count_addr page_addr =
  Nvm.Device.write_u64 t.dev page_addr (Nvm.Device.read_u64 t.dev head_addr);
  Nvm.Device.clwb t.dev page_addr;
  Nvm.Device.write_u64 t.dev head_addr page_addr;
  Nvm.Device.write_u64 t.dev count_addr
    (Nvm.Device.read_u64 t.dev count_addr + 1);
  Nvm.Device.clwb t.dev head_addr

let pop t ~head_addr ~count_addr =
  let head = Nvm.Device.read_u64 t.dev head_addr in
  if head = 0 then None
  else begin
    Nvm.Device.write_u64 t.dev head_addr (read_next t head);
    Nvm.Device.write_u64 t.dev count_addr
      (Nvm.Device.read_u64 t.dev count_addr - 1);
    Nvm.Device.clwb t.dev head_addr;
    Some head
  end

(* Move up to [n] pages from the global list into a thread slot (global
   lease held).  The caller just sat in the global-lease queue, so the
   slot may have been stolen meanwhile: refuse to touch it if so — the
   caller retries and re-claims. *)
let refill_from_global t slot n =
  if not (own_slot t slot) then 0
  else
  let a = slot_addr t slot in
  (* Slot-list words are guarded by slot ownership (the CAS-claimed owner
     word), not by a lease the detector can see — declare the ownership as
     a lockset entry for the duration of the list surgery. *)
  Race.locked t.dev ~addr:(a + Layout.s_owner) @@ fun () ->
  let moved = ref 0 in
  let continue_ = ref true in
  while !continue_ && !moved < n do
    match
      pop t
        ~head_addr:(t.custom + Layout.c_global_head)
        ~count_addr:(t.custom + Layout.c_global_count)
    with
    | Some page ->
        push t ~head_addr:(a + Layout.s_head) ~count_addr:(a + Layout.s_count)
          page;
        incr moved
    | None -> continue_ := false
  done;
  !moved

(* Ask KernFS for more pages and chain them into the slot.  Requests follow
   the per-thread doubling policy; the kernel may grant fewer pages than
   asked (a mid-batch transient fault or allocation pressure), which resets
   the thread's growth — and still counts as success, since the grant is
   nonempty. *)
let enlarge_into_slot t slot =
  let tid = Sim.self_tid () in
  let want =
    match Hashtbl.find_opt t.next_enlarge tid with
    | Some v -> v
    | None -> !enlarge_batch
  in
  match
    Transient.retry (fun () ->
        Treasury.Kernfs.coffer_enlarge t.kfs t.cid ~n:want)
  with
  | Error e -> Error e
  | Ok runs ->
      let granted = List.fold_left (fun acc (_, len) -> acc + len) 0 runs in
      Hashtbl.replace t.next_enlarge tid
        (if granted >= want then min (want * 2) (max !enlarge_cap !enlarge_batch)
         else !enlarge_batch);
      (if own_slot t slot then
         let a = slot_addr t slot in
         Race.locked t.dev ~addr:(a + Layout.s_owner) (fun () ->
             List.iter
               (fun (start, len) ->
                 for p = start to start + len - 1 do
                   push t ~head_addr:(a + Layout.s_head)
                     ~count_addr:(a + Layout.s_count)
                     (p * Layout.page_size)
                 done)
               runs)
       else begin
         (* The kernel-gate wait outlived the slot lease and a stealer owns
            the slot now: park the grant on the coffer-global list instead
            of scribbling on the stealer's surgery; the retrying caller
            (re-claiming a slot) refills from there. *)
         Obs.cnt "balloc.slot_lost_enlarges" 1;
         Lease.with_lease t.dev (t.custom + Layout.c_global_lease) (fun () ->
             List.iter
               (fun (start, len) ->
                 for p = start to start + len - 1 do
                   push t
                     ~head_addr:(t.custom + Layout.c_global_head)
                     ~count_addr:(t.custom + Layout.c_global_count)
                     (p * Layout.page_size)
                 done)
               runs)
       end);
      if granted = 0 then Error Treasury.Errno.ENOSPC else Ok ()

(* ---- public allocation API ---------------------------------------------- *)

(* Ablation path: every allocation goes through the coffer-global free list
   under its lease — the contended design Figure 6 avoids. *)
let rec alloc_page_global t =
  let r =
    Lease.with_lease t.dev (t.custom + Layout.c_global_lease) (fun () ->
        pop t
          ~head_addr:(t.custom + Layout.c_global_head)
          ~count_addr:(t.custom + Layout.c_global_count))
  in
  match r with
  | Some page ->
      Race.on_recycle t.dev page Layout.page_size;
      Ok page
  | None -> (
      match
        Transient.retry (fun () ->
            Treasury.Kernfs.coffer_enlarge t.kfs t.cid ~n:!enlarge_batch)
      with
      | Error e -> Error e
      | Ok runs ->
          Lease.with_lease t.dev (t.custom + Layout.c_global_lease) (fun () ->
              List.iter
                (fun (start, len) ->
                  for p = start to start + len - 1 do
                    push t
                      ~head_addr:(t.custom + Layout.c_global_head)
                      ~count_addr:(t.custom + Layout.c_global_count)
                      (p * Layout.page_size)
                  done)
                runs);
          alloc_page_global t)

let rec alloc_page t =
  if !force_global then alloc_page_global t
  else
    match my_slot t with
    | None -> Error Treasury.Errno.EAGAIN
    | Some slot -> (
        let a = slot_addr t slot in
        match
          Race.locked t.dev ~addr:(a + Layout.s_owner) (fun () ->
              pop t ~head_addr:(a + Layout.s_head)
                ~count_addr:(a + Layout.s_count))
        with
        | Some page ->
            (* The page leaves the allocator: its free-list life is over
               and its next structure starts with a clean access history. *)
            Race.on_recycle t.dev page Layout.page_size;
            Ok page
        | None ->
            (* Refill: first from the coffer-global list, then from KernFS.
               The global count is peeked without the lease first — in the
               steady growth state the global list stays empty, and taking
               (and fencing, at release) a coffer-shared lease on every
               refill would put a cross-thread contention point back on the
               disjoint-file fast path.  The unlocked read is advisory
               either way: a stale zero just goes to the kernel for fresh
               pages, a stale nonzero finds the list empty under the lease
               and falls through. *)
            let got =
              if
                Race.intentional_racy t.dev ~site:"balloc.global-count-peek"
                  ~justification:
                    "advisory peek: the count is written under the global \
                     lease, but a stale read is self-correcting — a stale \
                     zero goes to the kernel for fresh pages, a stale \
                     nonzero finds the list empty under the lease and falls \
                     through; taking the lease here would put a cross-thread \
                     fence back on the disjoint-file fast path"
                  (fun () ->
                    Nvm.Device.read_u64 t.dev (t.custom + Layout.c_global_count))
                = 0
              then 0
              else
                Lease.with_lease t.dev (t.custom + Layout.c_global_lease)
                  (fun () -> refill_from_global t slot !enlarge_batch)
            in
            if got > 0 then alloc_page t
            else (
              match enlarge_into_slot t slot with
              | Ok () -> alloc_page t
              | Error e -> Error e))

(* Allocate and zero (fresh structure pages must not leak old content, and
   recycled pages carry stale bytes).  Zeroing uses non-temporal stores: one
   bandwidth-priced streaming memset. *)
let alloc_zeroed t =
  match alloc_page t with
  | Error e -> Error e
  | Ok page ->
      Nvm.Device.nt_fill t.dev page Layout.page_size '\000';
      Nvm.Device.sfence t.dev;
      Ok page

let free_page t page =
  (* Whatever structure lived here is gone; its lease (if any) no longer
     guards the page, and the free-list chaining below writes into it. *)
  Check.on_free t.dev page Layout.page_size;
  Race.on_recycle t.dev page Layout.page_size;
  if !force_global then
    Lease.with_lease t.dev (t.custom + Layout.c_global_lease) (fun () ->
        push t
          ~head_addr:(t.custom + Layout.c_global_head)
          ~count_addr:(t.custom + Layout.c_global_count)
          page)
  else
  match my_slot t with
  | Some slot ->
      let a = slot_addr t slot in
      Race.locked t.dev ~addr:(a + Layout.s_owner) (fun () ->
          push t ~head_addr:(a + Layout.s_head) ~count_addr:(a + Layout.s_count)
            page)
  | None ->
      (* No slot available: hand it to the global list. *)
      Lease.with_lease t.dev (t.custom + Layout.c_global_lease) (fun () ->
          push t
            ~head_addr:(t.custom + Layout.c_global_head)
            ~count_addr:(t.custom + Layout.c_global_count)
            page)

(* Pages sitting on free lists (for tests and for recovery accounting). *)
let free_list_pages t =
  let acc = ref [] in
  let rec chase addr =
    if addr <> 0 then begin
      acc := addr :: !acc;
      chase (read_next t addr)
    end
  in
  chase (Nvm.Device.read_u64 t.dev (t.custom + Layout.c_global_head));
  for i = 0 to Layout.n_slots - 1 do
    chase (Nvm.Device.read_u64 t.dev (slot_addr t i + Layout.s_head))
  done;
  !acc
