(* Intention records for online lease-steal repair.

   A thread that dies mid-mutation leaves its lease to expire and its update
   half-done; the next acquirer (the "stealer") must make the structure
   consistent before using it.  Every µFS mutation protected by an inode
   lease therefore records an intention in the inode page — ONE u64 at
   [Layout.i_intent] packing the tag in the top byte and the argument in
   the low 56 bits, so a single store publishes tag and argument together
   and no crash point can pair a fresh tag with a stale argument — before
   touching the structure, and clears it as its last persist before
   releasing the lease:

     Insert  arg = dentry slot address   repair rolls the insert back
                                         (invalidate the slot)
     Remove  arg = dentry slot address   repair rolls the removal forward
                                         (invalidate the slot)
     Size    arg = previous file size    repair rolls the size back
     Trunc   arg = target (new) size     repair rolls the truncate FORWARD
                                         (re-running the shrink to [arg])

   Both dentry repairs converge on "slot invalid" because a half-written
   insert must not become visible and a half-done removal must finish; the
   size rollback pairs with the write path's write-data-then-publish-size
   order.  Trunc is the one roll-forward record: rolling a truncate back
   would resurrect pointers to freed pages, so the record is made durable
   *before* the first destructive store and repair completes the shrink
   instead (idempotent: already-zeroed pointers are skipped, so a page is
   never both referenced and freed).  All repairs are idempotent, so a
   stealer that is itself killed mid-repair leaves a state the next stealer
   repairs identically.

   Persistence: [record] and [clear] only *flush* the word (Pbatch); the
   record rides the operation's first ordering point and the clear rides
   the lease-release fence, which is exactly late enough — a lost clear
   only re-runs an idempotent repair.  The Trunc caller adds its own
   barrier after [record] (roll-forward records must be durable before the
   mutation's destructive stores are).  Repair itself persists eagerly
   ([clear_durable]): it also runs from offline recovery where no
   lease-release fence follows.

   Offline recovery clears any stale intention it finds during inode scans
   (applying the same repair), so a post-crash mount never leaves a record
   that would make a later online acquirer roll back blessed state. *)

open Layout

type kind = Insert | Remove | Size | Trunc

let tag_of = function Insert -> 1 | Remove -> 2 | Size -> 3 | Trunc -> 4

let kind_of_tag = function
  | 1 -> Some Insert
  | 2 -> Some Remove
  | 3 -> Some Size
  | 4 -> Some Trunc
  | _ -> None

(* Device addresses and file sizes both fit 56 bits with room to spare. *)
let arg_mask = (1 lsl 56) - 1

let record dev ~ino kind ~arg =
  assert (arg land arg_mask = arg);
  Nvm.Device.write_u64 dev (ino + i_intent) ((tag_of kind lsl 56) lor arg);
  Pbatch.flush dev (ino + i_intent) 8

let clear dev ~ino =
  Nvm.Device.write_u64 dev (ino + i_intent) 0;
  Pbatch.flush dev (ino + i_intent) 8

let clear_durable dev ~ino =
  Nvm.Device.write_u64 dev (ino + i_intent) 0;
  Nvm.Device.persist_range dev (ino + i_intent) 8

let pending dev ~ino = Nvm.Device.read_u64 dev (ino + i_intent) <> 0

(* Dir.clear_dentry's primitive, inlined to keep Intent below Dir in the
   module graph (Dir records intents; Intent must not call back into Dir). *)
let invalidate_slot dev slot =
  Nvm.Device.write_u8 dev (slot + d_valid) 0;
  Nvm.Device.persist_range dev (slot + d_valid) 1

(* The Trunc roll-forward is file-layout surgery (block-pointer walks), which
   lives in File — above this module.  File installs its repair here at
   load time; the [free] callback returns pages to the caller's allocator
   when one is at hand (online steal), and is [None] offline, where leaked
   pages are reclaimed by fsck's reachability rebuild anyway. *)
let trunc_repair :
    (Nvm.Device.t -> free:(int -> unit) option -> ino:int -> int -> unit) ref =
  ref (fun _ ~free:_ ~ino:_ _ ->
      failwith "Intent: truncate repair not installed (File not linked?)")

let set_trunc_repair f = trunc_repair := f

(* Apply and clear a pending intention on [ino].  Called by the new holder
   right after acquiring the inode lease (and by offline recovery during
   inode scans).  Returns [true] when a repair was applied. *)
let repair ?free dev ~ino =
  let word = Nvm.Device.read_u64 dev (ino + i_intent) in
  if word = 0 then false
  else begin
    let tag = word lsr 56 in
    let arg = word land arg_mask in
    (match kind_of_tag tag with
    | Some Insert | Some Remove ->
        (* Bounds-sanity only: a record is written before the mutation, so
           the slot always lies in a structure page the directory owned. *)
        if arg > 0 && arg + dentry_size <= Nvm.Device.size dev then
          invalidate_slot dev arg
    | Some Size ->
        if Nvm.Device.read_u64 dev (ino + i_size) <> arg then begin
          Nvm.Device.write_u64 dev (ino + i_size) arg;
          Nvm.Device.persist_range dev (ino + i_size) 8
        end
    | Some Trunc -> !trunc_repair dev ~free ~ino arg
    | None -> () (* unknown tag: just clear it *));
    clear_durable dev ~ino;
    Obs.cnt "intent.repairs" 1;
    true
  end
