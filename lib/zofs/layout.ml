(* On-NVM layout constants for ZoFS structures (paper §5, Figure 5).

   All structures are 4 KB pages (ZoFS "only supports 4KB-sized allocation
   for simplicity").  Byte addresses are device-absolute. *)

let page_size = Nvm.page_size

(* ---- inode page -------------------------------------------------------- *)

let inode_magic = 0x5A494E4F (* "ZINO" *)

let kind_regular = 1
let kind_directory = 2
let kind_symlink = 3

let i_magic = 0
let i_kind = 4
let i_mode = 8
let i_uid = 12
let i_gid = 16
let i_nlink = 20
let i_size = 24
let i_atime = 32
let i_mtime = 40
let i_ctime = 48
let i_lease = 56
(* Intention record for online lease-steal repair (bytes 64..79, previously
   unused between i_lease and i_direct): one u64 at [i_intent] packing the
   operation tag (top byte) and argument (low 56 bits) — a single store, so
   no crash point can publish a tag with a stale argument (see Intent).
   Zero means "no mutation in flight"; bytes 72..79 stay reserved. *)
let i_intent = 64
let i_direct = 80 (* 32 × u64 block pointers *)
let n_direct = 32
let i_indirect = i_direct + (n_direct * 8) (* 336 *)
let i_double_indirect = i_indirect + 8 (* 344 *)

(* Symlink targets are stored inline in the inode page ("an inode in ZoFS
   consumes a 4KB page, thus there is sufficient space to store data of
   special files"). *)
let i_symlink_len = 512
let i_symlink_target = 514
let max_symlink_target = page_size - i_symlink_target

let ptrs_per_page = page_size / 8 (* 512 *)
let max_blocks = n_direct + ptrs_per_page + (ptrs_per_page * ptrs_per_page)

(* ---- directory structure ------------------------------------------------ *)

(* A directory inode's direct[0] points to the first-level hash-table page:
   512 pointers to second-level pages.  A second-level page holds 16 inline
   dentries in its first half and a 256-bucket second-level hash table in its
   second half; each bucket chains dentry pages of 31 dentries each. *)

let dentry_size = 128
let l1_entries = 512
let l2_inline_dentries = 16 (* 2048 / 128 *)
let l2_buckets = 256
let l2_bucket_base = 2048
let chain_dentries = 31 (* slot 0 of a chain page holds the next pointer *)

(* Dentry field offsets. *)
let d_valid = 0
let d_kind = 1
let d_name_len = 2
let d_hash = 4
let d_coffer = 8
let d_inode = 16
let d_name = 24
let max_name = Treasury.Pathx.max_name_length

(* ---- custom page (per-coffer allocator state) --------------------------- *)

let custom_magic = 0x5A435354 (* "ZCST" *)

let c_magic = 0
let c_global_head = 8
let c_global_count = 16
let c_global_lease = 24
let c_slots = 64
let slot_size = 64
let n_slots = (page_size - c_slots) / slot_size (* 63 *)

(* Per-thread free-list slot fields (paper Figure 6: TID, lease, head). *)
let s_owner = 0 (* combined owner+lease word, CAS-claimed *)
let s_head = 8
let s_count = 16

let dir_hash name =
  (* FNV-1a, the same family the path map uses. *)
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xFFFFFFFF)
    name;
  !h

let l1_index hash = hash land (l1_entries - 1)
let l2_bucket hash = (hash lsr 9) land (l2_buckets - 1)
