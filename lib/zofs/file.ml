(* Regular-file data management: ext4-style direct / indirect /
   double-indirect 4 KB block mapping (paper §5.1).

   Data is written with non-temporal stores (the paper confirms ZoFS uses
   non-temporal writes for all experiments); metadata publication follows
   the order: data → block pointer → size, each flushed, so a crash never
   exposes a size that covers unwritten data. *)

open Layout

let block_of_off off = off / page_size
let blocks_for len = (len + page_size - 1) / page_size

(* Address of the pointer word for block [b] of the file; allocates
   intermediate indirect pages when an allocator is supplied. *)
let pointer_addr dev balloc ~ino b =
  let alloc_indirect () =
    match balloc with
    | None -> Ok 0
    | Some a -> ( match Balloc.alloc_zeroed a with Error e -> Error e | Ok p -> Ok p)
  in
  if b < n_direct then Ok (Some (Inode.direct_addr ~ino b))
  else if b < n_direct + ptrs_per_page then begin
    let ind = Inode.indirect dev ~ino in
    if ind <> 0 then Ok (Some (ind + ((b - n_direct) * 8)))
    else
      match alloc_indirect () with
      | Error e -> Error e
      | Ok 0 -> Ok None
      | Ok page ->
          Inode.set_indirect dev ~ino page;
          Ok (Some (page + ((b - n_direct) * 8)))
  end
  else if b < max_blocks then begin
    let idx = b - n_direct - ptrs_per_page in
    let outer = idx / ptrs_per_page and inner = idx mod ptrs_per_page in
    match
      let dind = Inode.double_indirect dev ~ino in
      if dind <> 0 then Ok dind
      else
        match alloc_indirect () with
        | Error e -> Error e
        | Ok 0 -> Ok 0
        | Ok page ->
            Inode.set_double_indirect dev ~ino page;
            Ok page
    with
    | Error e -> Error e
    | Ok 0 -> Ok None
    | Ok dind -> (
        let outer_addr = dind + (outer * 8) in
        match
          let mid = Nvm.Device.read_u64 dev outer_addr in
          if mid <> 0 then Ok mid
          else
            match alloc_indirect () with
            | Error e -> Error e
            | Ok 0 -> Ok 0
            | Ok page ->
                Nvm.Device.write_u64 dev outer_addr page;
                Pbatch.flush dev outer_addr 8;
                Ok page
        with
        | Error e -> Error e
        | Ok 0 -> Ok None
        | Ok mid -> Ok (Some (mid + (inner * 8))))
  end
  else Error Treasury.Errno.EFBIG

let block_addr dev ~ino b =
  match pointer_addr dev None ~ino b with
  | Ok (Some ptr) -> Nvm.Device.read_u64 dev ptr
  | Ok None -> 0
  | Error _ -> 0

(* [ensure_block] returns the block's byte address, allocating on demand.
   [zero] skips the scrub when the caller immediately overwrites the whole
   block — the common case for 4 KB appends, and the difference between a
   one-write and a two-write data path. *)
let ensure_block dev balloc ~ino ~zero b =
  match pointer_addr dev (Some balloc) ~ino b with
  | Error e -> Error e
  | Ok None -> Error Treasury.Errno.EIO
  | Ok (Some ptr) -> (
      let existing = Nvm.Device.read_u64 dev ptr in
      if existing <> 0 then Ok existing
      else
        match Balloc.alloc_page balloc with
        | Error e -> Error e
        | Ok page ->
            if zero then Nvm.Device.nt_fill dev page page_size '\000';
            Nvm.Device.write_u64 dev ptr page;
            Pbatch.flush dev ptr 8;
            Ok page)

(* ---- read ---------------------------------------------------------------- *)

let read dev ~ino ~off buf boff len =
  let fsize = Inode.size dev ~ino in
  if off >= fsize then Ok 0
  else begin
    let len = min len (fsize - off) in
    let remaining = ref len and src = ref off and dst = ref boff in
    while !remaining > 0 do
      let b = block_of_off !src in
      let in_block = !src mod page_size in
      let n = min !remaining (page_size - in_block) in
      let addr = block_addr dev ~ino b in
      if addr = 0 then
        (* hole *)
        Bytes.fill buf !dst n '\000'
      else Nvm.Device.blit_to_bytes dev (addr + in_block) buf !dst n;
      src := !src + n;
      dst := !dst + n;
      remaining := !remaining - n
    done;
    Ok len
  end

(* ---- write ---------------------------------------------------------------- *)

let write dev balloc ~ino ~off data =
  let len = String.length data in
  if len = 0 then Ok 0
  else begin
    (* Intention: if this thread dies mid-write the stealer rolls the size
       back to [old_size], hiding any half-written data beyond it (data
       within the old size may be torn, which POSIX allows for an
       unacknowledged write). *)
    let old_size = Inode.size dev ~ino in
    Intent.record dev ~ino Intent.Size ~arg:old_size;
    let rec loop src_off dst_off =
      if src_off >= len then Ok ()
      else
        let b = block_of_off dst_off in
        let in_block = dst_off mod page_size in
        let n = min (len - src_off) (page_size - in_block) in
        let zero = not (in_block = 0 && n = page_size) in
        match ensure_block dev balloc ~ino ~zero b with
        | Error e -> Error e
        | Ok addr ->
            Nvm.Device.nt_write_string dev (addr + in_block)
              (String.sub data src_off n);
            loop (src_off + n) (dst_off + n)
    in
    match loop 0 off with
    | Error e ->
        (* Size never moved, so the record is moot — drop it (the clear
           rides the lease-release fence). *)
        Intent.clear dev ~ino;
        Error e
    | Ok () ->
        (* One ordering point makes the intention record, the data and the
           block pointers durable together; the size/mtime update and the
           intention clear after it ride the lease-release fence.  Any crash
           combination of those two pending lines is safe: size-new with the
           record still present is rolled back by the stealer, size-old is
           the op never happening — both fine for an unacknowledged write.
           Two fences per append, down from four. *)
        Pbatch.barrier dev;
        let new_end = off + len in
        if new_end > Inode.size dev ~ino then Inode.set_size dev ~ino new_end
        else Inode.touch_mtime dev ~ino;
        Intent.clear dev ~ino;
        Ok len
  end

(* ---- truncate -------------------------------------------------------------- *)

(* Zero (and optionally free) one block pointer.  The reference is always
   scrubbed and flushed BEFORE the page goes to a free list — whose chaining
   writes into the page — so no interruption point leaves a page both
   referenced and freed, and a repair re-run can use "pointer still set" as
   "page still mine".  [free] is [None] during offline intent repair, where
   the page is simply leaked until fsck's reachability rebuild reclaims it. *)
let drop_ptr dev ~free ptr =
  let addr = Nvm.Device.read_u64 dev ptr in
  if addr <> 0 then begin
    Nvm.Device.write_u64 dev ptr 0;
    Pbatch.flush dev ptr 8;
    match free with Some f -> f addr | None -> ()
  end

(* The shrink body shared by [truncate] and the Trunc intent repair.  It
   walks the pointer STRUCTURE (not the size): a repair must not trust
   [i_size], which a crash may have already advanced to the target while
   some pointer scrubs were lost.  Idempotent — already-zero pointers are
   skipped. *)
let shrink_to dev ~free ~ino new_size =
  let first_dead = blocks_for new_size in
  (* direct blocks *)
  for b = first_dead to n_direct - 1 do
    drop_ptr dev ~free (Inode.direct_addr ~ino b)
  done;
  (* single-indirect tree: blocks [n_direct, n_direct + ptrs_per_page) *)
  let ind = Inode.indirect dev ~ino in
  if ind <> 0 then begin
    let lo = max 0 (first_dead - n_direct) in
    for i = lo to ptrs_per_page - 1 do
      drop_ptr dev ~free (ind + (i * 8))
    done;
    if first_dead <= n_direct then begin
      Inode.set_indirect dev ~ino 0;
      (match free with Some f -> f ind | None -> ())
    end
  end;
  (* double-indirect tree *)
  let dind = Inode.double_indirect dev ~ino in
  if dind <> 0 then begin
    let base = n_direct + ptrs_per_page in
    for o = 0 to ptrs_per_page - 1 do
      let mid = Nvm.Device.read_u64 dev (dind + (o * 8)) in
      if mid <> 0 then begin
        let mid_base = base + (o * ptrs_per_page) in
        let lo = max 0 (first_dead - mid_base) in
        if lo < ptrs_per_page then
          for i = lo to ptrs_per_page - 1 do
            drop_ptr dev ~free (mid + (i * 8))
          done;
        if first_dead <= mid_base then
          (* the mid page itself is dead: scrub its reference first *)
          drop_ptr dev ~free (dind + (o * 8))
      end
    done;
    if first_dead <= base then begin
      Inode.set_double_indirect dev ~ino 0;
      (match free with Some f -> f dind | None -> ())
    end
  end;
  (* Partial last block: zero the tail so growth re-exposes zeros. *)
  if new_size mod page_size <> 0 then begin
    let b = block_of_off new_size in
    let addr = block_addr dev ~ino b in
    if addr <> 0 then begin
      let tail = new_size mod page_size in
      Nvm.Device.fill dev (addr + tail) (page_size - tail) '\000';
      Pbatch.flush dev (addr + tail) (page_size - tail)
    end
  end

(* Free the data blocks beyond [new_size] (and any indirect pages that become
   entirely unused).  Three ordering points: the Trunc intention must be
   durable before the first destructive store (roll-FORWARD records, unlike
   the roll-back kinds, cannot ride the mutation's own fence), the scrubs
   and the new size must be durable before the intention clear is flushed,
   and the clear itself rides the lease-release fence. *)
let truncate dev balloc ~ino new_size =
  let old_size = Inode.size dev ~ino in
  if new_size >= old_size then begin
    if new_size > old_size then Inode.set_size dev ~ino new_size;
    Ok ()
  end
  else begin
    Intent.record dev ~ino Intent.Trunc ~arg:new_size;
    Pbatch.barrier dev;
    shrink_to dev ~free:(Some (Balloc.free_page balloc)) ~ino new_size;
    Inode.set_size dev ~ino new_size;
    Pbatch.barrier dev;
    Intent.clear dev ~ino;
    Ok ()
  end

(* The Trunc intent roll-forward (see intent.ml): complete the shrink to the
   recorded target size.  Runs under the stolen lease online, or during
   offline inode scans. *)
let () =
  Intent.set_trunc_repair (fun dev ~free ~ino new_size ->
      shrink_to dev ~free ~ino new_size;
      if Inode.size dev ~ino <> new_size then Inode.set_size dev ~ino new_size;
      Nvm.Device.sfence dev)

(* Every data / indirect page of the file — for unlink and recovery. *)
let data_pages dev ~ino =
  let pages = ref [] in
  let nblocks = blocks_for (Inode.size dev ~ino) in
  for b = 0 to min nblocks max_blocks - 1 do
    let a = block_addr dev ~ino b in
    if a <> 0 then pages := a :: !pages
  done;
  let ind = Inode.indirect dev ~ino in
  if ind <> 0 then pages := ind :: !pages;
  let dind = Inode.double_indirect dev ~ino in
  if dind <> 0 then begin
    pages := dind :: !pages;
    for o = 0 to ptrs_per_page - 1 do
      let mid = Nvm.Device.read_u64 dev (dind + (o * 8)) in
      if mid <> 0 then pages := mid :: !pages
    done
  end;
  !pages

(* Free every page backing the file (not the inode page itself). *)
let free_all dev balloc ~ino =
  List.iter (fun p -> Balloc.free_page balloc p) (data_pages dev ~ino)
