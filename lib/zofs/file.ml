(* Regular-file data management: ext4-style direct / indirect /
   double-indirect 4 KB block mapping (paper §5.1).

   Data is written with non-temporal stores (the paper confirms ZoFS uses
   non-temporal writes for all experiments); metadata publication follows
   the order: data → block pointer → size, each flushed, so a crash never
   exposes a size that covers unwritten data. *)

open Layout

let block_of_off off = off / page_size
let blocks_for len = (len + page_size - 1) / page_size

(* Address of the pointer word for block [b] of the file; allocates
   intermediate indirect pages when an allocator is supplied. *)
let pointer_addr dev balloc ~ino b =
  let alloc_indirect () =
    match balloc with
    | None -> Ok 0
    | Some a -> ( match Balloc.alloc_zeroed a with Error e -> Error e | Ok p -> Ok p)
  in
  if b < n_direct then Ok (Some (Inode.direct_addr ~ino b))
  else if b < n_direct + ptrs_per_page then begin
    let ind = Inode.indirect dev ~ino in
    if ind <> 0 then Ok (Some (ind + ((b - n_direct) * 8)))
    else
      match alloc_indirect () with
      | Error e -> Error e
      | Ok 0 -> Ok None
      | Ok page ->
          Inode.set_indirect dev ~ino page;
          Ok (Some (page + ((b - n_direct) * 8)))
  end
  else if b < max_blocks then begin
    let idx = b - n_direct - ptrs_per_page in
    let outer = idx / ptrs_per_page and inner = idx mod ptrs_per_page in
    match
      let dind = Inode.double_indirect dev ~ino in
      if dind <> 0 then Ok dind
      else
        match alloc_indirect () with
        | Error e -> Error e
        | Ok 0 -> Ok 0
        | Ok page ->
            Inode.set_double_indirect dev ~ino page;
            Ok page
    with
    | Error e -> Error e
    | Ok 0 -> Ok None
    | Ok dind -> (
        let outer_addr = dind + (outer * 8) in
        match
          let mid = Nvm.Device.read_u64 dev outer_addr in
          if mid <> 0 then Ok mid
          else
            match alloc_indirect () with
            | Error e -> Error e
            | Ok 0 -> Ok 0
            | Ok page ->
                Nvm.Device.write_u64 dev outer_addr page;
                Nvm.Device.persist_range dev outer_addr 8;
                Ok page
        with
        | Error e -> Error e
        | Ok 0 -> Ok None
        | Ok mid -> Ok (Some (mid + (inner * 8))))
  end
  else Error Treasury.Errno.EFBIG

let block_addr dev ~ino b =
  match pointer_addr dev None ~ino b with
  | Ok (Some ptr) -> Nvm.Device.read_u64 dev ptr
  | Ok None -> 0
  | Error _ -> 0

(* [ensure_block] returns the block's byte address, allocating on demand.
   [zero] skips the scrub when the caller immediately overwrites the whole
   block — the common case for 4 KB appends, and the difference between a
   one-write and a two-write data path. *)
let ensure_block dev balloc ~ino ~zero b =
  match pointer_addr dev (Some balloc) ~ino b with
  | Error e -> Error e
  | Ok None -> Error Treasury.Errno.EIO
  | Ok (Some ptr) -> (
      let existing = Nvm.Device.read_u64 dev ptr in
      if existing <> 0 then Ok existing
      else
        match Balloc.alloc_page balloc with
        | Error e -> Error e
        | Ok page ->
            if zero then Nvm.Device.nt_fill dev page page_size '\000';
            Nvm.Device.write_u64 dev ptr page;
            Nvm.Device.clwb dev ptr;
            Ok page)

(* ---- read ---------------------------------------------------------------- *)

let read dev ~ino ~off buf boff len =
  let fsize = Inode.size dev ~ino in
  if off >= fsize then Ok 0
  else begin
    let len = min len (fsize - off) in
    let remaining = ref len and src = ref off and dst = ref boff in
    while !remaining > 0 do
      let b = block_of_off !src in
      let in_block = !src mod page_size in
      let n = min !remaining (page_size - in_block) in
      let addr = block_addr dev ~ino b in
      if addr = 0 then
        (* hole *)
        Bytes.fill buf !dst n '\000'
      else Nvm.Device.blit_to_bytes dev (addr + in_block) buf !dst n;
      src := !src + n;
      dst := !dst + n;
      remaining := !remaining - n
    done;
    Ok len
  end

(* ---- write ---------------------------------------------------------------- *)

let write dev balloc ~ino ~off data =
  let len = String.length data in
  if len = 0 then Ok 0
  else begin
    (* Intention: if this thread dies mid-write the stealer rolls the size
       back to [old_size], hiding any half-written data beyond it (data
       within the old size may be torn, which POSIX allows for an
       unacknowledged write). *)
    let old_size = Inode.size dev ~ino in
    Intent.record dev ~ino Intent.Size ~arg:old_size;
    let rec loop src_off dst_off =
      if src_off >= len then Ok ()
      else
        let b = block_of_off dst_off in
        let in_block = dst_off mod page_size in
        let n = min (len - src_off) (page_size - in_block) in
        let zero = not (in_block = 0 && n = page_size) in
        match ensure_block dev balloc ~ino ~zero b with
        | Error e -> Error e
        | Ok addr ->
            Nvm.Device.nt_write_string dev (addr + in_block)
              (String.sub data src_off n);
            loop (src_off + n) (dst_off + n)
    in
    match loop 0 off with
    | Error e ->
        (* Size never moved, so the record is moot — drop it. *)
        Intent.clear dev ~ino;
        Error e
    | Ok () ->
        Nvm.Device.sfence dev;
        let new_end = off + len in
        if new_end > Inode.size dev ~ino then Inode.set_size dev ~ino new_end
        else Inode.touch_mtime dev ~ino;
        Intent.clear dev ~ino;
        Ok len
  end

(* ---- truncate -------------------------------------------------------------- *)

(* Free the data blocks beyond [new_size] (and any indirect pages that become
   entirely unused). *)
let truncate dev balloc ~ino new_size =
  let old_size = Inode.size dev ~ino in
  if new_size >= old_size then begin
    if new_size > old_size then Inode.set_size dev ~ino new_size;
    Ok ()
  end
  else begin
    let first_dead = blocks_for new_size in
    let last = blocks_for old_size - 1 in
    for b = first_dead to last do
      match pointer_addr dev None ~ino b with
      | Ok (Some ptr) ->
          let addr = Nvm.Device.read_u64 dev ptr in
          if addr <> 0 then begin
            Nvm.Device.write_u64 dev ptr 0;
            Nvm.Device.clwb dev ptr;
            Balloc.free_page balloc addr
          end
      | Ok None | Error _ -> ()
    done;
    Nvm.Device.sfence dev;
    (* Drop indirect pages if now unused. *)
    if first_dead <= n_direct then begin
      let ind = Inode.indirect dev ~ino in
      if ind <> 0 then begin
        Inode.set_indirect dev ~ino 0;
        Balloc.free_page balloc ind
      end
    end;
    if first_dead <= n_direct + ptrs_per_page then begin
      let dind = Inode.double_indirect dev ~ino in
      if dind <> 0 then begin
        for o = 0 to ptrs_per_page - 1 do
          let mid = Nvm.Device.read_u64 dev (dind + (o * 8)) in
          if mid <> 0 then Balloc.free_page balloc mid
        done;
        Inode.set_double_indirect dev ~ino 0;
        Balloc.free_page balloc dind
      end
    end;
    (* Partial last block: zero the tail so growth re-exposes zeros. *)
    if new_size mod page_size <> 0 then begin
      let b = block_of_off new_size in
      let addr = block_addr dev ~ino b in
      if addr <> 0 then begin
        let tail = new_size mod page_size in
        Nvm.Device.fill dev (addr + tail) (page_size - tail) '\000';
        Nvm.Device.persist_range dev (addr + tail) (page_size - tail)
      end
    end;
    Inode.set_size dev ~ino new_size;
    Ok ()
  end

(* Every data / indirect page of the file — for unlink and recovery. *)
let data_pages dev ~ino =
  let pages = ref [] in
  let nblocks = blocks_for (Inode.size dev ~ino) in
  for b = 0 to min nblocks max_blocks - 1 do
    let a = block_addr dev ~ino b in
    if a <> 0 then pages := a :: !pages
  done;
  let ind = Inode.indirect dev ~ino in
  if ind <> 0 then pages := ind :: !pages;
  let dind = Inode.double_indirect dev ~ino in
  if dind <> 0 then begin
    pages := dind :: !pages;
    for o = 0 to ptrs_per_page - 1 do
      let mid = Nvm.Device.read_u64 dev (dind + (o * 8)) in
      if mid <> 0 then pages := mid :: !pages
    done
  end;
  !pages

(* Free every page backing the file (not the inode page itself). *)
let free_all dev balloc ~ino =
  List.iter (fun p -> Balloc.free_page balloc p) (data_pages dev ~ino)
