(* The protection story of the paper (§3.4, §6.5), live:
   1. stray writes from buggy application code are caught by MPK;
   2. corruption inside a coffer surfaces as a graceful errno, not a crash;
   3. a manipulated cross-coffer reference is detected by guideline G3;
   4. offline recovery repairs the damage.

     dune exec examples/protection_demo.exe *)

module V = Treasury.Vfs
module K = Treasury.Kernfs
module D = Nvm.Device

let ok = function
  | Ok v -> v
  | Error e -> failwith ("protection_demo: " ^ Treasury.Errno.to_string e)

let () =
  let dev = D.create ~perf:Nvm.Perf.optane ~size:(16384 * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  let kfs =
    K.mkfs dev mpk ~root_ctype:Zofs.Ufs.ctype ~root_mode:0o755 ~root_uid:0
      ~root_gid:0 ()
  in
  Zofs.Ufs.mkfs kfs;
  let fslib () =
    let disp = Treasury.Dispatcher.create kfs in
    let ufs = Zofs.Ufs.create kfs in
    Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
    (disp, Treasury.Dispatcher.as_vfs disp)
  in

  (* some files to protect *)
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let _, fs = fslib () in
      ok (V.write_file fs "/ledger" ~mode:0o644 "balance: 1000 coins\n");
      ok (V.write_file fs "/audit" ~mode:0o640 "clean\n"));

  (* 1. stray writes *)
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let _, fs = fslib () in
      ignore (ok (V.read_file fs "/ledger")) (* coffer mapped, region closed *);
      let rng = Sim.Rng.create 1L in
      let caught = ref 0 in
      for _ = 1 to 100 do
        let addr = Sim.Rng.int rng (D.size dev - 8) in
        match D.write_u64 dev addr 0xBADBAD with
        | () -> ()
        | exception Nvm.Fault _ -> incr caught
      done;
      Printf.printf "1. stray writes: %d/100 wild stores caught by MPK\n" !caught;
      Printf.printf "   ledger intact: %s" (ok (V.read_file fs "/ledger")));

  (* 2+3. corrupt a dentry and watch FSLibs convert the fault *)
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      Mpk.with_kernel mpk (fun () ->
          Mpk.with_write_window mpk (fun () ->
              let root = K.root_coffer kfs in
              let info = Option.get (Treasury.Coffer.read dev ~id:root) in
              match Zofs.Dir.lookup dev ~ino:info.Treasury.Coffer.root_file "ledger" with
              | Some de ->
                  (* point the dentry at an address outside the coffer *)
                  D.write_u64 dev (de.Zofs.Dir.de_addr + Zofs.Layout.d_inode)
                    (99 * Nvm.page_size);
                  D.persist_all dev
              | None -> ())));
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let disp, fs = fslib () in
      (match V.read_file fs "/ledger" with
      | Error e ->
          Printf.printf
            "2. corrupted metadata: read returns %s instead of crashing (%d \
             faults converted)\n"
            (Treasury.Errno.to_string e)
            (Treasury.Dispatcher.graceful_error_count disp)
      | Ok _ -> print_endline "2. UNEXPECTED: corruption not detected");
      (* other files keep working *)
      Printf.printf "   audit still readable: %s" (ok (V.read_file fs "/audit")));

  (* 4. offline recovery *)
  let report =
    Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
        Zofs.Recovery.recover_all kfs)
  in
  Printf.printf
    "3. fsck: scanned %d coffers, dropped %d bad dentries, reclaimed %d pages\n"
    report.Zofs.Recovery.coffers_scanned report.Zofs.Recovery.dentries_dropped
    report.Zofs.Recovery.pages_reclaimed;
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let _, fs = fslib () in
      (match V.read_file fs "/ledger" with
      | Error e ->
          Printf.printf
            "   /ledger was unrecoverable and stays gone (%s) — consistent, \
             not corrupt\n"
            (Treasury.Errno.to_string e)
      | Ok s -> Printf.printf "   /ledger recovered: %s" s);
      Printf.printf "   /audit: %s" (ok (V.read_file fs "/audit")));
  print_endline "protection_demo: done"
