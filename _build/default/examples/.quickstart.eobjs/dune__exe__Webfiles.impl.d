examples/webfiles.ml: List Mpk Nvm Printf Sim Survey Treasury Zofs
