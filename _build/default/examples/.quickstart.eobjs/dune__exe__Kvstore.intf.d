examples/kvstore.mli:
