examples/quickstart.mli:
