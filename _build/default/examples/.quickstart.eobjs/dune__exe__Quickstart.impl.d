examples/quickstart.ml: Bytes Mpk Nvm Printf Sim String Treasury Zofs
