examples/webfiles.mli:
