examples/kvstore.ml: Kvdb Printf Sim Treasury Workloads
