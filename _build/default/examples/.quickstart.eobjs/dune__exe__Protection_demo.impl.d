examples/protection_demo.ml: Mpk Nvm Option Printf Sim Treasury Zofs
