(* A multi-user web-server scenario (the paper's §2.3 motivation): a wiki's
   files (www-data, 644) next to two databases with private data
   directories (mysql 640/750, postgres 600/700).  Shows how files group
   into coffers by permission, and that coffer-granularity protection
   isolates the users from each other.

     dune exec examples/webfiles.exe *)

module V = Treasury.Vfs
module K = Treasury.Kernfs

let ok = function
  | Ok v -> v
  | Error e -> failwith ("webfiles: " ^ Treasury.Errno.to_string e)

let uid_wiki = 33 (* www-data *)
let uid_mysql = 970
let uid_pg = 969

let () =
  let dev = Nvm.Device.create ~perf:Nvm.Perf.optane ~size:(65536 * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  let kfs =
    K.mkfs dev mpk ~root_ctype:Zofs.Ufs.ctype ~root_mode:0o777 ~root_uid:0
      ~root_gid:0 ()
  in
  Zofs.Ufs.mkfs kfs;
  let fslib () =
    let disp = Treasury.Dispatcher.create kfs in
    let ufs = Zofs.Ufs.create kfs in
    Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
    Treasury.Dispatcher.as_vfs disp
  in
  let as_user uid f =
    Sim.run_thread ~proc:(Sim.Proc.create ~uid ~gid:uid ()) (fun () -> f (fslib ()))
  in

  (* Shared parents, world-writable like /var on a fresh install. *)
  as_user 0 (fun fs ->
      ok (V.mkdir_p fs "/var/www" 0o777);
      ok (V.mkdir_p fs "/var/lib" 0o777));

  (* Each service populates its own data directory. *)
  as_user uid_wiki (fun fs -> ok (Survey.Appdirs.populate_dokuwiki ~scale:40 fs "/var/www/wiki"));
  as_user uid_mysql (fun fs -> ok (Survey.Appdirs.populate_mysql fs "/var/lib/mysql"));
  as_user uid_pg (fun fs -> ok (Survey.Appdirs.populate_postgres fs "/var/lib/pgsql"));

  (* The survey tool (Table 3 of the paper) over the whole tree. *)
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let fs = fslib () in
      Printf.printf "%-12s %-10s %-6s %-9s %8s\n" "System" "Type" "Perm"
        "Uid/Gid" "# Files";
      List.iter
        (fun (system, root) ->
          List.iter
            (fun r ->
              Printf.printf "%-12s %-10s %-6o %4d/%-4d %8d\n" system
                (Treasury.Fs_types.kind_to_string r.Survey.Appdirs.r_kind)
                r.Survey.Appdirs.r_perm r.Survey.Appdirs.r_uid
                r.Survey.Appdirs.r_gid r.Survey.Appdirs.r_count)
            (Survey.Appdirs.scan fs ~system root))
        [
          ("DokuWiki", "/var/www/wiki");
          ("MySQL", "/var/lib/mysql");
          ("PostgreSQL", "/var/lib/pgsql");
        ]);

  (* How many coffers did this create, and who owns them? *)
  Sim.run_thread (fun () ->
      ignore (K.fs_mount kfs);
      let coffers = ok (K.list_coffers kfs) in
      Printf.printf "\n%d coffers in the file system; a sample:\n"
        (List.length coffers);
      List.iteri
        (fun i c ->
          if i < 8 then
            Printf.printf "  coffer %-5d mode %-4o uid %-4d %s\n"
              c.Treasury.Coffer.id c.Treasury.Coffer.mode c.Treasury.Coffer.uid
              c.Treasury.Coffer.path)
        (List.sort (fun a b -> compare a.Treasury.Coffer.path b.Treasury.Coffer.path) coffers);
      ignore (K.fs_umount kfs));

  (* Isolation: the wiki user cannot read the databases. *)
  as_user uid_wiki (fun fs ->
      (match V.read_file fs "/var/lib/pgsql/base01/rel00028" with
      | Error e ->
          Printf.printf "\nwww-data reading postgres data: %s (as it should be)\n"
            (Treasury.Errno.to_string e)
      | Ok _ -> print_endline "UNEXPECTED: wiki user read postgres data");
      (* ...but serves its own files fast, entirely in user space *)
      let t0 = Sim.now () in
      let served = ref 0 in
      (match V.readdir fs "/var/www/wiki/ns0001" with
      | Ok entries ->
          List.iter
            (fun d ->
              match V.read_file fs ("/var/www/wiki/ns0001/" ^ d.Treasury.Fs_types.d_name) with
              | Ok _ -> incr served
              | Error _ -> ())
            entries
      | Error _ -> ());
      Printf.printf "served %d wiki pages in %.1f us of simulated time\n" !served
        (float_of_int (Sim.now () - t0) /. 1000.0));
  print_endline "webfiles: done"
