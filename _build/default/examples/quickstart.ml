(* Quickstart: build a ZoFS world on simulated NVM and use it through the
   POSIX-ish Vfs interface.

     dune exec examples/quickstart.exe *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types

let ok = function
  | Ok v -> v
  | Error e -> failwith ("quickstart: " ^ Treasury.Errno.to_string e)

let () =
  (* 1. A 64 MB simulated NVM device with the Optane cost model, protected
     by simulated MPK, formatted with KernFS + ZoFS. *)
  let dev = Nvm.Device.create ~perf:Nvm.Perf.optane ~size:(16384 * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  let kfs =
    Treasury.Kernfs.mkfs dev mpk ~root_ctype:Zofs.Ufs.ctype ~root_mode:0o755
      ~root_uid:0 ~root_gid:0 ()
  in
  Zofs.Ufs.mkfs kfs;

  (* 2. Everything runs inside the deterministic simulator: one simulated
     process with its own FSLibs (dispatcher + µFS). *)
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let disp = Treasury.Dispatcher.create kfs in
      let ufs = Zofs.Ufs.create kfs in
      Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
      let fs = Treasury.Dispatcher.as_vfs disp in

      (* 3. Ordinary file operations — all handled in user space. *)
      ok (V.mkdir fs "/projects" 0o755);
      ok (V.write_file fs "/projects/notes.txt" "coffers separate protection from management\n");
      ok (V.append_file fs "/projects/notes.txt" "so user space can go fast\n");
      Printf.printf "notes.txt:\n%s" (ok (V.read_file fs "/projects/notes.txt"));

      let st = ok (V.stat fs "/projects/notes.txt") in
      Printf.printf "size=%d mode=%o uid=%d\n" st.Ft.st_size st.Ft.st_mode st.Ft.st_uid;

      (* 4. Descriptor-level I/O with the user-space FD table. *)
      let fd = ok (V.openf fs "/projects/data.bin" [ Ft.O_CREAT; Ft.O_RDWR ] 0o644) in
      ignore (ok (V.write fs fd (String.make 10000 'z')));
      let buf = Bytes.create 5 in
      ignore (ok (V.pread fs fd ~off:9995 buf 0 5));
      Printf.printf "tail of data.bin: %S\n" (Bytes.to_string buf);
      ok (V.close fs fd);

      (* 5. Symlinks resolve through the dispatcher's re-dispatch loop. *)
      ok (V.symlink fs ~target:"/projects/notes.txt" ~link:"/latest");
      Printf.printf "via symlink: %s" (ok (V.read_file fs "/latest"));

      (* 6. A file with a different permission gets its own coffer,
         registered with the kernel. *)
      ok (V.write_file fs "/projects/secret.key" ~mode:0o600 "hunter2\n");
      let cid = ok (Treasury.Kernfs.coffer_find kfs "/projects/secret.key") in
      let info = ok (Treasury.Kernfs.coffer_stat kfs cid) in
      Printf.printf "secret.key lives in its own coffer %d (mode %o)\n" cid
        info.Treasury.Coffer.mode;

      Printf.printf "simulated time elapsed: %.1f us\n"
        (float_of_int (Sim.now ()) /. 1000.0));
  print_endline "quickstart: done"
