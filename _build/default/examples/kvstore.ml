(* The LSM key-value store (our LevelDB) running on ZoFS vs on PMFS —
   the paper's Table 7 scenario in miniature: same database code, different
   file system underneath.

     dune exec examples/kvstore.exe *)

module V = Treasury.Vfs
module FL = Workloads.Fslab

let ok = function
  | Ok v -> v
  | Error e -> failwith ("kvstore: " ^ Treasury.Errno.to_string e)

let demo label proc fs =
  Sim.run_thread ~proc (fun () ->
      let db = ok (Kvdb.Db.open_ fs "/kv") in
      (* write a batch of user profiles *)
      let t0 = Sim.now () in
      for i = 0 to 999 do
        ok
          (Kvdb.Db.put db
             ~key:(Printf.sprintf "user:%05d" i)
             ~value:(Printf.sprintf "{\"name\":\"user%d\",\"score\":%d}" i (i * 7 mod 100)))
      done;
      let write_us = float_of_int (Sim.now () - t0) /. 1000.0 in
      (* point reads *)
      let t0 = Sim.now () in
      for i = 0 to 999 do
        ignore (Kvdb.Db.get db ~key:(Printf.sprintf "user:%05d" (i * 37 mod 1000)))
      done;
      let read_us = float_of_int (Sim.now () - t0) /. 1000.0 in
      (* deletes + a scan *)
      for i = 0 to 99 do
        ok (Kvdb.Db.delete db ~key:(Printf.sprintf "user:%05d" (i * 10)))
      done;
      let live = Kvdb.Db.fold_all db (fun n _ _ -> n + 1) 0 in
      let l0, l1 = Kvdb.Db.level_sizes db in
      ok (Kvdb.Db.close db);
      Printf.printf
        "%-10s 1000 puts: %7.1f us   1000 gets: %7.1f us   live keys: %d   \
         L0/L1 tables: %d/%d   compactions: %d\n"
        label write_us read_us live l0 l1
        (Kvdb.Db.compaction_count db))

let () =
  print_endline "LSM key-value store on two file systems (simulated time):";
  (* FSLibs state is per process: create and use each instance under the
     same simulated process *)
  let zofs_proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  let zofs = Sim.run_thread ~proc:zofs_proc (fun () -> FL.make ~pages:65536 FL.Zofs) in
  demo "ZoFS" zofs_proc zofs.FL.fs;
  let pmfs_proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  let pmfs = Sim.run_thread ~proc:pmfs_proc (fun () -> FL.make ~pages:65536 FL.Pmfs) in
  demo "PMFS" pmfs_proc pmfs.FL.fs;

  (* durability: reopen on the same ZoFS and find the data again *)
  Sim.run_thread ~proc:zofs_proc (fun () ->
      let db = ok (Kvdb.Db.open_ zofs.FL.fs "/kv") in
      match Kvdb.Db.get db ~key:"user:00001" with
      | Some v -> Printf.printf "after reopen, user:00001 = %s\n" v
      | None -> print_endline "UNEXPECTED: lost a key across reopen");
  print_endline "kvstore: done"
