bin/survey_tool.ml: Array List Mpk Nvm Printf Sim Survey Sys Treasury Zofs
