bin/zofs_shell.mli:
