bin/zofs_fsck.mli:
