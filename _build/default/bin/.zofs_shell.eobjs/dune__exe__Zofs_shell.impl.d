bin/zofs_shell.ml: Array In_channel List Mpk Nvm Option Printf Sim String Sys Treasury Zofs
