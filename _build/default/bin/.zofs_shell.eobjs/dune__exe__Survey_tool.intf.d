bin/survey_tool.mli:
