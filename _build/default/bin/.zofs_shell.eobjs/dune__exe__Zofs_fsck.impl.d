bin/zofs_fsck.ml: Array List Mpk Nvm Option Printf Sim String Sys Treasury Zofs
