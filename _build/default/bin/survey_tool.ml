(* The permission-survey tool behind the paper's §2.3 analysis:

     dune exec bin/survey_tool.exe -- table3    # app data directories
     dune exec bin/survey_tool.exe -- table4    # FSL Homes snapshot + grouping
     dune exec bin/survey_tool.exe -- mobigen   # syscall traces *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types

let ok = function
  | Ok v -> v
  | Error e -> failwith (Treasury.Errno.to_string e)

let table3 () =
  let dev = Nvm.Device.create ~perf:Nvm.Perf.free ~size:(131072 * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  let kfs =
    Treasury.Kernfs.mkfs dev mpk ~root_ctype:Zofs.Ufs.ctype ~root_mode:0o777
      ~root_uid:0 ~root_gid:0 ()
  in
  Zofs.Ufs.mkfs kfs;
  let fslib () =
    let disp = Treasury.Dispatcher.create kfs in
    let ufs = Zofs.Ufs.create kfs in
    Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
    Treasury.Dispatcher.as_vfs disp
  in
  Printf.printf "%-12s %-10s %-6s %-9s %9s %10s\n" "System" "Type" "Perm"
    "Uid/Gid" "# Files" "Bytes";
  List.iter
    (fun (system, uid, populate, root) ->
      Sim.run_thread ~proc:(Sim.Proc.create ~uid ~gid:uid ()) (fun () ->
          let fs = fslib () in
          ok (populate fs root);
          List.iter
            (fun r ->
              Printf.printf "%-12s %-10s %-6o %4d/%-4d %9d %10d\n" system
                (Ft.kind_to_string r.Survey.Appdirs.r_kind)
                r.Survey.Appdirs.r_perm r.Survey.Appdirs.r_uid
                r.Survey.Appdirs.r_gid r.Survey.Appdirs.r_count
                r.Survey.Appdirs.r_bytes)
            (Survey.Appdirs.scan fs ~system root)))
    [
      ("MySQL", 970, Survey.Appdirs.populate_mysql, "/mysql");
      ("PostgreSQL", 969, Survey.Appdirs.populate_postgres, "/pg");
      ( "DokuWiki",
        33,
        (fun fs root -> Survey.Appdirs.populate_dokuwiki ~scale:10 fs root),
        "/wiki" );
    ]

let table4 () =
  print_endline "synthesizing the FSL Homes snapshot (726,751 files)...";
  let files = Survey.Fsl.generate () in
  let kinds =
    [
      ("regular", Survey.Fsl.Regular);
      ("symlink", Survey.Fsl.Symlink);
      ("directory", Survey.Fsl.Directory);
    ]
  in
  List.iter
    (fun (label, k) ->
      Printf.printf "%-10s %d files\n" label (Survey.Fsl.count_kind files k))
    kinds;
  let s = Survey.Grouping.analyze files in
  Printf.printf
    "groups: %d; largest: %d files (%.1f%% of all); single-file groups: %d\n"
    s.Survey.Grouping.n_groups s.Survey.Grouping.largest_files
    (100.0 *. float_of_int s.Survey.Grouping.largest_files /. float_of_int (Array.length files))
    s.Survey.Grouping.single_file_groups;
  Printf.printf "%-6s %-9s %12s %12s %12s\n" "perm" "#groups" "min" "avg" "max";
  List.iter
    (fun (p, n, mn, avg, mx) ->
      Printf.printf "%-6o %-9d %12d %12d %12d\n" p n mn avg mx)
    s.Survey.Grouping.by_perm

let mobigen () =
  List.iter
    (fun (label, trace) ->
      let c = Survey.Mobigen.analyze trace in
      Printf.printf
        "%-9s %6d syscalls, %2d chmod, %2d chown, %2d shadow-file patterns\n"
        label c.Survey.Mobigen.total c.Survey.Mobigen.chmods
        c.Survey.Mobigen.chowns c.Survey.Mobigen.shadow_patterns)
    [
      ("Facebook", Survey.Mobigen.facebook ());
      ("Twitter", Survey.Mobigen.twitter ());
    ]

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [ "table3" ] -> table3 ()
  | [ "table4" ] -> table4 ()
  | [ "mobigen" ] -> mobigen ()
  | [] ->
      table3 ();
      print_newline ();
      table4 ();
      print_newline ();
      mobigen ()
  | _ ->
      prerr_endline "usage: survey_tool [table3|table4|mobigen]";
      exit 1
