(* Write-ahead log: every update is appended here before it enters the
   memtable; replayed at open to recover a memtable lost in a crash.

   Record: [kind u8][klen u32][key][vlen u32][value], concatenated.  A short
   or garbled tail (torn final record) is ignored on replay. *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types

type t = { fs : V.fs; path : string; mutable fd : int }

let ( let* ) = Result.bind

let k_put = 1
let k_delete = 2

let create fs path =
  let* fd = V.openf fs path [ Ft.O_CREAT; Ft.O_WRONLY; Ft.O_TRUNC ] 0o644 in
  Ok { fs; path; fd }

let encode ~kind ~key ~value =
  let klen = String.length key and vlen = String.length value in
  let b = Buffer.create (9 + klen + vlen) in
  Buffer.add_char b (Char.chr kind);
  Buffer.add_int32_le b (Int32.of_int klen);
  Buffer.add_string b key;
  Buffer.add_int32_le b (Int32.of_int vlen);
  Buffer.add_string b value;
  Buffer.contents b

let append t ~kind ~key ~value ~sync =
  let* _ = V.write t.fs t.fd (encode ~kind ~key ~value) in
  if sync then V.fsync t.fs t.fd else Ok ()

let put t ~key ~value ~sync = append t ~kind:k_put ~key ~value ~sync
let delete t ~key ~sync = append t ~kind:k_delete ~key ~value:"" ~sync

(* Replay an existing log into [f]; stops silently at a torn tail. *)
let replay fs path f =
  match V.read_file fs path with
  | Error Treasury.Errno.ENOENT -> Ok ()
  | Error e -> Error e
  | Ok data ->
      let n = String.length data in
      let u32 off =
        Char.code data.[off]
        lor (Char.code data.[off + 1] lsl 8)
        lor (Char.code data.[off + 2] lsl 16)
        lor (Char.code data.[off + 3] lsl 24)
      in
      let rec go off =
        if off + 9 > n then ()
        else begin
          let kind = Char.code data.[off] in
          let klen = u32 (off + 1) in
          if off + 5 + klen + 4 > n then ()
          else begin
            let key = String.sub data (off + 5) klen in
            let vlen = u32 (off + 5 + klen) in
            let voff = off + 9 + klen in
            if voff + vlen > n then ()
            else begin
              let value = String.sub data voff vlen in
              if kind = k_put then f (`Put (key, value))
              else if kind = k_delete then f (`Delete key);
              go (voff + vlen)
            end
          end
        end
      in
      go 0;
      Ok ()

let reset t =
  let* () = V.close t.fs t.fd in
  let* fd = V.openf t.fs t.path [ Ft.O_CREAT; Ft.O_WRONLY; Ft.O_TRUNC ] 0o644 in
  t.fd <- fd;
  Ok ()

let close t = V.close t.fs t.fd
