lib/kvdb/memtable.ml: Map String
