lib/kvdb/wal.ml: Buffer Char Int32 Result String Treasury
