lib/kvdb/db.ml: Hashtbl List Memtable Printf Result Sim Sstable String Treasury Wal
