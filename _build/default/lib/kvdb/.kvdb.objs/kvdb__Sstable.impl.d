lib/kvdb/sstable.ml: Array Buffer Bytes Char Int32 Int64 List Result String Treasury
