lib/kvdb/db_bench.ml: Char Db Printf Sim String Treasury
