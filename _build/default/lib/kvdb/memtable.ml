(* In-memory sorted write buffer of the LSM store (LevelDB's memtable):
   a string map holding the newest value or tombstone per key, plus an
   approximate byte footprint that triggers flushes. *)

module M = Map.Make (String)

type entry = Put of string | Tombstone

type t = { mutable map : entry M.t; mutable bytes : int }

let create () = { map = M.empty; bytes = 0 }

let entry_cost key value = String.length key + String.length value + 32

let put t key value =
  t.map <- M.add key (Put value) t.map;
  t.bytes <- t.bytes + entry_cost key value

let delete t key =
  t.map <- M.add key Tombstone t.map;
  t.bytes <- t.bytes + entry_cost key ""

let find t key = M.find_opt key t.map
let is_empty t = M.is_empty t.map
let approximate_bytes t = t.bytes
let cardinal t = M.cardinal t.map

(* ascending key order *)
let iter t f = M.iter f t.map
let bindings t = M.bindings t.map

let clear t =
  t.map <- M.empty;
  t.bytes <- 0
