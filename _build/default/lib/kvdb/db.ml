(* The LSM key-value store (our LevelDB): memtable + WAL in front of two
   levels of SSTables.

   - writes go WAL → memtable; [sync] fsyncs the WAL (db_bench "write
     sync.");
   - the memtable flushes to a new L0 table past [memtable_budget];
   - when L0 collects [l0_compaction_trigger] tables, all of L0 merges with
     the overlapping part of L1 into fresh non-overlapping L1 tables;
   - the MANIFEST records the live tables and is replaced atomically
     (write temp + rename), so reopen sees a consistent table set and
     replays the WAL for the rest. *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types

let memtable_budget = 256 * 1024
let l0_compaction_trigger = 4
let l1_target_bytes = 1 lsl 20

type t = {
  fs : V.fs;
  dir : string;
  mem : Memtable.t;
  mutable wal : Wal.t;
  mutable l0 : Sstable.t list;  (* newest first *)
  mutable l1 : Sstable.t list;  (* sorted by smallest key, disjoint ranges *)
  mutable next_file : int;
  mutable compactions : int;
}

let ( let* ) = Result.bind

let table_path t n = Printf.sprintf "%s/%06d.sst" t.dir n
let wal_path dir = dir ^ "/wal.log"
let manifest_path dir = dir ^ "/MANIFEST"

(* ---- manifest -------------------------------------------------------------- *)

let save_manifest t =
  let line lvl tbl = Printf.sprintf "%d %s" lvl tbl.Sstable.path in
  let body =
    String.concat "\n"
      (List.map (line 0) t.l0 @ List.map (line 1) t.l1)
    ^ Printf.sprintf "\nnext %d\n" t.next_file
  in
  let tmp = t.dir ^ "/MANIFEST.tmp" in
  let* () = V.write_file t.fs tmp body in
  V.rename t.fs tmp (manifest_path t.dir)

let load_manifest fs dir =
  match V.read_file fs (manifest_path dir) with
  | Error Treasury.Errno.ENOENT -> Ok ([], [], 1)
  | Error e -> Error e
  | Ok body ->
      let l0 = ref [] and l1 = ref [] and next = ref 1 in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | [ "0"; path ] -> (
              match Sstable.open_ fs path with
              | Ok tbl -> l0 := tbl :: !l0
              | Error _ -> ())
          | [ "1"; path ] -> (
              match Sstable.open_ fs path with
              | Ok tbl -> l1 := tbl :: !l1
              | Error _ -> ())
          | [ "next"; n ] -> next := int_of_string n
          | _ -> ())
        (String.split_on_char '\n' body);
      (* manifest lists l0 newest-first; reading reversed it *)
      Ok (List.rev !l0, List.rev !l1, !next)

(* ---- open ------------------------------------------------------------------- *)

let open_ fs dir =
  let* () = V.mkdir_p fs dir 0o755 in
  let* l0, l1, next_file = load_manifest fs dir in
  let mem = Memtable.create () in
  (* replay the WAL into the memtable *)
  let* () =
    Wal.replay fs (wal_path dir) (function
      | `Put (k, v) -> Memtable.put mem k v
      | `Delete k -> Memtable.delete mem k)
  in
  (* reopen the WAL in append mode, preserving replayed records *)
  let* fd = V.openf fs (wal_path dir) [ Ft.O_CREAT; Ft.O_WRONLY; Ft.O_APPEND ] 0o644 in
  let wal = { Wal.fs; path = wal_path dir; fd } in
  Ok { fs; dir; mem; wal; l0; l1; next_file; compactions = 0 }

(* ---- flush and compaction ---------------------------------------------------- *)

let fresh_table_path t =
  let p = table_path t t.next_file in
  t.next_file <- t.next_file + 1;
  p

let entries_of_memtable mem =
  List.map
    (fun (key, e) ->
      match e with
      | Memtable.Put v -> { Sstable.key; value = Some v }
      | Memtable.Tombstone -> { Sstable.key; value = None })
    (Memtable.bindings mem)

(* Merge sorted entry lists; earlier lists win on duplicate keys. *)
let merge_entries lists =
  let tbl = Hashtbl.create 1024 in
  let order = ref [] in
  List.iter
    (fun entries ->
      List.iter
        (fun (e : Sstable.entry) ->
          if not (Hashtbl.mem tbl e.Sstable.key) then begin
            Hashtbl.replace tbl e.Sstable.key e;
            order := e.Sstable.key :: !order
          end)
        entries)
    lists;
  List.sort compare (List.map (fun k -> Hashtbl.find tbl k) (List.sort_uniq compare !order))

let split_into_tables entries =
  (* split the merged run into tables of ~l1_target_bytes *)
  let rec go acc current current_bytes = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | (e : Sstable.entry) :: rest ->
        let sz =
          String.length e.Sstable.key
          + (match e.Sstable.value with Some v -> String.length v | None -> 0)
          + 16
        in
        if current_bytes + sz > l1_target_bytes && current <> [] then
          go (List.rev current :: acc) [ e ] sz rest
        else go acc (e :: current) (current_bytes + sz) rest
  in
  go [] [] 0 entries

let compact t =
  t.compactions <- t.compactions + 1;
  (* merge all of L0 (newest first wins) with all of L1, dropping
     tombstones (full compaction covers the whole key space here) *)
  let lists =
    List.map Sstable.entries t.l0 @ [ List.concat_map Sstable.entries t.l1 ]
  in
  let merged =
    List.filter (fun e -> e.Sstable.value <> None) (merge_entries lists)
  in
  let old_tables = t.l0 @ t.l1 in
  let* new_l1 =
    List.fold_left
      (fun acc chunk ->
        let* acc = acc in
        let path = fresh_table_path t in
        let* () = Sstable.write t.fs path chunk in
        let* tbl = Sstable.open_ t.fs path in
        Ok (tbl :: acc))
      (Ok []) (split_into_tables merged)
  in
  t.l0 <- [];
  t.l1 <- List.rev new_l1;
  let* () = save_manifest t in
  (* old tables are unreachable from the manifest: delete them *)
  List.iter
    (fun tbl -> ignore (V.unlink t.fs tbl.Sstable.path))
    old_tables;
  Ok ()

let flush_memtable t =
  if Memtable.is_empty t.mem then Ok ()
  else begin
    let path = fresh_table_path t in
    let* () = Sstable.write t.fs path (entries_of_memtable t.mem) in
    let* tbl = Sstable.open_ t.fs path in
    t.l0 <- tbl :: t.l0;
    let* () = save_manifest t in
    Memtable.clear t.mem;
    let* () = Wal.reset t.wal in
    if List.length t.l0 >= l0_compaction_trigger then compact t else Ok ()
  end

let maybe_flush t =
  if Memtable.approximate_bytes t.mem > memtable_budget then flush_memtable t
  else Ok ()

(* ---- the public API ----------------------------------------------------------- *)

(* CPU work LevelDB does around the file system: skiplist insert/lookup,
   record encoding, version/snapshot bookkeeping.  Charged so that the FS
   share of db_bench latency matches the paper's proportions. *)
let put_cpu_cost = 800
let get_cpu_cost = 600

let put ?(sync = false) t ~key ~value =
  Sim.advance put_cpu_cost;
  let* () = Wal.put t.wal ~key ~value ~sync in
  Memtable.put t.mem key value;
  maybe_flush t

let delete ?(sync = false) t ~key =
  Sim.advance put_cpu_cost;
  let* () = Wal.delete t.wal ~key ~sync in
  Memtable.delete t.mem key;
  maybe_flush t

let flush t = flush_memtable t

let get t ~key =
  Sim.advance get_cpu_cost;
  match Memtable.find t.mem key with
  | Some (Memtable.Put v) -> Some v
  | Some Memtable.Tombstone -> None
  | None -> (
      (* L0 newest first, then L1 *)
      let rec try_l0 = function
        | [] -> `Miss
        | tbl :: rest -> (
            match Sstable.get tbl key with
            | Some v -> `Hit v
            | None -> try_l0 rest)
      in
      match try_l0 t.l0 with
      | `Hit (Some v) -> Some v
      | `Hit None -> None
      | `Miss -> (
          let covering =
            List.find_opt
              (fun tbl ->
                let lo, hi = Sstable.key_range tbl in
                lo <= key && key <= hi)
              t.l1
          in
          match covering with
          | None -> None
          | Some tbl -> (
              match Sstable.get tbl key with
              | Some (Some v) -> Some v
              | Some None | None -> None)))

(* All live keys in order (for scans / readseq). *)
let fold_all t f acc =
  let merged =
    merge_entries
      ([ entries_of_memtable t.mem ]
      @ List.map Sstable.entries t.l0
      @ [ List.concat_map Sstable.entries t.l1 ])
  in
  List.fold_left
    (fun acc (e : Sstable.entry) ->
      match e.Sstable.value with
      | Some v -> f acc e.Sstable.key v
      | None -> acc)
    acc merged

let close t =
  let* () = flush_memtable t in
  Wal.close t.wal

let compaction_count t = t.compactions
let level_sizes t = (List.length t.l0, List.length t.l1)
