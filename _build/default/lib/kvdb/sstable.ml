(* Immutable sorted string table.

   File layout:
     data block:  [klen u32][key][flag u8][vlen u32][value]*   (sorted keys)
     index block: [klen u32][key][offset u64]*                 (sparse, every
                                                                 16th entry)
     footer:      [index_off u64][index_len u64][count u64][magic u32]

   Readers keep the sparse index in memory: a get seeks to the greatest
   index key <= target and scans forward at most 16 entries. *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types

let magic = 0x5354424C (* "STBL" *)
let index_stride = 16

type entry = { key : string; value : string option (* None = tombstone *) }

let ( let* ) = Result.bind

(* ---- writer --------------------------------------------------------------- *)

let encode_entry b { key; value } =
  Buffer.add_int32_le b (Int32.of_int (String.length key));
  Buffer.add_string b key;
  (match value with
  | Some v ->
      Buffer.add_char b '\001';
      Buffer.add_int32_le b (Int32.of_int (String.length v));
      Buffer.add_string b v
  | None ->
      Buffer.add_char b '\000';
      Buffer.add_int32_le b 0l)

(* Write [entries] (sorted ascending, unique keys) to [path]. *)
let write fs path entries =
  let data = Buffer.create 4096 in
  let index = Buffer.create 256 in
  List.iteri
    (fun i e ->
      if i mod index_stride = 0 then begin
        Buffer.add_int32_le index (Int32.of_int (String.length e.key));
        Buffer.add_string index e.key;
        Buffer.add_int64_le index (Int64.of_int (Buffer.length data))
      end;
      encode_entry data e)
    entries;
  let index_off = Buffer.length data in
  let footer = Buffer.create 28 in
  Buffer.add_int64_le footer (Int64.of_int index_off);
  Buffer.add_int64_le footer (Int64.of_int (Buffer.length index));
  Buffer.add_int64_le footer (Int64.of_int (List.length entries));
  Buffer.add_int32_le footer (Int32.of_int magic);
  let* fd = V.openf fs path [ Ft.O_CREAT; Ft.O_WRONLY; Ft.O_TRUNC ] 0o644 in
  let* _ = V.write fs fd (Buffer.contents data) in
  let* _ = V.write fs fd (Buffer.contents index) in
  let* _ = V.write fs fd (Buffer.contents footer) in
  let* () = V.fsync fs fd in
  V.close fs fd

(* ---- reader --------------------------------------------------------------- *)

type t = {
  fs : V.fs;
  path : string;
  count : int;
  index : (string * int) array;  (* sparse: key -> data offset *)
  data_len : int;
  mutable smallest : string;
  mutable largest : string;
}

let u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let u64 s off = u32 s off lor (u32 s (off + 4) lsl 32)

let decode_entry s off =
  let klen = u32 s off in
  let key = String.sub s (off + 4) klen in
  let flag = Char.code s.[off + 4 + klen] in
  let vlen = u32 s (off + 5 + klen) in
  let value =
    if flag = 0 then None else Some (String.sub s (off + 9 + klen) vlen)
  in
  ({ key; value }, off + 9 + klen + vlen)

let read_range fs path ~off ~len =
  let* fd = V.openf fs path [ Ft.O_RDONLY ] 0 in
  let buf = Bytes.create len in
  let* n = V.pread fs fd ~off buf 0 len in
  let* () = V.close fs fd in
  if n <> len then Error Treasury.Errno.EIO
  else Ok (Bytes.unsafe_to_string buf)

let open_ fs path =
  let* st = V.stat fs path in
  let size = st.Ft.st_size in
  if size < 28 then Error Treasury.Errno.EIO
  else
    let* footer = read_range fs path ~off:(size - 28) ~len:28 in
    if u32 footer 24 <> magic then Error Treasury.Errno.EIO
    else begin
      let index_off = u64 footer 0 in
      let index_len = u64 footer 8 in
      let count = u64 footer 16 in
      let* index_raw = read_range fs path ~off:index_off ~len:index_len in
      let entries = ref [] in
      let off = ref 0 in
      while !off < index_len do
        let klen = u32 index_raw !off in
        let key = String.sub index_raw (!off + 4) klen in
        let data_off = u64 index_raw (!off + 4 + klen) in
        entries := (key, data_off) :: !entries;
        off := !off + 12 + klen
      done;
      let t =
        {
          fs;
          path;
          count;
          index = Array.of_list (List.rev !entries);
          data_len = index_off;
          smallest = "";
          largest = "";
        }
      in
      (if Array.length t.index > 0 then begin
         t.smallest <- fst t.index.(0);
         (* largest: decode the final stretch *)
         let last_off = snd t.index.(Array.length t.index - 1) in
         match read_range fs path ~off:last_off ~len:(t.data_len - last_off) with
         | Ok chunk ->
             let off = ref 0 in
             let last = ref t.smallest in
             while !off < String.length chunk do
               let e, next = decode_entry chunk !off in
               last := e.key;
               off := next
             done;
             t.largest <- !last
         | Error _ -> ()
       end);
      Ok t
    end

let count t = t.count
let key_range t = (t.smallest, t.largest)

(* Greatest sparse-index slot whose key <= target. *)
let index_floor t key =
  let lo = ref 0 and hi = ref (Array.length t.index - 1) in
  if Array.length t.index = 0 || fst t.index.(0) > key then None
  else begin
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if fst t.index.(mid) <= key then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let get t key =
  match index_floor t key with
  | None -> None
  | Some slot ->
      let start = snd t.index.(slot) in
      let stop =
        if slot + 1 < Array.length t.index then snd t.index.(slot + 1)
        else t.data_len
      in
      (match read_range t.fs t.path ~off:start ~len:(stop - start) with
      | Error _ -> None
      | Ok chunk ->
          let rec scan off =
            if off >= String.length chunk then None
            else
              let e, next = decode_entry chunk off in
              if e.key = key then Some e.value
              else if e.key > key then None
              else scan next
          in
          scan 0)

(* Stream every entry in key order. *)
let iter t f =
  match read_range t.fs t.path ~off:0 ~len:t.data_len with
  | Error _ -> ()
  | Ok chunk ->
      let off = ref 0 in
      while !off < String.length chunk do
        let e, next = decode_entry chunk !off in
        f e;
        off := next
      done

let entries t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc
