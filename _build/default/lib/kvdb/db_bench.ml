(* The LevelDB db_bench workloads of the paper's Table 7: 16-byte keys,
   100-byte values, average latency per operation (µs, simulated). *)

let key_of i = Printf.sprintf "%016d" i
let value_of i = String.init 100 (fun j -> Char.chr (((i * 131) + j) mod 26 + 97))

type op =
  | Write_sync
  | Write_seq
  | Write_random
  | Overwrite
  | Read_seq
  | Read_random
  | Read_hot
  | Delete_random

let op_name = function
  | Write_sync -> "Write sync."
  | Write_seq -> "Write seq."
  | Write_random -> "Write rand."
  | Overwrite -> "Overwrite."
  | Read_seq -> "Read seq."
  | Read_random -> "Read rand."
  | Read_hot -> "Read hot."
  | Delete_random -> "Delete rand."

let all_ops =
  [
    Write_sync;
    Write_seq;
    Write_random;
    Overwrite;
    Read_seq;
    Read_random;
    Read_hot;
    Delete_random;
  ]

let fail_on_error = function
  | Ok v -> v
  | Error e -> failwith ("db_bench: " ^ Treasury.Errno.to_string e)

(* Run one op type for [n] operations against a fresh database on [fs];
   returns average latency in µs of simulated time. *)
let run fs ~n op =
  let db = fail_on_error (Db.open_ fs "/dbbench") in
  let rng = Sim.Rng.create 0xDBL in
  (* reads/overwrites/deletes run against a pre-filled database *)
  (match op with
  | Read_seq | Read_random | Read_hot | Overwrite | Delete_random ->
      for i = 0 to n - 1 do
        fail_on_error (Db.put db ~key:(key_of i) ~value:(value_of i))
      done;
      (* push the fill into SSTables so reads exercise the file system *)
      fail_on_error (Db.flush db)
  | Write_sync | Write_seq | Write_random -> ());
  let t0 = Sim.now () in
  (match op with
  | Write_sync ->
      for i = 0 to n - 1 do
        fail_on_error (Db.put ~sync:true db ~key:(key_of i) ~value:(value_of i))
      done
  | Write_seq ->
      for i = 0 to n - 1 do
        fail_on_error (Db.put db ~key:(key_of i) ~value:(value_of i))
      done
  | Write_random ->
      for _ = 0 to n - 1 do
        let i = Sim.Rng.int rng (4 * n) in
        fail_on_error (Db.put db ~key:(key_of i) ~value:(value_of i))
      done
  | Overwrite ->
      for _ = 0 to n - 1 do
        let i = Sim.Rng.int rng n in
        fail_on_error (Db.put db ~key:(key_of i) ~value:(value_of (i + 1)))
      done
  | Read_seq ->
      let count = ref 0 in
      while !count < n do
        ignore
          (Db.fold_all db
             (fun () _ _ ->
               (* per-entry iterator work (decode, comparator, user code) *)
               Sim.advance 600;
               incr count)
             ())
      done
  | Read_random ->
      for _ = 0 to n - 1 do
        ignore (Db.get db ~key:(key_of (Sim.Rng.int rng n)))
      done
  | Read_hot ->
      (* 1% of the key space *)
      let hot = max 1 (n / 100) in
      for _ = 0 to n - 1 do
        ignore (Db.get db ~key:(key_of (Sim.Rng.int rng hot)))
      done
  | Delete_random ->
      for _ = 0 to n - 1 do
        fail_on_error (Db.delete db ~key:(key_of (Sim.Rng.int rng n)))
      done);
  let elapsed = Sim.now () - t0 in
  fail_on_error (Db.close db);
  float_of_int elapsed /. float_of_int n /. 1000.0
