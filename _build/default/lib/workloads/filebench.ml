(* Filebench-style macro workloads: the four personalities of the paper's
   Table 6 / Figure 9 (fileserver, webserver, webproxy, varmail).

   The file-set parameters are scaled down from the paper's (10,000 × 128 KB
   would not fit a laptop-scale simulation) but the *ratios* that drive the
   result — directory width, read/write mix, whole-file vs append access —
   are preserved; DESIGN.md records the scaling. *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types

let ok = Runner.ok

type personality = {
  pname : string;
  nfiles : int;
  dir_width : int;  (* 0 = all files in one flat directory *)
  file_size : int;
  io_size : int;
  run : ?dir_width:int -> Fslab.system -> nthreads:int -> ops:int -> Runner.result;
}

(* Build the file tree: [dir_width] children per directory.  A very large
   width (>= nfiles) puts every file in one directory (webproxy/varmail). *)
let file_paths ~nfiles ~dir_width =
  if dir_width = 0 || dir_width >= nfiles then
    List.init nfiles (fun i -> Printf.sprintf "/bigdir/f%05d" i)
  else begin
    (* nested tree of the given width *)
    let rec path_of i =
      if i < dir_width then Printf.sprintf "/t/d%d" i
      else path_of (i / dir_width) ^ Printf.sprintf "/d%d" (i mod dir_width)
    in
    List.init nfiles (fun i ->
        path_of (i mod max 1 (nfiles / dir_width)) ^ Printf.sprintf "/f%05d" i)
  end

let build_tree fs paths ~file_size =
  let made = Hashtbl.create 64 in
  let chunk = String.make (min file_size 4096) 'f' in
  List.iter
    (fun p ->
      let dir = Treasury.Pathx.dirname p in
      if not (Hashtbl.mem made dir) then begin
        ignore (V.mkdir_p fs dir 0o755);
        Hashtbl.replace made dir ()
      end;
      let fd = ok (V.openf fs p [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644) in
      let remaining = ref file_size in
      while !remaining > 0 do
        let n = min !remaining (String.length chunk) in
        ignore (ok (V.write fs fd (String.sub chunk 0 n)));
        remaining := !remaining - n
      done;
      ok (V.close fs fd))
    paths

type ctx = {
  inst : Fslab.instance;
  paths : string array;
  file_size : int;
  io_size : int;
}

let setup sys ~nfiles ~dir_width ~file_size ~io_size () =
  let inst = Fslab.make ~pages:131072 sys in
  let paths = file_paths ~nfiles ~dir_width in
  build_tree inst.Fslab.fs paths ~file_size;
  { inst; paths = Array.of_list paths; file_size; io_size }

let read_whole fs path buf =
  match V.openf fs path [ Ft.O_RDONLY ] 0 with
  | Error _ -> ()
  | Ok fd ->
      let rec loop () =
        match V.read fs fd buf 0 (Bytes.length buf) with
        | Ok n when n > 0 -> loop ()
        | Ok _ | Error _ -> ()
      in
      loop ();
      ignore (V.close fs fd)

let append fs path data =
  match V.openf fs path [ Ft.O_WRONLY; Ft.O_APPEND ] 0 with
  | Error _ -> ()
  | Ok fd ->
      ignore (V.write fs fd data);
      ignore (V.close fs fd)

(* fileserver: create/write, append, read-whole, delete, stat — R:W 1:2 *)
let fileserver_run ?(dir_width = 20) sys ~nthreads ~ops =
  let nfiles = 400 and file_size = 16384 and io_size = 16384 in
  Runner.run ~nthreads ~ops
    ~setup:(setup sys ~nfiles ~dir_width ~file_size ~io_size)
    ~worker:(fun ctx ~tid ->
      let fs = ctx.inst.Fslab.fs in
      let rng = Sim.Rng.create (Int64.of_int (tid + 13)) in
      let buf = Bytes.create ctx.io_size in
      let data = String.make ctx.io_size 'w' in
      fun ~i ->
        ignore i;
        let p = ctx.paths.(Sim.Rng.int rng (Array.length ctx.paths)) in
        match Sim.Rng.int rng 6 with
        | 0 ->
            (* delete + recreate with a full write *)
            ignore (V.unlink fs p);
            ignore (V.write_file fs p ~mode:0o644 data)
        | 1 | 2 -> append fs p (String.sub data 0 (ctx.io_size / 2))
        | 3 | 4 -> read_whole fs p buf
        | _ -> ignore (V.stat fs p))
    ()

(* webserver: 10 reads per log append — R:W 10:1 *)
let webserver_run ?(dir_width = 20) sys ~nthreads ~ops =
  let nfiles = 200 and file_size = 16384 and io_size = 16384 in
  Runner.run ~nthreads ~ops
    ~setup:(fun () ->
      let ctx = setup sys ~nfiles ~dir_width ~file_size ~io_size () in
      ignore (V.write_file ctx.inst.Fslab.fs "/weblog" ~mode:0o644 "");
      ctx)
    ~worker:(fun ctx ~tid ->
      let fs = ctx.inst.Fslab.fs in
      let rng = Sim.Rng.create (Int64.of_int (tid + 31)) in
      let buf = Bytes.create ctx.io_size in
      fun ~i ->
        ignore i;
        for _ = 1 to 10 do
          let p = ctx.paths.(Sim.Rng.int rng (Array.length ctx.paths)) in
          read_whole fs p buf
        done;
        append fs "/weblog" (String.make 512 'l'))
    ()

(* webproxy: create+write then 5 re-reads, everything in one huge flat
   directory (dir_width 1,000,000 in the paper) *)
let webproxy_run ?(dir_width = 1_000_000) sys ~nthreads ~ops =
  let nfiles = 400 and file_size = 16384 and io_size = 16384 in
  Runner.run ~nthreads ~ops
    ~setup:(setup sys ~nfiles ~dir_width ~file_size ~io_size)
    ~worker:(fun ctx ~tid ->
      let fs = ctx.inst.Fslab.fs in
      let rng = Sim.Rng.create (Int64.of_int (tid + 47)) in
      let buf = Bytes.create ctx.io_size in
      let data = String.make ctx.io_size 'p' in
      fun ~i ->
        ignore i;
        let p = ctx.paths.(Sim.Rng.int rng (Array.length ctx.paths)) in
        ignore (V.unlink fs p);
        ignore (V.write_file fs p ~mode:0o644 data);
        for _ = 1 to 5 do
          read_whole fs p buf
        done)
    ()

(* varmail: mail-server pattern — create+fsync, read, delete; one flat
   directory *)
let varmail_run ?(dir_width = 1_000_000) sys ~nthreads ~ops =
  let nfiles = 200 and file_size = 16384 and io_size = 16384 in
  Runner.run ~nthreads ~ops
    ~setup:(setup sys ~nfiles ~dir_width ~file_size ~io_size)
    ~worker:(fun ctx ~tid ->
      let fs = ctx.inst.Fslab.fs in
      let rng = Sim.Rng.create (Int64.of_int (tid + 59)) in
      let buf = Bytes.create ctx.io_size in
      let data = String.make (ctx.io_size / 2) 'm' in
      fun ~i ->
        ignore i;
        let p = ctx.paths.(Sim.Rng.int rng (Array.length ctx.paths)) in
        match Sim.Rng.int rng 4 with
        | 0 ->
            (* deliver: create + write + fsync *)
            ignore (V.unlink fs p);
            (match V.openf fs p [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644 with
            | Ok fd ->
                ignore (V.write fs fd data);
                ignore (V.fsync fs fd);
                ignore (V.close fs fd)
            | Error _ -> ())
        | 1 ->
            (* reread after append + fsync *)
            append fs p data;
            read_whole fs p buf
        | 2 -> read_whole fs p buf
        | _ -> ignore (V.stat fs p))
    ()

let fileserver =
  {
    pname = "fileserver";
    nfiles = 10_000;
    dir_width = 20;
    file_size = 128 * 1024;
    io_size = 16 * 1024;
    run = fileserver_run;
  }

let webserver =
  {
    pname = "webserver";
    nfiles = 1_000;
    dir_width = 20;
    file_size = 16 * 1024;
    io_size = 512;
    run = webserver_run;
  }

let webproxy =
  {
    pname = "webproxy";
    nfiles = 10_000;
    dir_width = 1_000_000;
    file_size = 16 * 1024;
    io_size = 16 * 1024;
    run = webproxy_run;
  }

let varmail =
  {
    pname = "varmail";
    nfiles = 1_000;
    dir_width = 1_000_000;
    file_size = 16 * 1024;
    io_size = 16 * 1024;
    run = varmail_run;
  }

let all = [ fileserver; webserver; webproxy; varmail ]
