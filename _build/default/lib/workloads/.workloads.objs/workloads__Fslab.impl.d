lib/workloads/fslab.ml: Baselines Mpk Nvm Treasury Zofs
