lib/workloads/fxmark.ml: Bytes Fslab Int64 List Printf Runner Sim String Treasury
