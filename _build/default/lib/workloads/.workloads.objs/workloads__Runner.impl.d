lib/workloads/runner.ml: Printf Sim Treasury
