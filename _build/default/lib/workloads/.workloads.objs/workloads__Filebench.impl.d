lib/workloads/filebench.ml: Array Bytes Fslab Hashtbl Int64 List Printf Runner Sim String Treasury
