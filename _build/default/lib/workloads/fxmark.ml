(* FxMark-style micro-benchmarks (Min et al., ATC'16), the nine workloads of
   the paper's Figure 7.  Every data operation accesses files in 4 KB units.

   Naming: D=data/M=metadata, R=read/W=write, B=block, A=append, O=overwrite,
   C=create, U=unlink, R=rename; final letter = contention level (L=low:
   private files/dirs, M=medium: shared file, H=high: same block). *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types

let ok = Runner.ok
let block = String.make 4096 'd'

type workload = {
  wname : string;
  figure : string;  (* which Figure 7 panel *)
  run : Fslab.system -> nthreads:int -> ops:int -> Runner.result;
}

(* ---- data reads --------------------------------------------------------- *)

let private_file_path tid = Printf.sprintf "/f%d" tid

let drbl =
  let run sys ~nthreads ~ops =
    Runner.run ~nthreads ~ops
      ~setup:(fun () ->
        let inst = Fslab.make sys in
        for tid = 0 to nthreads - 1 do
          let fd =
            ok (V.openf inst.Fslab.fs (private_file_path tid)
                  [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644)
          in
          for _ = 1 to 64 do
            ignore (ok (V.write inst.Fslab.fs fd block))
          done;
          ok (V.close inst.Fslab.fs fd)
        done;
        inst)
      ~worker:(fun inst ~tid ->
        let fs = inst.Fslab.fs in
        let fd = ok (V.openf fs (private_file_path tid) [ Ft.O_RDONLY ] 0) in
        let buf = Bytes.create 4096 in
        let rng = Sim.Rng.create (Int64.of_int (tid + 1)) in
        fun ~i ->
          ignore i;
          let b = Sim.Rng.int rng 64 in
          ignore (ok (V.pread fs fd ~off:(b * 4096) buf 0 4096)))
      ()
  in
  { wname = "DRBL"; figure = "7(a)"; run }

let shared_read_setup sys nblocks =
  let inst = Fslab.make sys in
  let fd = ok (V.openf inst.Fslab.fs "/shared" [ Ft.O_CREAT; Ft.O_WRONLY ] 0o666) in
  for _ = 1 to nblocks do
    ignore (ok (V.write inst.Fslab.fs fd block))
  done;
  ok (V.close inst.Fslab.fs fd);
  inst

let drbm =
  let run sys ~nthreads ~ops =
    Runner.run ~nthreads ~ops
      ~setup:(fun () -> shared_read_setup sys 256)
      ~worker:(fun inst ~tid ->
        let fs = inst.Fslab.fs in
        let fd = ok (V.openf fs "/shared" [ Ft.O_RDONLY ] 0) in
        let buf = Bytes.create 4096 in
        let rng = Sim.Rng.create (Int64.of_int (tid + 77)) in
        fun ~i ->
          ignore i;
          let b = Sim.Rng.int rng 256 in
          ignore (ok (V.pread fs fd ~off:(b * 4096) buf 0 4096)))
      ()
  in
  { wname = "DRBM"; figure = "7(b)"; run }

let drbh =
  let run sys ~nthreads ~ops =
    Runner.run ~nthreads ~ops
      ~setup:(fun () -> shared_read_setup sys 1)
      ~worker:(fun inst ~tid ->
        ignore tid;
        let fs = inst.Fslab.fs in
        let fd = ok (V.openf fs "/shared" [ Ft.O_RDONLY ] 0) in
        let buf = Bytes.create 4096 in
        fun ~i ->
          ignore i;
          ignore (ok (V.pread fs fd ~off:0 buf 0 4096)))
      ()
  in
  { wname = "DRBH"; figure = "7(c)"; run }

(* ---- data writes --------------------------------------------------------- *)

let dwal =
  let run sys ~nthreads ~ops =
    Runner.run ~nthreads ~ops
      ~setup:(fun () ->
        let inst = Fslab.make sys in
        for tid = 0 to nthreads - 1 do
          ok
            (V.write_file inst.Fslab.fs (private_file_path tid) ~mode:0o644 "")
        done;
        inst)
      ~worker:(fun inst ~tid ->
        let fs = inst.Fslab.fs in
        let fd =
          ok (V.openf fs (private_file_path tid) [ Ft.O_WRONLY; Ft.O_APPEND ] 0)
        in
        fun ~i ->
          ignore i;
          ignore (ok (V.write fs fd block)))
      ()
  in
  { wname = "DWAL"; figure = "7(d)"; run }

let dwol =
  let run sys ~nthreads ~ops =
    Runner.run ~nthreads ~ops
      ~setup:(fun () ->
        let inst = Fslab.make sys in
        for tid = 0 to nthreads - 1 do
          ok (V.write_file inst.Fslab.fs (private_file_path tid) ~mode:0o644 block)
        done;
        inst)
      ~worker:(fun inst ~tid ->
        let fs = inst.Fslab.fs in
        let fd = ok (V.openf fs (private_file_path tid) [ Ft.O_WRONLY ] 0) in
        fun ~i ->
          ignore i;
          ignore (ok (V.pwrite fs fd ~off:0 block)))
      ()
  in
  { wname = "DWOL"; figure = "7(e)"; run }

let dwom =
  let run sys ~nthreads ~ops =
    Runner.run ~nthreads ~ops
      ~setup:(fun () ->
        let inst = Fslab.make sys in
        let fd =
          ok (V.openf inst.Fslab.fs "/shared" [ Ft.O_CREAT; Ft.O_WRONLY ] 0o666)
        in
        for _ = 1 to 64 do
          ignore (ok (V.write inst.Fslab.fs fd block))
        done;
        ok (V.close inst.Fslab.fs fd);
        inst)
      ~worker:(fun inst ~tid ->
        let fs = inst.Fslab.fs in
        let fd = ok (V.openf fs "/shared" [ Ft.O_WRONLY ] 0) in
        fun ~i ->
          ignore i;
          (* each thread overwrites its own block of the shared file *)
          ignore (ok (V.pwrite fs fd ~off:(tid mod 64 * 4096) block)))
      ()
  in
  { wname = "DWOM"; figure = "7(f)"; run }

(* ---- metadata ------------------------------------------------------------- *)

let private_dir tid = Printf.sprintf "/d%d" tid

let mwcl =
  let run sys ~nthreads ~ops =
    Runner.run ~nthreads ~ops
      ~setup:(fun () ->
        let inst = Fslab.make sys in
        for tid = 0 to nthreads - 1 do
          ok (V.mkdir inst.Fslab.fs (private_dir tid) 0o755)
        done;
        inst)
      ~worker:(fun inst ~tid ->
        let fs = inst.Fslab.fs in
        fun ~i ->
          let path = Printf.sprintf "%s/c%d" (private_dir tid) i in
          let fd = ok (V.openf fs path [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644) in
          ok (V.close fs fd))
      ()
  in
  { wname = "MWCL"; figure = "7(g)"; run }

let mwul =
  let run sys ~nthreads ~ops =
    Runner.run ~nthreads ~ops
      ~setup:(fun () ->
        let inst = Fslab.make sys in
        for tid = 0 to nthreads - 1 do
          ok (V.mkdir inst.Fslab.fs (private_dir tid) 0o755);
          for i = 0 to ops - 1 do
            ok
              (V.write_file inst.Fslab.fs
                 (Printf.sprintf "%s/u%d" (private_dir tid) i)
                 ~mode:0o644 "")
          done
        done;
        inst)
      ~worker:(fun inst ~tid ->
        let fs = inst.Fslab.fs in
        fun ~i ->
          ok (V.unlink fs (Printf.sprintf "%s/u%d" (private_dir tid) i)))
      ()
  in
  { wname = "MWUL"; figure = "7(h)"; run }

let mwrl =
  let run sys ~nthreads ~ops =
    Runner.run ~nthreads ~ops
      ~setup:(fun () ->
        let inst = Fslab.make sys in
        for tid = 0 to nthreads - 1 do
          ok (V.mkdir inst.Fslab.fs (private_dir tid) 0o755);
          for i = 0 to ops - 1 do
            ok
              (V.write_file inst.Fslab.fs
                 (Printf.sprintf "%s/r%d" (private_dir tid) i)
                 ~mode:0o644 "")
          done
        done;
        inst)
      ~worker:(fun inst ~tid ->
        let fs = inst.Fslab.fs in
        fun ~i ->
          ok
            (V.rename fs
               (Printf.sprintf "%s/r%d" (private_dir tid) i)
               (Printf.sprintf "%s/rn%d" (private_dir tid) i)))
      ()
  in
  { wname = "MWRL"; figure = "7(i)"; run }

let all =
  [ drbl; drbm; drbh; dwal; dwol; dwom; mwcl; mwul; mwrl ]

let find name = List.find (fun w -> w.wname = name) all
