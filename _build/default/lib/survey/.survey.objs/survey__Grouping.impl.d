lib/survey/grouping.ml: Array Fsl Hashtbl List Option
