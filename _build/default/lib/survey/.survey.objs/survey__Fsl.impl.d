lib/survey/fsl.ml: Array Hashtbl List Option Sim
