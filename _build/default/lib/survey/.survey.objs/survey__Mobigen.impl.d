lib/survey/mobigen.ml: Fun List Printf Sim
