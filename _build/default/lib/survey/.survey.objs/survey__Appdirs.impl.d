lib/survey/appdirs.ml: Hashtbl List Printf Result String Treasury
