(* Synthetic FSL Homes snapshot (paper §2.3, Table 4).

   The real trace (15 home directories, 726,751 files) is not
   redistributable here, so we synthesize a snapshot whose type × permission
   marginals match Table 4 exactly, with a plausible directory hierarchy and
   a heavy-tailed size distribution.  The grouping analysis (Grouping) then
   runs on the synthetic snapshot the same way the paper's ran on the real
   one. *)

type kind = Regular | Symlink | Directory

type file = {
  id : int;
  parent : int;  (* id of the parent directory; roots have parent = -1 *)
  kind : kind;
  perm : int;
  uid : int;
  gid : int;
  size : int;
}

(* Table 4: number of files per (type, permission). *)
let regular_marginals =
  [ (0o644, 538_538); (0o600, 105_226); (0o666, 233); (0o444, 3_313);
    (0o660, 342); (0o640, 921); (0o664, 110); (0o440, 8) ]

let symlink_marginals = [ (0o644, 18); (0o666, 6_468) ]

let directory_marginals =
  [ (0o644, 65_127); (0o600, 4_021); (0o666, 927); (0o444, 1_099);
    (0o660, 276); (0o640, 33); (0o664, 91) ]

let n_homes = 15

let total_files =
  List.fold_left (fun a (_, n) -> a + n) 0
    (regular_marginals @ symlink_marginals @ directory_marginals)

(* heavy-tailed size: most files are small, a few are huge *)
let draw_size rng =
  let r = Sim.Rng.int rng 1000 in
  if r < 500 then Sim.Rng.int rng 4096
  else if r < 850 then 4096 + Sim.Rng.int rng 65536
  else if r < 990 then 65536 + Sim.Rng.int rng 4_000_000
  else 4_000_000 + Sim.Rng.int rng 400_000_000

(* Build the snapshot.  Construction principle (what the paper observed):
   files cluster by permission — a file almost always sits in a directory of
   its own rw-permission class (.ssh holds the 600s, public_html the 644s),
   so groups are few and large.  Dirs occasionally land under a
   different-class parent (starting a group); a small fraction of files are
   placed off-class and become (mostly single-file) groups of their own.
   One home is much bigger than the rest, giving the paper's ~1/3-of-all-
   files largest group. *)
let generate ?(seed = 0xF51L) () =
  let rng = Sim.Rng.create seed in
  let files = ref [] in
  let next_id = ref 0 in
  let add ~parent ~kind ~perm ~uid ~gid ~size =
    let id = !next_id in
    incr next_id;
    files := { id; parent; kind; perm; uid; gid; size } :: !files;
    id
  in
  let class_of p = p land 0o666 in
  (* skewed home choice: home 0 receives ~35% of everything *)
  let pick_home () =
    if Sim.Rng.int rng 100 < 35 then 0 else Sim.Rng.int rng n_homes
  in
  (* home roots, all 644-class *)
  let home_uids = Array.init n_homes (fun h -> 1000 + h) in
  let roots =
    Array.init n_homes (fun h ->
        add ~parent:(-1) ~kind:Directory ~perm:0o644 ~uid:home_uids.(h)
          ~gid:home_uids.(h) ~size:0)
  in
  (* (home, perm class) -> candidate parent dirs of that class (capped) *)
  let dirs_by_class : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun h root ->
        Hashtbl.replace dirs_by_class (h, 0o644) (ref [ root ]))
    roots;
  let any_dir h =
    (* any directory of the home, weighted towards the dominant class *)
    let classes =
      Hashtbl.fold (fun (h', c) l acc -> if h' = h then (c, l) :: acc else acc)
        dirs_by_class []
    in
    match classes with
    | [] -> roots.(h)
    | _ ->
        let c, l = List.nth classes (Sim.Rng.int rng (List.length classes)) in
        ignore c;
        List.nth !l (Sim.Rng.int rng (List.length !l))
  in
  let class_dir h cls =
    match Hashtbl.find_opt dirs_by_class (h, cls) with
    | Some l when !l <> [] -> Some (List.nth !l (Sim.Rng.int rng (List.length !l)))
    | _ -> None
  in
  let note_dir h cls id =
    match Hashtbl.find_opt dirs_by_class (h, cls) with
    | Some l -> if List.length !l < 400 then l := id :: !l
    | None -> Hashtbl.replace dirs_by_class (h, cls) (ref [ id ])
  in
  (* directories: 97% under a same-class parent *)
  List.iter
    (fun (perm, count) ->
      let cls = class_of perm in
      for _ = 1 to count - (if perm = 0o644 then n_homes else 0) do
        let h = pick_home () in
        let parent =
          if Sim.Rng.int rng 1000 < 970 then
            match class_dir h cls with Some d -> d | None -> any_dir h
          else any_dir h
        in
        let id =
          add ~parent ~kind:Directory ~perm ~uid:home_uids.(h)
            ~gid:home_uids.(h) ~size:0
        in
        note_dir h cls id
      done)
    directory_marginals;
  (* files and symlinks: 99.7% under a same-class parent *)
  let place marginals kind =
    List.iter
      (fun (perm, count) ->
        let cls = class_of perm in
        for _ = 1 to count do
          let h = pick_home () in
          let parent =
            if Sim.Rng.int rng 1000 < 997 then
              match class_dir h cls with Some d -> d | None -> any_dir h
            else any_dir h
          in
          let size = if kind = Regular then draw_size rng else 16 in
          ignore
            (add ~parent ~kind ~perm ~uid:home_uids.(h) ~gid:home_uids.(h) ~size)
        done)
      marginals
  in
  place regular_marginals Regular;
  place symlink_marginals Symlink;
  Array.of_list (List.rev !files)

(* Marginals of a snapshot, for verifying against Table 4. *)
let marginals files =
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun f ->
      let key = (f.kind, f.perm) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    files;
  tbl

let count_kind files k =
  Array.fold_left (fun a f -> if f.kind = k then a + 1 else a) 0 files
