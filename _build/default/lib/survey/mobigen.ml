(* Synthetic MobiGen-style smartphone syscall traces (paper §2.3): two
   2-minute I/O traces.  The Facebook trace has 64,282 file-system calls and
   no chmod/chown; the Twitter trace has 25,306 calls including exactly 16
   chmods, used in a fixed shadow-file pattern: create with 600, write,
   chmod to 660, rename over the real file. *)

type syscall =
  | Open of string
  | Read of string
  | Write of string
  | Close of string
  | Create of string * int
  | Chmod of string * int
  | Chown of string * int * int
  | Rename of string * string
  | Unlink of string
  | Stat of string

let syscall_name = function
  | Open _ -> "open"
  | Read _ -> "read"
  | Write _ -> "write"
  | Close _ -> "close"
  | Create _ -> "create"
  | Chmod _ -> "chmod"
  | Chown _ -> "chown"
  | Rename _ -> "rename"
  | Unlink _ -> "unlink"
  | Stat _ -> "stat"

let background_ops rng i =
  let f = Printf.sprintf "/data/cache/f%d" (i mod 500) in
  match Sim.Rng.int rng 5 with
  | 0 -> Open f
  | 1 -> Read f
  | 2 -> Write f
  | 3 -> Close f
  | _ -> Stat f

let shadow_file_pattern db =
  [
    Create (db ^ ".shadow", 0o600);
    Write (db ^ ".shadow");
    Write (db ^ ".shadow");
    Chmod (db ^ ".shadow", 0o660);
    Rename (db ^ ".shadow", db);
  ]

let facebook ?(seed = 0xFBL) () =
  let rng = Sim.Rng.create seed in
  List.init 64_282 (fun i -> background_ops rng i)

let twitter ?(seed = 0x7817L) () =
  let rng = Sim.Rng.create seed in
  (* 16 chmods = 16 shadow-file updates of the preferences database *)
  let patterns =
    List.concat_map
      (fun i -> shadow_file_pattern (Printf.sprintf "/data/prefs%d.db" (i mod 4)))
      (List.init 16 Fun.id)
  in
  let background = List.init (25_306 - List.length patterns) (fun i -> background_ops rng i) in
  (* interleave the patterns roughly evenly *)
  let rec weave bg pats acc =
    match (bg, pats) with
    | [], rest -> List.rev acc @ List.concat rest
    | rest, [] -> List.rev acc @ rest
    | _, p :: prest ->
        let chunk_len = 25_306 / 17 in
        let rec take n l acc' =
          if n = 0 then (List.rev acc', l)
          else
            match l with
            | [] -> (List.rev acc', [])
            | x :: r -> take (n - 1) r (x :: acc')
        in
        let chunk, bg_rest = take chunk_len bg [] in
        weave bg_rest prest (List.rev_append p (List.rev_append chunk acc))
  in
  weave background
    (List.init 16 (fun i ->
         let rec take n l = if n = 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r in
         take 5 (List.filteri (fun j _ -> j >= i * 5) patterns)))
    []

(* ---- the analysis tool --------------------------------------------------------- *)

type counts = {
  total : int;
  chmods : int;
  chowns : int;
  shadow_patterns : int;  (* complete create→write→chmod→rename sequences *)
}

let analyze trace =
  let total = List.length trace in
  let chmods = List.length (List.filter (function Chmod _ -> true | _ -> false) trace) in
  let chowns = List.length (List.filter (function Chown _ -> true | _ -> false) trace) in
  (* detect shadow-file patterns: a chmod on a path later renamed away *)
  let chmod_paths =
    List.filter_map (function Chmod (p, _) -> Some p | _ -> None) trace
  in
  let renamed =
    List.filter_map (function Rename (src, _) -> Some src | _ -> None) trace
  in
  let shadow_patterns =
    List.length (List.filter (fun p -> List.mem p renamed) chmod_paths)
  in
  { total; chmods; chowns; shadow_patterns }
