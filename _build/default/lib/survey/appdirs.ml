(* Application data-directory survey (paper §2.3, Table 3).

   [populate_*] build data directories shaped like the paper's MySQL,
   PostgreSQL and DokuWiki installations on any Vfs file system (file counts
   per permission class match the paper; file sizes are scaled down —
   DESIGN.md records the scaling).  [scan] is the survey tool itself: it
   walks a tree and aggregates (type, permission, uid/gid) → (#files,
   bytes). *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types

let ( let* ) = Result.bind

type row = {
  r_system : string;
  r_kind : Ft.file_kind;
  r_perm : int;
  r_uid : int;
  r_gid : int;
  mutable r_count : int;
  mutable r_bytes : int;
}

(* ---- generators --------------------------------------------------------------- *)

let write_n fs dir ~prefix ~count ~mode ~size =
  let chunk = String.make (min size 4096) 'd' in
  let rec files i =
    if i > count then Ok ()
    else begin
      let path = Printf.sprintf "%s/%s%04d" dir prefix i in
      let* fd = V.openf fs path [ Ft.O_CREAT; Ft.O_WRONLY ] mode in
      let rec fill remaining =
        if remaining <= 0 then Ok ()
        else
          let* _ = V.write fs fd (String.sub chunk 0 (min remaining 4096)) in
          fill (remaining - 4096)
      in
      let* () = fill size in
      let* () = V.close fs fd in
      files (i + 1)
    end
  in
  files 1

(* MySQL: 6 dirs 750, 358 regular 640 (the databases), 1 root-owned 644
   flag file. *)
let populate_mysql fs root =
  let* () = V.mkdir_p fs root 0o750 in
  let rec dirs i =
    if i > 5 then Ok ()
    else
      let* () = V.mkdir fs (Printf.sprintf "%s/db%d" root i) 0o750 in
      dirs (i + 1)
  in
  let* () = dirs 1 in
  let rec spread i =
    if i > 358 then Ok ()
    else begin
      let dir = Printf.sprintf "%s/db%d" root ((i mod 5) + 1) in
      let path = Printf.sprintf "%s/table%04d.ibd" dir i in
      let* fd = V.openf fs path [ Ft.O_CREAT; Ft.O_WRONLY ] 0o640 in
      let* _ = V.write fs fd (String.make 1024 'm') in
      let* () = V.close fs fd in
      spread (i + 1)
    end
  in
  let* () = spread 1 in
  (* the root-owned debian flag file (empty) *)
  let* fd = V.openf fs (root ^ "/debian-5.7.flag") [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644 in
  V.close fs fd

(* PostgreSQL: 28 dirs 700, 1807 regular 600. *)
let populate_postgres fs root =
  let* () = V.mkdir_p fs root 0o700 in
  let rec dirs i =
    if i > 27 then Ok ()
    else
      let* () = V.mkdir fs (Printf.sprintf "%s/base%02d" root i) 0o700 in
      dirs (i + 1)
  in
  let* () = dirs 1 in
  let rec spread i =
    if i > 1807 then Ok ()
    else begin
      let dir = Printf.sprintf "%s/base%02d" root ((i mod 27) + 1) in
      let path = Printf.sprintf "%s/rel%05d" dir i in
      let* fd = V.openf fs path [ Ft.O_CREAT; Ft.O_WRONLY ] 0o600 in
      let* _ = V.write fs fd (String.make 512 'p') in
      let* () = V.close fs fd in
      spread (i + 1)
    end
  in
  spread 1

(* DokuWiki: 1035 dirs 755 and 19941 regular 644 in the paper; generated at
   [scale] (default 1/10). *)
let populate_dokuwiki ?(scale = 10) fs root =
  let ndirs = 1035 / scale and nfiles = 19941 / scale in
  let* () = V.mkdir_p fs root 0o755 in
  let rec dirs i =
    if i > ndirs then Ok ()
    else
      let* () = V.mkdir fs (Printf.sprintf "%s/ns%04d" root i) 0o755 in
      dirs (i + 1)
  in
  let* () = dirs 1 in
  let rec spread i =
    if i > nfiles then Ok ()
    else begin
      let dir = Printf.sprintf "%s/ns%04d" root ((i mod ndirs) + 1) in
      let* () =
        write_n fs dir ~prefix:(Printf.sprintf "page%d_" i) ~count:1 ~mode:0o644
          ~size:512
      in
      spread (i + 1)
    end
  in
  spread 1

(* ---- the survey tool ------------------------------------------------------------ *)

let scan fs ~system root =
  let rows : (Ft.file_kind * int * int * int, row) Hashtbl.t = Hashtbl.create 16 in
  let record st =
    let key = (st.Ft.st_kind, st.Ft.st_mode, st.Ft.st_uid, st.Ft.st_gid) in
    let r =
      match Hashtbl.find_opt rows key with
      | Some r -> r
      | None ->
          let r =
            {
              r_system = system;
              r_kind = st.Ft.st_kind;
              r_perm = st.Ft.st_mode;
              r_uid = st.Ft.st_uid;
              r_gid = st.Ft.st_gid;
              r_count = 0;
              r_bytes = 0;
            }
          in
          Hashtbl.replace rows key r;
          r
    in
    r.r_count <- r.r_count + 1;
    r.r_bytes <- r.r_bytes + (if st.Ft.st_kind = Ft.Regular then st.Ft.st_size else 0)
  in
  let rec walk path =
    match V.lstat fs path with
    | Error _ -> ()
    | Ok st ->
        record st;
        if st.Ft.st_kind = Ft.Directory then
          match V.readdir fs path with
          | Error _ -> ()
          | Ok entries ->
              List.iter
                (fun d ->
                  walk
                    (if path = "/" then "/" ^ d.Ft.d_name
                     else path ^ "/" ^ d.Ft.d_name))
                entries
  in
  walk root;
  Hashtbl.fold (fun _ r acc -> r :: acc) rows []
  |> List.sort (fun a b ->
         compare
           (a.r_kind <> Ft.Directory, -a.r_count)
           (b.r_kind <> Ft.Directory, -b.r_count))
