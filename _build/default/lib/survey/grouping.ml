(* The paper's file-grouping analysis (§2.3, bottom of Table 4).

   Rule: "If a file has the same permission as its parent, then it stays in
   the same group as its parent.  Otherwise, a new group is created, and the
   file is put into the new group."  Groups are formed top-down starting
   from a single group containing the FS root.  "Permission" means the
   rw-permission class plus owner and group (execute bits ignored, §2.3). *)

type group_stats = {
  g_perm : int;  (* representative permission class *)
  g_files : int;
  g_bytes : int;
}

type summary = {
  n_groups : int;
  groups : group_stats list;
  largest_files : int;
  largest_bytes : int;
  single_file_groups : int;
  single_file_total : int;  (* files living in single-file groups *)
  by_perm : (int * int * int * int * int) list;
      (** perm, #groups, min bytes, avg bytes, max bytes *)
}

let perm_class perm = perm land 0o666

let key (f : Fsl.file) = (perm_class f.Fsl.perm, f.Fsl.uid, f.Fsl.gid)

let analyze (files : Fsl.file array) =
  let by_id = Hashtbl.create (Array.length files) in
  Array.iter (fun f -> Hashtbl.replace by_id f.Fsl.id f) files;
  let children = Hashtbl.create 1024 in
  Array.iter
    (fun f ->
      if f.Fsl.parent >= 0 then
        Hashtbl.replace children f.Fsl.parent
          (f :: Option.value ~default:[] (Hashtbl.find_opt children f.Fsl.parent)))
    files;
  (* assign group ids top-down *)
  let group_of = Hashtbl.create (Array.length files) in
  let next_group = ref 0 in
  let fresh_group () =
    let g = !next_group in
    incr next_group;
    g
  in
  let rec assign f parent_group =
    let g =
      match parent_group with
      | Some (pkey, pg) when pkey = key f -> pg
      | _ -> fresh_group ()
    in
    Hashtbl.replace group_of f.Fsl.id g;
    if f.Fsl.kind = Fsl.Directory then
      List.iter
        (fun child -> assign child (Some (key f, g)))
        (Option.value ~default:[] (Hashtbl.find_opt children f.Fsl.id))
  in
  Array.iter (fun f -> if f.Fsl.parent < 0 then assign f None) files;
  (* aggregate *)
  let per_group : (int, int ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 4096
  in
  Array.iter
    (fun f ->
      let g = Hashtbl.find group_of f.Fsl.id in
      let count, bytes, perm =
        match Hashtbl.find_opt per_group g with
        | Some v -> v
        | None ->
            let v = (ref 0, ref 0, ref (perm_class f.Fsl.perm)) in
            Hashtbl.replace per_group g v;
            v
      in
      incr count;
      bytes := !bytes + f.Fsl.size;
      perm := perm_class f.Fsl.perm)
    files;
  let groups =
    Hashtbl.fold
      (fun _ (count, bytes, perm) acc ->
        { g_perm = !perm; g_files = !count; g_bytes = !bytes } :: acc)
      per_group []
  in
  let largest =
    List.fold_left
      (fun (bf, bb) g -> (max bf g.g_files, max bb g.g_bytes))
      (0, 0) groups
  in
  let singles = List.filter (fun g -> g.g_files = 1) groups in
  let by_perm =
    let perms = List.sort_uniq compare (List.map (fun g -> g.g_perm) groups) in
    List.map
      (fun p ->
        let gs = List.filter (fun g -> g.g_perm = p) groups in
        let sizes = List.map (fun g -> g.g_bytes) gs in
        let total = List.fold_left ( + ) 0 sizes in
        ( p,
          List.length gs,
          List.fold_left min max_int sizes,
          total / max 1 (List.length gs),
          List.fold_left max 0 sizes ))
      perms
  in
  {
    n_groups = List.length groups;
    groups;
    largest_files = fst largest;
    largest_bytes = snd largest;
    single_file_groups = List.length singles;
    single_file_total = List.length singles;
    by_perm;
  }
