lib/zofs/layout.ml: Char Nvm String Treasury
