lib/zofs/dir.ml: Balloc Inode Layout Nvm String Treasury
