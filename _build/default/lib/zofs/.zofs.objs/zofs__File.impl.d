lib/zofs/file.ml: Balloc Bytes Inode Layout List Nvm String Treasury
