lib/zofs/ufs.ml: Balloc Dir File Hashtbl Inode Layout Lease List Mpk Nvm Option Result Sim String Treasury
