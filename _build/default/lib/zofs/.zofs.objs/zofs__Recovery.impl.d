lib/zofs/recovery.ml: Balloc Dir File Hashtbl Inode Layout List Nvm Sim Treasury Ufs
