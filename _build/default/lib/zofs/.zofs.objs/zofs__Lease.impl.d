lib/zofs/lease.ml: Nvm Sim
