lib/zofs/balloc.ml: Hashtbl Layout Lease List Nvm Sim Treasury
