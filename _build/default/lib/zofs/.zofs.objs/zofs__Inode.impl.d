lib/zofs/inode.ml: Layout Nvm Sim String Treasury
