(* Offline recovery (paper §3.5 and §5.3).

   For each coffer: map it, start the kernel recovery protocol
   (coffer_recover_begin unmaps it from everyone else and leases it to us),
   traverse from the coffer root page, validate and collect every in-use
   page, repair what can be repaired and drop what cannot, then report the
   in-use set to KernFS, which reclaims the rest.  A final pass validates
   every cross-coffer reference recorded during the traversals (G3 at
   fsck time). *)

module K = Treasury.Kernfs
module E = Treasury.Errno
module Coffer = Treasury.Coffer

type report = {
  mutable coffers_scanned : int;
  mutable pages_in_use : int;
  mutable pages_reclaimed : int;
  mutable dentries_dropped : int;
  mutable inodes_reinitialized : int;
  mutable cross_refs_checked : int;
  mutable cross_refs_repaired : int;
  mutable cross_refs_dropped : int;
  mutable user_ns : int;  (* simulated time spent in user space *)
  mutable kernel_ns : int;  (* simulated time spent in kernel calls *)
}

let fresh_report () =
  {
    coffers_scanned = 0;
    pages_in_use = 0;
    pages_reclaimed = 0;
    dentries_dropped = 0;
    inodes_reinitialized = 0;
    cross_refs_checked = 0;
    cross_refs_repaired = 0;
    cross_refs_dropped = 0;
    user_ns = 0;
    kernel_ns = 0;
  }

type cross_ref = {
  xr_src_cid : int;
  xr_dentry : int;  (* dentry byte address *)
  xr_expected_path : string;
  xr_target_cid : int;
  xr_target_inode : int;
}

let page_of addr = addr / Layout.page_size

(* Traverse one coffer, collecting in-use pages and cross-coffer refs;
   corrupted dentries are cleared, a corrupted root inode is reinitialized
   as an empty directory. *)
let scan_coffer dev kfs report ~cid ~root_file ~coffer_path xrefs =
  let in_use : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let mark addr = Hashtbl.replace in_use (page_of addr) () in
  let owned addr =
    match K.page_owner kfs ~page:(page_of addr) with
    | Ok owner -> owner = cid
    | Error _ -> false
  in
  let drop_dentry de =
    Dir.clear_dentry dev de.Dir.de_addr;
    report.dentries_dropped <- report.dentries_dropped + 1
  in
  let rec scan_inode ino cur_path =
    if (not (owned ino)) || not (Inode.valid dev ~ino) then false
    else begin
      mark ino;
      (match Inode.kind dev ~ino with
      | Some Inode.Regular ->
          List.iter
            (fun p -> if owned p then mark p)
            (File.data_pages dev ~ino)
      | Some Inode.Symlink -> ()
      | Some Inode.Directory ->
          List.iter
            (fun p -> if owned p then mark p)
            (Dir.structure_pages dev ~ino);
          let to_drop = ref [] in
          Dir.iter dev ~ino (fun de ->
              let child_path = Treasury.Pathx.concat cur_path de.Dir.de_name in
              if de.Dir.de_coffer <> 0 then
                (* Cross-coffer: validated in the second pass. *)
                xrefs :=
                  {
                    xr_src_cid = cid;
                    xr_dentry = de.Dir.de_addr;
                    xr_expected_path = child_path;
                    xr_target_cid = de.Dir.de_coffer;
                    xr_target_inode = de.Dir.de_inode;
                  }
                  :: !xrefs
              else if not (scan_inode de.Dir.de_inode child_path) then
                to_drop := de :: !to_drop);
          List.iter drop_dentry !to_drop
      | None -> ());
      true
    end
  in
  if not (scan_inode root_file coffer_path) then begin
    (* The coffer's root inode is unrecoverable: reinitialize it empty. *)
    (match Coffer.read dev ~id:cid with
    | Some info ->
        Inode.init dev ~ino:root_file ~kind:Inode.Directory
          ~mode:info.Coffer.mode ~uid:info.Coffer.uid ~gid:info.Coffer.gid
    | None ->
        Inode.init dev ~ino:root_file ~kind:Inode.Directory ~mode:0o755 ~uid:0
          ~gid:0);
    report.inodes_reinitialized <- report.inodes_reinitialized + 1;
    Hashtbl.replace in_use (page_of root_file) ()
  end;
  in_use

(* Recover a single coffer; the caller must be able to map it (recovery runs
   as root).  Returns the pages kept. *)
let recover_coffer ufs kfs report xrefs (info : Coffer.info) =
  let dev = K.device kfs in
  match Ufs.map_coffer ufs info.Coffer.id with
  | Error _ -> ()
  | Ok cs ->
      let t_user0 = Sim.now () in
      (match K.coffer_recover_begin kfs info.Coffer.id with
      | Error _ -> ()
      | Ok runs ->
          let total_pages =
            List.fold_left (fun acc (_, l) -> acc + l) 0 runs
          in
          let t_kernel0 = Sim.now () in
          let in_use =
            Ufs.with_coffer ufs cs ~write:true (fun () ->
                scan_coffer dev kfs report ~cid:info.Coffer.id
                  ~root_file:info.Coffer.root_file ~coffer_path:info.Coffer.path
                  xrefs)
          in
          Hashtbl.replace in_use (page_of info.Coffer.custom) ();
          let t_scan = Sim.now () in
          let pages = Hashtbl.fold (fun p () acc -> p :: acc) in_use [] in
          (match K.coffer_recover_end kfs info.Coffer.id ~in_use:pages with
          | Ok () -> ()
          | Error _ -> ());
          (* Reset the allocator: freed pages went back to KernFS. *)
          Ufs.with_coffer ufs cs ~write:true (fun () ->
              Balloc.format dev ~custom:info.Coffer.custom);
          let t_end = Sim.now () in
          report.coffers_scanned <- report.coffers_scanned + 1;
          report.pages_in_use <- report.pages_in_use + List.length pages;
          report.pages_reclaimed <-
            report.pages_reclaimed + (total_pages - 1 - List.length pages);
          report.user_ns <- report.user_ns + (t_scan - t_kernel0);
          report.kernel_ns <-
            report.kernel_ns + (t_kernel0 - t_user0) + (t_end - t_scan))

(* Validate the recorded cross-coffer references against KernFS metadata
   (G3 at fsck time).  The path map is kernel-maintained and trusted, so a
   manipulated dentry whose path still names a registered coffer is
   repaired from it; a dentry whose target coffer is gone is dropped. *)
let validate_cross_refs ufs kfs report xrefs =
  let dev = K.device kfs in
  List.iter
    (fun xr ->
      report.cross_refs_checked <- report.cross_refs_checked + 1;
      let ok =
        match K.coffer_stat kfs xr.xr_target_cid with
        | Error _ -> false
        | Ok tinfo ->
            tinfo.Coffer.path = xr.xr_expected_path
            && tinfo.Coffer.root_file = xr.xr_target_inode
      in
      if not ok then begin
        match Ufs.session_of_cid ufs xr.xr_src_cid with
        | Error _ -> ()
        | Ok cs -> (
            let true_target =
              match K.coffer_find kfs xr.xr_expected_path with
              | Error _ -> None
              | Ok cid -> (
                  match K.coffer_stat kfs cid with
                  | Ok tinfo -> Some (cid, tinfo.Coffer.root_file)
                  | Error _ -> None)
            in
            match true_target with
            | Some (cid, root_file) ->
                Ufs.with_coffer ufs cs ~write:true (fun () ->
                    Nvm.Device.write_u64 dev
                      (xr.xr_dentry + Layout.d_coffer)
                      cid;
                    Nvm.Device.write_u64 dev (xr.xr_dentry + Layout.d_inode)
                      root_file;
                    Nvm.Device.persist_range dev
                      (xr.xr_dentry + Layout.d_coffer)
                      16);
                report.cross_refs_repaired <- report.cross_refs_repaired + 1
            | None ->
                Ufs.with_coffer ufs cs ~write:true (fun () ->
                    Dir.clear_dentry dev xr.xr_dentry);
                report.cross_refs_dropped <- report.cross_refs_dropped + 1)
      end)
    xrefs

(* Recover every coffer in the file system (offline: run as root with no
   other process active). *)
let recover_all kfs =
  (match K.fs_mount kfs with Ok () | Error _ -> ());
  let ufs = Ufs.create kfs in
  let report = fresh_report () in
  let xrefs = ref [] in
  (match K.list_coffers kfs with
  | Error _ -> ()
  | Ok coffers ->
      let ordered =
        List.sort (fun a b -> compare a.Coffer.path b.Coffer.path) coffers
      in
      List.iter (fun info -> recover_coffer ufs kfs report xrefs info) ordered);
  validate_cross_refs ufs kfs report !xrefs;
  (match K.fs_umount kfs with Ok () | Error _ -> ());
  report
