(* The coffer root page (paper §3.1, §5 Figure 5).

   Every coffer is identified by the page number of its root page (the
   coffer-ID; the paper uses the root page's relative address).  The root
   page is written only by KernFS and mapped read-only into user space; it
   records the coffer's type, permission, path and — because KernFS hands
   every new coffer three pages — the addresses of the root-file inode page
   and the µFS custom page. *)

let magic = 0x434F4652 (* "COFR" *)

(* Field offsets within the root page. *)
let off_magic = 0
let off_ctype = 4
let off_mode = 8
let off_uid = 12
let off_gid = 16
let off_flags = 20
let off_recovery_lease = 24
let off_root_file = 32
let off_custom = 40
let off_path_len = 48
let off_path = 64

let flag_in_recovery = 0x1

type info = {
  id : int;  (* coffer-ID = root page number *)
  ctype : int;
  mode : int;
  uid : int;
  gid : int;
  path : string;
  root_file : int;  (* byte address of the root-file inode page *)
  custom : int;  (* byte address of the µFS custom page *)
  in_recovery : bool;
}

let root_addr id = id * Nvm.page_size

let write dev ~id ~ctype ~mode ~uid ~gid ~path ~root_file ~custom =
  let a = root_addr id in
  Nvm.Device.write_u32 dev (a + off_magic) magic;
  Nvm.Device.write_u32 dev (a + off_ctype) ctype;
  Nvm.Device.write_u32 dev (a + off_mode) mode;
  Nvm.Device.write_u32 dev (a + off_uid) uid;
  Nvm.Device.write_u32 dev (a + off_gid) gid;
  Nvm.Device.write_u32 dev (a + off_flags) 0;
  Nvm.Device.write_u64 dev (a + off_recovery_lease) 0;
  Nvm.Device.write_u64 dev (a + off_root_file) root_file;
  Nvm.Device.write_u64 dev (a + off_custom) custom;
  Nvm.Device.write_u16 dev (a + off_path_len) (String.length path);
  Nvm.Device.write_string dev (a + off_path) path;
  Nvm.Device.persist_range dev a (off_path + String.length path)

let read dev ~id =
  let a = root_addr id in
  if Nvm.Device.read_u32 dev (a + off_magic) <> magic then None
  else
    let plen = Nvm.Device.read_u16 dev (a + off_path_len) in
    let flags = Nvm.Device.read_u32 dev (a + off_flags) in
    Some
      {
        id;
        ctype = Nvm.Device.read_u32 dev (a + off_ctype);
        mode = Nvm.Device.read_u32 dev (a + off_mode);
        uid = Nvm.Device.read_u32 dev (a + off_uid);
        gid = Nvm.Device.read_u32 dev (a + off_gid);
        path = Nvm.Device.read_string dev (a + off_path) plen;
        root_file = Nvm.Device.read_u64 dev (a + off_root_file);
        custom = Nvm.Device.read_u64 dev (a + off_custom);
        in_recovery = flags land flag_in_recovery <> 0;
      }

let set_perm dev ~id ~mode ~uid ~gid =
  let a = root_addr id in
  Nvm.Device.write_u32 dev (a + off_mode) mode;
  Nvm.Device.write_u32 dev (a + off_uid) uid;
  Nvm.Device.write_u32 dev (a + off_gid) gid;
  Nvm.Device.persist_range dev (a + off_mode) 12

let set_path dev ~id ~path =
  let a = root_addr id in
  Nvm.Device.write_u16 dev (a + off_path_len) (String.length path);
  Nvm.Device.write_string dev (a + off_path) path;
  Nvm.Device.persist_range dev (a + off_path_len)
    (off_path - off_path_len + String.length path)

let set_recovery dev ~id ~active ~lease =
  let a = root_addr id in
  let flags = Nvm.Device.read_u32 dev (a + off_flags) in
  let flags =
    if active then flags lor flag_in_recovery
    else flags land lnot flag_in_recovery
  in
  Nvm.Device.write_u32 dev (a + off_flags) flags;
  Nvm.Device.write_u64 dev (a + off_recovery_lease) lease;
  Nvm.Device.persist_range dev (a + off_flags) 12

(* Erase the magic so the page can be recycled as a data page. *)
let invalidate dev ~id =
  Nvm.Device.write_u32 dev (root_addr id + off_magic) 0;
  Nvm.Device.persist_range dev (root_addr id + off_magic) 4
