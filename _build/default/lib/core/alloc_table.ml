(* KernFS's persistent allocation table (paper §4.1, Figure 3).

   One 8-byte entry per NVM page: a 32-bit coffer-ID (0 = free) and a 32-bit
   run length counting how many consecutive pages starting here share that
   coffer-ID.  Volatile red-black trees accelerate allocation: one over free
   runs and one over all runs (the paper's free-space and allocated-space
   trees).

   Crash consistency: per-page owner words are written before the table
   region is flushed; recovery rescans the table, and leaked pages (allocated
   in the table but unreachable in their coffer) are reclaimed by the
   coffer_recover protocol, so a torn multi-page update is always repairable. *)

type run = { cid : int; len : int }

type t = {
  dev : Nvm.Device.t;
  base : int;  (* byte offset of the table on the device *)
  npages : int;  (* pages covered by the table *)
  runs : run Rbtree.t;  (* start page -> run (free and allocated) *)
  free_runs : int Rbtree.t;  (* start page -> len, free only *)
  by_coffer : (int, unit Rbtree.t) Hashtbl.t;  (* cid -> start pages *)
}

let entry_size = 8
let table_bytes npages = npages * entry_size

let entry_addr t page = t.base + (page * entry_size)

let read_entry t page =
  let a = entry_addr t page in
  (Nvm.Device.read_u32 t.dev a, Nvm.Device.read_u32 t.dev (a + 4))

let write_entry t page cid len =
  let a = entry_addr t page in
  Nvm.Device.write_u32 t.dev a cid;
  Nvm.Device.write_u32 t.dev (a + 4) len

(* Persist the entries of pages [start, start+len). *)
let persist_entries t start len =
  Nvm.Device.persist_range t.dev (entry_addr t start) (len * entry_size)

let coffer_index t cid =
  match Hashtbl.find_opt t.by_coffer cid with
  | Some r -> r
  | None ->
      let r = Rbtree.create () in
      Hashtbl.replace t.by_coffer cid r;
      r

let index_add t start ({ cid; len } as run) =
  Rbtree.insert t.runs start run;
  if cid = 0 then Rbtree.insert t.free_runs start len
  else Rbtree.insert (coffer_index t cid) start ()

let index_remove t start { cid; _ } =
  ignore (Rbtree.remove t.runs start);
  if cid = 0 then ignore (Rbtree.remove t.free_runs start)
  else
    match Hashtbl.find_opt t.by_coffer cid with
    | Some r -> ignore (Rbtree.remove r start)
    | None -> ()

(* Write the persistent entries of a whole run (paper format: page j of a
   run of length L starting at s stores L - (j - s)). *)
let write_run t start { cid; len } =
  for j = 0 to len - 1 do
    write_entry t (start + j) cid (len - j)
  done

let format dev ~base ~npages =
  let t =
    {
      dev;
      base;
      npages;
      runs = Rbtree.create ();
      free_runs = Rbtree.create ();
      by_coffer = Hashtbl.create 64;
    }
  in
  let all_free = { cid = 0; len = npages } in
  write_run t 0 all_free;
  persist_entries t 0 npages;
  index_add t 0 all_free;
  t

let load dev ~base ~npages =
  let t =
    {
      dev;
      base;
      npages;
      runs = Rbtree.create ();
      free_runs = Rbtree.create ();
      by_coffer = Hashtbl.create 64;
    }
  in
  (* Rebuild volatile indexes by scanning page-by-page (we do not trust the
     run lengths after a crash: owner words are authoritative). *)
  let page = ref 0 in
  while !page < npages do
    let cid, _len = read_entry t !page in
    let start = !page in
    let n = ref 1 in
    incr page;
    let continue_run = ref true in
    while !continue_run && !page < npages do
      let cid', _ = read_entry t !page in
      if cid' = cid then begin
        incr n;
        incr page
      end
      else continue_run := false
    done;
    let run = { cid; len = !n } in
    (* Repair run lengths in place if a crash tore them. *)
    write_run t start run;
    index_add t start run
  done;
  persist_entries t 0 npages;
  t

let npages t = t.npages

let owner_of t ~page =
  if page < 0 || page >= t.npages then invalid_arg "Alloc_table.owner_of";
  match Rbtree.find_leq t.runs page with
  | Some (start, run) when page < start + run.len -> run.cid
  | _ -> 0

(* Core primitive: set the owner of pages [start, start+len) to [cid],
   splitting and coalescing runs as needed, and persist the affected
   entries. *)
let set_range t ~start ~len ~cid =
  if len <= 0 || start < 0 || start + len > t.npages then
    invalid_arg "Alloc_table.set_range";
  let range_end = start + len in
  (* Collect and remove every overlapping run. *)
  let rec collect acc pos =
    if pos >= range_end then acc
    else
      match Rbtree.find_geq t.runs pos with
      | Some (s, run) when s < range_end -> collect ((s, run) :: acc) (s + run.len)
      | _ -> acc
  in
  let first =
    match Rbtree.find_leq t.runs start with
    | Some (s, run) when s + run.len > start -> [ (s, run) ]
    | _ -> []
  in
  let overlapping =
    match first with
    | [ (s, run) ] -> (s, run) :: collect [] (s + run.len)
    | _ -> collect [] start
  in
  List.iter (fun (s, run) -> index_remove t s run) overlapping;
  (* Re-add the pieces sticking out on the left and right. *)
  let leftovers = ref [] in
  List.iter
    (fun (s, run) ->
      if s < start then
        leftovers := (s, { run with len = start - s }) :: !leftovers;
      let e = s + run.len in
      if e > range_end then
        leftovers := (range_end, { run with len = e - range_end }) :: !leftovers)
    overlapping;
  (* Coalesce the new run with equal-owner neighbours (which may be
     leftovers we just computed, or untouched runs). *)
  let new_start = ref start and new_len = ref len in
  let leftovers =
    List.filter
      (fun (s, (run : run)) ->
        if run.cid = cid && s + run.len = !new_start then begin
          new_start := s;
          new_len := !new_len + run.len;
          false
        end
        else if run.cid = cid && s = !new_start + !new_len then begin
          new_len := !new_len + run.len;
          false
        end
        else true)
      !leftovers
  in
  (match Rbtree.find_leq t.runs (!new_start - 1) with
  | Some (s, run) when run.cid = cid && s + run.len = !new_start ->
      index_remove t s run;
      new_start := s;
      new_len := !new_len + run.len
  | _ -> ());
  (match Rbtree.find_geq t.runs (!new_start + !new_len) with
  | Some (s, run) when run.cid = cid && s = !new_start + !new_len ->
      index_remove t s run;
      new_len := !new_len + run.len
  | _ -> ());
  (* Persistent writes cover only the pages whose owner actually changed:
     the requested range.  Leftover pieces keep their owner words, and the
     run-length words of coalesced neighbours are left stale — they are an
     acceleration hint; recovery scans owner words page by page (see
     [load]).  This keeps every update O(len) even as coffers grow. *)
  List.iter (fun (s, run) -> index_add t s run) leftovers;
  let merged = { cid; len = !new_len } in
  index_add t !new_start merged;
  write_run t start { cid; len };
  persist_entries t start len

let free_pages t = Rbtree.fold t.free_runs (fun _ len acc -> acc + len) 0

(* First-fit allocation of up to [n] pages for [cid]; returns the runs
   granted (possibly several if no single free run is big enough).  Returns
   [None] — allocating nothing — if fewer than [n] free pages exist. *)
let alloc t ~cid ~n =
  if cid = 0 then invalid_arg "Alloc_table.alloc: cid 0 is reserved for free";
  if n <= 0 then invalid_arg "Alloc_table.alloc: n must be positive";
  if free_pages t < n then None
  else begin
    match Rbtree.find_first t.free_runs (fun _ len -> len >= n) with
    | Some (start, _) ->
        set_range t ~start ~len:n ~cid;
        Some [ (start, n) ]
    | None ->
        (* Gather multiple runs, lowest addresses first. *)
        let granted = ref [] in
        let remaining = ref n in
        while !remaining > 0 do
          match Rbtree.min_binding t.free_runs with
          | None -> failwith "Alloc_table.alloc: accounting mismatch"
          | Some (start, len) ->
              let take = min len !remaining in
              set_range t ~start ~len:take ~cid;
              granted := (start, take) :: !granted;
              remaining := !remaining - take
        done;
        Some (List.rev !granted)
  end

let free_run t ~start ~len = set_range t ~start ~len ~cid:0

let reassign t ~start ~len ~cid =
  if cid = 0 then invalid_arg "Alloc_table.reassign: use free_run";
  set_range t ~start ~len ~cid

let runs_of t ~cid =
  match Hashtbl.find_opt t.by_coffer cid with
  | None -> []
  | Some idx ->
      Rbtree.fold idx
        (fun start () acc ->
          match Rbtree.find_opt t.runs start with
          | Some run when run.cid = cid -> (start, run.len) :: acc
          | _ -> acc)
        []
      |> List.rev

let pages_of t ~cid =
  List.concat_map
    (fun (start, len) -> List.init len (fun i -> start + i))
    (runs_of t ~cid)

let free_coffer t ~cid =
  List.iter (fun (start, len) -> free_run t ~start ~len) (runs_of t ~cid)

let coffer_page_count t ~cid =
  List.fold_left (fun acc (_, len) -> acc + len) 0 (runs_of t ~cid)

(* Consistency check for tests: the volatile trees must tile [0, npages)
   and agree with the persistent owner words.  (Run-length words are hints
   and are not checked; [load] never trusts them either.) *)
let verify t =
  let pos = ref 0 in
  Rbtree.iter t.runs (fun start run ->
      if start <> !pos then failwith "Alloc_table.verify: gap or overlap";
      if run.len <= 0 then failwith "Alloc_table.verify: empty run";
      for j = 0 to run.len - 1 do
        let c, _hint = read_entry t (start + j) in
        if c <> run.cid then failwith "Alloc_table.verify: owner mismatch"
      done;
      (match Rbtree.find_opt t.free_runs start with
      | Some l ->
          if run.cid <> 0 || l <> run.len then
            failwith "Alloc_table.verify: free index mismatch"
      | None ->
          if run.cid = 0 then failwith "Alloc_table.verify: free run not indexed");
      pos := start + run.len);
  if !pos <> t.npages then failwith "Alloc_table.verify: does not tile device"
