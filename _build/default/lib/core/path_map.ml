(* KernFS's persistent path→coffer hash table (paper §4.1): keys are coffer
   paths, values are coffer-IDs.  Buckets live in a fixed region; entries are
   256-byte slots carved out of slab pages allocated on demand from the
   allocation table (owner cid 2).

   Update ordering (all within kernel mode):
   - insert: write slot body, persist; link slot.next to the bucket head,
     persist; publish by writing the bucket head, persist.  A crash before
     the publish leaks at most one slot, which recovery sweeps back.
   - remove: unlink (persist), then push the slot onto the free list. *)

let magic = 0x504D4150 (* "PMAP" *)
let slot_size = 256
let slots_per_page = Nvm.page_size / slot_size
let max_path = Pathx.max_path_length

(* Header field offsets *)
let off_magic = 0
let off_nbuckets = 4
let off_free_head = 8
let off_nentries = 16

(* Slot field offsets *)
let s_next = 0
let s_cid = 8
let s_hash = 16
let s_plen = 20
let s_path = 32

type t = {
  dev : Nvm.Device.t;
  base : int;  (* byte address of the header page *)
  nbuckets : int;
  alloc_page : unit -> int option;  (* slab page allocator (KernFS) *)
}

let fnv1a s =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let bucket_base t = t.base + Nvm.page_size
let bucket_addr t i = bucket_base t + (i * 8)

(* Number of pages the fixed region occupies: header + buckets. *)
let region_pages nbuckets = 1 + ((nbuckets * 8) + Nvm.page_size - 1) / Nvm.page_size

let read_free_head t = Nvm.Device.read_u64 t.dev (t.base + off_free_head)

let write_free_head t v =
  Nvm.Device.write_u64 t.dev (t.base + off_free_head) v;
  Nvm.Device.persist_range t.dev (t.base + off_free_head) 8

let count t = Nvm.Device.read_u64 t.dev (t.base + off_nentries)

let set_count t v =
  Nvm.Device.write_u64 t.dev (t.base + off_nentries) v;
  Nvm.Device.persist_range t.dev (t.base + off_nentries) 8

let format dev ~base ~nbuckets ~alloc_page =
  let t = { dev; base; nbuckets; alloc_page } in
  Nvm.Device.write_u32 dev (base + off_magic) magic;
  Nvm.Device.write_u32 dev (base + off_nbuckets) nbuckets;
  Nvm.Device.write_u64 dev (base + off_free_head) 0;
  Nvm.Device.write_u64 dev (base + off_nentries) 0;
  Nvm.Device.fill dev (bucket_base t) (nbuckets * 8) '\000';
  Nvm.Device.persist_range dev base (region_pages nbuckets * Nvm.page_size);
  t

let load dev ~base ~alloc_page =
  if Nvm.Device.read_u32 dev (base + off_magic) <> magic then
    failwith "Path_map.load: bad magic";
  let nbuckets = Nvm.Device.read_u32 dev (base + off_nbuckets) in
  { dev; base; nbuckets; alloc_page }

(* Chain a fresh slab page's slots onto the free list. *)
let grow t =
  match t.alloc_page () with
  | None -> Error Errno.ENOSPC
  | Some page ->
      let page_addr = page * Nvm.page_size in
      let old_head = read_free_head t in
      for i = 0 to slots_per_page - 1 do
        let slot = page_addr + (i * slot_size) in
        let next =
          if i = slots_per_page - 1 then old_head else slot + slot_size
        in
        Nvm.Device.write_u64 t.dev (slot + s_next) next
      done;
      Nvm.Device.persist_range t.dev page_addr Nvm.page_size;
      write_free_head t page_addr;
      Ok ()

let rec alloc_slot t =
  let head = read_free_head t in
  if head = 0 then
    match grow t with Error e -> Error e | Ok () -> alloc_slot t
  else begin
    let next = Nvm.Device.read_u64 t.dev (head + s_next) in
    write_free_head t next;
    Ok head
  end

let free_slot t slot =
  Nvm.Device.write_u64 t.dev (slot + s_next) (read_free_head t);
  Nvm.Device.persist_range t.dev (slot + s_next) 8;
  write_free_head t slot

let slot_path t slot =
  let len = Nvm.Device.read_u16 t.dev (slot + s_plen) in
  Nvm.Device.read_string t.dev (slot + s_path) len

let slot_cid t slot = Nvm.Device.read_u64 t.dev (slot + s_cid)

(* Find the slot for [path]; returns (prev_slot_or_0, slot) or None. *)
let find_slot t path =
  let h = fnv1a path in
  let b = bucket_addr t (h mod t.nbuckets) in
  let rec walk prev slot =
    if slot = 0 then None
    else if
      Nvm.Device.read_u32 t.dev (slot + s_hash) = h && slot_path t slot = path
    then Some (prev, slot)
    else walk slot (Nvm.Device.read_u64 t.dev (slot + s_next))
  in
  walk 0 (Nvm.Device.read_u64 t.dev b)

let lookup t path =
  match find_slot t path with
  | Some (_, slot) -> Some (slot_cid t slot)
  | None -> None

let insert t ~path ~cid =
  if String.length path > max_path then Error Errno.ENAMETOOLONG
  else if find_slot t path <> None then Error Errno.EEXIST
  else
    match alloc_slot t with
    | Error e -> Error e
    | Ok slot ->
        let h = fnv1a path in
        let b = bucket_addr t (h mod t.nbuckets) in
        Nvm.Device.write_u64 t.dev (slot + s_cid) cid;
        Nvm.Device.write_u32 t.dev (slot + s_hash) h;
        Nvm.Device.write_u16 t.dev (slot + s_plen) (String.length path);
        Nvm.Device.write_string t.dev (slot + s_path) path;
        Nvm.Device.persist_range t.dev slot slot_size;
        Nvm.Device.write_u64 t.dev (slot + s_next)
          (Nvm.Device.read_u64 t.dev b);
        Nvm.Device.persist_range t.dev (slot + s_next) 8;
        Nvm.Device.write_u64 t.dev b slot;
        Nvm.Device.persist_range t.dev b 8;
        set_count t (count t + 1);
        Ok ()

let remove t path =
  match find_slot t path with
  | None -> Error Errno.ENOENT
  | Some (prev, slot) ->
      let next = Nvm.Device.read_u64 t.dev (slot + s_next) in
      let link = if prev = 0 then bucket_addr t (fnv1a path mod t.nbuckets) else prev + s_next in
      Nvm.Device.write_u64 t.dev link next;
      Nvm.Device.persist_range t.dev link 8;
      free_slot t slot;
      set_count t (count t - 1);
      Ok ()

(* Change the coffer-ID an existing path maps to (coffer merge/split). *)
let set_cid t ~path ~cid =
  match find_slot t path with
  | None -> Error Errno.ENOENT
  | Some (_, slot) ->
      Nvm.Device.write_u64 t.dev (slot + s_cid) cid;
      Nvm.Device.persist_range t.dev (slot + s_cid) 8;
      Ok ()

let rename t ~old_path ~new_path =
  match find_slot t old_path with
  | None -> Error Errno.ENOENT
  | Some (_, slot) ->
      let cid = slot_cid t slot in
      (match remove t old_path with
      | Error e -> Error e
      | Ok () -> insert t ~path:new_path ~cid)

let iter t f =
  for i = 0 to t.nbuckets - 1 do
    let rec walk slot =
      if slot <> 0 then begin
        f (slot_path t slot) (slot_cid t slot);
        walk (Nvm.Device.read_u64 t.dev (slot + s_next))
      end
    in
    walk (Nvm.Device.read_u64 t.dev (bucket_addr t i))
  done

let to_list t =
  let acc = ref [] in
  iter t (fun p c -> acc := (p, c) :: !acc);
  List.rev !acc

(* The µFS path walk entry point: starting from the longest prefix, every
   prefix of [path] is tried until a coffer root is found (paper §6.2 —
   this backwards parse is why deep paths are slower on ZoFS). *)
let longest_prefix t path =
  let rec go p =
    match lookup t p with
    | Some cid -> Some (p, cid)
    | None -> if p = "/" then None else go (Pathx.dirname p)
  in
  go path
