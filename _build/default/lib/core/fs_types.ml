(* Shared file-system types: file kinds, credentials, permission bits and the
   permission check used both by KernFS (at coffer granularity) and by the
   baseline kernel file systems (at file granularity). *)

type file_kind = Regular | Directory | Symlink

let kind_to_string = function
  | Regular -> "regular"
  | Directory -> "directory"
  | Symlink -> "symlink"

type cred = { uid : int; gid : int; groups : int list }

let cred_of_proc (p : Sim.Proc.t) =
  { uid = p.Sim.Proc.uid; gid = p.Sim.Proc.gid; groups = p.Sim.Proc.groups }

let root_cred = { uid = 0; gid = 0; groups = [] }

type want = [ `R | `W | `X ]

(* Classic owner/group/other check; uid 0 bypasses (as in Linux, modulo the
   execute subtlety which the paper also ignores). *)
let permits ~mode ~uid ~gid (c : cred) (wants : want list) =
  if c.uid = 0 then true
  else
    let shift =
      if c.uid = uid then 6
      else if c.gid = gid || List.mem gid c.groups then 3
      else 0
    in
    let bits = (mode lsr shift) land 0o7 in
    List.for_all
      (fun w ->
        let bit = match w with `R -> 0o4 | `W -> 0o2 | `X -> 0o1 in
        bits land bit <> 0)
      wants

(* The "permission" the paper groups files by: rw bits + owner + group
   (execute bits are ignored; §2.3). *)
let coffer_perm_key ~mode ~uid ~gid = ((mode land 0o666), uid, gid)

let same_coffer_perm ~mode1 ~uid1 ~gid1 ~mode2 ~uid2 ~gid2 =
  coffer_perm_key ~mode:mode1 ~uid:uid1 ~gid:gid1
  = coffer_perm_key ~mode:mode2 ~uid:uid2 ~gid:gid2

type stat = {
  st_ino : int;
  st_kind : file_kind;
  st_mode : int;
  st_uid : int;
  st_gid : int;
  st_size : int;
  st_nlink : int;
  st_atime : int;  (* ns since boot of the simulated clock *)
  st_mtime : int;
  st_ctime : int;
}

type dirent = { d_name : string; d_kind : file_kind; d_ino : int }

(* Open flags, the subset the benchmarks and applications need. *)
type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND | O_EXCL

let flag_mem f flags = List.mem f flags

let wants_of_flags flags : want list =
  let readable = flag_mem O_RDONLY flags || flag_mem O_RDWR flags in
  let writable =
    flag_mem O_WRONLY flags || flag_mem O_RDWR flags || flag_mem O_APPEND flags
    || flag_mem O_TRUNC flags
  in
  (if readable then [ `R ] else []) @ if writable then [ `W ] else []

type whence = SEEK_SET | SEEK_CUR | SEEK_END
