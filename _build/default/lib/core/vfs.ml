(* The common file-system interface every file system in the reproduction
   implements: ZoFS (through FSLibs) and the four baselines (Ext4-DAX, PMFS,
   NOVA, Strata).  Benchmarks, the LSM store and the SQL engine are written
   against this signature, so every experiment runs unchanged on every FS.

   File descriptors are plain ints; read/write take explicit offsets when
   [`At] and honour O_APPEND with [`Append] (resolved atomically under the
   file lock inside the FS). *)

open Fs_types

module type S = sig
  type t

  val name : t -> string

  (* Path operations.  Paths are absolute within the file system. *)
  val openf : t -> string -> open_flag list -> int -> (int, Errno.t) result
  val mkdir : t -> string -> int -> (unit, Errno.t) result
  val rmdir : t -> string -> (unit, Errno.t) result
  val unlink : t -> string -> (unit, Errno.t) result
  val rename : t -> string -> string -> (unit, Errno.t) result
  val stat : t -> string -> (stat, Errno.t) result
  val lstat : t -> string -> (stat, Errno.t) result
  val readdir : t -> string -> (dirent list, Errno.t) result
  val chmod : t -> string -> int -> (unit, Errno.t) result
  val chown : t -> string -> int -> int -> (unit, Errno.t) result
  val symlink : t -> target:string -> link:string -> (unit, Errno.t) result
  val readlink : t -> string -> (string, Errno.t) result
  val truncate : t -> string -> int -> (unit, Errno.t) result

  (* Descriptor operations. *)
  val close : t -> int -> (unit, Errno.t) result

  val read : t -> int -> bytes -> int -> int -> (int, Errno.t) result
  (** [read t fd buf boff len] at the descriptor's offset, advancing it. *)

  val pread : t -> int -> off:int -> bytes -> int -> int -> (int, Errno.t) result
  val write : t -> int -> string -> (int, Errno.t) result
  val pwrite : t -> int -> off:int -> string -> (int, Errno.t) result
  val lseek : t -> int -> int -> whence -> (int, Errno.t) result
  val fsync : t -> int -> (unit, Errno.t) result
  val fstat : t -> int -> (stat, Errno.t) result
  val ftruncate : t -> int -> int -> (unit, Errno.t) result
end

(* A packed file system: first-class module + its instance. *)
type fs = Fs : (module S with type t = 'a) * 'a -> fs

let name (Fs ((module F), t)) = F.name t
let openf (Fs ((module F), t)) path flags mode = F.openf t path flags mode
let mkdir (Fs ((module F), t)) path mode = F.mkdir t path mode
let rmdir (Fs ((module F), t)) path = F.rmdir t path
let unlink (Fs ((module F), t)) path = F.unlink t path
let rename (Fs ((module F), t)) a b = F.rename t a b
let stat (Fs ((module F), t)) path = F.stat t path
let lstat (Fs ((module F), t)) path = F.lstat t path
let readdir (Fs ((module F), t)) path = F.readdir t path
let chmod (Fs ((module F), t)) path mode = F.chmod t path mode
let chown (Fs ((module F), t)) path uid gid = F.chown t path uid gid
let symlink (Fs ((module F), t)) ~target ~link = F.symlink t ~target ~link
let readlink (Fs ((module F), t)) path = F.readlink t path
let truncate (Fs ((module F), t)) path len = F.truncate t path len
let close (Fs ((module F), t)) fd = F.close t fd
let read (Fs ((module F), t)) fd buf boff len = F.read t fd buf boff len
let pread (Fs ((module F), t)) fd ~off buf boff len = F.pread t fd ~off buf boff len
let write (Fs ((module F), t)) fd s = F.write t fd s
let pwrite (Fs ((module F), t)) fd ~off s = F.pwrite t fd ~off s
let lseek (Fs ((module F), t)) fd pos whence = F.lseek t fd pos whence
let fsync (Fs ((module F), t)) fd = F.fsync t fd
let fstat (Fs ((module F), t)) fd = F.fstat t fd
let ftruncate (Fs ((module F), t)) fd len = F.ftruncate t fd len

(* ---- convenience helpers used by tests, examples and workloads -------- *)

let ( let* ) = Result.bind

let write_file fs path ?(mode = 0o644) data =
  let* fd = openf fs path [ O_CREAT; O_WRONLY; O_TRUNC ] mode in
  let* n = write fs fd data in
  let* () = close fs fd in
  if n = String.length data then Ok () else Error Errno.EIO

let read_file fs path =
  let* fd = openf fs path [ O_RDONLY ] 0 in
  let* st = fstat fs fd in
  let buf = Bytes.create st.st_size in
  let rec loop off =
    if off >= st.st_size then Ok ()
    else
      let* n = read fs fd buf off (st.st_size - off) in
      if n = 0 then Error Errno.EIO else loop (off + n)
  in
  let* () = loop 0 in
  let* () = close fs fd in
  Ok (Bytes.to_string buf)

let append_file fs path ?(mode = 0o644) data =
  let* fd = openf fs path [ O_CREAT; O_WRONLY; O_APPEND ] mode in
  let* n = write fs fd data in
  let* () = close fs fd in
  if n = String.length data then Ok () else Error Errno.EIO

let exists fs path = Result.is_ok (stat fs path)

(* Recursive mkdir -p. *)
let rec mkdir_p fs path mode =
  match mkdir fs path mode with
  | Ok () -> Ok ()
  | Error Errno.EEXIST -> Ok ()
  | Error Errno.ENOENT ->
      let parent = Pathx.dirname path in
      if parent = path then Error Errno.ENOENT
      else
        let* () = mkdir_p fs parent mode in
        mkdir fs path mode
  | Error e -> Error e
