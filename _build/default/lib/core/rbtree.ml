(* Imperative red-black tree with integer keys (CLRS formulation with a nil
   sentinel).  KernFS keeps one tree over free NVM runs and one over
   allocated runs (paper §4.1: "a global volatile red-black tree to track all
   free space ... and another to track all allocated space").

   The nil sentinel needs an ['a] it never exposes; it is created with an
   unsafe cast and its value is never read. *)

type 'a node = {
  mutable key : int;
  mutable value : 'a;
  mutable left : 'a node;
  mutable right : 'a node;
  mutable parent : 'a node;
  mutable red : bool;
}

type 'a t = { mutable root : 'a node; nil : 'a node; mutable size : int }

let make_nil () : 'a node =
  let rec nil =
    { key = min_int; value = Obj.magic 0; left = nil; right = nil; parent = nil; red = false }
  in
  nil

let create () =
  let nil = make_nil () in
  { root = nil; nil; size = 0 }

let is_empty t = t.root == t.nil
let cardinal t = t.size

let left_rotate t x =
  let y = x.right in
  x.right <- y.left;
  if y.left != t.nil then y.left.parent <- x;
  y.parent <- x.parent;
  if x.parent == t.nil then t.root <- y
  else if x == x.parent.left then x.parent.left <- y
  else x.parent.right <- y;
  y.left <- x;
  x.parent <- y

let right_rotate t x =
  let y = x.left in
  x.left <- y.right;
  if y.right != t.nil then y.right.parent <- x;
  y.parent <- x.parent;
  if x.parent == t.nil then t.root <- y
  else if x == x.parent.right then x.parent.right <- y
  else x.parent.left <- y;
  y.right <- x;
  x.parent <- y

let rec insert_fixup t z =
  if z.parent.red then begin
    if z.parent == z.parent.parent.left then begin
      let y = z.parent.parent.right in
      if y.red then begin
        z.parent.red <- false;
        y.red <- false;
        z.parent.parent.red <- true;
        insert_fixup t z.parent.parent
      end
      else begin
        let z =
          if z == z.parent.right then begin
            let p = z.parent in
            left_rotate t p;
            p
          end
          else z
        in
        z.parent.red <- false;
        z.parent.parent.red <- true;
        right_rotate t z.parent.parent
      end
    end
    else begin
      let y = z.parent.parent.left in
      if y.red then begin
        z.parent.red <- false;
        y.red <- false;
        z.parent.parent.red <- true;
        insert_fixup t z.parent.parent
      end
      else begin
        let z =
          if z == z.parent.left then begin
            let p = z.parent in
            right_rotate t p;
            p
          end
          else z
        in
        z.parent.red <- false;
        z.parent.parent.red <- true;
        left_rotate t z.parent.parent
      end
    end
  end

let insert t key value =
  let y = ref t.nil and x = ref t.root in
  let replaced = ref false in
  while !x != t.nil && not !replaced do
    y := !x;
    if key < !x.key then x := !x.left
    else if key > !x.key then x := !x.right
    else begin
      !x.value <- value;
      replaced := true
    end
  done;
  if not !replaced then begin
    let z =
      { key; value; left = t.nil; right = t.nil; parent = !y; red = true }
    in
    if !y == t.nil then t.root <- z
    else if key < !y.key then !y.left <- z
    else !y.right <- z;
    insert_fixup t z;
    t.root.red <- false;
    t.size <- t.size + 1
  end

let rec find_node t x key =
  if x == t.nil then t.nil
  else if key = x.key then x
  else if key < x.key then find_node t x.left key
  else find_node t x.right key

let find_opt t key =
  let n = find_node t t.root key in
  if n == t.nil then None else Some n.value

let mem t key = find_node t t.root key != t.nil

let rec min_node t x = if x.left == t.nil then x else min_node t x.left
let rec max_node t x = if x.right == t.nil then x else max_node t x.right

let min_binding t =
  if t.root == t.nil then None
  else
    let n = min_node t t.root in
    Some (n.key, n.value)

let max_binding t =
  if t.root == t.nil then None
  else
    let n = max_node t t.root in
    Some (n.key, n.value)

(* Smallest key >= [key]. *)
let find_geq t key =
  let best = ref t.nil in
  let rec go x =
    if x != t.nil then
      if x.key >= key then begin
        best := x;
        go x.left
      end
      else go x.right
  in
  go t.root;
  if !best == t.nil then None else Some (!best.key, !best.value)

(* Largest key <= [key]. *)
let find_leq t key =
  let best = ref t.nil in
  let rec go x =
    if x != t.nil then
      if x.key <= key then begin
        best := x;
        go x.right
      end
      else go x.left
  in
  go t.root;
  if !best == t.nil then None else Some (!best.key, !best.value)

let transplant t u v =
  if u.parent == t.nil then t.root <- v
  else if u == u.parent.left then u.parent.left <- v
  else u.parent.right <- v;
  v.parent <- u.parent

let rec delete_fixup t x =
  if x != t.root && not x.red then begin
    if x == x.parent.left then begin
      let w = ref x.parent.right in
      if !w.red then begin
        !w.red <- false;
        x.parent.red <- true;
        left_rotate t x.parent;
        w := x.parent.right
      end;
      if (not !w.left.red) && not !w.right.red then begin
        !w.red <- true;
        delete_fixup t x.parent
      end
      else begin
        if not !w.right.red then begin
          !w.left.red <- false;
          !w.red <- true;
          right_rotate t !w;
          w := x.parent.right
        end;
        !w.red <- x.parent.red;
        x.parent.red <- false;
        !w.right.red <- false;
        left_rotate t x.parent
      end
    end
    else begin
      let w = ref x.parent.left in
      if !w.red then begin
        !w.red <- false;
        x.parent.red <- true;
        right_rotate t x.parent;
        w := x.parent.left
      end;
      if (not !w.right.red) && not !w.left.red then begin
        !w.red <- true;
        delete_fixup t x.parent
      end
      else begin
        if not !w.left.red then begin
          !w.right.red <- false;
          !w.red <- true;
          left_rotate t !w;
          w := x.parent.left
        end;
        !w.red <- x.parent.red;
        x.parent.red <- false;
        !w.left.red <- false;
        right_rotate t x.parent
      end
    end
  end
  else x.red <- false

let remove t key =
  let z = find_node t t.root key in
  if z == t.nil then false
  else begin
    let y = ref z in
    let y_was_red = ref !y.red in
    let x = ref t.nil in
    if z.left == t.nil then begin
      x := z.right;
      transplant t z z.right
    end
    else if z.right == t.nil then begin
      x := z.left;
      transplant t z z.left
    end
    else begin
      y := min_node t z.right;
      y_was_red := !y.red;
      x := !y.right;
      if !y.parent == z then !x.parent <- !y
      else begin
        transplant t !y !y.right;
        !y.right <- z.right;
        !y.right.parent <- !y
      end;
      transplant t z !y;
      !y.left <- z.left;
      !y.left.parent <- !y;
      !y.red <- z.red
    end;
    if not !y_was_red then delete_fixup t !x;
    t.nil.parent <- t.nil;
    t.nil.red <- false;
    t.size <- t.size - 1;
    true
  end

let iter t f =
  let rec go x =
    if x != t.nil then begin
      go x.left;
      f x.key x.value;
      go x.right
    end
  in
  go t.root

let fold t f acc =
  let acc = ref acc in
  iter t (fun k v -> acc := f k v !acc);
  !acc

let to_list t = List.rev (fold t (fun k v acc -> (k, v) :: acc) [])

exception Found

(* First in-order binding satisfying [p]; linear in the worst case.  KernFS
   uses it for first-fit run selection. *)
let find_first t p =
  let result = ref None in
  (try
     iter t (fun k v ->
         if p k v then begin
           result := Some (k, v);
           raise Found
         end)
   with Found -> ());
  !result

(* Validate red-black invariants; returns the black height.  Used by the
   property tests. *)
let check_invariants t =
  let rec go x =
    if x == t.nil then 1
    else begin
      if x.red && (x.left.red || x.right.red) then
        failwith "rbtree: red node with red child";
      if x.left != t.nil && x.left.key >= x.key then
        failwith "rbtree: left key not smaller";
      if x.right != t.nil && x.right.key <= x.key then
        failwith "rbtree: right key not larger";
      let bl = go x.left and br = go x.right in
      if bl <> br then failwith "rbtree: black heights differ";
      bl + if x.red then 0 else 1
    end
  in
  if t.root.red then failwith "rbtree: red root";
  go t.root
