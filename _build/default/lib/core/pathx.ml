(* Path manipulation shared by KernFS (coffer paths), FSLibs (dispatch,
   cwd handling) and the µFS path walks.  All canonical paths are absolute,
   start with '/', use single separators and have no trailing slash except
   for the root itself. *)

let is_absolute p = String.length p > 0 && p.[0] = '/'

(* Split into components, dropping empty ones ("//" and trailing "/"). *)
let components p = String.split_on_char '/' p |> List.filter (fun c -> c <> "")

let of_components = function
  | [] -> "/"
  | cs -> "/" ^ String.concat "/" cs

(* Lexical normalization: resolves "." and ".." (".." at the root is kept at
   the root, as in POSIX).  Symlink-aware resolution lives in the dispatcher,
   which expands links component by component. *)
let normalize p =
  let rec go acc = function
    | [] -> List.rev acc
    | "." :: rest -> go acc rest
    | ".." :: rest -> (
        match acc with [] -> go [] rest | _ :: tl -> go tl rest)
    | c :: rest -> go (c :: acc) rest
  in
  of_components (go [] (components p))

let concat base rel =
  if is_absolute rel then normalize rel
  else if base = "/" then normalize ("/" ^ rel)
  else normalize (base ^ "/" ^ rel)

let basename p =
  match List.rev (components p) with [] -> "/" | b :: _ -> b

let dirname p =
  match List.rev (components p) with
  | [] | [ _ ] -> "/"
  | _ :: rest -> of_components (List.rev rest)

(* [is_prefix ~prefix p]: is [prefix] an ancestor of (or equal to) [p]? *)
let is_prefix ~prefix p =
  if prefix = "/" then is_absolute p
  else
    let lp = String.length prefix and l = String.length p in
    l >= lp
    && String.sub p 0 lp = prefix
    && (l = lp || p.[lp] = '/')

(* [strip_prefix ~prefix p] returns the path of [p] relative to [prefix]
   (with a leading '/'), assuming [is_prefix].  ["/"] means p = prefix. *)
let strip_prefix ~prefix p =
  if prefix = "/" then p
  else
    let lp = String.length prefix in
    if String.length p = lp then "/" else String.sub p lp (String.length p - lp)

(* Replace the [old_prefix] of [p] with [new_prefix]; used when renaming a
   directory coffer moves every descendant coffer path. *)
let replace_prefix ~old_prefix ~new_prefix p =
  let rest = strip_prefix ~prefix:old_prefix p in
  if rest = "/" then new_prefix
  else if new_prefix = "/" then rest
  else new_prefix ^ rest

let max_name_length = 58  (* dentry name capacity in ZoFS's 128-byte dentry *)
let max_path_length = 224 (* path capacity in KernFS's path-map entries *)

let valid_name n =
  n <> "" && n <> "." && n <> ".."
  && String.length n <= max_name_length
  && not (String.contains n '/')
  && not (String.contains n '\000')
