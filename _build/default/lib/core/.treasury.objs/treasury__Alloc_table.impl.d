lib/core/alloc_table.ml: Hashtbl List Nvm Rbtree
