lib/core/pathx.ml: List String
