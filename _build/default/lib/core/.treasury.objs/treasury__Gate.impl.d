lib/core/gate.ml: Mpk Nvm Sim
