lib/core/path_map.ml: Char Errno List Nvm Pathx String
