lib/core/rbtree.ml: List Obj
