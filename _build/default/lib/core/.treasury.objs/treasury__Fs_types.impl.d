lib/core/fs_types.ml: List Sim
