lib/core/vfs.ml: Bytes Errno Fs_types Pathx Result String
