lib/core/coffer.ml: Nvm String
