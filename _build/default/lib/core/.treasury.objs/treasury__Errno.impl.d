lib/core/errno.ml: Format Result
