lib/core/dispatcher.ml: Errno Fd_table Fs_types Hashtbl Kernfs Nvm Pathx Result Ufs_intf Vfs
