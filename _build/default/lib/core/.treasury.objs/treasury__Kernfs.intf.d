lib/core/kernfs.mli: Alloc_table Coffer Errno Gate Mpk Nvm
