lib/core/kernfs.ml: Alloc_table Coffer Errno Fs_types Gate Hashtbl List Mpk Nvm Path_map Pathx Result Sim String
