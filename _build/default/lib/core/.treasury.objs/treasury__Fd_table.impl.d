lib/core/fd_table.ml: Array Buffer Char Errno Hashtbl List Printf String
