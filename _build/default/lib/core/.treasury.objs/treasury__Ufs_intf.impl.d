lib/core/ufs_intf.ml: Errno Fs_types
