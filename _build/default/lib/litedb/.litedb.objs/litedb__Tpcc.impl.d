lib/litedb/tpcc.ml: Db Hashtbl List Printf Record Result Sim Treasury
