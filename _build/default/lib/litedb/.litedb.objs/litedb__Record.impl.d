lib/litedb/record.ml: Buffer Char Float Int64 List Printf String
