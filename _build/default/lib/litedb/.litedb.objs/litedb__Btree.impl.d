lib/litedb/btree.ml: Bytes Char List Pager String
