lib/litedb/pager.ml: Buffer Bytes Char Hashtbl Int32 List Queue Result String Treasury
