lib/litedb/db.ml: Btree Buffer Bytes Hashtbl Int32 List Option Pager Printf Record Result String Treasury
