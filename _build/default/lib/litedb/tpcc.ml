(* TPC-C on the relational engine (the paper's Figure 11 / Table 8).

   The five transaction types (New-Order, Payment, Order-Status, Delivery,
   Stock-Level) follow the specification's reads/writes; secondary indexes
   exist on customer and orders as the paper requires, and foreign-key
   lookups go through the primary-key indexes.  Scale: 1 warehouse, 10
   districts (as in the paper), with customers/items scaled down
   (documented in DESIGN.md) to laptop-simulation size. *)

module R = Record

let n_districts = 10
let n_customers = 30 (* per district; spec: 3000 *)
let n_items = 100 (* spec: 100,000 *)

type t = {
  db : Db.t;
  rng : Sim.Rng.t;
  mutable committed : int;
  mutable aborted : int;
}

let ( let* ) = Result.bind

(* column layouts
   warehouse: [w_id; name; tax; ytd]
   district:  [d_id; w_id; tax; ytd; next_o_id]
   customer:  [c_id; d_id; w_id; name; balance; ytd_payment; payment_cnt;
               delivery_cnt]
   history:   [c_id; d_id; w_id; amount; data]
   item:      [i_id; name; price]
   stock:     [i_id; w_id; quantity; ytd; order_cnt]
   orders:    [o_id; d_id; w_id; c_id; entry_d; carrier_id; ol_cnt]
   new_order: [o_id; d_id; w_id]
   order_line:[o_id; d_id; w_id; ol_number; i_id; qty; amount; delivery_d] *)

let setup db =
  let* () = Db.create_table db "warehouse" in
  let* () = Db.create_table db "district" in
  let* () = Db.create_table db "customer" in
  let* () = Db.create_table db "history" in
  let* () = Db.create_table db "item" in
  let* () = Db.create_table db "stock" in
  let* () = Db.create_table db "orders" in
  let* () = Db.create_table db "new_order" in
  let* () = Db.create_table db "order_line" in
  let* () = Db.create_index db "district_pk" ~table:"district" ~cols:[ 0; 1 ] ~unique:true in
  let* () = Db.create_index db "customer_pk" ~table:"customer" ~cols:[ 0; 1; 2 ] ~unique:true in
  let* () = Db.create_index db "item_pk" ~table:"item" ~cols:[ 0 ] ~unique:true in
  let* () = Db.create_index db "stock_pk" ~table:"stock" ~cols:[ 0; 1 ] ~unique:true in
  let* () = Db.create_index db "orders_pk" ~table:"orders" ~cols:[ 0; 1; 2 ] ~unique:true in
  (* the secondary indexes the paper builds (customer and orders) *)
  let* () =
    Db.create_index db "orders_by_customer" ~table:"orders" ~cols:[ 2; 1; 3; 0 ]
      ~unique:false
  in
  let* () =
    Db.create_index db "customer_by_name" ~table:"customer" ~cols:[ 2; 1; 3 ]
      ~unique:false
  in
  let* () = Db.create_index db "new_order_pk" ~table:"new_order" ~cols:[ 2; 1; 0 ] ~unique:false in
  let* () =
    Db.create_index db "order_line_pk" ~table:"order_line" ~cols:[ 2; 1; 0; 3 ]
      ~unique:false
  in
  Ok ()

let load t =
  let db = t.db in
  let* () =
    Db.txn db (fun () ->
        ignore
          (Db.insert db "warehouse"
             [ R.Int 1; R.Str "W_ONE"; R.Real 0.07; R.Real 300000.0 ]);
        for d = 1 to n_districts do
          ignore
            (Db.insert db "district"
               [ R.Int d; R.Int 1; R.Real 0.08; R.Real 30000.0; R.Int 3001 ])
        done;
        Ok ())
  in
  let* () =
    Db.txn db (fun () ->
        for i = 1 to n_items do
          ignore
            (Db.insert db "item"
               [
                 R.Int i;
                 R.Str (Printf.sprintf "item-%04d" i);
                 R.Real (1.0 +. float_of_int (i mod 100));
               ]);
          ignore
            (Db.insert db "stock"
               [ R.Int i; R.Int 1; R.Int (10 + (i mod 90)); R.Real 0.0; R.Int 0 ])
        done;
        Ok ())
  in
  let rec load_customers d =
    if d > n_districts then Ok ()
    else
      let* () =
        Db.txn db (fun () ->
            for c = 1 to n_customers do
              ignore
                (Db.insert db "customer"
                   [
                     R.Int c;
                     R.Int d;
                     R.Int 1;
                     R.Str (Printf.sprintf "Customer-%d-%d" d c);
                     R.Real (-10.0);
                     R.Real 10.0;
                     R.Int 1;
                     R.Int 0;
                   ])
            done;
            Ok ())
      in
      load_customers (d + 1)
  in
  load_customers 1

let create fs path =
  (* a page cache smaller than the database, so reads exercise the file
     system as the paper's SQLite runs did *)
  let* db = Db.open_ ~cache_pages:48 fs path in
  let t = { db; rng = Sim.Rng.create 0x7CCL; committed = 0; aborted = 0 } in
  let* () = setup db in
  let* () = load t in
  Ok t

(* ---- helpers ---------------------------------------------------------------- *)

let required = function
  | Some v -> Ok v
  | None -> Error Treasury.Errno.ENOENT

let district_row db d =
  let* rowid = required (Db.index_find db "district_pk" [ R.Int d; R.Int 1 ]) in
  let* row = required (Db.get db "district" rowid) in
  Ok (rowid, row)

let customer_row db ~d ~c =
  let* rowid =
    required (Db.index_find db "customer_pk" [ R.Int c; R.Int d; R.Int 1 ])
  in
  let* row = required (Db.get db "customer" rowid) in
  Ok (rowid, row)

let nth = List.nth

(* ---- the five transactions ---------------------------------------------------- *)

let new_order t =
  let db = t.db in
  let d = 1 + Sim.Rng.int t.rng n_districts in
  let c = 1 + Sim.Rng.int t.rng n_customers in
  let ol_cnt = 5 + Sim.Rng.int t.rng 11 in
  Db.txn db (fun () ->
      let* _w = required (Db.get db "warehouse" 1) in
      let* drow_id, drow = district_row db d in
      let o_id = R.as_int (nth drow 4) in
      Db.update db "district" drow_id
        [ nth drow 0; nth drow 1; nth drow 2; nth drow 3; R.Int (o_id + 1) ];
      let* _crow_id, _crow = customer_row db ~d ~c in
      ignore
        (Db.insert db "orders"
           [
             R.Int o_id;
             R.Int d;
             R.Int 1;
             R.Int c;
             R.Int (Sim.now ());
             R.Int 0;
             R.Int ol_cnt;
           ]);
      ignore (Db.insert db "new_order" [ R.Int o_id; R.Int d; R.Int 1 ]);
      let rec lines ol =
        if ol > ol_cnt then Ok ()
        else begin
          let i_id = 1 + Sim.Rng.int t.rng n_items in
          let qty = 1 + Sim.Rng.int t.rng 10 in
          let* item_rowid = required (Db.index_find db "item_pk" [ R.Int i_id ]) in
          let* item = required (Db.get db "item" item_rowid) in
          let price = R.as_real (nth item 2) in
          let* stock_rowid =
            required (Db.index_find db "stock_pk" [ R.Int i_id; R.Int 1 ])
          in
          let* stock = required (Db.get db "stock" stock_rowid) in
          let s_qty = R.as_int (nth stock 2) in
          let new_qty = if s_qty > qty + 10 then s_qty - qty else s_qty - qty + 91 in
          Db.update db "stock" stock_rowid
            [
              nth stock 0;
              nth stock 1;
              R.Int new_qty;
              R.Real (R.as_real (nth stock 3) +. float_of_int qty);
              R.Int (R.as_int (nth stock 4) + 1);
            ];
          ignore
            (Db.insert db "order_line"
               [
                 R.Int o_id;
                 R.Int d;
                 R.Int 1;
                 R.Int ol;
                 R.Int i_id;
                 R.Int qty;
                 R.Real (float_of_int qty *. price);
                 R.Int 0;
               ]);
          lines (ol + 1)
        end
      in
      lines 1)

let payment t =
  let db = t.db in
  let d = 1 + Sim.Rng.int t.rng n_districts in
  let c = 1 + Sim.Rng.int t.rng n_customers in
  let amount = 1.0 +. float_of_int (Sim.Rng.int t.rng 5000) /. 100.0 in
  Db.txn db (fun () ->
      let* w = required (Db.get db "warehouse" 1) in
      Db.update db "warehouse" 1
        [ nth w 0; nth w 1; nth w 2; R.Real (R.as_real (nth w 3) +. amount) ];
      let* drow_id, drow = district_row db d in
      Db.update db "district" drow_id
        [
          nth drow 0;
          nth drow 1;
          nth drow 2;
          R.Real (R.as_real (nth drow 3) +. amount);
          nth drow 4;
        ];
      let* crow_id, crow = customer_row db ~d ~c in
      Db.update db "customer" crow_id
        [
          nth crow 0;
          nth crow 1;
          nth crow 2;
          nth crow 3;
          R.Real (R.as_real (nth crow 4) -. amount);
          R.Real (R.as_real (nth crow 5) +. amount);
          R.Int (R.as_int (nth crow 6) + 1);
          nth crow 7;
        ];
      ignore
        (Db.insert db "history"
           [ R.Int c; R.Int d; R.Int 1; R.Real amount; R.Str "payment" ]);
      Ok ())

let order_status t =
  let db = t.db in
  let d = 1 + Sim.Rng.int t.rng n_districts in
  let c = 1 + Sim.Rng.int t.rng n_customers in
  Db.txn db (fun () ->
      let* _crow_id, crow = customer_row db ~d ~c in
      ignore crow;
      (* the customer's most recent order, via the secondary index *)
      let last = ref None in
      Db.index_prefix_iter db "orders_by_customer" [ R.Int 1; R.Int d; R.Int c ]
        (fun rowid ->
          last := Some rowid;
          true);
      (match !last with
      | None -> ()
      | Some rowid -> (
          match Db.get db "orders" rowid with
          | Some order ->
              let o_id = R.as_int (nth order 0) in
              Db.index_prefix_iter db "order_line_pk"
                [ R.Int 1; R.Int d; R.Int o_id ]
                (fun ol_rowid ->
                  ignore (Db.get db "order_line" ol_rowid);
                  true)
          | None -> ()));
      Ok ())

let delivery t =
  let db = t.db in
  let carrier = 1 + Sim.Rng.int t.rng 10 in
  Db.txn db (fun () ->
      for d = 1 to n_districts do
        (* oldest undelivered order in this district *)
        let oldest = ref None in
        Db.index_prefix_iter db "new_order_pk" [ R.Int 1; R.Int d ] (fun rowid ->
            oldest := Some rowid;
            false);
        match !oldest with
        | None -> ()
        | Some no_rowid -> (
            match Db.get db "new_order" no_rowid with
            | None -> ()
            | Some no_row ->
                let o_id = R.as_int (nth no_row 0) in
                ignore (Db.delete db "new_order" no_rowid);
                (match Db.index_find db "orders_pk" [ R.Int o_id; R.Int d; R.Int 1 ] with
                | Some orowid -> (
                    match Db.get db "orders" orowid with
                    | Some order ->
                        Db.update db "orders" orowid
                          [
                            nth order 0;
                            nth order 1;
                            nth order 2;
                            nth order 3;
                            nth order 4;
                            R.Int carrier;
                            nth order 6;
                          ];
                        let c = R.as_int (nth order 3) in
                        let total = ref 0.0 in
                        Db.index_prefix_iter db "order_line_pk"
                          [ R.Int 1; R.Int d; R.Int o_id ]
                          (fun ol_rowid ->
                            (match Db.get db "order_line" ol_rowid with
                            | Some ol ->
                                total := !total +. R.as_real (nth ol 6);
                                Db.update db "order_line" ol_rowid
                                  [
                                    nth ol 0;
                                    nth ol 1;
                                    nth ol 2;
                                    nth ol 3;
                                    nth ol 4;
                                    nth ol 5;
                                    nth ol 6;
                                    R.Int (Sim.now ());
                                  ]
                            | None -> ());
                            true);
                        (match Db.index_find db "customer_pk" [ R.Int c; R.Int d; R.Int 1 ] with
                        | Some crowid -> (
                            match Db.get db "customer" crowid with
                            | Some crow ->
                                Db.update db "customer" crowid
                                  [
                                    nth crow 0;
                                    nth crow 1;
                                    nth crow 2;
                                    nth crow 3;
                                    R.Real (R.as_real (nth crow 4) +. !total);
                                    nth crow 5;
                                    nth crow 6;
                                    R.Int (R.as_int (nth crow 7) + 1);
                                  ]
                            | None -> ())
                        | None -> ())
                    | None -> ())
                | None -> ()))
      done;
      Ok ())

let stock_level t =
  let db = t.db in
  let d = 1 + Sim.Rng.int t.rng n_districts in
  let threshold = 10 + Sim.Rng.int t.rng 11 in
  Db.txn db (fun () ->
      let* _drow_id, drow = district_row db d in
      let next_o = R.as_int (nth drow 4) in
      let low = ref 0 in
      let seen = Hashtbl.create 64 in
      (* the last 20 orders' lines *)
      for o_id = max 1 (next_o - 20) to next_o - 1 do
        Db.index_prefix_iter db "order_line_pk" [ R.Int 1; R.Int d; R.Int o_id ]
          (fun ol_rowid ->
            (match Db.get db "order_line" ol_rowid with
            | Some ol -> (
                let i_id = R.as_int (nth ol 4) in
                if not (Hashtbl.mem seen i_id) then begin
                  Hashtbl.replace seen i_id ();
                  match Db.index_find db "stock_pk" [ R.Int i_id; R.Int 1 ] with
                  | Some srowid -> (
                      match Db.get db "stock" srowid with
                      | Some stock ->
                          if R.as_int (nth stock 2) < threshold then incr low
                      | None -> ())
                  | None -> ()
                end)
            | None -> ());
            true)
      done;
      Ok !low)

(* ---- the workload mix (Table 8) ------------------------------------------------ *)

type txn_kind = NEW | PAY | OS | DLY | SL

let kind_name = function
  | NEW -> "NEW"
  | PAY -> "PAY"
  | OS -> "OS"
  | DLY -> "DLY"
  | SL -> "SL"

(* CPU the SQL engine spends per transaction outside the storage layer
   (parsing, planning, the bytecode VM) — calibrated so the FS share of
   TPC-C latency matches the paper's modest inter-FS gaps. *)
let txn_cpu_cost = function
  | NEW -> 60_000
  | PAY -> 25_000
  | OS -> 20_000
  | DLY -> 80_000
  | SL -> 30_000

let run_txn t k =
  Sim.advance (txn_cpu_cost k);
  match k with
  | NEW -> Result.map (fun () -> ()) (new_order t)
  | PAY -> payment t
  | OS -> order_status t
  | DLY -> delivery t
  | SL -> Result.map (fun _ -> ()) (stock_level t)

(* 44 / 44 / 4 / 4 / 4 *)
let pick_mixed t =
  let r = Sim.Rng.int t.rng 100 in
  if r < 44 then NEW
  else if r < 88 then PAY
  else if r < 92 then OS
  else if r < 96 then DLY
  else SL

(* Run [n] transactions; [kind] = None means the Table 8 mix.  Returns
   transactions per simulated second. *)
let run t ~n ?kind () =
  let t0 = Sim.now () in
  for _ = 1 to n do
    let k = match kind with Some k -> k | None -> pick_mixed t in
    match run_txn t k with
    | Ok () -> t.committed <- t.committed + 1
    | Error _ -> t.aborted <- t.aborted + 1
  done;
  let elapsed = max 1 (Sim.now () - t0) in
  float_of_int n *. 1e9 /. float_of_int elapsed

let committed t = t.committed
let aborted t = t.aborted

(* Invariant checks used by the tests (money conservation etc.). *)
let consistency_check t =
  let db = t.db in
  (* district next_o_id - 1 = max order id per district *)
  let ok = ref true in
  for d = 1 to n_districts do
    match district_row db d with
    | Error _ -> ok := false
    | Ok (_, drow) ->
        let next_o = R.as_int (nth drow 4) in
        let max_o = ref 3000 in
        Db.index_prefix_iter db "orders_by_customer" [ R.Int 1; R.Int d ]
          (fun rowid ->
            (match Db.get db "orders" rowid with
            | Some order -> max_o := max !max_o (R.as_int (nth order 0))
            | None -> ());
            true);
        if !max_o >= next_o then ok := false
  done;
  !ok
