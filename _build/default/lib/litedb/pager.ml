(* Paged storage with a rollback journal — the SQLite file/journal protocol,
   which is exactly the file-system footprint the paper's TPC-C experiment
   measures: per transaction, a journal file is created, filled with
   before-images, fsynced; the database pages are written and fsynced; the
   journal is deleted.  Crash recovery replays the journal's before-images.

   Pages are cached in DRAM (SQLite's page cache): reads of cached pages
   cost nothing on the FS; misses pread from the database file. *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types

let page_size = 4096
let default_cache_pages = 256 (* 1 MB, SQLite's default ballpark *)

type t = {
  cache_pages : int;
  fs : V.fs;
  path : string;
  journal_path : string;
  mutable db_fd : int option;  (* SQLite keeps the database fd open *)
  cache : (int, bytes) Hashtbl.t;
  lru : int Queue.t;  (* FIFO eviction order of cached pages *)
  mutable npages : int;
  mutable in_txn : bool;
  mutable dirty : (int, unit) Hashtbl.t;
  mutable before_images : (int * bytes) list;  (* first-touch order *)
  mutable txn_commits : int;
}

let ( let* ) = Result.bind

(* Apply a leftover journal (crash during the previous commit). *)
let recover fs path journal_path =
  match V.read_file fs journal_path with
  | Error Treasury.Errno.ENOENT -> Ok ()
  | Error e -> Error e
  | Ok data ->
      let n = String.length data in
      let* fd = V.openf fs path [ Ft.O_CREAT; Ft.O_WRONLY ] 0o644 in
      let entry = 4 + page_size in
      let count = n / entry in
      for i = 0 to count - 1 do
        let off = i * entry in
        let page =
          Char.code data.[off]
          lor (Char.code data.[off + 1] lsl 8)
          lor (Char.code data.[off + 2] lsl 16)
          lor (Char.code data.[off + 3] lsl 24)
        in
        ignore
          (V.pwrite fs fd ~off:(page * page_size)
             (String.sub data (off + 4) page_size))
      done;
      let* () = V.fsync fs fd in
      let* () = V.close fs fd in
      V.unlink fs journal_path

let open_ ?(cache_pages = default_cache_pages) fs path =
  let journal_path = path ^ "-journal" in
  let* () = recover fs path journal_path in
  let* npages =
    match V.stat fs path with
    | Ok st -> Ok ((st.Ft.st_size + page_size - 1) / page_size)
    | Error Treasury.Errno.ENOENT ->
        let* () = V.write_file fs path "" in
        Ok 0
    | Error e -> Error e
  in
  Ok
    {
      cache_pages;
      fs;
      path;
      journal_path;
      db_fd = None;
      cache = Hashtbl.create 256;
      lru = Queue.create ();
      npages;
      in_txn = false;
      dirty = Hashtbl.create 16;
      before_images = [];
      txn_commits = 0;
    }

let npages t = t.npages

let db_fd t =
  match t.db_fd with
  | Some fd -> Ok fd
  | None ->
      let* fd = V.openf t.fs t.path [ Ft.O_RDWR ] 0 in
      t.db_fd <- Some fd;
      Ok fd

(* Evict clean pages beyond the cache budget (page 0 — the catalog — and
   pages dirty in the open transaction are pinned). *)
let evict_to_budget t =
  let attempts = ref (Queue.length t.lru) in
  while
    Hashtbl.length t.cache > t.cache_pages
    && (not (Queue.is_empty t.lru))
    && !attempts > 0
  do
    decr attempts;
    let victim = Queue.pop t.lru in
    if Hashtbl.mem t.cache victim && victim <> 0 then
      if Hashtbl.mem t.dirty victim then Queue.push victim t.lru
      else Hashtbl.remove t.cache victim
  done

let cache_insert t page b =
  Hashtbl.replace t.cache page b;
  Queue.push page t.lru;
  evict_to_budget t

let read_page t page =
  match Hashtbl.find_opt t.cache page with
  | Some b -> b
  | None ->
      let b = Bytes.make page_size '\000' in
      (match db_fd t with
      | Ok fd -> ignore (V.pread t.fs fd ~off:(page * page_size) b 0 page_size)
      | Error _ -> ());
      cache_insert t page b;
      b

(* Mark a page dirty within the current transaction, capturing its
   before-image on first touch. *)
let touch t page =
  if not t.in_txn then invalid_arg "Pager.touch: no transaction";
  if not (Hashtbl.mem t.dirty page) then begin
    let before =
      if page < t.npages then Bytes.copy (read_page t page)
      else Bytes.make page_size '\000'
    in
    t.before_images <- (page, before) :: t.before_images;
    Hashtbl.replace t.dirty page ()
  end

let write_page t page (b : bytes) =
  touch t page;
  Hashtbl.replace t.cache page b

let alloc_page t =
  let page = t.npages in
  t.npages <- page + 1;
  let b = Bytes.make page_size '\000' in
  cache_insert t page b;
  if t.in_txn then touch t page;
  page

let begin_txn t =
  if t.in_txn then invalid_arg "Pager.begin_txn: nested transaction";
  t.in_txn <- true;
  t.dirty <- Hashtbl.create 16;
  t.before_images <- []

let rollback t =
  if not t.in_txn then invalid_arg "Pager.rollback: no transaction";
  (* restore before-images in the cache; nothing reached the files *)
  List.iter
    (fun (page, before) -> Hashtbl.replace t.cache page before)
    t.before_images;
  (* freshly allocated pages disappear *)
  let max_before =
    List.fold_left (fun acc (p, _) -> max acc (p + 1)) 0 t.before_images
  in
  ignore max_before;
  t.in_txn <- false;
  t.dirty <- Hashtbl.create 16;
  t.before_images <- []

let commit t =
  if not t.in_txn then invalid_arg "Pager.commit: no transaction";
  if Hashtbl.length t.dirty = 0 then begin
    t.in_txn <- false;
    Ok ()
  end
  else begin
    (* 1. journal the before-images and fsync *)
    let jbuf = Buffer.create 8192 in
    List.iter
      (fun (page, before) ->
        Buffer.add_int32_le jbuf (Int32.of_int page);
        Buffer.add_bytes jbuf before)
      (List.rev t.before_images);
    let* jfd =
      V.openf t.fs t.journal_path [ Ft.O_CREAT; Ft.O_WRONLY; Ft.O_TRUNC ] 0o644
    in
    let* _ = V.write t.fs jfd (Buffer.contents jbuf) in
    let* () = V.fsync t.fs jfd in
    let* () = V.close t.fs jfd in
    (* 2. write the dirty database pages and fsync *)
    let* fd = db_fd t in
    let pages = Hashtbl.fold (fun p () acc -> p :: acc) t.dirty [] in
    List.iter
      (fun page ->
        let b = read_page t page in
        ignore
          (V.pwrite t.fs fd ~off:(page * page_size) (Bytes.to_string b)))
      (List.sort compare pages);
    let* () = V.fsync t.fs fd in
    (* 3. the commit point: delete the journal *)
    let* () = V.unlink t.fs t.journal_path in
    t.in_txn <- false;
    t.dirty <- Hashtbl.create 16;
    t.before_images <- [];
    t.txn_commits <- t.txn_commits + 1;
    Ok ()
  end

let with_txn t f =
  begin_txn t;
  match f () with
  | Ok v ->
      let* () = commit t in
      Ok v
  | Error e ->
      rollback t;
      Error e
  | exception e ->
      rollback t;
      raise e

let commit_count t = t.txn_commits
