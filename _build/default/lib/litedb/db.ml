(* The relational engine: tables (rowid-keyed B+trees) and secondary
   indexes (composite-key B+trees mapping to rowids), with a persistent
   catalog in page 0 and pager-level transactions.

   There is no SQL text layer — clients use this API directly; what the
   paper's experiment measures is the storage engine's file-system footprint
   (journal create/write/fsync/delete per transaction, page reads/writes),
   which is preserved exactly. *)

type table = {
  tbl_name : string;
  mutable tbl_root : int;
  mutable tbl_next_rowid : int;
}

type index = {
  idx_name : string;
  idx_table : string;
  mutable idx_root : int;
  idx_cols : int list;  (* column positions within the row *)
  idx_unique : bool;
}

type t = {
  pager : Pager.t;
  tables : (string, table) Hashtbl.t;
  indexes : (string, index) Hashtbl.t;
  mutable cat_dirty : bool;  (* roots/rowids moved since the last commit *)
}

let ( let* ) = Result.bind

let rowid_key rowid = Printf.sprintf "%016d" rowid

(* ---- catalog (page 0) -------------------------------------------------------- *)

let save_catalog t =
  let b = Buffer.create 512 in
  Hashtbl.iter
    (fun _ tb ->
      Buffer.add_string b
        (Printf.sprintf "T %s %d %d\n" tb.tbl_name tb.tbl_root tb.tbl_next_rowid))
    t.tables;
  Hashtbl.iter
    (fun _ ix ->
      Buffer.add_string b
        (Printf.sprintf "I %s %s %d %b %s\n" ix.idx_name ix.idx_table ix.idx_root
           ix.idx_unique
           (String.concat "," (List.map string_of_int ix.idx_cols))))
    t.indexes;
  let body = Buffer.contents b in
  if String.length body + 4 > Pager.page_size then
    failwith "Litedb: catalog overflow";
  let page = Bytes.make Pager.page_size '\000' in
  Bytes.set_int32_le page 0 (Int32.of_int (String.length body));
  Bytes.blit_string body 0 page 4 (String.length body);
  Pager.write_page t.pager 0 page

let load_catalog t =
  if Pager.npages t.pager = 0 then ()
  else begin
    let page = Pager.read_page t.pager 0 in
    let len = Int32.to_int (Bytes.get_int32_le page 0) in
    if len > 0 && len < Pager.page_size then
      String.split_on_char '\n' (Bytes.sub_string page 4 len)
      |> List.iter (fun line ->
             match String.split_on_char ' ' line with
             | [ "T"; name; root; next ] ->
                 Hashtbl.replace t.tables name
                   {
                     tbl_name = name;
                     tbl_root = int_of_string root;
                     tbl_next_rowid = int_of_string next;
                   }
             | [ "I"; name; table; root; unique; cols ] ->
                 Hashtbl.replace t.indexes name
                   {
                     idx_name = name;
                     idx_table = table;
                     idx_root = int_of_string root;
                     idx_unique = bool_of_string unique;
                     idx_cols =
                       (if cols = "" then []
                        else List.map int_of_string (String.split_on_char ',' cols));
                   }
             | _ -> ())
  end

let open_ ?cache_pages fs path =
  let* pager = Pager.open_ ?cache_pages fs path in
  let t =
    { pager; tables = Hashtbl.create 16; indexes = Hashtbl.create 16; cat_dirty = false }
  in
  if Pager.npages pager = 0 then begin
    (* fresh database: reserve page 0 for the catalog *)
    Pager.begin_txn pager;
    let p0 = Pager.alloc_page pager in
    assert (p0 = 0);
    save_catalog t;
    let* () = Pager.commit pager in
    Ok t
  end
  else begin
    load_catalog t;
    Ok t
  end

(* ---- transactions --------------------------------------------------------------- *)

let txn t f =
  Pager.begin_txn t.pager;
  t.cat_dirty <- false;
  match f () with
  | Ok v ->
      (* persist the catalog only when roots / rowid counters moved —
         read-only transactions must not touch the journal *)
      if t.cat_dirty then save_catalog t;
      let* () = Pager.commit t.pager in
      Ok v
  | Error e ->
      Pager.rollback t.pager;
      Error e
  | exception e ->
      Pager.rollback t.pager;
      raise e

(* ---- DDL -------------------------------------------------------------------------- *)

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tb -> tb
  | None -> failwith ("Litedb: no such table " ^ name)

let index t name =
  match Hashtbl.find_opt t.indexes name with
  | Some ix -> ix
  | None -> failwith ("Litedb: no such index " ^ name)

let create_table t name =
  if Hashtbl.mem t.tables name then Error Treasury.Errno.EEXIST
  else
    txn t (fun () ->
        let root = Btree.create t.pager in
        Hashtbl.replace t.tables name
          { tbl_name = name; tbl_root = root; tbl_next_rowid = 1 };
        t.cat_dirty <- true;
        Ok ())

let create_index t name ~table:tname ~cols ~unique =
  if Hashtbl.mem t.indexes name then Error Treasury.Errno.EEXIST
  else
    txn t (fun () ->
        t.cat_dirty <- true;
        let root = Btree.create t.pager in
        let ix =
          {
            idx_name = name;
            idx_table = tname;
            idx_root = root;
            idx_cols = cols;
            idx_unique = unique;
          }
        in
        Hashtbl.replace t.indexes name ix;
        (* index any existing rows *)
        let tb = table t tname in
        Btree.iter_all t.pager ~root:tb.tbl_root (fun k v ->
            let row = Record.decode v in
            let key_vals = List.map (List.nth row) cols in
            let key =
              if unique then Record.index_key key_vals
              else Record.index_key key_vals ^ "\000" ^ k
            in
            ix.idx_root <- Btree.insert t.pager ~root:ix.idx_root key k);
        Ok ())

let indexes_of t tname =
  Hashtbl.fold
    (fun _ ix acc -> if ix.idx_table = tname then ix :: acc else acc)
    t.indexes []

(* ---- DML (call inside [txn]) ------------------------------------------------------- *)

let index_entry_key ix row rowid =
  let key_vals = List.map (List.nth row) ix.idx_cols in
  if ix.idx_unique then Record.index_key key_vals
  else Record.index_key key_vals ^ "\000" ^ rowid_key rowid

let insert t tname row =
  let tb = table t tname in
  let rowid = tb.tbl_next_rowid in
  tb.tbl_next_rowid <- rowid + 1;
  t.cat_dirty <- true;
  tb.tbl_root <- Btree.insert t.pager ~root:tb.tbl_root (rowid_key rowid) (Record.encode row);
  List.iter
    (fun ix ->
      ix.idx_root <-
        Btree.insert t.pager ~root:ix.idx_root (index_entry_key ix row rowid)
          (rowid_key rowid))
    (indexes_of t tname);
  rowid

let get t tname rowid =
  let tb = table t tname in
  Option.map Record.decode (Btree.lookup t.pager ~root:tb.tbl_root (rowid_key rowid))

let update t tname rowid row =
  t.cat_dirty <- true;
  let tb = table t tname in
  (match Btree.lookup t.pager ~root:tb.tbl_root (rowid_key rowid) with
  | Some old_raw ->
      let old_row = Record.decode old_raw in
      List.iter
        (fun ix ->
          let old_key = index_entry_key ix old_row rowid in
          let new_key = index_entry_key ix row rowid in
          if old_key <> new_key then begin
            ignore (Btree.delete t.pager ~root:ix.idx_root old_key);
            ix.idx_root <-
              Btree.insert t.pager ~root:ix.idx_root new_key (rowid_key rowid)
          end)
        (indexes_of t tname)
  | None -> ());
  tb.tbl_root <- Btree.insert t.pager ~root:tb.tbl_root (rowid_key rowid) (Record.encode row)

let delete t tname rowid =
  t.cat_dirty <- true;
  let tb = table t tname in
  match Btree.lookup t.pager ~root:tb.tbl_root (rowid_key rowid) with
  | None -> false
  | Some raw ->
      let row = Record.decode raw in
      List.iter
        (fun ix ->
          ignore (Btree.delete t.pager ~root:ix.idx_root (index_entry_key ix row rowid)))
        (indexes_of t tname);
      ignore (Btree.delete t.pager ~root:tb.tbl_root (rowid_key rowid));
      true

let scan t tname f =
  let tb = table t tname in
  Btree.iter_all t.pager ~root:tb.tbl_root (fun k v ->
      f (int_of_string k) (Record.decode v))

(* Unique-index point lookup → rowid. *)
let index_find t iname key_vals =
  let ix = index t iname in
  if not ix.idx_unique then invalid_arg "Litedb.index_find: non-unique index";
  Option.map int_of_string
    (Btree.lookup t.pager ~root:ix.idx_root (Record.index_key key_vals))

(* Iterate rowids whose index key starts with [prefix_vals]; [f rowid]
   returns false to stop. *)
let index_prefix_iter t iname prefix_vals f =
  let ix = index t iname in
  let prefix = Record.index_key prefix_vals in
  Btree.iter_from t.pager ~root:ix.idx_root ~start:prefix (fun k v ->
      if String.length k >= String.length prefix
         && String.sub k 0 (String.length prefix) = prefix
      then f (int_of_string v)
      else false)

let commit_count t = Pager.commit_count t.pager
