(* Row serialization: a row is a list of typed values, encoded as
   [count u8] then per value a tag byte and payload. *)

type value = Int of int | Str of string | Real of float

let equal_value a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Str x, Str y -> x = y
  | Real x, Real y -> Float.equal x y
  | _ -> false

let to_string = function
  | Int i -> string_of_int i
  | Str s -> s
  | Real f -> Printf.sprintf "%.2f" f

let as_int = function
  | Int i -> i
  | Real f -> int_of_float f
  | Str s -> int_of_string s

let as_str = function Str s -> s | v -> to_string v
let as_real = function Real f -> f | Int i -> float_of_int i | Str s -> float_of_string s

let encode values =
  let b = Buffer.create 64 in
  Buffer.add_char b (Char.chr (List.length values));
  List.iter
    (fun v ->
      match v with
      | Int i ->
          Buffer.add_char b '\001';
          Buffer.add_int64_le b (Int64.of_int i)
      | Str s ->
          Buffer.add_char b '\002';
          Buffer.add_uint16_le b (String.length s);
          Buffer.add_string b s
      | Real f ->
          Buffer.add_char b '\003';
          Buffer.add_int64_le b (Int64.bits_of_float f))
    values;
  Buffer.contents b

let decode s =
  let n = Char.code s.[0] in
  let off = ref 1 in
  let u16 () =
    let v = Char.code s.[!off] lor (Char.code s.[!off + 1] lsl 8) in
    off := !off + 2;
    v
  in
  let i64 () =
    let v = ref 0L in
    for k = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[!off + k]))
    done;
    off := !off + 8;
    !v
  in
  List.init n (fun _ ->
      let tag = Char.code s.[!off] in
      incr off;
      match tag with
      | 1 -> Int (Int64.to_int (i64 ()))
      | 2 ->
          let len = u16 () in
          let str = String.sub s !off len in
          off := !off + len;
          Str str
      | 3 -> Real (Int64.float_of_bits (i64 ()))
      | _ -> failwith "Record.decode: bad tag")

(* Order-preserving key encoding for composite index keys: ints become
   16-digit zero-padded decimals, so lexicographic order = numeric order
   (for non-negative ints, which is all TPC-C uses). *)
let index_key values =
  String.concat "\000"
    (List.map
       (function
         | Int i -> Printf.sprintf "%016d" i
         | Str s -> s
         | Real f -> Printf.sprintf "%020.4f" f)
       values)
