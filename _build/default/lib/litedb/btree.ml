(* B+tree over the pager, with string keys (order-preserving encodings make
   them work for rowids and composite index keys alike).

   Node page layout:
     0: kind u8 (1 = leaf, 2 = internal)
     1: nkeys u16
     4: next_leaf u32          (leaves: sibling pointer for range scans)
     8: leftmost child u32     (internal nodes)
     12: cells, packed:
         leaf cell:     [klen u16][vlen u16][key][value]
         internal cell: [klen u16][key][child u32]

   Nodes are decoded to OCaml lists per operation and re-encoded on change
   (the pager cache keeps this cheap); splits propagate upward and grow a
   new root when needed.  Deletion removes the cell without rebalancing
   (lazy deletion, as several embedded engines do). *)

let header = 12
let leaf_kind = 1
let internal_kind = 2
let capacity = Pager.page_size - header

type leaf = { l_next : int; l_cells : (string * string) list }
type internal = { i_left : int; i_cells : (string * int) list }
type node = Leaf of leaf | Internal of internal

(* ---- encode / decode -------------------------------------------------------- *)

let u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let pu16 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let u32 b off = u16 b off lor (u16 b (off + 2) lsl 16)

let pu32 b off v =
  pu16 b off (v land 0xFFFF);
  pu16 b (off + 2) ((v lsr 16) land 0xFFFF)

let decode b =
  let kind = Char.code (Bytes.get b 0) in
  let nkeys = u16 b 1 in
  if kind = leaf_kind then begin
    let off = ref header in
    let cells =
      List.init nkeys (fun _ ->
          let klen = u16 b !off and vlen = u16 b (!off + 2) in
          let key = Bytes.sub_string b (!off + 4) klen in
          let value = Bytes.sub_string b (!off + 4 + klen) vlen in
          off := !off + 4 + klen + vlen;
          (key, value))
    in
    Leaf { l_next = u32 b 4; l_cells = cells }
  end
  else begin
    let off = ref header in
    let cells =
      List.init nkeys (fun _ ->
          let klen = u16 b !off in
          let key = Bytes.sub_string b (!off + 2) klen in
          let child = u32 b (!off + 2 + klen) in
          off := !off + 6 + klen;
          (key, child))
    in
    Internal { i_left = u32 b 8; i_cells = cells }
  end

let leaf_bytes cells =
  List.fold_left (fun a (k, v) -> a + 4 + String.length k + String.length v) 0 cells

let internal_bytes cells =
  List.fold_left (fun a (k, _) -> a + 6 + String.length k) 0 cells

let encode node =
  let b = Bytes.make Pager.page_size '\000' in
  (match node with
  | Leaf { l_next; l_cells } ->
      Bytes.set b 0 (Char.chr leaf_kind);
      pu16 b 1 (List.length l_cells);
      pu32 b 4 l_next;
      let off = ref header in
      List.iter
        (fun (k, v) ->
          pu16 b !off (String.length k);
          pu16 b (!off + 2) (String.length v);
          Bytes.blit_string k 0 b (!off + 4) (String.length k);
          Bytes.blit_string v 0 b (!off + 4 + String.length k) (String.length v);
          off := !off + 4 + String.length k + String.length v)
        l_cells
  | Internal { i_left; i_cells } ->
      Bytes.set b 0 (Char.chr internal_kind);
      pu16 b 1 (List.length i_cells);
      pu32 b 8 i_left;
      let off = ref header in
      List.iter
        (fun (k, child) ->
          pu16 b !off (String.length k);
          Bytes.blit_string k 0 b (!off + 2) (String.length k);
          pu32 b (!off + 2 + String.length k) child;
          off := !off + 6 + String.length k)
        i_cells);
  b

let read_node pager page = decode (Pager.read_page pager page)
let write_node pager page node = Pager.write_page pager page (encode node)

(* ---- creation ---------------------------------------------------------------- *)

(* Returns the root page of a fresh empty tree. *)
let create pager =
  let root = Pager.alloc_page pager in
  write_node pager root (Leaf { l_next = 0; l_cells = [] });
  root

(* ---- search ------------------------------------------------------------------- *)

let rec find_leaf pager page key =
  match read_node pager page with
  | Leaf _ -> page
  | Internal { i_left; i_cells } ->
      let child =
        List.fold_left
          (fun acc (k, c) -> if key >= k then c else acc)
          i_left i_cells
      in
      find_leaf pager child key

let lookup pager ~root key =
  match read_node pager (find_leaf pager root key) with
  | Leaf { l_cells; _ } -> List.assoc_opt key l_cells
  | Internal _ -> None

(* Iterate bindings with key >= [start] in order; [f] returns false to
   stop. *)
let iter_from pager ~root ~start f =
  let rec walk page =
    match read_node pager page with
    | Internal _ -> ()
    | Leaf { l_next; l_cells } ->
        let continue_ =
          List.for_all
            (fun (k, v) -> if k >= start then f k v else true)
            l_cells
        in
        if continue_ && l_next <> 0 then walk l_next
  in
  walk (find_leaf pager root start)

let iter_all pager ~root f = iter_from pager ~root ~start:"" (fun k v -> f k v; true)

(* ---- insertion ------------------------------------------------------------------ *)

let split_list cells =
  let n = List.length cells in
  let rec take i = function
    | [] -> ([], [])
    | x :: rest ->
        if i = 0 then ([], x :: rest)
        else
          let l, r = take (i - 1) rest in
          (x :: l, r)
  in
  take (n / 2) cells

(* Insert into the subtree at [page]; returns [Some (sep, new_page)] if the
   node split. *)
let rec insert_at pager page key value =
  match read_node pager page with
  | Leaf { l_next; l_cells } ->
      let rec put = function
        | [] -> [ (key, value) ]
        | (k, v) :: rest ->
            if k = key then (key, value) :: rest
            else if k > key then (key, value) :: (k, v) :: rest
            else (k, v) :: put rest
      in
      let cells = put l_cells in
      if leaf_bytes cells <= capacity then begin
        write_node pager page (Leaf { l_next; l_cells = cells });
        None
      end
      else begin
        let left, right = split_list cells in
        let new_page = Pager.alloc_page pager in
        write_node pager new_page (Leaf { l_next; l_cells = right });
        write_node pager page (Leaf { l_next = new_page; l_cells = left });
        Some (fst (List.hd right), new_page)
      end
  | Internal { i_left; i_cells } -> (
      let child =
        List.fold_left
          (fun acc (k, c) -> if key >= k then c else acc)
          i_left i_cells
      in
      match insert_at pager child key value with
      | None -> None
      | Some (sep, new_child) ->
          let rec put = function
            | [] -> [ (sep, new_child) ]
            | (k, c) :: rest ->
                if k > sep then (sep, new_child) :: (k, c) :: rest
                else (k, c) :: put rest
          in
          let cells = put i_cells in
          if internal_bytes cells <= capacity then begin
            write_node pager page (Internal { i_left; i_cells = cells });
            None
          end
          else begin
            let left, right = split_list cells in
            (* the middle key moves up *)
            match right with
            | (mid_key, mid_child) :: right_rest ->
                let new_page = Pager.alloc_page pager in
                write_node pager new_page
                  (Internal { i_left = mid_child; i_cells = right_rest });
                write_node pager page (Internal { i_left; i_cells = left });
                Some (mid_key, new_page)
            | [] -> None
          end)

(* Insert, growing a new root if the old one split; returns the (possibly
   new) root page. *)
let insert pager ~root key value =
  match insert_at pager root key value with
  | None -> root
  | Some (sep, new_page) ->
      let new_root = Pager.alloc_page pager in
      write_node pager new_root
        (Internal { i_left = root; i_cells = [ (sep, new_page) ] });
      new_root

(* ---- deletion (lazy: no rebalancing) ---------------------------------------------- *)

let delete pager ~root key =
  let page = find_leaf pager root key in
  match read_node pager page with
  | Internal _ -> false
  | Leaf { l_next; l_cells } ->
      if List.mem_assoc key l_cells then begin
        write_node pager page
          (Leaf { l_next; l_cells = List.remove_assoc key l_cells });
        true
      end
      else false

let cardinal pager ~root =
  let n = ref 0 in
  iter_all pager ~root (fun _ _ -> incr n);
  !n
