(* Engine packaged as a Treasury.Vfs.S module (all baselines share it). *)

type t = Engine.t

let name = Engine.name
let openf = Engine.openf
let mkdir = Engine.mkdir
let rmdir = Engine.rmdir
let unlink = Engine.unlink
let rename = Engine.rename
let stat = Engine.stat
let lstat = Engine.lstat
let readdir = Engine.readdir
let chmod = Engine.chmod
let chown = Engine.chown
let symlink = Engine.symlink
let readlink = Engine.readlink
let truncate = Engine.truncate
let close = Engine.close
let read = Engine.read
let pread = Engine.pread
let write = Engine.write
let pwrite = Engine.pwrite
let lseek = Engine.lseek
let fsync = Engine.fsync
let fstat = Engine.fstat
let ftruncate = Engine.ftruncate
