lib/baselines/strata.ml: Bytes Engine Hashtbl List Mpk Nvm Option Printf Result Sim String Treasury
