lib/baselines/ext4_dax.ml: Engine Engine_vfs Mpk Nvm Treasury
