lib/baselines/nova.ml: Engine Engine_vfs Mpk Nvm Treasury
