lib/baselines/engine.ml: Array Bytes Float Hashtbl List Mpk Nvm Printf Result Sim String Treasury
