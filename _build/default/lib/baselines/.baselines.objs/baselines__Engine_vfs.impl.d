lib/baselines/engine_vfs.ml: Engine
