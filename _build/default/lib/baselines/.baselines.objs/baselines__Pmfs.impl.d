lib/baselines/pmfs.ml: Engine Engine_vfs Mpk Nvm Treasury
