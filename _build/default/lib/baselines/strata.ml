(* Strata (Kwon et al., SOSP'17) as needed for the paper's comparison: a
   cross-media file system whose LibFS appends every update to a per-process
   NVM log in user space (fast: no system call) and relies on the kernel to
   *digest* the log into the shared area later.

   The two properties the paper measures:
   - the fast path: an append is one log write + fence in user space, so
     single-process appends beat even NOVA (Table 2);
   - the sharing collapse: leases are per-process, so when two processes
     touch the same file or directory, every ping-pong forces a kernel
     digest of the holder's log before the lease moves — append latency
     jumps from 1.7 µs to 35 µs and create to 284 µs (Table 2, §2.2), and
     creates write two log records to keep metadata consistent.

   The digested (shared) area is an ungated Engine instance; digests enter
   the kernel once per batch.  Pending data lives in the DRAM overlay and
   its NVM log writes are charged against the device. *)

module E = Treasury.Errno
module Ft = Treasury.Fs_types
module Pathx = Treasury.Pathx
module Gate = Treasury.Gate

let log_record_header = 64
let digest_threshold = 1 lsl 20 (* 1 MB of pending log *)

type pending_file = {
  mutable p_created : (int * int) option;  (* kind, mode — if not yet digested *)
  mutable p_extents : (int * string) list;  (* newest first *)
  mutable p_size : int;  (* size including pending writes; -1 = unknown *)
  mutable p_unlinked : bool;
}

type pstate = {
  ps_pid : int;
  ps_log_base : int;  (* byte offset of this process's log region *)
  mutable ps_log_used : int;
  ps_pending : (string, pending_file) Hashtbl.t;
  ps_leases : (string, unit) Hashtbl.t;
  ps_fds : (int, fd_state) Hashtbl.t;
  mutable ps_next_fd : int;
  ps_lock : Sim.Mutex.t;
      (* the per-process LibFS lock: one update log per process, so threads
         of a process serialize — why Strata stays flat as threads grow in
         the paper's Figure 9(a)/(b) *)
}

and fd_state = {
  fd_path : string;
  mutable fd_offset : int;
  fd_append : bool;
  fd_writable : bool;
}

type t = {
  kernel : Engine.t;
  dev : Nvm.Device.t;
  gate : Gate.t;
  procs : (int, pstate) Hashtbl.t;
  leases : (string, int) Hashtbl.t;  (* path -> holder pid *)
  log_area_base : int;
  log_area_per_proc : int;
  mutable next_log_slot : int;
  mutable digests : int;  (* observability *)
  mutable lease_acquires : int;
  lease_lock : Sim.Mutex.t;  (* serializes lease acquisition in the kernel *)
}

let ( let* ) = Result.bind

let create ?(pages = 65536) ?(perf = Nvm.Perf.optane) () =
  let dev = Nvm.Device.create ~perf ~size:(pages * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  let cfg =
    {
      Engine.label = "strata-shared";
      journal = Engine.J_log 64;
      alloc = Engine.A_per_thread 4;
      data_write = Engine.W_in_place_nt;
      dir = Engine.D_dram_index;
      index_update = false;
      gated = false;  (* digests batch their own kernel entry *)
      op_overhead = 60;
    }
  in
  let kernel = Engine.format cfg dev mpk in
  {
    kernel;
    dev;
    gate = Gate.create mpk;
    procs = Hashtbl.create 8;
    leases = Hashtbl.create 64;
    (* Log regions are carved from the top of the device address space; log
       writes are charged as NVM traffic against a per-process window. *)
    log_area_base = (pages - 1024) * Nvm.page_size;
    log_area_per_proc = 256 * Nvm.page_size;
    next_log_slot = 0;
    digests = 0;
    lease_acquires = 0;
    lease_lock = Sim.Mutex.create ~name:"strata-leases" ();
  }

let pstate t =
  let pid = (Sim.self_proc ()).Sim.Proc.pid in
  match Hashtbl.find_opt t.procs pid with
  | Some ps -> ps
  | None ->
      let slot = t.next_log_slot in
      t.next_log_slot <- slot + 1;
      let ps =
        {
          ps_pid = pid;
          ps_log_base = t.log_area_base + (slot mod 4 * t.log_area_per_proc);
          ps_log_used = 0;
          ps_pending = Hashtbl.create 32;
          ps_leases = Hashtbl.create 32;
          ps_fds = Hashtbl.create 16;
          ps_next_fd = 3;
          ps_lock = Sim.Mutex.create ~name:(Printf.sprintf "strata-libfs-%d" pid) ();
        }
      in
      (* The kernel maps the process's log region into its address space so
         the LibFS can append without system calls. *)
      Gate.syscall t.gate (fun () ->
          let first = ps.ps_log_base / Nvm.page_size in
          let count = t.log_area_per_proc / Nvm.page_size in
          for page = first to first + count - 1 do
            Mpk.map_page t.kernel.Engine.mpk ~pid ~page ~writable:true ~pkey:0
          done);
      Hashtbl.replace t.procs pid ps;
      ps

let pending t ps path =
  match Hashtbl.find_opt ps.ps_pending path with
  | Some p -> p
  | None ->
      let size =
        match Engine.stat t.kernel path with
        | Ok st -> st.Ft.st_size
        | Error _ -> -1
      in
      let p =
        { p_created = None; p_extents = []; p_size = size; p_unlinked = false }
      in
      Hashtbl.replace ps.ps_pending path p;
      p

(* Append a record to the process log: user-space NVM write + fence, plus
   the LibFS bookkeeping (record construction, checksum, in-DRAM index
   update) that makes a Strata append slower than a ZoFS one despite both
   avoiding the kernel (Table 2). *)
let log_append t ps ~bytes =
  Sim.advance 900;
  let total = log_record_header + bytes in
  let room = t.log_area_per_proc - 8192 in
  let addr = ps.ps_log_base + (ps.ps_log_used mod room) in
  (* charge the whole record; wrap the address if it straddles the end *)
  let n1 = min total (room - (ps.ps_log_used mod room)) in
  Nvm.Device.nt_write_string t.dev addr (String.make n1 '\000');
  if total > n1 then
    Nvm.Device.nt_write_string t.dev ps.ps_log_base (String.make (total - n1) '\000');
  Nvm.Device.sfence t.dev;
  ps.ps_log_used <- ps.ps_log_used + total

(* Digest a process's log into the shared area (runs in the kernel).  Each
   pending op is re-applied — the double write the paper charges Strata
   for. *)
let digest t ps =
  t.digests <- t.digests + 1;
  Gate.syscall t.gate (fun () ->
      let entries =
        Hashtbl.fold (fun path p acc -> (path, p) :: acc) ps.ps_pending []
        |> List.sort compare
      in
      (* fixed digestion overhead (log scan, lease bookkeeping, journaling)
         plus per-entry validation — the reason shared files are 19x slower
         on Strata (paper 2.2) *)
      Sim.advance (6000 + (2000 * List.length entries));
      List.iter
        (fun (path, p) ->
          (* re-read the log (charged) *)
          let pending_bytes =
            List.fold_left (fun a (_, d) -> a + String.length d) 0 p.p_extents
          in
          if pending_bytes > 0 then
            ignore (Nvm.Device.read_bytes t.dev ps.ps_log_base (min 4096 pending_bytes));
          (match p.p_created with
          | Some (kind, mode) when not p.p_unlinked ->
              if kind = Engine.kind_directory then
                ignore (Engine.mkdir t.kernel path mode)
              else (
                match
                  Engine.openf t.kernel path [ Ft.O_CREAT; Ft.O_WRONLY ] mode
                with
                | Ok fd -> ignore (Engine.close t.kernel fd)
                | Error _ -> ())
          | _ -> ());
          if (not p.p_unlinked) && p.p_extents <> [] then begin
            match Engine.openf t.kernel path [ Ft.O_WRONLY ] 0 with
            | Ok fd ->
                List.iter
                  (fun (off, data) ->
                    ignore (Engine.pwrite t.kernel fd ~off data))
                  (List.rev p.p_extents);
                ignore (Engine.close t.kernel fd)
            | Error _ -> ()
          end;
          if p.p_unlinked then ignore (Engine.unlink t.kernel path))
        entries;
      Hashtbl.reset ps.ps_pending;
      ps.ps_log_used <- 0)

(* Acquire the lease on [path] for the calling process.  If another process
   holds it, its log is digested first (lease revocation). *)
let ensure_lease t ps path =
  if Hashtbl.mem ps.ps_leases path then Sim.advance 15 (* cached lease check *)
  else begin
    t.lease_acquires <- t.lease_acquires + 1;
    (* Lease acquisition is a kernel operation, serialized by the lease
       manager's lock: the check, the revocation (which digests the current
       holder's log) and the handover are one atomic step. *)
    Sim.Mutex.with_lock t.lease_lock (fun () ->
        Gate.syscall t.gate (fun () ->
            match Hashtbl.find_opt t.leases path with
            | Some holder when holder <> ps.ps_pid -> (
                match Hashtbl.find_opt t.procs holder with
                | Some hps -> Hashtbl.remove hps.ps_leases path
                | None -> ())
            | _ -> ());
        (* revocation digests the holder's log before the lease moves *)
        (match Hashtbl.find_opt t.leases path with
        | Some holder when holder <> ps.ps_pid -> (
            match Hashtbl.find_opt t.procs holder with
            | Some hps -> digest t hps
            | None -> ())
        | _ -> ());
        Hashtbl.replace t.leases path ps.ps_pid;
        Hashtbl.replace ps.ps_leases path ())
  end

let maybe_self_digest t ps =
  if ps.ps_log_used > digest_threshold then digest t ps

(* Any operation we did not give a fast path digests first and falls back to
   the shared area. *)
let slow_path t ps f =
  digest t ps;
  f ()

(* ---- Vfs.S ------------------------------------------------------------------- *)

let name _ = "strata"

let exists_now t ps path =
  match Hashtbl.find_opt ps.ps_pending path with
  | Some p -> if p.p_unlinked then false else p.p_created <> None || p.p_size >= 0
  | None -> Result.is_ok (Engine.stat t.kernel path)

let parent_exists t ps path =
  let dir = Pathx.dirname path in
  dir = "/" || exists_now t ps dir

let openf t path flags mode =
  let ps = pstate t in
  Sim.Mutex.with_lock ps.ps_lock @@ fun () ->
  let path = Pathx.normalize path in
  ensure_lease t ps path;
  let wants = Ft.wants_of_flags flags in
  let writable = List.mem `W wants in
  (* take the parent's lease first: a revocation digests whoever created
     the directory, making it visible in the shared area *)
  ensure_lease t ps (Pathx.dirname path);
  let present = exists_now t ps path in
  if (not present) && not (Ft.flag_mem Ft.O_CREAT flags) then Error E.ENOENT
  else if (not present) && not (parent_exists t ps path) then Error E.ENOENT
  else if present && Ft.flag_mem Ft.O_CREAT flags && Ft.flag_mem Ft.O_EXCL flags
  then Error E.EEXIST
  else begin
    if not present then begin
      (* metadata consistency requires two log records per create (§2.2) *)
      log_append t ps ~bytes:64;
      log_append t ps ~bytes:64;
      let p = pending t ps path in
      p.p_created <- Some (Engine.kind_regular, mode);
      p.p_unlinked <- false;
      p.p_size <- 0
    end
    else if Ft.flag_mem Ft.O_TRUNC flags && writable then begin
      log_append t ps ~bytes:32;
      let p = pending t ps path in
      p.p_extents <- [];
      p.p_size <- 0;
      if p.p_created = None then p.p_created <- Some (Engine.kind_regular, mode)
    end;
    maybe_self_digest t ps;
    let fd = ps.ps_next_fd in
    ps.ps_next_fd <- fd + 1;
    Hashtbl.replace ps.ps_fds fd
      {
        fd_path = path;
        fd_offset = 0;
        fd_append = Ft.flag_mem Ft.O_APPEND flags;
        fd_writable = writable;
      };
    Ok fd
  end

let fd_of t fdn =
  let ps = pstate t in
  match Hashtbl.find_opt ps.ps_fds fdn with
  | Some s -> Ok (ps, s)
  | None -> Error E.EBADF

let file_size t ps path =
  match Hashtbl.find_opt ps.ps_pending path with
  | Some p when p.p_size >= 0 -> p.p_size
  | _ -> ( match Engine.stat t.kernel path with Ok st -> st.Ft.st_size | Error _ -> 0)

let write t fdn data =
  let* ps, s = fd_of t fdn in
  if not s.fd_writable then Error E.EBADF
  else
    Sim.Mutex.with_lock ps.ps_lock @@ fun () ->
    begin
    ensure_lease t ps s.fd_path;
    let off = if s.fd_append then file_size t ps s.fd_path else s.fd_offset in
    log_append t ps ~bytes:(String.length data);
    let p = pending t ps s.fd_path in
    p.p_extents <- (off, data) :: p.p_extents;
    p.p_size <- max (max p.p_size 0) (off + String.length data);
    s.fd_offset <- off + String.length data;
    maybe_self_digest t ps;
    Ok (String.length data)
    end

let pwrite t fdn ~off data =
  let* ps, s = fd_of t fdn in
  if not s.fd_writable then Error E.EBADF
  else
    Sim.Mutex.with_lock ps.ps_lock @@ fun () ->
    begin
    ensure_lease t ps s.fd_path;
    log_append t ps ~bytes:(String.length data);
    let p = pending t ps s.fd_path in
    p.p_extents <- (off, data) :: p.p_extents;
    p.p_size <- max (max p.p_size 0) (off + String.length data);
    maybe_self_digest t ps;
    Ok (String.length data)
    end

(* Read = shared-area content overlaid with pending extents (LibFS checks
   its own log first). *)
let read_merged t ps path ~off buf boff len =
  (* LibFS extent-index search *)
  Sim.advance 400;
  let size = file_size t ps path in
  if off >= size then Ok 0
  else begin
    let len = min len (size - off) in
    (* base content from the shared area *)
    (match Engine.openf t.kernel path [ Ft.O_RDONLY ] 0 with
    | Ok fd ->
        ignore (Engine.pread t.kernel fd ~off buf boff len);
        ignore (Engine.close t.kernel fd)
    | Error _ -> Bytes.fill buf boff len '\000');
    (* overlay pending extents, oldest first *)
    (match Hashtbl.find_opt ps.ps_pending path with
    | Some p ->
        List.iter
          (fun (eoff, data) ->
            let elen = String.length data in
            let lo = max off eoff and hi = min (off + len) (eoff + elen) in
            if lo < hi then begin
              (* charged read of the log extent *)
              ignore (Nvm.Device.read_bytes t.dev ps.ps_log_base (min 4096 (hi - lo)));
              Bytes.blit_string data (lo - eoff) buf (boff + lo - off) (hi - lo)
            end)
          (List.rev p.p_extents)
    | None -> ());
    Ok len
  end

let read t fdn buf boff len =
  let* ps, s = fd_of t fdn in
  Sim.Mutex.with_lock ps.ps_lock @@ fun () ->
  ensure_lease t ps s.fd_path;
  let* n = read_merged t ps s.fd_path ~off:s.fd_offset buf boff len in
  s.fd_offset <- s.fd_offset + n;
  Ok n

let pread t fdn ~off buf boff len =
  let* ps, s = fd_of t fdn in
  Sim.Mutex.with_lock ps.ps_lock @@ fun () ->
  ensure_lease t ps s.fd_path;
  read_merged t ps s.fd_path ~off buf boff len

let close t fdn =
  let* ps, _ = fd_of t fdn in
  Hashtbl.remove ps.ps_fds fdn;
  Ok ()

let lseek t fdn pos whence =
  let* ps, s = fd_of t fdn in
  let target =
    match whence with
    | Ft.SEEK_SET -> pos
    | Ft.SEEK_CUR -> s.fd_offset + pos
    | Ft.SEEK_END -> file_size t ps s.fd_path + pos
  in
  if target < 0 then Error E.EINVAL
  else begin
    s.fd_offset <- target;
    Ok target
  end

let fsync t fdn =
  let* ps, _ = fd_of t fdn in
  (* log writes are already fenced; fsync is cheap *)
  ignore ps;
  Sim.advance 30;
  Ok ()

let fstat t fdn =
  let* ps, s = fd_of t fdn in
  match Engine.stat t.kernel s.fd_path with
  | Ok st -> Ok { st with Ft.st_size = file_size t ps s.fd_path }
  | Error _ ->
      if exists_now t ps s.fd_path then
        Ok
          {
            Ft.st_ino = 0;
            st_kind = Ft.Regular;
            st_mode = 0o644;
            st_uid = (Sim.self_proc ()).Sim.Proc.uid;
            st_gid = (Sim.self_proc ()).Sim.Proc.gid;
            st_size = file_size t ps s.fd_path;
            st_nlink = 1;
            st_atime = Sim.now ();
            st_mtime = Sim.now ();
            st_ctime = Sim.now ();
          }
      else Error E.EBADF

let mkdir t path mode =
  let ps = pstate t in
  Sim.Mutex.with_lock ps.ps_lock @@ fun () ->
  let path = Pathx.normalize path in
  ensure_lease t ps (Pathx.dirname path);
  ensure_lease t ps path;
  if exists_now t ps path then Error E.EEXIST
  else if not (parent_exists t ps path) then Error E.ENOENT
  else begin
    log_append t ps ~bytes:64;
    log_append t ps ~bytes:64;
    let p = pending t ps path in
    p.p_created <- Some (Engine.kind_directory, mode);
    p.p_size <- 0;
    maybe_self_digest t ps;
    Ok ()
  end

let unlink t path =
  let ps = pstate t in
  Sim.Mutex.with_lock ps.ps_lock @@ fun () ->
  let path = Pathx.normalize path in
  ensure_lease t ps path;
  ensure_lease t ps (Pathx.dirname path);
  if not (exists_now t ps path) then Error E.ENOENT
  else begin
    log_append t ps ~bytes:64;
    let p = pending t ps path in
    p.p_unlinked <- true;
    p.p_created <- None;
    p.p_extents <- [];
    p.p_size <- -1;
    maybe_self_digest t ps;
    Ok ()
  end

let stat t path =
  let ps = pstate t in
  let path = Pathx.normalize path in
  match Hashtbl.find_opt ps.ps_pending path with
  | Some p when p.p_unlinked -> Error E.ENOENT
  | Some p when p.p_created <> None ->
      let kind, mode = Option.get p.p_created in
      Ok
        {
          Ft.st_ino = 0;
          st_kind =
            (if kind = Engine.kind_directory then Ft.Directory else Ft.Regular);
          st_mode = mode;
          st_uid = (Sim.self_proc ()).Sim.Proc.uid;
          st_gid = (Sim.self_proc ()).Sim.Proc.gid;
          st_size = max 0 p.p_size;
          st_nlink = 1;
          st_atime = Sim.now ();
          st_mtime = Sim.now ();
          st_ctime = Sim.now ();
        }
  | _ -> (
      match Engine.stat t.kernel path with
      | Ok st -> Ok { st with Ft.st_size = file_size t ps path }
      | Error e -> Error e)

let lstat = stat

(* Operations without a LibFS fast path: digest, then shared area. *)
let rmdir t path =
  let ps = pstate t in
  slow_path t ps (fun () -> Engine.rmdir t.kernel path)

let rename t a b =
  let ps = pstate t in
  slow_path t ps (fun () -> Engine.rename t.kernel a b)

let readdir t path =
  let ps = pstate t in
  slow_path t ps (fun () -> Engine.readdir t.kernel path)

let chmod t path mode =
  let ps = pstate t in
  slow_path t ps (fun () -> Engine.chmod t.kernel path mode)

let chown t path uid gid =
  let ps = pstate t in
  slow_path t ps (fun () -> Engine.chown t.kernel path uid gid)

let symlink t ~target ~link =
  let ps = pstate t in
  slow_path t ps (fun () -> Engine.symlink t.kernel ~target ~link)

let readlink t path =
  let ps = pstate t in
  slow_path t ps (fun () -> Engine.readlink t.kernel path)

let truncate t path len =
  let ps = pstate t in
  slow_path t ps (fun () -> Engine.truncate t.kernel path len)

let ftruncate t fdn len =
  let* ps, s = fd_of t fdn in
  slow_path t ps (fun () -> Engine.truncate t.kernel s.fd_path len)

let digest_count t = t.digests
let lease_acquire_count t = t.lease_acquires

let fs ?pages ?perf () = Treasury.Vfs.Fs ((module struct
  type nonrec t = t

  let name = name
  let openf = openf
  let mkdir = mkdir
  let rmdir = rmdir
  let unlink = unlink
  let rename = rename
  let stat = stat
  let lstat = lstat
  let readdir = readdir
  let chmod = chmod
  let chown = chown
  let symlink = symlink
  let readlink = readlink
  let truncate = truncate
  let close = close
  let read = read
  let pread = pread
  let write = write
  let pwrite = pwrite
  let lseek = lseek
  let fsync = fsync
  let fstat = fstat
  let ftruncate = ftruncate
end), create ?pages ?perf ())
