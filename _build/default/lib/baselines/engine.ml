(* A parameterizable kernel-space NVM file system engine.

   The paper's comparison systems — Ext4-DAX, PMFS, NOVA (and NOVAi), plus
   the kernel area of Strata — share a structure (inode table, block-mapped
   files, dentry-block directories) and differ in the design decisions the
   paper attributes their performance to: how every operation crosses the
   kernel boundary, how the journal/log is written, whether data writes are
   in-place or copy-on-write, how the allocator is partitioned, and how
   directories are searched.  Those decisions are the [config] knobs; see
   pmfs.ml / nova.ml / ext4_dax.ml for the paper-faithful settings.

   The on-NVM format is shared (a simplification documented in DESIGN.md):
   what differs between the baselines is charged through the cost model and
   the concurrency structure, which is what the paper's experiments
   measure. *)

module E = Treasury.Errno
module Ft = Treasury.Fs_types
module Pathx = Treasury.Pathx
module Gate = Treasury.Gate

let page_size = Nvm.page_size

type journal_kind =
  | J_none
  | J_undo of int  (** PMFS: per-op undo record of ~n bytes, no global lock *)
  | J_jbd2 of int  (** Ext4: transactions serialized on the journal lock *)
  | J_log of int  (** NOVA: per-inode log append of ~n bytes *)

type alloc_kind =
  | A_global_lock  (** PMFS: one free list, one lock (stops scaling, §6.1) *)
  | A_global_bitmap  (** Ext4: bitmap scan under a lock *)
  | A_per_thread of int  (** NOVA: the free space pre-split into n pools *)

type data_write_kind =
  | W_in_place_nt  (** non-temporal stores (PMFS-nocache, NOVA data path) *)
  | W_in_place_clwb  (** normal stores + clwb per line (default PMFS) *)
  | W_cow  (** NOVA: allocate new pages, write, swap, free old *)

type dir_kind =
  | D_linear  (** scan dentry blocks (PMFS/Ext4) *)
  | D_dram_index  (** DRAM index, cost grows with log2(n) (NOVA) *)

type config = {
  label : string;
  journal : journal_kind;
  alloc : alloc_kind;
  data_write : data_write_kind;
  dir : dir_kind;
  index_update : bool;  (** false for the -noindex variants of Figure 8 *)
  gated : bool;  (** every op pays the syscall cost (kernel FS) *)
  op_overhead : int;  (** ns of fixed per-op software overhead (VFS etc.) *)
}

(* ---- on-NVM layout -------------------------------------------------------- *)

let inode_size = 256
let inodes_per_page = page_size / inode_size
let dentry_size = 64
let dentries_per_page = page_size / dentry_size
let max_name = 53

(* inode field offsets *)
let i_kind = 0 (* 0 = free *)
let i_mode = 4
let i_uid = 8
let i_gid = 12
let i_nlink = 16
let i_size = 24
let i_mtime = 32
let i_direct = 40 (* 12 × u64 *)
let n_direct = 12
let i_indirect = i_direct + (n_direct * 8)
let i_dindirect = i_indirect + 8
let i_symlink = i_dindirect + 8 (* u16 len + bytes, up to ~100 *)
let max_symlink = inode_size - i_symlink - 2

let kind_regular = 1
let kind_directory = 2
let kind_symlink = 3

(* dentry field offsets *)
let d_ino = 0 (* u64; 0 = free slot *)
let d_kind = 8
let d_namelen = 9
let d_name = 10

let ptrs_per_page = page_size / 8

type fd_state = {
  fd_ino : int;
  mutable fd_offset : int;
  fd_append : bool;
  fd_readable : bool;
  fd_writable : bool;
}

type t = {
  cfg : config;
  dev : Nvm.Device.t;
  mpk : Mpk.t;
  gate : Gate.t;
  ninodes : int;
  inode_base : int;  (* byte offset of the inode table *)
  data_first_page : int;
  npages : int;
  (* volatile state *)
  free_pools : (int * Sim.Mutex.t) ref array;  (* head page per pool *)
  journal_lock : Sim.Mutex.t;
  inode_locks : (int, Sim.Rwlock.t) Hashtbl.t;
  dir_index : (int, (string, int) Hashtbl.t) Hashtbl.t;  (* dir ino -> name -> ino *)
  dir_free_slots : (int, int list ref) Hashtbl.t;  (* dir ino -> freed dentry addrs *)
  file_index_cost : int;  (* per-write radix-tree update cost (NOVA) *)
  fds : (int, fd_state) Hashtbl.t;
  mutable next_fd : int;
  (* inode allocation is partitioned like the block pools: per-core for
     NOVA, a single contended cursor for PMFS/Ext4 *)
  inode_cursors : (int ref * Sim.Mutex.t) array;
}

(* ---- low-level helpers ---------------------------------------------------- *)

let inode_addr t ino = t.inode_base + (ino * inode_size)
let rd32 t a = Nvm.Device.read_u32 t.dev a
let rd64 t a = Nvm.Device.read_u64 t.dev a

let wr32 t a v =
  Nvm.Device.write_u32 t.dev a v;
  Nvm.Device.persist_range t.dev a 4

let wr64 t a v =
  Nvm.Device.write_u64 t.dev a v;
  Nvm.Device.persist_range t.dev a 8

let inode_lock t ino =
  match Hashtbl.find_opt t.inode_locks ino with
  | Some l -> l
  | None ->
      let l = Sim.Rwlock.create ~name:(Printf.sprintf "%s-ino%d" t.cfg.label ino) () in
      Hashtbl.replace t.inode_locks ino l;
      l

(* ---- journal / log charging ------------------------------------------------ *)

(* Each metadata operation pays its consistency mechanism.  The journal
   area is modelled as a ring we only charge writes into. *)
let journal_commit t ~bytes_hint =
  match t.cfg.journal with
  | J_none -> ()
  | J_undo n ->
      (* PMFS fine-grained undo logging: record + flush + commit + fence *)
      Sim.advance 40;
      Nvm.Device.nt_write_string t.dev 0 (String.make (min 64 (n + bytes_hint)) '\000')
      |> ignore;
      Nvm.Device.sfence t.dev
  | J_jbd2 n ->
      Sim.Mutex.with_lock t.journal_lock (fun () ->
          Sim.advance 120;
          Nvm.Device.nt_write_string t.dev 0
            (String.make (min 256 (n + bytes_hint)) '\000');
          Nvm.Device.sfence t.dev;
          Nvm.Device.sfence t.dev (* commit record ordering *))
  | J_log n ->
      (* NOVA per-inode log append: entry + flush + tail update *)
      Sim.advance 30;
      Nvm.Device.nt_write_string t.dev 0 (String.make (min 64 (n + bytes_hint)) '\000');
      Nvm.Device.sfence t.dev

(* The journal writes above target byte 0 of the device only as a cost
   carrier; byte 0 is the superblock's scratch area reserved for this. *)

(* ---- block allocation ------------------------------------------------------- *)

let pool_of_thread t =
  match t.cfg.alloc with
  | A_global_lock | A_global_bitmap -> 0
  | A_per_thread n -> (Sim.self_tid () land max_int) mod n

(* Free pages are chained through their first u64. *)
let alloc_page t =
  let pool_idx = pool_of_thread t in
  let pool = t.free_pools.(pool_idx) in
  let _, lock = !pool in
  Sim.Mutex.with_lock lock (fun () ->
      (* Work performed while holding the allocator lock: this is what makes
         PMFS's global allocator stop scaling after a few threads
         (Figure 7(d)) while NOVA's per-core pools barely serialize. *)
      (match t.cfg.alloc with
      | A_global_lock -> Sim.advance 700 (* free-list bookkeeping + undo log *)
      | A_global_bitmap -> Sim.advance 900 (* bitmap scan + jbd2 credit *)
      | A_per_thread _ -> Sim.advance 80);
      let head, _ = !pool in
      if head = 0 then Error E.ENOSPC
      else begin
        let next = rd64 t (head * page_size) in
        pool := (next, lock);
        Ok head
      end)

let free_page t page =
  let pool_idx = pool_of_thread t in
  let pool = t.free_pools.(pool_idx) in
  let _, lock = !pool in
  Sim.Mutex.with_lock lock (fun () ->
      let head, _ = !pool in
      wr64 t (page * page_size) head;
      pool := (page, lock))

let alloc_zeroed_page t =
  match alloc_page t with
  | Error e -> Error e
  | Ok page ->
      Nvm.Device.fill t.dev (page * page_size) page_size '\000';
      Nvm.Device.persist_range t.dev (page * page_size) page_size;
      Ok page

(* ---- inode management --------------------------------------------------------- *)

let init_inode t ino ~kind ~mode ~uid ~gid =
  let a = inode_addr t ino in
  Nvm.Device.fill t.dev a inode_size '\000';
  Nvm.Device.write_u32 t.dev (a + i_mode) mode;
  Nvm.Device.write_u32 t.dev (a + i_uid) uid;
  Nvm.Device.write_u32 t.dev (a + i_gid) gid;
  Nvm.Device.write_u32 t.dev (a + i_nlink) (if kind = kind_directory then 2 else 1);
  Nvm.Device.write_u64 t.dev (a + i_size) 0;
  Nvm.Device.write_u64 t.dev (a + i_mtime) (Sim.now ());
  Nvm.Device.persist_range t.dev a inode_size;
  (* publish through the kind word *)
  wr32 t (a + i_kind) kind

let alloc_inode t ~kind ~mode ~uid ~gid =
  let npools = Array.length t.inode_cursors in
  let pool = pool_of_thread t mod npools in
  let cursor, lock = t.inode_cursors.(pool) in
  Sim.Mutex.with_lock lock (fun () ->
      (match t.cfg.alloc with
      | A_per_thread _ -> Sim.advance 60
      | A_global_lock | A_global_bitmap -> Sim.advance 250);
      (* each pool owns a contiguous share of the inode space; when the
         share runs out, steal from the global tail (with a scan cost) *)
      let share = (t.ninodes - 1) / npools in
      let base = 1 + (pool * share) in
      let rec hunt i tried =
        if tried >= share then steal 1
        else
          let ino = base + ((!cursor + i) mod share) in
          if rd32 t (inode_addr t ino + i_kind) = 0 then begin
            cursor := (!cursor + i + 1) mod share;
            init_inode t ino ~kind ~mode ~uid ~gid;
            Ok ino
          end
          else hunt (i + 1) (tried + 1)
      and steal ino =
        if ino >= t.ninodes then Error E.ENOSPC
        else if rd32 t (inode_addr t ino + i_kind) = 0 then begin
          Sim.advance 200;
          init_inode t ino ~kind ~mode ~uid ~gid;
          Ok ino
        end
        else steal (ino + 1)
      in
      hunt 0 0)

let inode_kind t ino = rd32 t (inode_addr t ino + i_kind)
let inode_size_of t ino = rd64 t (inode_addr t ino + i_size)

let set_inode_size t ino v =
  wr64 t (inode_addr t ino + i_size) v;
  wr64 t (inode_addr t ino + i_mtime) (Sim.now ())

let free_inode t ino = wr32 t (inode_addr t ino + i_kind) 0

(* ---- block mapping -------------------------------------------------------------- *)

let pointer_addr t ~alloc ino b =
  let ia = inode_addr t ino in
  let get_or_alloc addr =
    let v = rd64 t addr in
    if v <> 0 then Ok v
    else if not alloc then Ok 0
    else
      match alloc_zeroed_page t with
      | Error e -> Error e
      | Ok page ->
          wr64 t addr page;
          Ok page
  in
  if b < n_direct then Ok (Some (ia + i_direct + (b * 8)))
  else if b < n_direct + ptrs_per_page then
    match get_or_alloc (ia + i_indirect) with
    | Error e -> Error e
    | Ok 0 -> Ok None
    | Ok ind -> Ok (Some ((ind * page_size) + ((b - n_direct) * 8)))
  else
    let idx = b - n_direct - ptrs_per_page in
    if idx >= ptrs_per_page * ptrs_per_page then Error E.EFBIG
    else
      match get_or_alloc (ia + i_dindirect) with
      | Error e -> Error e
      | Ok 0 -> Ok None
      | Ok dind -> (
          let outer_addr = (dind * page_size) + (idx / ptrs_per_page * 8) in
          match get_or_alloc outer_addr with
          | Error e -> Error e
          | Ok 0 -> Ok None
          | Ok mid -> Ok (Some ((mid * page_size) + (idx mod ptrs_per_page * 8))))

let block_page t ino b =
  match pointer_addr t ~alloc:false ino b with
  | Ok (Some ptr) -> rd64 t ptr
  | Ok None | Error _ -> 0

let ensure_block t ino b =
  match pointer_addr t ~alloc:true ino b with
  | Error e -> Error e
  | Ok None -> Error E.EIO
  | Ok (Some ptr) -> (
      let page = rd64 t ptr in
      if page <> 0 then Ok page
      else
        match alloc_zeroed_page t with
        | Error e -> Error e
        | Ok page ->
            wr64 t ptr page;
            Ok page)

(* ---- directories ------------------------------------------------------------------ *)

let dir_index t ino =
  match Hashtbl.find_opt t.dir_index ino with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 64 in
      Hashtbl.replace t.dir_index ino h;
      h

let dir_nblocks t ino = (inode_size_of t ino + page_size - 1) / page_size

(* Linear scan over dentry blocks, charging real NVM reads. *)
let dir_scan t ino f =
  let nb = dir_nblocks t ino in
  let result = ref None in
  let b = ref 0 in
  while !result = None && !b < nb do
    let page = block_page t ino !b in
    if page <> 0 then begin
      let i = ref 0 in
      while !result = None && !i < dentries_per_page do
        let a = (page * page_size) + (!i * dentry_size) in
        let dino = rd64 t (a + d_ino) in
        if dino <> 0 then begin
          let nl = Nvm.Device.read_u8 t.dev (a + d_namelen) in
          let name = Nvm.Device.read_string t.dev (a + d_name) nl in
          match f ~addr:a ~ino:dino ~name ~kind:(Nvm.Device.read_u8 t.dev (a + d_kind)) with
          | Some r -> result := Some r
          | None -> ()
        end;
        incr i
      done
    end;
    incr b
  done;
  !result

let dir_lookup t ino name =
  match t.cfg.dir with
  | D_dram_index -> (
      (* NOVA-style DRAM index: cost grows with directory size. *)
      let idx = dir_index t ino in
      let n = max 1 (Hashtbl.length idx) in
      Sim.advance (40 + (30 * int_of_float (Float.log2 (float_of_int n))));
      match Hashtbl.find_opt idx name with
      | Some dino -> Some dino
      | None -> None)
  | D_linear ->
      dir_scan t ino (fun ~addr:_ ~ino:dino ~name:n ~kind:_ ->
          if n = name then Some dino else None)

let dir_free_list t ino =
  match Hashtbl.find_opt t.dir_free_slots ino with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.dir_free_slots ino l;
      l

let dir_insert t ino ~name ~child ~kind =
  if String.length name > max_name then Error E.ENAMETOOLONG
  else begin
    (* O(1) slot choice: a freed slot if one is cached, else the append
       position derived from the directory size (slots are allocated
       densely, removals go through [dir_remove] which caches them). *)
    let free_list = dir_free_list t ino in
    let slot_r =
      match !free_list with
      | a :: rest ->
          free_list := rest;
          Ok a
      | [] -> (
          let size = inode_size_of t ino in
          let nb = size / page_size in
          let used_in_last = size mod page_size / dentry_size in
          if size mod page_size <> 0 then begin
            let page = block_page t ino nb in
            set_inode_size t ino (size + dentry_size);
            Ok ((page * page_size) + (used_in_last * dentry_size))
          end
          else
            match ensure_block t ino nb with
            | Error e -> Error e
            | Ok page ->
                set_inode_size t ino (size + dentry_size);
                Ok (page * page_size))
    in
    match slot_r with
    | Error e -> Error e
    | Ok a ->
        Nvm.Device.write_u8 t.dev (a + d_kind) kind;
        Nvm.Device.write_u8 t.dev (a + d_namelen) (String.length name);
        Nvm.Device.write_string t.dev (a + d_name) name;
        Nvm.Device.persist_range t.dev a dentry_size;
        wr64 t (a + d_ino) child;
        (match t.cfg.dir with
        | D_dram_index -> Hashtbl.replace (dir_index t ino) name child
        | D_linear -> ());
        journal_commit t ~bytes_hint:dentry_size;
        Ok ()
  end

let dir_remove t ino name =
  let found =
    dir_scan t ino (fun ~addr ~ino:dino ~name:n ~kind ->
        if n = name then Some (addr, dino, kind) else None)
  in
  match found with
  | None -> Error E.ENOENT
  | Some (addr, dino, kind) ->
      wr64 t (addr + d_ino) 0;
      let free_list = dir_free_list t ino in
      free_list := addr :: !free_list;
      (match t.cfg.dir with
      | D_dram_index -> Hashtbl.remove (dir_index t ino) name
      | D_linear -> ());
      journal_commit t ~bytes_hint:16;
      Ok (dino, kind)

let dir_entries t ino =
  let acc = ref [] in
  ignore
    (dir_scan t ino (fun ~addr:_ ~ino:dino ~name ~kind ->
         acc := (name, dino, kind) :: !acc;
         None));
  List.rev !acc

let dir_is_empty t ino = dir_entries t ino = []

(* ---- format / create --------------------------------------------------------------- *)

let format cfg dev mpk =
  let npages = Nvm.Device.pages dev in
  let ninodes = max 1024 (min 65536 (npages / 4 * inodes_per_page / 16)) in
  let inode_pages = (ninodes + inodes_per_page - 1) / inodes_per_page in
  let data_first = 1 + inode_pages in
  let npools = match cfg.alloc with A_per_thread n -> n | _ -> 1 in
  let t =
    {
      cfg;
      dev;
      mpk;
      gate = Gate.create mpk;
      ninodes;
      inode_base = page_size;
      data_first_page = data_first;
      npages;
      free_pools =
        Array.init npools (fun i ->
            ref (0, Sim.Mutex.create ~name:(Printf.sprintf "%s-pool%d" cfg.label i) ()));
      journal_lock = Sim.Mutex.create ~name:(cfg.label ^ "-journal") ();
      inode_locks = Hashtbl.create 256;
      dir_index = Hashtbl.create 64;
      dir_free_slots = Hashtbl.create 64;
      file_index_cost = 1600;
      fds = Hashtbl.create 64;
      next_fd = 3;
      inode_cursors =
        Array.init npools (fun i ->
            (ref 0, Sim.Mutex.create ~name:(Printf.sprintf "%s-ialloc%d" cfg.label i) ()));
    }
  in
  Mpk.with_kernel mpk (fun () ->
      Mpk.with_write_window mpk (fun () ->
          (* chain the free pages, split across the pools *)
          let per_pool = (npages - data_first) / npools in
          for pool = 0 to npools - 1 do
            let first = data_first + (pool * per_pool) in
            let last =
              if pool = npools - 1 then npages - 1 else first + per_pool - 1
            in
            let head = ref 0 in
            for p = last downto first do
              Nvm.Device.write_u64 dev (p * page_size) !head;
              head := p
            done;
            let _, lock = !(t.free_pools.(pool)) in
            t.free_pools.(pool) := (!head, lock)
          done;
          Nvm.Device.persist_all dev;
          (* root directory = inode 1 *)
          init_inode t 1 ~kind:kind_directory ~mode:0o777 ~uid:0 ~gid:0));
  t

let root_ino = 1

(* ---- path resolution ----------------------------------------------------------------- *)

let rec resolve t path ~follow_last ~depth =
  if depth > 40 then Error E.ELOOP
  else begin
    let comps = Pathx.components (Pathx.normalize path) in
    let rec step ino cur_path = function
      | [] -> Ok ino
      | name :: rest -> (
          if inode_kind t ino <> kind_directory then Error E.ENOTDIR
          else
            match dir_lookup t ino name with
            | None -> Error E.ENOENT
            | Some child -> (
                let child_path = Pathx.concat cur_path name in
                match inode_kind t child with
                | k when k = kind_symlink && (rest <> [] || follow_last) ->
                    let a = inode_addr t child in
                    let len = Nvm.Device.read_u16 t.dev (a + i_symlink) in
                    let target =
                      Nvm.Device.read_string t.dev (a + i_symlink + 2) len
                    in
                    let base =
                      if Pathx.is_absolute target then Pathx.normalize target
                      else Pathx.concat (Pathx.dirname child_path) target
                    in
                    let full =
                      Pathx.normalize (String.concat "/" (base :: rest))
                    in
                    resolve t full ~follow_last ~depth:(depth + 1)
                | _ -> step child child_path rest))
    in
    step root_ino "/" comps
  end

let resolve_parent t path =
  let path = Pathx.normalize path in
  if path = "/" then Error E.EINVAL
  else
    match resolve t (Pathx.dirname path) ~follow_last:true ~depth:0 with
    | Error e -> Error e
    | Ok dino ->
        if inode_kind t dino <> kind_directory then Error E.ENOTDIR
        else Ok (dino, Pathx.basename path)

(* ---- the syscall wrapper ---------------------------------------------------------------- *)

let op t f =
  if t.cfg.gated then
    Gate.syscall t.gate (fun () ->
        Sim.advance t.cfg.op_overhead;
        f ())
  else
    Mpk.with_kernel t.mpk (fun () ->
        Mpk.with_write_window t.mpk (fun () ->
            Sim.advance t.cfg.op_overhead;
            f ()))

(* ---- data path ------------------------------------------------------------------------- *)

let write_block_data t page ~off data_sub =
  let addr = (page * page_size) + off in
  match t.cfg.data_write with
  | W_in_place_nt | W_cow -> Nvm.Device.nt_write_string t.dev addr data_sub
  | W_in_place_clwb ->
      (* normal stores followed by clwb per line: the slow default-PMFS path
         of Figure 8 *)
      Nvm.Device.write_string t.dev addr data_sub;
      Nvm.Device.flush_range t.dev addr (String.length data_sub);
      (* cache-line-at-a-time write-back is much slower than streaming
         non-temporal stores on Optane (Figure 8, PMFS vs PMFS-nocache);
         capped: large writes amortize the write-back pipeline *)
      Sim.advance (min 1024 (String.length data_sub / 6))

let do_write t ino ~off data =
  let len = String.length data in
  if len = 0 then Ok 0
  else begin
    let rec loop src =
      if src >= len then Ok ()
      else begin
        let file_off = off + src in
        let b = file_off / page_size in
        let in_block = file_off mod page_size in
        let n = min (len - src) (page_size - in_block) in
        let chunk = String.sub data src n in
        let block_r =
          match t.cfg.data_write with
          | W_cow -> (
              (* copy-on-write: fresh page; untouched bytes are preserved by
                 copying — unless the write covers the whole block, the
                 common aligned-4KB case where NOVA copies nothing *)
              let old_page = block_page t ino b in
              (* log-structuring bookkeeping when a block is replaced:
                 log-entry append, tail update, old-version accounting —
                 why NOVA loses to PMFS on write-heavy SQLite/LevelDB
                 (paper 6.3); plain appends allocate fresh blocks and skip
                 it *)
              Sim.advance 900;
              match alloc_page t with
              | Error e -> Error e
              | Ok fresh ->
                  (if n = page_size then ()
                   else if old_page <> 0 then begin
                     Nvm.Device.copy_within t.dev ~src:(old_page * page_size)
                       ~dst:(fresh * page_size) ~len:page_size;
                     Nvm.Device.persist_range t.dev (fresh * page_size) page_size
                   end
                   else begin
                     Nvm.Device.fill t.dev (fresh * page_size) page_size '\000';
                     Nvm.Device.persist_range t.dev (fresh * page_size) page_size
                   end);
                  (match pointer_addr t ~alloc:true ino b with
                  | Ok (Some ptr) ->
                      wr64 t ptr fresh;
                      if old_page <> 0 then free_page t old_page;
                      Ok fresh
                  | Ok None -> Error E.EIO
                  | Error e -> Error e))
          | W_in_place_nt | W_in_place_clwb -> ensure_block t ino b
        in
        match block_r with
        | Error e -> Error e
        | Ok page ->
            write_block_data t page ~off:in_block chunk;
            if t.cfg.index_update then Sim.advance t.file_index_cost;
            loop (src + n)
      end
    in
    match loop 0 with
    | Error e -> Error e
    | Ok () ->
        Nvm.Device.sfence t.dev;
        journal_commit t ~bytes_hint:32;
        let new_end = off + len in
        if new_end > inode_size_of t ino then set_inode_size t ino new_end;
        Ok len
  end

let do_read t ino ~off buf boff len =
  let fsize = inode_size_of t ino in
  if off >= fsize then Ok 0
  else begin
    let len = min len (fsize - off) in
    let remaining = ref len and src = ref off and dst = ref boff in
    while !remaining > 0 do
      let b = !src / page_size in
      let in_block = !src mod page_size in
      let n = min !remaining (page_size - in_block) in
      let page = block_page t ino b in
      if page = 0 then Bytes.fill buf !dst n '\000'
      else
        Nvm.Device.blit_to_bytes t.dev
          ((page * page_size) + in_block)
          buf !dst n;
      src := !src + n;
      dst := !dst + n;
      remaining := !remaining - n
    done;
    Ok len
  end

let file_blocks t ino =
  let nb = (inode_size_of t ino + page_size - 1) / page_size in
  let acc = ref [] in
  for b = 0 to nb - 1 do
    let p = block_page t ino b in
    if p <> 0 then acc := p :: !acc
  done;
  let ia = inode_addr t ino in
  let ind = rd64 t (ia + i_indirect) in
  if ind <> 0 then acc := ind :: !acc;
  let dind = rd64 t (ia + i_dindirect) in
  if dind <> 0 then begin
    acc := dind :: !acc;
    for o = 0 to ptrs_per_page - 1 do
      let mid = rd64 t ((dind * page_size) + (o * 8)) in
      if mid <> 0 then acc := mid :: !acc
    done
  end;
  !acc

let free_file_blocks t ino = List.iter (fun p -> free_page t p) (file_blocks t ino)

(* ---- stat ------------------------------------------------------------------------------- *)

let stat_of t ino : Ft.stat =
  let a = inode_addr t ino in
  let kind =
    match rd32 t (a + i_kind) with
    | k when k = kind_directory -> Ft.Directory
    | k when k = kind_symlink -> Ft.Symlink
    | _ -> Ft.Regular
  in
  {
    Ft.st_ino = ino;
    st_kind = kind;
    st_mode = rd32 t (a + i_mode);
    st_uid = rd32 t (a + i_uid);
    st_gid = rd32 t (a + i_gid);
    st_size = rd64 t (a + i_size);
    st_nlink = rd32 t (a + i_nlink);
    st_atime = rd64 t (a + i_mtime);
    st_mtime = rd64 t (a + i_mtime);
    st_ctime = rd64 t (a + i_mtime);
  }

let permits t ino wants =
  let a = inode_addr t ino in
  Ft.permits ~mode:(rd32 t (a + i_mode)) ~uid:(rd32 t (a + i_uid))
    ~gid:(rd32 t (a + i_gid))
    (Ft.cred_of_proc (Sim.self_proc ()))
    wants

(* ---- Vfs.S implementation ----------------------------------------------------------------- *)

let name t = t.cfg.label
let ( let* ) = Result.bind

let create_file t path ~kind ~mode ?symlink_target () =
  let* dino, base = resolve_parent t path in
  if not (permits t dino [ `W ]) then Error E.EACCES
  else if not (Pathx.valid_name base) then Error E.EINVAL
  else
    Sim.Rwlock.with_wr (inode_lock t dino) (fun () ->
        match dir_lookup t dino base with
        | Some _ -> Error E.EEXIST
        | None ->
            let c = Ft.cred_of_proc (Sim.self_proc ()) in
            let* ino = alloc_inode t ~kind ~mode ~uid:c.Ft.uid ~gid:c.Ft.gid in
            (match symlink_target with
            | Some target when String.length target <= max_symlink ->
                let a = inode_addr t ino in
                Nvm.Device.write_u16 t.dev (a + i_symlink) (String.length target);
                Nvm.Device.write_string t.dev (a + i_symlink + 2) target;
                Nvm.Device.persist_range t.dev (a + i_symlink)
                  (2 + String.length target)
            | Some _ -> ()
            | None -> ());
            journal_commit t ~bytes_hint:inode_size;
            (* NOVA pays a second log for the dir entry; PMFS journals both
               in one transaction — dir_insert's commit covers it. *)
            let* () = dir_insert t dino ~name:base ~child:ino ~kind in
            Ok ino)

let openf t path flags mode =
  op t (fun () ->
      let wants = Ft.wants_of_flags flags in
      let readable = List.mem `R wants || wants = [] in
      let writable = List.mem `W wants in
      let get_ino () =
        match resolve t path ~follow_last:true ~depth:0 with
        | Ok ino ->
            if Ft.flag_mem Ft.O_EXCL flags && Ft.flag_mem Ft.O_CREAT flags then
              Error E.EEXIST
            else if inode_kind t ino = kind_directory && writable then
              Error E.EISDIR
            else if not (permits t ino wants) then Error E.EACCES
            else begin
              if
                Ft.flag_mem Ft.O_TRUNC flags && writable
                && inode_kind t ino = kind_regular
              then
                Sim.Rwlock.with_wr (inode_lock t ino) (fun () ->
                    free_file_blocks t ino;
                    let a = inode_addr t ino in
                    for i = 0 to n_direct - 1 do
                      Nvm.Device.write_u64 t.dev (a + i_direct + (i * 8)) 0
                    done;
                    Nvm.Device.write_u64 t.dev (a + i_indirect) 0;
                    Nvm.Device.write_u64 t.dev (a + i_dindirect) 0;
                    Nvm.Device.persist_range t.dev (a + i_direct)
                      ((n_direct + 2) * 8);
                    set_inode_size t ino 0;
                    journal_commit t ~bytes_hint:64);
              Ok ino
            end
        | Error E.ENOENT when Ft.flag_mem Ft.O_CREAT flags ->
            create_file t path ~kind:kind_regular ~mode ()
        | Error e -> Error e
      in
      let* ino = get_ino () in
      let fd = t.next_fd in
      t.next_fd <- fd + 1;
      Hashtbl.replace t.fds fd
        {
          fd_ino = ino;
          fd_offset = 0;
          fd_append = Ft.flag_mem Ft.O_APPEND flags;
          fd_readable = readable;
          fd_writable = writable;
        };
      Ok fd)

let mkdir t path mode =
  op t (fun () ->
      match resolve t path ~follow_last:true ~depth:0 with
      | Ok _ -> Error E.EEXIST
      | Error E.ENOENT ->
          let* _ = create_file t path ~kind:kind_directory ~mode () in
          Ok ()
      | Error e -> Error e)

let symlink t ~target ~link =
  op t (fun () ->
      match resolve t link ~follow_last:false ~depth:0 with
      | Ok _ -> Error E.EEXIST
      | Error E.ENOENT ->
          let* _ =
            create_file t link ~kind:kind_symlink ~mode:0o777
              ~symlink_target:target ()
          in
          Ok ()
      | Error e -> Error e)

let readlink t path =
  op t (fun () ->
      let* ino = resolve t path ~follow_last:false ~depth:0 in
      if inode_kind t ino <> kind_symlink then Error E.EINVAL
      else begin
        let a = inode_addr t ino in
        let len = Nvm.Device.read_u16 t.dev (a + i_symlink) in
        Ok (Nvm.Device.read_string t.dev (a + i_symlink + 2) len)
      end)

let unlink t path =
  op t (fun () ->
      let* dino, base = resolve_parent t path in
      if not (permits t dino [ `W ]) then Error E.EACCES
      else
        Sim.Rwlock.with_wr (inode_lock t dino) (fun () ->
            match dir_lookup t dino base with
            | None -> Error E.ENOENT
            | Some ino ->
                if inode_kind t ino = kind_directory then Error E.EISDIR
                else begin
                  let* _ = dir_remove t dino base in
                  if inode_kind t ino = kind_regular then free_file_blocks t ino;
                  free_inode t ino;
                  journal_commit t ~bytes_hint:64;
                  Ok ()
                end))

let rmdir t path =
  op t (fun () ->
      let* dino, base = resolve_parent t path in
      if not (permits t dino [ `W ]) then Error E.EACCES
      else
        Sim.Rwlock.with_wr (inode_lock t dino) (fun () ->
            match dir_lookup t dino base with
            | None -> Error E.ENOENT
            | Some ino ->
                if inode_kind t ino <> kind_directory then Error E.ENOTDIR
                else if not (dir_is_empty t ino) then Error E.ENOTEMPTY
                else begin
                  let* _ = dir_remove t dino base in
                  free_file_blocks t ino;
                  free_inode t ino;
                  Hashtbl.remove t.dir_index ino;
                  Hashtbl.remove t.dir_free_slots ino;
                  journal_commit t ~bytes_hint:64;
                  Ok ()
                end))

let rename t src dst =
  op t (fun () ->
      let* sdino, sbase = resolve_parent t src in
      let* ddino, dbase = resolve_parent t dst in
      if not (permits t sdino [ `W ] && permits t ddino [ `W ]) then
        Error E.EACCES
      else
        Sim.Rwlock.with_wr (inode_lock t sdino) (fun () ->
            match dir_lookup t sdino sbase with
            | None -> Error E.ENOENT
            | Some ino ->
                let kind =
                  match inode_kind t ino with
                  | k when k = kind_directory -> kind_directory
                  | k when k = kind_symlink -> kind_symlink
                  | _ -> kind_regular
                in
                (* displace an existing destination file *)
                (match dir_lookup t ddino dbase with
                | Some old when old <> ino ->
                    if inode_kind t old <> kind_directory then begin
                      ignore (dir_remove t ddino dbase);
                      if inode_kind t old = kind_regular then
                        free_file_blocks t old;
                      free_inode t old
                    end
                | _ -> ());
                let* () = dir_insert t ddino ~name:dbase ~child:ino ~kind in
                let* _ = dir_remove t sdino sbase in
                journal_commit t ~bytes_hint:128;
                Ok ()))

let stat t path =
  op t (fun () ->
      let* ino = resolve t path ~follow_last:true ~depth:0 in
      Ok (stat_of t ino))

let lstat t path =
  op t (fun () ->
      let* ino = resolve t path ~follow_last:false ~depth:0 in
      Ok (stat_of t ino))

let readdir t path =
  op t (fun () ->
      let* ino = resolve t path ~follow_last:true ~depth:0 in
      if inode_kind t ino <> kind_directory then Error E.ENOTDIR
      else
        Ok
          (List.map
             (fun (name, dino, kind) ->
               let k =
                 if kind = kind_directory then Ft.Directory
                 else if kind = kind_symlink then Ft.Symlink
                 else Ft.Regular
               in
               { Ft.d_name = name; d_kind = k; d_ino = dino })
             (dir_entries t ino)))

let chmod t path mode =
  op t (fun () ->
      let* ino = resolve t path ~follow_last:true ~depth:0 in
      let a = inode_addr t ino in
      let c = Ft.cred_of_proc (Sim.self_proc ()) in
      if c.Ft.uid <> 0 && c.Ft.uid <> rd32 t (a + i_uid) then Error E.EPERM
      else begin
        wr32 t (a + i_mode) mode;
        journal_commit t ~bytes_hint:16;
        Ok ()
      end)

let chown t path uid gid =
  op t (fun () ->
      let* ino = resolve t path ~follow_last:true ~depth:0 in
      let a = inode_addr t ino in
      let c = Ft.cred_of_proc (Sim.self_proc ()) in
      if c.Ft.uid <> 0 then Error E.EPERM
      else begin
        wr32 t (a + i_uid) uid;
        wr32 t (a + i_gid) gid;
        journal_commit t ~bytes_hint:16;
        Ok ()
      end)

let fd t fdnum =
  match Hashtbl.find_opt t.fds fdnum with
  | Some s -> Ok s
  | None -> Error E.EBADF

let close t fdnum =
  op t (fun () ->
      let* _ = fd t fdnum in
      Hashtbl.remove t.fds fdnum;
      Ok ())

let read t fdnum buf boff len =
  op t (fun () ->
      let* s = fd t fdnum in
      if not s.fd_readable then Error E.EBADF
      else
        Sim.Rwlock.with_rd (inode_lock t s.fd_ino) (fun () ->
            let* n = do_read t s.fd_ino ~off:s.fd_offset buf boff len in
            s.fd_offset <- s.fd_offset + n;
            Ok n))

let pread t fdnum ~off buf boff len =
  op t (fun () ->
      let* s = fd t fdnum in
      if not s.fd_readable then Error E.EBADF
      else
        Sim.Rwlock.with_rd (inode_lock t s.fd_ino) (fun () ->
            do_read t s.fd_ino ~off buf boff len))

let write t fdnum data =
  op t (fun () ->
      let* s = fd t fdnum in
      if not s.fd_writable then Error E.EBADF
      else
        Sim.Rwlock.with_wr (inode_lock t s.fd_ino) (fun () ->
            let off =
              if s.fd_append then inode_size_of t s.fd_ino else s.fd_offset
            in
            let* n = do_write t s.fd_ino ~off data in
            s.fd_offset <- off + n;
            Ok n))

let pwrite t fdnum ~off data =
  op t (fun () ->
      let* s = fd t fdnum in
      if not s.fd_writable then Error E.EBADF
      else
        Sim.Rwlock.with_wr (inode_lock t s.fd_ino) (fun () ->
            do_write t s.fd_ino ~off data))

let lseek t fdnum pos whence =
  op t (fun () ->
      let* s = fd t fdnum in
      let target =
        match whence with
        | Ft.SEEK_SET -> pos
        | Ft.SEEK_CUR -> s.fd_offset + pos
        | Ft.SEEK_END -> inode_size_of t s.fd_ino + pos
      in
      if target < 0 then Error E.EINVAL
      else begin
        s.fd_offset <- target;
        Ok target
      end)

let fsync t fdnum =
  op t (fun () ->
      let* _ = fd t fdnum in
      (* synchronous engines: everything already flushed; jbd2 pays a
         transaction flush *)
      (match t.cfg.journal with
      | J_jbd2 _ -> journal_commit t ~bytes_hint:128
      | _ -> Nvm.Device.sfence t.dev);
      Ok ())

let fstat t fdnum =
  op t (fun () ->
      let* s = fd t fdnum in
      Ok (stat_of t s.fd_ino))

let ftruncate t fdnum len =
  op t (fun () ->
      let* s = fd t fdnum in
      if not s.fd_writable then Error E.EBADF
      else
        Sim.Rwlock.with_wr (inode_lock t s.fd_ino) (fun () ->
            let old = inode_size_of t s.fd_ino in
            if len < old then begin
              (* free whole blocks past len *)
              let first_dead = (len + page_size - 1) / page_size in
              let last = (old + page_size - 1) / page_size - 1 in
              for b = first_dead to last do
                match pointer_addr t ~alloc:false s.fd_ino b with
                | Ok (Some ptr) ->
                    let p = rd64 t ptr in
                    if p <> 0 then begin
                      wr64 t ptr 0;
                      free_page t p
                    end
                | Ok None | Error _ -> ()
              done
            end;
            set_inode_size t s.fd_ino len;
            journal_commit t ~bytes_hint:32;
            Ok ()))

let truncate t path len =
  op t (fun () ->
      let* ino = resolve t path ~follow_last:true ~depth:0 in
      Sim.Rwlock.with_wr (inode_lock t ino) (fun () ->
          let old = inode_size_of t ino in
          if len < old then begin
            let first_dead = (len + page_size - 1) / page_size in
            let last = (old + page_size - 1) / page_size - 1 in
            for b = first_dead to last do
              match pointer_addr t ~alloc:false ino b with
              | Ok (Some ptr) ->
                  let p = rd64 t ptr in
                  if p <> 0 then begin
                    wr64 t ptr 0;
                    free_page t p
                  end
              | Ok None | Error _ -> ()
            done
          end;
          set_inode_size t ino len;
          journal_commit t ~bytes_hint:32;
          Ok ()))
