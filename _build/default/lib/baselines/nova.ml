(* NOVA (Xu & Swanson, FAST'16) as configured for the paper's comparison: a
   log-structured kernel NVM file system with per-inode logs, per-core
   allocators (each gets an equal share of free space, so it keeps scaling
   where ZoFS's coffer_enlarge contends — Figure 7(d)/(g)), copy-on-write
   data (the reason it loses to PMFS on LevelDB/TPC-C), and DRAM indexing
   structures whose update cost dominates 4 KB overwrites (Figure 8's
   NOVA vs NOVA-noindex gap).

   [in_place] selects NOVAi: in-place data updates with journaled metadata —
   no CoW advantage for aligned 4 KB writes, plus journaling cost
   (Figure 8). *)

let config ?(in_place = false) ?(noindex = false) ?(cores = 20) () =
  {
    Engine.label =
      (match (in_place, noindex) with
      | false, false -> "nova"
      | false, true -> "nova-noindex"
      | true, false -> "novai"
      | true, true -> "novai-noindex");
    journal = (if in_place then Engine.J_jbd2 96 else Engine.J_log 64);
    alloc = Engine.A_per_thread cores;
    data_write = (if in_place then Engine.W_in_place_nt else Engine.W_cow);
    dir = Engine.D_dram_index;
    index_update = not noindex;
    gated = true;
    op_overhead = 150;
  }

let create ?in_place ?noindex ?cores ?(pages = 65536) ?(perf = Nvm.Perf.optane)
    () =
  let dev = Nvm.Device.create ~perf ~size:(pages * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  Engine.format (config ?in_place ?noindex ?cores ()) dev mpk

let fs ?in_place ?noindex ?cores ?pages ?perf () =
  Treasury.Vfs.Fs
    ((module Engine_vfs), create ?in_place ?noindex ?cores ?pages ?perf ())
