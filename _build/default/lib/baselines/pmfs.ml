(* PMFS (Dulloor et al., EuroSys'14) as configured for the paper's
   comparison: a journal-based kernel NVM file system with fine-grained undo
   logging, a single global allocator (the lock that stops its scaling after
   ~4 threads in Figure 7(d)), linear directories (its collapse on the
   million-entry directories of Figure 9), and — by default — normal stores
   followed by clwb for data, which Figure 8 shows is much slower than
   non-temporal stores (the PMFS-nocache variant). *)

let config ?(nocache = false) () =
  {
    Engine.label = (if nocache then "pmfs-nocache" else "pmfs");
    journal = Engine.J_undo 64;
    alloc = Engine.A_global_lock;
    data_write = (if nocache then Engine.W_in_place_nt else Engine.W_in_place_clwb);
    dir = Engine.D_linear;
    index_update = false;
    gated = true;
    op_overhead = 180;
  }

let create ?nocache ?(pages = 65536) ?(perf = Nvm.Perf.optane) () =
  let dev = Nvm.Device.create ~perf ~size:(pages * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  Engine.format (config ?nocache ()) dev mpk

let fs ?nocache ?pages ?perf () =
  Treasury.Vfs.Fs ((module Engine_vfs), create ?nocache ?pages ?perf ())
