(* Ext4-DAX: the mature kernel file system with page-cache bypass.  Its
   jbd2 journal serializes transactions on a shared lock, block allocation
   scans bitmaps, directories are (h-tree in reality, linear here) scans,
   and the generic VFS layer adds per-operation overhead — together they
   make it the slowest system in the paper's Table 7 / Figure 11. *)

let config () =
  {
    Engine.label = "ext4-dax";
    journal = Engine.J_jbd2 192;
    alloc = Engine.A_global_bitmap;
    data_write = Engine.W_in_place_nt;
    dir = Engine.D_linear;
    index_update = false;
    gated = true;
    op_overhead = 650;
  }

let create ?(pages = 65536) ?(perf = Nvm.Perf.optane) () =
  let dev = Nvm.Device.create ~perf ~size:(pages * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  Engine.format (config ()) dev mpk

let fs ?pages ?perf () =
  Treasury.Vfs.Fs ((module Engine_vfs), create ?pages ?perf ())
